(* Rdomain: hierarchical recovery-domain clustering invariants.

   The clustering is pure topology, so everything here is checked
   structurally: regions are connected rooted subtrees, member bounds
   hold, escalation chains terminate at the root domain, and the scope
   predicate is ancestry-closed inside the scope root's subtree — the
   property [Net.Network.scoped_cast] relies on for O(1) pruning. *)

let check = Alcotest.check

(*      0
        |
        1
       / \
      2   5
     / \   \
    3   4   6
           / \
          7   8   *)
let sample_tree () = Net.Tree.of_parents [| -1; 0; 1; 2; 2; 1; 5; 6; 6 |]

let test_build_basic () =
  let tree = sample_tree () in
  let d = Rdomain.build ~tree ~members:[| 0; 3; 4; 7; 8 |] ~max_members:2 in
  check Alcotest.bool "several domains" true (Rdomain.n_domains d > 1);
  (* Every node is assigned, and each domain root's parent belongs to
     the parent domain. *)
  for v = 0 to Net.Tree.n_nodes tree - 1 do
    let dom = Rdomain.dom_of d v in
    check Alcotest.bool "dom id in range" true (dom >= 0 && dom < Rdomain.n_domains d);
    let root = Rdomain.root_of d dom in
    check Alcotest.int "root is in its own domain" dom (Rdomain.dom_of d root);
    if root <> 0 then
      check Alcotest.int "root's parent in parent domain" (Rdomain.parent_of d dom)
        (Rdomain.dom_of d (Net.Tree.parent tree root))
  done;
  (* The root domain holds the source and is its own replier's home. *)
  let root_dom = Rdomain.dom_of d 0 in
  check Alcotest.int "root domain level" 0 (Rdomain.level d root_dom);
  check Alcotest.int "root domain parent" (-1) (Rdomain.parent_of d root_dom);
  check Alcotest.int "root domain replier is the source" 0 (Rdomain.replier d root_dom)

let test_spec_members () =
  check Alcotest.int "auto small group" 8 (Rdomain.auto_members ~n_members:9);
  check Alcotest.int "auto 1024" 32 (Rdomain.auto_members ~n_members:1024);
  check Alcotest.int "auto resolves" 32 (Rdomain.spec_members ~n_members:1024 Rdomain.Auto);
  check Alcotest.int "explicit resolves" 5
    (Rdomain.spec_members ~n_members:1024 (Rdomain.Max_members 5))

let test_bad_args () =
  let tree = sample_tree () in
  Alcotest.check_raises "max_members 0" (Invalid_argument "Rdomain.build: max_members must be >= 1")
    (fun () -> ignore (Rdomain.build ~tree ~members:[| 0; 3 |] ~max_members:0))

(* Random topologies from the scale generator families. *)
let gen_tree =
  QCheck.Gen.(
    let* seed = int_range 1 100_000 in
    let* fam = int_range 0 2 in
    let* n_receivers = int_range 8 120 in
    let rng = Sim.Rng.create (Int64.of_int seed) in
    let tree =
      match fam with
      | 0 -> Mtrace.Topology_gen.bounded_fanout ~rng ~n_receivers ~fanout:4
      | 1 ->
          Mtrace.Topology_gen.star_of_stars ~rng ~n_receivers
            ~clusters:(max 2 (int_of_float (sqrt (float_of_int n_receivers))))
      | _ -> Mtrace.Topology_gen.deep_chain ~rng ~n_receivers
    in
    let* max_members = int_range 1 24 in
    return (tree, max_members))

let arb_tree =
  QCheck.make gen_tree ~print:(fun (tree, m) ->
      Printf.sprintf "tree(n=%d, height=%d), max_members=%d" (Net.Tree.n_nodes tree)
        (Net.Tree.height tree) m)

let prop_regions =
  QCheck.Test.make ~name:"rdomain: regions are bounded connected rooted subtrees" ~count:100
    arb_tree
    (fun (tree, max_members) ->
      let d = Rdomain.of_tree ~tree (Rdomain.Max_members max_members) in
      let n = Net.Tree.n_nodes tree in
      let ok = ref true in
      for v = 0 to n - 1 do
        let dom = Rdomain.dom_of d v in
        (* Walking parent-ward from any node stays inside its domain
           until the domain root — the region is a connected rooted
           subtree. *)
        let rec walk u =
          if u = Rdomain.root_of d dom then ()
          else begin
            if Rdomain.dom_of d u <> dom then ok := false;
            walk (Net.Tree.parent tree u)
          end
        in
        walk v
      done;
      (* Member bound, and domain sizes add up to the member count. *)
      let members = ref 0 in
      for dom = 0 to Rdomain.n_domains d - 1 do
        let size = Rdomain.size d dom in
        if size > max_members then ok := false;
        members := !members + size
      done;
      if !members <> 1 + Net.Tree.n_receivers tree then ok := false;
      !ok)

let prop_chain =
  QCheck.Test.make ~name:"rdomain: escalation chain climbs to the root domain" ~count:100
    arb_tree
    (fun (tree, max_members) ->
      let d = Rdomain.of_tree ~tree (Rdomain.Max_members max_members) in
      let ok = ref true in
      for dom = 0 to Rdomain.n_domains d - 1 do
        let lvl = Rdomain.level d dom in
        let parent = Rdomain.parent_of d dom in
        if dom = Rdomain.dom_of d 0 then begin
          if lvl <> 0 || parent <> -1 then ok := false
        end
        else if parent < 0 || Rdomain.level d parent <> lvl - 1 then ok := false;
        if Rdomain.max_level d ~dom <> lvl then ok := false;
        (* scope_domain walks the chain and clamps at the root domain. *)
        if Rdomain.scope_domain d ~dom ~level:lvl <> Rdomain.dom_of d 0 then ok := false;
        if Rdomain.scope_domain d ~dom ~level:(lvl + 5) <> Rdomain.dom_of d 0 then
          ok := false;
        if Rdomain.scope_domain d ~dom ~level:0 <> dom then ok := false
      done;
      !ok)

let prop_scope =
  QCheck.Test.make ~name:"rdomain: in_scope matches chain membership and is ancestry-closed"
    ~count:60 arb_tree
    (fun (tree, max_members) ->
      let d = Rdomain.of_tree ~tree (Rdomain.Max_members max_members) in
      let n = Net.Tree.n_nodes tree in
      let ok = ref true in
      for dom = 0 to Rdomain.n_domains d - 1 do
        for level = 0 to min 3 (Rdomain.max_level d ~dom) do
          (* Reference: the chain prefix as an explicit domain set. *)
          let chain = Array.make (Rdomain.n_domains d) false in
          let rec fill dm l =
            chain.(dm) <- true;
            if l > 0 && Rdomain.parent_of d dm >= 0 then fill (Rdomain.parent_of d dm) (l - 1)
          in
          fill dom level;
          let sroot = Rdomain.scope_root d ~dom ~level in
          for v = 0 to n - 1 do
            let expect = chain.(Rdomain.dom_of d v) in
            if Rdomain.in_scope d ~dom ~level v <> expect then ok := false;
            (* Ancestry closure inside the scope root's subtree: an
               in-scope node's parent is in scope too, until sroot. *)
            if expect && v <> sroot then
              if not (Rdomain.in_scope d ~dom ~level (Net.Tree.parent tree v)) then
                ok := false
          done
        done
      done;
      !ok)

let prop_repliers =
  QCheck.Test.make ~name:"rdomain: designated repliers are closest members, targets ascend"
    ~count:100 arb_tree
    (fun (tree, max_members) ->
      let d = Rdomain.of_tree ~tree (Rdomain.Max_members max_members) in
      let is_member v = v = 0 || Net.Tree.is_leaf tree v in
      let ok = ref true in
      for dom = 0 to Rdomain.n_domains d - 1 do
        let r = Rdomain.replier d dom in
        if Rdomain.dom_of d r <> dom || not (is_member r) then ok := false;
        if not (Rdomain.is_replier d r) then ok := false;
        (* No member of the domain sits strictly closer to the source. *)
        for v = 0 to Net.Tree.n_nodes tree - 1 do
          if
            is_member v
            && Rdomain.dom_of d v = dom
            && Net.Tree.depth tree v < Net.Tree.depth tree r
          then ok := false
        done
      done;
      (* A requestor never aims its timer at itself: the target skips
         up the chain, falling back to the source. *)
      for v = 0 to Net.Tree.n_nodes tree - 1 do
        if is_member v then
          for level = 0 to min 3 (Rdomain.max_level d ~dom:(Rdomain.dom_of d v)) do
            let tgt = Rdomain.request_target d ~node:v ~level in
            if tgt = v && v <> 0 then ok := false
          done
      done;
      !ok)

let () =
  Alcotest.run "domain"
    [
      ( "rdomain",
        [
          Alcotest.test_case "build basic" `Quick test_build_basic;
          Alcotest.test_case "spec members" `Quick test_spec_members;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          QCheck_alcotest.to_alcotest prop_regions;
          QCheck_alcotest.to_alcotest prop_chain;
          QCheck_alcotest.to_alcotest prop_scope;
          QCheck_alcotest.to_alcotest prop_repliers;
        ] );
    ]
