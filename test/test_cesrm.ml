(* Tests for CESRM: the requestor/replier cache, selection policies,
   the expedited recovery scheme, fallback behaviour, and the
   router-assisted variant. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

let entry ?(seq = 1) ?(requestor = 1) ?(d_qs = 0.1) ?(replier = 2) ?(d_rq = 0.05) ?tp () =
  { Cesrm.Cache.seq; requestor; d_qs; replier; d_rq; turning_point = tp }

(* --- Cache ------------------------------------------------------------- *)

let test_cache_insert_and_recency () =
  let c = Cesrm.Cache.create ~capacity:3 () in
  check Alcotest.int "empty" 0 (Cesrm.Cache.size c);
  check Alcotest.bool "no most recent" true (Cesrm.Cache.most_recent c = None);
  ignore (Cesrm.Cache.note_reply c (entry ~seq:5 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:9 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:7 ()));
  check Alcotest.int "size" 3 (Cesrm.Cache.size c);
  check Alcotest.(option int) "most recent is highest seq" (Some 9)
    (Option.map (fun (e : Cesrm.Cache.entry) -> e.seq) (Cesrm.Cache.most_recent c))

let test_cache_eviction () =
  let c = Cesrm.Cache.create ~capacity:2 () in
  ignore (Cesrm.Cache.note_reply c (entry ~seq:5 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:9 ()));
  check Alcotest.bool "full insert evicts least recent" true
    (Cesrm.Cache.note_reply c (entry ~seq:7 ()) = `Inserted);
  check Alcotest.bool "5 evicted" true (Cesrm.Cache.find c ~seq:5 = None);
  check Alcotest.bool "stale packet ignored when full" true
    (Cesrm.Cache.note_reply c (entry ~seq:3 ()) = `Ignored);
  check Alcotest.int "size stays at capacity" 2 (Cesrm.Cache.size c)

let test_cache_optimal_update () =
  let c = Cesrm.Cache.create ~capacity:4 () in
  ignore (Cesrm.Cache.note_reply c (entry ~seq:5 ~requestor:1 ~d_qs:0.1 ~d_rq:0.05 ()));
  (* Worse pair (larger d_qs + 2 d_rq) is ignored. *)
  check Alcotest.bool "worse ignored" true
    (Cesrm.Cache.note_reply c (entry ~seq:5 ~requestor:2 ~d_qs:0.2 ~d_rq:0.05 ()) = `Ignored);
  (* Better pair replaces. *)
  check Alcotest.bool "better updates" true
    (Cesrm.Cache.note_reply c (entry ~seq:5 ~requestor:3 ~d_qs:0.05 ~d_rq:0.01 ()) = `Updated);
  check Alcotest.(option int) "updated requestor" (Some 3)
    (Option.map
       (fun (e : Cesrm.Cache.entry) -> e.requestor)
       (Cesrm.Cache.find c ~seq:5))

let test_cache_recovery_delay () =
  check (Alcotest.float 1e-9) "d_qs + 2 d_rq" 0.2
    (Cesrm.Cache.recovery_delay (entry ~d_qs:0.1 ~d_rq:0.05 ()))

let test_cache_most_frequent () =
  let c = Cesrm.Cache.create ~capacity:8 () in
  ignore (Cesrm.Cache.note_reply c (entry ~seq:1 ~requestor:1 ~replier:2 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:2 ~requestor:3 ~replier:4 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:3 ~requestor:1 ~replier:2 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:4 ~requestor:1 ~replier:2 ()));
  check Alcotest.(option (pair int int)) "dominant pair" (Some (1, 2))
    (Option.map
       (fun (e : Cesrm.Cache.entry) -> (e.requestor, e.replier))
       (Cesrm.Cache.most_frequent c));
  (* the representative tuple is the most recent one of that pair *)
  check Alcotest.(option int) "representative is most recent" (Some 4)
    (Option.map (fun (e : Cesrm.Cache.entry) -> e.seq) (Cesrm.Cache.most_frequent c))

let test_cache_validation () =
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Cache.create: capacity >= 1 required") (fun () ->
      ignore (Cesrm.Cache.create ~capacity:0 ()))

let prop_cache_bounded_and_sorted =
  QCheck.Test.make ~name:"cache: size bounded, entries sorted by recency" ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 50) (int_range 1 100)))
    (fun (capacity, seqs) ->
      let c = Cesrm.Cache.create ~capacity () in
      List.iter (fun seq -> ignore (Cesrm.Cache.note_reply c (entry ~seq ()))) seqs;
      let es = Cesrm.Cache.entries c in
      Cesrm.Cache.size c <= capacity
      && List.sort (fun (a : Cesrm.Cache.entry) b -> compare b.seq a.seq) es = es)

(* --- Retention laws ----------------------------------------------------- *)

(* Random cache programs over a tiny op language. Virtual time is the
   op index scaled, so every op has a distinct, increasing timestamp —
   which makes the use-order and expiry laws exact. *)
type cache_op = Op_note of int * int | Op_touch of int

let ops_gen =
  QCheck.Gen.(
    list_size (int_range 0 60)
      (map2
         (fun is_note seq -> if is_note then Op_note (seq, seq mod 5) else Op_touch seq)
         bool (int_range 1 20)))

let ops_arb = QCheck.make ~print:(fun _ -> "<ops>") ops_gen

let op_time i = 0.1 *. float_of_int i

let run_ops c ops =
  List.iteri
    (fun i op ->
      let now = op_time i in
      match op with
      | Op_note (seq, pair) ->
          ignore
            (Cesrm.Cache.note_reply ~now c (entry ~seq ~requestor:(100 + pair) ~replier:(200 + pair) ()))
      | Op_touch seq -> Cesrm.Cache.touch ~now c ~seq)
    ops

let prop_lru_use_order =
  QCheck.Test.make ~name:"retention: LRU entries ordered by last use" ~count:300
    QCheck.(pair (int_range 1 6) ops_arb)
    (fun (capacity, ops) ->
      let c = Cesrm.Cache.create ~retention:Cesrm.Retention.Lru ~capacity () in
      (* Reference last-use times: a digest for a seq that stays or
         enters is a use; so is a touch of a present seq. Evicted seqs
         re-noted later just get a fresher time. *)
      let last_use = Hashtbl.create 16 in
      List.iteri
        (fun i op ->
          let now = op_time i in
          (match op with
          | Op_note (seq, pair) ->
              ignore
                (Cesrm.Cache.note_reply ~now c
                   (entry ~seq ~requestor:(100 + pair) ~replier:(200 + pair) ()));
              Hashtbl.replace last_use seq now
          | Op_touch seq ->
              if Cesrm.Cache.find c ~seq <> None then Hashtbl.replace last_use seq now;
              Cesrm.Cache.touch ~now c ~seq);
          ())
        ops;
      let seqs = List.map (fun (e : Cesrm.Cache.entry) -> e.seq) (Cesrm.Cache.entries c) in
      let uses = List.map (Hashtbl.find last_use) seqs in
      Cesrm.Cache.size c <= capacity
      && List.sort (fun a b -> compare b a) uses = uses)

let prop_ttl_expiry =
  QCheck.Test.make ~name:"retention: no TTL entry outlives the horizon" ~count:300
    QCheck.(triple (int_range 1 6) (int_range 1 40) (int_range 0 100))
    (fun (capacity, n, extra) ->
      let horizon = 1.5 in
      let c = Cesrm.Cache.create ~retention:(Cesrm.Retention.Ttl horizon) ~capacity () in
      (* Distinct seqs at distinct times, so each entry's age at the
         final lookup is exactly [t_final - its note time]. *)
      for i = 1 to n do
        ignore (Cesrm.Cache.note_reply ~now:(op_time i) c (entry ~seq:i ()))
      done;
      let t_final = op_time n +. (0.05 *. float_of_int extra) in
      let survivors = Cesrm.Cache.entries ~now:t_final c in
      List.for_all
        (fun (e : Cesrm.Cache.entry) -> t_final -. op_time e.seq <= horizon)
        survivors
      && Cesrm.Cache.expiries c + List.length survivors
         >= min n capacity - Cesrm.Cache.evictions c)

let prop_hotspot_ordering =
  QCheck.Test.make ~name:"retention: hotspot order time-invariant, bump never demotes"
    ~count:300
    QCheck.(pair (int_range 1 6) ops_arb)
    (fun (capacity, ops) ->
      let c =
        Cesrm.Cache.create ~retention:(Cesrm.Retention.Hotspot 1.) ~capacity ()
      in
      run_ops c ops;
      let t1 = op_time (List.length ops) in
      let order_at now =
        List.map (fun (e : Cesrm.Cache.entry) -> e.seq) (Cesrm.Cache.entries ~now c)
      in
      (* Pure time passage decays every pair by the same factor, so the
         ranking cannot move between bumps. *)
      let invariant = order_at t1 = order_at (t1 +. 7.9) in
      match Cesrm.Cache.entries ~now:t1 c with
      | [] -> invariant
      | es ->
          (* Re-digesting a cached tuple bumps its pair's score and
             changes nothing else, so its rank can only improve. *)
          let victim = List.nth es (List.length es - 1) in
          let rank seq l =
            let rec go i = function
              | [] -> max_int
              | (e : Cesrm.Cache.entry) :: tl -> if e.seq = seq then i else go (i + 1) tl
            in
            go 0 l
          in
          let before = rank victim.seq es in
          ignore (Cesrm.Cache.note_reply ~now:(t1 +. 0.05) c victim);
          let after = rank victim.seq (Cesrm.Cache.entries ~now:(t1 +. 0.05) c) in
          invariant && after <= before)

let test_retention_names () =
  List.iter
    (fun n ->
      match Cesrm.Retention.of_name n with
      | None -> Alcotest.failf "%S must parse" n
      | Some r -> check Alcotest.string "canonical" n (Cesrm.Retention.name r))
    ([ "recent"; "recent:1"; "lru"; "lru:4"; "ttl"; "ttl=2.5"; "ttl=2.5:8"; "hotspot";
       "hotspot=0.5" ]
    @ Cesrm.Retention.all_names);
  check Alcotest.bool "default is default" true
    (Cesrm.Retention.is_default Cesrm.Retention.default);
  check Alcotest.bool "capacity override is not default" false
    (Cesrm.Retention.is_default { Cesrm.Retention.default with capacity = Some 1 });
  List.iter
    (fun bad -> check Alcotest.bool bad true (Cesrm.Retention.of_name bad = None))
    [ ""; "nope"; "recent:0"; "recent:-1"; "ttl=0"; "ttl=x"; "hotspot=-1"; "lru:" ]

(* Reference implementation of the seed retention algorithm (a bare
   sorted assoc list), run in lockstep with the default cache on random
   note programs — the differential law pinning the refactor. *)
let prop_default_matches_reference =
  let note_ref capacity entries (e : Cesrm.Cache.entry) =
    match List.find_opt (fun (x : Cesrm.Cache.entry) -> x.seq = e.seq) entries with
    | Some existing ->
        if Cesrm.Cache.recovery_delay e < Cesrm.Cache.recovery_delay existing then
          ( List.map (fun (x : Cesrm.Cache.entry) -> if x.seq = e.seq then e else x) entries,
            `Updated )
        else (entries, `Ignored)
    | None ->
        let full = List.length entries >= capacity in
        let least =
          List.fold_left (fun acc (x : Cesrm.Cache.entry) -> min acc x.seq) max_int entries
        in
        if full && e.seq < least then (entries, `Ignored)
        else
          let kept =
            if full then List.filter (fun (x : Cesrm.Cache.entry) -> x.seq <> least) entries
            else entries
          in
          ( List.sort (fun (a : Cesrm.Cache.entry) b -> compare b.seq a.seq) (e :: kept),
            `Inserted )
  in
  QCheck.Test.make ~name:"retention: default scheme == seed reference (differential)"
    ~count:500
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(int_range 0 50)
           (pair (int_range 1 12) (pair (int_range 1 9) (int_range 1 9)))))
    (fun (capacity, notes) ->
      let c = Cesrm.Cache.create ~capacity () in
      let reference = ref [] in
      List.for_all
        (fun (seq, (q, r)) ->
          let e = entry ~seq ~requestor:q ~d_qs:(float_of_int q /. 10.) ~replier:r
                    ~d_rq:(float_of_int r /. 100.) () in
          let verdict = Cesrm.Cache.note_reply c e in
          let reference', verdict' = note_ref capacity !reference e in
          reference := reference';
          verdict = verdict'
          && Cesrm.Cache.entries c = !reference
          && Cesrm.Cache.most_recent c
             = (match !reference with [] -> None | x :: _ -> Some x))
        notes)

(* --- Policy -------------------------------------------------------------- *)

let test_policy_names () =
  check Alcotest.int "four policies" 4 (List.length Cesrm.Policy.all);
  List.iter
    (fun p ->
      check Alcotest.bool "roundtrip" true (Cesrm.Policy.of_name (Cesrm.Policy.name p) = Some p))
    Cesrm.Policy.all;
  check Alcotest.bool "unknown name" true (Cesrm.Policy.of_name "nope" = None)

let test_policy_choices () =
  let c = Cesrm.Cache.create ~capacity:8 () in
  check Alcotest.bool "empty cache yields nothing" true
    (Cesrm.Policy.choose Cesrm.Policy.Most_recent c = None);
  ignore (Cesrm.Cache.note_reply c (entry ~seq:1 ~requestor:1 ~replier:2 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:2 ~requestor:1 ~replier:2 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:3 ~requestor:5 ~replier:6 ()));
  check Alcotest.(option int) "most recent picks seq 3" (Some 5)
    (Option.map
       (fun (e : Cesrm.Cache.entry) -> e.requestor)
       (Cesrm.Policy.choose Cesrm.Policy.Most_recent c));
  check Alcotest.(option int) "most frequent picks (1,2)" (Some 1)
    (Option.map
       (fun (e : Cesrm.Cache.entry) -> e.requestor)
       (Cesrm.Policy.choose Cesrm.Policy.Most_frequent c));
  check Alcotest.bool "hybrid picks something" true
    (Cesrm.Policy.choose Cesrm.Policy.Frequency_weighted_recent c <> None)

let test_policy_success_biased () =
  let c = Cesrm.Cache.create ~capacity:8 () in
  ignore (Cesrm.Cache.note_reply c (entry ~seq:1 ~requestor:1 ~replier:2 ()));
  ignore (Cesrm.Cache.note_reply c (entry ~seq:2 ~requestor:1 ~replier:9 ()));
  (* With the optimistic default score, recency wins: replier 9. *)
  check Alcotest.(option int) "optimistic = most recent" (Some 9)
    (Option.map
       (fun (e : Cesrm.Cache.entry) -> e.replier)
       (Cesrm.Policy.choose Cesrm.Policy.Success_biased c));
  (* When replier 9 has been failing, the policy skips to replier 2. *)
  let score ~replier = if replier = 9 then 0.1 else 1. in
  check Alcotest.(option int) "failing replier is skipped" (Some 2)
    (Option.map
       (fun (e : Cesrm.Cache.entry) -> e.replier)
       (Cesrm.Policy.choose ~score Cesrm.Policy.Success_biased c));
  (* When everyone fails, fall back to plain recency. *)
  let all_bad ~replier:_ = 0. in
  check Alcotest.(option int) "all failing -> most recent" (Some 9)
    (Option.map
       (fun (e : Cesrm.Cache.entry) -> e.replier)
       (Cesrm.Policy.choose ~score:all_bad Cesrm.Policy.Success_biased c))

(* --- Host behaviour -------------------------------------------------------- *)

(* 0 - 1 - 3 (rcvr)
       \ 4 (rcvr)
     2 - 5 (rcvr)  *)
let sample_tree () = Net.Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

let run_cesrm ?(config = Cesrm.Host.default_config) ?(tree = sample_tree ()) ?(drops = [])
    ?(seed_cache = fun _ -> ()) ~n_packets () =
  let engine = Sim.Engine.create ~seed:77L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Data { seq } -> down && List.mem (seq, link) drops
      | _ -> false);
  let proto =
    Cesrm.Proto.deploy ~config ~network ~params:Srm.Params.default ~n_packets ~period:0.05 ()
  in
  seed_cache proto;
  Cesrm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Sim.Engine.run ~until:120.0 engine;
  proto

let test_repeat_loss_goes_expedited () =
  (* Receiver 3 loses packets 5 and then 20 on its own link. The first
     is repaired by SRM (populating the cache with requestor = 3); the
     second must be repaired expeditiously, and faster. *)
  let proto = run_cesrm ~drops:[ (5, 3); (20, 3) ] ~n_packets:30 () in
  let recs = Stats.Recovery.records (Cesrm.Proto.recoveries proto) in
  check Alcotest.int "two recoveries" 2 (List.length recs);
  let find seq = List.find (fun (r : Stats.Recovery.record) -> r.seq = seq) recs in
  let first = find 5 and second = find 20 in
  check Alcotest.bool "first is SRM" false first.expedited;
  check Alcotest.bool "second is expedited" true second.expedited;
  check Alcotest.bool "expedited is faster" true
    (Stats.Recovery.latency second < Stats.Recovery.latency first);
  check Alcotest.int "one expedited request" 1 (Cesrm.Proto.expedited_requests proto);
  check Alcotest.int "one expedited reply" 1 (Cesrm.Proto.expedited_replies proto)

let test_expedited_suppresses_srm_request () =
  let proto = run_cesrm ~drops:[ (5, 3); (20, 3) ] ~n_packets:30 () in
  (* The second loss recovers before receiver 3's SRM request timer
     (>= C1·d = 80 ms) fires, so only the first loss produced a
     multicast request. *)
  check Alcotest.int "single multicast request overall" 1
    (Stats.Counters.total (Cesrm.Proto.counters proto) Stats.Counters.Rqst)

let test_failed_expedited_falls_back () =
  (* Seed receiver 3's cache so it expedites to replier 4 — but the
     loss is shared with 4 (dropped on link 1), so the expedited
     request must fail and SRM must still repair everyone. *)
  let seed_cache proto =
    let host = Cesrm.Proto.host proto 3 in
    ignore
      (Cesrm.Cache.note_reply (Cesrm.Host.cache host)
         (entry ~seq:1 ~requestor:3 ~d_qs:0.04 ~replier:4 ~d_rq:0.04 ()))
  in
  let proto = run_cesrm ~drops:[ (8, 1) ] ~seed_cache ~n_packets:20 () in
  let recs = Stats.Recovery.records (Cesrm.Proto.recoveries proto) in
  check Alcotest.int "both sharers recovered" 2 (List.length recs);
  check Alcotest.bool "expedited request was sent" true
    (Cesrm.Proto.expedited_requests proto >= 1);
  check Alcotest.int "no expedited reply (replier shares loss)" 0
    (Cesrm.Proto.expedited_replies proto);
  List.iter
    (fun (r : Stats.Recovery.record) ->
      check Alcotest.bool "recovered via SRM" false r.expedited)
    recs

let test_only_cached_requestor_expedites () =
  (* Receiver 5's cache names 3 as the requestor; receiver 5 must not
     send an expedited request for its own loss. *)
  let seed_cache proto =
    let host = Cesrm.Proto.host proto 5 in
    ignore
      (Cesrm.Cache.note_reply (Cesrm.Host.cache host)
         (entry ~seq:1 ~requestor:3 ~d_qs:0.04 ~replier:0 ~d_rq:0.04 ()))
  in
  let proto = run_cesrm ~drops:[ (8, 5) ] ~seed_cache ~n_packets:20 () in
  check Alcotest.int "no expedited request" 0 (Cesrm.Proto.expedited_requests proto);
  check Alcotest.int "still recovered" 1
    (Stats.Recovery.count (Cesrm.Proto.recoveries proto))

let test_reorder_delay_cancels_expedited () =
  (* With a reorder delay far larger than SRM recovery, the expedited
     request is always cancelled by the packet's arrival. *)
  let config = { Cesrm.Host.default_config with reorder_delay = 5.0 } in
  let proto = run_cesrm ~config ~drops:[ (5, 3); (20, 3) ] ~n_packets:30 () in
  check Alcotest.int "expedited request cancelled" 0 (Cesrm.Proto.expedited_requests proto);
  check Alcotest.int "both recovered by SRM" 2
    (Stats.Recovery.count (Cesrm.Proto.recoveries proto))

let test_expedited_recovery_latency_bound () =
  (* Eq. (2): expedited latency <= REORDER_DELAY + RTT(q, r) + tx. *)
  let proto = run_cesrm ~drops:[ (5, 3); (20, 3) ] ~n_packets:30 () in
  let network = Cesrm.Proto.network proto in
  let r = List.find (fun (r : Stats.Recovery.record) -> r.expedited)
      (Stats.Recovery.records (Cesrm.Proto.recoveries proto)) in
  (* The replier is within the group, at most RTT(3, farthest). *)
  let worst_rtt =
    List.fold_left
      (fun acc (node, _) -> Float.max acc (Net.Network.rtt network 3 node))
      (Net.Network.rtt network 3 0)
      (Cesrm.Proto.members proto)
  in
  let tx_slack = 8. *. 8192. /. 1.5e6 in
  check Alcotest.bool "Eq.(2) bound" true
    (Stats.Recovery.latency r <= worst_rtt +. tx_slack)

let test_router_assist_reduces_exposure () =
  (* A deep branch whose receivers are closer to each other than to the
     source: the sibling wins the reply race, so the cached turning
     point sits below the root and subcast can shrink exposure.
     0 - 1 - 2 - {3,4 rcvr};  0 - 5 - {6,7 rcvr} *)
  let tree = Net.Tree.of_parents [| -1; 0; 1; 2; 2; 0; 5; 5 |] in
  let config = { Cesrm.Host.default_config with router_assist = true } in
  let plain = run_cesrm ~tree ~drops:[ (5, 3); (20, 3); (25, 3) ] ~n_packets:30 () in
  let assisted = run_cesrm ~tree ~config ~drops:[ (5, 3); (20, 3); (25, 3) ] ~n_packets:30 () in
  check Alcotest.int "assisted still recovers everything" 0
    (let detected =
       List.fold_left
         (fun acc (_, h) -> acc + Srm.Host.detected_losses (Cesrm.Host.srm h))
         0 (Cesrm.Proto.members assisted)
     in
     detected - Stats.Recovery.count (Cesrm.Proto.recoveries assisted));
  let exposure proto =
    Net.Cost.total_crossings (Net.Network.cost (Cesrm.Proto.network proto)) Net.Cost.Exp_reply
  in
  check Alcotest.bool "expedited replies happened in both" true
    (Cesrm.Proto.expedited_replies plain >= 1 && Cesrm.Proto.expedited_replies assisted >= 1);
  check Alcotest.bool "subcast exposure is smaller" true (exposure assisted < exposure plain)

(* --- churn-safe cache state (replier departures) ---------------------- *)

let test_invalidate_replier () =
  let engine = Sim.Engine.create ~seed:77L () in
  let network = Net.Network.create ~engine ~tree:(sample_tree ()) ~link_delay:0.02 () in
  let proto =
    Cesrm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:5 ~period:0.05 ()
  in
  let host = Cesrm.Proto.host proto 3 in
  let cache = Cesrm.Host.cache host in
  ignore (Cesrm.Cache.note_reply cache (entry ~seq:1 ~requestor:3 ~replier:4 ()));
  ignore (Cesrm.Cache.note_reply cache (entry ~seq:2 ~requestor:3 ~replier:5 ()));
  ignore (Cesrm.Cache.note_reply cache (entry ~seq:3 ~requestor:3 ~replier:4 ()));
  check Alcotest.int "nothing invalidated yet" 0 (Cesrm.Host.cache_invalidations host);
  Cesrm.Host.invalidate_replier host ~replier:4;
  check Alcotest.int "only the survivor's entry remains" 1 (Cesrm.Cache.size cache);
  check Alcotest.int "both departed-replier entries counted" 2
    (Cesrm.Host.cache_invalidations host);
  check Alcotest.bool "the departed replier is presumed dead" true
    (Cesrm.Host.replier_dead host ~replier:4);
  check Alcotest.bool "the survivor is not" false (Cesrm.Host.replier_dead host ~replier:5);
  (* idempotent: a second invalidation has nothing left to expire *)
  Cesrm.Host.invalidate_replier host ~replier:4;
  check Alcotest.int "no double counting" 2 (Cesrm.Host.cache_invalidations host);
  (* a reply heard from a rejoined replier revives it (the ordinary
     presumed-dead revival path) *)
  Cesrm.Host.revive_replier host ~replier:4;
  check Alcotest.bool "rejoin revives via a heard reply" false
    (Cesrm.Host.replier_dead host ~replier:4)

let test_multi_source_streams () =
  (* Two concurrent streams — the root and receiver 5 both transmit —
     with losses in each; recovery state and caches are per source
     (paper Section 3.1). *)
  let tree = sample_tree () in
  let engine = Sim.Engine.create ~seed:77L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match (p.payload, p.sender) with
      | Net.Packet.Data { seq }, 0 -> down && link = 3 && (seq = 5 || seq = 20)
      (* receiver 5's stream climbs to the root before descending, so
         its packets also cross link 4 downward toward receiver 4 *)
      | Net.Packet.Data { seq }, 5 -> down && link = 4 && (seq = 7 || seq = 21)
      | _ -> false);
  let proto =
    Cesrm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:30 ~period:0.05 ()
  in
  Cesrm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Cesrm.Proto.add_stream proto ~src:5 ~n_packets:30 ~period:0.05 ~start_at:5.0;
  Sim.Engine.run ~until:120.0 engine;
  let recs = Stats.Recovery.records (Cesrm.Proto.recoveries proto) in
  let by_src src = List.filter (fun (r : Stats.Recovery.record) -> r.src = src) recs in
  check Alcotest.int "stream 0 losses recovered" 2 (List.length (by_src 0));
  check Alcotest.int "stream 5 losses recovered" 2 (List.length (by_src 5));
  (* The two caches on receiver 3 are independent objects. *)
  let host3 = Cesrm.Proto.host proto 3 in
  check Alcotest.bool "per-source caches are distinct" true
    (Cesrm.Host.cache ~src:0 host3 != Cesrm.Host.cache ~src:5 host3);
  (* Receiver 3 lost packets from stream 0; receiver 4 from stream 5.
     Their caches reflect only their own streams' recoveries. *)
  check Alcotest.bool "stream-0 cache populated on 3" true
    (Cesrm.Cache.size (Cesrm.Host.cache ~src:0 host3) > 0)

let test_multi_source_repeat_expedited () =
  (* Repeated losses within the second stream also go expedited. *)
  let tree = sample_tree () in
  let engine = Sim.Engine.create ~seed:78L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match (p.payload, p.sender) with
      | Net.Packet.Data { seq }, 5 -> down && link = 4 && (seq = 5 || seq = 20)
      | _ -> false);
  let proto =
    Cesrm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:30 ~period:0.05 ()
  in
  Cesrm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Cesrm.Proto.add_stream proto ~src:5 ~n_packets:30 ~period:0.05 ~start_at:5.0;
  Sim.Engine.run ~until:120.0 engine;
  let recs = Stats.Recovery.records (Cesrm.Proto.recoveries proto) in
  let second =
    List.find (fun (r : Stats.Recovery.record) -> r.src = 5 && r.seq = 20) recs
  in
  check Alcotest.bool "repeat loss in stream 5 expedited" true second.expedited

let test_cesrm_beats_srm_on_trace () =
  let gen = Mtrace.Generator.synthesize ~n_packets:1500 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let srm = Harness.Runner.run Harness.Runner.Srm_protocol gen.trace att in
  let cesrm =
    Harness.Runner.run (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config) gen.trace att
  in
  check Alcotest.int "srm complete" 0 srm.unrecovered;
  check Alcotest.int "cesrm complete" 0 cesrm.unrecovered;
  let mean res = Stats.Summary.mean (Stats.Recovery.latency_summary res.Harness.Runner.recoveries) in
  check Alcotest.bool "cesrm mean latency lower" true (mean cesrm < mean srm);
  check Alcotest.bool "cesrm sends fewer retransmissions" true
    (Net.Cost.retransmission_overhead cesrm.cost < Net.Cost.retransmission_overhead srm.cost)

let () =
  Alcotest.run "cesrm"
    [
      ( "cache",
        [
          Alcotest.test_case "insert and recency" `Quick test_cache_insert_and_recency;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "optimal update" `Quick test_cache_optimal_update;
          Alcotest.test_case "recovery delay" `Quick test_cache_recovery_delay;
          Alcotest.test_case "most frequent" `Quick test_cache_most_frequent;
          Alcotest.test_case "validation" `Quick test_cache_validation;
          qcheck prop_cache_bounded_and_sorted;
        ] );
      ( "retention",
        [
          Alcotest.test_case "names round-trip" `Quick test_retention_names;
          qcheck prop_lru_use_order;
          qcheck prop_ttl_expiry;
          qcheck prop_hotspot_ordering;
          qcheck prop_default_matches_reference;
        ] );
      ( "policy",
        [
          Alcotest.test_case "names" `Quick test_policy_names;
          Alcotest.test_case "choices" `Quick test_policy_choices;
          Alcotest.test_case "success-biased" `Quick test_policy_success_biased;
        ] );
      ( "host",
        [
          Alcotest.test_case "repeat loss goes expedited" `Quick test_repeat_loss_goes_expedited;
          Alcotest.test_case "expedited suppresses SRM" `Quick
            test_expedited_suppresses_srm_request;
          Alcotest.test_case "failed expedited falls back" `Quick test_failed_expedited_falls_back;
          Alcotest.test_case "only cached requestor expedites" `Quick
            test_only_cached_requestor_expedites;
          Alcotest.test_case "reorder delay cancels" `Quick test_reorder_delay_cancels_expedited;
          Alcotest.test_case "Eq.(2) latency bound" `Quick test_expedited_recovery_latency_bound;
          Alcotest.test_case "router assist exposure" `Quick test_router_assist_reduces_exposure;
        ] );
      ( "churn",
        [ Alcotest.test_case "invalidate departed replier" `Quick test_invalidate_replier ] );
      ( "multi-source",
        [
          Alcotest.test_case "two streams" `Quick test_multi_source_streams;
          Alcotest.test_case "repeat expedited" `Quick test_multi_source_repeat_expedited;
        ] );
      ( "integration",
        [ Alcotest.test_case "cesrm beats srm" `Quick test_cesrm_beats_srm_on_trace ] );
    ]
