(* The fault-injection subsystem: plan DSL round-trips and validation,
   canned plans leaving the protocol-invariant oracle clean for both
   protocols, mutation self-tests proving the oracle rejects a broken
   protocol, retry back-off / cache expiry for presumed-dead repliers,
   and a model-based battery: random bounded fault plans must preserve
   liveness, and a failing plan must minimize to its one bad event. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* 0 - 1 - 3 (rcvr)
       \ 4 (rcvr)
     2 - 5 (rcvr)  *)
let sample_tree () = Net.Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

(* --- Plan DSL --------------------------------------------------------- *)

let kitchen_sink =
  Fault.Plan.make ~name:"kitchen-sink"
    [
      Fault.Plan.Link_down { link = 3; from_ = 5.5; until = 6.0 };
      Fault.Plan.Link_jitter { link = 1; from_ = 5.0; until = 7.0; max_jitter = 0.03 };
      Fault.Plan.Link_dup { link = 5; from_ = 5.2; until = 5.4 };
      Fault.Plan.Crash { node = 4; at = 5.6; restart_at = Some 6.2 };
      Fault.Plan.Partition { root = 2; from_ = 6.0; until = 6.5 };
    ]

let plan_string p = Obs.Json.to_string (Fault.Plan.to_json p)

let test_plan_json_roundtrip () =
  match Fault.Plan.of_json (Fault.Plan.to_json kitchen_sink) with
  | Error msg -> Alcotest.fail msg
  | Ok plan' ->
      check Alcotest.string "json round-trip" (plan_string kitchen_sink) (plan_string plan');
      check Alcotest.string "name survives" "kitchen-sink" plan'.Fault.Plan.name;
      check Alcotest.int "all five event kinds" 5 (Fault.Plan.n_events plan');
      (* a crash without restart round-trips its null *)
      let down = Fault.Plan.make [ Fault.Plan.Crash { node = 3; at = 1.0; restart_at = None } ] in
      match Fault.Plan.of_json (Fault.Plan.to_json down) with
      | Ok down' -> check Alcotest.string "restart_at = null" (plan_string down) (plan_string down')
      | Error msg -> Alcotest.fail msg

let test_plan_save_load () =
  let file = Filename.temp_file "cesrm-fault" ".json" in
  Fault.Plan.save kitchen_sink ~file;
  let loaded = Fault.Plan.load file in
  Sys.remove file;
  match loaded with
  | Error msg -> Alcotest.fail msg
  | Ok plan' -> check Alcotest.string "file round-trip" (plan_string kitchen_sink) (plan_string plan')

let test_plan_validation () =
  let tree = sample_tree () in
  let expect_invalid name events =
    match Fault.Plan.validate ~tree (Fault.Plan.make events) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be rejected" name
  in
  (match Fault.Plan.validate ~tree kitchen_sink with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "kitchen sink should validate: %s" msg);
  expect_invalid "link 0" [ Fault.Plan.Link_down { link = 0; from_ = 1.; until = 2. } ];
  expect_invalid "link out of range" [ Fault.Plan.Link_down { link = 9; from_ = 1.; until = 2. } ];
  expect_invalid "negative from" [ Fault.Plan.Link_down { link = 1; from_ = -1.; until = 2. } ];
  expect_invalid "empty window" [ Fault.Plan.Link_down { link = 1; from_ = 2.; until = 2. } ];
  expect_invalid "non-positive jitter"
    [ Fault.Plan.Link_jitter { link = 1; from_ = 1.; until = 2.; max_jitter = 0. } ];
  expect_invalid "crash of a router" [ Fault.Plan.Crash { node = 1; at = 1.; restart_at = None } ];
  expect_invalid "crash of the source" [ Fault.Plan.Crash { node = 0; at = 1.; restart_at = None } ];
  expect_invalid "restart before crash"
    [ Fault.Plan.Crash { node = 3; at = 2.; restart_at = Some 1. } ];
  expect_invalid "partition at the root"
    [ Fault.Plan.Partition { root = 0; from_ = 1.; until = 2. } ]

let test_plan_compile_rejects_invalid () =
  let tree = sample_tree () in
  let engine = Sim.Engine.create ~seed:1L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  let bad = Fault.Plan.make [ Fault.Plan.Link_down { link = 42; from_ = 1.; until = 2. } ] in
  match Fault.Plan.compile ~network bad with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "compile should reject an invalid plan"

let test_canned_plans () =
  let tree = sample_tree () in
  check Alcotest.int "five canned plans" 5 (List.length Fault.Plan.canned_names);
  List.iter
    (fun name ->
      match Fault.Plan.canned ~tree ~warmup:5. ~duration:10. name with
      | None -> Alcotest.failf "canned %s missing" name
      | Some plan -> (
          check Alcotest.string "canned plan is named" name plan.Fault.Plan.name;
          check Alcotest.bool "canned plan has events" true (Fault.Plan.n_events plan > 0);
          match Fault.Plan.validate ~tree plan with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "canned %s invalid: %s" name msg))
    Fault.Plan.canned_names;
  check Alcotest.bool "unknown canned name" true
    (Fault.Plan.canned ~tree ~warmup:5. ~duration:10. "nosuch" = None)

(* --- Canned plans leave the oracle clean (both protocols) ------------- *)

let test_canned_clean_oracle () =
  let row = Mtrace.Meta.nth 4 in
  List.iter
    (fun fault ->
      List.iter
        (fun proto ->
          let res = Harness.Runner.run_leg ~n_packets:600 ~fault ~seed:11L proto row in
          let label = fault ^ "/" ^ Harness.Runner.protocol_name proto in
          check Alcotest.bool "oracle attached" true (res.oracle <> None);
          check Alcotest.int (label ^ " oracle clean") 0 res.oracle_violations;
          check Alcotest.int (label ^ " everything recovered") 0 res.unrecovered;
          check Alcotest.int (label ^ " oracle counter agrees") res.oracle_violations
            (Stats.Counters.total res.counters Stats.Counters.Oracle))
        [ Harness.Runner.Srm_protocol; Harness.Runner.Cesrm_protocol Cesrm.Host.default_config ])
    Fault.Plan.canned_names

let test_unknown_fault_name () =
  match Harness.Runner.run_leg ~n_packets:50 ~fault:"nosuch" ~seed:1L Harness.Runner.Srm_protocol
          (Mtrace.Meta.nth 4)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown canned fault name should raise"

(* --- Mutation self-tests: the oracle must reject a broken protocol ---- *)

(* Deploy plain SRM on the sample tree, dropping data packet [seq] on
   link [l] for each (seq, l) in [drops], with [mutation] injected into
   every member, and return the finalized oracle. *)
let run_mutated ?mutation ?(drops = [ (5, 3) ]) () =
  let engine = Sim.Engine.create ~seed:7L () in
  let network = Net.Network.create ~engine ~tree:(sample_tree ()) ~link_delay:0.02 () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Data { seq } -> down && List.mem (seq, link) drops
      | _ -> false);
  let oracle = Fault.Oracle.create ~network () in
  let proto = Srm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:10 ~period:0.05 () in
  List.iter
    (fun (_, h) ->
      Fault.Oracle.attach_host oracle h;
      Option.iter (Srm.Host.inject_mutation h) mutation)
    (Srm.Proto.members proto);
  Srm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Sim.Engine.run ~until:120.0 engine;
  Fault.Oracle.finalize oracle;
  oracle

let has_invariant oracle inv =
  List.exists (fun v -> v.Fault.Oracle.invariant = inv) (Fault.Oracle.violations oracle)

let test_oracle_baseline_clean () =
  let oracle = run_mutated () in
  check Alcotest.bool "unmutated run is clean" true (Fault.Oracle.clean oracle);
  check Alcotest.int "no violations" 0 (Fault.Oracle.n_violations oracle)

let test_oracle_rejects_suppressed_replies () =
  (* No member ever puts a reply on the wire, so the dropped packet is
     never repaired: the liveness invariant must fire for the loser. *)
  let oracle = run_mutated ~mutation:Srm.Host.Suppress_replies () in
  check Alcotest.bool "not clean" false (Fault.Oracle.clean oracle);
  check Alcotest.bool "liveness violated" true (has_invariant oracle "liveness");
  check Alcotest.bool "the loser is charged" true
    (List.exists (fun v -> v.Fault.Oracle.node = 3) (Fault.Oracle.violations oracle))

let test_oracle_rejects_double_delivery () =
  let oracle = run_mutated ~mutation:Srm.Host.Double_deliver () in
  check Alcotest.bool "not clean" false (Fault.Oracle.clean oracle);
  check Alcotest.bool "duplicate delivery caught" true
    (has_invariant oracle "duplicate-delivery")

let test_oracle_json_and_pp () =
  let oracle = run_mutated ~mutation:Srm.Host.Suppress_replies () in
  (match Fault.Oracle.to_json oracle with
  | Obs.Json.Obj fields -> (
      (match List.assoc_opt "count" fields with
      | Some (Obs.Json.Num n) ->
          check Alcotest.int "count field" (Fault.Oracle.n_violations oracle) (int_of_float n)
      | _ -> Alcotest.fail "no count field");
      match List.assoc_opt "violations" fields with
      | Some (Obs.Json.Arr vs) ->
          check Alcotest.int "one row per violation" (Fault.Oracle.n_violations oracle)
            (List.length vs)
      | _ -> Alcotest.fail "no violations array")
  | _ -> Alcotest.fail "oracle json is not an object");
  let rendered = Format.asprintf "%a" Fault.Oracle.pp oracle in
  check Alcotest.bool "pp names the invariant" true
    (let sub = "liveness" in
     let n = String.length sub and m = String.length rendered in
     let rec go i = i + n <= m && (String.sub rendered i n = sub || go (i + 1)) in
     go 0)

(* The expedited-retry bound targets a *silent* replier: driving raw
   packets past the oracle's tap, an unanswered hammer must trip it,
   while any reply heard from the replier must reset the streak (a
   live replier may legitimately draw many expedited requests it
   cannot answer — post-heal it can lack the very packets asked for). *)
let drive_oracle sends =
  let engine = Sim.Engine.create ~seed:1L () in
  let network = Net.Network.create ~engine ~tree:(sample_tree ()) ~link_delay:0.02 () in
  let oracle = Fault.Oracle.create ~network () in
  List.iteri
    (fun i payload ->
      ignore
        (Sim.Engine.schedule engine ~after:(0.1 *. float_of_int (i + 1)) (fun () ->
             Net.Network.unicast network ~from:3 ~dst:5 { Net.Packet.sender = 3; payload })))
    sends;
  Sim.Engine.run engine;
  Fault.Oracle.finalize oracle;
  oracle

let exp_req seq =
  Net.Packet.Exp_request
    { src = 0; seq; requestor = 3; d_qs = 0.1; replier = 5; turning_point = None }

let plain_reply seq =
  Net.Packet.Reply
    {
      src = 0;
      seq;
      requestor = 4;
      d_qs = 0.1;
      replier = 5;
      d_rq = 0.05;
      expedited = false;
      turning_point = None;
    }

let test_oracle_retry_bound_silent_replier () =
  let oracle = drive_oracle (List.init 13 exp_req) in
  check Alcotest.bool "silent replier hammered past the bound" true
    (has_invariant oracle "expedited-retry")

let test_oracle_retry_reset_on_reply () =
  let oracle =
    drive_oracle (List.init 12 exp_req @ [ plain_reply 100 ] @ List.init 12 (fun i -> exp_req (12 + i)))
  in
  check Alcotest.bool "any reply from the replier resets the streak" true
    (Fault.Oracle.clean oracle)

(* --- Retry back-off: presumed-dead repliers and cache expiry ---------- *)

let cache_entry ~seq ~replier =
  { Cesrm.Cache.seq; requestor = 3; d_qs = 0.1; replier; d_rq = 0.05; turning_point = None }

let test_cache_expire_replier () =
  let c = Cesrm.Cache.create ~capacity:8 () in
  ignore (Cesrm.Cache.note_reply c (cache_entry ~seq:1 ~replier:2));
  ignore (Cesrm.Cache.note_reply c (cache_entry ~seq:2 ~replier:4));
  ignore (Cesrm.Cache.note_reply c (cache_entry ~seq:3 ~replier:2));
  Cesrm.Cache.expire_replier c ~replier:2;
  check Alcotest.int "only the other replier's entry left" 1 (Cesrm.Cache.size c);
  check Alcotest.(option int) "survivor" (Some 4)
    (Option.map (fun (e : Cesrm.Cache.entry) -> e.replier) (Cesrm.Cache.most_recent c))

let test_policy_exclude () =
  let c = Cesrm.Cache.create ~capacity:8 () in
  ignore (Cesrm.Cache.note_reply c (cache_entry ~seq:1 ~replier:2));
  ignore (Cesrm.Cache.note_reply c (cache_entry ~seq:2 ~replier:4));
  let exclude ~replier = replier = 4 in
  List.iter
    (fun policy ->
      match Cesrm.Policy.choose ~exclude policy c with
      | Some e ->
          check Alcotest.int
            (Cesrm.Policy.name policy ^ " avoids the excluded replier")
            2 e.Cesrm.Cache.replier
      | None -> Alcotest.failf "%s found no pair" (Cesrm.Policy.name policy))
    Cesrm.Policy.all;
  check Alcotest.bool "all excluded -> no pair" true
    (Cesrm.Policy.choose ~exclude:(fun ~replier:_ -> true) Cesrm.Policy.Most_recent c = None)

let test_replier_failure_limit () =
  let engine = Sim.Engine.create ~seed:1L () in
  let network = Net.Network.create ~engine ~tree:(sample_tree ()) ~link_delay:0.02 () in
  let config = { Cesrm.Host.default_config with replier_failure_limit = Some 2 } in
  let proto =
    Cesrm.Proto.deploy ~config ~network ~params:Srm.Params.default ~n_packets:5 ~period:0.05 ()
  in
  let h = Cesrm.Proto.host proto 3 in
  ignore (Cesrm.Cache.note_reply (Cesrm.Host.cache h) (cache_entry ~seq:1 ~replier:5));
  check Alcotest.bool "alive before any failure" false (Cesrm.Host.replier_dead h ~replier:5);
  Cesrm.Host.note_replier_failure h ~replier:5;
  check Alcotest.bool "one failure is under the limit" false
    (Cesrm.Host.replier_dead h ~replier:5);
  Cesrm.Host.note_replier_failure h ~replier:5;
  check Alcotest.bool "limit reached: presumed dead" true (Cesrm.Host.replier_dead h ~replier:5);
  check Alcotest.int "its cache entries expired" 0 (Cesrm.Cache.size (Cesrm.Host.cache h));
  Cesrm.Host.revive_replier h ~replier:5;
  check Alcotest.bool "a heard reply revives it" false (Cesrm.Host.replier_dead h ~replier:5)

(* --- Model-based battery: random bounded plans preserve liveness ------ *)

(* Run [plan] over a small synthetic group (30 packets, 50 ms period,
   data phase 5.0..6.5 s, session until ~21.5 s) and report whether the
   oracle stayed clean. The robustness extensions are on, as under
   [Harness.Runner.run ?fault_plan]. *)
let run_plan ?(protocol = `Srm) plan =
  let tree = sample_tree () in
  let engine = Sim.Engine.create ~seed:5L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  let params =
    { Srm.Params.default with rearm_backoff = Some Srm.Params.default.Srm.Params.session_period }
  in
  let oracle = Fault.Oracle.create ~network () in
  (match protocol with
  | `Srm ->
      let proto = Srm.Proto.deploy ~network ~params ~n_packets:30 ~period:0.05 () in
      let on_restart ~node =
        Option.iter Srm.Host.restart_recovery (List.assoc_opt node (Srm.Proto.members proto))
      in
      Fault.Plan.compile ~network ~on_restart plan;
      List.iter (fun (_, h) -> Fault.Oracle.attach_host oracle h) (Srm.Proto.members proto);
      Srm.Proto.start proto ~warmup:5.0 ~tail:15.0
  | `Cesrm ->
      let config = { Cesrm.Host.default_config with replier_failure_limit = Some 4 } in
      let proto =
        Cesrm.Proto.deploy ~config ~network ~params ~n_packets:30 ~period:0.05 ()
      in
      let on_restart ~node =
        Option.iter
          (fun h ->
            Cesrm.Host.reset_caches h;
            Srm.Host.restart_recovery (Cesrm.Host.srm h))
          (List.assoc_opt node (Cesrm.Proto.members proto))
      in
      Fault.Plan.compile ~network ~on_restart plan;
      List.iter
        (fun (_, h) -> Fault.Oracle.attach_host oracle (Cesrm.Host.srm h))
        (Cesrm.Proto.members proto);
      Cesrm.Proto.start proto ~warmup:5.0 ~tail:15.0);
  Sim.Engine.run ~until:120.0 engine;
  Fault.Oracle.finalize oracle;
  Fault.Oracle.clean oracle

(* Bounded events on the sample tree: every window lies inside
   [5.0, 8.6), well before the session ends (~21.5 s), and every crash
   restarts — no fault may isolate anyone past the end of the run. *)
let gen_event =
  QCheck.Gen.(
    int_range 0 4 >>= fun kind ->
    int_range 1 5 >>= fun link ->
    int_range 0 25 >>= fun a ->
    int_range 1 10 >>= fun len ->
    let from_ = 5.0 +. (0.1 *. float_of_int a) in
    let until = from_ +. (0.1 *. float_of_int len) in
    match kind with
    | 0 -> return (Fault.Plan.Link_down { link; from_; until })
    | 1 -> return (Fault.Plan.Link_jitter { link; from_; until; max_jitter = 0.03 })
    | 2 -> return (Fault.Plan.Link_dup { link; from_; until })
    | 3 ->
        (* the no-restart crash probes the oracle's liveness exemption
           for members still down at the end of the run *)
        let node = [| 3; 4; 5 |].(link mod 3) in
        let restart_at = if len > 2 then Some until else None in
        return (Fault.Plan.Crash { node; at = from_; restart_at })
    | _ -> return (Fault.Plan.Partition { root = link; from_; until }))

let print_events events = Obs.Json.to_string (Fault.Plan.to_json (Fault.Plan.make events))

let arbitrary_plan =
  QCheck.make ~print:print_events
    ~shrink:QCheck.Shrink.(list ?shrink:None)
    QCheck.Gen.(list_size (int_range 0 4) gen_event)

(* --- Battery at scale: a generated 512-receiver topology -------------- *)

(* The same model-based property on a synthetic scale group: random
   bounded fault plans against the full harness path (ground-truth
   Gilbert losses, scale tuning — oracle distances, source-only
   sessions, widened suppression windows) must leave the invariant
   oracle clean. The trace is synthesized once; link and crash-node
   draws come from its actual tree, so plans stay meaningful at this
   size (crashes always hit members, never routers). *)
let scale_case =
  lazy
    (let row = Mtrace.Scale.find "SCALE-bf-512" in
     let gen = Mtrace.Generator.synthesize ~n_packets:30 row in
     (gen.Mtrace.Generator.trace, gen.Mtrace.Generator.link_bad))

let run_plan_scale ~protocol plan =
  let trace, link_bad = Lazy.force scale_case in
  let setup = Harness.Runner.tune_for_trace trace Harness.Runner.default_setup in
  let res =
    Harness.Runner.run_model ~setup ~fault_plan:plan protocol trace
      (Harness.Runner.Ground_truth link_bad)
  in
  res.Harness.Runner.oracle_violations = 0

let gen_event_scale =
  let trace, _ = Lazy.force scale_case in
  let tree = Mtrace.Trace.tree trace in
  let receivers = Net.Tree.receivers tree in
  let n_links = Net.Tree.n_nodes tree - 1 in
  QCheck.Gen.(
    int_range 0 4 >>= fun kind ->
    int_range 1 n_links >>= fun link ->
    int_range 0 25 >>= fun a ->
    int_range 1 10 >>= fun len ->
    let from_ = 5.0 +. (0.1 *. float_of_int a) in
    let until = from_ +. (0.1 *. float_of_int len) in
    match kind with
    | 0 -> return (Fault.Plan.Link_down { link; from_; until })
    | 1 -> return (Fault.Plan.Link_jitter { link; from_; until; max_jitter = 0.03 })
    | 2 -> return (Fault.Plan.Link_dup { link; from_; until })
    | 3 ->
        let node = receivers.(link mod Array.length receivers) in
        let restart_at = if len > 2 then Some until else None in
        return (Fault.Plan.Crash { node; at = from_; restart_at })
    | _ -> return (Fault.Plan.Partition { root = link; from_; until }))

let arbitrary_scale_plan =
  QCheck.make ~print:print_events
    ~shrink:QCheck.Shrink.(list ?shrink:None)
    QCheck.Gen.(list_size (int_range 0 4) gen_event_scale)

let prop_scale_plans_oracle_clean_srm =
  QCheck.Test.make ~name:"fault: bounded plans on 512-receiver scale group, SRM" ~count:8
    arbitrary_scale_plan (fun events ->
      run_plan_scale ~protocol:Harness.Runner.Srm_protocol (Fault.Plan.make events))

let prop_scale_plans_oracle_clean_cesrm =
  QCheck.Test.make ~name:"fault: bounded plans on 512-receiver scale group, CESRM" ~count:5
    arbitrary_scale_plan (fun events ->
      run_plan_scale
        ~protocol:(Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
        (Fault.Plan.make events))

let prop_bounded_plans_liveness_srm =
  QCheck.Test.make ~name:"fault: bounded random plans keep SRM live and clean" ~count:30
    arbitrary_plan (fun events -> run_plan ~protocol:`Srm (Fault.Plan.make events))

let prop_bounded_plans_liveness_cesrm =
  QCheck.Test.make ~name:"fault: bounded random plans keep CESRM live and clean" ~count:15
    arbitrary_plan (fun events -> run_plan ~protocol:`Cesrm (Fault.Plan.make events))

(* A failing plan must shrink to a minimal one: greedy single-event
   removal to fixpoint, the same minimization QCheck's list shrinker
   performs, applied deterministically.

   Note a leaf cut off forever never even *detects* its losses (no
   later packet arrives to reveal the gap), so one unbounded outage
   alone cannot violate liveness. The genuinely minimal failing plan
   here is a pair: a short outage that creates detected losses, plus an
   unbounded outage that swallows every repair — neither fails alone. *)
(* Regression: the sweep cell UCB960424/cesrm/s0/partition-heal at this
   derived seed. Post-heal, a cached replier is alive (its ordinary
   replies keep it cached and keep reviving it) but lacks the packets
   it is asked for, so it draws expedited requests past the retry
   bound without an expedited reply — which is graceful degradation,
   not hammering a dead replier, and the oracle must accept it. *)
let test_post_heal_alive_replier () =
  let res =
    Harness.Runner.run_leg ~n_packets:300 ~fault:"partition-heal" ~seed:5139283748462763858L
      (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
      (Mtrace.Meta.find "UCB960424")
  in
  check Alcotest.int "oracle clean" 0 res.Harness.Runner.oracle_violations;
  check Alcotest.int "all recovered" 0 res.Harness.Runner.unrecovered

let test_minimal_failing_plan () =
  let fails events = not (run_plan ~protocol:`Srm (Fault.Plan.make events)) in
  (* drops data seqs 1..5 on node 3's uplink; seq 6 arrives and reveals
     the gap at ~5.3 s *)
  let detect = Fault.Plan.Link_down { link = 3; from_ = 5.0; until = 5.25 } in
  (* from 5.35 s on, nothing crosses that link again: the detected
     losses can never be repaired, yet node 3 stays up *)
  let starve = Fault.Plan.Link_down { link = 3; from_ = 5.35; until = 1e9 } in
  let initial =
    [
      Fault.Plan.Link_jitter { link = 1; from_ = 5.0; until = 6.0; max_jitter = 0.03 };
      detect;
      Fault.Plan.Link_dup { link = 5; from_ = 5.2; until = 5.6 };
      starve;
      Fault.Plan.Link_down { link = 5; from_ = 5.4; until = 5.8 };
    ]
  in
  check Alcotest.bool "detected-then-starved losses violate liveness" true (fails initial);
  check Alcotest.bool "neither bad event fails alone" false
    (fails [ detect ] || fails [ starve ]);
  let rec minimize events =
    let without i = List.filteri (fun j _ -> j <> i) events in
    let rec try_drop i =
      if i >= List.length events then None
      else if fails (without i) then Some (without i)
      else try_drop (i + 1)
    in
    match try_drop 0 with Some smaller -> minimize smaller | None -> events
  in
  match minimize initial with
  | [ a; b ] ->
      check Alcotest.bool "minimal plan is exactly the detect/starve pair" true
        (a = detect && b = starve)
  | events ->
      Alcotest.failf "minimization stalled at %d events: %s" (List.length events)
        (print_events events)

(* --- Faulted recovery domains ----------------------------------------- *)

(* Hierarchical local recovery under faults: domain mode reroutes
   requests at designated repliers and scopes repairs to domain
   subtrees, so a crashed or partitioned replier must not strand its
   domain — unanswered local rounds escalate up the chain until a
   live replier answers. Every case demands a clean oracle and full
   recovery. *)

let run_plan_domains ~protocol plan =
  let trace, link_bad = Lazy.force scale_case in
  let setup =
    Harness.Runner.tune_for_trace ~domains:Rdomain.Auto trace Harness.Runner.default_setup
  in
  let res =
    Harness.Runner.run_model ~setup ~fault_plan:plan ~domains:Rdomain.Auto protocol trace
      (Harness.Runner.Ground_truth link_bad)
  in
  res.Harness.Runner.oracle_violations = 0 && res.unrecovered = 0

let both_protocols =
  [ Harness.Runner.Srm_protocol; Harness.Runner.Cesrm_protocol Cesrm.Host.default_config ]

let test_canned_clean_oracle_domains () =
  let row = Mtrace.Scale.find "SCALE-bf-256" in
  List.iter
    (fun fault ->
      List.iter
        (fun proto ->
          let res =
            Harness.Runner.run_leg ~n_packets:100 ~fault ~seed:11L ~domains:Rdomain.Auto proto
              row
          in
          let label = fault ^ "/" ^ Harness.Runner.protocol_name proto ^ "/domains" in
          check Alcotest.bool (label ^ " oracle attached") true (res.oracle <> None);
          check Alcotest.int (label ^ " oracle clean") 0 res.oracle_violations;
          check Alcotest.int (label ^ " audit clean") 0 res.audit_violations;
          check Alcotest.int (label ^ " everything recovered") 0 res.unrecovered)
        both_protocols)
    Fault.Plan.canned_names

(* The designated repliers of the scale group's domains, source
   excluded — the nodes whose crash hits hierarchical recovery where
   it concentrates state. *)
let scale_repliers =
  lazy
    (let trace, _ = Lazy.force scale_case in
     let tree = Mtrace.Trace.tree trace in
     let d = Rdomain.of_tree ~tree Rdomain.Auto in
     let rs = ref [] in
     for dom = 0 to Rdomain.n_domains d - 1 do
       let r = Rdomain.replier d dom in
       if r <> 0 then rs := r :: !rs
     done;
     Array.of_list (List.sort_uniq compare !rs))

(* Crashing a designated replier mid-stream (with restart) leaves its
   domain requesting into a void for the local rounds; escalation must
   carry recovery to the parent domain and the oracle must stay
   clean. *)
let test_replier_crash_domains () =
  let repliers = Lazy.force scale_repliers in
  check Alcotest.bool "scale group has non-source repliers" true (Array.length repliers > 0);
  let plan =
    Fault.Plan.make ~name:"crash-designated-replier"
      [ Fault.Plan.Crash { node = repliers.(0); at = 5.4; restart_at = Some 6.4 } ]
  in
  List.iter
    (fun proto ->
      check Alcotest.bool
        (Harness.Runner.protocol_name proto ^ ": designated-replier crash stays clean")
        true
        (run_plan_domains ~protocol:proto plan))
    both_protocols

(* Random replier crash + overlapping partition: the partition may cut
   the very escalation path the crash forces recovery onto; both heal
   inside the run, so liveness must survive the overlap. *)
let gen_domain_fault_plan =
  let trace, _ = Lazy.force scale_case in
  let n_links = Net.Tree.n_nodes (Mtrace.Trace.tree trace) - 1 in
  let repliers = Lazy.force scale_repliers in
  QCheck.Gen.(
    int_range 0 (Array.length repliers - 1) >>= fun ri ->
    int_range 1 n_links >>= fun proot ->
    int_range 0 15 >>= fun ca ->
    int_range 1 8 >>= fun clen ->
    int_range 0 15 >>= fun pa ->
    int_range 1 8 >>= fun plen ->
    let crash_at = 5.0 +. (0.1 *. float_of_int ca) in
    let crash_until = crash_at +. (0.1 *. float_of_int clen) in
    let part_from = 5.0 +. (0.1 *. float_of_int pa) in
    let part_until = part_from +. (0.1 *. float_of_int plen) in
    return
      [
        Fault.Plan.Crash { node = repliers.(ri); at = crash_at; restart_at = Some crash_until };
        Fault.Plan.Partition { root = proot; from_ = part_from; until = part_until };
      ])

let arbitrary_domain_plan = QCheck.make ~print:print_events gen_domain_fault_plan

let prop_domain_crash_partition_srm =
  QCheck.Test.make ~name:"fault: replier crash + partition overlap with domains, SRM" ~count:6
    arbitrary_domain_plan (fun events ->
      run_plan_domains ~protocol:Harness.Runner.Srm_protocol (Fault.Plan.make events))

let prop_domain_crash_partition_cesrm =
  QCheck.Test.make ~name:"fault: replier crash + partition overlap with domains, CESRM"
    ~count:4 arbitrary_domain_plan (fun events ->
      run_plan_domains
        ~protocol:(Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
        (Fault.Plan.make events))

(* --- Steady-state retirement under faults ----------------------------- *)

(* Retirement (lib/steady) must stay invisible under fault plans too:
   the stability floor is gated by the slowest member's delivered
   prefix, so a partitioned or crashed member freezes it rather than
   losing state it still needs. Each case runs a canned plan with an
   aggressively small window against the never-retiring reference
   (window = n_packets) on the same streaming trace and demands a
   clean, byte-identical outcome. *)
let steady_fingerprint (r : Harness.Runner.result) =
  let total k = Stats.Counters.total r.counters k in
  let summary = Stats.Recovery.latency_summary r.recoveries in
  Printf.sprintf
    "rqst=%d exp_rqst=%d repl=%d exp_repl=%d detected=%d unrecovered=%d recoveries=%d \
     audit=%d oracle=%d lat_mean=%.17g"
    (total Stats.Counters.Rqst) (total Stats.Counters.Exp_rqst) (total Stats.Counters.Repl)
    (total Stats.Counters.Exp_repl) r.detected r.unrecovered
    (Stats.Recovery.count r.recoveries) r.audit_violations r.oracle_violations
    (Stats.Summary.mean summary)

let steady_faulted ~window ~fault =
  let row = Mtrace.Scale.find "SCALE-bf-32" in
  Harness.Runner.run_leg ~n_packets:400 ~fault ~seed:42L
    ~steady:(Steady.Config.windowed window)
    (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
    row

let check_steady_faulted name ~window ~fault =
  let finite = steady_faulted ~window ~fault in
  let infinite = steady_faulted ~window:400 ~fault in
  check Alcotest.int (name ^ ": oracle clean") 0 finite.Harness.Runner.oracle_violations;
  check Alcotest.int (name ^ ": audit clean") 0 finite.Harness.Runner.audit_violations;
  check Alcotest.int (name ^ ": all recovered") 0 finite.Harness.Runner.unrecovered;
  check Alcotest.string (name ^ ": identical to infinite window")
    (steady_fingerprint infinite) (steady_fingerprint finite);
  finite

(* Window 1: every request for a just-stabilized seq is a late request
   at the horizon — repliers must serve from their retired-buffer base
   (has_packet stays true at or below it). *)
let test_retire_late_request_at_horizon () =
  let finite = check_steady_faulted "late-request" ~window:1 ~fault:"link-flap" in
  let c = Option.get finite.Harness.Runner.retirement in
  check Alcotest.bool "retirement was active" true (Steady.Controller.floor c > 0)

(* A replier crash whose down time straddles retirement epochs: the
   restarted host rebuilds from live traffic while everyone else keeps
   retiring. *)
let test_retire_crash_restart () =
  ignore (check_steady_faulted "crash-restart" ~window:16 ~fault:"crash-replier")

(* An active partition stalls the partitioned members' prefixes, which
   must freeze the floor (min over members) instead of retiring state
   their post-heal recovery needs. *)
let test_retire_under_partition () =
  let finite = check_steady_faulted "partition" ~window:16 ~fault:"partition-heal" in
  let c = Option.get finite.Harness.Runner.retirement in
  check Alcotest.bool "retirement still completed after heal" true
    (Steady.Controller.floor c > 0)

(* --- Membership churn: plans, churn-safe state, churn-aware oracle ---- *)

let churn_kitchen =
  Fault.Plan.make ~name:"churny"
    [
      Fault.Plan.Join { node = 3; at = 5.4 };
      Fault.Plan.Leave { node = 4; at = 5.2 };
      Fault.Plan.Rejoin { node = 4; at = 5.9 };
    ]

let test_churn_plan_json_roundtrip () =
  check Alcotest.bool "churn plan has churn" true (Fault.Plan.has_churn churn_kitchen);
  check Alcotest.bool "perturbation plan has none" false (Fault.Plan.has_churn kitchen_sink);
  check Alcotest.(list int) "initial absentees are the Join nodes" [ 3 ]
    (Fault.Plan.initial_absentees churn_kitchen);
  match Fault.Plan.of_json (Fault.Plan.to_json churn_kitchen) with
  | Error msg -> Alcotest.fail msg
  | Ok plan' ->
      check Alcotest.string "churn json round-trip" (plan_string churn_kitchen)
        (plan_string plan')

let test_churn_plan_validation () =
  let tree = sample_tree () in
  let expect_invalid name events =
    match Fault.Plan.validate ~tree (Fault.Plan.make events) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be rejected" name
  in
  (match Fault.Plan.validate ~tree churn_kitchen with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "churn kitchen sink should validate: %s" msg);
  expect_invalid "rejoin without a leave" [ Fault.Plan.Rejoin { node = 3; at = 5. } ];
  expect_invalid "rejoin before its leave"
    [ Fault.Plan.Leave { node = 4; at = 6. }; Fault.Plan.Rejoin { node = 4; at = 5. } ];
  expect_invalid "join of a router" [ Fault.Plan.Join { node = 1; at = 5. } ];
  expect_invalid "leave of the source" [ Fault.Plan.Leave { node = 0; at = 5. } ];
  expect_invalid "negative join time" [ Fault.Plan.Join { node = 3; at = -1. } ]

let test_canned_churn_plans () =
  let tree = sample_tree () in
  check Alcotest.int "three churn plans" 3 (List.length Fault.Plan.churn_names);
  List.iter
    (fun name ->
      match Fault.Plan.canned ~tree ~warmup:5. ~duration:10. name with
      | None -> Alcotest.failf "canned churn plan %s missing" name
      | Some plan -> (
          check Alcotest.string "churn plan is named" name plan.Fault.Plan.name;
          check Alcotest.bool "churn plan has churn events" true (Fault.Plan.has_churn plan);
          match Fault.Plan.validate ~tree plan with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "canned %s invalid: %s" name msg))
    Fault.Plan.churn_names;
  (* the perturbation names keep resolving, and never claim churn *)
  match Fault.Plan.canned ~tree ~warmup:5. ~duration:10. "link-flap" with
  | Some p -> check Alcotest.bool "link-flap has no churn" false (Fault.Plan.has_churn p)
  | None -> Alcotest.fail "link-flap should still resolve"

let test_churn_schedules_deterministic () =
  let nodes = [ 3; 4; 5 ] in
  let steady () =
    Fault.Plan.steady_churn ~nodes ~from_:5.0 ~until:6.5 ~rate:4.0 ~half_life:0.2 ()
  in
  check Alcotest.string "steady_churn is a pure function of its arguments"
    (print_events (steady ())) (print_events (steady ()));
  check Alcotest.int "flash crowd joins everyone at once" 3
    (List.length (Fault.Plan.flash_crowd ~nodes ~at:5.3));
  let late = Fault.Plan.late_joiners ~nodes ~at:5.2 ~spread:0.2 in
  check Alcotest.int "late joiners join once each" 3 (List.length late);
  List.iter
    (function
      | Fault.Plan.Join { at; _ } ->
          check Alcotest.bool "stagger within [at, at+spread]" true (at >= 5.2 && at <= 5.4)
      | _ -> Alcotest.fail "late_joiners emits only joins")
    late

(* The canned churn plans leave the oracle clean and every full-window
   member whole, for both protocols. *)
let test_canned_churn_clean_oracle () =
  let row = Mtrace.Meta.nth 4 in
  List.iter
    (fun fault ->
      List.iter
        (fun proto ->
          let res = Harness.Runner.run_leg ~n_packets:600 ~fault ~seed:11L proto row in
          let label = fault ^ "/" ^ Harness.Runner.protocol_name proto in
          check Alcotest.bool (label ^ " oracle attached") true (res.oracle <> None);
          check Alcotest.int (label ^ " oracle clean") 0 res.oracle_violations;
          check Alcotest.int (label ^ " full-window members whole") 0 res.unrecovered;
          check Alcotest.int (label ^ " forgiveness accounted") res.detected
            (Stats.Recovery.count res.recoveries + res.forgiven);
          check Alcotest.int (label ^ " oracle counter agrees") res.oracle_violations
            (Stats.Counters.total res.counters Stats.Counters.Oracle))
        both_protocols)
    Fault.Plan.churn_names

(* Model-based churn battery: random bounded join/leave/rejoin plans on
   a 32-receiver scale group, through the full harness wiring (depart /
   forgiveness, join baselining, peer forgetting, cache invalidation,
   oracle membership timeline) — the oracle must stay clean and every
   full-window member must recover everything. *)
let churn_case =
  lazy
    (let row = Mtrace.Scale.find "SCALE-bf-32" in
     let gen = Mtrace.Generator.synthesize ~n_packets:30 row in
     (gen.Mtrace.Generator.trace, gen.Mtrace.Generator.link_bad))

let churn_phase =
  lazy
    (let trace, _ = Lazy.force churn_case in
     let (setup : Harness.Runner.setup) = Harness.Runner.default_setup in
     (setup.warmup, float_of_int (Mtrace.Trace.n_packets trace) *. Mtrace.Trace.period trace))

let run_churn_model ~protocol plan =
  let trace, link_bad = Lazy.force churn_case in
  let setup = Harness.Runner.tune_for_trace trace Harness.Runner.default_setup in
  Harness.Runner.run_model ~setup ~fault_plan:plan protocol trace
    (Harness.Runner.Ground_truth link_bad)

(* One membership move per node, times on a 32-step grid over the data
   phase (a rejoin may land past it — absences can outlive the data,
   never the session tail). Duplicate node draws keep the first move,
   so every generated (and every shrunk) list compiles to a valid
   plan. *)
let churn_events_of moves =
  let trace, _ = Lazy.force churn_case in
  let receivers = Net.Tree.receivers (Mtrace.Trace.tree trace) in
  let warmup, duration = Lazy.force churn_phase in
  let at step = warmup +. (duration *. float_of_int step /. 32.) in
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun (ri, move) ->
      let node = receivers.(ri mod Array.length receivers) in
      if Hashtbl.mem seen node then []
      else begin
        Hashtbl.add seen node ();
        match move with
        | `Join a -> [ Fault.Plan.Join { node; at = at a } ]
        | `Leave a -> [ Fault.Plan.Leave { node; at = at a } ]
        | `Cycle (a, len) ->
            [
              Fault.Plan.Leave { node; at = at a };
              Fault.Plan.Rejoin { node; at = at (a + len) };
            ]
      end)
    moves

let gen_churn_move =
  QCheck.Gen.(
    int_range 0 2 >>= fun kind ->
    int_range 0 1000 >>= fun ri ->
    int_range 0 31 >>= fun a ->
    int_range 1 8 >>= fun len ->
    return (ri, match kind with 0 -> `Join a | 1 -> `Leave a | _ -> `Cycle (a, len)))

let arbitrary_churn_plan =
  QCheck.make
    ~print:(fun moves -> print_events (churn_events_of moves))
    ~shrink:QCheck.Shrink.(list ?shrink:None)
    QCheck.Gen.(list_size (int_range 0 4) gen_churn_move)

let churn_plan_clean ~protocol moves =
  let res = run_churn_model ~protocol (Fault.Plan.make (churn_events_of moves)) in
  res.Harness.Runner.oracle_violations = 0
  && res.unrecovered = 0
  && res.detected = Stats.Recovery.count res.recoveries + res.forgiven

let prop_churn_plans_clean_srm =
  QCheck.Test.make ~name:"fault: bounded churn plans keep SRM live and clean" ~count:12
    arbitrary_churn_plan
    (churn_plan_clean ~protocol:Harness.Runner.Srm_protocol)

let prop_churn_plans_clean_cesrm =
  QCheck.Test.make ~name:"fault: bounded churn plans keep CESRM live and clean" ~count:8
    arbitrary_churn_plan
    (churn_plan_clean ~protocol:(Harness.Runner.Cesrm_protocol Cesrm.Host.default_config))

(* Mutation self-test: a departed member whose deliveries resume (here:
   its enabled flag is resurrected without a rejoin) must trip the
   deliver-to-departed invariant — churn must actually silence it. *)
let run_departed_delivery ~resurrect () =
  let engine = Sim.Engine.create ~seed:7L () in
  let network = Net.Network.create ~engine ~tree:(sample_tree ()) ~link_delay:0.02 () in
  let oracle = Fault.Oracle.create ~network () in
  let proto = Srm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:10 ~period:0.05 () in
  List.iter (fun (_, h) -> Fault.Oracle.attach_host oracle h) (Srm.Proto.members proto);
  ignore
    (Sim.Engine.schedule_at engine ~at:5.2 (fun () ->
         Net.Network.set_member network 4 false;
         Fault.Oracle.note_membership oracle ~node:4 ~at:5.2 ~member:false));
  if resurrect then
    ignore
      (Sim.Engine.schedule_at engine ~at:5.3 (fun () -> Net.Network.set_enabled network 4 true));
  Srm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Sim.Engine.run ~until:120.0 engine;
  Fault.Oracle.finalize oracle;
  oracle

let test_oracle_rejects_deliver_to_departed () =
  let oracle = run_departed_delivery ~resurrect:true () in
  check Alcotest.bool "resurrected deliveries caught" true
    (has_invariant oracle "deliver-to-departed");
  let honest = run_departed_delivery ~resurrect:false () in
  check Alcotest.bool "an honest departure is clean" true (Fault.Oracle.clean honest)

(* Mutation self-test: expedited requests pinned on a replier that left
   the group. Up to [max_departed_retry] = 2 in-flight unicasts may
   legitimately straddle the leave; the third means the cached pair was
   never invalidated. *)
let drive_oracle_departed n =
  let engine = Sim.Engine.create ~seed:1L () in
  let network = Net.Network.create ~engine ~tree:(sample_tree ()) ~link_delay:0.02 () in
  let oracle = Fault.Oracle.create ~network () in
  ignore
    (Sim.Engine.schedule_at engine ~at:0.05 (fun () ->
         Fault.Oracle.note_membership oracle ~node:5 ~at:0.05 ~member:false));
  List.iteri
    (fun i payload ->
      ignore
        (Sim.Engine.schedule engine ~after:(0.1 *. float_of_int (i + 1)) (fun () ->
             Net.Network.unicast network ~from:3 ~dst:5 { Net.Packet.sender = 3; payload })))
    (List.init n exp_req);
  Sim.Engine.run engine;
  Fault.Oracle.finalize oracle;
  oracle

let test_oracle_rejects_departed_replier_retries () =
  let oracle = drive_oracle_departed 3 in
  check Alcotest.bool "a third unicast to the ghost is caught" true
    (has_invariant oracle "expedited-retry-departed");
  let tolerated = drive_oracle_departed 2 in
  check Alcotest.bool "in-flight timers straddling the leave are tolerated" true
    (Fault.Oracle.clean tolerated)

(* Regression: a plan that empties the receiver set mid-stream must
   complete to the horizon with a clean verdict — every pending loss
   forgiven, nothing charged to the departed, no machinery stuck
   waiting on an empty group. *)
let test_empty_group_mid_stream () =
  let trace, _ = Lazy.force churn_case in
  let receivers = Net.Tree.receivers (Mtrace.Trace.tree trace) in
  let warmup, duration = Lazy.force churn_phase in
  let at = warmup +. (0.4 *. duration) in
  let plan =
    Fault.Plan.make ~name:"everyone-leaves"
      (List.map (fun node -> Fault.Plan.Leave { node; at }) (Array.to_list receivers))
  in
  List.iter
    (fun proto ->
      let label = Harness.Runner.protocol_name proto in
      let res = run_churn_model ~protocol:proto plan in
      check Alcotest.int (label ^ ": oracle clean with an empty group") 0
        res.Harness.Runner.oracle_violations;
      check Alcotest.int (label ^ ": nothing charged to the departed") 0 res.unrecovered;
      check Alcotest.int (label ^ ": every pending loss forgiven") res.detected
        (Stats.Recovery.count res.recoveries + res.forgiven))
    both_protocols

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "json round-trip" `Quick test_plan_json_roundtrip;
          Alcotest.test_case "save/load" `Quick test_plan_save_load;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "compile rejects invalid" `Quick test_plan_compile_rejects_invalid;
          Alcotest.test_case "canned plans" `Quick test_canned_plans;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "baseline clean" `Quick test_oracle_baseline_clean;
          Alcotest.test_case "rejects suppressed replies" `Quick
            test_oracle_rejects_suppressed_replies;
          Alcotest.test_case "rejects double delivery" `Quick test_oracle_rejects_double_delivery;
          Alcotest.test_case "json and pp" `Quick test_oracle_json_and_pp;
          Alcotest.test_case "retry bound trips on a silent replier" `Quick
            test_oracle_retry_bound_silent_replier;
          Alcotest.test_case "retry bound resets on any reply" `Quick
            test_oracle_retry_reset_on_reply;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "cache expiry" `Quick test_cache_expire_replier;
          Alcotest.test_case "policy exclusion" `Quick test_policy_exclude;
          Alcotest.test_case "replier failure limit" `Quick test_replier_failure_limit;
        ] );
      ( "battery",
        [
          qcheck prop_bounded_plans_liveness_srm;
          qcheck prop_bounded_plans_liveness_cesrm;
          Alcotest.test_case "minimal failing plan" `Quick test_minimal_failing_plan;
          Alcotest.test_case "post-heal alive-but-behind replier" `Quick
            test_post_heal_alive_replier;
          Alcotest.test_case "canned plans clean for both protocols" `Slow
            test_canned_clean_oracle;
          Alcotest.test_case "unknown fault name" `Quick test_unknown_fault_name;
          qcheck prop_scale_plans_oracle_clean_srm;
          qcheck prop_scale_plans_oracle_clean_cesrm;
        ] );
      ( "domains",
        [
          Alcotest.test_case "canned plans clean with domains on" `Slow
            test_canned_clean_oracle_domains;
          Alcotest.test_case "designated-replier crash" `Quick test_replier_crash_domains;
          qcheck prop_domain_crash_partition_srm;
          qcheck prop_domain_crash_partition_cesrm;
        ] );
      ( "retirement",
        [
          Alcotest.test_case "late request at the stability horizon" `Quick
            test_retire_late_request_at_horizon;
          Alcotest.test_case "crash/restart straddling retirement epochs" `Quick
            test_retire_crash_restart;
          Alcotest.test_case "retirement under an active partition" `Quick
            test_retire_under_partition;
        ] );
      ( "churn",
        [
          Alcotest.test_case "churn plan json round-trip" `Quick test_churn_plan_json_roundtrip;
          Alcotest.test_case "churn plan validation" `Quick test_churn_plan_validation;
          Alcotest.test_case "canned churn plans" `Quick test_canned_churn_plans;
          Alcotest.test_case "churn schedules deterministic" `Quick
            test_churn_schedules_deterministic;
          Alcotest.test_case "canned churn plans clean for both protocols" `Slow
            test_canned_churn_clean_oracle;
          qcheck prop_churn_plans_clean_srm;
          qcheck prop_churn_plans_clean_cesrm;
          Alcotest.test_case "oracle rejects deliver-to-departed" `Quick
            test_oracle_rejects_deliver_to_departed;
          Alcotest.test_case "oracle rejects departed-replier retries" `Quick
            test_oracle_rejects_departed_replier_retries;
          Alcotest.test_case "empty group mid-stream" `Quick test_empty_group_mid_stream;
        ] );
    ]
