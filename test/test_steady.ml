(* lib/steady: streaming execution with windowed state retirement.

   Four layers, bottom up:
   - the engine primitives streaming sends ride on (seq reservation,
     epoch ticks);
   - the lazy per-link loss chains against the eager Gilbert matrix
     (bit-equality, monotone-query contract);
   - the Config / Controller math;
   - a qcheck differential battery: a finite retirement window must be
     invisible — same fingerprint as an infinite-window run of the
     same streaming trace, zero unrecovered losses, clean audit and
     oracle — across random windows, epoch cadences, protocols and
     fault plans. *)

(* --- engine primitives --------------------------------------------- *)

(* Reserving a seq block and chain-arming must fire in exactly the
   order the eager schedule-everything loop would, including among
   same-time events interleaved with ordinary scheduling. *)
let test_reserve_seqs () =
  let eager = ref [] and streamed = ref [] in
  let record log tag () = log := tag :: !log in
  (* Eager: schedule all sends up front, then an interleaved timer. *)
  let e1 = Sim.Engine.create () in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule_at e1 ~at:(float_of_int i) (record eager i))
  done;
  ignore (Sim.Engine.schedule_at e1 ~at:3. (record eager 100));
  Sim.Engine.run e1;
  (* Streaming: reserve the block the loop would have consumed, then
     arm each send from the previous one's body. *)
  let e2 = Sim.Engine.create () in
  let first = Sim.Engine.reserve_seqs e2 5 in
  let rec arm i =
    Sim.Engine.schedule_at_seq e2 ~at:(float_of_int i) ~seq:(first + i - 1) (fun () ->
        record streamed i ();
        if i < 5 then arm (i + 1))
  in
  arm 1;
  ignore (Sim.Engine.schedule_at e2 ~at:3. (record streamed 100));
  Sim.Engine.run e2;
  Alcotest.(check (list int)) "firing order identical" (List.rev !eager) (List.rev !streamed)

let test_every_epoch () =
  let e = Sim.Engine.create () in
  let ticks = ref 0 in
  Sim.Engine.every_epoch e ~every:1.0 ~until:10.5 (fun () -> incr ticks);
  ignore (Sim.Engine.schedule_at e ~at:20. (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.(check int) "10 ticks in 10.5s" 10 !ticks;
  Alcotest.(check int) "epochs_ticked" 10 (Sim.Engine.epochs_ticked e);
  Alcotest.check_raises "every must be positive"
    (Invalid_argument "Engine.every_epoch: non-positive period") (fun () ->
      Sim.Engine.every_epoch e ~every:0. ~until:1. (fun () -> ()))

(* An epoch tick consumes a sequence key but runs no protocol action:
   interleaving ticks among same-time events must not reorder them. *)
let test_epoch_tick_neutral () =
  let run_with_ticks with_ticks =
    let e = Sim.Engine.create () in
    let log = ref [] in
    if with_ticks then Sim.Engine.every_epoch e ~every:0.5 ~until:6. (fun () -> ());
    for i = 1 to 5 do
      ignore (Sim.Engine.schedule_at e ~at:(float_of_int i) (fun () -> log := i :: !log))
    done;
    Sim.Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list int)) "ticks reorder nothing" (run_with_ticks false) (run_with_ticks true)

(* --- streaming loss chains ----------------------------------------- *)

let chain_fixture () =
  let tree = Mtrace.Topology_gen.bounded_fanout ~rng:(Sim.Rng.create 7L) ~n_receivers:30 ~fanout:4 in
  let n = Net.Tree.n_nodes tree in
  let mk f = Array.init n (fun l -> if l = 0 then 0. else f l) in
  let rates = mk (fun l -> 0.002 +. (0.05 *. float_of_int (l mod 5))) in
  let bursts = mk (fun l -> 1.2 +. (0.4 *. float_of_int (l mod 4))) in
  let bursts = Array.map (fun b -> Float.max 1. b) bursts in
  (tree, rates, bursts)

(* The chains must replicate [Gilbert.run] over a split-per-link rng
   bit for bit, independently of how queries interleave across links. *)
let test_stream_loss_matches_gilbert () =
  let n_packets = 600 in
  let tree, rates, bursts = chain_fixture () in
  let n = Net.Tree.n_nodes tree in
  let eager =
    let rng = Sim.Rng.create 99L in
    let bits = Array.make n (Mtrace.Bitset.create 0) in
    for l = 1 to n - 1 do
      let model = Mtrace.Gilbert.of_marginal ~loss_rate:rates.(l) ~mean_burst:bursts.(l) in
      bits.(l) <- Mtrace.Gilbert.run model (Sim.Rng.split rng) n_packets
    done;
    bits
  in
  let chains =
    Mtrace.Stream_loss.create ~tree ~rates ~bursts ~rng:(Sim.Rng.create 99L) ~n_packets ()
  in
  (* Walk packets in the outer loop (the flood order): every link is
     queried for seq s before any link sees s+1 — monotone per link,
     maximally interleaved across links. *)
  let mismatches = ref 0 in
  for seq = 1 to n_packets do
    for l = 1 to n - 1 do
      let expect = Mtrace.Bitset.get eager.(l) (seq - 1) in
      if Mtrace.Stream_loss.lost chains ~link:l ~seq <> expect then incr mismatches
    done
  done;
  Alcotest.(check int) "bit-identical to Gilbert.run" 0 !mismatches

let test_stream_loss_lookback () =
  let n_packets = 400 in
  let tree, rates, bursts = chain_fixture () in
  let chains =
    Mtrace.Stream_loss.create ~lookback:16 ~tree ~rates ~bursts ~rng:(Sim.Rng.create 5L)
      ~n_packets ()
  in
  (* Advance link 1 far ahead, then re-ask inside the ring: answers
     must be stable. *)
  let at_100 = Mtrace.Stream_loss.lost chains ~link:1 ~seq:100 in
  Alcotest.(check bool) "re-ask within lookback is stable" at_100
    (Mtrace.Stream_loss.lost chains ~link:1 ~seq:100);
  Alcotest.(check bool) "slightly older stays available"
    (Mtrace.Stream_loss.lost chains ~link:1 ~seq:95)
    (Mtrace.Stream_loss.lost chains ~link:1 ~seq:95);
  (* Older than the ring: a programming error, loudly. *)
  Alcotest.check_raises "older than lookback raises"
    (Invalid_argument "Stream_loss.lost: seq older than the lookback window") (fun () ->
      ignore (Mtrace.Stream_loss.lost chains ~link:1 ~seq:50));
  Alcotest.check_raises "seq 0 out of range"
    (Invalid_argument "Stream_loss.lost: seq out of range") (fun () ->
      ignore (Mtrace.Stream_loss.lost chains ~link:1 ~seq:0));
  Alcotest.check_raises "root is not a link" (Invalid_argument "Stream_loss.lost: bad link id")
    (fun () -> ignore (Mtrace.Stream_loss.lost chains ~link:0 ~seq:1))

(* The streaming generator shares the eager generator's plan draws
   (same seed ⇒ same tree) and produces chains that answer the whole
   stream; two streaming syntheses of the same (row, seed) must agree
   bit for bit. *)
let test_synthesize_streaming_chains () =
  let row = Mtrace.Scale.find "SCALE-bf-32" in
  let g = Mtrace.Generator.synthesize_streaming ~seed:11L ~n_packets:300 row in
  let g' = Mtrace.Generator.synthesize_streaming ~seed:11L ~n_packets:300 row in
  let eager = Mtrace.Generator.synthesize ~seed:11L ~n_packets:300 row in
  let chains = g.Mtrace.Generator.s_loss in
  let tree = Mtrace.Trace.tree g.Mtrace.Generator.s_trace in
  let n = Net.Tree.n_nodes tree in
  Alcotest.(check int) "same tree as the eager generator" n
    (Net.Tree.n_nodes (Mtrace.Trace.tree eager.Mtrace.Generator.trace));
  Alcotest.(check int) "n_packets carried" 300 (Mtrace.Stream_loss.n_packets chains);
  Alcotest.(check bool) "trace is streaming" true
    (Mtrace.Trace.streaming g.Mtrace.Generator.s_trace);
  (* Chains answer the whole stream monotonically without error, are
     deterministic across syntheses, and produce losses. *)
  let losses = ref 0 and mismatches = ref 0 in
  for seq = 1 to 300 do
    for l = 1 to n - 1 do
      let a = Mtrace.Stream_loss.lost chains ~link:l ~seq in
      if a <> Mtrace.Stream_loss.lost g'.Mtrace.Generator.s_loss ~link:l ~seq then
        incr mismatches;
      if a then incr losses
    done
  done;
  Alcotest.(check int) "replay is bit-identical" 0 !mismatches;
  Alcotest.(check bool) "chains produce losses" true (!losses > 0)

(* --- Config / Controller ------------------------------------------- *)

let test_config () =
  Alcotest.check_raises "window >= 1"
    (Invalid_argument "Steady.Config.windowed: window must be >= 1") (fun () ->
      ignore (Steady.Config.windowed 0));
  Alcotest.(check bool) "infinite is not streaming-trace" false
    (Steady.Config.streaming Steady.Config.infinite);
  Alcotest.(check bool) "windowed streams" true
    (Steady.Config.streaming (Steady.Config.windowed 64));
  Alcotest.(check bool) "records-off streams" true
    (Steady.Config.streaming (Steady.Config.windowed ~retain_records:false 64));
  (* Epoch period: explicit wins; none for infinite; derived for a
     window, clamped to [50 periods, 60 s]. *)
  let p = 0.01 in
  Alcotest.(check (option (float 1e-9))) "infinite: no tick" None
    (Steady.Config.epoch_period Steady.Config.infinite ~period:p);
  Alcotest.(check (option (float 1e-9))) "explicit wins" (Some 2.5)
    (Steady.Config.epoch_period (Steady.Config.windowed ~epoch_every:2.5 100) ~period:p);
  Alcotest.(check (option (float 1e-9))) "small window clamps up to 50 periods" (Some (50. *. p))
    (Steady.Config.epoch_period (Steady.Config.windowed 10) ~period:p);
  Alcotest.(check (option (float 1e-9))) "mid window: window periods" (Some (100. *. p))
    (Steady.Config.epoch_period (Steady.Config.windowed 100) ~period:p);
  Alcotest.(check (option (float 1e-9))) "huge window clamps to 60 s" (Some 60.)
    (Steady.Config.epoch_period (Steady.Config.windowed 1_000_000) ~period:p)

let test_controller () =
  Alcotest.check_raises "window >= 1"
    (Invalid_argument "Steady.Controller.create: window must be >= 1") (fun () ->
      ignore (Steady.Controller.create ~window:0 ~n_packets:10));
  let c = Steady.Controller.create ~window:100 ~n_packets:1000 in
  let prefixes = [| 0; 0; 0 |] in
  let retired = Array.make 3 0 in
  let extra = ref 0 in
  Array.iteri
    (fun i _ ->
      Steady.Controller.add_member c
        {
          Steady.Controller.node = i;
          delivered_prefix = (fun () -> prefixes.(i));
          retire = (fun ~upto -> retired.(i) <- upto);
        })
    prefixes;
  Steady.Controller.on_retire c (fun ~upto -> extra := upto);
  (* Below the window: floor stays 0, nobody retires. *)
  prefixes.(0) <- 90;
  prefixes.(1) <- 95;
  prefixes.(2) <- 80;
  Steady.Controller.tick c;
  Alcotest.(check int) "floor clamped at 0" 0 (Steady.Controller.floor c);
  Alcotest.(check int) "no retirement" 0 retired.(0);
  (* The slowest member gates the floor. *)
  prefixes.(0) <- 500;
  prefixes.(1) <- 400;
  prefixes.(2) <- 260;
  Steady.Controller.tick c;
  Alcotest.(check int) "floor = min prefix - window" 160 (Steady.Controller.floor c);
  Alcotest.(check (list int)) "every member retired to the floor" [ 160; 160; 160 ]
    (Array.to_list retired);
  Alcotest.(check int) "extras run too" 160 !extra;
  (* Monotone: a (hypothetically) regressing prefix never lowers it. *)
  prefixes.(2) <- 200;
  Steady.Controller.tick c;
  Alcotest.(check int) "floor is monotone" 160 (Steady.Controller.floor c);
  Alcotest.(check int) "three ticks" 3 (Steady.Controller.ticks c);
  Alcotest.(check (option (float 0.))) "growth needs 10 steady ticks" None
    (Steady.Controller.heap_growth c)

(* --- differential battery ------------------------------------------ *)

(* Fingerprint that is well-defined with or without retained records
   (count and the online mean survive [drop_records]). *)
let fingerprint (r : Harness.Runner.result) =
  let total k = Stats.Counters.total r.counters k in
  let summary = Stats.Recovery.latency_summary r.recoveries in
  Printf.sprintf
    "rqst=%d exp_rqst=%d repl=%d exp_repl=%d sess=%d detected=%d unrecovered=%d recoveries=%d \
     exp_requests=%d exp_replies=%d audit=%d oracle=%d lat_mean=%.17g lat_n=%d"
    (total Stats.Counters.Rqst) (total Stats.Counters.Exp_rqst) (total Stats.Counters.Repl)
    (total Stats.Counters.Exp_repl) (total Stats.Counters.Sess) r.detected r.unrecovered
    (Stats.Recovery.count r.recoveries) r.exp_requests r.exp_replies r.audit_violations
    r.oracle_violations
    (Stats.Summary.mean summary)
    (Stats.Summary.count summary)

let row_bf32 = Mtrace.Scale.find "SCALE-bf-32"

let steady_leg ~seed ~window ~epoch_every ~retain_records ~fault protocol =
  let steady = Steady.Config.windowed ?epoch_every ~retain_records window in
  Harness.Runner.run_leg ~n_packets:400 ?fault ~seed ~steady protocol row_bf32

(* One random cell: finite window vs the never-retiring reference
   (window = n_packets) over the same streaming trace. Retirement must
   be invisible: identical fingerprint, nothing unrecovered, auditor
   and oracle clean. *)
let battery_case (seed, window, epoch_choice, retain_records, proto_choice, fault_choice) =
  let protocol =
    if proto_choice then Harness.Runner.Srm_protocol
    else Harness.Runner.Cesrm_protocol Cesrm.Host.default_config
  in
  let fault =
    match fault_choice with
    | 0 -> None
    | 1 -> Some "partition-heal"
    | 2 -> Some "crash-replier"
    | _ -> Some "link-flap"
  in
  let epoch_every = match epoch_choice with 0 -> None | n -> Some (0.25 *. float_of_int n) in
  let seed = Int64.of_int seed in
  let finite = steady_leg ~seed ~window ~epoch_every ~retain_records ~fault protocol in
  let infinite =
    steady_leg ~seed ~window:400 ~epoch_every:None ~retain_records ~fault protocol
  in
  let ok_identity = fingerprint finite = fingerprint infinite in
  let ok_clean =
    finite.Harness.Runner.unrecovered = 0
    && finite.audit_violations = 0
    && finite.oracle_violations = 0
  in
  if not ok_identity then
    QCheck.Test.fail_reportf "window %d diverges from infinite:@.%s@.vs@.%s" window
      (fingerprint finite) (fingerprint infinite);
  if not ok_clean then
    QCheck.Test.fail_reportf "window %d: unrecovered=%d audit=%d oracle=%d" window
      finite.Harness.Runner.unrecovered finite.audit_violations finite.oracle_violations;
  true

let battery =
  let gen =
    QCheck.Gen.(
      tup6 (int_range 1 1000) (int_range 1 400) (int_range 0 8) bool bool (int_range 0 3))
  in
  QCheck.Test.make ~count:12 ~name:"finite window invisible vs infinite"
    (QCheck.make gen) battery_case

(* --- retirement is real -------------------------------------------- *)

(* A small window on a long-enough stream must actually advance the
   floor and retire host state — guarding against a vacuous battery
   where retirement never fires. *)
let test_retirement_happens () =
  let r =
    steady_leg ~seed:42L ~window:32 ~epoch_every:None ~retain_records:false ~fault:None
      (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
  in
  let c = Option.get r.Harness.Runner.retirement in
  Alcotest.(check bool) "floor advanced" true (Steady.Controller.floor c > 0);
  Alcotest.(check bool) "ticked" true (Steady.Controller.ticks c > 0);
  Alcotest.(check int) "nothing unrecovered" 0 r.unrecovered;
  Alcotest.(check bool) "records dropped" false (Stats.Recovery.retains_records r.recoveries);
  Alcotest.(check bool) "recovery count survives records-off" true
    (Stats.Recovery.count r.recoveries > 0)

let () =
  Alcotest.run "steady"
    [
      ( "engine",
        [
          Alcotest.test_case "reserve_seqs + schedule_at_seq" `Quick test_reserve_seqs;
          Alcotest.test_case "every_epoch" `Quick test_every_epoch;
          Alcotest.test_case "epoch ticks reorder nothing" `Quick test_epoch_tick_neutral;
        ] );
      ( "stream-loss",
        [
          Alcotest.test_case "bit-identical to Gilbert.run" `Quick
            test_stream_loss_matches_gilbert;
          Alcotest.test_case "lookback ring" `Quick test_stream_loss_lookback;
          Alcotest.test_case "streaming generator" `Quick test_synthesize_streaming_chains;
        ] );
      ( "config-controller",
        [
          Alcotest.test_case "config" `Quick test_config;
          Alcotest.test_case "controller" `Quick test_controller;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest battery;
          Alcotest.test_case "retirement happens" `Quick test_retirement_happens;
        ] );
    ]
