(* Integration tests for the experiment harness: the runner, the
   figure extraction, the Section 3.4 analysis, and ablation smoke. *)

let check = Alcotest.check

let small_pair =
  lazy (Harness.Figures.run_pair ~n_packets:1200 (Mtrace.Meta.nth 4))

let test_runner_protocol_names () =
  check Alcotest.string "srm" "SRM" (Harness.Runner.protocol_name Harness.Runner.Srm_protocol);
  check Alcotest.string "cesrm" "CESRM"
    (Harness.Runner.protocol_name (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config));
  check Alcotest.string "cesrm+ra" "CESRM+RA"
    (Harness.Runner.protocol_name
       (Harness.Runner.Cesrm_protocol { Cesrm.Host.default_config with router_assist = true }))

let test_pair_completeness () =
  let p = Lazy.force small_pair in
  check Alcotest.int "srm unrecovered" 0 p.srm.unrecovered;
  check Alcotest.int "cesrm unrecovered" 0 p.cesrm.unrecovered;
  check Alcotest.int "srm audit clean" 0 p.srm.audit_violations;
  check Alcotest.int "cesrm audit clean" 0 p.cesrm.audit_violations;
  check Alcotest.bool "losses were injected" true (p.srm.detected > 50);
  (* Both protocols face the same injected losses, but detection counts
     can differ marginally (expedited recovery can pre-empt a gap). *)
  let diff = abs (p.srm.detected - p.cesrm.detected) in
  check Alcotest.bool "similar detection counts" true
    (float_of_int diff /. float_of_int p.srm.detected < 0.05)

let test_figure1_shape () =
  let p = Lazy.force small_pair in
  let data = Harness.Figures.figure1_data p in
  check Alcotest.int "one row per receiver" (Mtrace.Trace.n_receivers p.trace)
    (List.length data);
  List.iter
    (fun (d : Harness.Figures.receiver_series) ->
      if d.srm_value > 0. then
        check Alcotest.bool "values plausible (< 8 RTT)" true
          (d.srm_value < 8. && d.cesrm_value < 8.))
    data;
  (* CESRM wins on average. *)
  let avg f = List.fold_left (fun acc d -> acc +. f d) 0. data /. float_of_int (List.length data) in
  check Alcotest.bool "cesrm lower on average" true
    (avg (fun (d : Harness.Figures.receiver_series) -> d.cesrm_value)
    < avg (fun d -> d.srm_value))

let test_figure2_range () =
  let p = Lazy.force small_pair in
  List.iter
    (fun (_, diff) ->
      check Alcotest.bool "difference within plausible band" true (diff > -1. && diff < 4.))
    (Harness.Figures.figure2_data p)

let test_figure3_matches_counters () =
  let p = Lazy.force small_pair in
  List.iter
    (fun (d : Harness.Figures.request_counts) ->
      check Alcotest.int "srm rqst"
        (Stats.Counters.get p.srm.counters ~node:d.rq_node Stats.Counters.Rqst)
        d.srm_rqst;
      check Alcotest.int "cesrm erqst"
        (Stats.Counters.get p.cesrm.counters ~node:d.rq_node Stats.Counters.Exp_rqst)
        d.cesrm_exp_rqst)
    (Harness.Figures.figure3_data p);
  (* The source never requests. *)
  let src = List.find (fun (d : Harness.Figures.request_counts) -> d.rq_node = 0)
      (Harness.Figures.figure3_data p) in
  check Alcotest.int "source sends no requests" 0 (src.srm_rqst + src.cesrm_rqst + src.cesrm_exp_rqst)

let test_figure4_totals () =
  let p = Lazy.force small_pair in
  let data = Harness.Figures.figure4_data p in
  let total f = List.fold_left (fun acc d -> acc + f d) 0 data in
  check Alcotest.int "erepl total matches result" p.cesrm.exp_replies
    (total (fun (d : Harness.Figures.reply_counts) -> d.cesrm_exp_repl));
  check Alcotest.bool "cesrm replies below srm" true
    (total (fun (d : Harness.Figures.reply_counts) -> d.cesrm_repl + d.cesrm_exp_repl)
    <= total (fun d -> d.srm_repl))

let test_figure5 () =
  let p = Lazy.force small_pair in
  let a = Harness.Figures.figure5a_data [ p ] in
  check Alcotest.int "one trace" 1 (List.length a);
  let _, pct = List.hd a in
  check Alcotest.bool "success percentage in range" true (pct >= 0. && pct <= 100.);
  let b = Harness.Figures.figure5b_data [ p ] in
  let o = List.hd b in
  check Alcotest.bool "retrans pct positive" true (o.retrans_pct > 0.);
  check Alcotest.bool "unicast control cheaper than multicast" true
    (o.control_uc_pct < o.control_mc_pct)

let test_renderers_smoke () =
  let p = Lazy.force small_pair in
  List.iter
    (fun s -> check Alcotest.bool "non-empty rendering" true (String.length s > 40))
    [
      Harness.Figures.table1 [ p ];
      Harness.Figures.attribution_accuracy [ p ];
      Harness.Figures.figure1 p;
      Harness.Figures.figure2 p;
      Harness.Figures.figure3 p;
      Harness.Figures.figure4 p;
      Harness.Figures.figure5a [ p ];
      Harness.Figures.figure5b [ p ];
      Harness.Figures.summary [ p ];
      Harness.Analysis.report [ p ];
    ]

let test_analysis_bounds () =
  check (Alcotest.float 1e-9) "Eq.(1) with defaults = 6.5 d" 6.5
    (Harness.Analysis.eq1_bound Srm.Params.default);
  check (Alcotest.float 1e-9) "predicted gap 2.25 RTT" 2.25
    (Harness.Analysis.predicted_gap_rtt Srm.Params.default);
  check (Alcotest.float 1e-9) "Eq.(2)" 0.25
    (Harness.Analysis.eq2_bound ~reorder_delay:0.05 ~rtt:0.2)

let test_lossy_recovery_still_completes () =
  let gen = Mtrace.Generator.synthesize ~n_packets:1200 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let setup = { Harness.Runner.default_setup with lossy_recovery = true } in
  let srm = Harness.Runner.run ~setup Harness.Runner.Srm_protocol gen.trace att in
  let cesrm =
    Harness.Runner.run ~setup (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
      gen.trace att
  in
  check Alcotest.int "srm complete under lossy recovery" 0 srm.unrecovered;
  check Alcotest.int "cesrm complete under lossy recovery" 0 cesrm.unrecovered

let test_link_delay_invariance () =
  (* Normalized recovery latency should barely move across 10/20/30 ms
     (the paper's robustness observation). *)
  let gen = Mtrace.Generator.synthesize ~n_packets:1200 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let avg_at link_delay =
    let setup = { Harness.Runner.default_setup with link_delay } in
    let res = Harness.Runner.run ~setup Harness.Runner.Srm_protocol gen.trace att in
    let s = Stats.Summary.create () in
    List.iter
      (fun (node, _) ->
        let n = Harness.Runner.normalized_recovery res ~node ~filter:(fun _ -> true) in
        if Stats.Summary.count n > 0 then Stats.Summary.add s (Stats.Summary.mean n))
      res.rtt_to_source;
    Stats.Summary.mean s
  in
  let a = avg_at 0.010 and b = avg_at 0.020 and c = avg_at 0.030 in
  check Alcotest.bool "10 vs 20 ms within 25%" true (Float.abs (a -. b) /. b < 0.25);
  check Alcotest.bool "30 vs 20 ms within 25%" true (Float.abs (c -. b) /. b < 0.25)

let test_deterministic_runs () =
  let gen = Mtrace.Generator.synthesize ~n_packets:800 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let run () = Harness.Runner.run Harness.Runner.Srm_protocol gen.trace att in
  let a = run () and b = run () in
  check Alcotest.int "same recovery count" (Stats.Recovery.count a.recoveries)
    (Stats.Recovery.count b.recoveries);
  let mean res = Stats.Summary.mean (Stats.Recovery.latency_summary res.Harness.Runner.recoveries) in
  check (Alcotest.float 1e-12) "same mean latency" (mean a) (mean b)

let test_data_jitter_reordering () =
  (* With jitter beyond one period and no reorder delay, CESRM fires
     spurious expedited requests for in-flight packets; a reorder delay
     of twice the jitter suppresses them. *)
  let gen = Mtrace.Generator.synthesize ~n_packets:1200 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let jitter = 2.5 *. Mtrace.Trace.period gen.trace in
  let run reorder_delay =
    let setup = { Harness.Runner.default_setup with data_jitter = jitter } in
    Harness.Runner.run ~setup
      (Harness.Runner.Cesrm_protocol { Cesrm.Host.default_config with reorder_delay })
      gen.trace att
  in
  let eager = run 0. and guarded = run (2. *. jitter) in
  check Alcotest.int "still complete (eager)" 0 eager.unrecovered;
  check Alcotest.int "still complete (guarded)" 0 guarded.unrecovered;
  check Alcotest.bool "reorder delay suppresses spurious expedited requests" true
    (guarded.exp_requests < eager.exp_requests)

let test_lossy_sessions_unchanged () =
  let gen = Mtrace.Generator.synthesize ~n_packets:1200 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let setup = { Harness.Runner.default_setup with lossy_sessions = true } in
  let res = Harness.Runner.run ~setup Harness.Runner.Srm_protocol gen.trace att in
  check Alcotest.int "lossy sessions: still complete" 0 res.unrecovered

(* --- protocol audit ------------------------------------------------- *)

let audited_run ?expect_in_order ?max_exp_per_loss ~deploy () =
  let gen = Mtrace.Generator.synthesize ~n_packets:1000 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let tree = Mtrace.Trace.tree gen.trace in
  let engine = Sim.Engine.create ~seed:123L () in
  let network = Net.Network.create ~engine ~tree () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Data { seq } -> down && List.mem link (Inference.Attribution.cuts att ~seq)
      | _ -> false);
  let audit = Harness.Audit.attach ?expect_in_order ?max_exp_per_loss network in
  deploy ~network ~trace:gen.trace;
  Sim.Engine.run ~until:1e6 engine;
  audit

let test_audit_srm_clean () =
  let audit =
    audited_run
      ~deploy:(fun ~network ~trace ->
        let proto =
          Srm.Proto.deploy ~network ~params:Srm.Params.default
            ~n_packets:(Mtrace.Trace.n_packets trace) ~period:(Mtrace.Trace.period trace) ()
        in
        Srm.Proto.start proto ~warmup:5.0 ~tail:30.0)
      ()
  in
  Harness.Audit.check audit;
  check Alcotest.bool "audited many packets" true (Harness.Audit.packets_seen audit > 1000)

let test_audit_cesrm_clean () =
  let audit =
    audited_run ~max_exp_per_loss:1
      ~deploy:(fun ~network ~trace ->
        let proto =
          Cesrm.Proto.deploy ~network ~params:Srm.Params.default
            ~n_packets:(Mtrace.Trace.n_packets trace) ~period:(Mtrace.Trace.period trace) ()
        in
        Cesrm.Proto.start proto ~warmup:5.0 ~tail:30.0)
      ()
  in
  Harness.Audit.check audit

let test_audit_lms_clean () =
  let audit =
    audited_run ~max_exp_per_loss:64
      ~deploy:(fun ~network ~trace ->
        let proto =
          Lms.Proto.deploy ~network ~n_packets:(Mtrace.Trace.n_packets trace)
            ~period:(Mtrace.Trace.period trace) ()
        in
        Lms.Proto.start proto ~warmup:5.0 ~tail:30.0)
      ()
  in
  Harness.Audit.check audit

let test_audit_flags_bogus_reply () =
  let tree = Net.Tree.star 3 in
  let engine = Sim.Engine.create () in
  let network = Net.Network.create ~engine ~tree () in
  let audit = Harness.Audit.attach network in
  (* a retransmission for a packet nobody requested, before it was sent *)
  ignore
    (Sim.Engine.schedule engine ~after:1.0 (fun () ->
         Net.Network.multicast network ~from:1
           {
             Net.Packet.sender = 1;
             payload =
               Net.Packet.Reply
                 {
                   src = 0;
                   seq = 5;
                   requestor = 2;
                   d_qs = 0.1;
                   replier = 1;
                   d_rq = 0.1;
                   expedited = false;
                   turning_point = None;
                 };
           }));
  Sim.Engine.run engine;
  let rules = List.map (fun v -> v.Harness.Audit.rule) (Harness.Audit.violations audit) in
  check Alcotest.bool "bogus reply flagged" true
    (List.mem "reply-has-cause" rules && List.mem "replier-plausible" rules)

let test_audit_jitter_needs_out_of_order () =
  let gen = Mtrace.Generator.synthesize ~n_packets:600 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let tree = Mtrace.Trace.tree gen.trace in
  let engine = Sim.Engine.create ~seed:5L () in
  let network = Net.Network.create ~engine ~tree () in
  ignore att;
  let audit = Harness.Audit.attach ~expect_in_order:true network in
  let proto =
    Srm.Proto.deploy ~network ~params:Srm.Params.default
      ~n_packets:(Mtrace.Trace.n_packets gen.trace) ~period:(Mtrace.Trace.period gen.trace) ()
  in
  Srm.Proto.start ~send_jitter:(3. *. Mtrace.Trace.period gen.trace) proto ~warmup:5.0 ~tail:10.0;
  Sim.Engine.run ~until:1e6 engine;
  check Alcotest.bool "reordering is visible to the strict auditor" true
    (List.exists
       (fun v -> v.Harness.Audit.rule = "data-well-formed")
       (Harness.Audit.violations audit))

(* --- protocol fuzz ---------------------------------------------------- *)

let fuzz_tree_gen =
  QCheck.Gen.(
    int_range 3 14 >>= fun n ->
    let rec fill i acc =
      if i >= n then return (Array.of_list (List.rev acc))
      else int_range 0 (i - 1) >>= fun p -> fill (i + 1) (p :: acc)
    in
    fill 1 [ -1 ])

let fuzz_case_gen =
  QCheck.Gen.(
    pair fuzz_tree_gen (list_size (int_range 0 25) (pair (int_range 1 30) (int_range 0 1000))))

let fuzz_arbitrary =
  QCheck.make
    ~print:(fun (parents, drops) ->
      Printf.sprintf "parents=[%s] drops=[%s]"
        (String.concat ";" (List.map string_of_int (Array.to_list parents)))
        (String.concat ";" (List.map (fun (s, l) -> Printf.sprintf "(%d,%d)" s l) drops)))
    fuzz_case_gen

let run_fuzz_case ~cesrm (parents, raw_drops) =
  let tree = Net.Tree.of_parents parents in
  if Net.Tree.n_receivers tree = 0 then true
  else begin
    let n = Net.Tree.n_nodes tree in
    (* Map raw drop link indices onto real links; drop nothing for the
       degenerate 1-node tree. *)
    let drops = List.map (fun (seq, l) -> (seq, 1 + (l mod (n - 1)))) raw_drops in
    let engine = Sim.Engine.create ~seed:2024L () in
    let network = Net.Network.create ~engine ~tree () in
    Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
        match p.payload with
        | Net.Packet.Data { seq } -> down && List.mem (seq, link) drops
        | _ -> false);
    let audit = Harness.Audit.attach network in
    let detected, recovered =
      if cesrm then begin
        let proto =
          Cesrm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:30 ~period:0.05 ()
        in
        Cesrm.Proto.start proto ~warmup:5.0 ~tail:20.0;
        Sim.Engine.run ~until:1e6 engine;
        ( List.fold_left
            (fun acc (_, h) -> acc + Srm.Host.detected_losses (Cesrm.Host.srm h))
            0 (Cesrm.Proto.members proto),
          Stats.Recovery.count (Cesrm.Proto.recoveries proto) )
      end
      else begin
        let proto =
          Srm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:30 ~period:0.05 ()
        in
        Srm.Proto.start proto ~warmup:5.0 ~tail:20.0;
        Sim.Engine.run ~until:1e6 engine;
        ( List.fold_left (fun acc (_, h) -> acc + Srm.Host.detected_losses h) 0
            (Srm.Proto.members proto),
          Stats.Recovery.count (Srm.Proto.recoveries proto) )
      end
    in
    detected = recovered && Harness.Audit.violations audit = []
  end

let prop_fuzz_srm =
  QCheck.Test.make ~name:"fuzz: SRM recovers everything cleanly on random cases" ~count:40
    fuzz_arbitrary (run_fuzz_case ~cesrm:false)

let prop_fuzz_cesrm =
  QCheck.Test.make ~name:"fuzz: CESRM recovers everything cleanly on random cases" ~count:40
    fuzz_arbitrary (run_fuzz_case ~cesrm:true)

let test_ablation_smoke () =
  let s = Harness.Ablation.cache_sizes ~n_packets:800 ~sizes:[ 1; 4 ] (Mtrace.Meta.nth 4) in
  check Alcotest.bool "cache table non-empty" true (String.length s > 40);
  let s = Harness.Ablation.link_delays ~n_packets:800 ~delays:[ 0.02 ] (Mtrace.Meta.nth 4) in
  check Alcotest.bool "delay table non-empty" true (String.length s > 40)

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "protocol names" `Quick test_runner_protocol_names;
          Alcotest.test_case "completeness" `Quick test_pair_completeness;
          Alcotest.test_case "lossy recovery completes" `Quick test_lossy_recovery_still_completes;
          Alcotest.test_case "data jitter / reordering" `Quick test_data_jitter_reordering;
          Alcotest.test_case "lossy sessions" `Quick test_lossy_sessions_unchanged;
          Alcotest.test_case "link-delay invariance" `Quick test_link_delay_invariance;
          Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure 1 shape" `Quick test_figure1_shape;
          Alcotest.test_case "figure 2 range" `Quick test_figure2_range;
          Alcotest.test_case "figure 3 counters" `Quick test_figure3_matches_counters;
          Alcotest.test_case "figure 4 totals" `Quick test_figure4_totals;
          Alcotest.test_case "figure 5" `Quick test_figure5;
          Alcotest.test_case "renderers" `Quick test_renderers_smoke;
        ] );
      ( "analysis",
        [ Alcotest.test_case "closed-form bounds" `Quick test_analysis_bounds ] );
      ( "audit",
        [
          Alcotest.test_case "srm clean" `Quick test_audit_srm_clean;
          Alcotest.test_case "cesrm clean" `Quick test_audit_cesrm_clean;
          Alcotest.test_case "lms clean" `Quick test_audit_lms_clean;
          Alcotest.test_case "flags bogus reply" `Quick test_audit_flags_bogus_reply;
          Alcotest.test_case "jitter visible" `Quick test_audit_jitter_needs_out_of_order;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_fuzz_srm;
          QCheck_alcotest.to_alcotest prop_fuzz_cesrm;
        ] );
      ("ablation", [ Alcotest.test_case "smoke" `Quick test_ablation_smoke ]);
    ]
