(* Bit-identical determinism pins for the simulator.

   The expected strings below were captured from the pre-route-cache,
   pre-slot-heap implementation (the straightforward recursive tree
   walks and the timer-record event heap). The route cache, the
   allocation-free event core and the packed per-loss keys are pure
   representation changes: same seeds must yield byte-identical
   counters and recovery latencies. The latency sum is compared as a
   %.17g string, so even a one-ULP float divergence (e.g. a changed
   accumulation order) fails the test. *)

let fingerprint (r : Harness.Runner.result) =
  let total k = Stats.Counters.total r.counters k in
  let lat_sum =
    List.fold_left
      (fun acc rec_ -> acc +. Stats.Recovery.latency rec_)
      0.
      (Stats.Recovery.records r.recoveries)
  in
  Printf.sprintf
    "rqst=%d exp_rqst=%d repl=%d exp_repl=%d sess=%d detected=%d unrecovered=%d \
     recoveries=%d exp_requests=%d exp_replies=%d lat_sum=%.17g"
    (total Stats.Counters.Rqst) (total Stats.Counters.Exp_rqst) (total Stats.Counters.Repl)
    (total Stats.Counters.Exp_repl) (total Stats.Counters.Sess) r.detected r.unrecovered
    (Stats.Recovery.count r.recoveries) r.exp_requests r.exp_replies lat_sum

(* One mid-size trace (15 receivers), n_packets = 400, default seed. *)
let case = lazy (
  let gen = Mtrace.Generator.synthesize ~n_packets:400 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  (gen.trace, att))

let run ?setup ?steady protocol =
  let trace, att = Lazy.force case in
  Harness.Runner.run ?setup ?steady protocol trace att

let lossy = { Harness.Runner.default_setup with lossy_recovery = true; lossy_sessions = true }

let hetero = { Harness.Runner.default_setup with heterogeneous_delays = true }

let check_fingerprint name expected result () =
  Alcotest.(check string) name expected (fingerprint result)

(* Faulted runs are pure functions of (row, seed, plan) too: the same
   canned plan on the same synthesized trace must fingerprint
   identically — across repeat runs and against the pinned strings. *)
let run_faulted fault protocol =
  Harness.Runner.run_leg ~n_packets:400 ~fault ~seed:42L protocol (Mtrace.Meta.nth 4)

let check_faulted name expected fault protocol () =
  let res = run_faulted fault protocol in
  Alcotest.(check int) (name ^ " oracle clean") 0 res.oracle_violations;
  Alcotest.(check string) name expected (fingerprint res);
  Alcotest.(check string) (name ^ " replay") expected (fingerprint (run_faulted fault protocol))

let () =
  Alcotest.run "determinism"
    [
      ( "golden",
        [
          Alcotest.test_case "srm" `Quick
            (fun () ->
              check_fingerprint "srm"
                "rqst=67 exp_rqst=0 repl=388 exp_repl=0 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=31.387034181635496"
                (run Harness.Runner.Srm_protocol) ());
          Alcotest.test_case "cesrm" `Quick
            (fun () ->
              check_fingerprint "cesrm"
                "rqst=17 exp_rqst=53 repl=80 exp_repl=47 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=53 exp_replies=47 lat_sum=16.652011164792821"
                (run (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)) ());
          Alcotest.test_case "cesrm router-assist" `Quick
            (fun () ->
              check_fingerprint "cesrm-ra"
                "rqst=17 exp_rqst=53 repl=80 exp_repl=47 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=53 exp_replies=47 lat_sum=16.652011164792821"
                (run
                   (Harness.Runner.Cesrm_protocol
                      { Cesrm.Host.default_config with router_assist = true }))
                ());
          Alcotest.test_case "lms" `Quick
            (fun () ->
              check_fingerprint "lms"
                "rqst=0 exp_rqst=128 repl=0 exp_repl=88 sess=67 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=10.886180051596984"
                (run Harness.Runner.Lms_protocol) ());
          Alcotest.test_case "srm lossy recovery" `Quick
            (fun () ->
              check_fingerprint "srm-lossy"
                "rqst=73 exp_rqst=0 repl=385 exp_repl=0 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=34.491788322981492"
                (run ~setup:lossy Harness.Runner.Srm_protocol) ());
          Alcotest.test_case "cesrm lossy recovery" `Quick
            (fun () ->
              check_fingerprint "cesrm-lossy"
                "rqst=24 exp_rqst=53 repl=101 exp_repl=45 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=53 exp_replies=45 lat_sum=18.643002723450188"
                (run ~setup:lossy (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config))
                ());
          Alcotest.test_case "srm heterogeneous delays" `Quick
            (fun () ->
              check_fingerprint "srm-hetero"
                "rqst=64 exp_rqst=0 repl=166 exp_repl=0 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=33.230838444138875"
                (run ~setup:hetero Harness.Runner.Srm_protocol) ());
        ] );
      (* Steady mode with an infinite window must be byte-identical to
         the plain engine: streaming (chain-armed) data sends replace
         the eager send loop but reserve the very same engine sequence
         numbers, and no retirement ever runs. Same pinned strings as
         the golden section above. *)
      ( "steady-infinite golden",
        [
          Alcotest.test_case "srm" `Quick
            (fun () ->
              check_fingerprint "srm-steady"
                "rqst=67 exp_rqst=0 repl=388 exp_repl=0 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=31.387034181635496"
                (run ~steady:Steady.Config.infinite Harness.Runner.Srm_protocol) ());
          Alcotest.test_case "cesrm" `Quick
            (fun () ->
              check_fingerprint "cesrm-steady"
                "rqst=17 exp_rqst=53 repl=80 exp_repl=47 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=53 exp_replies=47 lat_sum=16.652011164792821"
                (run ~steady:Steady.Config.infinite
                   (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config))
                ());
          Alcotest.test_case "lms" `Quick
            (fun () ->
              check_fingerprint "lms-steady"
                "rqst=0 exp_rqst=128 repl=0 exp_repl=88 sess=67 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=10.886180051596984"
                (run ~steady:Steady.Config.infinite Harness.Runner.Lms_protocol) ());
          Alcotest.test_case "srm lossy recovery" `Quick
            (fun () ->
              check_fingerprint "srm-lossy-steady"
                "rqst=73 exp_rqst=0 repl=385 exp_repl=0 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=34.491788322981492"
                (run ~setup:lossy ~steady:Steady.Config.infinite Harness.Runner.Srm_protocol)
                ());
          Alcotest.test_case "srm heterogeneous delays" `Quick
            (fun () ->
              check_fingerprint "srm-hetero-steady"
                "rqst=64 exp_rqst=0 repl=166 exp_repl=0 sess=603 detected=88 unrecovered=0 \
                 recoveries=88 exp_requests=0 exp_replies=0 lat_sum=33.230838444138875"
                (run ~setup:hetero ~steady:Steady.Config.infinite Harness.Runner.Srm_protocol)
                ());
        ] );
      ( "faulted golden",
        [
          Alcotest.test_case "srm partition-heal" `Quick
            (check_faulted "srm-partition"
               "rqst=322 exp_rqst=0 repl=886 exp_repl=0 sess=603 detected=1059 unrecovered=0 \
                recoveries=1059 exp_requests=0 exp_replies=0 lat_sum=329.25729603690792"
               "partition-heal" Harness.Runner.Srm_protocol);
          Alcotest.test_case "cesrm partition-heal" `Quick
            (check_faulted "cesrm-partition"
               "rqst=189 exp_rqst=149 repl=323 exp_repl=118 sess=603 detected=1059 \
                unrecovered=0 recoveries=1059 exp_requests=149 exp_replies=118 \
                lat_sum=277.72710768259549"
               "partition-heal" (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config));
          Alcotest.test_case "srm crash-replier" `Quick
            (check_faulted "srm-crash"
               "rqst=370 exp_rqst=0 repl=1509 exp_repl=0 sess=603 detected=438 unrecovered=0 \
                recoveries=438 exp_requests=0 exp_replies=0 lat_sum=227.88344189037659"
               "crash-replier" Harness.Runner.Srm_protocol);
        ] );
    ]
