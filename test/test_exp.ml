(* The experiment-orchestration subsystem: spec expansion and JSON
   round-trips, scheduling-independent seed derivation, the fork pool's
   retry/timeout machinery, and the invariant the whole design rests
   on — a parallel sweep aggregates to the same bytes as a serial run
   of the same spec. *)

let check = Alcotest.check

(* -- Spec ------------------------------------------------------------ *)

let small_spec =
  {
    Exp.Spec.name = "test";
    traces = [ (Mtrace.Meta.nth 4).Mtrace.Meta.name ];
    protocols =
      [
        Exp.Spec.Srm;
        Exp.Spec.Cesrm { policy = Cesrm.Policy.Most_recent; retention = Cesrm.Retention.default; router_assist = false };
      ];
    base_seed = 7L;
    n_seeds = 2;
    n_packets = Some 250;
    link_delay_ms = 20.;
    lossy_recovery = false;
    faults = [];
  }

let test_spec_roundtrip () =
  let rt spec =
    match Exp.Spec.of_json (Exp.Spec.to_json spec) with
    | Ok spec' -> spec'
    | Error msg -> Alcotest.fail msg
  in
  let same spec =
    check Alcotest.string "json round-trip"
      (Obs.Json.to_string (Exp.Spec.to_json spec))
      (Obs.Json.to_string (Exp.Spec.to_json (rt spec)))
  in
  same Exp.Spec.default;
  same small_spec;
  same
    {
      small_spec with
      protocols =
        [
          Exp.Spec.Lms;
          Exp.Spec.Cesrm { policy = Cesrm.Policy.Most_frequent; retention = Cesrm.Retention.default; router_assist = true };
        ];
      base_seed = Int64.min_int;
      n_packets = None;
      lossy_recovery = true;
    };
  same { small_spec with faults = [ "none"; "partition-heal"; "link-flap" ] };
  (* parse also accepts a text round-trip through the strict parser *)
  match Obs.Json.parse (Obs.Json.to_string ~pretty:true (Exp.Spec.to_json small_spec)) with
  | Error msg -> Alcotest.fail msg
  | Ok json -> (
      match Exp.Spec.of_json json with
      | Ok spec' ->
          check Alcotest.string "text round-trip"
            (Obs.Json.to_string (Exp.Spec.to_json small_spec))
            (Obs.Json.to_string (Exp.Spec.to_json spec'))
      | Error msg -> Alcotest.fail msg)

let test_spec_errors () =
  let expect_error mutate =
    match Exp.Spec.of_json (mutate (Exp.Spec.to_json small_spec)) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "validation accepted a bad spec"
  in
  let set field value = function
    | Obs.Json.Obj fields ->
        Obs.Json.Obj (List.map (fun (k, v) -> (k, if k = field then value else v)) fields)
    | other -> other
  in
  expect_error (set "traces" (Obs.Json.Arr [ Obs.Json.Str "NOSUCH" ]));
  expect_error (set "traces" (Obs.Json.Arr []));
  expect_error (set "protocols" (Obs.Json.Arr [ Obs.Json.Str "tcp" ]));
  expect_error (set "protocols" (Obs.Json.Arr [ Obs.Json.Str "cesrm:nopolicy" ]));
  expect_error (set "base_seed" (Obs.Json.Str "not-a-seed"));
  expect_error (set "n_seeds" (Obs.Json.int 0));
  expect_error (set "link_delay_ms" (Obs.Json.int 0));
  expect_error (set "faults" (Obs.Json.Arr [ Obs.Json.Str "nosuch-plan" ]))

let test_protocol_names () =
  List.iter
    (fun p ->
      match Exp.Spec.protocol_of_name (Exp.Spec.protocol_name p) with
      | Ok p' ->
          check Alcotest.string "protocol name round-trip" (Exp.Spec.protocol_name p)
            (Exp.Spec.protocol_name p')
      | Error msg -> Alcotest.fail msg)
    (Exp.Spec.Srm :: Exp.Spec.Lms
    :: List.concat_map
         (fun policy ->
           [
             Exp.Spec.Cesrm { policy; retention = Cesrm.Retention.default; router_assist = false };
             Exp.Spec.Cesrm { policy; retention = Cesrm.Retention.default; router_assist = true };
           ])
         Cesrm.Policy.all);
  (* The retention segment: non-default retentions round-trip through
     the "@" syntax, the default one is omitted from the name (so
     pre-retention artifact names stay stable), and malformed
     retentions are rejected. *)
  List.iter
    (fun r ->
      let retention = Option.get (Cesrm.Retention.of_name r) in
      let p =
        Exp.Spec.Cesrm
          { policy = Cesrm.Policy.Most_recent; retention; router_assist = false }
      in
      let name = Exp.Spec.protocol_name p in
      check Alcotest.string "retention in name" ("cesrm:most-recent@" ^ r) name;
      match Exp.Spec.protocol_of_name name with
      | Ok (Exp.Spec.Cesrm { retention = retention'; _ }) ->
          check Alcotest.string "retention round-trip" r (Cesrm.Retention.name retention')
      | _ -> Alcotest.failf "%s must parse back" name)
    [ "recent:1"; "lru"; "ttl=2.5"; "hotspot=0.5:8" ];
  (match
     Exp.Spec.protocol_of_name
       (Exp.Spec.protocol_name
          (Exp.Spec.Cesrm
             {
               policy = Cesrm.Policy.Most_recent;
               retention = Cesrm.Retention.default;
               router_assist = true;
             }))
   with
  | Ok (Exp.Spec.Cesrm { retention; router_assist = true; _ }) ->
      check Alcotest.bool "+ra keeps default retention" true
        (Cesrm.Retention.is_default retention)
  | _ -> Alcotest.fail "cesrm:most-recent+ra must parse");
  (match Exp.Spec.protocol_of_name "cesrm:most-recent@nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown retention must be rejected");
  match Exp.Spec.protocol_of_name "cesrm" with
  | Ok (Exp.Spec.Cesrm { router_assist = false; _ }) -> ()
  | _ -> Alcotest.fail "bare cesrm should mean the default policy"

let test_cells_and_seeds () =
  let cells = Exp.Spec.cells small_spec in
  check Alcotest.int "1 trace x 2 protocols x 2 seeds" 4 (Array.length cells);
  (* expansion order is trace-major, then seed, then protocol *)
  Array.iteri (fun i c -> check Alcotest.int "index = position" i c.Exp.Spec.index) cells;
  (* protocol variants of a cell group replay the identical trace seed *)
  check Alcotest.bool "srm/cesrm share seed (s0)" true
    (cells.(0).Exp.Spec.seed = cells.(1).Exp.Spec.seed);
  check Alcotest.bool "srm/cesrm share seed (s1)" true
    (cells.(2).Exp.Spec.seed = cells.(3).Exp.Spec.seed);
  check Alcotest.bool "seed axis varies the seed" true
    (cells.(0).Exp.Spec.seed <> cells.(2).Exp.Spec.seed);
  (* derivation is a pure function: re-expansion is identical *)
  let cells' = Exp.Spec.cells small_spec in
  Array.iteri
    (fun i c -> check Alcotest.bool "stable seeds" true (c.Exp.Spec.seed = cells'.(i).Exp.Spec.seed))
    cells;
  (* and matches Sim.Rng.substream by group index *)
  check Alcotest.bool "substream 0" true
    (cells.(0).Exp.Spec.seed = Sim.Rng.substream small_spec.Exp.Spec.base_seed 0);
  check Alcotest.bool "substream 1" true
    (cells.(2).Exp.Spec.seed = Sim.Rng.substream small_spec.Exp.Spec.base_seed 1)

let test_cells_with_faults () =
  let spec = { small_spec with n_seeds = 1; faults = [ "none"; "link-flap" ] } in
  let cells = Exp.Spec.cells spec in
  check Alcotest.int "1 trace x 2 faults x 2 protocols" 4 (Array.length cells);
  (* protocols stay innermost; the faults axis is next *)
  check
    (Alcotest.list (Alcotest.option Alcotest.string))
    "fault slots"
    [ Some "none"; Some "none"; Some "link-flap"; Some "link-flap" ]
    (List.map (fun c -> c.Exp.Spec.fault) (Array.to_list cells));
  (* the seed is keyed by (trace, seed index) only: every fault variant
     replays the identical synthesized trace *)
  Array.iter
    (fun c -> check Alcotest.bool "shared seed" true (c.Exp.Spec.seed = cells.(0).Exp.Spec.seed))
    cells;
  let trace_name = (Mtrace.Meta.nth 4).Mtrace.Meta.name in
  check Alcotest.string "label carries the fault" (trace_name ^ "/srm/s0/link-flap")
    (Exp.Spec.cell_label cells.(2));
  (* no faults axis: cells and labels reduce to the pre-faults scheme *)
  let plain = Exp.Spec.cells { spec with faults = [] } in
  check Alcotest.int "no axis = 2 cells" 2 (Array.length plain);
  check (Alcotest.option Alcotest.string) "no fault slot" None plain.(0).Exp.Spec.fault;
  check Alcotest.string "no label suffix" (trace_name ^ "/srm/s0")
    (Exp.Spec.cell_label plain.(0));
  check Alcotest.bool "same seed as the none variant" true
    (plain.(0).Exp.Spec.seed = cells.(0).Exp.Spec.seed)

let test_substream () =
  (* substream i is the seed of the i-th split of a base generator,
     independent of enumeration order *)
  let base = 12345L in
  let enumerated =
    let r = Sim.Rng.create base in
    Array.init 5 (fun _ -> Sim.Rng.bits64 r)
  in
  Array.iteri
    (fun i expected ->
      check Alcotest.bool "matches split chain" true (Sim.Rng.substream base i = expected))
    enumerated;
  check Alcotest.bool "order independence" true
    (Sim.Rng.substream base 3 = enumerated.(3));
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.substream: negative index")
    (fun () -> ignore (Sim.Rng.substream base (-1)))

(* -- Pool ------------------------------------------------------------ *)

let test_pool_serial () =
  let order = ref [] in
  let results =
    Exp.Pool.map ~jobs:1
      ~on_result:(fun ~index ~done_:_ ~total:_ -> order := index :: !order)
      (fun i -> string_of_int (i * i))
      5
  in
  check (Alcotest.array Alcotest.string) "serial results" [| "0"; "1"; "4"; "9"; "16" |] results;
  check (Alcotest.list Alcotest.int) "serial order" [ 4; 3; 2; 1; 0 ] !order

let test_pool_parallel_matches_serial () =
  if not Exp.Pool.available then ()
  else begin
    let f i = Printf.sprintf "shard-%d:%d" i (i * 7) in
    check
      (Alcotest.array Alcotest.string)
      "parallel = serial" (Exp.Pool.map ~jobs:1 f 9) (Exp.Pool.map ~jobs:3 f 9)
  end

let test_pool_crash_retry () =
  if not Exp.Pool.available then ()
  else begin
    (* Shard 1's first attempt kills its worker process; the retry (in
       a respawned or surviving worker) sees the flag file and
       succeeds. *)
    let flag = Filename.temp_file "cesrm-pool" ".flag" in
    Sys.remove flag;
    let f i =
      if i = 1 && not (Sys.file_exists flag) then begin
        close_out (open_out flag);
        Unix._exit 1
      end
      else Printf.sprintf "ok-%d" i
    in
    let results = Exp.Pool.map ~jobs:2 ~retries:1 f 4 in
    if Sys.file_exists flag then Sys.remove flag;
    check
      (Alcotest.array Alcotest.string)
      "crashed shard retried" [| "ok-0"; "ok-1"; "ok-2"; "ok-3" |] results
  end

let test_pool_timeout_retry () =
  if not Exp.Pool.available then ()
  else begin
    (* Shard 0's first attempt hangs past the timeout (the parent
       SIGKILLs the worker); the retry returns promptly. *)
    let flag = Filename.temp_file "cesrm-pool" ".flag" in
    Sys.remove flag;
    let f i =
      if i = 0 && not (Sys.file_exists flag) then begin
        close_out (open_out flag);
        Unix.sleepf 30.
      end;
      Printf.sprintf "ok-%d" i
    in
    let results = Exp.Pool.map ~jobs:2 ~timeout:0.5 ~retries:1 f 3 in
    if Sys.file_exists flag then Sys.remove flag;
    check
      (Alcotest.array Alcotest.string)
      "hung shard killed and retried" [| "ok-0"; "ok-1"; "ok-2" |] results
  end

let test_pool_retry_exhaustion () =
  if not Exp.Pool.available then ()
  else begin
    let f i = if i = 2 then failwith "always broken" else string_of_int i in
    match Exp.Pool.map ~jobs:2 ~retries:1 f 4 with
    | _ -> Alcotest.fail "expected Failure"
    | exception Failure msg ->
        let contains ~sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "names the shard" true (contains ~sub:"shard 2" msg)
  end

let test_pool_marshal_map () =
  let f i = (i, float_of_int i /. 2., Printf.sprintf "s%d" i) in
  let serial = Exp.Pool.marshal_map ~jobs:1 f 6 in
  let parallel = Exp.Pool.marshal_map ~jobs:3 f 6 in
  check Alcotest.bool "marshal round-trip" true (serial = parallel)

(* -- Sweep: serial vs parallel byte-identity ------------------------- *)

let test_sweep_identity () =
  let serial = Obs.Json.to_string (Exp.Sweep.run ~jobs:1 small_spec) in
  (* Fast sanity on the artifact shape before the expensive identity *)
  (match Obs.Json.parse serial with
  | Error msg -> Alcotest.fail msg
  | Ok artifact -> (
      (match Obs.Json.member "cells" artifact with
      | Some (Obs.Json.Arr cells) -> check Alcotest.int "4 cell rows" 4 (List.length cells)
      | _ -> Alcotest.fail "no cells array");
      match Option.bind (Obs.Json.member "totals" artifact) (Obs.Json.member "unrecovered") with
      | Some (Obs.Json.Num 0.) -> ()
      | _ -> Alcotest.fail "expected totals/unrecovered = 0"));
  if Exp.Pool.available then begin
    let parallel = Obs.Json.to_string (Exp.Sweep.run ~jobs:3 small_spec) in
    check Alcotest.string "serial and parallel artifacts byte-identical" serial parallel
  end

let test_sweep_identity_faulted () =
  (* The byte-identity must also hold when a faults axis multiplies the
     matrix: fault plans, the oracle and its JSON all replay exactly. *)
  let spec = { small_spec with n_seeds = 1; faults = [ "none"; "partition-heal" ] } in
  let serial = Obs.Json.to_string (Exp.Sweep.run ~jobs:1 spec) in
  (match Obs.Json.parse serial with
  | Error msg -> Alcotest.fail msg
  | Ok artifact -> (
      (match Obs.Json.member "cells" artifact with
      | Some (Obs.Json.Arr cells) -> check Alcotest.int "4 cell rows" 4 (List.length cells)
      | _ -> Alcotest.fail "no cells array");
      match
        Option.bind (Obs.Json.member "totals" artifact) (Obs.Json.member "oracle_violations")
      with
      | Some (Obs.Json.Num 0.) -> ()
      | _ -> Alcotest.fail "expected totals/oracle_violations = 0"));
  if Exp.Pool.available then begin
    let parallel = Obs.Json.to_string (Exp.Sweep.run ~jobs:3 spec) in
    check Alcotest.string "faulted sweep byte-identical serial vs parallel" serial parallel
  end

let test_agg_missing () =
  let agg = Exp.Agg.create small_spec in
  check (Alcotest.list Alcotest.int) "all missing" [ 0; 1; 2; 3 ] (Exp.Agg.missing agg);
  (match Exp.Agg.finalize agg with
  | _ -> Alcotest.fail "finalize with missing shards should fail"
  | exception Failure _ -> ());
  Alcotest.check_raises "out of range" (Invalid_argument "Agg.add: shard index 9 out of range")
    (fun () -> Exp.Agg.add agg ~index:9 Obs.Json.Null);
  match Exp.Agg.add_string agg ~index:0 "{not json" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted malformed shard JSON"

let () =
  Alcotest.run "exp"
    [
      ( "spec",
        [
          Alcotest.test_case "json round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "validation errors" `Quick test_spec_errors;
          Alcotest.test_case "protocol names" `Quick test_protocol_names;
          Alcotest.test_case "cells and derived seeds" `Quick test_cells_and_seeds;
          Alcotest.test_case "cells with a faults axis" `Quick test_cells_with_faults;
          Alcotest.test_case "rng substream" `Quick test_substream;
        ] );
      ( "pool",
        [
          Alcotest.test_case "serial fallback" `Quick test_pool_serial;
          Alcotest.test_case "parallel matches serial" `Quick test_pool_parallel_matches_serial;
          Alcotest.test_case "crash retry" `Quick test_pool_crash_retry;
          Alcotest.test_case "timeout retry" `Quick test_pool_timeout_retry;
          Alcotest.test_case "retry exhaustion" `Quick test_pool_retry_exhaustion;
          Alcotest.test_case "marshal map" `Quick test_pool_marshal_map;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "serial = parallel (bytes)" `Slow test_sweep_identity;
          Alcotest.test_case "faulted serial = parallel (bytes)" `Slow
            test_sweep_identity_faulted;
          Alcotest.test_case "agg missing shards" `Quick test_agg_missing;
        ] );
    ]
