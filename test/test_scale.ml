(* Scale-workload tests: topology family shapes, scenario-name
   resolution, pinned determinism goldens for a 1024-receiver group,
   and sweep serial/parallel byte-identity at that size.

   The golden fingerprints pin the scale harness end to end — tree
   generation, Gilbert calibration, ground-truth loss injection, the
   scale tuning (oracle distances, source-only sessions, widened
   suppression windows) and both protocols on top of the timer-wheel
   engine. Any representation change that claims to be behavior-
   preserving must reproduce them byte for byte. *)

let check = Alcotest.check

(* --- Topology families ---------------------------------------------- *)

let rng () = Sim.Rng.create 42L

let test_bounded_fanout_shape () =
  let tree = Mtrace.Topology_gen.bounded_fanout ~rng:(rng ()) ~n_receivers:500 ~fanout:4 in
  check Alcotest.int "receiver count" 500 (Net.Tree.n_receivers tree);
  Array.iter
    (fun r -> check Alcotest.bool "receivers are leaves" true (Net.Tree.is_leaf tree r))
    (Net.Tree.receivers tree);
  (* Total degree stays bounded: at most [fanout] router children plus
     the round-robin share of receivers. *)
  let max_children = ref 0 in
  for v = 0 to Net.Tree.n_nodes tree - 1 do
    if not (Net.Tree.is_leaf tree v) then
      max_children := max !max_children (List.length (Net.Tree.children tree v))
  done;
  check Alcotest.bool "fanout bounded" true (!max_children <= 2 * 4 + 1);
  (* Logarithmic depth in expectation; generously bounded here. *)
  check Alcotest.bool "depth is shallow" true (Net.Tree.height tree <= 40)

let test_star_of_stars_shape () =
  let tree = Mtrace.Topology_gen.star_of_stars ~rng:(rng ()) ~n_receivers:300 ~clusters:17 in
  check Alcotest.int "receiver count" 300 (Net.Tree.n_receivers tree);
  check Alcotest.int "depth 2" 2 (Net.Tree.height tree);
  check Alcotest.int "hub count" 17 (List.length (Net.Tree.children tree 0));
  Array.iter
    (fun r -> check Alcotest.int "every receiver at depth 2" 2 (Net.Tree.depth tree r))
    (Net.Tree.receivers tree)

let test_deep_chain_shape () =
  let n = 200 in
  let tree = Mtrace.Topology_gen.deep_chain ~rng:(rng ()) ~n_receivers:n in
  check Alcotest.int "receiver count" n (Net.Tree.n_receivers tree);
  check Alcotest.int "depth n+1" (n + 1) (Net.Tree.height tree);
  check Alcotest.int "one node per level plus leaf" (2 * n + 1) (Net.Tree.n_nodes tree)

(* --- Scenario-name resolution ---------------------------------------- *)

let test_scale_parse () =
  (match Mtrace.Scale.parse "SCALE-bf-1024" with
  | Some row ->
      check Alcotest.int "receivers" 1024 row.Mtrace.Meta.n_receivers;
      check Alcotest.string "name round-trips" "SCALE-bf-1024" row.Mtrace.Meta.name;
      check Alcotest.bool "index disjoint from published rows" true
        (row.Mtrace.Meta.index >= 100)
  | None -> Alcotest.fail "SCALE-bf-1024 must parse");
  List.iter
    (fun bad -> check Alcotest.bool bad true (Mtrace.Scale.parse bad = None))
    [ "SCALE-bf-4"; "SCALE-bf-200000"; "SCALE-xx-256"; "SCALE-bf"; "WRN951214"; "" ]

let test_scale_find_fallback () =
  (* find resolves scale names and falls through to the published
     catalog for everything else. *)
  check Alcotest.int "scale name" 512 (Mtrace.Scale.find "SCALE-ss-512").Mtrace.Meta.n_receivers;
  check Alcotest.string "published name" "WRN951214" (Mtrace.Scale.find "WRN951214").Mtrace.Meta.name;
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Mtrace.Scale.find "NO-SUCH-TRACE"))

let test_scale_catalog () =
  check Alcotest.int "5 families x 4 sizes" 20 (List.length Mtrace.Scale.catalog);
  List.iter
    (fun row ->
      check Alcotest.bool "catalog rows parse back" true
        (Mtrace.Scale.parse row.Mtrace.Meta.name = Some row))
    Mtrace.Scale.catalog

let test_loss_budget_frozen () =
  let losses name = (Mtrace.Scale.find name).Mtrace.Meta.n_losses in
  check Alcotest.bool "budget grows below the cap" true
    (losses "SCALE-bf-256" < losses "SCALE-bf-512");
  check Alcotest.int "budget frozen past 512 receivers" (losses "SCALE-bf-512")
    (losses "SCALE-bf-10000")

(* --- Pinned 1024-receiver goldens ------------------------------------ *)

let fingerprint (r : Harness.Runner.result) =
  let total k = Stats.Counters.total r.counters k in
  let lat_sum =
    List.fold_left
      (fun acc rec_ -> acc +. Stats.Recovery.latency rec_)
      0.
      (Stats.Recovery.records r.recoveries)
  in
  Printf.sprintf
    "rqst=%d exp_rqst=%d repl=%d exp_repl=%d sess=%d detected=%d unrecovered=%d \
     recoveries=%d lat_sum=%.17g"
    (total Stats.Counters.Rqst) (total Stats.Counters.Exp_rqst) (total Stats.Counters.Repl)
    (total Stats.Counters.Exp_repl) (total Stats.Counters.Sess) r.detected r.unrecovered
    (Stats.Recovery.count r.recoveries) lat_sum

let scale_row = Mtrace.Scale.find "SCALE-bf-1024"

let run_scale protocol = Harness.Runner.run_leg ~n_packets:40 ~seed:42L protocol scale_row

let check_scale_fingerprint name expected protocol () =
  let res = run_scale protocol in
  check Alcotest.int (name ^ " audit clean") 0 res.Harness.Runner.audit_violations;
  check Alcotest.string name expected (fingerprint res)

(* --- Pinned recovery-domain goldens (dc-1024) ------------------------ *)

(* The deep-chain scenario is where domains earn their keep: the domain
   goldens pin the clustering, the designated-replier election, the
   scoped request/repair subcasts and the in-flight detection allowance
   end to end. The flat golden on the same row guards the other
   direction: with [domains] absent the run must not feel the domain
   machinery at all. *)

let dc_row = Mtrace.Scale.find "SCALE-dc-1024"

let run_dc ?shards ?steady ?domains protocol =
  Harness.Runner.run_leg ?shards ?steady ?domains ~n_packets:40 ~seed:42L protocol dc_row

let domain_fingerprint (r : Harness.Runner.result) =
  let m = Stats.Recovery.makespan_summary r.recoveries in
  Printf.sprintf "%s mkspan_mean=%.17g mkspan_max=%.17g" (fingerprint r)
    (Stats.Summary.mean m) (Stats.Summary.max m)

let check_domain_fingerprint name expected protocol () =
  let res = run_dc ~domains:Rdomain.Auto protocol in
  check Alcotest.int (name ^ " audit clean") 0 res.Harness.Runner.audit_violations;
  check Alcotest.string name expected (domain_fingerprint res)

let check_flat_dc_fingerprint name expected protocol () =
  let res = run_dc protocol in
  check Alcotest.int (name ^ " audit clean") 0 res.Harness.Runner.audit_violations;
  check Alcotest.string name expected (fingerprint res)

let test_domains_compose_shards () =
  (* Domain runs force the serial path; asking for shards must change
     nothing, not crash or diverge. *)
  let serial = domain_fingerprint (run_dc ~domains:Rdomain.Auto Harness.Runner.Srm_protocol) in
  let sharded =
    domain_fingerprint (run_dc ~shards:2 ~domains:Rdomain.Auto Harness.Runner.Srm_protocol)
  in
  check Alcotest.string "domains + shards falls back to the serial result" serial sharded

let test_domains_compose_steady () =
  (* [Steady.Config.infinite] keeps the eager trace and is documented
     byte-identical to no steady config at all; that must hold with
     domains on. *)
  let plain = domain_fingerprint (run_dc ~domains:Rdomain.Auto Harness.Runner.Srm_protocol) in
  let infinite =
    domain_fingerprint
      (run_dc ~steady:Steady.Config.infinite ~domains:Rdomain.Auto Harness.Runner.Srm_protocol)
  in
  check Alcotest.string "domains + infinite steady invisible" plain infinite;
  (* A finite retirement window runs over the streaming trace, so the
     invisibility reference is the never-retiring window on the same
     stream (as in the steady battery) — here with domains on, and on
     bounded fanout: the deep-chain rows' streaming calibration
     undershoots the loss budget (see ROADMAP), which would make this
     check vacuous on SCALE-dc-1024. *)
  let bf ~window =
    domain_fingerprint
      (Harness.Runner.run_leg ~n_packets:40 ~seed:42L ~steady:(Steady.Config.windowed window)
         ~domains:Rdomain.Auto Harness.Runner.Srm_protocol scale_row)
  in
  let finite = bf ~window:16 and reference = bf ~window:40 in
  check Alcotest.string "domains + finite steady window invisible" reference finite

(* --- Adversarial cache-thrash goldens (rh/ps at 1024) ----------------- *)

(* Full 200-packet runs: the adversarial families' dynamics are
   windowed (hot-link rotation, phase shifts every 25 packets), so a
   truncated run would never leave the first phase and the retention
   schemes would be indistinguishable. The grid pins every scheme on
   both families: on phase-shift the schemes separate (the win the
   battery exists to show); on rotating-hot they are identical — the
   rotation outruns every retention scheme's reuse window, which the
   shared fingerprint documents as strongly as a difference would. *)

let retention_of name = Option.get (Cesrm.Retention.of_name name)

let run_adv ?cache_policy ?shards ?steady trace protocol =
  Harness.Runner.run_leg ?cache_policy ?shards ?steady ~seed:42L protocol
    (Mtrace.Scale.find trace)

let check_adv_fingerprint name expected trace policy () =
  let protocol, cache_policy =
    match policy with
    | None -> (Harness.Runner.Srm_protocol, None)
    | Some p ->
        (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config, Some (retention_of p))
  in
  let res = run_adv ?cache_policy trace protocol in
  check Alcotest.int (name ^ " audit clean") 0 res.Harness.Runner.audit_violations;
  check Alcotest.string name expected (fingerprint res)

let expedited_success (r : Harness.Runner.result) =
  let total k = Stats.Counters.total r.Harness.Runner.counters k in
  float_of_int (total Stats.Counters.Exp_repl)
  /. float_of_int (max 1 (total Stats.Counters.Exp_rqst))

let test_multi_entry_beats_one_entry () =
  (* The acceptance criterion: on the phase-shifting scenario a
     multi-entry retention scheme beats the paper's 1-entry
     most-recent cache on expedited success rate. *)
  let run p =
    run_adv ~cache_policy:(retention_of p) "SCALE-ps-1024"
      (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
  in
  let baseline = expedited_success (run "recent:1") in
  let hotspot = expedited_success (run "hotspot") in
  let lru = expedited_success (run "lru") in
  check Alcotest.bool
    (Printf.sprintf "hotspot %.3f beats recent:1 %.3f" hotspot baseline)
    true (hotspot > baseline);
  check Alcotest.bool (Printf.sprintf "lru %.3f beats recent:1 %.3f" lru baseline) true
    (lru > baseline)

let test_default_policy_invisible () =
  (* Passing the default retention explicitly must be byte-identical to
     not passing one at all — on the pinned dc-1024 golden row and on
     an adversarial row. *)
  let pairs =
    [
      ("dc-1024", fingerprint (run_dc Harness.Runner.Srm_protocol),
       fingerprint
         (Harness.Runner.run_leg ~cache_policy:Cesrm.Retention.default ~n_packets:40
            ~seed:42L Harness.Runner.Srm_protocol dc_row));
      ( "ps-1024",
        fingerprint
          (run_adv "SCALE-ps-1024" (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)),
        fingerprint
          (run_adv ~cache_policy:Cesrm.Retention.default "SCALE-ps-1024"
             (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)) );
    ]
  in
  List.iter (fun (name, plain, explicit) -> check Alcotest.string name plain explicit) pairs

let test_adversarial_compose () =
  (* Shards and the infinite steady window must not feel the
     adversarial trace path: both compose to the serial eager result
     (adversarial families are eager-only, so a finite window is the
     one thing that may not engage here). *)
  let protocol = Harness.Runner.Cesrm_protocol Cesrm.Host.default_config in
  let policy = retention_of "hotspot" in
  let serial = fingerprint (run_adv ~cache_policy:policy "SCALE-ps-1024" protocol) in
  let sharded = fingerprint (run_adv ~cache_policy:policy ~shards:2 "SCALE-ps-1024" protocol) in
  check Alcotest.string "ps-1024 serial = 2 shards" serial sharded;
  let steady =
    fingerprint
      (run_adv ~cache_policy:policy ~steady:Steady.Config.infinite "SCALE-ps-1024" protocol)
  in
  check Alcotest.string "ps-1024 serial = infinite steady" serial steady

let test_adversarial_not_streamable () =
  Alcotest.check_raises "rh refuses the streaming generator"
    (Invalid_argument
       "Generator.synthesize_streaming: SCALE-rh-1024 is an adversarial cache-thrash \
        family (eager-only)")
    (fun () -> ignore (Mtrace.Generator.synthesize_streaming (Mtrace.Scale.find "SCALE-rh-1024")))

(* --- Streamed loss-budget calibration (the dc undershoot fix) --------- *)

let streamed_realized row =
  let g = Mtrace.Generator.synthesize_streaming row in
  let tree = Mtrace.Trace.tree g.Mtrace.Generator.s_trace in
  let n_packets = Mtrace.Trace.n_packets g.Mtrace.Generator.s_trace in
  let rec path_lost ~node ~seq =
    node <> 0
    && (Mtrace.Stream_loss.lost g.Mtrace.Generator.s_loss ~link:node ~seq
       || path_lost ~node:(Net.Tree.parent tree node) ~seq)
  in
  let count = ref 0 in
  for seq = 1 to n_packets do
    Array.iter (fun r -> if path_lost ~node:r ~seq then incr count) (Net.Tree.receivers tree)
  done;
  !count

let test_streamed_budget_calibrated () =
  (* The regression this pins: synthesize_streaming used to skip the
     realized-count correction, so streamed deep-chain legs dropped
     essentially nothing (dc-1024 realized ~6% of its budget). The
     sampled bisection must land every streamed family within 20% of
     the frozen budget. *)
  List.iter
    (fun name ->
      let row = Mtrace.Scale.find name in
      let realized = float_of_int (streamed_realized row) in
      let target = float_of_int row.Mtrace.Meta.n_losses in
      let err = Float.abs (realized -. target) /. target in
      check Alcotest.bool
        (Printf.sprintf "%s streamed %.0f within 20%% of %.0f" name realized target)
        true (err <= 0.20))
    [ "SCALE-dc-1024"; "SCALE-bf-1024"; "SCALE-ss-1024" ]

(* --- Sweep byte-identity at 1024 receivers --------------------------- *)

let scale_spec =
  {
    Exp.Spec.name = "scale";
    traces = [ "SCALE-bf-1024" ];
    protocols =
      [
        Exp.Spec.Srm;
        Exp.Spec.Cesrm { policy = Cesrm.Policy.Most_recent; retention = Cesrm.Retention.default; router_assist = false };
      ];
    base_seed = 7L;
    n_seeds = 1;
    n_packets = Some 40;
    link_delay_ms = 20.;
    lossy_recovery = false;
    faults = [];
  }

let test_sweep_identity_at_scale () =
  let serial = Obs.Json.to_string (Exp.Sweep.run ~jobs:1 scale_spec) in
  (match Obs.Json.parse serial with
  | Error msg -> Alcotest.fail msg
  | Ok artifact -> (
      match Option.bind (Obs.Json.member "totals" artifact) (Obs.Json.member "unrecovered") with
      | Some (Obs.Json.Num 0.) -> ()
      | _ -> Alcotest.fail "expected totals/unrecovered = 0"));
  if Exp.Pool.available then begin
    let parallel = Obs.Json.to_string (Exp.Sweep.run ~jobs:2 scale_spec) in
    check Alcotest.string "serial and parallel artifacts byte-identical at 1024" serial
      parallel
  end

(* --- Pinned churn goldens (churn-steady on bf-1024) ------------------- *)

(* The churn goldens pin the dynamic-membership layer end to end at
   scale: the canned churn-steady schedule compiled onto bf-1024, the
   departure forgiveness accounting, the late-join baselining and the
   churn-aware oracle — one `%.17g` string per protocol. *)

let churn_fingerprint (r : Harness.Runner.result) =
  Printf.sprintf "%s forgiven=%d oracle=%d" (fingerprint r) r.forgiven r.oracle_violations

let run_churn ?shards protocol =
  Harness.Runner.run_leg ?shards ~fault:"churn-steady" ~n_packets:40 ~seed:42L protocol
    scale_row

let check_churn_fingerprint name expected protocol () =
  let res = run_churn protocol in
  check Alcotest.int (name ^ " oracle clean") 0 res.Harness.Runner.oracle_violations;
  check Alcotest.int (name ^ " full-window members whole") 0 res.unrecovered;
  check Alcotest.string name expected (churn_fingerprint res)

let test_churn_compose_shards () =
  (* Churn must not force the serial path: every shard compiles the
     full plan against the same tree, so the sharded run has to
     reproduce the serial bytes exactly. *)
  List.iter
    (fun protocol ->
      let serial = churn_fingerprint (run_churn protocol) in
      let sharded = churn_fingerprint (run_churn ~shards:2 protocol) in
      check Alcotest.string
        (Harness.Runner.protocol_name protocol ^ " churn-steady serial = 2 shards")
        serial sharded)
    [ Harness.Runner.Srm_protocol; Harness.Runner.Cesrm_protocol Cesrm.Host.default_config ]

let () =
  Alcotest.run "scale"
    [
      ( "topology",
        [
          Alcotest.test_case "bounded-fanout shape" `Quick test_bounded_fanout_shape;
          Alcotest.test_case "star-of-stars shape" `Quick test_star_of_stars_shape;
          Alcotest.test_case "deep-chain shape" `Quick test_deep_chain_shape;
        ] );
      ( "names",
        [
          Alcotest.test_case "parse" `Quick test_scale_parse;
          Alcotest.test_case "find fallback" `Quick test_scale_find_fallback;
          Alcotest.test_case "catalog" `Quick test_scale_catalog;
          Alcotest.test_case "loss budget frozen" `Quick test_loss_budget_frozen;
        ] );
      ( "golden",
        [
          Alcotest.test_case "srm 1024" `Quick
            (check_scale_fingerprint "srm-1024"
               "rqst=24 exp_rqst=0 repl=185 exp_repl=0 sess=36 detected=55 unrecovered=0 \
                recoveries=55 lat_sum=101.60805433283687"
               Harness.Runner.Srm_protocol);
          Alcotest.test_case "cesrm 1024" `Quick
            (check_scale_fingerprint "cesrm-1024"
               "rqst=19 exp_rqst=5 repl=131 exp_repl=5 sess=36 detected=55 unrecovered=0 \
                recoveries=55 lat_sum=76.494019482290355"
               (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config));
        ] );
      ( "domains",
        [
          Alcotest.test_case "srm dc-1024 --domains" `Quick
            (check_domain_fingerprint "srm-dc-1024-domains"
               "rqst=54 exp_rqst=0 repl=886 exp_repl=0 sess=36 detected=60 unrecovered=0 \
                recoveries=60 lat_sum=17.789055673337792 \
                mkspan_mean=0.36902220689927623 mkspan_max=0.91896156319211286"
               Harness.Runner.Srm_protocol);
          Alcotest.test_case "cesrm dc-1024 --domains" `Quick
            (check_domain_fingerprint "cesrm-dc-1024-domains"
               "rqst=38 exp_rqst=24 repl=514 exp_repl=24 sess=36 detected=60 unrecovered=0 \
                recoveries=60 lat_sum=14.93880226758265 \
                mkspan_mean=0.30488632480596745 mkspan_max=0.91896156319211286"
               (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config));
          Alcotest.test_case "srm dc-1024 domains off" `Quick
            (check_flat_dc_fingerprint "srm-dc-1024-flat"
               "rqst=72 exp_rqst=0 repl=637 exp_repl=0 sess=36 detected=36307 unrecovered=0 \
                recoveries=36307 lat_sum=83803.329944973302"
               Harness.Runner.Srm_protocol);
          Alcotest.test_case "compose with shards" `Quick test_domains_compose_shards;
          Alcotest.test_case "compose with steady window" `Quick test_domains_compose_steady;
        ] );
      ( "adversarial",
        (let rh = "SCALE-rh-1024" and ps = "SCALE-ps-1024" in
         let rh_shared =
           (* One fingerprint for SRM and every retention scheme: the
              rotation outruns any cache's reuse window (no expedited
              requests at all), so the schemes cannot separate. *)
           "rqst=12 exp_rqst=0 repl=24 exp_repl=0 sess=43 detected=240 unrecovered=0 \
            recoveries=240 lat_sum=182.21221976189329"
         in
         List.map
           (fun (label, trace, policy, expected) ->
             Alcotest.test_case label `Quick (check_adv_fingerprint label expected trace policy))
           [
             ("rh-1024 srm", rh, None, rh_shared);
             ("rh-1024 cesrm@recent:1", rh, Some "recent:1", rh_shared);
             ("rh-1024 cesrm@recent", rh, Some "recent", rh_shared);
             ("rh-1024 cesrm@lru", rh, Some "lru", rh_shared);
             ("rh-1024 cesrm@ttl", rh, Some "ttl", rh_shared);
             ("rh-1024 cesrm@hotspot", rh, Some "hotspot", rh_shared);
             ( "ps-1024 srm", ps, None,
               "rqst=98 exp_rqst=0 repl=955 exp_repl=0 sess=43 detected=307 unrecovered=0 \
                recoveries=307 lat_sum=407.07739872758106" );
             ( "ps-1024 cesrm@recent:1", ps, Some "recent:1",
               "rqst=79 exp_rqst=40 repl=739 exp_repl=20 sess=43 detected=307 unrecovered=0 \
                recoveries=307 lat_sum=311.95910650124631" );
             ( "ps-1024 cesrm@recent", ps, Some "recent",
               "rqst=79 exp_rqst=40 repl=739 exp_repl=20 sess=43 detected=307 unrecovered=0 \
                recoveries=307 lat_sum=311.95910650124631" );
             ( "ps-1024 cesrm@lru", ps, Some "lru",
               "rqst=67 exp_rqst=57 repl=505 exp_repl=36 sess=43 detected=307 unrecovered=0 \
                recoveries=307 lat_sum=284.16249844561906" );
             ( "ps-1024 cesrm@ttl", ps, Some "ttl",
               "rqst=78 exp_rqst=42 repl=762 exp_repl=25 sess=43 detected=307 unrecovered=0 \
                recoveries=307 lat_sum=309.08152589992557" );
             ( "ps-1024 cesrm@hotspot", ps, Some "hotspot",
               "rqst=69 exp_rqst=48 repl=652 exp_repl=31 sess=43 detected=307 unrecovered=0 \
                recoveries=307 lat_sum=288.40262821668074" );
           ])
        @ [
            Alcotest.test_case "multi-entry beats recent:1 on ps" `Quick
              test_multi_entry_beats_one_entry;
            Alcotest.test_case "default policy invisible" `Quick test_default_policy_invisible;
            Alcotest.test_case "compose with shards and steady" `Quick
              test_adversarial_compose;
            Alcotest.test_case "eager-only" `Quick test_adversarial_not_streamable;
          ] );
      ( "streaming",
        [
          Alcotest.test_case "loss budget calibrated" `Quick test_streamed_budget_calibrated;
        ] );
      ( "sweep",
        [ Alcotest.test_case "serial = parallel (bytes)" `Quick test_sweep_identity_at_scale ]
      );
      ( "churn",
        [
          Alcotest.test_case "srm churn-steady 1024" `Quick
            (check_churn_fingerprint "srm-churn-1024"
               "rqst=26 exp_rqst=0 repl=136 exp_repl=0 sess=36 detected=55 unrecovered=0 \
                recoveries=55 lat_sum=99.728880368300437 forgiven=0 oracle=0"
               Harness.Runner.Srm_protocol);
          Alcotest.test_case "cesrm churn-steady 1024" `Quick
            (check_churn_fingerprint "cesrm-churn-1024"
               "rqst=21 exp_rqst=5 repl=122 exp_repl=5 sess=36 detected=55 unrecovered=0 \
                recoveries=55 lat_sum=72.352493748669531 forgiven=0 oracle=0"
               (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config));
          Alcotest.test_case "compose with shards" `Quick test_churn_compose_shards;
        ] );
    ]
