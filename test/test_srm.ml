(* Tests for the SRM baseline: parameters, session distance estimation,
   loss detection, request/reply scheduling, suppression, back-off, and
   end-to-end recovery. *)

let check = Alcotest.check

let params = Srm.Params.default

(* 0 - 1 - 3 (rcvr)
       \ 4 (rcvr)
     2 - 5 (rcvr)  *)
let sample_tree () = Net.Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

(* Deploy SRM over [tree], dropping data packet [seq] on link [l] for
   every (seq, l) in [drops]; returns the finished deployment. *)
let run_srm ?(tree = sample_tree ()) ?(drops = []) ?(drop_requests = 0) ~n_packets () =
  let engine = Sim.Engine.create ~seed:99L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  let dropped_requests = ref drop_requests in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Data { seq } -> down && List.mem (seq, link) drops
      | Net.Packet.Request _ ->
          if !dropped_requests > 0 then begin
            decr dropped_requests;
            true
          end
          else false
      | _ -> false);
  let proto = Srm.Proto.deploy ~network ~params ~n_packets ~period:0.05 () in
  Srm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Sim.Engine.run ~until:120.0 engine;
  proto

let test_params () =
  check Alcotest.bool "default valid" true (Result.is_ok (Srm.Params.validate params));
  check Alcotest.bool "negative weight rejected" true
    (Result.is_error (Srm.Params.validate { params with c1 = -1. }));
  check Alcotest.bool "zero session period rejected" true
    (Result.is_error (Srm.Params.validate { params with session_period = 0. }));
  check Alcotest.bool "bad round cap rejected" true
    (Result.is_error (Srm.Params.validate { params with max_rounds = 0 }))

let test_session_distances_converge () =
  let proto = run_srm ~n_packets:1 () in
  let network = Srm.Proto.network proto in
  List.iter
    (fun (node, host) ->
      List.iter
        (fun (peer, _) ->
          if peer <> node then begin
            let est = Srm.Host.dist_to host peer in
            let true_d = Net.Network.dist network node peer in
            if Float.abs (est -. true_d) > 1e-6 then
              Alcotest.failf "distance %d->%d: est %.4f true %.4f" node peer est true_d
          end)
        (Srm.Proto.members proto))
    (Srm.Proto.members proto)

let test_single_loss_recovery () =
  let proto = run_srm ~drops:[ (5, 3) ] ~n_packets:10 () in
  let recs = Stats.Recovery.records (Srm.Proto.recoveries proto) in
  check Alcotest.int "one recovery" 1 (List.length recs);
  let r = List.hd recs in
  check Alcotest.int "receiver 3" 3 r.node;
  check Alcotest.int "seq 5" 5 r.seq;
  check Alcotest.bool "not expedited (plain SRM)" false r.expedited;
  (* d_hs = 0.04; worst case: request at (C1+C2)·d, one way 0.04, reply
     timer (D1+D2)·d_rq with d_rq <= 0.08, one way back, plus
     serialization. *)
  let lat = Stats.Recovery.latency r in
  check Alcotest.bool "latency positive" true (lat > 0.04);
  check Alcotest.bool "latency bounded" true (lat < 0.6);
  check Alcotest.int "exactly one request" 1
    (Stats.Counters.total (Srm.Proto.counters proto) Stats.Counters.Rqst)

let test_shared_loss_suppression () =
  (* Drop packet 5 on link 1: receivers 3 and 4 both lose it. Requests
     should be suppressed to far fewer than one per receiver, and both
     must recover. *)
  let proto = run_srm ~drops:[ (5, 1) ] ~n_packets:10 () in
  let recs = Stats.Recovery.records (Srm.Proto.recoveries proto) in
  check Alcotest.int "both recover" 2 (List.length recs);
  (* Two sharers can each fire round 0 before hearing the other, and a
     round-1 timer can race the reply; suppression still keeps the
     count well below max_rounds per sharer. *)
  let requests = Stats.Counters.total (Srm.Proto.counters proto) Stats.Counters.Rqst in
  check Alcotest.bool "suppression bounds requests" true (requests >= 1 && requests <= 4)

let test_source_replies_when_all_lose () =
  (* Drop packet 5 on links 1 and 2: every receiver loses it; only the
     source can retransmit. *)
  let proto = run_srm ~drops:[ (5, 1); (5, 2) ] ~n_packets:10 () in
  let recs = Stats.Recovery.records (Srm.Proto.recoveries proto) in
  check Alcotest.int "all three recover" 3 (List.length recs);
  let source_replies =
    Stats.Counters.get (Srm.Proto.counters proto) ~node:0 Stats.Counters.Repl
  in
  check Alcotest.bool "source retransmitted" true (source_replies >= 1)

let test_request_backoff_on_dropped_request () =
  (* Eat the first few request transmissions: the requestor must back
     off and the recovery must complete in a later round. *)
  let proto = run_srm ~drops:[ (5, 3) ] ~drop_requests:6 ~n_packets:10 () in
  let recs = Stats.Recovery.records (Srm.Proto.recoveries proto) in
  check Alcotest.int "recovered eventually" 1 (List.length recs);
  let r = List.hd recs in
  check Alcotest.bool "took more than one round" true (r.rounds >= 2)

let test_tail_loss_detected_via_session () =
  (* Drop the final packet for receiver 3: no later data packet reveals
     the gap, so only session max-seq announcements can. *)
  let proto = run_srm ~drops:[ (10, 3) ] ~n_packets:10 () in
  let recs = Stats.Recovery.records (Srm.Proto.recoveries proto) in
  check Alcotest.int "tail loss recovered" 1 (List.length recs);
  check Alcotest.int "it was the last packet" 10 (List.hd recs).seq

let test_burst_loss_recovery () =
  let drops = List.init 5 (fun i -> (i + 3, 3)) in
  let proto = run_srm ~drops ~n_packets:12 () in
  let recs = Stats.Recovery.records (Srm.Proto.recoveries proto) in
  check Alcotest.int "all five recovered" 5 (List.length recs);
  check Alcotest.(list int) "the right packets" [ 3; 4; 5; 6; 7 ]
    (List.sort compare (List.map (fun (r : Stats.Recovery.record) -> r.seq) recs))

(* --- white-box host behaviour ---------------------------------------- *)

let make_host ?(self = 3) () =
  let tree = sample_tree () in
  let engine = Sim.Engine.create ~seed:5L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  let counters = Stats.Counters.create ~n_nodes:(Net.Tree.n_nodes tree) in
  let recoveries = Stats.Recovery.create () in
  let host = Srm.Host.create ~network ~self ~params ~n_packets:100 ~counters ~recoveries () in
  (engine, network, host)

let test_host_gap_detection () =
  let _, _, host = make_host () in
  Srm.Host.on_packet host { Net.Packet.sender = 0; payload = Net.Packet.Data { seq = 3 } };
  check Alcotest.int "gaps detected" 2 (Srm.Host.detected_losses host);
  check Alcotest.int "requests pending" 2 (Srm.Host.pending_requests host);
  check Alcotest.bool "has 3" true (Srm.Host.has_packet host ~seq:3);
  check Alcotest.bool "missing 1" false (Srm.Host.has_packet host ~seq:1);
  check Alcotest.bool "suffered 1" true (Srm.Host.suffered_loss host ~seq:1);
  check Alcotest.int "max seq" 3 (Srm.Host.max_seq_seen host);
  (* Duplicate data is idempotent. *)
  Srm.Host.on_packet host { Net.Packet.sender = 0; payload = Net.Packet.Data { seq = 3 } };
  check Alcotest.int "no double detection" 2 (Srm.Host.detected_losses host)

let test_host_overheard_request_backs_off () =
  let _, _, host = make_host () in
  Srm.Host.on_packet host { Net.Packet.sender = 0; payload = Net.Packet.Data { seq = 2 } };
  check Alcotest.(option int) "initial round 0" (Some 0) (Srm.Host.request_round host ~seq:1);
  Srm.Host.on_packet host
    { Net.Packet.sender = 4; payload = Net.Packet.Request { src = 0; seq = 1; requestor = 4; d_qs = 0.04; round = 0 } };
  check Alcotest.(option int) "backed off to round 1" (Some 1)
    (Srm.Host.request_round host ~seq:1);
  (* Within the back-off abstinence period a second request is ignored. *)
  Srm.Host.on_packet host
    { Net.Packet.sender = 5; payload = Net.Packet.Request { src = 0; seq = 1; requestor = 5; d_qs = 0.04; round = 0 } };
  check Alcotest.(option int) "abstinence holds" (Some 1) (Srm.Host.request_round host ~seq:1)

let test_host_request_triggers_detection () =
  (* A request for a packet we never saw reveals both the packet's
     existence and our loss; we join at round 1 (suppressed). *)
  let _, _, host = make_host () in
  Srm.Host.on_packet host
    { Net.Packet.sender = 4; payload = Net.Packet.Request { src = 0; seq = 7; requestor = 4; d_qs = 0.04; round = 0 } };
  check Alcotest.int "all 7 losses detected" 7 (Srm.Host.detected_losses host);
  check Alcotest.(option int) "the requested one joined backed-off" (Some 1)
    (Srm.Host.request_round host ~seq:7)

let test_host_reply_recovers_and_cancels () =
  let _, _, host = make_host () in
  Srm.Host.on_packet host { Net.Packet.sender = 0; payload = Net.Packet.Data { seq = 2 } };
  Srm.Host.on_packet host
    {
      Net.Packet.sender = 4;
      payload =
        Net.Packet.Reply
          {
            src = 0;
            seq = 1;
            requestor = 4;
            d_qs = 0.04;
            replier = 5;
            d_rq = 0.08;
            expedited = false;
            turning_point = None;
          };
    };
  check Alcotest.bool "recovered" true (Srm.Host.has_packet host ~seq:1);
  check Alcotest.int "request cancelled" 0 (Srm.Host.pending_requests host)

let test_host_send_reply_now_abstinence () =
  let _, _, host = make_host () in
  Srm.Host.note_sent host ~seq:1;
  let sent = Srm.Host.send_reply_now host ~seq:1 ~requestor:4 ~d_qs:0.04 ~expedited:true () in
  check Alcotest.bool "first reply sent" true sent;
  let again = Srm.Host.send_reply_now host ~seq:1 ~requestor:4 ~d_qs:0.04 ~expedited:true () in
  check Alcotest.bool "second blocked by abstinence" false again;
  check Alcotest.bool "blocked query agrees" true (Srm.Host.reply_blocked host ~seq:1);
  let missing = Srm.Host.send_reply_now host ~seq:9 ~requestor:4 ~d_qs:0.04 ~expedited:true () in
  check Alcotest.bool "cannot reply without the packet" false missing

let test_host_hooks_fire () =
  let _, _, host = make_host () in
  let detected = ref [] and obtained = ref [] in
  let hooks = Srm.Host.hooks host in
  hooks.on_loss_detected <- (fun ~src:_ ~seq -> detected := seq :: !detected);
  hooks.on_packet_obtained <- (fun ~src:_ ~seq ~expedited:_ -> obtained := seq :: !obtained);
  Srm.Host.on_packet host { Net.Packet.sender = 0; payload = Net.Packet.Data { seq = 3 } };
  check Alcotest.(list int) "losses hooked" [ 1; 2 ] (List.sort compare !detected);
  check Alcotest.(list int) "data hooked" [ 3 ] !obtained

(* --- churn-safe host state (depart / join / forget_peer) -------------- *)

let test_host_depart_forgives_pending () =
  let _, _, host = make_host () in
  Srm.Host.on_packet host { Net.Packet.sender = 0; payload = Net.Packet.Data { seq = 3 } };
  check Alcotest.int "two losses pending" 2 (Srm.Host.pending_requests host);
  check Alcotest.int "depart forgives exactly the pending losses" 2 (Srm.Host.depart host);
  check Alcotest.int "no requests left armed" 0 (Srm.Host.pending_requests host);
  check Alcotest.int "the cumulative detection stat survives" 2
    (Srm.Host.detected_losses host);
  check Alcotest.int "a second depart has nothing to forgive" 0 (Srm.Host.depart host)

let test_host_join_baselines_detection () =
  let _, _, host = make_host () in
  (* the runner baselines a joiner at the packets already sent: they
     count as delivered, never as losses *)
  Srm.Host.join host ~baselines:[ (0, 5) ];
  check Alcotest.bool "baselined packets count as delivered" true
    (Srm.Host.has_packet host ~seq:5);
  Srm.Host.on_packet host { Net.Packet.sender = 0; payload = Net.Packet.Data { seq = 7 } };
  check Alcotest.int "only the post-join gap is detected" 1 (Srm.Host.detected_losses host);
  check Alcotest.int "one pending request (seq 6)" 1 (Srm.Host.pending_requests host);
  check Alcotest.bool "seq 6 is the suffered loss" true (Srm.Host.suffered_loss host ~seq:6);
  (* re-baselining lower never regresses the window (idempotent max) *)
  Srm.Host.join host ~baselines:[ (0, 3) ];
  check Alcotest.bool "baseline is monotone" true (Srm.Host.has_packet host ~seq:5)

let test_host_forget_peer_drops_estimate () =
  let proto = run_srm ~n_packets:1 () in
  let host = Srm.Proto.host proto 3 in
  let network = Srm.Proto.network proto in
  check (Alcotest.float 1e-6) "estimate converged before the leave"
    (Net.Network.dist network 3 5) (Srm.Host.dist_to host 5);
  Srm.Host.forget_peer host 5;
  check (Alcotest.float 1e-9) "forgotten peer falls back to the 1 s default" 1.0
    (Srm.Host.dist_to host 5);
  check (Alcotest.float 1e-6) "other peers keep their estimates"
    (Net.Network.dist network 3 4) (Srm.Host.dist_to host 4)

let test_host_departed_ignores_parked_evidence () =
  (* Session-triggered detection defers through an anonymous grace
     timer; one parked before a departure fires on the wiped host and
     must not charge it for the whole advertised prefix. *)
  let session_advert =
    {
      Net.Packet.sender = 4;
      payload =
        Net.Packet.Session { origin = 4; sent_at = 0.; max_seqs = [ (0, 12) ]; echoes = [] };
    }
  in
  (* Positive control: on a member the deferred timer detects the
     advertised prefix. *)
  let engine, _, host = make_host () in
  Srm.Host.on_packet host session_advert;
  Sim.Engine.run engine;
  check Alcotest.int "a member detects the advertised prefix" 12
    (Srm.Host.detected_losses host);
  (* The same parked timer finds a departed host and detects nothing. *)
  let engine, _, host = make_host () in
  Srm.Host.on_packet host session_advert;
  ignore (Srm.Host.depart host);
  Sim.Engine.run engine;
  check Alcotest.int "a departed host detects nothing" 0 (Srm.Host.detected_losses host);
  check Alcotest.int "and arms no requests" 0 (Srm.Host.pending_requests host)

let test_adaptive_controller () =
  let check = Alcotest.check in
  let a = Srm.Adaptive.create ~initial:Srm.Params.default in
  check (Alcotest.float 1e-9) "starts at C1" 2. (Srm.Adaptive.c1 a);
  check (Alcotest.float 1e-9) "starts at C2" 2. (Srm.Adaptive.c2 a);
  (* Sustained duplicates push both parameters up. *)
  for _ = 1 to 20 do
    Srm.Adaptive.note_request_cycle a ~dups:3 ~delay_in_d:1.0
  done;
  check Alcotest.bool "C1 grew" true (Srm.Adaptive.c1 a > 2.);
  check Alcotest.bool "C2 grew" true (Srm.Adaptive.c2 a > 2.);
  (* No duplicates and high delay pull them back down. *)
  for _ = 1 to 60 do
    Srm.Adaptive.note_request_cycle a ~dups:0 ~delay_in_d:3.0
  done;
  check Alcotest.bool "C2 shrank below its peak" true (Srm.Adaptive.c2 a < 8.);
  check Alcotest.bool "C1 bounded below" true (Srm.Adaptive.c1 a >= 0.5);
  (* Clamps hold under pathological pressure. *)
  for _ = 1 to 500 do
    Srm.Adaptive.note_reply_cycle a ~dups:10 ~delay_in_d:0.1
  done;
  check Alcotest.bool "D1 clamped" true (Srm.Adaptive.d1 a <= 6.);
  check Alcotest.bool "D2 clamped" true (Srm.Adaptive.d2 a <= 8.)

let test_adaptive_run_completes () =
  let gen = Mtrace.Generator.synthesize ~n_packets:1200 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let setup =
    { Harness.Runner.default_setup with params = { Srm.Params.default with adaptive = true } }
  in
  let res = Harness.Runner.run ~setup Harness.Runner.Srm_protocol gen.trace att in
  Alcotest.check Alcotest.int "adaptive SRM recovers everything" 0 res.unrecovered

let test_multi_source_recovery () =
  (* A second stream originating at receiver 5; receiver 3 loses
     packets from both streams and recovers both, with per-stream
     state kept apart. *)
  let engine = Sim.Engine.create ~seed:99L () in
  let network = Net.Network.create ~engine ~tree:(sample_tree ()) ~link_delay:0.02 () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match (p.payload, p.sender) with
      | Net.Packet.Data { seq }, 0 -> down && link = 3 && seq = 5
      | Net.Packet.Data { seq }, 5 -> down && link = 3 && seq = 8
      | _ -> false);
  let proto = Srm.Proto.deploy ~network ~params ~n_packets:15 ~period:0.05 () in
  Srm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Srm.Proto.add_stream proto ~src:5 ~n_packets:15 ~period:0.05 ~start_at:5.2;
  Sim.Engine.run ~until:120.0 engine;
  let recs = Stats.Recovery.records (Srm.Proto.recoveries proto) in
  let find src = List.find (fun (r : Stats.Recovery.record) -> r.src = src) recs in
  check Alcotest.int "two recoveries" 2 (List.length recs);
  check Alcotest.int "stream 0's loss" 5 (find 0).seq;
  check Alcotest.int "stream 5's loss" 8 (find 5).seq;
  let host3 = Srm.Proto.host proto 3 in
  check Alcotest.bool "per-stream reception state" true
    (Srm.Host.has_packet ~src:0 host3 ~seq:5 && Srm.Host.has_packet ~src:5 host3 ~seq:8);
  check Alcotest.int "stream 5 max seq" 15 (Srm.Host.max_seq_seen ~src:5 host3)

let test_full_trace_completeness () =
  (* Integration: a generated trace has every detected loss repaired. *)
  let gen = Mtrace.Generator.synthesize ~n_packets:1500 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let res = Harness.Runner.run Harness.Runner.Srm_protocol gen.trace att in
  check Alcotest.int "no unrecovered losses" 0 res.unrecovered;
  check Alcotest.bool "plenty recovered" true (Stats.Recovery.count res.recoveries > 100)

let () =
  Alcotest.run "srm"
    [
      ("params", [ Alcotest.test_case "validation" `Quick test_params ]);
      ( "session",
        [ Alcotest.test_case "distances converge" `Quick test_session_distances_converge ] );
      ( "recovery",
        [
          Alcotest.test_case "single loss" `Quick test_single_loss_recovery;
          Alcotest.test_case "shared loss suppression" `Quick test_shared_loss_suppression;
          Alcotest.test_case "source replies" `Quick test_source_replies_when_all_lose;
          Alcotest.test_case "request back-off" `Quick test_request_backoff_on_dropped_request;
          Alcotest.test_case "tail loss via session" `Quick test_tail_loss_detected_via_session;
          Alcotest.test_case "burst loss" `Quick test_burst_loss_recovery;
        ] );
      ( "host",
        [
          Alcotest.test_case "gap detection" `Quick test_host_gap_detection;
          Alcotest.test_case "overheard request backs off" `Quick
            test_host_overheard_request_backs_off;
          Alcotest.test_case "request triggers detection" `Quick
            test_host_request_triggers_detection;
          Alcotest.test_case "reply recovers and cancels" `Quick
            test_host_reply_recovers_and_cancels;
          Alcotest.test_case "reply-now abstinence" `Quick test_host_send_reply_now_abstinence;
          Alcotest.test_case "hooks fire" `Quick test_host_hooks_fire;
        ] );
      ( "churn",
        [
          Alcotest.test_case "depart forgives pending losses" `Quick
            test_host_depart_forgives_pending;
          Alcotest.test_case "join baselines detection" `Quick
            test_host_join_baselines_detection;
          Alcotest.test_case "forget_peer drops the estimate" `Quick
            test_host_forget_peer_drops_estimate;
          Alcotest.test_case "departed host ignores parked evidence" `Quick
            test_host_departed_ignores_parked_evidence;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "controller" `Quick test_adaptive_controller;
          Alcotest.test_case "adaptive run completes" `Quick test_adaptive_run_completes;
        ] );
      ( "integration",
        [
          Alcotest.test_case "trace completeness" `Quick test_full_trace_completeness;
          Alcotest.test_case "multi-source recovery" `Quick test_multi_source_recovery;
        ] );
    ]
