(* Tests for the network substrate: tree topology, packets, cost
   accounting, and delivery semantics. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* --- Tree ------------------------------------------------------------ *)

(* 0 - 1 - 3 (rcvr)
       \ 4 (rcvr)
     2 - 5 (rcvr)  *)
let sample_tree () = Net.Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

let test_tree_basic () =
  let t = sample_tree () in
  check Alcotest.int "n_nodes" 6 (Net.Tree.n_nodes t);
  check Alcotest.int "root" 0 (Net.Tree.root t);
  check Alcotest.int "parent 3" 1 (Net.Tree.parent t 3);
  check Alcotest.(list int) "children 1" [ 3; 4 ] (Net.Tree.children t 1);
  check Alcotest.int "depth 5" 2 (Net.Tree.depth t 5);
  check Alcotest.int "height" 2 (Net.Tree.height t);
  check Alcotest.(array int) "receivers" [| 3; 4; 5 |] (Net.Tree.receivers t);
  check Alcotest.int "n_receivers" 3 (Net.Tree.n_receivers t);
  check Alcotest.bool "3 is leaf" true (Net.Tree.is_leaf t 3);
  check Alcotest.bool "1 is not leaf" false (Net.Tree.is_leaf t 1)

let test_tree_validation () =
  let expect_invalid name parents =
    match Net.Tree.of_parents parents with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "empty" [||];
  expect_invalid "root not 0" [| 1; -1 |];
  expect_invalid "self parent" [| -1; 1 |];
  expect_invalid "out of range" [| -1; 9 |]

let test_tree_lca_hops () =
  let t = sample_tree () in
  check Alcotest.int "lca(3,4)" 1 (Net.Tree.lca t 3 4);
  check Alcotest.int "lca(3,5)" 0 (Net.Tree.lca t 3 5);
  check Alcotest.int "lca(3,3)" 3 (Net.Tree.lca t 3 3);
  check Alcotest.int "lca(1,3)" 1 (Net.Tree.lca t 1 3);
  check Alcotest.int "hops(3,4)" 2 (Net.Tree.hops t 3 4);
  check Alcotest.int "hops(3,5)" 4 (Net.Tree.hops t 3 5);
  check Alcotest.int "hops(0,0)" 0 (Net.Tree.hops t 0 0)

let test_tree_path () =
  let t = sample_tree () in
  check Alcotest.(list int) "path 3->5" [ 3; 1; 0; 2; 5 ] (Net.Tree.path t 3 5);
  check Alcotest.(list int) "path 0->3" [ 0; 1; 3 ] (Net.Tree.path t 0 3);
  check Alcotest.(list int) "path to self" [ 3 ] (Net.Tree.path t 3 3);
  check Alcotest.(list int) "links 3->5 (4 links)" [ 3; 1; 2; 5 ]
    (Net.Tree.on_path_links t 3 5)

let test_tree_ancestry_subtrees () =
  let t = sample_tree () in
  check Alcotest.bool "1 anc of 3" true (Net.Tree.is_ancestor t 1 3);
  check Alcotest.bool "2 not anc of 3" false (Net.Tree.is_ancestor t 2 3);
  check Alcotest.bool "self ancestor" true (Net.Tree.is_ancestor t 3 3);
  check Alcotest.(list int) "subtree rcvrs of 1" [ 3; 4 ] (Net.Tree.subtree_receivers t 1);
  check Alcotest.(list int) "subtree rcvrs of 0" [ 3; 4; 5 ] (Net.Tree.subtree_receivers t 0)

let test_tree_dist () =
  let t = sample_tree () in
  let delay _ = 0.02 in
  check (Alcotest.float 1e-9) "dist 3->5" 0.08 (Net.Tree.dist t ~delay 3 5);
  let m = Net.Tree.distance_matrix t ~delay in
  check (Alcotest.float 1e-9) "matrix symmetric" m.(3).(5) m.(5).(3);
  check (Alcotest.float 1e-9) "diag zero" 0. m.(2).(2)

let test_tree_constructors () =
  let line = Net.Tree.line 4 in
  check Alcotest.int "line height" 3 (Net.Tree.height line);
  check Alcotest.(array int) "line single receiver" [| 3 |] (Net.Tree.receivers line);
  let star = Net.Tree.star 5 in
  check Alcotest.int "star receivers" 5 (Net.Tree.n_receivers star);
  check Alcotest.int "star height" 1 (Net.Tree.height star);
  let bal = Net.Tree.balanced ~fanout:3 ~depth:2 in
  check Alcotest.int "balanced nodes" 13 (Net.Tree.n_nodes bal);
  check Alcotest.int "balanced receivers" 9 (Net.Tree.n_receivers bal)

let random_parents_gen =
  QCheck.Gen.(
    int_range 2 40 >>= fun n ->
    let rec fill i acc =
      if i >= n then return (Array.of_list (List.rev acc))
      else int_range 0 (i - 1) >>= fun p -> fill (i + 1) (p :: acc)
    in
    fill 1 [ -1 ])

let arbitrary_tree =
  QCheck.make
    ~print:(fun p -> String.concat "," (List.map string_of_int (Array.to_list p)))
    random_parents_gen

let prop_tree_lca_is_common_ancestor =
  QCheck.Test.make ~name:"tree: lca is a common ancestor" ~count:200 arbitrary_tree
    (fun parents ->
      let t = Net.Tree.of_parents parents in
      let n = Net.Tree.n_nodes t in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let a = Net.Tree.lca t u v in
          if not (Net.Tree.is_ancestor t a u && Net.Tree.is_ancestor t a v) then ok := false
        done
      done;
      !ok)

let prop_tree_hops_path_consistent =
  QCheck.Test.make ~name:"tree: |path| = hops + 1 and |links| = hops" ~count:200 arbitrary_tree
    (fun parents ->
      let t = Net.Tree.of_parents parents in
      let n = Net.Tree.n_nodes t in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let h = Net.Tree.hops t u v in
          if List.length (Net.Tree.path t u v) <> h + 1 then ok := false;
          if List.length (Net.Tree.on_path_links t u v) <> h then ok := false
        done
      done;
      !ok)

let prop_tree_receivers_are_leaves =
  QCheck.Test.make ~name:"tree: receivers are exactly the non-root leaves" ~count:200
    arbitrary_tree (fun parents ->
      let t = Net.Tree.of_parents parents in
      let n = Net.Tree.n_nodes t in
      let leaves =
        List.filter (fun v -> v <> 0 && Net.Tree.is_leaf t v) (List.init n Fun.id)
      in
      Array.to_list (Net.Tree.receivers t) = leaves)

(* --- Packet ----------------------------------------------------------- *)

let mk payload = { Net.Packet.sender = 1; payload }

let test_packet_sizes () =
  check Alcotest.int "data is 1KB" 8192 (Net.Packet.size_bits (mk (Net.Packet.Data { seq = 1 })));
  check Alcotest.int "reply is 1KB" 8192
    (Net.Packet.size_bits
       (mk
          (Net.Packet.Reply
             {
               src = 0;
               seq = 1;
               requestor = 2;
               d_qs = 0.1;
               replier = 3;
               d_rq = 0.1;
               expedited = false;
               turning_point = None;
             })));
  check Alcotest.int "request is free" 0
    (Net.Packet.size_bits
       (mk (Net.Packet.Request { src = 0; seq = 1; requestor = 2; d_qs = 0.1; round = 0 })));
  check Alcotest.int "session is free" 0
    (Net.Packet.size_bits
       (mk (Net.Packet.Session { origin = 1; sent_at = 0.; max_seqs = []; echoes = [] })))

let test_packet_seq () =
  check Alcotest.(option int) "data seq" (Some 9)
    (Net.Packet.seq (mk (Net.Packet.Data { seq = 9 })));
  check Alcotest.(option int) "session no seq" None
    (Net.Packet.seq
       (mk (Net.Packet.Session { origin = 1; sent_at = 0.; max_seqs = [ (0, 3) ]; echoes = [] })))

let test_packet_describe () =
  let d = Net.Packet.describe (mk (Net.Packet.Data { seq = 5 })) in
  check Alcotest.bool "describe non-empty" true (String.length d > 0)

(* --- Cost ------------------------------------------------------------- *)

let test_cost_accounting () =
  let c = Net.Cost.create () in
  Net.Cost.record_send c Net.Cost.Request Net.Cost.Multicast;
  Net.Cost.record_crossing c Net.Cost.Request Net.Cost.Multicast;
  Net.Cost.record_crossing c Net.Cost.Request Net.Cost.Multicast;
  Net.Cost.record_crossing c Net.Cost.Exp_request Net.Cost.Unicast;
  Net.Cost.record_crossing c Net.Cost.Reply Net.Cost.Multicast;
  Net.Cost.record_crossing c Net.Cost.Exp_reply Net.Cost.Subcast;
  check Alcotest.int "sends" 1 (Net.Cost.sends c Net.Cost.Request Net.Cost.Multicast);
  check Alcotest.int "crossings" 2 (Net.Cost.crossings c Net.Cost.Request Net.Cost.Multicast);
  check Alcotest.int "retx overhead counts replies" 2 (Net.Cost.retransmission_overhead c);
  check Alcotest.int "mc control" 2 (Net.Cost.control_overhead c ~multicast:true);
  check Alcotest.int "uc control" 1 (Net.Cost.control_overhead c ~multicast:false)

let test_cost_category_of () =
  check Alcotest.bool "expedited reply category" true
    (Net.Cost.category_of
       (mk
          (Net.Packet.Reply
             {
               src = 0;
               seq = 1;
               requestor = 2;
               d_qs = 0.1;
               replier = 3;
               d_rq = 0.1;
               expedited = true;
               turning_point = None;
             }))
    = Net.Cost.Exp_reply)

(* --- Network ----------------------------------------------------------- *)

let make_network ?(tree = sample_tree ()) () =
  let engine = Sim.Engine.create () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  (engine, network)

let session_packet =
  mk (Net.Packet.Session { origin = 1; sent_at = 0.; max_seqs = []; echoes = [] })

let test_network_multicast_times () =
  let engine, network = make_network () in
  let arrivals = Hashtbl.create 8 in
  List.iter
    (fun v ->
      Net.Network.on_receive network v (fun _ ->
          Hashtbl.replace arrivals v (Sim.Engine.now engine)))
    [ 0; 3; 4; 5 ];
  ignore
    (Sim.Engine.schedule engine ~after:1.0 (fun () ->
         Net.Network.multicast network ~from:3 session_packet));
  Sim.Engine.run engine;
  check Alcotest.bool "sender does not hear itself" false (Hashtbl.mem arrivals 3);
  check (Alcotest.float 1e-9) "to root: 2 hops" 1.04 (Hashtbl.find arrivals 0);
  check (Alcotest.float 1e-9) "to sibling: 2 hops" 1.04 (Hashtbl.find arrivals 4);
  check (Alcotest.float 1e-9) "across: 4 hops" 1.08 (Hashtbl.find arrivals 5)

let test_network_payload_serialization () =
  let engine, network = make_network () in
  let arrival = ref 0. in
  Net.Network.on_receive network 3 (fun _ -> arrival := Sim.Engine.now engine);
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.multicast network ~from:0 (mk (Net.Packet.Data { seq = 1 }))));
  Sim.Engine.run engine;
  let expected = 2. *. (0.02 +. (8192. /. 1.5e6)) in
  check (Alcotest.float 1e-9) "data pays serialization per hop" expected !arrival

let test_network_data_fifo () =
  let engine, network = make_network ~tree:(Net.Tree.line 2) () in
  let arrivals = ref [] in
  Net.Network.on_receive network 1 (fun p ->
      arrivals := (Net.Packet.seq p, Sim.Engine.now engine) :: !arrivals);
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.multicast network ~from:0 (mk (Net.Packet.Data { seq = 1 }));
         Net.Network.multicast network ~from:0 (mk (Net.Packet.Data { seq = 2 }))));
  Sim.Engine.run engine;
  let tx = 8192. /. 1.5e6 in
  check
    Alcotest.(list (pair (option int) (float 1e-9)))
    "FIFO with queueing"
    [ (Some 1, tx +. 0.02); (Some 2, (2. *. tx) +. 0.02) ]
    (List.rev !arrivals)

let test_network_drop_prunes_subtree () =
  let engine, network = make_network () in
  let got = ref [] in
  List.iter (fun v -> Net.Network.on_receive network v (fun _ -> got := v :: !got)) [ 3; 4; 5 ];
  Net.Network.set_drop network (fun ~link ~down _ -> down && link = 1);
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.multicast network ~from:0 (mk (Net.Packet.Data { seq = 1 }))));
  Sim.Engine.run engine;
  check Alcotest.(list int) "only node 5 receives" [ 5 ] (List.sort compare !got)

let test_network_drop_direction () =
  let engine, network = make_network () in
  let got = ref [] in
  List.iter
    (fun v -> Net.Network.on_receive network v (fun _ -> got := v :: !got))
    [ 0; 4; 5 ];
  Net.Network.set_drop network (fun ~link ~down _ -> down && link = 1);
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.multicast network ~from:3 session_packet));
  Sim.Engine.run engine;
  (* From node 3 the flood climbs link 3 (up), then link 4 down to node
     4 and links 2, 5 down to node 5 — link 1 is only crossed upward,
     so the down-only drop never triggers. *)
  check Alcotest.(list int) "upward traffic unaffected" [ 0; 4; 5 ] (List.sort compare !got)

let test_network_unicast () =
  let engine, network = make_network () in
  let got = ref [] in
  List.iter
    (fun v -> Net.Network.on_receive network v (fun _ -> got := v :: !got))
    [ 0; 3; 4; 5 ];
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.unicast network ~from:3 ~dst:5 session_packet));
  Sim.Engine.run engine;
  check Alcotest.(list int) "only destination delivered" [ 5 ] !got;
  check Alcotest.int "uc crossings = 4 hops" 4
    (Net.Cost.crossings (Net.Network.cost network) Net.Cost.Session Net.Cost.Unicast)

let test_network_subcast () =
  let engine, network = make_network () in
  let got = ref [] in
  List.iter
    (fun v -> Net.Network.on_receive network v (fun _ -> got := v :: !got))
    [ 0; 3; 4; 5 ];
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.subcast network ~at:1 session_packet));
  Sim.Engine.run engine;
  check Alcotest.(list int) "subtree of 1 only" [ 3; 4 ] (List.sort compare !got)

let test_network_relayed_subcast () =
  let engine, network = make_network () in
  let got = ref [] in
  List.iter
    (fun v -> Net.Network.on_receive network v (fun _ -> got := v :: !got))
    [ 0; 3; 4; 5 ];
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.relayed_subcast network ~from:5 ~via:1 session_packet));
  Sim.Engine.run engine;
  check Alcotest.(list int) "delivered under the turning point" [ 3; 4 ]
    (List.sort compare !got);
  let cost = Net.Network.cost network in
  check Alcotest.int "uphill unicast crossings (5->1 is 3 hops)" 3
    (Net.Cost.crossings cost Net.Cost.Session Net.Cost.Unicast);
  check Alcotest.int "downhill subcast crossings" 2
    (Net.Cost.crossings cost Net.Cost.Session Net.Cost.Subcast)

let test_network_multicast_crossings () =
  let engine, network = make_network () in
  ignore
    (Sim.Engine.schedule engine ~after:0.0 (fun () ->
         Net.Network.multicast network ~from:0 session_packet));
  Sim.Engine.run engine;
  check Alcotest.int "multicast crosses every link once" 5
    (Net.Cost.crossings (Net.Network.cost network) Net.Cost.Session Net.Cost.Multicast)

let test_network_dist_rtt () =
  let _, network = make_network () in
  check (Alcotest.float 1e-9) "dist" 0.08 (Net.Network.dist network 3 5);
  check (Alcotest.float 1e-9) "rtt" 0.16 (Net.Network.rtt network 3 5);
  check (Alcotest.float 1e-9) "link delay" 0.02 (Net.Network.link_delay network 3)

let test_network_heterogeneous () =
  let tree = Net.Tree.line 3 in
  let engine = Sim.Engine.create () in
  let delays = [| 0.; 0.010; 0.030 |] in
  let network = Net.Network.create_heterogeneous ~engine ~tree ~delays () in
  check (Alcotest.float 1e-9) "summed delays" 0.04 (Net.Network.dist network 0 2)

(* --- Perturbation layer (fault injection) ----------------------------- *)

let test_perturb_mid_flight_down () =
  (* A packet already computed/queued when the outage opens must still
     be swallowed: windows match the link *crossing* time, not the send
     time. Sent at 1.0, the flood reaches link 3 at 1.02 — inside the
     [1.01, 2.0) outage — so node 3 alone misses it. *)
  let engine, network = make_network () in
  let got = ref [] in
  List.iter
    (fun v -> Net.Network.on_receive network v (fun _ -> got := v :: !got))
    [ 0; 3; 4; 5 ];
  Net.Network.add_link_down network ~link:3 ~from_:1.01 ~until:2.0;
  check Alcotest.bool "perturbed" true (Net.Network.perturbed network);
  check Alcotest.bool "down inside window" true (Net.Network.link_is_down network ~link:3 ~at:1.5);
  check Alcotest.bool "up before window" false (Net.Network.link_is_down network ~link:3 ~at:1.0);
  ignore
    (Sim.Engine.schedule_at engine ~at:1.0 (fun () ->
         Net.Network.multicast network ~from:0 session_packet));
  Sim.Engine.run engine;
  check Alcotest.(list int) "node 3 alone misses" [ 4; 5 ] (List.sort compare !got);
  (* After the window closes the link carries traffic again. *)
  got := [];
  ignore
    (Sim.Engine.schedule_at engine ~at:2.5 (fun () ->
         Net.Network.multicast network ~from:0 session_packet));
  Sim.Engine.run engine;
  check Alcotest.(list int) "healed" [ 3; 4; 5 ] (List.sort compare !got)

let test_perturb_window_boundaries () =
  (* [from, until): a crossing starting exactly at `from` is dropped,
     one starting exactly at `until` goes through. *)
  let engine, network = make_network ~tree:(Net.Tree.line 2) () in
  let arrivals = ref [] in
  Net.Network.on_receive network 1 (fun _ -> arrivals := Sim.Engine.now engine :: !arrivals);
  Net.Network.add_link_down network ~link:1 ~from_:1.0 ~until:2.0;
  List.iter
    (fun at ->
      ignore
        (Sim.Engine.schedule_at engine ~at (fun () ->
             Net.Network.multicast network ~from:0 session_packet)))
    [ 0.5; 1.0; 1.999; 2.0 ];
  Sim.Engine.run engine;
  check
    Alcotest.(list (float 1e-9))
    "only the crossings outside [from, until) arrive" [ 0.52; 2.02 ] (List.rev !arrivals)

let test_perturb_invalid_windows () =
  let _, network = make_network () in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "negative from" (fun () ->
      Net.Network.add_link_down network ~link:1 ~from_:(-1.) ~until:2.);
  expect_invalid "empty window" (fun () ->
      Net.Network.add_link_down network ~link:1 ~from_:2. ~until:2.);
  expect_invalid "link 0" (fun () -> Net.Network.add_link_down network ~link:0 ~from_:0. ~until:1.);
  expect_invalid "link out of range" (fun () ->
      Net.Network.add_link_down network ~link:99 ~from_:0. ~until:1.);
  expect_invalid "non-positive jitter" (fun () ->
      Net.Network.add_link_jitter network ~link:1 ~from_:0. ~until:1. ~max_jitter:0.)

let test_perturb_crash_in_flight () =
  (* A receiver that crashes while a packet is in flight (here: before
     its first packet ever arrives) must not process it on arrival —
     deliver() re-checks the enabled flag at fire time. *)
  let engine, network = make_network () in
  let got = ref 0 in
  Net.Network.on_receive network 3 (fun _ -> incr got);
  ignore
    (Sim.Engine.schedule_at engine ~at:0.0 (fun () ->
         Net.Network.multicast network ~from:0 session_packet));
  (* packet arrives at node 3 at t = 0.04; the crash at 0.01 beats it *)
  ignore (Sim.Engine.schedule_at engine ~at:0.01 (fun () -> Net.Network.set_enabled network 3 false));
  ignore (Sim.Engine.schedule_at engine ~at:1.0 (fun () -> Net.Network.set_enabled network 3 true));
  ignore
    (Sim.Engine.schedule_at engine ~at:1.5 (fun () ->
         Net.Network.multicast network ~from:0 session_packet));
  Sim.Engine.run engine;
  check Alcotest.int "only the post-restart packet lands" 1 !got;
  check Alcotest.bool "re-enabled" true (Net.Network.is_enabled network 3)

let test_perturb_jitter () =
  let run () =
    let engine = Sim.Engine.create ~seed:99L () in
    let network = Net.Network.create ~engine ~tree:(Net.Tree.line 2) ~link_delay:0.02 () in
    let arrival = ref Float.nan in
    Net.Network.on_receive network 1 (fun _ -> arrival := Sim.Engine.now engine);
    Net.Network.add_link_jitter network ~link:1 ~from_:0. ~until:10. ~max_jitter:0.05;
    ignore
      (Sim.Engine.schedule_at engine ~at:1.0 (fun () ->
           Net.Network.multicast network ~from:0 session_packet));
    Sim.Engine.run engine;
    !arrival
  in
  let a = run () in
  check Alcotest.bool "delayed at least the link delay" true (a >= 1.02);
  check Alcotest.bool "bounded by max_jitter" true (a <= 1.02 +. 0.05 +. 1e-9);
  (* jitter draws come from a split of the engine RNG: same seed, same
     jitter — faulted runs stay pure functions of (seed, plan) *)
  check (Alcotest.float 1e-12) "deterministic under the seed" a (run ())

let test_perturb_dup () =
  let engine, network = make_network ~tree:(Net.Tree.line 2) () in
  let arrivals = ref [] in
  Net.Network.on_receive network 1 (fun _ -> arrivals := Sim.Engine.now engine :: !arrivals);
  Net.Network.add_link_dup network ~link:1 ~from_:0. ~until:2.;
  List.iter
    (fun at ->
      ignore
        (Sim.Engine.schedule_at engine ~at (fun () ->
             Net.Network.multicast network ~from:0 session_packet)))
    [ 1.0; 3.0 ];
  Sim.Engine.run engine;
  (* in-window crossing delivers twice (copy one link delay later);
     out-of-window crossing delivers once *)
  check
    Alcotest.(list (float 1e-9))
    "duplicate one delay later, then clean" [ 1.02; 1.04; 3.02 ] (List.rev !arrivals)

(* --- Membership layer (dynamic join/leave/rejoin) --------------------- *)

let test_membership_defaults () =
  let _, network = make_network () in
  check Alcotest.bool "no membership layer until first use" false (Net.Network.churned network);
  check Alcotest.bool "every node is a member by default" true (Net.Network.is_member network 3);
  check Alcotest.int "no joins" 0 (Net.Network.member_joins network);
  check Alcotest.int "no leaves" 0 (Net.Network.member_leaves network)

let test_membership_gates_delivery () =
  let engine, network = make_network () in
  let got = ref [] in
  List.iter (fun v -> Net.Network.on_receive network v (fun _ -> got := v :: !got)) [ 3; 4; 5 ];
  ignore
    (Sim.Engine.schedule_at engine ~at:0.5 (fun () -> Net.Network.set_member network 3 false));
  ignore
    (Sim.Engine.schedule_at engine ~at:1.0 (fun () ->
         Net.Network.multicast network ~from:0 session_packet));
  (* a departed member's own transmissions never reach the wire *)
  ignore
    (Sim.Engine.schedule_at engine ~at:1.5 (fun () ->
         Net.Network.multicast network ~from:3 session_packet));
  ignore
    (Sim.Engine.schedule_at engine ~at:2.0 (fun () -> Net.Network.set_member network 3 true));
  ignore
    (Sim.Engine.schedule_at engine ~at:2.5 (fun () ->
         Net.Network.multicast network ~from:0 session_packet));
  Sim.Engine.run engine;
  check
    Alcotest.(list int)
    "non-member misses the first cast, sends nothing, hears the post-rejoin cast"
    [ 3; 4; 4; 5; 5 ] (List.sort compare !got);
  check Alcotest.bool "layer installed" true (Net.Network.churned network);
  check Alcotest.int "one leave" 1 (Net.Network.member_leaves network);
  check Alcotest.int "one join" 1 (Net.Network.member_joins network)

let test_membership_counts_effective_transitions () =
  let _, network = make_network () in
  Net.Network.set_member network 3 false;
  Net.Network.set_member network 3 false;
  check Alcotest.int "redundant leave uncounted" 1 (Net.Network.member_leaves network);
  Net.Network.set_member network 3 true;
  Net.Network.set_member network 3 true;
  check Alcotest.int "redundant join uncounted" 1 (Net.Network.member_joins network);
  (* a late joiner's initial exclusion is a starting condition, not a
     churn event: the membership flips but the counters stay put *)
  Net.Network.set_member ~count:false network 4 false;
  check Alcotest.bool "uncounted exclusion flips membership" false
    (Net.Network.is_member network 4);
  check Alcotest.int "but no leave is charged" 1 (Net.Network.member_leaves network)

let test_membership_crash_is_not_departure () =
  let _, network = make_network () in
  Net.Network.set_member network 3 false;
  check Alcotest.bool "departed member is disabled too" false (Net.Network.is_enabled network 3);
  Net.Network.set_enabled network 4 false;
  check Alcotest.bool "a crashed host is still a member" true (Net.Network.is_member network 4);
  Net.Network.set_enabled network 4 true;
  check Alcotest.bool "and stays one after restart" true (Net.Network.is_member network 4)

(* --- Routes: precomputed orders agree with the Tree walks ------------- *)

let routes_of parents =
  let tree = Net.Tree.of_parents parents in
  let delays =
    Array.init (Net.Tree.n_nodes tree) (fun l ->
        if l = 0 then 0. else 0.001 *. float_of_int (1 + (l mod 7)))
  in
  (tree, delays, Net.Routes.create ~tree ~delays)

(* An order entry's subtree is the contiguous run [i .. i+skips-1]; it
   must hold exactly the later entries whose tree path from [origin]
   passes through this entry's node. *)
let check_order ~what tree delays origin (o : Net.Routes.order) expected_nodes =
  let n = Array.length o.nodes in
  if List.sort compare (Array.to_list o.nodes) <> List.sort compare expected_nodes then
    Alcotest.failf "%s: wrong node set from %d" what origin;
  for i = 0 to n - 1 do
    let node = o.nodes.(i) in
    let path = Net.Tree.path tree origin node in
    (match List.rev path with
    | _ :: prev :: _ ->
        if o.prevs.(i) <> prev then Alcotest.failf "%s: prev of %d" what node
    | _ -> Alcotest.failf "%s: degenerate path to %d" what node);
    let link = if Net.Tree.parent tree node = o.prevs.(i) then node else o.prevs.(i) in
    if o.links.(i) <> link then Alcotest.failf "%s: link of %d" what node;
    let d = Net.Tree.dist tree ~delay:(fun l -> delays.(l)) origin node in
    if Float.abs (o.cum.(i) -. d) > 1e-9 then Alcotest.failf "%s: cum of %d" what node;
    let in_subtree = ref 0 in
    for j = i to n - 1 do
      if List.mem node (Net.Tree.path tree origin o.nodes.(j)) then incr in_subtree
    done;
    if o.skips.(i) <> !in_subtree then Alcotest.failf "%s: skips of %d" what node
  done

let prop_routes_flood_order =
  QCheck.Test.make ~name:"routes: flood orders replay the neighbor walk" ~count:60
    arbitrary_tree (fun parents ->
      let tree, delays, routes = routes_of parents in
      let n = Net.Tree.n_nodes tree in
      let all = List.init n Fun.id in
      for origin = 0 to n - 1 do
        check_order ~what:"flood" tree delays origin
          (Net.Routes.flood_order routes origin)
          (List.filter (fun v -> v <> origin) all)
      done;
      true)

let prop_routes_down_order =
  QCheck.Test.make ~name:"routes: down orders cover exactly the subtree" ~count:60
    arbitrary_tree (fun parents ->
      let tree, delays, routes = routes_of parents in
      for root = 0 to Net.Tree.n_nodes tree - 1 do
        let below = List.filter (fun v -> v <> root) (Net.Tree.subtree_nodes tree root) in
        if Net.Routes.subtree_size routes root <> List.length below + 1 then
          Alcotest.failf "subtree_size of %d" root;
        check_order ~what:"down" tree delays root (Net.Routes.down_order routes root) below
      done;
      true)

let prop_routes_path =
  QCheck.Test.make ~name:"routes: paths agree with Tree.path/on_path_links" ~count:60
    arbitrary_tree (fun parents ->
      let tree, _, routes = routes_of parents in
      let n = Net.Tree.n_nodes tree in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let p = Net.Routes.path routes ~src ~dst in
          if Array.to_list p.hops <> List.tl (Net.Tree.path tree src dst) then
            Alcotest.failf "hops %d->%d" src dst;
          if Array.to_list p.plinks <> Net.Tree.on_path_links tree src dst then
            Alcotest.failf "plinks %d->%d" src dst;
          Array.iteri
            (fun i down ->
              let prev = if i = 0 then src else p.hops.(i - 1) in
              if down <> (Net.Tree.parent tree p.hops.(i) = prev) then
                Alcotest.failf "pdowns %d->%d hop %d" src dst i)
            p.pdowns
        done
      done;
      true)

let prop_routes_neighbors =
  QCheck.Test.make ~name:"routes: neighbors/children mirror the tree lists" ~count:100
    arbitrary_tree (fun parents ->
      let tree, _, routes = routes_of parents in
      let ok = ref true in
      for v = 0 to Net.Tree.n_nodes tree - 1 do
        if Array.to_list (Net.Routes.neighbors routes v) <> Net.Tree.neighbors tree v then
          ok := false;
        if Array.to_list (Net.Routes.children routes v) <> Net.Tree.children tree v then
          ok := false
      done;
      !ok)

let prop_subtree_nodes_preorder =
  QCheck.Test.make ~name:"tree: subtree_nodes is the ancestor-filtered preorder" ~count:100
    arbitrary_tree (fun parents ->
      let tree = Net.Tree.of_parents parents in
      let n = Net.Tree.n_nodes tree in
      let ok = ref true in
      for v = 0 to n - 1 do
        let nodes = Net.Tree.subtree_nodes tree v in
        let members = List.filter (fun x -> Net.Tree.is_ancestor tree v x) (List.init n Fun.id) in
        if List.sort compare nodes <> members then ok := false;
        (* DFS preorder: every node appears after its parent (the root
           of the subtree first). *)
        (match nodes with hd :: _ when hd = v -> () | _ -> ok := false);
        List.iteri
          (fun i x ->
            if x <> v then begin
              let seen = List.filteri (fun j _ -> j < i) nodes in
              if not (List.mem (Net.Tree.parent tree x) seen) then ok := false
            end)
          nodes
      done;
      !ok)

let () =
  Alcotest.run "net"
    [
      ( "tree",
        [
          Alcotest.test_case "basic" `Quick test_tree_basic;
          Alcotest.test_case "validation" `Quick test_tree_validation;
          Alcotest.test_case "lca/hops" `Quick test_tree_lca_hops;
          Alcotest.test_case "paths" `Quick test_tree_path;
          Alcotest.test_case "ancestry/subtrees" `Quick test_tree_ancestry_subtrees;
          Alcotest.test_case "distances" `Quick test_tree_dist;
          Alcotest.test_case "constructors" `Quick test_tree_constructors;
          qcheck prop_tree_lca_is_common_ancestor;
          qcheck prop_tree_hops_path_consistent;
          qcheck prop_tree_receivers_are_leaves;
        ] );
      ( "packet",
        [
          Alcotest.test_case "sizes" `Quick test_packet_sizes;
          Alcotest.test_case "seq" `Quick test_packet_seq;
          Alcotest.test_case "describe" `Quick test_packet_describe;
        ] );
      ( "cost",
        [
          Alcotest.test_case "accounting" `Quick test_cost_accounting;
          Alcotest.test_case "category of" `Quick test_cost_category_of;
        ] );
      ( "network",
        [
          Alcotest.test_case "multicast times" `Quick test_network_multicast_times;
          Alcotest.test_case "payload serialization" `Quick test_network_payload_serialization;
          Alcotest.test_case "data FIFO" `Quick test_network_data_fifo;
          Alcotest.test_case "drop prunes subtree" `Quick test_network_drop_prunes_subtree;
          Alcotest.test_case "drop direction" `Quick test_network_drop_direction;
          Alcotest.test_case "unicast" `Quick test_network_unicast;
          Alcotest.test_case "subcast" `Quick test_network_subcast;
          Alcotest.test_case "relayed subcast" `Quick test_network_relayed_subcast;
          Alcotest.test_case "multicast crossings" `Quick test_network_multicast_crossings;
          Alcotest.test_case "dist/rtt" `Quick test_network_dist_rtt;
          Alcotest.test_case "heterogeneous delays" `Quick test_network_heterogeneous;
        ] );
      ( "perturb",
        [
          Alcotest.test_case "mid-flight link down" `Quick test_perturb_mid_flight_down;
          Alcotest.test_case "window boundaries" `Quick test_perturb_window_boundaries;
          Alcotest.test_case "invalid windows" `Quick test_perturb_invalid_windows;
          Alcotest.test_case "crash in flight" `Quick test_perturb_crash_in_flight;
          Alcotest.test_case "jitter bounded and deterministic" `Quick test_perturb_jitter;
          Alcotest.test_case "duplication" `Quick test_perturb_dup;
        ] );
      ( "membership",
        [
          Alcotest.test_case "defaults" `Quick test_membership_defaults;
          Alcotest.test_case "gates delivery both ways" `Quick test_membership_gates_delivery;
          Alcotest.test_case "counts effective transitions" `Quick
            test_membership_counts_effective_transitions;
          Alcotest.test_case "crash is not departure" `Quick
            test_membership_crash_is_not_departure;
        ] );
      ( "routes",
        [
          qcheck prop_routes_flood_order;
          qcheck prop_routes_down_order;
          qcheck prop_routes_path;
          qcheck prop_routes_neighbors;
          qcheck prop_subtree_nodes_preorder;
        ] );
    ]
