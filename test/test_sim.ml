(* Tests for the simulation substrate: PRNG, heap, event engine. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* --- Rng ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same seed, same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.bits64 a <> Sim.Rng.bits64 b then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_rng_split_independent () =
  let parent = Sim.Rng.create 7L in
  let child = Sim.Rng.split parent in
  let xs = List.init 50 (fun _ -> Sim.Rng.bits64 parent) in
  let ys = List.init 50 (fun _ -> Sim.Rng.bits64 child) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Sim.Rng.create 3L in
  ignore (Sim.Rng.bits64 a);
  let b = Sim.Rng.copy a in
  check Alcotest.int64 "copy resumes identically" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)

let test_rng_uniform_mean () =
  let rng = Sim.Rng.create 11L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.uniform rng 2.0 4.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "uniform(2,4) mean near 3" true (Float.abs (mean -. 3.0) < 0.03)

let test_rng_exponential_mean () =
  let rng = Sim.Rng.create 13L in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential rng 0.5
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "exponential mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_bernoulli_extremes () =
  let rng = Sim.Rng.create 17L in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never true" false (Sim.Rng.bernoulli rng 0.);
    check Alcotest.bool "p=1 always true" true (Sim.Rng.bernoulli rng 1.0)
  done

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng: float stays in [0,b)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, b) ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let x = Sim.Rng.float rng b in
      x >= 0. && x < b)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng: int stays in [0,n)" ~count:500
    QCheck.(pair small_int (int_range 1 100000))
    (fun (seed, n) ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let x = Sim.Rng.int rng n in
      x >= 0 && x < n)

let prop_rng_shuffle_multiset =
  QCheck.Test.make ~name:"rng: shuffle preserves elements" ~count:200
    QCheck.(pair small_int (list int))
    (fun (seed, xs) ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let a = Array.of_list xs in
      Sim.Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_rng_log_uniform_bounds () =
  let rng = Sim.Rng.create 23L in
  for _ = 1 to 1000 do
    let x = Sim.Rng.log_uniform rng 0.01 10. in
    check Alcotest.bool "in range" true (x >= 0.0099 && x <= 10.01)
  done

(* --- Heap ------------------------------------------------------------ *)

let test_heap_empty () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  check Alcotest.bool "is_empty" true (Sim.Heap.is_empty h);
  check Alcotest.(option int) "peek none" None (Sim.Heap.peek h);
  check Alcotest.(option int) "pop none" None (Sim.Heap.pop h);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Sim.Heap.pop_exn h))

let test_heap_order () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.add h) [ 5; 3; 8; 1; 9; 2; 7 ];
  check Alcotest.(option int) "peek min" (Some 1) (Sim.Heap.peek h);
  let drained = List.init 7 (fun _ -> Sim.Heap.pop_exn h) in
  check Alcotest.(list int) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ] drained

let test_heap_interleaved () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  Sim.Heap.add h 4;
  Sim.Heap.add h 2;
  check Alcotest.int "pop 2" 2 (Sim.Heap.pop_exn h);
  Sim.Heap.add h 1;
  Sim.Heap.add h 3;
  check Alcotest.int "pop 1" 1 (Sim.Heap.pop_exn h);
  check Alcotest.int "pop 3" 3 (Sim.Heap.pop_exn h);
  check Alcotest.int "pop 4" 4 (Sim.Heap.pop_exn h);
  check Alcotest.int "length 0" 0 (Sim.Heap.length h)

let test_heap_clear () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.add h) [ 1; 2; 3 ];
  Sim.Heap.clear h;
  check Alcotest.bool "cleared" true (Sim.Heap.is_empty h)

let test_heap_duplicates () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.add h) [ 2; 2; 2; 1; 1 ];
  check Alcotest.(list int) "dups kept" [ 1; 1; 2; 2; 2 ]
    (List.init 5 (fun _ -> Sim.Heap.pop_exn h))

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap: drain is sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.add h) xs;
      let drained = List.init (List.length xs) (fun _ -> Sim.Heap.pop_exn h) in
      drained = List.sort compare xs)

let prop_heap_to_sorted_list =
  QCheck.Test.make ~name:"heap: to_sorted_list is non-destructive and sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.add h) xs;
      let sorted = Sim.Heap.to_sorted_list h in
      sorted = List.sort compare xs && Sim.Heap.length h = List.length xs)

let test_heap_filter () =
  let h = Sim.Heap.create ~cmp:Int.compare in
  List.iter (Sim.Heap.add h) [ 7; 2; 9; 4; 1; 8; 6; 3; 5; 10 ];
  Sim.Heap.filter h (fun x -> x mod 2 = 0);
  check Alcotest.int "evens kept" 5 (Sim.Heap.length h);
  check Alcotest.(list int) "drain sorted" [ 2; 4; 6; 8; 10 ]
    (List.init 5 (fun _ -> Sim.Heap.pop_exn h));
  Sim.Heap.filter h (fun _ -> true);
  check Alcotest.bool "filter on empty" true (Sim.Heap.is_empty h)

let prop_heap_filter_preserves_order =
  QCheck.Test.make ~name:"heap: filter keeps exactly the matches, still sorted" ~count:300
    QCheck.(pair (list int) int)
    (fun (xs, pivot) ->
      let h = Sim.Heap.create ~cmp:Int.compare in
      List.iter (Sim.Heap.add h) xs;
      Sim.Heap.filter h (fun x -> x < pivot);
      let expected = List.sort compare (List.filter (fun x -> x < pivot) xs) in
      List.init (Sim.Heap.length h) (fun _ -> Sim.Heap.pop_exn h) = expected)

(* --- Engine ----------------------------------------------------------- *)

let test_engine_time_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.Engine.now e) :: !log in
  ignore (Sim.Engine.schedule e ~after:3.0 (note "c"));
  ignore (Sim.Engine.schedule e ~after:1.0 (note "a"));
  ignore (Sim.Engine.schedule e ~after:2.0 (note "b"));
  Sim.Engine.run e;
  check
    Alcotest.(list (pair string (float 1e-9)))
    "events in order"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log)

let test_engine_fifo_ties () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~after:1.0 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run e;
  check Alcotest.(list int) "FIFO among equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let timer = Sim.Engine.schedule e ~after:1.0 (fun () -> fired := true) in
  check Alcotest.bool "pending before" true (Sim.Engine.is_pending timer);
  Sim.Engine.cancel timer;
  check Alcotest.bool "not pending after" false (Sim.Engine.is_pending timer);
  Sim.Engine.run e;
  check Alcotest.bool "cancelled timer did not fire" false !fired

let test_engine_cancel_idempotent () =
  let e = Sim.Engine.create () in
  let timer = Sim.Engine.schedule e ~after:1.0 (fun () -> ()) in
  Sim.Engine.cancel timer;
  Sim.Engine.cancel timer;
  Sim.Engine.run e

let test_engine_schedule_inside_callback () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~after:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.Engine.schedule e ~after:0.5 (fun () -> log := "inner" :: !log))));
  Sim.Engine.run e;
  check Alcotest.(list string) "nested scheduling" [ "outer"; "inner" ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock advanced" 1.5 (Sim.Engine.now e)

let test_engine_horizon () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  ignore (Sim.Engine.schedule e ~after:1.0 (fun () -> fired := 1 :: !fired));
  ignore (Sim.Engine.schedule e ~after:2.0 (fun () -> fired := 2 :: !fired));
  ignore (Sim.Engine.schedule e ~after:3.0 (fun () -> fired := 3 :: !fired));
  Sim.Engine.run ~until:2.0 e;
  check Alcotest.(list int) "events at or before horizon" [ 1; 2 ] (List.rev !fired);
  Sim.Engine.run e;
  check Alcotest.(list int) "remaining events run later" [ 1; 2; 3 ] (List.rev !fired)

let test_engine_max_events () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Sim.Engine.schedule e ~after:1.0 (fun () -> incr count))
  done;
  Sim.Engine.run ~max_events:4 e;
  check Alcotest.int "event budget respected" 4 !count

let test_engine_negative_delay_clamped () =
  let e = Sim.Engine.create () in
  let at = ref (-1.) in
  ignore (Sim.Engine.schedule e ~after:5.0 (fun () ->
      ignore (Sim.Engine.schedule e ~after:(-3.0) (fun () -> at := Sim.Engine.now e))));
  Sim.Engine.run e;
  check (Alcotest.float 1e-9) "clamped to now" 5.0 !at

let test_engine_schedule_at_past_clamped () =
  let e = Sim.Engine.create () in
  let at = ref (-1.) in
  ignore (Sim.Engine.schedule e ~after:2.0 (fun () ->
      ignore (Sim.Engine.schedule_at e ~at:1.0 (fun () -> at := Sim.Engine.now e))));
  Sim.Engine.run e;
  check (Alcotest.float 1e-9) "past events run now" 2.0 !at

let test_engine_pending_events () =
  let e = Sim.Engine.create () in
  let t1 = Sim.Engine.schedule e ~after:1.0 (fun () -> ()) in
  ignore (Sim.Engine.schedule e ~after:2.0 (fun () -> ()));
  check Alcotest.int "two pending" 2 (Sim.Engine.pending_events e);
  Sim.Engine.cancel t1;
  check Alcotest.int "one pending after cancel" 1 (Sim.Engine.pending_events e)

let test_engine_step () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  ignore (Sim.Engine.schedule e ~after:1.0 (fun () -> incr count));
  check Alcotest.bool "step runs one" true (Sim.Engine.step e);
  check Alcotest.bool "step on empty is false" false (Sim.Engine.step e);
  check Alcotest.int "ran once" 1 !count

let test_engine_fire_time () =
  let e = Sim.Engine.create () in
  let t = Sim.Engine.schedule e ~after:2.5 (fun () -> ()) in
  check (Alcotest.float 1e-9) "fire time" 2.5 (Sim.Engine.fire_time t)

let test_engine_pending_events_lifecycle () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let timers = List.init 10 (fun i -> Sim.Engine.schedule e ~after:(float_of_int i) (fun () -> incr fired)) in
  check Alcotest.int "all pending" 10 (Sim.Engine.pending_events e);
  let victim = List.nth timers 3 in
  Sim.Engine.cancel victim;
  Sim.Engine.cancel victim;
  check Alcotest.int "double cancel counts once" 9 (Sim.Engine.pending_events e);
  check Alcotest.bool "cancelled is not pending" false (Sim.Engine.is_pending victim);
  ignore (Sim.Engine.step e);
  check Alcotest.int "fire decrements" 8 (Sim.Engine.pending_events e);
  Sim.Engine.cancel (List.hd timers);
  check Alcotest.int "cancel after fire is a no-op" 8 (Sim.Engine.pending_events e);
  Sim.Engine.run e;
  check Alcotest.int "queue drained" 0 (Sim.Engine.pending_events e);
  check Alcotest.int "nine fired" 9 !fired

(* Mass cancellation triggers the in-place tombstone compaction; the
   survivors must still fire, once each, in time order. *)
let test_engine_compaction () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let timers =
    Array.init 1000 (fun i ->
        let at = float_of_int ((i * 7919) mod 1000) in
        Sim.Engine.schedule_at e ~at (fun () -> log := at :: !log))
  in
  Array.iteri (fun i t -> if i mod 10 <> 0 then Sim.Engine.cancel t) timers;
  check Alcotest.int "post-compaction pending" 100 (Sim.Engine.pending_events e);
  Sim.Engine.run e;
  let fired = List.rev !log in
  check Alcotest.int "survivors fired" 100 (List.length fired);
  check Alcotest.bool "in order" true (fired = List.sort compare fired)

(* A fired timer's slot may be recycled by a later schedule; stale
   handles must not affect the new occupant. *)
let test_engine_slot_reuse_safe () =
  let e = Sim.Engine.create () in
  let stale = Sim.Engine.schedule e ~after:1.0 (fun () -> ()) in
  Sim.Engine.run e;
  let fired = ref false in
  let fresh = Sim.Engine.schedule e ~after:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel stale;
  check Alcotest.bool "stale handle reports not pending" false (Sim.Engine.is_pending stale);
  check Alcotest.bool "fresh timer survives stale cancel" true (Sim.Engine.is_pending fresh);
  Sim.Engine.run e;
  check Alcotest.bool "fresh timer fired" true !fired

(* --- Differential: wheel backend vs. reference heap ----------------- *)

(* The timer wheel must be observationally identical to the pure heap
   (DESIGN.md §12: buckets flush into the heap, which alone decides
   firing order). The battery interprets one random schedule program
   against both backends and compares the full (label, time) firing
   trace plus the lifetime counters. Programs mix zero delays,
   sub-tick delays, quantized delays (lots of exact ties), ordinary
   delays, beyond-horizon delays (the heap overflow level), and
   callback-driven cancellation, chained scheduling and re-arms.
   Shrinking drops ops, so a failure reports a minimal diverging
   schedule. *)

type sched_action =
  | Sched_nop
  | Sched_cancel of int  (* cancel timer (k mod timers-so-far) *)
  | Sched_chain of float  (* schedule a fresh timer at now + d *)
  | Sched_rearm of int * float  (* cancel, then schedule a replacement *)

type sched_spec = { sched_delay : float; sched_action : sched_action }

let run_sched_program backend specs =
  let e = Sim.Engine.create ~backend () in
  let log = ref [] in
  let timers = Hashtbl.create 16 in
  let next_label = ref 0 in
  let rec add delay action =
    let label = !next_label in
    incr next_label;
    let cancel_nth k =
      if !next_label > 0 then
        Option.iter Sim.Engine.cancel (Hashtbl.find_opt timers (k mod !next_label))
    in
    let t =
      Sim.Engine.schedule e ~after:delay (fun () ->
          log := (label, Sim.Engine.now e) :: !log;
          match action with
          | Sched_nop -> ()
          | Sched_cancel k -> cancel_nth k
          | Sched_chain d -> add d Sched_nop
          | Sched_rearm (k, d) ->
              cancel_nth k;
              add d Sched_nop)
    in
    Hashtbl.replace timers label t
  in
  List.iter (fun { sched_delay; sched_action } -> add sched_delay sched_action) specs;
  Sim.Engine.run e;
  ( List.rev !log,
    Sim.Engine.events_fired e,
    Sim.Engine.events_cancelled e,
    Sim.Engine.now e )

let print_sched_spec { sched_delay; sched_action } =
  let a =
    match sched_action with
    | Sched_nop -> ""
    | Sched_cancel k -> Printf.sprintf " cancel:%d" k
    | Sched_chain d -> Printf.sprintf " chain:+%h" d
    | Sched_rearm (k, d) -> Printf.sprintf " rearm:%d,+%h" k d
  in
  Printf.sprintf "{+%h%s}" sched_delay a

let gen_sched_delay =
  QCheck.Gen.(
    frequency
      [
        (1, return 0.);
        (2, float_range 0. 0.001);
        (* eighths of a second: collisions guaranteed, so FIFO among
           exact ties is exercised constantly *)
        (4, map (fun i -> float_of_int i /. 8.) (int_range 0 80));
        (2, float_range 0. 10.);
        (* around and beyond the 256^3-tick wheel horizon *)
        (1, float_range 16000. 20000.);
      ])

let gen_sched_spec =
  QCheck.Gen.(
    let action =
      frequency
        [
          (5, return Sched_nop);
          (2, map (fun k -> Sched_cancel k) (int_range 0 50));
          (2, map (fun d -> Sched_chain d) gen_sched_delay);
          (1, map2 (fun k d -> Sched_rearm (k, d)) (int_range 0 50) gen_sched_delay);
        ]
    in
    map2
      (fun sched_delay sched_action -> { sched_delay; sched_action })
      gen_sched_delay action)

let arb_sched_program =
  QCheck.make
    ~print:(fun specs -> String.concat " " (List.map print_sched_spec specs))
    ~shrink:QCheck.Shrink.(list ?shrink:None)
    QCheck.Gen.(list_size (int_range 0 60) gen_sched_spec)

let prop_wheel_heap_differential =
  QCheck.Test.make ~name:"engine: wheel and heap backends fire identically" ~count:150
    arb_sched_program
    (fun specs -> run_sched_program `Wheel specs = run_sched_program `Heap specs)

(* A deterministic, cascade-heavy program: thousands of timers spread
   over 3000 s force level-1 and level-2 wheel cascades, with a
   quarter cancelled while still parked in wheel buckets. Also guards
   the differential against vacuity: the wheel backend must actually
   report wheel traffic. *)
let test_engine_wheel_cascades_differential () =
  let program backend =
    let e = Sim.Engine.create ~backend () in
    let log = ref [] in
    let timers =
      Array.init 2000 (fun i ->
          let at = float_of_int (i * 7919 mod 3000) +. (float_of_int i /. 97.) in
          Sim.Engine.schedule_at e ~at (fun () -> log := (i, Sim.Engine.now e) :: !log))
    in
    Array.iteri (fun i t -> if i land 3 = 0 then Sim.Engine.cancel t) timers;
    Sim.Engine.run e;
    (e, List.rev !log)
  in
  let wheel_engine, wheel_log = program `Wheel in
  let _, heap_log = program `Heap in
  check Alcotest.bool "wheel = heap over cascade-heavy program" true (wheel_log = heap_log);
  let reg = Obs.Registry.create () in
  Sim.Engine.publish_metrics wheel_engine reg;
  let wheel_inserts = Option.value ~default:0 (Obs.Registry.counter_value reg "sim/wheel_inserts") in
  let cascades = Option.value ~default:0 (Obs.Registry.counter_value reg "sim/wheel_cascades") in
  check Alcotest.bool "wheel actually engaged" true (wheel_inserts > 1000);
  check Alcotest.bool "cascades happened" true (cascades > 0)

let prop_engine_random_schedule =
  QCheck.Test.make ~name:"engine: arbitrary delays run in sorted order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range 0. 100.))
    (fun delays ->
      let e = Sim.Engine.create () in
      let log = ref [] in
      List.iter
        (fun d -> ignore (Sim.Engine.schedule e ~after:d (fun () -> log := Sim.Engine.now e :: !log)))
        delays;
      Sim.Engine.run e;
      let times = List.rev !log in
      times = List.sort compare delays)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "log-uniform bounds" `Quick test_rng_log_uniform_bounds;
          qcheck prop_rng_float_bounds;
          qcheck prop_rng_int_bounds;
          qcheck prop_rng_shuffle_multiset;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
          qcheck prop_heap_sorted;
          qcheck prop_heap_to_sorted_list;
          Alcotest.test_case "filter" `Quick test_heap_filter;
          qcheck prop_heap_filter_preserves_order;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_engine_cancel_idempotent;
          Alcotest.test_case "nested scheduling" `Quick test_engine_schedule_inside_callback;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
          Alcotest.test_case "past schedule_at" `Quick test_engine_schedule_at_past_clamped;
          Alcotest.test_case "pending count" `Quick test_engine_pending_events;
          Alcotest.test_case "pending lifecycle" `Quick test_engine_pending_events_lifecycle;
          Alcotest.test_case "tombstone compaction" `Quick test_engine_compaction;
          Alcotest.test_case "slot reuse safety" `Quick test_engine_slot_reuse_safe;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "fire time" `Quick test_engine_fire_time;
          qcheck prop_engine_random_schedule;
        ] );
      ( "differential",
        [
          qcheck prop_wheel_heap_differential;
          Alcotest.test_case "cascade-heavy program" `Quick
            test_engine_wheel_cascades_differential;
        ] );
    ]
