(* Tests for the stats library: summaries, vectors, recovery records,
   counters, table rendering. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* --- Vec --------------------------------------------------------------- *)

let test_vec () =
  let v = Stats.Vec.create () in
  check Alcotest.int "empty" 0 (Stats.Vec.length v);
  for i = 1 to 100 do
    Stats.Vec.add v (float_of_int i)
  done;
  check Alcotest.int "length" 100 (Stats.Vec.length v);
  check (Alcotest.float 1e-9) "get" 37. (Stats.Vec.get v 36);
  check Alcotest.int "to_array" 100 (Array.length (Stats.Vec.to_array v));
  Alcotest.check_raises "bounds" (Invalid_argument "Vec.get") (fun () ->
      ignore (Stats.Vec.get v 100))

(* --- Summary ------------------------------------------------------------ *)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check Alcotest.int "count" 0 (Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean 0" 0. (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "variance 0" 0. (Stats.Summary.variance s)

let test_summary_moments () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.Summary.mean s);
  check (Alcotest.float 1e-6) "sample variance" (32. /. 7.) (Stats.Summary.variance s);
  check (Alcotest.float 1e-9) "min" 2. (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 9. (Stats.Summary.max s);
  check (Alcotest.float 1e-9) "total" 40. (Stats.Summary.total s)

let test_summary_percentile () =
  let s = Stats.Summary.create () in
  for i = 1 to 101 do
    Stats.Summary.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "median" 51. (Stats.Summary.percentile s 0.5);
  check (Alcotest.float 1e-9) "p0" 1. (Stats.Summary.percentile s 0.);
  check (Alcotest.float 1e-9) "p100" 101. (Stats.Summary.percentile s 1.0);
  (* Without retained samples, percentiles come from the histogram
     sketch: bounded relative error, exact at the extremes. *)
  let no_samples = Stats.Summary.create ~keep_samples:false () in
  for i = 1 to 101 do
    Stats.Summary.add no_samples (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "sketch p0 exact" 1. (Stats.Summary.percentile no_samples 0.);
  check (Alcotest.float 1e-9) "sketch p100 exact" 101.
    (Stats.Summary.percentile no_samples 1.0);
  let approx = Stats.Summary.percentile no_samples 0.5 in
  Alcotest.(check bool) "sketch median within bound" true (Float.abs (approx -. 51.) <= 51. /. 16.)

let test_summary_percentile_edges () =
  (* Boundary behaviour pinned: empty -> nan, NaN q / out-of-range q ->
     Invalid_argument, single sample -> that sample for every q,
     duplicate-heavy input -> the duplicated value. *)
  let empty = Stats.Summary.create () in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.Summary.percentile empty 0.5));
  let one = Stats.Summary.create () in
  Stats.Summary.add one 7.25;
  List.iter
    (fun q -> check (Alcotest.float 1e-9) "single sample" 7.25 (Stats.Summary.percentile one q))
    [ 0.; 0.25; 0.5; 0.99; 1. ];
  let dups = Stats.Summary.create () in
  for _ = 1 to 98 do
    Stats.Summary.add dups 3.
  done;
  Stats.Summary.add dups 1.;
  Stats.Summary.add dups 9.;
  check (Alcotest.float 1e-9) "duplicate-heavy median" 3. (Stats.Summary.percentile dups 0.5);
  check (Alcotest.float 1e-9) "duplicate-heavy p05" 3. (Stats.Summary.percentile dups 0.05);
  check (Alcotest.float 1e-9) "duplicate-heavy p0" 1. (Stats.Summary.percentile dups 0.);
  check (Alcotest.float 1e-9) "duplicate-heavy p100" 9. (Stats.Summary.percentile dups 1.);
  Alcotest.check_raises "nan q" (Invalid_argument "Summary.percentile: q is NaN") (fun () ->
      ignore (Stats.Summary.percentile dups Float.nan));
  Alcotest.check_raises "q out of range" (Invalid_argument "Summary.percentile: q in [0,1]")
    (fun () -> ignore (Stats.Summary.percentile dups 1.5))

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  List.iter (Stats.Summary.add a) [ 1.; 2.; 3. ];
  List.iter (Stats.Summary.add b) [ 4.; 5. ];
  let m = Stats.Summary.merge a b in
  check Alcotest.int "count" 5 (Stats.Summary.count m);
  check (Alcotest.float 1e-9) "mean" 3. (Stats.Summary.mean m);
  (* moment-only merge *)
  let c = Stats.Summary.create ~keep_samples:false () in
  List.iter (Stats.Summary.add c) [ 4.; 5. ];
  let m2 = Stats.Summary.merge a c in
  check Alcotest.int "count moment merge" 5 (Stats.Summary.count m2);
  check (Alcotest.float 1e-9) "mean moment merge" 3. (Stats.Summary.mean m2)

let prop_summary_matches_naive =
  QCheck.Test.make ~name:"summary: streaming mean/var match naive" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
      in
      Float.abs (mean -. Stats.Summary.mean s) < 1e-6
      && Float.abs (var -. Stats.Summary.variance s) < 1e-5)

(* --- Recovery ------------------------------------------------------------ *)

let rec_record ?(node = 1) ?(seq = 1) ?(det = 0.) ?(rec_ = 1.) ?(expedited = false)
    ?(repaired = true) () =
  {
    Stats.Recovery.node;
    src = 0;
    seq;
    detected_at = det;
    recovered_at = rec_;
    rounds = 1;
    expedited;
    repaired;
  }

let test_recovery_collector () =
  let c = Stats.Recovery.create () in
  Stats.Recovery.add c (rec_record ~node:1 ~seq:1 ~det:0. ~rec_:2. ());
  Stats.Recovery.add c (rec_record ~node:2 ~seq:1 ~det:0. ~rec_:4. ~expedited:true ());
  Stats.Recovery.add c (rec_record ~node:1 ~seq:2 ~det:1. ~rec_:2. ());
  check Alcotest.int "count" 3 (Stats.Recovery.count c);
  check Alcotest.int "for_node" 2 (List.length (Stats.Recovery.for_node c 1));
  let s = Stats.Recovery.latency_summary c in
  check (Alcotest.float 1e-9) "mean latency" (7. /. 3.) (Stats.Summary.mean s);
  let exp_only =
    Stats.Recovery.latency_summary c ~filter:(fun r -> r.Stats.Recovery.expedited)
  in
  check Alcotest.int "filtered" 1 (Stats.Summary.count exp_only);
  let norm =
    Stats.Recovery.latency_summary c ~normalize:(fun _ -> 2.) ~filter:(fun r -> r.node = 1)
  in
  check (Alcotest.float 1e-9) "normalized" 0.75 (Stats.Summary.mean norm)

let test_recovery_unrecovered () =
  let c = Stats.Recovery.create () in
  Stats.Recovery.add c (rec_record ~node:1 ());
  let missing = Stats.Recovery.unrecovered c ~expected:[ (1, 3); (2, 1) ] in
  check Alcotest.(list (pair int int)) "missing" [ (1, 2); (2, 1) ] missing

(* --- Counters -------------------------------------------------------------- *)

let test_counters () =
  let c = Stats.Counters.create ~n_nodes:4 in
  Stats.Counters.bump c ~node:2 Stats.Counters.Rqst;
  Stats.Counters.bump c ~node:2 Stats.Counters.Rqst;
  Stats.Counters.bump c ~node:3 Stats.Counters.Exp_repl;
  check Alcotest.int "get" 2 (Stats.Counters.get c ~node:2 Stats.Counters.Rqst);
  check Alcotest.int "other zero" 0 (Stats.Counters.get c ~node:1 Stats.Counters.Rqst);
  check Alcotest.int "total" 2 (Stats.Counters.total c Stats.Counters.Rqst);
  check Alcotest.int "erepl total" 1 (Stats.Counters.total c Stats.Counters.Exp_repl);
  check Alcotest.int "six kinds" 6 (List.length Stats.Counters.all_kinds)

let test_counters_merge () =
  let a = Stats.Counters.create ~n_nodes:3 and b = Stats.Counters.create ~n_nodes:3 in
  Stats.Counters.bump a ~node:1 Stats.Counters.Rqst;
  Stats.Counters.bump a ~node:2 Stats.Counters.Sess;
  Stats.Counters.bump b ~node:1 Stats.Counters.Rqst;
  Stats.Counters.bump b ~node:1 Stats.Counters.Repl;
  let m = Stats.Counters.merge a b in
  check Alcotest.int "per-node sum" 2 (Stats.Counters.get m ~node:1 Stats.Counters.Rqst);
  check Alcotest.int "one-sided" 1 (Stats.Counters.get m ~node:1 Stats.Counters.Repl);
  check Alcotest.int "sess kept" 1 (Stats.Counters.total m Stats.Counters.Sess);
  check Alcotest.int "n_nodes" 3 (Stats.Counters.n_nodes m);
  (* inputs untouched *)
  check Alcotest.int "a unchanged" 1 (Stats.Counters.total a Stats.Counters.Rqst);
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Counters.merge: n_nodes mismatch")
    (fun () -> ignore (Stats.Counters.merge a (Stats.Counters.create ~n_nodes:2)))

(* --- Table ----------------------------------------------------------------- *)

let test_table_render () =
  let out =
    Stats.Table.render ~header:[ "name"; "value" ] ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  check Alcotest.bool "contains header" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> String.length l >= 4 && String.sub l 0 4 = "name") lines);
  (* all data rows aligned: the columns of 'value' line up *)
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "line count (header + sep + 2 rows + trailing)" 5 (List.length lines)

let test_table_bar () =
  check Alcotest.string "full bar" "##########" (Stats.Table.bar ~width:10 ~max_value:1. 1.);
  check Alcotest.string "half bar" "#####" (Stats.Table.bar ~width:10 ~max_value:1. 0.5);
  check Alcotest.string "clamped" "##########" (Stats.Table.bar ~width:10 ~max_value:1. 7.);
  check Alcotest.string "zero" "" (Stats.Table.bar ~width:10 ~max_value:1. 0.)

let test_table_bar_chart () =
  let out =
    Stats.Table.bar_chart ~title:"demo" ~labels:[ "a"; "b" ]
      ~series:[ ("s1", [ 1.; 2. ]); ("s2", [ 2.; 1. ]) ]
      ()
  in
  check Alcotest.bool "mentions series" true
    (String.length out > 10
    && String.split_on_char '\n' out
       |> List.exists (fun l ->
              String.length l > 2
              && String.index_opt l '#' <> None))

let () =
  Alcotest.run "stats"
    [
      ("vec", [ Alcotest.test_case "basic" `Quick test_vec ]);
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "moments" `Quick test_summary_moments;
          Alcotest.test_case "percentile" `Quick test_summary_percentile;
          Alcotest.test_case "percentile edges" `Quick test_summary_percentile_edges;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          qcheck prop_summary_matches_naive;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "collector" `Quick test_recovery_collector;
          Alcotest.test_case "unrecovered" `Quick test_recovery_unrecovered;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counters;
          Alcotest.test_case "merge" `Quick test_counters_merge;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bar" `Quick test_table_bar;
          Alcotest.test_case "bar chart" `Quick test_table_bar_chart;
        ] );
    ]
