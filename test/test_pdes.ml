(* Conservative-PDES tests: qcheck properties of the tree partitioner
   and the sharded-vs-serial differential battery.

   The battery is the tentpole's acceptance gate: for every scale
   family x protocol x fault plan x shard count, the sharded run must
   reproduce the serial artifact bit for bit — counters, recovery
   records (float-exact), cost matrices, RTTs, audit and oracle
   verdicts. On divergence the battery shrinks the run (fewer packets)
   to the smallest failing instance and names the first differing
   component, so a conservative-sync bug reports as, say,
   "counters differ at 10 packets", not as a wall of bytes. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* --- Partitioner properties ------------------------------------------ *)

(* Random scale-family trees: the shapes sharded runs actually face. *)
let gen_tree =
  QCheck.Gen.(
    let* seed = int_range 1 10_000 in
    let* n_receivers = int_range 8 300 in
    let rng = Sim.Rng.create (Int64.of_int seed) in
    let* family = int_range 0 2 in
    return
      (match family with
      | 0 -> Mtrace.Topology_gen.bounded_fanout ~rng ~n_receivers ~fanout:4
      | 1 -> Mtrace.Topology_gen.star_of_stars ~rng ~n_receivers ~clusters:8
      | _ -> Mtrace.Topology_gen.deep_chain ~rng ~n_receivers))

let gen_case =
  QCheck.make
    ~print:(fun (tree, shards) ->
      Printf.sprintf "tree(n=%d, height=%d) shards=%d" (Net.Tree.n_nodes tree)
        (Net.Tree.height tree) shards)
    QCheck.Gen.(
      let* tree = gen_tree in
      let* shards = int_range 1 8 in
      return (tree, shards))

let delay_of_link l = 0.005 +. (0.001 *. float_of_int (l mod 7))

let prop_complete_ownership =
  QCheck.Test.make ~name:"every node owned exactly once" ~count:100 gen_case
    (fun (tree, shards) ->
      let p = Net.Partition.make ~tree ~delay:delay_of_link ~shards in
      let n = Net.Tree.n_nodes tree in
      Array.length p.Net.Partition.owner = n
      && Array.for_all (fun s -> s >= 0 && s < p.Net.Partition.n_shards) p.Net.Partition.owner
      && p.Net.Partition.n_shards >= 1
      && p.Net.Partition.n_shards <= shards
      (* the per-shard counts tile the node set *)
      && List.init p.Net.Partition.n_shards (fun me -> Net.Partition.n_owned p ~me)
         |> List.fold_left ( + ) 0 = n)

let prop_cut_and_lookahead =
  QCheck.Test.make ~name:"cut links exact; lookahead = min cut delay" ~count:100 gen_case
    (fun (tree, shards) ->
      let p = Net.Partition.make ~tree ~delay:delay_of_link ~shards in
      let owner = p.Net.Partition.owner in
      let is_cut l = l <> 0 && owner.(l) <> owner.(Net.Tree.parent tree l) in
      let all_links = List.init (Net.Tree.n_nodes tree - 1) (fun i -> i + 1) in
      let expected_cut = List.filter is_cut all_links in
      List.sort compare p.Net.Partition.cut_links = List.sort compare expected_cut
      && (match expected_cut with
         | [] -> p.Net.Partition.lookahead = infinity
         | _ ->
             p.Net.Partition.lookahead
             = List.fold_left (fun a l -> Float.min a (delay_of_link l)) infinity expected_cut)
      (* the conservative premise: no cut link is faster than the
         lookahead the barrier protocol trusts *)
      && List.for_all (fun l -> delay_of_link l >= p.Net.Partition.lookahead) expected_cut)

let prop_single_shard_is_serial =
  QCheck.Test.make ~name:"k=1 degenerates to the serial run" ~count:50
    (QCheck.make ~print:(fun t -> Printf.sprintf "tree(n=%d)" (Net.Tree.n_nodes t)) gen_tree)
    (fun tree ->
      let p = Net.Partition.make ~tree ~delay:delay_of_link ~shards:1 in
      p.Net.Partition.n_shards = 1
      && p.Net.Partition.cut_links = []
      && p.Net.Partition.lookahead = infinity
      && Array.for_all (fun s -> s = 0) p.Net.Partition.owner)

let prop_owned_below =
  QCheck.Test.make ~name:"owned_below consistent at root and leaves" ~count:50 gen_case
    (fun (tree, shards) ->
      let p = Net.Partition.make ~tree ~delay:delay_of_link ~shards in
      List.init p.Net.Partition.n_shards (fun me -> me)
      |> List.for_all (fun me ->
             let below = Net.Partition.owned_below p ~tree ~me in
             below.(0) = Net.Partition.n_owned p ~me
             && Array.for_all
                  (fun v -> below.(v) = if p.Net.Partition.owner.(v) = me then 1 else 0)
                  (Net.Tree.receivers tree)))

(* --- Sharded-vs-serial differential battery -------------------------- *)

(* Everything observable about a run, marshalled for bit-exactness:
   float-identical recovery records and RTTs, full per-node counter and
   cost matrices, audit/oracle verdicts. *)
let fingerprint (r : Harness.Runner.result) =
  Marshal.to_string
    ( r.Harness.Runner.counters,
      Stats.Recovery.records r.recoveries,
      r.cost,
      r.rtt_to_source,
      r.exp_requests,
      r.exp_replies,
      r.unrecovered,
      r.detected,
      r.audit_violations,
      r.oracle_violations,
      Option.map Fault.Oracle.violations r.oracle )
    []

(* On mismatch, name the first component that differs. *)
let first_difference (a : Harness.Runner.result) (b : Harness.Runner.result) =
  let eq f = Marshal.to_string (f a) [] = Marshal.to_string (f b) [] in
  if not (eq (fun r -> r.Harness.Runner.counters)) then "counters"
  else if not (eq (fun r -> Stats.Recovery.records r.Harness.Runner.recoveries)) then
    "recovery records"
  else if not (eq (fun r -> r.Harness.Runner.cost)) then "cost matrix"
  else if not (eq (fun r -> r.Harness.Runner.rtt_to_source)) then "rtts"
  else if not (eq (fun r -> (r.Harness.Runner.detected, r.Harness.Runner.unrecovered))) then
    "detected/unrecovered"
  else if not (eq (fun r -> (r.Harness.Runner.exp_requests, r.Harness.Runner.exp_replies)))
  then "expedited counts"
  else if not (eq (fun r -> r.Harness.Runner.audit_violations)) then "audit verdict"
  else if
    not (eq (fun r -> (r.Harness.Runner.oracle_violations, Option.map Fault.Oracle.violations r.Harness.Runner.oracle)))
  then "oracle verdict"
  else "nothing (fingerprints agree at this size)"

let run_once ~row ~protocol ~fault ~n_packets ~shards =
  Harness.Runner.run_leg ~n_packets ?fault ~shards ~seed:42L protocol row

let protocol_label = function
  | Harness.Runner.Srm_protocol -> "srm"
  | Harness.Runner.Cesrm_protocol _ -> "cesrm"
  | Harness.Runner.Lms_protocol -> "lms"

(* Shrink a divergence to the smallest packet count that still shows
   it, then report the first differing component there. *)
let diagnose ~row ~protocol ~fault ~n_packets ~shards =
  let diverges n =
    let serial = run_once ~row ~protocol ~fault ~n_packets:n ~shards:1 in
    let sharded = run_once ~row ~protocol ~fault ~n_packets:n ~shards in
    if fingerprint serial = fingerprint sharded then None
    else Some (first_difference serial sharded)
  in
  let rec shrink n best =
    if n < 1 then best
    else match diverges n with Some what -> shrink (n / 2) (Some (n, what)) | None -> best
  in
  match shrink n_packets None with
  | None -> assert false
  | Some (n, what) ->
      Printf.sprintf "%s/%s%s shards=%d: sharded run diverges from serial at %d packets: %s"
        row.Mtrace.Meta.name (protocol_label protocol)
        (match fault with None -> "" | Some f -> "+" ^ f)
        shards n what

let check_identical ~row ~protocol ~fault ~n_packets ~shards () =
  let serial = run_once ~row ~protocol ~fault ~n_packets ~shards:1 in
  let sharded = run_once ~row ~protocol ~fault ~n_packets ~shards in
  check Alcotest.int "serial audit clean" 0 serial.Harness.Runner.audit_violations;
  if fingerprint serial <> fingerprint sharded then
    Alcotest.fail (diagnose ~row ~protocol ~fault ~n_packets ~shards)

let battery =
  let rows =
    [ ("SCALE-bf-128", 40); ("SCALE-ss-128", 40); ("SCALE-dc-48", 40) ]
  in
  let protocols =
    [
      Harness.Runner.Srm_protocol;
      Harness.Runner.Cesrm_protocol Cesrm.Host.default_config;
    ]
  in
  let faults = [ None; Some "crash-replier" ] in
  List.concat_map
    (fun (name, n_packets) ->
      let row = Mtrace.Scale.find name in
      List.concat_map
        (fun protocol ->
          List.concat_map
            (fun fault ->
              List.map
                (fun shards ->
                  let label =
                    Printf.sprintf "%s %s%s k=%d" name (protocol_label protocol)
                      (match fault with None -> "" | Some f -> "+" ^ f)
                      shards
                  in
                  Alcotest.test_case label `Quick
                    (check_identical ~row ~protocol ~fault ~n_packets ~shards))
                [ 2; 4 ])
            faults)
        protocols)
    rows

(* Heterogeneous per-link delays exercise the replicated RNG draws and
   a non-uniform lookahead; data jitter exercises the replicated
   per-packet send-time draws. *)
let battery_setups =
  let row = Mtrace.Scale.find "SCALE-bf-128" in
  List.map
    (fun (label, setup) ->
      Alcotest.test_case label `Quick (fun () ->
          let run shards =
            Harness.Runner.run_leg ~setup ~n_packets:40 ~shards ~seed:42L
              Harness.Runner.Srm_protocol row
          in
          let serial = run 1 and sharded = run 3 in
          if fingerprint serial <> fingerprint sharded then
            Alcotest.fail (label ^ ": sharded diverges from serial")))
    [
      ( "heterogeneous delays k=3",
        { Harness.Runner.default_setup with heterogeneous_delays = true } );
      ("data jitter k=3", { Harness.Runner.default_setup with data_jitter = 0.004 });
    ]

(* Infeasible configurations must fall back to serial, not diverge or
   fail: the result is the serial result, whatever the shard count. *)
let test_infeasible_fallback () =
  let row = Mtrace.Scale.find "SCALE-bf-128" in
  let setup = { Harness.Runner.default_setup with lossy_recovery = true } in
  let serial =
    Harness.Runner.run_leg ~setup ~n_packets:20 ~shards:1 ~seed:42L
      Harness.Runner.Srm_protocol row
  in
  let claimed =
    Harness.Runner.run_leg ~setup ~n_packets:20 ~shards:4 ~seed:42L
      Harness.Runner.Srm_protocol row
  in
  check Alcotest.string "lossy recovery falls back to serial" (fingerprint serial)
    (fingerprint claimed);
  (* jitter-reorder injects per-crossing RNG draws: shardable must say
     no and the run still completes serially *)
  let faulted =
    Harness.Runner.run_leg ~n_packets:20 ~fault:"jitter-reorder" ~shards:4 ~seed:42L
      Harness.Runner.Srm_protocol row
  in
  let faulted_serial =
    Harness.Runner.run_leg ~n_packets:20 ~fault:"jitter-reorder" ~shards:1 ~seed:42L
      Harness.Runner.Srm_protocol row
  in
  check Alcotest.string "link jitter falls back to serial" (fingerprint faulted_serial)
    (fingerprint faulted)

let () =
  Alcotest.run "pdes"
    [
      ( "partition",
        [
          qcheck prop_complete_ownership;
          qcheck prop_cut_and_lookahead;
          qcheck prop_single_shard_is_serial;
          qcheck prop_owned_below;
        ] );
      ("differential", battery);
      ("setups", battery_setups);
      ("fallback", [ Alcotest.test_case "infeasible setups" `Quick test_infeasible_fallback ]);
    ]
