(* The observability layer: histogram laws, JSON round-trips, diff
   threshold logic, the trace ring, and the guard that matters most —
   attaching a tracer + registry to a run leaves the protocol outcome
   bit-identical. *)

let check = Alcotest.check

let qcheck t = QCheck_alcotest.to_alcotest t

(* -- Hist ----------------------------------------------------------- *)

let test_hist_empty () =
  let h = Obs.Hist.create () in
  check Alcotest.int "count" 0 (Obs.Hist.count h);
  Alcotest.(check bool) "quantile nan" true (Float.is_nan (Obs.Hist.quantile h 0.5));
  Alcotest.check_raises "nan q" (Invalid_argument "Hist.quantile: q is NaN") (fun () ->
      ignore (Obs.Hist.quantile h Float.nan))

let test_hist_basic () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.add h) [ 0.010; 0.020; 0.040; 0.080; 0.160 ];
  check Alcotest.int "count" 5 (Obs.Hist.count h);
  check (Alcotest.float 1e-9) "min exact" 0.010 (Obs.Hist.min h);
  check (Alcotest.float 1e-9) "max exact" 0.160 (Obs.Hist.max h);
  check (Alcotest.float 1e-9) "q0 is min" 0.010 (Obs.Hist.quantile h 0.);
  check (Alcotest.float 1e-9) "q1 is max" 0.160 (Obs.Hist.quantile h 1.);
  (* median within the relative error bound *)
  Alcotest.(check bool) "median near 0.04" true
    (Float.abs (Obs.Hist.p50 h -. 0.040) <= 0.040 /. 16.);
  Obs.Hist.add h Float.nan;
  check Alcotest.int "nan separate" 1 (Obs.Hist.nan_count h);
  check Alcotest.int "nan not counted" 5 (Obs.Hist.count h)

let test_hist_zero_and_negative () =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.add h) [ -1.; 0.; 2. ];
  check (Alcotest.float 1e-9) "min" (-1.) (Obs.Hist.min h);
  check (Alcotest.float 1e-9) "q0" (-1.) (Obs.Hist.quantile h 0.);
  check (Alcotest.float 1e-9) "q1" 2. (Obs.Hist.quantile h 1.)

let pos_values =
  (* positive, spanning many octaves but inside the covered range *)
  QCheck.(list_of_size Gen.(1 -- 60) (map (fun x -> Float.exp x) (float_range (-13.) 13.)))

let exact_quantile values q =
  (* the same nearest-rank definition Hist uses: rank ceil(q*n), 1-based *)
  let a = Array.of_list values in
  Array.sort Float.compare a;
  let n = Array.length a in
  if q <= 0. then a.(0)
  else if q >= 1. then a.(n - 1)
  else a.(Stdlib.max 0 (int_of_float (Float.ceil (q *. float_of_int n)) - 1))

let prop_hist_error_bound =
  QCheck.Test.make ~name:"hist quantile within relative error bound" ~count:200
    QCheck.(pair pos_values (float_range 0. 1.))
    (fun (values, q) ->
      let h = Obs.Hist.create () in
      List.iter (Obs.Hist.add h) values;
      let approx = Obs.Hist.quantile h q in
      let exact = exact_quantile values q in
      Float.abs (approx -. exact)
      <= (exact /. float_of_int (Obs.Hist.sub_buckets h)) +. 1e-12)

let prop_hist_monotone =
  QCheck.Test.make ~name:"hist quantiles monotone in q" ~count:200
    QCheck.(triple pos_values (float_range 0. 1.) (float_range 0. 1.))
    (fun (values, q1, q2) ->
      let h = Obs.Hist.create () in
      List.iter (Obs.Hist.add h) values;
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Obs.Hist.quantile h lo <= Obs.Hist.quantile h hi)

let prop_hist_merge_commutes =
  QCheck.Test.make ~name:"hist merge commutes" ~count:200
    QCheck.(pair pos_values pos_values)
    (fun (xs, ys) ->
      let mk vs =
        let h = Obs.Hist.create () in
        List.iter (Obs.Hist.add h) vs;
        h
      in
      let ab = Obs.Hist.merge (mk xs) (mk ys) and ba = Obs.Hist.merge (mk ys) (mk xs) in
      Obs.Hist.count ab = Obs.Hist.count ba
      && Obs.Hist.min ab = Obs.Hist.min ba
      && Obs.Hist.max ab = Obs.Hist.max ba
      && List.for_all
           (fun q -> Obs.Hist.quantile ab q = Obs.Hist.quantile ba q)
           [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ])

(* The aggregation correctness backbone (lib/exp merges per-shard
   histograms): merge must form a commutative monoid with the empty
   histogram as identity, and the JSON transport form must reconstruct
   a histogram that is indistinguishable from the original. *)

let mk_hist vs =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.add h) vs;
  h

let hist_json h = Obs.Json.to_string (Obs.Hist.to_json h)

let prop_hist_merge_identity =
  QCheck.Test.make ~name:"hist merge identity (empty)" ~count:200 pos_values (fun xs ->
      let h = mk_hist xs in
      hist_json (Obs.Hist.merge h (Obs.Hist.create ())) = hist_json h
      && hist_json (Obs.Hist.merge (Obs.Hist.create ()) h) = hist_json h)

let prop_hist_merge_assoc =
  QCheck.Test.make ~name:"hist merge associates" ~count:200
    QCheck.(triple pos_values pos_values pos_values)
    (fun (xs, ys, zs) ->
      let a = mk_hist xs and b = mk_hist ys and c = mk_hist zs in
      let l = Obs.Hist.merge (Obs.Hist.merge a b) c
      and r = Obs.Hist.merge a (Obs.Hist.merge b c) in
      (* Bucket counts, extrema and quantiles are exactly associative;
         the running sum is float addition, associative only up to
         rounding. *)
      Obs.Hist.count l = Obs.Hist.count r
      && Obs.Hist.min l = Obs.Hist.min r
      && Obs.Hist.max l = Obs.Hist.max r
      && Float.abs (Obs.Hist.sum l -. Obs.Hist.sum r) <= 1e-9 *. Float.abs (Obs.Hist.sum l)
      && List.for_all
           (fun q -> Obs.Hist.quantile l q = Obs.Hist.quantile r q)
           [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ])

let prop_hist_json_roundtrip =
  QCheck.Test.make ~name:"hist json round-trip is exact" ~count:200 pos_values (fun xs ->
      let h = mk_hist xs in
      match Obs.Hist.of_json (Obs.Hist.to_json h) with
      | Error _ -> false
      | Ok h' -> hist_json h' = hist_json h)

let prop_hist_json_merge =
  QCheck.Test.make ~name:"hist merge through json transport" ~count:200
    QCheck.(pair pos_values pos_values)
    (fun (xs, ys) ->
      let a = mk_hist xs and b = mk_hist ys in
      let via_json =
        match (Obs.Hist.of_json (Obs.Hist.to_json a), Obs.Hist.of_json (Obs.Hist.to_json b)) with
        | Ok a', Ok b' -> hist_json (Obs.Hist.merge a' b')
        | _ -> "parse failure"
      in
      via_json = hist_json (Obs.Hist.merge a b))

let test_hist_json_empty_and_errors () =
  (match Obs.Hist.of_json (Obs.Hist.to_json (Obs.Hist.create ())) with
  | Ok h ->
      check Alcotest.int "empty count" 0 (Obs.Hist.count h);
      Alcotest.(check bool) "empty min is +inf" true (Obs.Hist.min h = infinity)
  | Error msg -> Alcotest.fail msg);
  (match Obs.Hist.of_json (Obs.Json.Obj [ ("sub_buckets", Obs.Json.Str "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a malformed sub_buckets");
  match Obs.Hist.of_json (Obs.Json.Obj [ ("buckets", Obs.Json.Arr [ Obs.Json.Num 1. ]) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a malformed bucket entry"

let test_hist_merge_mismatch () =
  let a = Obs.Hist.create ~sub_buckets:8 () and b = Obs.Hist.create ~sub_buckets:32 () in
  Alcotest.check_raises "sub_buckets mismatch"
    (Invalid_argument "Hist.merge: sub_buckets mismatch") (fun () ->
      ignore (Obs.Hist.merge a b))

(* -- Json ------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.(
      Obj
        [
          ("s", Str "a \"quoted\"\nline\twith \\ and unicode \xe2\x9c\x93");
          ("n", Num 0.1);
          ("i", int (-42));
          ("big", Num 1.7976931348623157e308);
          ("tiny", Num 5e-324);
          ("null", Null);
          ("bools", Arr [ Bool true; Bool false ]);
          ("nested", Obj [ ("empty_arr", Arr []); ("empty_obj", Obj []) ]);
        ])
  in
  match Obs.Json.parse (Obs.Json.to_string ~pretty:true doc) with
  | Error msg -> Alcotest.failf "reparse: %s" msg
  | Ok doc' -> Alcotest.(check bool) "round-trip" true (doc = doc')

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"\\x\""; "1 2"; "{\"a\" 1}" ]

let test_json_escapes () =
  match Obs.Json.parse {|{"u":"\u0041\u00e9","e":"\b\f\n\r\t\/\\\""}|} with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok doc ->
      (match Obs.Json.member "u" doc with
      | Some (Obs.Json.Str s) -> check Alcotest.string "unicode" "A\xc3\xa9" s
      | _ -> Alcotest.fail "u missing");
      (match Obs.Json.member "e" doc with
      | Some (Obs.Json.Str s) -> check Alcotest.string "escapes" "\b\012\n\r\t/\\\"" s
      | _ -> Alcotest.fail "e missing")

(* -- Registry + Report ----------------------------------------------- *)

let test_registry () =
  let r = Obs.Registry.create () in
  Alcotest.(check bool) "empty" true (Obs.Registry.is_empty r);
  Obs.Registry.incr r "a/count";
  Obs.Registry.incr ~by:4 r "a/count";
  check (Alcotest.option Alcotest.int) "counter" (Some 5) (Obs.Registry.counter_value r "a/count");
  Obs.Registry.add_gauge r "a/g" 1.5;
  Obs.Registry.add_gauge r "a/g" 1.0;
  check (Alcotest.option (Alcotest.float 1e-9)) "gauge" (Some 2.5) (Obs.Registry.gauge_value r "a/g");
  Obs.Registry.observe r "a/h" 0.25;
  check Alcotest.int "hist via name" 1 (Obs.Hist.count (Obs.Registry.hist r "a/h"));
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs.Registry: a/count is registered with another type") (fun () ->
      Obs.Registry.set_gauge r "a/count" 1.);
  (* report JSON carries all three kinds and reparses *)
  let json = Obs.Report.to_json ~meta:[ ("who", Obs.Json.Str "test") ] r in
  match Obs.Json.parse (Obs.Json.to_string json) with
  | Error msg -> Alcotest.failf "report reparse: %s" msg
  | Ok doc ->
      let flat = Obs.Diff.flatten doc in
      Alcotest.(check bool) "counter leaf" true (List.mem_assoc "metrics/a/count" flat);
      Alcotest.(check bool) "hist p50 leaf" true (List.mem_assoc "metrics/a/h/p50" flat)

(* -- Diff ------------------------------------------------------------- *)

let num_doc kvs = Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Num v)) kvs)

let test_diff_flags () =
  let base = num_doc [ ("a", 100.); ("b", 1.); ("gone", 3.) ] in
  let current = num_doc [ ("a", 125.); ("b", 1.05); ("new", 7.) ] in
  let entries = Obs.Diff.diff ~base ~current () in
  let flagged = List.map (fun e -> e.Obs.Diff.path) (Obs.Diff.flagged entries) in
  (* a: +25% beyond rel=10%; b: +5% within; gone/new always flagged *)
  Alcotest.(check (list string)) "flagged paths" [ "a"; "gone"; "new" ] flagged;
  let b = List.find (fun e -> e.Obs.Diff.path = "b") entries in
  Alcotest.(check bool) "b unflagged" false b.Obs.Diff.flagged;
  check (Alcotest.float 1e-9) "b delta" 0.05 b.Obs.Diff.delta

let test_diff_array_by_name () =
  let doc v =
    Obs.Json.(
      Obj
        [
          ( "sections",
            Arr
              [
                Obj [ ("name", Str "smoke"); ("wall_s", Num v) ];
                Obj [ ("name", Str "fig1"); ("wall_s", Num 2.) ];
              ] );
        ])
  in
  (* same entries, different order: still pairs up by name *)
  let reordered =
    Obs.Json.(
      Obj
        [
          ( "sections",
            Arr
              [
                Obj [ ("name", Str "fig1"); ("wall_s", Num 2.) ];
                Obj [ ("name", Str "smoke"); ("wall_s", Num 1.) ];
              ] );
        ])
  in
  Alcotest.(check (list string)) "reorder is a no-op" []
    (List.map
       (fun e -> e.Obs.Diff.path)
       (Obs.Diff.flagged (Obs.Diff.diff ~base:(doc 1.) ~current:reordered ())));
  let flagged = Obs.Diff.flagged (Obs.Diff.diff ~base:(doc 1.) ~current:(doc 2.) ()) in
  Alcotest.(check (list string)) "wall_s regression flagged" [ "sections/smoke/wall_s" ]
    (List.map (fun e -> e.Obs.Diff.path) flagged)

let prop_diff_threshold =
  (* flagged iff |delta| > abs AND |delta| / max(|base|, abs) > rel *)
  QCheck.Test.make ~name:"diff threshold logic" ~count:500
    QCheck.(triple (float_range (-100.) 100.) (float_range (-100.) 100.) (float_range 0.01 1.))
    (fun (bv, cv, rel) ->
      let thresholds = { Obs.Diff.rel; abs = 1e-6 } in
      let entries =
        Obs.Diff.diff ~thresholds ~base:(num_doc [ ("x", bv) ]) ~current:(num_doc [ ("x", cv) ]) ()
      in
      match entries with
      | [ e ] ->
          let delta = cv -. bv in
          let expect =
            Float.abs delta > 1e-6 && Float.abs (delta /. Float.max (Float.abs bv) 1e-6) > rel
          in
          e.Obs.Diff.flagged = expect
      | _ -> false)

(* -- Trace ring -------------------------------------------------------- *)

let test_trace_ring () =
  let t = Obs.Trace.create ~capacity:16 () in
  for i = 1 to 21 do
    Obs.Trace.record t ~at:(float_of_int i) ~node:1 ~stream:0 ~key:i Obs.Trace.Data_sent
  done;
  check Alcotest.int "recorded" 21 (Obs.Trace.recorded t);
  check Alcotest.int "length capped" 16 (Obs.Trace.length t);
  check Alcotest.int "dropped" 5 (Obs.Trace.dropped t);
  let first = ref None in
  Obs.Trace.iter t (fun ~at ~node:_ ~stream:_ ~key:_ ~dur:_ _ ->
      if !first = None then first := Some at);
  check (Alcotest.option (Alcotest.float 1e-9)) "oldest survivor" (Some 6.) !first;
  Obs.Trace.set_enabled t false;
  Obs.Trace.record t ~at:99. ~node:1 ~stream:0 ~key:0 Obs.Trace.Data_sent;
  check Alcotest.int "disabled ignores" 21 (Obs.Trace.recorded t);
  Obs.Trace.clear t;
  check Alcotest.int "cleared" 0 (Obs.Trace.length t)

let test_trace_chrome_export () =
  let t = Obs.Trace.create () in
  let key = 7 in
  Obs.Trace.record t ~at:1.0 ~node:3 ~stream:0 ~key Obs.Trace.Loss_detected;
  Obs.Trace.record t ~at:1.25 ~node:3 ~stream:0 ~key Obs.Trace.Recovered_expedited;
  let doc = Obs.Trace.to_chrome_json t in
  (* reparse what export writes, then look for the reconstructed span *)
  match Obs.Json.parse (Obs.Json.to_string doc) with
  | Error msg -> Alcotest.failf "chrome json: %s" msg
  | Ok doc -> (
      match Obs.Json.member "traceEvents" doc with
      | Some (Obs.Json.Arr events) ->
          let span =
            List.find_opt
              (fun e ->
                Obs.Json.member "ph" e = Some (Obs.Json.Str "X")
                && Obs.Json.member "name" e = Some (Obs.Json.Str "recovery expedited"))
              events
          in
          (match span with
          | None -> Alcotest.fail "no recovery span"
          | Some e ->
              let dur = Option.bind (Obs.Json.member "dur" e) Obs.Json.to_float in
              check (Alcotest.option (Alcotest.float 1e-6)) "span dur us" (Some 250_000.) dur)
      | _ -> Alcotest.fail "no traceEvents")

(* -- determinism guard ------------------------------------------------- *)

let fingerprint (r : Harness.Runner.result) =
  let total k = Stats.Counters.total r.counters k in
  let lat_sum =
    List.fold_left
      (fun acc rec_ -> acc +. Stats.Recovery.latency rec_)
      0.
      (Stats.Recovery.records r.recoveries)
  in
  Printf.sprintf "rqst=%d exp_rqst=%d repl=%d exp_repl=%d detected=%d recoveries=%d lat_sum=%.17g"
    (total Stats.Counters.Rqst) (total Stats.Counters.Exp_rqst) (total Stats.Counters.Repl)
    (total Stats.Counters.Exp_repl) r.detected
    (Stats.Recovery.count r.recoveries)
    lat_sum

let test_tracing_is_observational () =
  let gen = Mtrace.Generator.synthesize ~n_packets:200 (Mtrace.Meta.nth 4) in
  let att = Harness.Runner.attribution_of_trace gen.trace in
  let proto = Harness.Runner.Cesrm_protocol Cesrm.Host.default_config in
  let plain = Harness.Runner.run proto gen.trace att in
  let tracer = Obs.Trace.create () in
  let registry = Obs.Registry.create () in
  let traced = Harness.Runner.run ~tracer ~registry proto gen.trace att in
  check Alcotest.string "fingerprints identical" (fingerprint plain) (fingerprint traced);
  Alcotest.(check bool) "trace non-empty" true (Obs.Trace.recorded tracer > 0);
  Alcotest.(check bool) "registry populated" false (Obs.Registry.is_empty registry);
  check (Alcotest.option Alcotest.int) "losses counted" (Some traced.detected)
    (Obs.Registry.counter_value registry "srm/losses_detected")

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "basic" `Quick test_hist_basic;
          Alcotest.test_case "zero and negative" `Quick test_hist_zero_and_negative;
          Alcotest.test_case "merge mismatch" `Quick test_hist_merge_mismatch;
          qcheck prop_hist_error_bound;
          qcheck prop_hist_monotone;
          qcheck prop_hist_merge_commutes;
          qcheck prop_hist_merge_identity;
          qcheck prop_hist_merge_assoc;
          qcheck prop_hist_json_roundtrip;
          qcheck prop_hist_json_merge;
          Alcotest.test_case "json empty and errors" `Quick test_hist_json_empty_and_errors;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
        ] );
      ("registry", [ Alcotest.test_case "counters gauges hists" `Quick test_registry ]);
      ( "diff",
        [
          Alcotest.test_case "flags" `Quick test_diff_flags;
          Alcotest.test_case "arrays by name" `Quick test_diff_array_by_name;
          qcheck prop_diff_threshold;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring" `Quick test_trace_ring;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
        ] );
      ( "guard",
        [ Alcotest.test_case "tracing is observational" `Quick test_tracing_is_observational ] );
    ]
