test/test_harness.ml: Alcotest Array Cesrm Float Harness Inference Lazy List Lms Mtrace Net Printf QCheck QCheck_alcotest Sim Srm Stats String
