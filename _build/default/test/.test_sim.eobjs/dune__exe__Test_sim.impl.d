test/test_sim.ml: Alcotest Array Float Gen Int Int64 List QCheck QCheck_alcotest Sim
