test/test_cesrm.mli:
