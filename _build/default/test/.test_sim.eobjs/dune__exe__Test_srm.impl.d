test/test_srm.ml: Alcotest Float Harness List Mtrace Net Result Sim Srm Stats
