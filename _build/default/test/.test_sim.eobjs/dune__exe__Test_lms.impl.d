test/test_lms.ml: Alcotest Array Harness Inference List Lms Mtrace Net Sim Stats String
