test/test_inference.ml: Alcotest Array Float Gen Inference List Mtrace Net QCheck QCheck_alcotest Sim
