test/test_lms.mli:
