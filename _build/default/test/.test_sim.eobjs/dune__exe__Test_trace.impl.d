test/test_trace.ml: Alcotest Array Filename Float Fun List Mtrace Net Printf QCheck QCheck_alcotest Sim Sys
