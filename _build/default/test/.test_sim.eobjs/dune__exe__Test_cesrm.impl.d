test/test_cesrm.ml: Alcotest Cesrm Float Gen Harness List Mtrace Net Option QCheck QCheck_alcotest Sim Srm Stats
