test/test_net.ml: Alcotest Array Fun Hashtbl List Net QCheck QCheck_alcotest Sim String
