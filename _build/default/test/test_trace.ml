(* Tests for the trace substrate: bitsets, Table 1 metadata, the
   Gilbert model, topology generation, calibrated synthesis, the codec
   and locality metrics. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* --- Bitset ----------------------------------------------------------- *)

let test_bitset_basic () =
  let b = Mtrace.Bitset.create 20 in
  check Alcotest.int "length" 20 (Mtrace.Bitset.length b);
  check Alcotest.int "empty count" 0 (Mtrace.Bitset.count b);
  Mtrace.Bitset.set b 3;
  Mtrace.Bitset.set b 19;
  check Alcotest.bool "get set bit" true (Mtrace.Bitset.get b 3);
  check Alcotest.bool "get clear bit" false (Mtrace.Bitset.get b 4);
  check Alcotest.int "count" 2 (Mtrace.Bitset.count b);
  Mtrace.Bitset.clear b 3;
  check Alcotest.bool "cleared" false (Mtrace.Bitset.get b 3);
  Mtrace.Bitset.assign b 5 true;
  check Alcotest.bool "assign true" true (Mtrace.Bitset.get b 5)

let test_bitset_bounds () =
  let b = Mtrace.Bitset.create 8 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Mtrace.Bitset.get b 8));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Mtrace.Bitset.set b (-1))

let test_bitset_iter_copy_equal () =
  let b = Mtrace.Bitset.create 10 in
  List.iter (Mtrace.Bitset.set b) [ 1; 4; 9 ];
  let seen = ref [] in
  Mtrace.Bitset.iter_set b (fun i -> seen := i :: !seen);
  check Alcotest.(list int) "iter_set order" [ 1; 4; 9 ] (List.rev !seen);
  let c = Mtrace.Bitset.copy b in
  check Alcotest.bool "copy equal" true (Mtrace.Bitset.equal b c);
  Mtrace.Bitset.set c 0;
  check Alcotest.bool "copy independent" false (Mtrace.Bitset.equal b c)

let test_bitset_union_complement () =
  let a = Mtrace.Bitset.create 10 and b = Mtrace.Bitset.create 10 in
  Mtrace.Bitset.set a 1;
  Mtrace.Bitset.set b 2;
  Mtrace.Bitset.union_into ~dst:a b;
  check Alcotest.int "union count" 2 (Mtrace.Bitset.count a);
  let c = Mtrace.Bitset.complement a in
  check Alcotest.int "complement count" 8 (Mtrace.Bitset.count c);
  check Alcotest.bool "complement flips" false (Mtrace.Bitset.get c 1)

let test_bitset_of_runs_validation () =
  Alcotest.check_raises "short runs" (Invalid_argument "Bitset.of_runs: runs do not cover length")
    (fun () -> ignore (Mtrace.Bitset.of_runs 5 [ (false, 3) ]));
  Alcotest.check_raises "overflow" (Invalid_argument "Bitset.of_runs: overflow") (fun () ->
      ignore (Mtrace.Bitset.of_runs 5 [ (false, 3); (true, 9) ]))

let prop_bitset_runs_roundtrip =
  QCheck.Test.make ~name:"bitset: fold_runs/of_runs roundtrip" ~count:300
    QCheck.(list bool)
    (fun bits ->
      let n = List.length bits in
      let b = Mtrace.Bitset.create n in
      List.iteri (fun i v -> if v then Mtrace.Bitset.set b i) bits;
      let runs =
        List.rev (Mtrace.Bitset.fold_runs b ~init:[] ~f:(fun acc v len -> (v, len) :: acc))
      in
      Mtrace.Bitset.equal b (Mtrace.Bitset.of_runs n runs))

let prop_bitset_model_based =
  (* Random op sequences agree with a bool-array model. *)
  QCheck.Test.make ~name:"bitset: agrees with a bool-array model" ~count:300
    QCheck.(pair (int_range 1 64) (list (pair (int_range 0 2) small_nat)))
    (fun (n, ops) ->
      let b = Mtrace.Bitset.create n in
      let model = Array.make n false in
      List.iter
        (fun (op, raw) ->
          let i = raw mod n in
          match op with
          | 0 ->
              Mtrace.Bitset.set b i;
              model.(i) <- true
          | 1 ->
              Mtrace.Bitset.clear b i;
              model.(i) <- false
          | _ ->
              Mtrace.Bitset.assign b i (raw mod 2 = 0);
              model.(i) <- raw mod 2 = 0)
        ops;
      Mtrace.Bitset.count b = Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 model
      && Array.for_all Fun.id (Array.init n (fun i -> Mtrace.Bitset.get b i = model.(i))))

let prop_bitset_count_matches =
  QCheck.Test.make ~name:"bitset: count = number of set bits" ~count:300
    QCheck.(list bool)
    (fun bits ->
      let n = List.length bits in
      let b = Mtrace.Bitset.create n in
      List.iteri (fun i v -> if v then Mtrace.Bitset.set b i) bits;
      Mtrace.Bitset.count b = List.length (List.filter Fun.id bits))

(* --- Meta -------------------------------------------------------------- *)

let test_meta_catalogue () =
  check Alcotest.int "14 rows" 14 (List.length Mtrace.Meta.all);
  check Alcotest.int "6 featured" 6 (List.length Mtrace.Meta.featured);
  let r = Mtrace.Meta.find "UCB960424" in
  check Alcotest.int "receivers" 15 r.n_receivers;
  check Alcotest.int "depth" 7 r.tree_depth;
  check Alcotest.int "packets" 93734 r.n_packets;
  check Alcotest.int "by index" 3 (Mtrace.Meta.nth 3).index;
  check Alcotest.bool "loss fraction sane" true
    (List.for_all
       (fun r ->
         let f = Mtrace.Meta.loss_fraction r in
         f > 0.005 && f < 0.2)
       Mtrace.Meta.all)

let test_meta_duration_consistency () =
  (* duration ≈ packets × period for every row (within a couple %) *)
  List.iter
    (fun (r : Mtrace.Meta.row) ->
      let implied = float_of_int r.n_packets *. (float_of_int r.period_ms /. 1000.) in
      let err = Float.abs (implied -. float_of_int r.duration_s) /. float_of_int r.duration_s in
      if err > 0.05 then
        Alcotest.failf "%s: duration %ds vs implied %.0fs" r.name r.duration_s implied)
    Mtrace.Meta.all

(* --- Gilbert ------------------------------------------------------------ *)

let test_gilbert_parameterization () =
  let g = Mtrace.Gilbert.of_marginal ~loss_rate:0.1 ~mean_burst:2.5 in
  check (Alcotest.float 1e-9) "loss rate recovered" 0.1 (Mtrace.Gilbert.loss_rate g);
  check (Alcotest.float 1e-9) "burst recovered" 2.5 (Mtrace.Gilbert.mean_burst g)

let test_gilbert_validation () =
  Alcotest.check_raises "loss_rate >= 1"
    (Invalid_argument "Gilbert.of_marginal: loss_rate") (fun () ->
      ignore (Mtrace.Gilbert.of_marginal ~loss_rate:1.0 ~mean_burst:2.));
  Alcotest.check_raises "burst < 1"
    (Invalid_argument "Gilbert.of_marginal: mean_burst >= 1 required") (fun () ->
      ignore (Mtrace.Gilbert.of_marginal ~loss_rate:0.1 ~mean_burst:0.5))

let test_gilbert_zero_rate () =
  let g = Mtrace.Gilbert.of_marginal ~loss_rate:0. ~mean_burst:2. in
  let bits = Mtrace.Gilbert.run g (Sim.Rng.create 5L) 10_000 in
  check Alcotest.int "no losses at rate 0" 0 (Mtrace.Bitset.count bits)

let test_gilbert_empirical () =
  let g = Mtrace.Gilbert.of_marginal ~loss_rate:0.08 ~mean_burst:3.0 in
  let n = 200_000 in
  let bits = Mtrace.Gilbert.run g (Sim.Rng.create 9L) n in
  let rate = float_of_int (Mtrace.Bitset.count bits) /. float_of_int n in
  check Alcotest.bool "empirical rate near 0.08" true (Float.abs (rate -. 0.08) < 0.01);
  (* empirical mean burst *)
  let bursts = ref 0 and losses = ref 0 and prev = ref false in
  for i = 0 to n - 1 do
    let v = Mtrace.Bitset.get bits i in
    if v then incr losses;
    if v && not !prev then incr bursts;
    prev := v
  done;
  let burst = float_of_int !losses /. float_of_int (max 1 !bursts) in
  check Alcotest.bool "empirical burst near 3" true (Float.abs (burst -. 3.0) < 0.3)

(* --- Topology generator -------------------------------------------------- *)

let test_topology_shape () =
  let rng = Sim.Rng.create 3L in
  List.iter
    (fun (n_receivers, depth) ->
      let t = Mtrace.Topology_gen.generate ~rng ~n_receivers ~depth in
      check Alcotest.int
        (Printf.sprintf "receivers(%d,%d)" n_receivers depth)
        n_receivers (Net.Tree.n_receivers t);
      check Alcotest.int (Printf.sprintf "height(%d,%d)" n_receivers depth) depth
        (Net.Tree.height t))
    [ (1, 1); (8, 3); (12, 6); (15, 7); (10, 4) ]

let test_topology_validation () =
  let rng = Sim.Rng.create 3L in
  Alcotest.check_raises "depth 0"
    (Invalid_argument "Topology_gen.generate: depth >= 1 required") (fun () ->
      ignore (Mtrace.Topology_gen.generate ~rng ~n_receivers:3 ~depth:0));
  Alcotest.check_raises "no receivers"
    (Invalid_argument "Topology_gen.generate: n_receivers >= 1 required") (fun () ->
      ignore (Mtrace.Topology_gen.generate ~rng ~n_receivers:0 ~depth:2))

let prop_topology_receivers_at_leaves =
  QCheck.Test.make ~name:"topology: all receivers are leaves at depth <= D" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 1 7))
    (fun (n_receivers, depth) ->
      let rng = Sim.Rng.create 11L in
      let t = Mtrace.Topology_gen.generate ~rng ~n_receivers ~depth in
      Array.for_all (fun r -> Net.Tree.depth t r <= depth) (Net.Tree.receivers t)
      && Net.Tree.n_receivers t = n_receivers)

(* --- Generator ------------------------------------------------------------ *)

let test_generator_calibration () =
  List.iter
    (fun idx ->
      let row = Mtrace.Meta.nth idx in
      let n_packets = 5000 in
      let gen = Mtrace.Generator.synthesize ~n_packets row in
      let target =
        float_of_int row.n_losses *. float_of_int n_packets /. float_of_int row.n_packets
      in
      let realized = float_of_int (Mtrace.Trace.total_losses gen.trace) in
      let err = Float.abs (realized -. target) /. target in
      if err > 0.25 then
        Alcotest.failf "%s: realized %.0f vs target %.0f" row.name realized target)
    [ 1; 4; 9; 13 ]

let test_generator_ground_truth_consistency () =
  let row = Mtrace.Meta.nth 4 in
  let gen = Mtrace.Generator.synthesize ~n_packets:2000 row in
  let trace = gen.trace in
  let tree = Mtrace.Trace.tree trace in
  (* A receiver loses packet i iff some link on its path was Bad. *)
  Array.iteri
    (fun idx node ->
      for seq = 1 to Mtrace.Trace.n_packets trace do
        let on_path_bad =
          List.exists
            (fun l -> Mtrace.Bitset.get gen.link_bad.(l) (seq - 1))
            (Net.Tree.on_path_links tree 0 node)
        in
        if Mtrace.Trace.lost trace ~rcvr:idx ~seq <> on_path_bad then
          Alcotest.failf "receiver %d seq %d inconsistent with ground truth" node seq
      done)
    (Mtrace.Trace.receiver_nodes trace)

let test_generator_deterministic () =
  let row = Mtrace.Meta.nth 1 in
  let a = Mtrace.Generator.synthesize ~seed:5L ~n_packets:1000 row in
  let b = Mtrace.Generator.synthesize ~seed:5L ~n_packets:1000 row in
  check Alcotest.int "same seed, same losses" (Mtrace.Trace.total_losses a.trace)
    (Mtrace.Trace.total_losses b.trace);
  check Alcotest.bool "same trees" true
    (Net.Tree.equal (Mtrace.Trace.tree a.trace) (Mtrace.Trace.tree b.trace))

let test_generator_shape_matches_row () =
  let row = Mtrace.Meta.nth 3 in
  let gen = Mtrace.Generator.synthesize ~n_packets:500 row in
  check Alcotest.int "receivers" row.n_receivers (Mtrace.Trace.n_receivers gen.trace);
  check Alcotest.int "depth" row.tree_depth (Net.Tree.height (Mtrace.Trace.tree gen.trace));
  check (Alcotest.float 1e-9) "period" 0.04 (Mtrace.Trace.period gen.trace)

(* --- Trace ------------------------------------------------------------------ *)

let tiny_trace () =
  let tree = Net.Tree.star 3 in
  let loss = Array.init 3 (fun i ->
      let b = Mtrace.Bitset.create 10 in
      if i = 0 then begin Mtrace.Bitset.set b 2; Mtrace.Bitset.set b 3 end;
      if i = 1 then Mtrace.Bitset.set b 2;
      b)
  in
  Mtrace.Trace.create ~name:"tiny" ~tree ~period:0.08 ~n_packets:10 ~loss

let test_trace_accessors () =
  let t = tiny_trace () in
  check Alcotest.int "n_receivers" 3 (Mtrace.Trace.n_receivers t);
  check Alcotest.bool "lost" true (Mtrace.Trace.lost t ~rcvr:0 ~seq:3);
  check Alcotest.bool "not lost" false (Mtrace.Trace.lost t ~rcvr:2 ~seq:3);
  check Alcotest.bool "lost_node" true (Mtrace.Trace.lost_node t ~node:1 ~seq:3);
  check Alcotest.int "receiver_index" 1 (Mtrace.Trace.receiver_index t ~node:2);
  check Alcotest.int "total" 3 (Mtrace.Trace.total_losses t);
  check Alcotest.(list int) "pattern of 3" [ 0; 1 ] (Mtrace.Trace.loss_pattern t ~seq:3);
  check Alcotest.(list int) "lossy packets" [ 3; 4 ] (Mtrace.Trace.lossy_packets t)

let test_trace_validation () =
  let tree = Net.Tree.star 2 in
  let bad_count = [| Mtrace.Bitset.create 5 |] in
  Alcotest.check_raises "bitset count"
    (Invalid_argument "Trace.create: one loss bitset per receiver required") (fun () ->
      ignore (Mtrace.Trace.create ~name:"x" ~tree ~period:0.1 ~n_packets:5 ~loss:bad_count));
  let bad_len = [| Mtrace.Bitset.create 5; Mtrace.Bitset.create 4 |] in
  Alcotest.check_raises "bitset length" (Invalid_argument "Trace.create: bitset length")
    (fun () ->
      ignore (Mtrace.Trace.create ~name:"x" ~tree ~period:0.1 ~n_packets:5 ~loss:bad_len))

let test_trace_truncate () =
  let t = tiny_trace () in
  let t3 = Mtrace.Trace.truncate t 3 in
  check Alcotest.int "packets" 3 (Mtrace.Trace.n_packets t3);
  check Alcotest.int "losses clipped" 2 (Mtrace.Trace.total_losses t3);
  check Alcotest.bool "truncate beyond is identity" true (Mtrace.Trace.truncate t 99 == t)

(* --- Codec ------------------------------------------------------------------- *)

let test_codec_roundtrip_tiny () =
  let t = tiny_trace () in
  let t' = Mtrace.Codec.of_string (Mtrace.Codec.to_string t) in
  check Alcotest.string "name" (Mtrace.Trace.name t) (Mtrace.Trace.name t');
  check Alcotest.int "packets" (Mtrace.Trace.n_packets t) (Mtrace.Trace.n_packets t');
  check Alcotest.bool "trees" true
    (Net.Tree.equal (Mtrace.Trace.tree t) (Mtrace.Trace.tree t'));
  for r = 0 to 2 do
    check Alcotest.bool "bits" true
      (Mtrace.Bitset.equal (Mtrace.Trace.loss_bits t ~rcvr:r) (Mtrace.Trace.loss_bits t' ~rcvr:r))
  done

let test_codec_roundtrip_generated () =
  let gen = Mtrace.Generator.synthesize ~n_packets:800 (Mtrace.Meta.nth 4) in
  let t = gen.trace in
  let t' = Mtrace.Codec.of_string (Mtrace.Codec.to_string t) in
  check Alcotest.int "losses preserved" (Mtrace.Trace.total_losses t)
    (Mtrace.Trace.total_losses t')

let test_codec_rejects_garbage () =
  let expect_fail s =
    match Mtrace.Codec.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "should have raised"
  in
  expect_fail "";
  expect_fail "not a trace";
  expect_fail "cesrm-trace v1\nname x\nperiod nope\npackets 3\nparents -1 0\nend\n"

let test_codec_file_io () =
  let t = tiny_trace () in
  let path = Filename.temp_file "cesrm" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mtrace.Codec.save t path;
      let t' = Mtrace.Codec.load path in
      check Alcotest.int "losses" (Mtrace.Trace.total_losses t) (Mtrace.Trace.total_losses t'))

(* --- Locality ------------------------------------------------------------------ *)

let test_locality_receiver () =
  (* loss bits for rcvr 0: 0011000011 -> 4 losses, 2 bursts of 2 *)
  let tree = Net.Tree.star 2 in
  let b0 = Mtrace.Bitset.of_runs 10 [ (false, 2); (true, 2); (false, 4); (true, 2) ] in
  let loss = [| b0; Mtrace.Bitset.create 10 |] in
  let t = Mtrace.Trace.create ~name:"loc" ~tree ~period:0.1 ~n_packets:10 ~loss in
  let s = Mtrace.Locality.receiver t ~rcvr:0 in
  check (Alcotest.float 1e-9) "loss rate" 0.4 s.loss_rate;
  check (Alcotest.float 1e-9) "mean burst" 2.0 s.mean_burst;
  (* after a loss (positions 2,3,8): next lost in 1 of 3 cases
     (position 3 follows 2; position 4 follows 3 and is clear; nothing
     follows 9) -> transitions measured at indices 3,4,9: lost at 3 and
     9, clear at 4 -> 2/3 *)
  check (Alcotest.float 1e-9) "p(loss|loss)" (2. /. 3.) s.p_loss_given_loss

let test_locality_trace_stats () =
  let gen = Mtrace.Generator.synthesize ~n_packets:3000 (Mtrace.Meta.nth 9) in
  let s = Mtrace.Locality.trace gen.trace in
  check Alcotest.bool "bursty" true (s.avg_burst > 1.2);
  check Alcotest.bool "locality present" true (s.consecutive_same_for_receiver > 0.3);
  check Alcotest.bool "sharing at least 1" true (s.avg_sharing >= 1.0)

let () =
  Alcotest.run "trace"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "iter/copy/equal" `Quick test_bitset_iter_copy_equal;
          Alcotest.test_case "union/complement" `Quick test_bitset_union_complement;
          Alcotest.test_case "of_runs validation" `Quick test_bitset_of_runs_validation;
          qcheck prop_bitset_runs_roundtrip;
          qcheck prop_bitset_model_based;
          qcheck prop_bitset_count_matches;
        ] );
      ( "meta",
        [
          Alcotest.test_case "catalogue" `Quick test_meta_catalogue;
          Alcotest.test_case "durations" `Quick test_meta_duration_consistency;
        ] );
      ( "gilbert",
        [
          Alcotest.test_case "parameterization" `Quick test_gilbert_parameterization;
          Alcotest.test_case "validation" `Quick test_gilbert_validation;
          Alcotest.test_case "zero rate" `Quick test_gilbert_zero_rate;
          Alcotest.test_case "empirical statistics" `Quick test_gilbert_empirical;
        ] );
      ( "topology",
        [
          Alcotest.test_case "shape" `Quick test_topology_shape;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          qcheck prop_topology_receivers_at_leaves;
        ] );
      ( "generator",
        [
          Alcotest.test_case "calibration" `Quick test_generator_calibration;
          Alcotest.test_case "ground-truth consistency" `Quick test_generator_ground_truth_consistency;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "shape matches row" `Quick test_generator_shape_matches_row;
        ] );
      ( "trace",
        [
          Alcotest.test_case "accessors" `Quick test_trace_accessors;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "truncate" `Quick test_trace_truncate;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip tiny" `Quick test_codec_roundtrip_tiny;
          Alcotest.test_case "roundtrip generated" `Quick test_codec_roundtrip_generated;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "file io" `Quick test_codec_file_io;
        ] );
      ( "locality",
        [
          Alcotest.test_case "receiver stats" `Quick test_locality_receiver;
          Alcotest.test_case "trace stats" `Quick test_locality_trace_stats;
        ] );
    ]
