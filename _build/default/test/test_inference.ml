(* Tests for the link-loss inference pipeline: pattern algebra, the
   Yajnik and MINC estimators, and max-likelihood loss attribution. *)

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* 0 - 1 - 3 (rcvr)
       \ 4 (rcvr)
     2 - 5 (rcvr)  *)
let sample_tree () = Net.Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

let make_trace ~tree ~patterns ~n_packets =
  (* [patterns] maps 1-based seq -> receiver-index list. *)
  let nr = Net.Tree.n_receivers tree in
  let loss = Array.init nr (fun _ -> Mtrace.Bitset.create n_packets) in
  List.iter
    (fun (seq, rcvrs) -> List.iter (fun r -> Mtrace.Bitset.set loss.(r) (seq - 1)) rcvrs)
    patterns;
  Mtrace.Trace.create ~name:"synth" ~tree ~period:0.1 ~n_packets ~loss

(* --- Pattern ------------------------------------------------------------ *)

let test_pattern_maximal_fully_lost () =
  let tree = sample_tree () in
  let p = Inference.Pattern.create tree in
  Inference.Pattern.load p ~lost_nodes:[ 3; 4 ];
  check Alcotest.(list int) "subtree of 1" [ 1 ] (Inference.Pattern.maximal_fully_lost p);
  check Alcotest.bool "1 fully lost" true (Inference.Pattern.is_fully_lost p 1);
  check Alcotest.bool "0 not fully lost" false (Inference.Pattern.is_fully_lost p 0);
  Inference.Pattern.load p ~lost_nodes:[ 3 ];
  check Alcotest.(list int) "single leaf" [ 3 ] (Inference.Pattern.maximal_fully_lost p);
  Inference.Pattern.load p ~lost_nodes:[ 3; 4; 5 ];
  check Alcotest.(list int) "whole tree" [ 0 ] (Inference.Pattern.maximal_fully_lost p);
  Inference.Pattern.load p ~lost_nodes:[ 3; 5 ];
  (* Receiver 5 is the only receiver under router 2, so the chain node
     2 — not the leaf — is the maximal fully-lost node. *)
  check Alcotest.(list int) "two maximal regions" [ 2; 3 ]
    (List.sort compare (Inference.Pattern.maximal_fully_lost p));
  Inference.Pattern.load p ~lost_nodes:[];
  check Alcotest.(list int) "empty pattern" [] (Inference.Pattern.maximal_fully_lost p)

let test_pattern_load_rejects_non_receiver () =
  let tree = sample_tree () in
  let p = Inference.Pattern.create tree in
  Alcotest.check_raises "router is not a receiver"
    (Invalid_argument "Pattern.load: not a receiver") (fun () ->
      Inference.Pattern.load p ~lost_nodes:[ 1 ])

let test_pattern_reached_counts () =
  let tree = sample_tree () in
  (* 4 packets: packet 1 lost by {3,4}; packet 2 lost by {5};
     packet 3 lost by everyone; packet 4 lost by nobody. *)
  let trace =
    make_trace ~tree ~n_packets:4 ~patterns:[ (1, [ 0; 1 ]); (2, [ 2 ]); (3, [ 0; 1; 2 ]) ]
  in
  let counts = Inference.Pattern.reached_counts tree trace in
  check Alcotest.int "root always reached" 4 counts.(0);
  check Alcotest.int "node 1 reached unless both below lost" 2 counts.(1);
  check Alcotest.int "leaf 3" 2 counts.(3);
  check Alcotest.int "leaf 5" 2 counts.(5);
  check Alcotest.int "node 2 mirrors leaf 5" 2 counts.(2)

(* --- Yajnik ------------------------------------------------------------- *)

let test_yajnik_planted_single_link () =
  let tree = sample_tree () in
  (* Lose 20 of 100 packets on link 1 exactly (both 3 and 4 lose). *)
  let patterns = List.init 20 (fun i -> (i + 1, [ 0; 1 ])) in
  let trace = make_trace ~tree ~n_packets:100 ~patterns in
  let rates = Inference.Yajnik.estimate trace in
  check (Alcotest.float 1e-9) "link 1 rate" 0.2 rates.(1);
  check (Alcotest.float 1e-9) "link 3 clean" 0. rates.(3);
  check (Alcotest.float 1e-9) "link 2 clean" 0. rates.(2)

let test_yajnik_conditional_rates () =
  let tree = sample_tree () in
  (* Link 1 drops packets 1-10; additionally leaf 3 drops 11-20.
     Leaf 3's conditional rate is 10 / (100 - 10): packets dropped on
     link 1 never reached node 1. *)
  let patterns =
    List.init 10 (fun i -> (i + 1, [ 0; 1 ])) @ List.init 10 (fun i -> (i + 11, [ 0 ]))
  in
  let trace = make_trace ~tree ~n_packets:100 ~patterns in
  let rates = Inference.Yajnik.estimate trace in
  check (Alcotest.float 1e-9) "link 1" 0.1 rates.(1);
  check (Alcotest.float 1e-6) "leaf 3 conditional" (10. /. 90.) rates.(3)

let test_yajnik_chain_convention () =
  (* 0 - 1 - 2 - 3(rcvr): all loss lands on the topmost chain link 1. *)
  let tree = Net.Tree.of_parents [| -1; 0; 1; 2 |] in
  let patterns = List.init 25 (fun i -> (i + 1, [ 0 ])) in
  let trace = make_trace ~tree ~n_packets:100 ~patterns in
  let rates = Inference.Yajnik.estimate trace in
  check (Alcotest.float 1e-9) "top chain link carries loss" 0.25 rates.(1);
  check (Alcotest.float 1e-9) "middle clean" 0. rates.(2);
  check (Alcotest.float 1e-9) "bottom clean" 0. rates.(3)

(* --- MINC --------------------------------------------------------------- *)

let test_minc_matches_yajnik_on_planted () =
  let tree = sample_tree () in
  let patterns =
    List.init 10 (fun i -> (i + 1, [ 0; 1 ]))
    @ List.init 8 (fun i -> ((2 * i) + 21, [ 2 ]))
    @ List.init 5 (fun i -> ((3 * i) + 40, [ 0 ]))
  in
  let trace = make_trace ~tree ~n_packets:100 ~patterns in
  let yaj = Inference.Yajnik.estimate trace in
  let minc = Inference.Minc.estimate trace in
  Array.iter
    (fun l ->
      if Float.abs (yaj.(l) -. minc.(l)) > 0.05 then
        Alcotest.failf "link %d: yajnik %.4f vs minc %.4f" l yaj.(l) minc.(l))
    (Net.Tree.links tree)

let test_minc_on_generated_traces () =
  (* The paper found both estimators "very similar" on real traces. *)
  List.iter
    (fun idx ->
      let gen = Mtrace.Generator.synthesize ~n_packets:4000 (Mtrace.Meta.nth idx) in
      let yaj = Inference.Yajnik.estimate gen.trace in
      let minc = Inference.Minc.estimate gen.trace in
      Array.iter
        (fun l ->
          if Float.abs (yaj.(l) -. minc.(l)) > 0.03 then
            Alcotest.failf "trace %d link %d: yajnik %.4f vs minc %.4f" idx l yaj.(l) minc.(l))
        (Net.Tree.links (Mtrace.Trace.tree gen.trace)))
    [ 1; 7; 13 ]

let test_minc_branching_recovers_planted_rates () =
  (* Binary tree of height 2: independent per-link Bernoulli drops;
     MINC should recover the planted rates within sampling noise. *)
  let tree = Net.Tree.balanced ~fanout:2 ~depth:2 in
  let n = Net.Tree.n_nodes tree in
  let planted =
    Array.init n (fun l -> if l = 0 then 0. else 0.02 +. (0.01 *. float_of_int l))
  in
  let rng = Sim.Rng.create 21L in
  let n_packets = 60_000 in
  let receivers = Net.Tree.receivers tree in
  let loss = Array.map (fun _ -> Mtrace.Bitset.create n_packets) receivers in
  for i = 0 to n_packets - 1 do
    let dropped = Array.init n (fun l -> l > 0 && Sim.Rng.bernoulli rng planted.(l)) in
    Array.iteri
      (fun idx node ->
        let lost = List.exists (fun l -> dropped.(l)) (Net.Tree.on_path_links tree 0 node) in
        if lost then Mtrace.Bitset.set loss.(idx) i)
      receivers
  done;
  let trace = Mtrace.Trace.create ~name:"planted" ~tree ~period:0.1 ~n_packets ~loss in
  let minc = Inference.Minc.estimate trace in
  Array.iter
    (fun l ->
      if Float.abs (minc.(l) -. planted.(l)) > 0.01 then
        Alcotest.failf "link %d: planted %.4f minc %.4f" l planted.(l) minc.(l))
    (Net.Tree.links tree)

(* --- Attribution ---------------------------------------------------------- *)

let uniform_rates tree r = Array.init (Net.Tree.n_nodes tree) (fun l -> if l = 0 then 0. else r)

let test_attribution_singleton () =
  let tree = sample_tree () in
  let trace = make_trace ~tree ~n_packets:10 ~patterns:[ (5, [ 0 ]) ] in
  let att = Inference.Attribution.infer ~rates:(uniform_rates tree 0.05) trace in
  check Alcotest.(list int) "cut at the leaf's own link" [ 3 ]
    (Inference.Attribution.cuts att ~seq:5);
  check Alcotest.(list int) "no cuts for clean packet" []
    (Inference.Attribution.cuts att ~seq:1);
  check (Alcotest.float 1e-9) "clean posterior" 1.0 (Inference.Attribution.posterior att ~seq:1)

let test_attribution_prefers_shared_link () =
  let tree = sample_tree () in
  let trace = make_trace ~tree ~n_packets:10 ~patterns:[ (2, [ 0; 1 ]) ] in
  (* With equal link rates 0.05: one cut on link 1 beats two cuts on
     links 3 and 4 (0.05 vs 0.05²). *)
  let att = Inference.Attribution.infer ~rates:(uniform_rates tree 0.05) trace in
  check Alcotest.(list int) "single shared cut" [ 1 ] (Inference.Attribution.cuts att ~seq:2);
  check Alcotest.bool "posterior below 1 (alternatives exist)" true
    (Inference.Attribution.posterior att ~seq:2 < 1.0)

let test_attribution_prefers_leaf_combination_when_interior_clean () =
  let tree = sample_tree () in
  let trace = make_trace ~tree ~n_packets:10 ~patterns:[ (2, [ 0; 1 ]) ] in
  let rates = uniform_rates tree 1e-8 in
  rates.(3) <- 0.3;
  rates.(4) <- 0.3;
  let att = Inference.Attribution.infer ~rates trace in
  check Alcotest.(list int) "two leaf cuts win" [ 3; 4 ]
    (List.sort compare (Inference.Attribution.cuts att ~seq:2))

let test_attribution_full_loss () =
  let tree = sample_tree () in
  let trace = make_trace ~tree ~n_packets:4 ~patterns:[ (1, [ 0; 1; 2 ]) ] in
  let rates = uniform_rates tree 0.02 in
  rates.(1) <- 0.4;
  rates.(2) <- 0.4;
  let att = Inference.Attribution.infer ~rates trace in
  check Alcotest.(list int) "both root branches cut" [ 1; 2 ]
    (List.sort compare (Inference.Attribution.cuts att ~seq:1))

let test_attribution_responsible_link () =
  let tree = sample_tree () in
  let trace = make_trace ~tree ~n_packets:10 ~patterns:[ (2, [ 0; 1 ]); (3, [ 2 ]) ] in
  let att = Inference.Attribution.infer ~rates:(uniform_rates tree 0.05) trace in
  check Alcotest.(option int) "receiver 3's loss explained by link 1" (Some 1)
    (Inference.Attribution.responsible_link att ~node:3 ~seq:2);
  check Alcotest.(option int) "receiver 5 did not lose packet 2" None
    (Inference.Attribution.responsible_link att ~node:5 ~seq:2);
  (* With uniform rates, one cut on chain link 2 (p) beats the deeper
     cut on link 5 ((1-p)·p), so 5's loss is blamed on link 2. *)
  check Alcotest.(option int) "receiver 5's own loss" (Some 2)
    (Inference.Attribution.responsible_link att ~node:5 ~seq:3)

let test_attribution_memoizes () =
  let tree = sample_tree () in
  let patterns = List.init 50 (fun i -> (i + 1, [ 0; 1 ])) in
  let trace = make_trace ~tree ~n_packets:50 ~patterns in
  let att = Inference.Attribution.infer ~rates:(uniform_rates tree 0.05) trace in
  check Alcotest.int "one distinct pattern" 1 (Inference.Attribution.distinct_patterns att)

let test_attribution_accuracy_on_generated () =
  (* The paper: >90% of selected combinations have posterior >95%. *)
  let gen = Mtrace.Generator.synthesize ~n_packets:4000 (Mtrace.Meta.nth 7) in
  let rates = Inference.Yajnik.estimate gen.trace in
  let att = Inference.Attribution.infer ~rates gen.trace in
  let a95, _ = Inference.Attribution.posterior_quantile_stats att in
  check Alcotest.bool "posterior confidence" true (a95 > 0.9)

let prop_attribution_covers_exactly =
  (* The selected cut set must explain exactly the lost receivers:
     every lost receiver below exactly one cut, no clean receiver below
     any cut. *)
  QCheck.Test.make ~name:"attribution: cuts cover exactly the loss pattern" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 3) (int_range 0 2))
    (fun lost_indices ->
      let tree = sample_tree () in
      let lost = List.sort_uniq compare lost_indices in
      let trace = make_trace ~tree ~n_packets:3 ~patterns:[ (2, lost) ] in
      let att = Inference.Attribution.infer ~rates:(uniform_rates tree 0.07) trace in
      let cuts = Inference.Attribution.cuts att ~seq:2 in
      let receivers = Net.Tree.receivers tree in
      Array.for_all
        (fun node ->
          let idx = Mtrace.Trace.receiver_index trace ~node in
          let covered = List.filter (fun l -> Net.Tree.is_ancestor tree l node) cuts in
          if List.mem idx lost then List.length covered = 1 else covered = [])
        receivers)

let () =
  Alcotest.run "inference"
    [
      ( "pattern",
        [
          Alcotest.test_case "maximal fully lost" `Quick test_pattern_maximal_fully_lost;
          Alcotest.test_case "rejects non-receiver" `Quick test_pattern_load_rejects_non_receiver;
          Alcotest.test_case "reached counts" `Quick test_pattern_reached_counts;
        ] );
      ( "yajnik",
        [
          Alcotest.test_case "planted single link" `Quick test_yajnik_planted_single_link;
          Alcotest.test_case "conditional rates" `Quick test_yajnik_conditional_rates;
          Alcotest.test_case "chain convention" `Quick test_yajnik_chain_convention;
        ] );
      ( "minc",
        [
          Alcotest.test_case "matches yajnik (planted)" `Quick test_minc_matches_yajnik_on_planted;
          Alcotest.test_case "matches yajnik (generated)" `Quick test_minc_on_generated_traces;
          Alcotest.test_case "recovers planted rates" `Slow
            test_minc_branching_recovers_planted_rates;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "singleton" `Quick test_attribution_singleton;
          Alcotest.test_case "prefers shared link" `Quick test_attribution_prefers_shared_link;
          Alcotest.test_case "prefers leaf combination" `Quick
            test_attribution_prefers_leaf_combination_when_interior_clean;
          Alcotest.test_case "full loss" `Quick test_attribution_full_loss;
          Alcotest.test_case "responsible link" `Quick test_attribution_responsible_link;
          Alcotest.test_case "memoizes patterns" `Quick test_attribution_memoizes;
          Alcotest.test_case "accuracy on generated" `Quick test_attribution_accuracy_on_generated;
          qcheck prop_attribution_covers_exactly;
        ] );
    ]
