(* Tests for the LMS baseline: replier designation, request routing,
   recovery behaviour, and staleness under churn. *)

let check = Alcotest.check

(* 0 - 1 - 3 (rcvr)
       \ 4 (rcvr)
     2 - 5 (rcvr)  *)
let sample_tree () = Net.Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

(* --- Routing ----------------------------------------------------------- *)

let test_designate () =
  let tree = sample_tree () in
  let repliers = Lms.Routing.designate tree ~alive:(fun _ -> true) in
  check Alcotest.int "router 1 gets nearest child receiver" 3 repliers.(1);
  check Alcotest.int "router 2 gets its receiver" 5 repliers.(2);
  check Alcotest.int "root gets some receiver" 3 repliers.(0);
  check Alcotest.int "leaves have none" (-1) repliers.(3)

let test_designate_respects_liveness () =
  let tree = sample_tree () in
  let repliers = Lms.Routing.designate tree ~alive:(fun r -> r <> 3) in
  check Alcotest.int "router 1 skips the dead receiver" 4 repliers.(1);
  let none_alive = Lms.Routing.designate tree ~alive:(fun r -> r = 5) in
  check Alcotest.int "router 1 has nobody" (-1) none_alive.(1);
  check Alcotest.int "router 2 unaffected" 5 none_alive.(2)

let test_route_basic () =
  let tree = sample_tree () in
  let repliers = Lms.Routing.designate tree ~alive:(fun _ -> true) in
  (* Receiver 4 walks up to router 1 whose replier (3) is outside 4's
     branch. *)
  check
    Alcotest.(option (pair int int))
    "4 turns at router 1 toward 3"
    (Some (1, 3))
    (Lms.Routing.route tree ~repliers ~from:4);
  (* Receiver 3 IS router 1's replier, so its requests pass through to
     the root: replier(0) = 3 is in 3's own branch... so the walk ends
     at the source. *)
  check
    Alcotest.(option (pair int int))
    "3 escalates to the source"
    (Some (0, 0))
    (Lms.Routing.route tree ~repliers ~from:3);
  (* Receiver 5: router 2's replier is 5 itself; at the root the
     replier (3) is in another branch. *)
  check
    Alcotest.(option (pair int int))
    "5 turns at the root toward 3"
    (Some (0, 3))
    (Lms.Routing.route tree ~repliers ~from:5);
  check Alcotest.bool "the source routes nowhere" true
    (Lms.Routing.route tree ~repliers ~from:0 = None)

let test_route_with_stale_state () =
  let tree = sample_tree () in
  let repliers = Lms.Routing.designate tree ~alive:(fun _ -> true) in
  (* Stale state still names 3 even if 3 is dead — routing follows the
     table, not liveness; that is the point of the churn experiment. *)
  check
    Alcotest.(option (pair int int))
    "stale table still routes to 3"
    (Some (1, 3))
    (Lms.Routing.route tree ~repliers ~from:4)

(* --- Protocol ------------------------------------------------------------ *)

let run_lms ?(tree = sample_tree ()) ?(drops = []) ?(crash = None) ~n_packets () =
  let engine = Sim.Engine.create ~seed:31L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Data { seq } -> down && List.mem (seq, link) drops
      | _ -> false);
  let proto = Lms.Proto.deploy ~network ~n_packets ~period:0.05 ~refresh_period:5.0 () in
  Lms.Proto.start proto ~warmup:2.0 ~tail:20.0;
  (match crash with
  | Some (node, at) ->
      ignore
        (Sim.Engine.schedule_at engine ~at (fun () -> Net.Network.set_enabled network node false))
  | None -> ());
  Sim.Engine.run ~until:400.0 engine;
  proto

let test_lms_single_loss () =
  let proto = run_lms ~drops:[ (5, 4) ] ~n_packets:10 () in
  let recs = Stats.Recovery.records (Lms.Proto.recoveries proto) in
  check Alcotest.int "recovered" 1 (List.length recs);
  let r = List.hd recs in
  check Alcotest.int "receiver 4" 4 r.node;
  (* Request goes 4 -> 1 -> 3 (replier), reply subcast from router 1:
     roughly two hops there, three hops back — far below SRM's
     suppression delays. *)
  check Alcotest.bool "router-directed recovery is fast" true
    (Stats.Recovery.latency r < 0.15);
  check Alcotest.int "one unicast request" 1
    (Stats.Counters.total (Lms.Proto.counters proto) Stats.Counters.Exp_rqst);
  check Alcotest.int "one subcast reply" 1
    (Stats.Counters.total (Lms.Proto.counters proto) Stats.Counters.Exp_repl)

let test_lms_shared_loss_forwarding () =
  (* Drop on link 1: receivers 3 and 4 both lose the packet; router 1's
     replier (3) shares the loss, so 4's request is re-forwarded out of
     the lossy subtree and both still recover. *)
  let proto = run_lms ~drops:[ (5, 1) ] ~n_packets:10 () in
  let recs = Stats.Recovery.records (Lms.Proto.recoveries proto) in
  check Alcotest.int "both recover" 2 (List.length recs)

let test_lms_all_lose () =
  let proto = run_lms ~drops:[ (5, 1); (5, 2) ] ~n_packets:10 () in
  check Alcotest.int "source repairs everyone" 3
    (Stats.Recovery.count (Lms.Proto.recoveries proto))

let test_lms_tail_loss () =
  let proto = run_lms ~drops:[ (10, 3) ] ~n_packets:10 () in
  check Alcotest.int "heartbeat reveals the tail loss" 1
    (Stats.Recovery.count (Lms.Proto.recoveries proto))

let test_lms_trace_completeness () =
  let gen = Mtrace.Generator.synthesize ~n_packets:1200 (Mtrace.Meta.nth 4) in
  let att = Inference.Attribution.infer ~rates:(Inference.Yajnik.estimate gen.trace) gen.trace in
  let tree = Mtrace.Trace.tree gen.trace in
  let engine = Sim.Engine.create ~seed:31L () in
  let network = Net.Network.create ~engine ~tree () in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Data { seq } -> down && List.mem link (Inference.Attribution.cuts att ~seq)
      | _ -> false);
  let proto =
    Lms.Proto.deploy ~network ~n_packets:(Mtrace.Trace.n_packets gen.trace)
      ~period:(Mtrace.Trace.period gen.trace) ()
  in
  Lms.Proto.start proto ~warmup:5.0 ~tail:30.0;
  Sim.Engine.run ~until:1e6 engine;
  check Alcotest.int "all losses recovered" (Lms.Proto.detected proto)
    (Stats.Recovery.count (Lms.Proto.recoveries proto))

let test_lms_replier_crash_stalls_until_refresh () =
  (* Receiver 4 loses packets before and after its designated replier
     (3) crashes. The loss after the crash stalls until either the
     retry escalation or the 5 s refresh re-designates. *)
  let crash_at = 2.0 +. 0.3 in
  let proto =
    run_lms
      ~drops:[ (3, 4); (9, 4) ] (* seq 3 ~ t=2.1 (before); seq 9 ~ t=2.4+ (after) *)
      ~crash:(Some (3, crash_at)) ~n_packets:10 ()
  in
  let recs = Stats.Recovery.records (Lms.Proto.recoveries proto) in
  let find seq = List.find (fun (r : Stats.Recovery.record) -> r.seq = seq) recs in
  let before = find 3 and after = find 9 in
  check Alcotest.bool "pre-crash recovery is fast" true (Stats.Recovery.latency before < 0.15);
  check Alcotest.bool "post-crash recovery stalls" true (Stats.Recovery.latency after > 0.3);
  check Alcotest.int "nothing is lost forever" 2 (List.length recs)

let test_churn_report_shape () =
  let s = Harness.Churn.report ~n_packets:1500 (Mtrace.Meta.nth 4) in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "mentions all protocols" true
    (contains "SRM" && contains "CESRM" && contains "LMS")

let () =
  Alcotest.run "lms"
    [
      ( "routing",
        [
          Alcotest.test_case "designate" `Quick test_designate;
          Alcotest.test_case "designate liveness" `Quick test_designate_respects_liveness;
          Alcotest.test_case "route basic" `Quick test_route_basic;
          Alcotest.test_case "route with stale state" `Quick test_route_with_stale_state;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "single loss" `Quick test_lms_single_loss;
          Alcotest.test_case "shared loss forwarding" `Quick test_lms_shared_loss_forwarding;
          Alcotest.test_case "all lose" `Quick test_lms_all_lose;
          Alcotest.test_case "tail loss" `Quick test_lms_tail_loss;
          Alcotest.test_case "trace completeness" `Quick test_lms_trace_completeness;
        ] );
      ( "churn",
        [
          Alcotest.test_case "replier crash stalls" `Quick
            test_lms_replier_crash_stalls_until_refresh;
          Alcotest.test_case "report shape" `Quick test_churn_report_shape;
        ] );
    ]
