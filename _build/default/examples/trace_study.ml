(* Trace study: the full paper pipeline on one Yajnik-style trace —
   synthesize it, measure its loss locality (the phenomenon CESRM
   exploits), infer the responsible links as in Section 4.2, then
   re-enact it under SRM and CESRM and compare.

   Run with:  dune exec examples/trace_study.exe [TRACE] [PACKETS] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "WRN951128" in
  let n_packets = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5000 in
  let row = Mtrace.Meta.find name in
  Format.printf "Studying %a@." Mtrace.Meta.pp_row row;

  (* 1. Synthesize the trace (receiver-observable loss bitmaps only). *)
  let gen = Mtrace.Generator.synthesize ~n_packets row in
  let trace = gen.Mtrace.Generator.trace in
  Format.printf "@.%s@." (Mtrace.Trace.summary trace);

  (* 2. Loss locality: the temporal and spatial correlation that makes
     "recover the way the last loss was recovered" a good bet. *)
  let loc = Mtrace.Locality.trace trace in
  Format.printf "locality: %a@." Mtrace.Locality.pp_trace_stats loc;

  (* 3. Link-loss inference (Section 4.2): estimate per-link rates from
     the loss matrix, then pick the max-likelihood responsible links
     for every lossy packet. Ground truth is available from the
     generator, so we can check the estimator. *)
  let rates = Inference.Yajnik.estimate trace in
  let att = Inference.Attribution.infer ~rates trace in
  let a95, _ = Inference.Attribution.posterior_quantile_stats att in
  Format.printf "@.inference: %d distinct loss patterns, %.1f%% attributed with >95%% confidence@."
    (Inference.Attribution.distinct_patterns att)
    (100. *. a95);
  let tree = Mtrace.Trace.tree trace in
  Array.iter
    (fun l ->
      if rates.(l) > 0.005 || gen.link_rates.(l) > 0.005 then
        Format.printf "  link %2d->%2d: planted %.4f estimated %.4f@." (Net.Tree.parent tree l)
          l gen.link_rates.(l) rates.(l))
    (Net.Tree.links tree);

  (* 4. Re-enact under both protocols. *)
  let srm = Harness.Runner.run Harness.Runner.Srm_protocol trace att in
  let cesrm =
    Harness.Runner.run (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config) trace att
  in
  let avg res =
    let s = Stats.Summary.create () in
    List.iter
      (fun (node, _) ->
        let n = Harness.Runner.normalized_recovery res ~node ~filter:(fun _ -> true) in
        if Stats.Summary.count n > 0 then Stats.Summary.add s (Stats.Summary.mean n))
      res.Harness.Runner.rtt_to_source;
    Stats.Summary.mean s
  in
  Format.printf "@.SRM   : avg normalized recovery %.2f RTT, %d retransmission crossings@."
    (avg srm)
    (Net.Cost.retransmission_overhead srm.cost);
  Format.printf "CESRM : avg normalized recovery %.2f RTT, %d retransmission crossings@."
    (avg cesrm)
    (Net.Cost.retransmission_overhead cesrm.cost);
  Format.printf "CESRM recovers %.0f%% faster; expedited success %.0f%%@."
    (100. *. (1. -. (avg cesrm /. avg srm)))
    (100. *. float_of_int cesrm.exp_replies /. float_of_int (max 1 cesrm.exp_requests))
