(* Multi-source session: SRM (and so CESRM) is a many-to-many
   protocol — any member may transmit, and every member keeps per-source
   reception state and a per-source requestor/replier cache (paper
   Section 3.1). This example runs a small "conference": the root and
   two receivers all stream concurrently, each stream suffering losses
   on a different link, and CESRM repairs all three independently.

   Run with:  dune exec examples/multi_source.exe *)

let () =
  (* 0 - 1 - {3,4}; 0 - 2 - {5,6}: two branches of two receivers. *)
  let tree = Net.Tree.of_parents [| -1; 0; 0; 1; 1; 2; 2 |] in
  let engine = Sim.Engine.create ~seed:11L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.02 () in
  (* Stream 0 loses packets on link 1 (receivers 3 and 4 miss them);
     stream 3 loses packets on link 5; stream 5 loses packets on
     link 3. *)
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match (p.payload, p.sender) with
      | Net.Packet.Data { seq }, 0 -> down && link = 1 && seq mod 10 = 4
      | Net.Packet.Data { seq }, 3 -> down && link = 5 && seq mod 10 = 6
      | Net.Packet.Data { seq }, 5 -> down && link = 3 && seq mod 10 = 8
      | _ -> false);
  let proto =
    Cesrm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:60 ~period:0.05 ()
  in
  Cesrm.Proto.start proto ~warmup:5.0 ~tail:15.0;
  Cesrm.Proto.add_stream proto ~src:3 ~n_packets:60 ~period:0.05 ~start_at:5.5;
  Cesrm.Proto.add_stream proto ~src:5 ~n_packets:60 ~period:0.07 ~start_at:6.0;
  Sim.Engine.run engine;
  let recs = Stats.Recovery.records (Cesrm.Proto.recoveries proto) in
  Format.printf "%d losses recovered across three concurrent streams:@." (List.length recs);
  List.iter
    (fun src ->
      let of_stream = List.filter (fun (r : Stats.Recovery.record) -> r.src = src) recs in
      let expedited =
        List.length (List.filter (fun (r : Stats.Recovery.record) -> r.expedited) of_stream)
      in
      Format.printf "  stream from member %d: %2d recoveries (%d expedited)@." src
        (List.length of_stream) expedited)
    [ 0; 3; 5 ];
  (* Each member's cache is per source: receiver 3 recovered losses
     from streams 0 and 5, so it holds two independent caches. *)
  let host3 = Cesrm.Proto.host proto 3 in
  List.iter
    (fun src ->
      Format.printf "  member 3's cache for stream %d holds %d tuple(s)@." src
        (Cesrm.Cache.size (Cesrm.Host.cache ~src host3)))
    [ 0; 5 ]
