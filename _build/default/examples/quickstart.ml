(* Quickstart: build a small multicast group by hand, lose a few
   packets on one link, and watch CESRM recover them.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A binary tree of height 3: node 0 is the source, the 8 deepest
     nodes are receivers. *)
  let tree = Net.Tree.balanced ~fanout:2 ~depth:3 in
  Format.printf "Multicast tree:@.%a@." Net.Tree.pp tree;

  (* One deterministic engine per experiment: same seed, same run. *)
  let engine = Sim.Engine.create ~seed:7L () in
  let network = Net.Network.create ~engine ~tree ~link_delay:0.020 () in

  (* Drop packets 10-14 and 30-34 on the link into node 2 (so the four
     receivers under node 2 lose them), and packet 50 on the link into
     receiver 7 only. *)
  let lost_on_link ~link ~seq =
    match link with
    | 2 -> (seq >= 10 && seq <= 14) || (seq >= 30 && seq <= 34)
    | 7 -> seq = 50
    | _ -> false
  in
  Net.Network.set_drop network (fun ~link ~down packet ->
      match packet.Net.Packet.payload with
      | Net.Packet.Data { seq } -> down && lost_on_link ~link ~seq
      | _ -> false);

  (* Deploy CESRM with its defaults (most-recent policy, the paper's
     C1=C2=2, D1=D2=1 scheduling parameters) and stream 100 packets at
     25 packets/s. *)
  let proto =
    Cesrm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:100 ~period:0.04 ()
  in
  Cesrm.Proto.start proto ~warmup:5.0 ~tail:10.0;
  Sim.Engine.run engine;

  (* Every loss is recovered; the first burst is repaired by SRM-style
     suppressed requests, later bursts by cached expedited recoveries. *)
  let recs = Stats.Recovery.records (Cesrm.Proto.recoveries proto) in
  Format.printf "%d losses detected and recovered:@." (List.length recs);
  List.iter
    (fun (r : Stats.Recovery.record) ->
      Format.printf "  receiver %2d seq %3d recovered in %5.0f ms %s@." r.node r.seq
        (1000. *. Stats.Recovery.latency r)
        (if r.expedited then "(expedited)" else "(SRM fallback)"))
    recs;
  Format.printf "expedited requests sent: %d, expedited replies: %d@."
    (Cesrm.Proto.expedited_requests proto)
    (Cesrm.Proto.expedited_replies proto)
