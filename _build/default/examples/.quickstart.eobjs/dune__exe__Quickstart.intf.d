examples/quickstart.mli:
