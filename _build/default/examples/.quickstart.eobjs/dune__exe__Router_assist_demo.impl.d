examples/router_assist_demo.ml: Cesrm Format Harness Mtrace Net
