examples/trace_study.ml: Array Cesrm Format Harness Inference List Mtrace Net Stats Sys
