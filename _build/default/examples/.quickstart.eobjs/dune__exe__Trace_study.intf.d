examples/trace_study.mli:
