examples/policy_comparison.ml: Cesrm Harness List Mtrace Printf Stats
