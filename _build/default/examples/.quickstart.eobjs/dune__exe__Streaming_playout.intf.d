examples/streaming_playout.mli:
