examples/multi_source.mli:
