examples/multi_source.ml: Cesrm Format List Net Sim Srm Stats
