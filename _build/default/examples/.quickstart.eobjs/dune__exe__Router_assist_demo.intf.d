examples/router_assist_demo.mli:
