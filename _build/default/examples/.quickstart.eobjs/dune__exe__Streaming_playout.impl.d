examples/streaming_playout.ml: Array Cesrm Format Harness List Mtrace Printf Stats Sys
