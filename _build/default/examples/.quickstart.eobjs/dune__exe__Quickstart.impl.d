examples/quickstart.ml: Cesrm Format List Net Sim Srm Stats
