let encode_runs bits =
  let runs = List.rev (Bitset.fold_runs bits ~init:[] ~f:(fun acc v n -> (v, n) :: acc)) in
  let runs = match runs with (true, _) :: _ -> (false, 0) :: runs | _ -> runs in
  String.concat " " (List.map (fun (_, n) -> string_of_int n) runs)

let decode_runs n_packets fields =
  let _, runs =
    List.fold_left
      (fun (value, acc) field ->
        let n =
          match int_of_string_opt field with
          | Some n when n >= 0 -> n
          | _ -> failwith "Codec: bad run length"
        in
        (not value, (value, n) :: acc))
      (false, []) fields
  in
  Bitset.of_runs n_packets (List.rev runs)

let to_string t =
  let buf = Buffer.create 4096 in
  let tree = Trace.tree t in
  Buffer.add_string buf "cesrm-trace v1\n";
  Buffer.add_string buf (Printf.sprintf "name %s\n" (Trace.name t));
  Buffer.add_string buf (Printf.sprintf "period %.6f\n" (Trace.period t));
  Buffer.add_string buf (Printf.sprintf "packets %d\n" (Trace.n_packets t));
  let parents =
    List.init (Net.Tree.n_nodes tree) (fun v ->
        string_of_int (if v = 0 then -1 else Net.Tree.parent tree v))
  in
  Buffer.add_string buf (Printf.sprintf "parents %s\n" (String.concat " " parents));
  Array.iteri
    (fun i node ->
      Buffer.add_string buf
        (Printf.sprintf "rcvr %d %s\n" node (encode_runs (Trace.loss_bits t ~rcvr:i))))
    (Trace.receiver_nodes t);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let fields line = List.filter (fun f -> f <> "") (String.split_on_char ' ' line) in
  let expect_kw kw line =
    match fields line with
    | k :: rest when k = kw -> rest
    | _ -> failwith (Printf.sprintf "Codec: expected '%s' line" kw)
  in
  match lines with
  | header :: rest when String.trim header = "cesrm-trace v1" -> (
      match rest with
      | name_l :: period_l :: packets_l :: parents_l :: body -> (
          let name = String.concat " " (expect_kw "name" name_l) in
          let period =
            match expect_kw "period" period_l with
            | [ p ] -> float_of_string p
            | _ -> failwith "Codec: bad period"
          in
          let n_packets =
            match expect_kw "packets" packets_l with
            | [ p ] -> int_of_string p
            | _ -> failwith "Codec: bad packets"
          in
          let parents = Array.of_list (List.map int_of_string (expect_kw "parents" parents_l)) in
          let tree = Net.Tree.of_parents parents in
          let receivers = Net.Tree.receivers tree in
          let loss = Array.make (Array.length receivers) (Bitset.create 0) in
          let rec read_body = function
            | [] -> failwith "Codec: missing 'end'"
            | [ last ] when String.trim last = "end" -> ()
            | line :: rest -> (
                match fields line with
                | "rcvr" :: node_s :: runs ->
                    let node = int_of_string node_s in
                    let idx =
                      match
                        Array.to_list receivers |> List.mapi (fun i n -> (n, i))
                        |> List.assoc_opt node
                      with
                      | Some i -> i
                      | None -> failwith "Codec: rcvr id is not a leaf of the tree"
                    in
                    loss.(idx) <- decode_runs n_packets runs;
                    read_body rest
                | _ -> failwith "Codec: bad body line")
          in
          read_body body;
          Trace.create ~name ~tree ~period ~n_packets ~loss)
      | _ -> failwith "Codec: truncated header")
  | _ -> failwith "Codec: bad magic"

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
