type result = {
  trace : Trace.t;
  link_bad : Bitset.t array;
  link_rates : float array;
  link_bursts : float array;
}

let expected_losses tree ~rates ~n_packets =
  let per_receiver node =
    let rec survive v acc =
      if v = 0 then acc else survive (Net.Tree.parent tree v) (acc *. (1. -. rates.(v)))
    in
    1. -. survive node 1.
  in
  Array.fold_left
    (fun acc node -> acc +. per_receiver node)
    0. (Net.Tree.receivers tree)
  *. float_of_int n_packets

(* A crude but stable string hash to derive per-row default seeds. *)
let hash_name name =
  let h = ref 1469598103934665603L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    name;
  !h

let rate_cap = 0.6

(* Find the weight scale making the expected loss total hit the target.
   Expected losses are monotone increasing in the scale, so bisect. *)
let calibrate_scale tree ~weights ~n_packets ~target =
  let rates_for s = Array.map (fun w -> Float.min rate_cap (s *. w)) weights in
  let expected s = expected_losses tree ~rates:(rates_for s) ~n_packets in
  let rec grow hi = if expected hi >= target || hi > 1e6 then hi else grow (hi *. 2.) in
  let hi = grow 1. in
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if expected mid < target then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
    end
  in
  bisect 0. hi 60

let simulate_links tree ~rng ~rates ~bursts ~n_packets =
  let n = Net.Tree.n_nodes tree in
  let link_bad = Array.make n (Bitset.create 0) in
  for l = 1 to n - 1 do
    let model = Gilbert.of_marginal ~loss_rate:rates.(l) ~mean_burst:bursts.(l) in
    link_bad.(l) <- Gilbert.run model (Sim.Rng.split rng) n_packets
  done;
  link_bad

let loss_matrix tree ~link_bad ~n_packets =
  let receivers = Net.Tree.receivers tree in
  Array.map
    (fun node ->
      let bits = Bitset.create n_packets in
      (* A packet is lost by the receiver iff any link on its path from
         the source was Bad at that step. *)
      let rec mark v =
        if v <> 0 then begin
          Bitset.iter_set link_bad.(v) (fun i -> Bitset.set bits i);
          mark (Net.Tree.parent tree v)
        end
      in
      mark node;
      bits)
    receivers

let realized_losses loss = Array.fold_left (fun acc b -> acc + Bitset.count b) 0 loss

let synthesize ?seed ?n_packets (row : Meta.row) =
  let seed = match seed with Some s -> s | None -> hash_name row.name in
  let rng = Sim.Rng.create seed in
  let n_packets = match n_packets with Some n -> n | None -> row.n_packets in
  let target =
    float_of_int row.n_losses *. float_of_int n_packets /. float_of_int row.n_packets
  in
  let tree = Topology_gen.generate ~rng ~n_receivers:row.n_receivers ~depth:row.tree_depth in
  let n = Net.Tree.n_nodes tree in
  (* Relative loss weights: every link lossy a little, a few "hot"
     links lossy a lot. Yajnik et al. observe that most MBone loss
     concentrates on a small number of links; the hot/background ratio
     here makes hot links carry the bulk of the loss, which is the
     locality CESRM's cache rides on. *)
  let weights = Array.init n (fun l -> if l = 0 then 0. else Sim.Rng.log_uniform rng 0.01 0.12) in
  (* Yajnik et al. find most MBone losses are seen by one or a few
     receivers, with occasional backbone events seen by many. Hot links
     are therefore drawn mostly from the edge (small receiver
     subtrees), plus one or two interior links for the shared events. *)
  let receivers_below l = List.length (Net.Tree.subtree_receivers tree l) in
  let links_with pred =
    Array.of_list (List.filter pred (Array.to_list (Net.Tree.links tree)))
  in
  let edge_pool = links_with (fun l -> receivers_below l <= 2) in
  let interior_pool = links_with (fun l -> receivers_below l >= 3) in
  let heat l = weights.(l) <- weights.(l) +. Sim.Rng.log_uniform rng 0.8 2.5 in
  let n_edge_hot = max 2 (row.n_receivers / 2) in
  for _ = 1 to n_edge_hot do
    if Array.length edge_pool > 0 then heat (Sim.Rng.pick rng edge_pool)
  done;
  let n_interior_hot = 1 + (row.n_receivers / 10) in
  for _ = 1 to n_interior_hot do
    if Array.length interior_pool > 0 then begin
      let l = Sim.Rng.pick rng interior_pool in
      weights.(l) <- weights.(l) +. Sim.Rng.log_uniform rng 0.3 1.0
    end
  done;
  let bursts = Array.init n (fun l -> if l = 0 then 1. else Sim.Rng.uniform rng 1.2 4.0) in
  (* Calibrate, simulate, then correct the scale against the realized
     count (burstiness adds variance) and resimulate, a few times. *)
  let rec attempt iter scale_correction =
    let scale = calibrate_scale tree ~weights ~n_packets ~target *. scale_correction in
    let rates = Array.map (fun w -> Float.min rate_cap (scale *. w)) weights in
    let link_bad = simulate_links tree ~rng ~rates ~bursts ~n_packets in
    let loss = loss_matrix tree ~link_bad ~n_packets in
    let realized = realized_losses loss in
    let err = (float_of_int realized -. target) /. Float.max 1. target in
    if Float.abs err <= 0.03 || iter >= 4 then (rates, link_bad, loss)
    else attempt (iter + 1) (scale_correction *. (target /. Float.max 1. (float_of_int realized)))
  in
  let rates, link_bad, loss = attempt 1 1.0 in
  let trace =
    Trace.create ~name:row.name ~tree ~period:(float_of_int row.period_ms /. 1000.) ~n_packets
      ~loss
  in
  { trace; link_bad; link_rates = rates; link_bursts = bursts }
