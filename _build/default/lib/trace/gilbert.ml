type t = { p_gb : float; p_bg : float }

type state = Good | Bad

let check_prob p = p >= 0. && p <= 1.

let create ~p_good_to_bad ~p_bad_to_good =
  if not (check_prob p_good_to_bad && check_prob p_bad_to_good) then
    invalid_arg "Gilbert.create: probabilities must be in [0,1]";
  { p_gb = p_good_to_bad; p_bg = p_bad_to_good }

let of_marginal ~loss_rate ~mean_burst =
  if loss_rate < 0. || loss_rate >= 1. then invalid_arg "Gilbert.of_marginal: loss_rate";
  if mean_burst < 1. then invalid_arg "Gilbert.of_marginal: mean_burst >= 1 required";
  (* Stationary P(Bad) = p_gb / (p_gb + p_bg); mean burst = 1 / p_bg. *)
  let p_bg = 1. /. mean_burst in
  let p_gb = loss_rate *. p_bg /. (1. -. loss_rate) in
  create ~p_good_to_bad:(Float.min 1. p_gb) ~p_bad_to_good:p_bg

let loss_rate t =
  if t.p_gb = 0. then 0. else t.p_gb /. (t.p_gb +. t.p_bg)

let mean_burst t = if t.p_bg = 0. then infinity else 1. /. t.p_bg

let step t rng = function
  | Good -> if Sim.Rng.bernoulli rng t.p_gb then Bad else Good
  | Bad -> if Sim.Rng.bernoulli rng t.p_bg then Good else Bad

let stationary_state t rng = if Sim.Rng.bernoulli rng (loss_rate t) then Bad else Good

let run t rng n =
  let bits = Bitset.create n in
  let state = ref (stationary_state t rng) in
  for i = 0 to n - 1 do
    if !state = Bad then Bitset.set bits i;
    state := step t rng !state
  done;
  bits
