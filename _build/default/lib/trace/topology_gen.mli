(** Random multicast-tree topologies with prescribed shape.

    Yajnik et al. publish, for each trace, the receiver count and the
    multicast tree depth but not the tree itself. This generator draws
    a random tree with exactly the requested number of receivers (all
    of them leaves) and exactly the requested height, with a mix of
    backbone routers and branching that resembles the published MBone
    topologies (fanout mostly 1–3, receivers hanging at varied
    depths). *)

val generate : rng:Sim.Rng.t -> n_receivers:int -> depth:int -> Net.Tree.t
(** @raise Invalid_argument if [depth < 1], [n_receivers < 1], or the
    shape is infeasible (a height-[d] tree needs at least one receiver
    at depth [d]). *)
