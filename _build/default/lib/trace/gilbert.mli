(** The Gilbert (two-state Markov) packet loss model.

    Yajnik et al. and follow-up measurement studies ([15,16] in the
    paper) show MBone losses are temporally correlated: a loss is much
    more likely right after another loss. A two-state chain — Good
    (packet forwarded) / Bad (packet dropped) — is the standard model
    of that burstiness and is what our synthetic per-link loss
    processes use. *)

type t
(** Model parameters (transition probabilities). *)

type state = Good | Bad

val create : p_good_to_bad:float -> p_bad_to_good:float -> t
(** Direct construction. Probabilities must lie in [\[0, 1\]]. *)

val of_marginal : loss_rate:float -> mean_burst:float -> t
(** Parameterize by the stationary loss probability and the mean loss
    burst length (>= 1). [loss_rate] must be in [\[0, 1)]. *)

val loss_rate : t -> float
(** Stationary probability of [Bad]. *)

val mean_burst : t -> float
(** Expected run length of consecutive losses. *)

val step : t -> Sim.Rng.t -> state -> state

val stationary_state : t -> Sim.Rng.t -> state
(** Sample the initial state from the stationary distribution. *)

val run : t -> Sim.Rng.t -> int -> Bitset.t
(** [run t rng n] samples an [n]-step trajectory started from the
    stationary distribution; bit set = loss. *)
