(* Build a parent vector incrementally:
   1. a backbone chain of depth-1 routers guarantees reachability of
      the target height;
   2. one receiver under the deepest router pins the height exactly;
   3. every other receiver attaches under a random router, sometimes
      via a freshly created branch router, producing MBone-like trees
      where interior fanout is small and receivers sit at many
      depths. *)

let generate ~rng ~n_receivers ~depth =
  if depth < 1 then invalid_arg "Topology_gen.generate: depth >= 1 required";
  if n_receivers < 1 then invalid_arg "Topology_gen.generate: n_receivers >= 1 required";
  let parents = ref [ -1 ] (* node 0 = source, reversed order *) in
  let n_nodes = ref 1 in
  let depth_of = Hashtbl.create 32 in
  Hashtbl.replace depth_of 0 0;
  let add_node parent =
    let id = !n_nodes in
    parents := parent :: !parents;
    incr n_nodes;
    Hashtbl.replace depth_of id (1 + Hashtbl.find depth_of parent);
    id
  in
  (* Backbone routers at depths 1 .. depth-1. *)
  let backbone = Array.make depth 0 in
  for d = 1 to depth - 1 do
    backbone.(d) <- add_node backbone.(d - 1)
  done;
  let routers = ref (Array.to_list backbone) in
  (* Receivers are tracked so we can renumber leaves later; here we
     only need their parent choices. The first receiver pins height. *)
  let receiver_parents = ref [ backbone.(depth - 1) ] in
  for _ = 2 to n_receivers do
    let router_arr = Array.of_list !routers in
    (* Real MBone receivers sit at the network edge: most attach near
       the bottom of the tree, at similar depths — which is what makes
       SRM's deterministic suppression imperfect and its probabilistic
       suppression necessary. *)
    let deep = List.filter (fun r -> Hashtbl.find depth_of r >= depth - 2) !routers in
    let base =
      if deep <> [] && Sim.Rng.bernoulli rng 0.8 then Sim.Rng.pick rng (Array.of_list deep)
      else Sim.Rng.pick rng router_arr
    in
    let parent =
      (* With some probability, grow a new branch router below [base]
         (if it would not exceed depth-1), else attach directly. *)
      if Hashtbl.find depth_of base < depth - 1 && Sim.Rng.bernoulli rng 0.45 then begin
        let r = add_node base in
        routers := r :: !routers;
        r
      end
      else base
    in
    receiver_parents := parent :: !receiver_parents
  done;
  (* Receivers get the highest ids so routers keep a dense prefix; the
     id order inside each class is arbitrary. *)
  List.iter (fun parent -> ignore (add_node parent)) (List.rev !receiver_parents);
  Net.Tree.of_parents (Array.of_list (List.rev !parents))
