type row = {
  index : int;
  name : string;
  n_receivers : int;
  tree_depth : int;
  period_ms : int;
  duration_s : int;
  n_packets : int;
  n_losses : int;
}

let row index name n_receivers tree_depth period_ms (h, m, s) n_packets n_losses =
  { index; name; n_receivers; tree_depth; period_ms; duration_s = (h * 3600) + (m * 60) + s; n_packets; n_losses }

let all =
  [
    row 1 "RFV960419" 12 6 80 (1, 0, 0) 45001 24086;
    row 2 "RFV960508" 10 5 40 (1, 39, 19) 148970 55987;
    row 3 "UCB960424" 15 7 40 (1, 2, 29) 93734 33506;
    row 4 "WRN950919" 8 4 80 (0, 23, 31) 17637 10276;
    row 5 "WRN951030" 10 4 80 (1, 16, 2) 57030 15879;
    row 6 "WRN951101" 9 5 80 (0, 55, 40) 41751 18911;
    row 7 "WRN951113" 12 5 80 (1, 1, 55) 46443 29686;
    row 8 "WRN951114" 10 4 80 (0, 51, 23) 38539 11803;
    row 9 "WRN951128" 9 4 80 (0, 59, 56) 44956 33040;
    row 10 "WRN951204" 11 5 80 (1, 0, 32) 45404 16814;
    row 11 "WRN951211" 11 4 80 (1, 36, 42) 72519 44649;
    row 12 "WRN951214" 7 4 80 (0, 51, 38) 38724 20872;
    row 13 "WRN951216" 8 3 80 (1, 6, 56) 50202 37833;
    row 14 "WRN951218" 8 3 80 (1, 33, 20) 69994 43578;
  ]

let find name = List.find (fun r -> r.name = name) all

let nth i = List.find (fun r -> r.index = i) all

let featured =
  List.map find [ "RFV960419"; "RFV960508"; "UCB960424"; "WRN951113"; "WRN951128"; "WRN951211" ]

let loss_fraction r = float_of_int r.n_losses /. (float_of_int r.n_packets *. float_of_int r.n_receivers)

let pp_row ppf r =
  Format.fprintf ppf "%2d %-10s rcvrs %2d depth %d period %dms dur %ds pkts %6d losses %6d" r.index
    r.name r.n_receivers r.tree_depth r.period_ms r.duration_s r.n_packets r.n_losses
