lib/trace/topology_gen.ml: Array Hashtbl List Net Sim
