lib/trace/topology_gen.mli: Net Sim
