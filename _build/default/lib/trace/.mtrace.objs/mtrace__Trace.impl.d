lib/trace/trace.ml: Array Bitset Hashtbl Net Printf
