lib/trace/locality.ml: Bitset Format Fun List Trace
