lib/trace/locality.mli: Format Trace
