lib/trace/bitset.ml: Array Bytes Char List
