lib/trace/meta.mli: Format
