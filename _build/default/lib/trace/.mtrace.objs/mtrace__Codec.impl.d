lib/trace/codec.ml: Array Bitset Buffer Fun List Net Printf String Trace
