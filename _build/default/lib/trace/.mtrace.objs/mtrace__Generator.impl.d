lib/trace/generator.ml: Array Bitset Char Float Gilbert Int64 List Meta Net Sim String Topology_gen Trace
