lib/trace/meta.ml: Format List
