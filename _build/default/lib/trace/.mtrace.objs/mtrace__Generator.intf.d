lib/trace/generator.mli: Bitset Meta Net Trace
