lib/trace/gilbert.ml: Bitset Float Sim
