lib/trace/bitset.mli:
