lib/trace/gilbert.mli: Bitset Sim
