lib/trace/trace.mli: Bitset Net
