type receiver_stats = { loss_rate : float; mean_burst : float; p_loss_given_loss : float }

let receiver t ~rcvr =
  let bits = Trace.loss_bits t ~rcvr in
  let n = Bitset.length bits in
  let losses = Bitset.count bits in
  let loss_rate = if n = 0 then 0. else float_of_int losses /. float_of_int n in
  let bursts = ref 0 in
  let after_loss = ref 0 in
  let loss_after_loss = ref 0 in
  let prev = ref false in
  for i = 0 to n - 1 do
    let v = Bitset.get bits i in
    if v && not !prev then incr bursts;
    if !prev then begin
      incr after_loss;
      if v then incr loss_after_loss
    end;
    prev := v
  done;
  let mean_burst = if !bursts = 0 then 0. else float_of_int losses /. float_of_int !bursts in
  let p_loss_given_loss =
    if !after_loss = 0 then 0. else float_of_int !loss_after_loss /. float_of_int !after_loss
  in
  { loss_rate; mean_burst; p_loss_given_loss }

type trace_stats = {
  avg_loss_rate : float;
  avg_burst : float;
  avg_sharing : float;
  repeat_pattern_fraction : float;
  consecutive_same_for_receiver : float;
}

let trace t =
  let nr = Trace.n_receivers t in
  let per = List.init nr (fun r -> receiver t ~rcvr:r) in
  let mean f = List.fold_left (fun acc s -> acc +. f s) 0. per /. float_of_int (max 1 nr) in
  (* Walk lossy packets once, comparing each pattern to the previous. *)
  let lossy = Trace.lossy_packets t in
  let patterns = List.map (fun seq -> (seq, Trace.loss_pattern t ~seq)) lossy in
  let total_sharing =
    List.fold_left (fun acc (_, p) -> acc + List.length p) 0 patterns
  in
  let n_lossy = List.length patterns in
  let repeats =
    let rec count prev acc = function
      | [] -> acc
      | (_, p) :: rest -> count p (if p = prev && prev <> [] then acc + 1 else acc) rest
    in
    count [] 0 patterns
  in
  (* Per receiver: of its losses, how often does the global pattern
     match the pattern of that receiver's previous loss? *)
  let per_receiver_same r =
    let prev = ref [] in
    let matches = ref 0 and total = ref 0 in
    List.iter
      (fun (_, p) ->
        if List.mem r p then begin
          if !prev <> [] then begin
            incr total;
            if p = !prev then incr matches
          end;
          prev := p
        end)
      patterns;
    if !total = 0 then None else Some (float_of_int !matches /. float_of_int !total)
  in
  let same_fracs = List.filter_map per_receiver_same (List.init nr Fun.id) in
  {
    avg_loss_rate = mean (fun s -> s.loss_rate);
    avg_burst = mean (fun s -> s.mean_burst);
    avg_sharing =
      (if n_lossy = 0 then 0. else float_of_int total_sharing /. float_of_int n_lossy);
    repeat_pattern_fraction =
      (if n_lossy <= 1 then 0. else float_of_int repeats /. float_of_int (n_lossy - 1));
    consecutive_same_for_receiver =
      (match same_fracs with
      | [] -> 0.
      | fs -> List.fold_left ( +. ) 0. fs /. float_of_int (List.length fs));
  }

let pp_trace_stats ppf s =
  Format.fprintf ppf
    "loss %.2f%% burst %.2f sharing %.2f repeat-pattern %.1f%% same-for-receiver %.1f%%"
    (100. *. s.avg_loss_rate) s.avg_burst s.avg_sharing
    (100. *. s.repeat_pattern_fraction)
    (100. *. s.consecutive_same_for_receiver)
