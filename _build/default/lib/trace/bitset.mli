(** Compact fixed-length bit vectors.

    Loss traces are per-receiver binary sequences over up to ~150,000
    packets (Table 1), so a trace is stored as one bitset per receiver. *)

type t

val create : int -> t
(** All bits clear. *)

val length : t -> int

val get : t -> int -> bool

val set : t -> int -> unit

val clear : t -> int -> unit

val assign : t -> int -> bool -> unit

val count : t -> int
(** Number of set bits. *)

val copy : t -> t

val equal : t -> t -> bool

val iter_set : t -> (int -> unit) -> unit
(** Visit the indices of set bits in increasing order. *)

val fold_runs : t -> init:'a -> f:('a -> bool -> int -> 'a) -> 'a
(** Fold over maximal runs of equal bits: [f acc value run_length],
    left to right. An empty bitset folds over nothing. *)

val of_runs : int -> (bool * int) list -> t
(** Rebuild from runs; inverse of {!fold_runs}.
    @raise Invalid_argument if runs do not sum to the length. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src].
    @raise Invalid_argument on length mismatch. *)

val complement : t -> t
(** Fresh bitset with every bit flipped. *)
