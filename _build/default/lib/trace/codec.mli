(** Text serialization of traces.

    Format (line-oriented, version-tagged):
    {v
    cesrm-trace v1
    name <string>
    period <float seconds>
    packets <int>
    parents <p0> <p1> ... <pn-1>      (p0 = -1)
    rcvr <node-id> <run> <run> ...    (one line per receiver)
    end
    v}

    Loss bitmaps are run-length encoded as alternating run lengths,
    the first run counting {e received} packets (a bitmap starting
    with a loss begins with a [0] run). *)

val to_string : Trace.t -> string

val of_string : string -> Trace.t
(** @raise Failure on malformed input. *)

val save : Trace.t -> string -> unit
(** Write to a file path. *)

val load : string -> Trace.t
(** Read from a file path. @raise Sys_error / Failure. *)
