type t = { len : int; data : Bytes.t }

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; data = Bytes.make ((len + 7) / 8) '\000' }

let length t = t.len

let check t i = if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.data b (Char.chr (Char.code (Bytes.get t.data b) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.data b (Char.chr (Char.code (Bytes.get t.data b) land lnot (1 lsl (i land 7)) land 0xff))

let assign t i v = if v then set t i else clear t i

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let count t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) t.data;
  !acc

let copy t = { len = t.len; data = Bytes.copy t.data }

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let iter_set t f =
  for i = 0 to t.len - 1 do
    if get t i then f i
  done

let fold_runs t ~init ~f =
  if t.len = 0 then init
  else begin
    let acc = ref init in
    let run_value = ref (get t 0) in
    let run_len = ref 1 in
    for i = 1 to t.len - 1 do
      let v = get t i in
      if v = !run_value then incr run_len
      else begin
        acc := f !acc !run_value !run_len;
        run_value := v;
        run_len := 1
      end
    done;
    f !acc !run_value !run_len
  end

let union_into ~dst src =
  if dst.len <> src.len then invalid_arg "Bitset.union_into: length mismatch";
  for b = 0 to Bytes.length dst.data - 1 do
    Bytes.set dst.data b
      (Char.chr (Char.code (Bytes.get dst.data b) lor Char.code (Bytes.get src.data b)))
  done

let complement t =
  let r = create t.len in
  for i = 0 to t.len - 1 do
    if not (get t i) then set r i
  done;
  r

let of_runs len runs =
  let t = create len in
  let pos =
    List.fold_left
      (fun pos (v, n) ->
        if n < 0 || pos + n > len then invalid_arg "Bitset.of_runs: overflow";
        if v then
          for i = pos to pos + n - 1 do
            set t i
          done;
        pos + n)
      0 runs
  in
  if pos <> len then invalid_arg "Bitset.of_runs: runs do not cover length";
  t
