(** Table 1 of the paper: the 14 IP multicast transmission traces of
    Yajnik et al. (GLOBECOM '96).

    The original trace files are not redistributable and are
    unavailable offline, so this repository regenerates synthetic
    equivalents calibrated to these published characteristics (see
    DESIGN.md §2). This module records the published rows. *)

type row = {
  index : int;  (** 1-based row number in Table 1 *)
  name : string;  (** source & date, e.g. "RFV960419" *)
  n_receivers : int;
  tree_depth : int;
  period_ms : int;  (** packet transmission period *)
  duration_s : int;  (** transmission duration, seconds *)
  n_packets : int;
  n_losses : int;  (** total receiver-loss events *)
}

val all : row list
(** The 14 rows, in table order. *)

val find : string -> row
(** Look up by name. @raise Not_found. *)

val nth : int -> row
(** Look up by 1-based index. @raise Not_found. *)

val featured : row list
(** The 6 traces Figures 1–4 plot: RFV960419, RFV960508, UCB960424,
    WRN951113, WRN951128, WRN951211. *)

val loss_fraction : row -> float
(** [n_losses / (n_packets * n_receivers)] — average receiver loss
    rate implied by the row. *)

val pp_row : Format.formatter -> row -> unit
