(** Loss-locality metrics.

    CESRM's premise (paper Section 1) is that IP multicast losses are
    not independent: they are bursty in time and concentrated in space
    (shared upstream links), so the requestor/replier pair that fixed
    the previous loss very likely fixes the next one. These metrics
    quantify both kinds of locality on a trace and directly measure the
    cache-relevance statistic: how often a receiver's consecutive
    losses exhibit the same loss pattern. *)

type receiver_stats = {
  loss_rate : float;
  mean_burst : float;  (** average run length of consecutive losses *)
  p_loss_given_loss : float;
      (** P(packet i+1 lost | packet i lost); >> loss_rate means
          temporal locality *)
}

val receiver : Trace.t -> rcvr:int -> receiver_stats

type trace_stats = {
  avg_loss_rate : float;
  avg_burst : float;
  avg_sharing : float;
      (** mean number of receivers sharing each lossy packet *)
  repeat_pattern_fraction : float;
      (** over consecutive lossy packets, the fraction whose
          receiver-loss pattern is identical to the previous one —
          the spatial-locality signal the cache rides on *)
  consecutive_same_for_receiver : float;
      (** averaged over receivers: fraction of a receiver's losses
          whose global loss pattern matches that receiver's previous
          loss's pattern *)
}

val trace : Trace.t -> trace_stats

val pp_trace_stats : Format.formatter -> trace_stats -> unit
