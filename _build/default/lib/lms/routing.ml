let designate tree ~alive =
  let n = Net.Tree.n_nodes tree in
  let repliers = Array.make n (-1) in
  for v = 0 to n - 1 do
    if not (Net.Tree.is_leaf tree v) || v = 0 then begin
      let candidates =
        List.filter (fun r -> alive r) (Net.Tree.subtree_receivers tree v)
      in
      let best =
        List.fold_left
          (fun acc r ->
            let d = Net.Tree.hops tree v r in
            match acc with
            | Some (bd, br) when (bd, br) <= (d, r) -> acc
            | _ -> Some (d, r))
          None candidates
      in
      repliers.(v) <- (match best with Some (_, r) -> r | None -> -1)
    end
  done;
  repliers

let route tree ~repliers ~from =
  if from = 0 then None
  else begin
    (* [branch] is the child of [router] whose subtree the request
       arrived from. *)
    let rec walk ~branch ~router =
      let rep = repliers.(router) in
      if rep >= 0 && not (Net.Tree.is_ancestor tree branch rep) then Some (router, rep)
      else if router = 0 then Some (0, 0) (* the source answers *)
      else walk ~branch:router ~router:(Net.Tree.parent tree router)
    in
    walk ~branch:from ~router:(Net.Tree.parent tree from)
  end
