lib/lms/host.ml: Bytes Float Hashtbl List Net Option Sim Stats
