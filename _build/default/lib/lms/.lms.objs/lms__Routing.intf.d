lib/lms/routing.mli: Net
