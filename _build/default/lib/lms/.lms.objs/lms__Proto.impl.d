lib/lms/proto.ml: Array Host List Net Routing Sim Stats
