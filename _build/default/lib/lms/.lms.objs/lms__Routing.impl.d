lib/lms/routing.ml: Array List Net
