lib/lms/proto.mli: Host Net Stats
