lib/lms/host.mli: Net Stats
