(** LMS request routing (Papadopoulos et al., INFOCOM '98 — reference
    [13] of the CESRM paper).

    Every multicast router maintains a {e replier link} naming a
    designated member of its subtree. A repair request travels hop by
    hop toward the source; the first router whose designated replier
    lies outside the branch the request arrived from becomes the
    request's {e turning point} and forwards it down to that replier.
    If the walk reaches the root, the source itself answers.

    The replier table is the soft state whose staleness under
    membership churn the CESRM paper contrasts itself against. *)

val designate : Net.Tree.t -> alive:(int -> bool) -> int array
(** [designate tree ~alive] assigns each interior node (and the root)
    the nearest alive receiver in its subtree (ties toward the lower
    node id), or [-1] if its subtree holds none. Receivers map to
    [-1]. *)

val route :
  Net.Tree.t -> repliers:int array -> from:int -> (int * int) option
(** [route tree ~repliers ~from] walks up from member [from] and
    returns [(turning_point, replier)] — [(0, 0)] when the walk
    reaches the source. [None] only if [from] is the source itself. *)
