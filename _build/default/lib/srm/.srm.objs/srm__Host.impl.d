lib/srm/host.ml: Adaptive Bytes Float Hashtbl Logs Net Option Params Session Sim Stats
