lib/srm/params.mli: Format
