lib/srm/session.mli: Net Sim
