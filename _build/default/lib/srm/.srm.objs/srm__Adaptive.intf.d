lib/srm/adaptive.mli: Params
