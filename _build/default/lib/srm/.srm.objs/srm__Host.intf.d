lib/srm/host.mli: Net Params Session Stats
