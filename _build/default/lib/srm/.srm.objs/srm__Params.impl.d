lib/srm/params.ml: Format
