lib/srm/proto.mli: Host Net Params Stats
