lib/srm/adaptive.ml: Float Params
