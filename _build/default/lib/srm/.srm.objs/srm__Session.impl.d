lib/srm/session.ml: Hashtbl List Net Printf Sim
