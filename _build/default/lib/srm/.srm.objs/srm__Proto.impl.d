lib/srm/proto.ml: Array Host List Net Sim Stats
