type t = {
  network : Net.Network.t;
  self : int;
  period : float;
  rng : Sim.Rng.t;
  get_max_seqs : unit -> (int * int) list;
  on_max_seq : src:int -> int -> unit;
  on_send : unit -> unit;
  dist : (int, float) Hashtbl.t;
  last_heard : (int, float * float) Hashtbl.t; (* peer -> (their ts, our recv time) *)
}

let create ~network ~self ~period ~rng ~get_max_seqs ~on_max_seq ~on_send =
  {
    network;
    self;
    period;
    rng;
    get_max_seqs;
    on_max_seq;
    on_send;
    dist = Hashtbl.create 16;
    last_heard = Hashtbl.create 16;
  }

let engine t = Net.Network.engine t.network

let send t =
  let now = Sim.Engine.now (engine t) in
  let echoes =
    Hashtbl.fold
      (fun peer (ts, recv_at) acc ->
        { Net.Packet.echo_member = peer; echo_ts = ts; echo_delay = now -. recv_at } :: acc)
      t.last_heard []
  in
  t.on_send ();
  Net.Network.multicast t.network ~from:t.self
    {
      Net.Packet.sender = t.self;
      payload = Net.Packet.Session { origin = t.self; sent_at = now; max_seqs = t.get_max_seqs (); echoes };
    }

let start ?jitter t ~until =
  let jitter = match jitter with Some j -> j | None -> t.period in
  let offset = if jitter <= 0. then 0. else Sim.Rng.float t.rng jitter in
  let rec tick () =
    if Sim.Engine.now (engine t) <= until then begin
      send t;
      ignore (Sim.Engine.schedule (engine t) ~after:t.period tick)
    end
  in
  ignore (Sim.Engine.schedule (engine t) ~after:offset tick)

let on_packet t (p : Net.Packet.t) =
  match p.payload with
  | Net.Packet.Session { origin; sent_at; max_seqs; echoes } when origin <> t.self ->
      let now = Sim.Engine.now (engine t) in
      Hashtbl.replace t.last_heard origin (sent_at, now);
      List.iter
        (fun { Net.Packet.echo_member; echo_ts; echo_delay } ->
          if echo_member = t.self then begin
            let rtt = now -. echo_ts -. echo_delay in
            if rtt >= 0. then Hashtbl.replace t.dist origin (rtt /. 2.)
          end)
        echoes;
      List.iter (fun (src, m) -> if m > 0 then t.on_max_seq ~src m) max_seqs
  | _ -> ()

let distance t peer = Hashtbl.find_opt t.dist peer

let distance_exn t peer =
  match distance t peer with
  | Some d -> d
  | None -> failwith (Printf.sprintf "Session.distance_exn: no estimate for peer %d" peer)

let known_peers t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.dist [])
