(** Adaptive request/reply timer adjustment, after the dynamic
    adjustment algorithm of Floyd et al.'s SRM paper (ToN '97, §VI).

    Fixed C1/C2 (and D1/D2) trade duplicate suppression against
    latency once and for all; the adaptive variant observes, per host,
    the number of duplicate requests (replies) per recovery exchange
    and the scheduling delay actually paid, and nudges the parameters:

    - too many duplicates → widen/raise the timers
      (strengthen suppression);
    - few duplicates but large delay → tighten the timers.

    Averages are exponentially weighted (gain 1/4) and the parameters
    are clamped to sane ranges. The CESRM paper itself evaluates only
    fixed parameters; this module powers the `ablation-adaptive` bench
    showing how the adaptive baseline compares. *)

type t

val create : initial:Params.t -> t
(** Start from the given C1/C2/D1/D2. *)

val c1 : t -> float

val c2 : t -> float

val d1 : t -> float

val d2 : t -> float

val ave_dup_requests : t -> float

val ave_dup_replies : t -> float

val note_request_cycle : t -> dups:int -> delay_in_d:float -> unit
(** One finished recovery exchange in which this host had a request
    scheduled: [dups] duplicate requests were overheard and the
    (first) request fired [delay_in_d] source-distances after
    detection. *)

val note_reply_cycle : t -> dups:int -> delay_in_d:float -> unit
(** One reply exchange this host participated in as a (potential)
    replier. *)
