type side = {
  mutable lo : float; (* C1 / D1 *)
  mutable width : float; (* C2 / D2 *)
  mutable ave_dup : float;
  mutable ave_delay : float;
}

type t = { request : side; reply : side }

let gain = 0.25

let create ~initial =
  {
    request =
      { lo = initial.Params.c1; width = initial.Params.c2; ave_dup = 0.; ave_delay = 1. };
    reply = { lo = initial.Params.d1; width = initial.Params.d2; ave_dup = 0.; ave_delay = 1. };
  }

let c1 t = t.request.lo

let c2 t = t.request.width

let d1 t = t.reply.lo

let d2 t = t.reply.width

let ave_dup_requests t = t.request.ave_dup

let ave_dup_replies t = t.reply.ave_dup

let clamp lo hi x = Float.max lo (Float.min hi x)

(* The adjustment schedule of Floyd et al. §VI: on sustained duplicates
   raise the interval start and widen the window; when duplicates are
   rare, recover latency — shrink the window while the measured delay
   is high, and lower the start once duplicates all but vanish. *)
let adjust side ~dups ~delay_in_d =
  side.ave_dup <- ((1. -. gain) *. side.ave_dup) +. (gain *. float_of_int dups);
  side.ave_delay <- ((1. -. gain) *. side.ave_delay) +. (gain *. delay_in_d);
  if side.ave_dup >= 1.0 then begin
    side.lo <- side.lo +. 0.1;
    side.width <- side.width +. 0.5
  end
  else begin
    if side.ave_delay > 1.5 && side.ave_dup < 0.8 then side.width <- side.width -. 0.1;
    if side.ave_dup < 0.25 then side.lo <- side.lo -. 0.05
  end;
  side.lo <- clamp 0.5 6. side.lo;
  side.width <- clamp 0.5 8. side.width

let note_request_cycle t ~dups ~delay_in_d = adjust t.request ~dups ~delay_in_d

let note_reply_cycle t ~dups ~delay_in_d = adjust t.reply ~dups ~delay_in_d
