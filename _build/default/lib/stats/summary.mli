(** Streaming univariate summaries (Welford) with optional exact
    percentiles from retained samples. *)

type t

val create : ?keep_samples:bool -> unit -> t
(** With [keep_samples] (default true) every observation is retained so
    percentiles are exact; disable for very long streams where only
    moments are needed. *)

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** +inf when empty. *)

val max : t -> float
(** -inf when empty. *)

val total : t -> float

val percentile : t -> float -> float
(** [percentile t 0.5] is the median (nearest-rank). Requires retained
    samples and a non-empty summary.
    @raise Invalid_argument otherwise. *)

val merge : t -> t -> t
(** Combine two summaries (samples concatenated if both retained). *)

val pp : Format.formatter -> t -> unit
