(** ASCII rendering of tables and bar series, used by the bench harness
    to print each of the paper's tables and figures as text. *)

val render : header:string list -> rows:string list list -> string
(** Column-aligned table with a separator under the header. *)

val bar : width:int -> max_value:float -> float -> string
(** A horizontal bar scaled so [max_value] fills [width] characters.
    Values are clamped to [\[0, max_value\]]. *)

val bar_chart :
  title:string ->
  ?unit_label:string ->
  labels:string list ->
  series:(string * float list) list ->
  unit ->
  string
(** Grouped horizontal bar chart: one block per label, one bar per
    series, with shared scaling and numeric annotations. *)
