lib/stats/counters.mli:
