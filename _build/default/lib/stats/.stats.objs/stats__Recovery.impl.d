lib/stats/recovery.ml: List Summary
