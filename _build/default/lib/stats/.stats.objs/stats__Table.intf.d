lib/stats/table.mli:
