lib/stats/recovery.mli: Summary
