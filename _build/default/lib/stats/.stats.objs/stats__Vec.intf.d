lib/stats/vec.mli:
