let render ~header ~rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" ((line header :: sep :: List.map line rows) @ [ "" ])

let bar ~width ~max_value v =
  let v = Float.max 0. (Float.min max_value v) in
  let n =
    if max_value <= 0. then 0
    else int_of_float (Float.round (v /. max_value *. float_of_int width))
  in
  String.make n '#'

let bar_chart ~title ?(unit_label = "") ~labels ~series () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  let max_value =
    List.fold_left (fun acc (_, vs) -> List.fold_left Float.max acc vs) 1e-9 series
  in
  let series_width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 series
  in
  let label_width = List.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  List.iteri
    (fun i label ->
      List.iter
        (fun (name, vs) ->
          match List.nth_opt vs i with
          | None -> ()
          | Some v ->
              Buffer.add_string buf
                (Printf.sprintf "%-*s %-*s %10.3f%s |%s\n" label_width label series_width name
                   v unit_label
                   (bar ~width:40 ~max_value v)))
        series;
      if series <> [] then Buffer.add_char buf '\n')
    labels;
  Buffer.contents buf
