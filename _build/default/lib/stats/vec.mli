(** Minimal growable float array (OCaml 5.1 has no Stdlib.Dynarray). *)

type t

val create : unit -> t

val add : t -> float -> unit

val length : t -> int

val get : t -> int -> float

val iter : (float -> unit) -> t -> unit

val to_array : t -> float array
(** Fresh array of the live elements. *)
