type t = { mutable data : float array; mutable size : int }

let create () = { data = [||]; size = 0 }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (if cap = 0 then 16 else 2 * cap) 0. in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let length t = t.size

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get";
  t.data.(i)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let to_array t = Array.sub t.data 0 t.size
