type timer = {
  time : float;
  seq : int;
  mutable action : (unit -> unit) option; (* None once fired or cancelled *)
}

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : timer Heap.t;
  root_rng : Rng.t;
}

let compare_timer a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    clock = 0.;
    next_seq = 0;
    queue = Heap.create ~cmp:compare_timer;
    root_rng = Rng.create seed;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule_at t ~at f =
  let at = if at < t.clock then t.clock else at in
  let timer = { time = at; seq = t.next_seq; action = Some f } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue timer;
  timer

let schedule t ~after f =
  let after = if after < 0. then 0. else after in
  schedule_at t ~at:(t.clock +. after) f

(* Cancellation leaves a tombstone in the heap; the run loop and the
   counting functions skip dead timers. *)
let cancel timer = timer.action <- None

let is_pending timer = timer.action <> None

let fire_time timer = timer.time

let pending_events t =
  List.length (List.filter is_pending (Heap.to_sorted_list t.queue))

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some timer -> (
        match timer.action with
        | None -> next ()
        | Some f ->
            timer.action <- None;
            t.clock <- timer.time;
            f ();
            true)
  in
  next ()

(* Discard leading tombstones so the horizon check sees a live event. *)
let rec peek_live t =
  match Heap.peek t.queue with
  | None -> None
  | Some timer ->
      if is_pending timer then Some timer
      else begin
        ignore (Heap.pop t.queue);
        peek_live t
      end

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue () =
    !budget > 0
    &&
    match peek_live t with
    | None -> false
    | Some timer -> ( match until with None -> true | Some horizon -> timer.time <= horizon)
  in
  while continue () && step t do
    decr budget
  done
