lib/sim/heap.mli:
