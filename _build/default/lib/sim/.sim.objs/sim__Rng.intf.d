lib/sim/rng.mli:
