(** Protocol data units exchanged by SRM / CESRM members.

    Node ids refer to {!Tree} nodes. [sender] is the group member that
    transmitted this PDU (not the interior router currently forwarding
    it). Sequence numbers identify original data packets from the
    (single) source, numbered from 1 as in the paper. *)

type echo = {
  echo_member : int;  (** whose timestamp we are echoing *)
  echo_ts : float;  (** the timestamp they sent *)
  echo_delay : float;  (** how long we held it before echoing *)
}
(** One entry of a session message's timestamp-echo table; the receiver
    of the echo computes its RTT to [echo_member]'s peer as
    [(now - echo_ts) - echo_delay]. *)

type payload =
  | Data of { seq : int }
      (** An original transmission ([sender] is the stream's source);
          retransmissions travel as [Reply]. *)
  | Request of {
      src : int;  (** the stream the missing packet belongs to *)
      seq : int;
      requestor : int;
      d_qs : float;  (** requestor's distance estimate to [src] *)
      round : int;  (** recovery round (0-based), for diagnostics *)
    }
  | Reply of {
      src : int;
      seq : int;
      requestor : int;  (** requestor that instigated this reply *)
      d_qs : float;
      replier : int;
      d_rq : float;  (** replier's distance estimate to the requestor *)
      expedited : bool;
      turning_point : int option;
          (** router-assist annotation; [None] without router support *)
    }
  | Exp_request of {
      src : int;
      seq : int;
      requestor : int;
      d_qs : float;
      replier : int;  (** the expeditious replier this is addressed to *)
      turning_point : int option;
    }
  | Session of {
      origin : int;
      sent_at : float;
      max_seqs : (int * int) list;
          (** per stream source, the highest sequence number seen *)
      echoes : echo list;
    }

type t = { sender : int; payload : payload }

val data_bits : int
(** Size of a payload-carrying packet: 1 KB (Section 4.3). *)

val size_bits : t -> int
(** Payload carriers (Data / Reply) are 1 KB; control packets are 0 KB,
    as in the paper's simulation setup. *)

val seq : t -> int option
(** The data sequence number a recovery PDU concerns, if any. *)

val src : t -> int option
(** The stream a data or recovery PDU concerns ([sender] for [Data]). *)

val describe : t -> string
(** Short human-readable form, for logs and debugging. *)
