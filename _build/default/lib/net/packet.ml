type echo = { echo_member : int; echo_ts : float; echo_delay : float }

type payload =
  | Data of { seq : int }
  | Request of { src : int; seq : int; requestor : int; d_qs : float; round : int }
  | Reply of {
      src : int;
      seq : int;
      requestor : int;
      d_qs : float;
      replier : int;
      d_rq : float;
      expedited : bool;
      turning_point : int option;
    }
  | Exp_request of {
      src : int;
      seq : int;
      requestor : int;
      d_qs : float;
      replier : int;
      turning_point : int option;
    }
  | Session of { origin : int; sent_at : float; max_seqs : (int * int) list; echoes : echo list }

type t = { sender : int; payload : payload }

let data_bits = 8 * 1024

let size_bits t =
  match t.payload with
  | Data _ | Reply _ -> data_bits
  | Request _ | Exp_request _ | Session _ -> 0

let seq t =
  match t.payload with
  | Data { seq } -> Some seq
  | Request { seq; _ } -> Some seq
  | Reply { seq; _ } -> Some seq
  | Exp_request { seq; _ } -> Some seq
  | Session _ -> None

let src t =
  match t.payload with
  | Data _ -> Some t.sender
  | Request { src; _ } -> Some src
  | Reply { src; _ } -> Some src
  | Exp_request { src; _ } -> Some src
  | Session _ -> None

let describe t =
  match t.payload with
  | Data { seq } -> Printf.sprintf "DATA(%d) from %d" seq t.sender
  | Request { seq; requestor; round; _ } ->
      Printf.sprintf "RQST(%d) by %d round %d" seq requestor round
  | Reply { seq; replier; expedited; _ } ->
      Printf.sprintf "%s(%d) by %d" (if expedited then "EREPL" else "REPL") seq replier
  | Exp_request { seq; requestor; replier; _ } ->
      Printf.sprintf "ERQST(%d) %d->%d" seq requestor replier
  | Session { origin; max_seqs; _ } ->
      Printf.sprintf "SESS from %d max [%s]" origin
        (String.concat ";" (List.map (fun (s, m) -> Printf.sprintf "%d:%d" s m) max_seqs))
