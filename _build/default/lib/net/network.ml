type t = {
  engine : Sim.Engine.t;
  tree : Tree.t;
  delays : float array; (* per link id; slot 0 unused *)
  bandwidth_bps : float;
  dist : float array array;
  mutable drop : link:int -> down:bool -> Packet.t -> bool;
  handlers : (Packet.t -> unit) option array;
  enabled : bool array; (* crashed / departed members are disabled *)
  busy : float array array; (* directed serialization reservations *)
  cost : Cost.t;
  mutable delivered : int;
  mutable tap : (from:int -> Packet.t -> unit) option;
}

let no_drop ~link:_ ~down:_ _ = false

let create_heterogeneous ~engine ~tree ~delays ?(bandwidth_bps = 1.5e6) () =
  let n = Tree.n_nodes tree in
  if Array.length delays <> n then invalid_arg "Network.create_heterogeneous: delays size";
  let dist = Tree.distance_matrix tree ~delay:(fun l -> delays.(l)) in
  {
    engine;
    tree;
    delays;
    bandwidth_bps;
    dist;
    drop = no_drop;
    handlers = Array.make n None;
    enabled = Array.make n true;
    busy = Array.make_matrix n n 0.;
    cost = Cost.create ();
    delivered = 0;
    tap = None;
  }

let create ~engine ~tree ?(link_delay = 0.020) ?bandwidth_bps () =
  let delays = Array.make (Tree.n_nodes tree) link_delay in
  create_heterogeneous ~engine ~tree ~delays ?bandwidth_bps ()

let engine t = t.engine

let tree t = t.tree

let cost t = t.cost

let link_delay t l = t.delays.(l)

let dist t u v = t.dist.(u).(v)

let rtt t u v = 2. *. t.dist.(u).(v)

let set_drop t f = t.drop <- f

let set_tap t f = t.tap <- Some f

let tap t ~from packet = match t.tap with None -> () | Some f -> f ~from packet

let on_receive t v f = t.handlers.(v) <- Some f

let packets_delivered t = t.delivered

let set_enabled t v flag = t.enabled.(v) <- flag

let is_enabled t v = t.enabled.(v)

let deliver t ~node ~at packet =
  match t.handlers.(node) with
  | None -> ()
  | Some _ when not t.enabled.(node) -> ()
  | Some handler ->
      ignore
        (Sim.Engine.schedule_at t.engine ~at (fun () ->
             t.delivered <- t.delivered + 1;
             handler packet))

(* Move [packet] across the edge [from -- to_], leaving [from] at time
   [at]. Returns the arrival time, or [None] if the loss predicate
   dropped it. Reserves the directed link for the serialization time,
   giving FIFO links. *)
let traverse t ~cast ~from ~to_ ~at packet =
  let link = if Tree.parent t.tree to_ = from then to_ else from in
  let down = link = to_ in
  if t.drop ~link ~down packet then None
  else begin
    Cost.record_crossing t.cost (Cost.category_of packet) cast;
    let tx = float_of_int (Packet.size_bits packet) /. t.bandwidth_bps in
    (* Size-0 control packets serialize instantly: they neither wait on
       nor extend link reservations. Payload packets pay one
       serialization time per hop. Only the source's paced data stream
       accumulates FIFO reservations: it is the only same-link in-order
       flow, whereas reply floods originate at many members whose
       crossing times are computed at send time — letting them reserve
       both breaks causality and, under reply implosion, builds
       unbounded queues the paper's lossless-recovery model does not
       have (NS2 would drop, not queue, that excess). *)
    if tx = 0. then Some (at +. t.delays.(link))
    else begin
      match packet.Packet.payload with
      | Packet.Data _ ->
          let start = Float.max at t.busy.(from).(to_) in
          t.busy.(from).(to_) <- start +. tx;
          Some (start +. tx +. t.delays.(link))
      | _ -> Some (at +. tx +. t.delays.(link))
    end
  end

(* Flood away from [prev], delivering at every visited node. *)
let rec flood t ~cast ~prev ~node ~at packet =
  deliver t ~node ~at packet;
  let forward nb =
    if nb <> prev then
      match traverse t ~cast ~from:node ~to_:nb ~at packet with
      | None -> ()
      | Some at' -> flood t ~cast ~prev:node ~node:nb ~at:at' packet
  in
  List.iter forward (Tree.neighbors t.tree node)

let multicast t ~from packet =
  if not t.enabled.(from) then ()
  else begin
  tap t ~from packet;
  Cost.record_send t.cost (Cost.category_of packet) Cost.Multicast;
  let at = Sim.Engine.now t.engine in
  let forward nb =
    match traverse t ~cast:Cost.Multicast ~from ~to_:nb ~at packet with
    | None -> ()
    | Some at' -> flood t ~cast:Cost.Multicast ~prev:from ~node:nb ~at:at' packet
  in
  List.iter forward (Tree.neighbors t.tree from)
  end

let unicast t ~from ~dst packet =
  if not t.enabled.(from) then ()
  else begin
  tap t ~from packet;
  Cost.record_send t.cost (Cost.category_of packet) Cost.Unicast;
  let rec walk ~node ~at = function
    | [] -> deliver t ~node ~at packet
    | next :: rest -> (
        match traverse t ~cast:Cost.Unicast ~from:node ~to_:next ~at packet with
        | None -> ()
        | Some at' -> walk ~node:next ~at:at' rest)
  in
  match Tree.path t.tree from dst with
  | [] | [ _ ] -> () (* self-send: nothing to do *)
  | _ :: hops -> walk ~node:from ~at:(Sim.Engine.now t.engine) hops
  end

let rec flood_down t ~node ~at packet =
  deliver t ~node ~at packet;
  let forward child =
    match traverse t ~cast:Cost.Subcast ~from:node ~to_:child ~at packet with
    | None -> ()
    | Some at' -> flood_down t ~node:child ~at:at' packet
  in
  List.iter forward (Tree.children t.tree node)

let subcast t ~at:root packet =
  tap t ~from:root packet;
  Cost.record_send t.cost (Cost.category_of packet) Cost.Subcast;
  flood_down t ~node:root ~at:(Sim.Engine.now t.engine) packet

let relayed_subcast t ~from ~via packet =
  if not t.enabled.(from) then ()
  else begin
  tap t ~from packet;
  Cost.record_send t.cost (Cost.category_of packet) Cost.Subcast;
  let rec climb ~node ~at = function
    | [] -> flood_down t ~node ~at packet
    | next :: rest -> (
        match traverse t ~cast:Cost.Unicast ~from:node ~to_:next ~at packet with
        | None -> ()
        | Some at' -> climb ~node:next ~at:at' rest)
  in
  match Tree.path t.tree from via with
  | [] | [ _ ] -> flood_down t ~node:via ~at:(Sim.Engine.now t.engine) packet
  | _ :: hops -> climb ~node:from ~at:(Sim.Engine.now t.engine) hops
  end
