lib/net/network.mli: Cost Packet Sim Tree
