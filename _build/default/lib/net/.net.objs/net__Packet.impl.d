lib/net/packet.ml: List Printf String
