lib/net/network.ml: Array Cost Float List Packet Sim Tree
