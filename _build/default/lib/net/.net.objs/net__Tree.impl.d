lib/net/tree.ml: Array Format Fun List
