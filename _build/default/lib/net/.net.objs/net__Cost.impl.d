lib/net/cost.ml: Array Format List Packet
