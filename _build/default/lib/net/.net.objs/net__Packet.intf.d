lib/net/packet.mli:
