lib/net/cost.mli: Format Packet
