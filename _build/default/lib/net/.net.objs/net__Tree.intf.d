lib/net/tree.mli: Format
