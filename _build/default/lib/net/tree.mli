(** IP multicast tree topology.

    Nodes are dense integer ids [0 .. n_nodes - 1]; node 0 is always the
    root (the transmission source). Interior nodes model multicast
    routers; leaves model receivers. Every non-root node has exactly one
    parent, so each tree {e link} is identified by the id of its child
    endpoint: link [v] is the edge [parent v -- v].

    This matches the paper's model (Section 4.1): a static tree
    [T = (N, s, L)] whose leaves are exactly the receiver set [R]. *)

type t

val of_parents : int array -> t
(** [of_parents p] builds the tree in which node [v]'s parent is
    [p.(v)], with [p.(0) = -1] for the root.
    @raise Invalid_argument if the array does not describe a tree rooted
    at node 0 (cycle, bad parent index, or root not 0). *)

val n_nodes : t -> int

val root : t -> int
(** Always [0]. *)

val parent : t -> int -> int
(** [-1] for the root. *)

val children : t -> int -> int list

val depth : t -> int -> int
(** Link-count distance from the root. *)

val height : t -> int
(** Maximum node depth — the paper's "tree depth". *)

val is_leaf : t -> int -> bool

val receivers : t -> int array
(** Leaf ids in increasing order. The root is never a receiver. *)

val n_receivers : t -> int

val links : t -> int array
(** All link ids (= all non-root node ids) in increasing order. *)

val neighbors : t -> int -> int list
(** Parent (if any) followed by children. *)

val lca : t -> int -> int -> int
(** Lowest common ancestor. *)

val hops : t -> int -> int -> int
(** Path length in links between two nodes. *)

val path : t -> int -> int -> int list
(** The node sequence from [u] to [v], inclusive of both. *)

val on_path_links : t -> int -> int -> int list
(** The links crossed when walking from [u] to [v] (as link ids). *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t a v] — is [a] an ancestor of [v] (or [v] itself)? *)

val subtree_nodes : t -> int -> int list
(** All nodes at or below the given node, preorder. *)

val subtree_receivers : t -> int -> int list
(** Receivers at or below the given node, increasing order. *)

val dist : t -> delay:(int -> float) -> int -> int -> float
(** One-way latency between two nodes given a per-link delay. *)

val distance_matrix : t -> delay:(int -> float) -> float array array
(** All-pairs one-way latencies; [m.(u).(v)]. *)

(* Constructors for tests and examples. *)

val line : int -> t
(** [line n]: a chain of [n] nodes; single receiver at the end. *)

val star : int -> t
(** [star r]: root with [r] leaf children. *)

val balanced : fanout:int -> depth:int -> t
(** Perfect [fanout]-ary tree of the given height. *)

val pp : Format.formatter -> t -> unit
(** Render as an indented outline. *)

val equal : t -> t -> bool
