type attribution = { cut_links : int list; posterior : float }

type t = {
  tree : Net.Tree.t;
  per_packet : attribution option array; (* index seq-1; None = no loss *)
  n_distinct : int;
}

let clamp_rate p = Float.max 1e-9 (Float.min (1. -. 1e-9) p)

(* Sum-product and max-product DP over one fully-lost subtree. Returns
   (f, g, best) where [f] sums p(c) over all coverings of the subtree,
   [g] is the max, and [best] the argmax cut set (as a list of links). *)
let rec cover tree rates v =
  let children_product cs =
    List.fold_left
      (fun (f_acc, g_acc, b_acc) c ->
        let f, g, b = cover tree rates c in
        (f_acc *. f, g_acc *. g, b_acc @ b))
      (1., 1., []) cs
  in
  if v = 0 then
    (* The root has no entry link: the only way to cover an all-lost
       pattern is to cover each child subtree. *)
    children_product (Net.Tree.children tree v)
  else begin
    let p = rates.(v) in
    match Net.Tree.children tree v with
    | [] -> (p, p, [ v ])
    | cs ->
        let fs, gs, bests = children_product cs in
        let f = p +. ((1. -. p) *. fs) in
        let g_recurse = (1. -. p) *. gs in
        if p >= g_recurse then (f, p, [ v ]) else (f, g_recurse, bests)
  end

let attribute_pattern tree rates pattern lost_nodes =
  Pattern.load pattern ~lost_nodes;
  let roots = Pattern.maximal_fully_lost pattern in
  let f_total, g_total, cut_links =
    List.fold_left
      (fun (f_acc, g_acc, b_acc) v ->
        let f, g, b = cover tree rates v in
        (f_acc *. f, g_acc *. g, b_acc @ b))
      (1., 1., []) roots
  in
  { cut_links; posterior = (if f_total <= 0. then 1. else g_total /. f_total) }

let infer ~rates trace =
  let tree = Mtrace.Trace.tree trace in
  let rates = Array.map clamp_rate rates in
  let pattern = Pattern.create tree in
  let receiver_nodes = Mtrace.Trace.receiver_nodes trace in
  let k = Mtrace.Trace.n_packets trace in
  let per_packet = Array.make k None in
  let memo : (int list, attribution) Hashtbl.t = Hashtbl.create 256 in
  for seq = 1 to k do
    match Mtrace.Trace.loss_pattern trace ~seq with
    | [] -> ()
    | indices ->
        let att =
          match Hashtbl.find_opt memo indices with
          | Some att -> att
          | None ->
              let lost_nodes = List.map (fun i -> receiver_nodes.(i)) indices in
              let att = attribute_pattern tree rates pattern lost_nodes in
              Hashtbl.replace memo indices att;
              att
        in
        per_packet.(seq - 1) <- Some att
  done;
  { tree; per_packet; n_distinct = Hashtbl.length memo }

let cuts t ~seq =
  match t.per_packet.(seq - 1) with None -> [] | Some a -> a.cut_links

let posterior t ~seq =
  match t.per_packet.(seq - 1) with None -> 1.0 | Some a -> a.posterior

let responsible_link t ~node ~seq =
  match t.per_packet.(seq - 1) with
  | None -> None
  | Some a -> List.find_opt (fun l -> Net.Tree.is_ancestor t.tree l node) a.cut_links

let distinct_patterns t = t.n_distinct

let posterior_quantile_stats t =
  let total = ref 0 and above_95 = ref 0 and above_98 = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some a ->
          incr total;
          if a.posterior > 0.95 then incr above_95;
          if a.posterior > 0.98 then incr above_98)
    t.per_packet;
  if !total = 0 then (1., 1.)
  else
    ( float_of_int !above_95 /. float_of_int !total,
      float_of_int !above_98 /. float_of_int !total )
