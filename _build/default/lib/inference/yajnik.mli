(** The Yajnik et al. link loss-rate estimator (paper Section 4.2,
    method of [15]).

    For link [l] into node [v], the conditional drop probability
    [p(l) = P(dropped on l | reached parent v)] is estimated from the
    observable proxy "reached n = some receiver under n received":

    [p̂(l) = (#reached(parent) − #reached(v)) / #reached(parent)].

    Chains (single-child routers) are inherently unresolvable from leaf
    observations; the proxy attributes all of a chain's loss to its
    {e topmost} link and 0 to the links below it, which is
    behaviourally equivalent for the simulation (the same receiver set
    sits below every link of the chain). *)

val estimate : Mtrace.Trace.t -> float array
(** Per-link conditional drop probabilities, indexed by link (= child
    node) id; slot 0 is 0. *)
