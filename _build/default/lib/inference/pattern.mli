(** Loss-pattern algebra over a multicast tree.

    A {e loss pattern} is the set of receivers that lost a given
    packet. The attribution machinery (paper Section 4.2) reasons about
    the nodes whose entire receiver subtree is contained in the
    pattern: only links above such nodes can be "cut" by a candidate
    link combination. *)

type t
(** Per-tree scratch state; reusable across patterns. *)

val create : Net.Tree.t -> t

val load : t -> lost_nodes:int list -> unit
(** Load a pattern given as receiver {e node ids}.
    @raise Invalid_argument if a node is not a receiver. *)

val is_fully_lost : t -> int -> bool
(** After {!load}: does the node's receiver subtree lie entirely inside
    the pattern? (False for subtrees with no receivers.) *)

val maximal_fully_lost : t -> int list
(** After {!load}: the highest nodes whose receiver subtrees are fully
    contained in the pattern — the roots of the regions a link
    combination must cover. Empty for the empty pattern; [[0]] (the
    root) when every receiver lost the packet. *)

val reached_counts : Net.Tree.t -> Mtrace.Trace.t -> int array
(** [reached_counts tree trace] gives, per node [v], the number of
    packets for which at least one receiver in [v]'s subtree received
    the packet — the observable "packet reached v" proxy both
    estimators use. The root counts every packet (the source sent
    them all). *)
