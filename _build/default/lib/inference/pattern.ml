type t = {
  tree : Net.Tree.t;
  receivers_below : int array; (* receivers in each node's subtree *)
  lost_below : int array; (* receivers of the loaded pattern below each node *)
  mutable loaded : int list;
}

let create tree =
  let n = Net.Tree.n_nodes tree in
  let receivers_below = Array.make n 0 in
  Array.iter
    (fun r ->
      let rec bump v =
        receivers_below.(v) <- receivers_below.(v) + 1;
        if v <> 0 then bump (Net.Tree.parent tree v)
      in
      bump r)
    (Net.Tree.receivers tree);
  { tree; receivers_below; lost_below = Array.make n 0; loaded = [] }

let load t ~lost_nodes =
  (* Clear only the ancestors touched by the previous pattern. *)
  let rec wipe v =
    if t.lost_below.(v) <> 0 then begin
      t.lost_below.(v) <- 0;
      if v <> 0 then wipe (Net.Tree.parent t.tree v)
    end
  in
  List.iter wipe t.loaded;
  List.iter
    (fun r ->
      if not (Net.Tree.is_leaf t.tree r) || r = 0 then
        invalid_arg "Pattern.load: not a receiver";
      let rec bump v =
        t.lost_below.(v) <- t.lost_below.(v) + 1;
        if v <> 0 then bump (Net.Tree.parent t.tree v)
      in
      bump r)
    lost_nodes;
  t.loaded <- lost_nodes

let is_fully_lost t v = t.receivers_below.(v) > 0 && t.lost_below.(v) = t.receivers_below.(v)

let maximal_fully_lost t =
  if t.loaded = [] then []
  else if is_fully_lost t 0 then [ 0 ]
  else begin
    (* Descend from the root; stop at the first fully-lost node on each
       branch that still contains losses. *)
    let acc = ref [] in
    let rec visit v =
      if t.lost_below.(v) > 0 then
        if is_fully_lost t v then acc := v :: !acc
        else List.iter visit (Net.Tree.children t.tree v)
    in
    visit 0;
    List.rev !acc
  end

let reached_counts tree trace =
  let n = Net.Tree.n_nodes tree in
  let k = Mtrace.Trace.n_packets trace in
  (* received(v) = OR over receivers under v of NOT loss; fold bottom-up. *)
  let received = Array.make n None in
  Array.iteri
    (fun idx node ->
      received.(node) <-
        Some (Mtrace.Bitset.complement (Mtrace.Trace.loss_bits trace ~rcvr:idx)))
    (Mtrace.Trace.receiver_nodes trace);
  let rec fold v =
    match received.(v) with
    | Some bits -> bits
    | None ->
        let bits = Mtrace.Bitset.create k in
        List.iter
          (fun c -> Mtrace.Bitset.union_into ~dst:bits (fold c))
          (Net.Tree.children tree v);
        received.(v) <- Some bits;
        bits
  in
  let counts =
    Array.init n (fun v -> Mtrace.Bitset.count (fold v))
  in
  counts.(0) <- k;
  counts
