lib/inference/pattern.mli: Mtrace Net
