lib/inference/pattern.ml: Array List Mtrace Net
