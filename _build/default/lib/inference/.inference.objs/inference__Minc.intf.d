lib/inference/minc.mli: Mtrace
