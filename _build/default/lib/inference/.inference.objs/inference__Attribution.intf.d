lib/inference/attribution.mli: Mtrace
