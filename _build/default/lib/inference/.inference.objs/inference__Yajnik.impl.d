lib/inference/yajnik.ml: Array Mtrace Net Pattern
