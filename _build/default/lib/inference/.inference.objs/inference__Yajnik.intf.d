lib/inference/yajnik.mli: Mtrace
