lib/inference/minc.ml: Array Float List Mtrace Net Pattern
