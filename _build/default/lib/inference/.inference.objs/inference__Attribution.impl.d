lib/inference/attribution.ml: Array Float Hashtbl List Mtrace Net Pattern
