(** The Cáceres–Duffield–Horowitz–Towsley maximum-likelihood estimator
    ("MINC", IEEE Trans. IT 1999) for multicast link loss rates, the
    alternative estimator the paper cross-checks against.

    With [γ_k = P(some receiver under k receives)] observed for every
    node, the MLE of [A_k = P(packet reaches k)] at each branching node
    solves

    [1 − γ_k / A = Π_{j ∈ children(k)} (1 − γ_j / A)]

    which has a unique root in [(max_j γ_j, 1]] whenever [k] has at
    least two children. Link pass rates are then [α_k = A_k / A_parent].
    Chains are unresolvable (as with {!Yajnik}); we use the same
    convention — the topmost link of a chain carries the chain's loss
    and the links below it are lossless. *)

val estimate : Mtrace.Trace.t -> float array
(** Per-link drop probabilities [1 − α], indexed by link id; slot 0 is
    0. Estimates are clamped to [\[0, 1\]]. *)
