(** Maximum-likelihood attribution of each loss to tree links
    (paper Section 4.2).

    For each observed loss pattern [x] the set [C_x] of link
    combinations that produce exactly [x] is, in general, exponential;
    the paper selects the combination with the highest occurrence
    probability [p(c) = Π_{l ∈ c} p(l) · Π_{l' ∈ U} (1 − p(l'))] and
    reports the posterior [p(c) / Σ_{c' ∈ C_x} p(c')].

    We compute both the best combination and the full normalizing sum
    {e exactly} with a max-product / sum-product dynamic program over
    the pattern's fully-lost subtrees: for a fully-lost node [v] with
    entry link [l_v],

    [f(v) = p(l_v) + (1 − p(l_v)) · Π_{c ∈ children(v)} f(c)]

    (sum over all coverings) and the same recurrence with [max] instead
    of [+] for the best covering. Nodes outside the fully-lost regions
    contribute identical [(1 − p)] factors to every combination and
    cancel in the posterior. *)

type t

val infer : rates:float array -> Mtrace.Trace.t -> t
(** Attribute every lossy packet of the trace. [rates] are per-link
    drop probabilities (e.g. from {!Yajnik.estimate}); they are clamped
    away from 0 and 1 so every pattern keeps a well-defined
    distribution over combinations. *)

val cuts : t -> seq:int -> int list
(** The selected responsible links (as link ids) for packet [seq];
    [[]] if the packet was not lost by anyone. *)

val posterior : t -> seq:int -> float
(** Probability of the selected combination within [C_x]; [1.0] for
    packets without loss. *)

val responsible_link : t -> node:int -> seq:int -> int option
(** The selected link that explains receiver [node]'s loss of packet
    [seq] — the unique cut on the receiver's root path — or [None] if
    that receiver did not lose the packet. This is the paper's
    [link(r)(i)] mapping driving loss injection. *)

val distinct_patterns : t -> int
(** Number of distinct loss patterns attributed (the DP memoizes by
    pattern, which is what makes full traces cheap). *)

val posterior_quantile_stats : t -> float * float
(** [(above_95, above_98)]: over per-loss-instance selected
    combinations, the fraction whose posterior exceeds 0.95 / 0.98 —
    the paper's accuracy statistic. *)
