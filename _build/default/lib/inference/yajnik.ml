let estimate trace =
  let tree = Mtrace.Trace.tree trace in
  let reached = Pattern.reached_counts tree trace in
  let n = Net.Tree.n_nodes tree in
  Array.init n (fun v ->
      if v = 0 then 0.
      else begin
        let parent = Net.Tree.parent tree v in
        let denom = reached.(parent) in
        if denom = 0 then 0.
        else float_of_int (denom - reached.(v)) /. float_of_int denom
      end)
