let solve_branching ~gamma_k ~gamma_children =
  (* Root of (1 - γ_k/A) = Π_j (1 - γ_j/A) in (lo, 1]. The LHS-RHS
     difference is negative at A = γ_k and (generically) positive at
     A = 1, and is monotone on the bracket; bisect. *)
  let h a =
    (1. -. (gamma_k /. a))
    -. List.fold_left (fun acc g -> acc *. (1. -. (g /. a))) 1. gamma_children
  in
  let lo = List.fold_left Float.max gamma_k gamma_children +. 1e-12 in
  if lo >= 1. then 1.
  else if h 1. <= 0. then 1.
  else begin
    let rec bisect lo hi iters =
      if iters = 0 then (lo +. hi) /. 2.
      else begin
        let mid = (lo +. hi) /. 2. in
        if h mid < 0. then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
      end
    in
    bisect lo 1. 80
  end

let estimate trace =
  let tree = Mtrace.Trace.tree trace in
  let n = Net.Tree.n_nodes tree in
  let k_total = float_of_int (Mtrace.Trace.n_packets trace) in
  let reached = Pattern.reached_counts tree trace in
  let gamma = Array.init n (fun v -> float_of_int reached.(v) /. k_total) in
  let a = Array.make n Float.nan in
  a.(0) <- 1.;
  (* Identifiable nodes: branching nodes (their own MLE equation) and
     leaves (β = 1, so A = γ). *)
  for v = 1 to n - 1 do
    match Net.Tree.children tree v with
    | [] -> a.(v) <- gamma.(v)
    | [ _ ] -> ()
    | cs -> a.(v) <- solve_branching ~gamma_k:gamma.(v) ~gamma_children:(List.map (fun c -> gamma.(c)) cs)
  done;
  (* Chains are not identifiable; match the Yajnik convention of
     charging a chain's entire loss to its *topmost* link: every chain
     node inherits the A of the chain's identifiable bottom, so only
     the link entering the chain shows a drop. *)
  let rec chain_bottom_a v =
    if Float.is_nan a.(v) then begin
      match Net.Tree.children tree v with
      | [ c ] ->
          let ac = chain_bottom_a c in
          a.(v) <- ac;
          ac
      | _ -> assert false
    end
    else a.(v)
  in
  for v = 1 to n - 1 do
    ignore (chain_bottom_a v)
  done;
  Array.init n (fun v ->
      if v = 0 then 0.
      else begin
        let ap = a.(Net.Tree.parent tree v) in
        if ap <= 0. then 0.
        else Float.max 0. (Float.min 1. (1. -. (a.(v) /. ap)))
      end)
