(** Reproduction of every table and figure in the paper's evaluation
    (Section 4), as structured data plus ASCII rendering.

    The expensive part — running both protocols over a trace — is done
    once per trace by {!run_pair}; each figure function is a pure
    extraction over those results. *)

type pair = {
  row : Mtrace.Meta.row;
  trace : Mtrace.Trace.t;
  attribution : Inference.Attribution.t;
  srm : Runner.result;
  cesrm : Runner.result;
}

val run_pair :
  ?setup:Runner.setup ->
  ?config:Cesrm.Host.config ->
  ?n_packets:int ->
  ?seed:int64 ->
  Mtrace.Meta.row ->
  pair
(** Synthesize the trace for a Table 1 row (optionally truncated to
    [n_packets]), attribute losses, and run SRM and CESRM on it. *)

(* -- Table 1 -------------------------------------------------------- *)

val table1 : pair list -> string
(** Published trace characteristics next to the synthetic trace
    realized by the generator (receivers, depth, packets, losses). *)

(* -- Section 4.2 accuracy ------------------------------------------- *)

val attribution_accuracy : pair list -> string
(** Fraction of selected link combinations with posterior > 95% / 98%,
    per trace — the paper's accuracy statistic. *)

(* -- Figures -------------------------------------------------------- *)

type receiver_series = { node : int; srm_value : float; cesrm_value : float }

val figure1_data : pair -> receiver_series list
(** Per-receiver average normalized (RTT-relative) recovery times. *)

val figure1 : pair -> string

val figure2_data : pair -> (int * float) list
(** Per receiver: average normalized non-expedited minus expedited
    recovery time of CESRM (in RTTs); receivers with no expedited or no
    non-expedited recoveries are omitted. *)

val figure2 : pair -> string

type request_counts = {
  rq_node : int;
  srm_rqst : int;
  cesrm_rqst : int;  (** multicast fallback requests *)
  cesrm_exp_rqst : int;  (** unicast expedited requests *)
}

val figure3_data : pair -> request_counts list

val figure3 : pair -> string

type reply_counts = {
  rp_node : int;
  srm_repl : int;
  cesrm_repl : int;
  cesrm_exp_repl : int;
}

val figure4_data : pair -> reply_counts list

val figure4 : pair -> string

val figure5a_data : pair list -> (string * float) list
(** Per trace: percentage of successful expedited recoveries. *)

val figure5a : pair list -> string

type overhead = {
  trace_name : string;
  retrans_pct : float;  (** CESRM retransmission crossings / SRM's, % *)
  control_mc_pct : float;  (** CESRM multicast control / SRM control, % *)
  control_uc_pct : float;  (** CESRM unicast control / SRM control, % *)
}

val figure5b_data : pair list -> overhead list

val figure5b : pair list -> string

val summary : pair list -> string
(** Headline comparison: average recovery-time reduction, retransmission
    ratio, expedited success — the numbers the abstract quotes. *)

val write_csvs : dir:string -> pair list -> unit
(** Write figure1..figure5 and the summary as CSV files into [dir]
    (created if missing) — for external plotting. *)
