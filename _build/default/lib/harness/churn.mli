(** Membership-churn robustness (CESRM paper, Sections 3.3 and 5).

    Router-assisted protocols hold replier state in the network; when
    the designated replier leaves or crashes, that state is stale until
    the next soft-state refresh, and recovery in its subtree stalls.
    CESRM's cache adapts by itself: a failed expedited recovery falls
    back on SRM, whose reply repopulates the cache with a live pair.

    The experiment crashes, mid-transmission, the member each protocol
    leans on hardest (for LMS the busiest designated replier; for
    CESRM/SRM the member that served the most retransmissions in a
    crash-free dry run) and compares recovery latency of the surviving
    receivers before and after the crash. *)

type phase = {
  recoveries : int;
  mean_latency : float;  (** seconds *)
  p99_latency : float;
  max_latency : float;
}

type outcome = {
  label : string;
  crashed : int;
  before : phase;  (** losses detected before the crash *)
  after : phase;  (** losses detected after the crash *)
  unrecovered_alive : int;  (** among surviving members; 0 expected *)
}

val run_srm :
  ?lms_refresh:float -> crash_at:float -> Mtrace.Trace.t -> Inference.Attribution.t -> outcome

val run_cesrm :
  ?lms_refresh:float -> crash_at:float -> Mtrace.Trace.t -> Inference.Attribution.t -> outcome

val run_lms :
  ?lms_refresh:float -> crash_at:float -> Mtrace.Trace.t -> Inference.Attribution.t -> outcome
(** [lms_refresh] is LMS's soft-state refresh period (default 10 s);
    ignored by the other two. *)

val report : ?n_packets:int -> Mtrace.Meta.row -> string
(** The bench section: all three protocols under the crash. *)
