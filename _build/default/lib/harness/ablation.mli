(** Ablation experiments for the design choices DESIGN.md calls out:
    the selection policy, the cache size, the reorder delay, the link
    delay (the paper's 10/20/30 ms robustness claim), lossy recovery
    (the paper's [10] variant), and router-assisted local recovery
    (Section 3.3). Each function runs its sweep and renders a table. *)

val policies : ?n_packets:int -> Mtrace.Meta.row list -> string
(** Most-recent vs most-frequent vs the hybrid policy: average
    normalized recovery, expedited success, retransmission overhead. *)

val cache_sizes : ?n_packets:int -> ?sizes:int list -> Mtrace.Meta.row -> string

val reorder_delays : ?n_packets:int -> ?delays:float list -> Mtrace.Meta.row -> string

val link_delays : ?n_packets:int -> ?delays:float list -> Mtrace.Meta.row -> string
(** The paper ran 10, 20 and 30 ms and found the results very similar;
    normalized metrics should be nearly delay-invariant. *)

val lossy_recovery : ?n_packets:int -> Mtrace.Meta.row list -> string
(** Recovery packets dropped per estimated link rates: latencies grow
    slightly, CESRM's advantage persists (paper Section 4.3). *)

val router_assist : ?n_packets:int -> Mtrace.Meta.row list -> string
(** Exposure of retransmissions: average link crossings per reply with
    and without turning-point subcasting. *)

val reordering : ?n_packets:int -> Mtrace.Meta.row -> string
(** Packet reordering (send jitter beyond one period) with
    REORDER-DELAY ∈ {0, 2·jitter}: without the delay, transient gaps
    trigger spurious expedited requests; with it they are cancelled by
    the late packet's arrival (Section 3.2's rationale). *)

val lossy_sessions : ?n_packets:int -> Mtrace.Meta.row list -> string
(** Drop session packets per link rates, violating the paper's
    lossless-session assumption: distance estimates still converge and
    the comparison is unchanged. *)

val adaptive_timers : ?n_packets:int -> Mtrace.Meta.row list -> string
(** Fixed vs adaptive SRM scheduling parameters: the adaptive variant
    (Floyd et al. §VI) rebalances the duplicate-suppression / latency
    trade-off per host (here it buys latency at a few percent more
    duplicates). *)

val scaling : ?n_packets:int -> ?sizes:int list -> unit -> string
(** Group-size sweep on synthetic rows (5% per-receiver loss): how the
    SRM-vs-CESRM gap evolves as the group grows. *)


val heterogeneous : ?n_packets:int -> Mtrace.Meta.row list -> string
(** Uniform vs per-link log-uniform delays: the suppression timers are
    distance-driven, so the normalized comparison survives latency
    heterogeneity the paper did not model. *)
