(** Section 3.4: closed-form recovery-latency bounds and their
    comparison against simulation.

    Equation (1): a rough upper bound on the average latency of a
    successful first-round non-expedited recovery,
    [(C1 + C2/2)·d + d + (D1 + D2/2)·d + d].
    Equation (2): an upper bound on a successful expedited recovery,
    [REORDER_DELAY + RTT]. With the default parameters the predicted
    gap is roughly 2.25 RTT. *)

val eq1_bound : Srm.Params.t -> float
(** In units of one-way distance [d]. *)

val eq2_bound : reorder_delay:float -> rtt:float -> float
(** In seconds, for a given RTT bound. *)

val predicted_gap_rtt : Srm.Params.t -> float
(** [(eq1 / 2) − 1] — predicted expedited advantage in RTTs, assuming
    a negligible reorder delay. *)

val measured_first_round : Runner.result -> Stats.Summary.t
(** Normalized recovery times of first-round non-expedited recoveries. *)

val measured_expedited : Runner.result -> Stats.Summary.t

val report : Figures.pair list -> string
(** Bounds vs. measurement, per trace: the paper's claims are that SRM
    first-round averages lie in [1.5, 3.25] RTT and the expedited gap
    in [1, 2.5] RTT. *)
