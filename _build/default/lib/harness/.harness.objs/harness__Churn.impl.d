lib/harness/churn.ml: Array Cesrm Hashtbl Inference List Lms Mtrace Net Option Printf Runner Sim Srm Stats
