lib/harness/audit.ml: Format Hashtbl List Net Option Printf Sim Srm String
