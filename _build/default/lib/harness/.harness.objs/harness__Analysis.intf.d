lib/harness/analysis.mli: Figures Runner Srm Stats
