lib/harness/churn.mli: Inference Mtrace
