lib/harness/figures.ml: Cesrm Filename Fun Inference List Mtrace Net Printf Runner Stats String Sys
