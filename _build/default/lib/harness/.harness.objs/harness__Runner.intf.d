lib/harness/runner.mli: Cesrm Inference Mtrace Net Srm Stats
