lib/harness/analysis.ml: Figures List Mtrace Printf Runner Srm Stats
