lib/harness/audit.mli: Format Net
