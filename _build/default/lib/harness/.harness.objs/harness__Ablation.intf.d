lib/harness/ablation.mli: Mtrace
