lib/harness/figures.mli: Cesrm Inference Mtrace Runner
