lib/harness/runner.ml: Array Audit Cesrm Hashtbl Inference List Lms Mtrace Net Sim Srm Stats
