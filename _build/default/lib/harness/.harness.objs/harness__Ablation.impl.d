lib/harness/ablation.ml: Cesrm List Mtrace Net Printf Runner Srm Stats
