let eq1_bound (p : Srm.Params.t) =
  p.c1 +. (p.c2 /. 2.) +. 1. +. p.d1 +. (p.d2 /. 2.) +. 1.

let eq2_bound ~reorder_delay ~rtt = reorder_delay +. rtt

let predicted_gap_rtt p = (eq1_bound p /. 2.) -. 1.

let normalized res ~filter =
  let sum = Stats.Summary.create () in
  List.iter
    (fun (node, _) ->
      let s = Runner.normalized_recovery res ~node ~filter in
      if Stats.Summary.count s > 0 then Stats.Summary.add sum (Stats.Summary.mean s))
    res.Runner.rtt_to_source;
  sum

let measured_first_round res =
  normalized res ~filter:(fun r -> (not r.Stats.Recovery.expedited) && r.rounds <= 1)

let measured_expedited res = normalized res ~filter:(fun r -> r.Stats.Recovery.expedited)

let mean_or_zero s = if Stats.Summary.count s = 0 then 0. else Stats.Summary.mean s

let report pairs =
  let params =
    match pairs with
    | p :: _ -> p.Figures.srm.Runner.setup.Runner.params
    | [] -> Srm.Params.default
  in
  let rows =
    List.map
      (fun (p : Figures.pair) ->
        let srm_first = mean_or_zero (measured_first_round p.srm) in
        let cesrm_first = mean_or_zero (measured_first_round p.cesrm) in
        let exp = mean_or_zero (measured_expedited p.cesrm) in
        [
          p.row.Mtrace.Meta.name;
          Printf.sprintf "%.2f" srm_first;
          Printf.sprintf "%.2f" cesrm_first;
          Printf.sprintf "%.2f" exp;
          Printf.sprintf "%.2f" (cesrm_first -. exp);
        ])
      pairs
  in
  Printf.sprintf
    "Section 3.4 analysis: Eq.(1) bound = %.2f d = %.2f RTT; predicted expedited gap <= %.2f RTT\n\
     (paper: SRM first-round averages in [1.5, 3.25] RTT; measured gap in [1, 2.5] RTT)\n"
    (eq1_bound params)
    (eq1_bound params /. 2.)
    (predicted_gap_rtt params)
  ^ Stats.Table.render
      ~header:
        [ "trace"; "SRM 1st-rnd(RTT)"; "CESRM 1st-rnd(RTT)"; "expedited(RTT)"; "gap(RTT)" ]
      ~rows
