type pair = {
  row : Mtrace.Meta.row;
  trace : Mtrace.Trace.t;
  attribution : Inference.Attribution.t;
  srm : Runner.result;
  cesrm : Runner.result;
}

let run_pair ?setup ?(config = Cesrm.Host.default_config) ?n_packets ?seed row =
  let generated = Mtrace.Generator.synthesize ?seed ?n_packets row in
  let trace = generated.Mtrace.Generator.trace in
  let attribution = Runner.attribution_of_trace trace in
  let srm = Runner.run ?setup Runner.Srm_protocol trace attribution in
  let cesrm = Runner.run ?setup (Runner.Cesrm_protocol config) trace attribution in
  { row; trace; attribution; srm; cesrm }

(* -- Table 1 -------------------------------------------------------- *)

let table1 pairs =
  let rows =
    List.map
      (fun p ->
        let t = p.trace in
        [
          string_of_int p.row.Mtrace.Meta.index;
          p.row.name;
          Printf.sprintf "%d/%d" p.row.n_receivers (Mtrace.Trace.n_receivers t);
          Printf.sprintf "%d/%d" p.row.tree_depth (Net.Tree.height (Mtrace.Trace.tree t));
          string_of_int p.row.period_ms;
          Printf.sprintf "%d/%d" p.row.n_packets (Mtrace.Trace.n_packets t);
          Printf.sprintf "%d/%d"
            (int_of_float
               (float_of_int p.row.n_losses
               *. float_of_int (Mtrace.Trace.n_packets t)
               /. float_of_int p.row.n_packets))
            (Mtrace.Trace.total_losses t);
        ])
      pairs
  in
  "Table 1 — trace characteristics (published/synthetic; loss target scaled to packet count)\n"
  ^ Stats.Table.render
      ~header:[ "#"; "trace"; "rcvrs"; "depth"; "period(ms)"; "packets"; "losses" ]
      ~rows

(* -- Section 4.2 accuracy ------------------------------------------- *)

let attribution_accuracy pairs =
  let rows =
    List.map
      (fun p ->
        let a95, a98 = Inference.Attribution.posterior_quantile_stats p.attribution in
        [
          p.row.Mtrace.Meta.name;
          string_of_int (Inference.Attribution.distinct_patterns p.attribution);
          Printf.sprintf "%.1f%%" (100. *. a95);
          Printf.sprintf "%.1f%%" (100. *. a98);
        ])
      pairs
  in
  "Loss-attribution accuracy (Section 4.2: paper reports >90% of combinations above 95%)\n"
  ^ Stats.Table.render ~header:[ "trace"; "patterns"; "post>0.95"; "post>0.98" ] ~rows

(* -- Figure 1 ------------------------------------------------------- *)

type receiver_series = { node : int; srm_value : float; cesrm_value : float }

let mean_or_zero s = if Stats.Summary.count s = 0 then 0. else Stats.Summary.mean s

let figure1_data pair =
  List.map
    (fun (node, _) ->
      let f res = mean_or_zero (Runner.normalized_recovery res ~node ~filter:(fun _ -> true)) in
      { node; srm_value = f pair.srm; cesrm_value = f pair.cesrm })
    pair.srm.rtt_to_source

let figure1 pair =
  let data = figure1_data pair in
  Printf.sprintf "Figure 1 — %s: per-receiver average normalized recovery time (RTTs)\n"
    pair.row.Mtrace.Meta.name
  ^ Stats.Table.bar_chart
      ~title:""
      ~labels:(List.map (fun d -> Printf.sprintf "rcvr %d" d.node) data)
      ~series:
        [
          ("SRM", List.map (fun d -> d.srm_value) data);
          ("CESRM", List.map (fun d -> d.cesrm_value) data);
        ]
      ()

(* -- Figure 2 ------------------------------------------------------- *)

let figure2_data pair =
  List.filter_map
    (fun (node, _) ->
      let f expedited =
        Runner.normalized_recovery pair.cesrm ~node
          ~filter:(fun r -> r.Stats.Recovery.expedited = expedited)
      in
      let exp = f true and nonexp = f false in
      if Stats.Summary.count exp = 0 || Stats.Summary.count nonexp = 0 then None
      else Some (node, Stats.Summary.mean nonexp -. Stats.Summary.mean exp))
    pair.cesrm.rtt_to_source

let figure2 pair =
  let data = figure2_data pair in
  Printf.sprintf
    "Figure 2 — %s: difference in avg normalized recovery time, non-expedited minus expedited (RTTs)\n"
    pair.row.Mtrace.Meta.name
  ^ Stats.Table.bar_chart ~title:""
      ~labels:(List.map (fun (node, _) -> Printf.sprintf "rcvr %d" node) data)
      ~series:[ ("diff", List.map snd data) ]
      ()

(* -- Figures 3 and 4 ------------------------------------------------ *)

type request_counts = {
  rq_node : int;
  srm_rqst : int;
  cesrm_rqst : int;
  cesrm_exp_rqst : int;
}

let members_of pair = 0 :: List.map fst pair.srm.rtt_to_source

let figure3_data pair =
  List.map
    (fun node ->
      {
        rq_node = node;
        srm_rqst = Stats.Counters.get pair.srm.counters ~node Stats.Counters.Rqst;
        cesrm_rqst = Stats.Counters.get pair.cesrm.counters ~node Stats.Counters.Rqst;
        cesrm_exp_rqst = Stats.Counters.get pair.cesrm.counters ~node Stats.Counters.Exp_rqst;
      })
    (members_of pair)

let figure3 pair =
  let data = figure3_data pair in
  let rows =
    List.map
      (fun d ->
        [
          string_of_int d.rq_node;
          string_of_int d.srm_rqst;
          string_of_int d.cesrm_rqst;
          string_of_int d.cesrm_exp_rqst;
        ])
      data
  in
  Printf.sprintf "Figure 3 — %s: request packets sent per member (member 0 is the source)\n"
    pair.row.Mtrace.Meta.name
  ^ Stats.Table.render
      ~header:[ "member"; "SRM(mc)"; "CESRM(mc)"; "CESRM-EXP(uc)" ]
      ~rows

type reply_counts = { rp_node : int; srm_repl : int; cesrm_repl : int; cesrm_exp_repl : int }

let figure4_data pair =
  List.map
    (fun node ->
      {
        rp_node = node;
        srm_repl = Stats.Counters.get pair.srm.counters ~node Stats.Counters.Repl;
        cesrm_repl = Stats.Counters.get pair.cesrm.counters ~node Stats.Counters.Repl;
        cesrm_exp_repl = Stats.Counters.get pair.cesrm.counters ~node Stats.Counters.Exp_repl;
      })
    (members_of pair)

let figure4 pair =
  let data = figure4_data pair in
  let rows =
    List.map
      (fun d ->
        [
          string_of_int d.rp_node;
          string_of_int d.srm_repl;
          string_of_int d.cesrm_repl;
          string_of_int d.cesrm_exp_repl;
        ])
      data
  in
  Printf.sprintf "Figure 4 — %s: reply packets sent per member (member 0 is the source)\n"
    pair.row.Mtrace.Meta.name
  ^ Stats.Table.render
      ~header:[ "member"; "SRM(mc)"; "CESRM(mc)"; "CESRM-EXP(mc)" ]
      ~rows

(* -- Figure 5 ------------------------------------------------------- *)

let figure5a_data pairs =
  List.map
    (fun p ->
      let pct =
        if p.cesrm.exp_requests = 0 then 0.
        else 100. *. float_of_int p.cesrm.exp_replies /. float_of_int p.cesrm.exp_requests
      in
      (p.row.Mtrace.Meta.name, pct))
    pairs

let figure5a pairs =
  let data = figure5a_data pairs in
  "Figure 5 (left) — successful expedited recoveries, % (paper: >70% on all traces)\n"
  ^ Stats.Table.bar_chart ~title:"" ~unit_label:"%"
      ~labels:(List.map fst data)
      ~series:[ ("success", List.map snd data) ]
      ()

type overhead = {
  trace_name : string;
  retrans_pct : float;
  control_mc_pct : float;
  control_uc_pct : float;
}

let pct num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let figure5b_data pairs =
  List.map
    (fun p ->
      let srm_retx = Net.Cost.retransmission_overhead p.srm.cost in
      let srm_ctrl =
        Net.Cost.control_overhead p.srm.cost ~multicast:true
        + Net.Cost.control_overhead p.srm.cost ~multicast:false
      in
      {
        trace_name = p.row.Mtrace.Meta.name;
        retrans_pct = pct (Net.Cost.retransmission_overhead p.cesrm.cost) srm_retx;
        control_mc_pct = pct (Net.Cost.control_overhead p.cesrm.cost ~multicast:true) srm_ctrl;
        control_uc_pct = pct (Net.Cost.control_overhead p.cesrm.cost ~multicast:false) srm_ctrl;
      })
    pairs

let figure5b pairs =
  let data = figure5b_data pairs in
  let rows =
    List.map
      (fun d ->
        [
          d.trace_name;
          Printf.sprintf "%.1f%%" d.retrans_pct;
          Printf.sprintf "%.1f%%" d.control_mc_pct;
          Printf.sprintf "%.1f%%" d.control_uc_pct;
          Printf.sprintf "%.1f%%" (d.control_mc_pct +. d.control_uc_pct);
        ])
      data
  in
  "Figure 5 (right) — CESRM transmission overhead as % of SRM's (paper: retx <80%, control <52%)\n"
  ^ Stats.Table.render
      ~header:[ "trace"; "retransmissions"; "mc control"; "uc control"; "control total" ]
      ~rows

(* -- headline summary ----------------------------------------------- *)

let avg_norm_recovery (res : Runner.result) =
  let sum = Stats.Summary.create () in
  List.iter
    (fun (node, _) ->
      let s = Runner.normalized_recovery res ~node ~filter:(fun _ -> true) in
      if Stats.Summary.count s > 0 then Stats.Summary.add sum (Stats.Summary.mean s))
    res.rtt_to_source;
  mean_or_zero sum

let summary pairs =
  let rows =
    List.map
      (fun p ->
        let s = avg_norm_recovery p.srm and c = avg_norm_recovery p.cesrm in
        let reduction = if s > 0. then 100. *. (1. -. (c /. s)) else 0. in
        let retx =
          pct
            (Net.Cost.retransmission_overhead p.cesrm.cost)
            (Net.Cost.retransmission_overhead p.srm.cost)
        in
        let succ =
          if p.cesrm.exp_requests = 0 then 0.
          else 100. *. float_of_int p.cesrm.exp_replies /. float_of_int p.cesrm.exp_requests
        in
        [
          p.row.Mtrace.Meta.name;
          Printf.sprintf "%.2f" s;
          Printf.sprintf "%.2f" c;
          Printf.sprintf "%.0f%%" reduction;
          Printf.sprintf "%.0f%%" retx;
          Printf.sprintf "%.0f%%" succ;
          string_of_int p.srm.unrecovered;
          string_of_int p.cesrm.unrecovered;
        ])
      pairs
  in
  "Headline comparison (paper: recovery time reduced ~50%, retransmissions 30-80% of SRM's)\n"
  ^ Stats.Table.render
      ~header:
        [
          "trace";
          "SRM rec(RTT)";
          "CESRM rec(RTT)";
          "reduction";
          "retx vs SRM";
          "exp success";
          "unrec SRM";
          "unrec CESRM";
        ]
      ~rows

(* -- CSV export ------------------------------------------------------ *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_csv path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," (List.map csv_escape header) ^ "\n");
      List.iter
        (fun row -> output_string oc (String.concat "," (List.map csv_escape row) ^ "\n"))
        rows)

let write_csvs ~dir pairs =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let in_dir name = Filename.concat dir name in
  (* figure 1: one file across all traces *)
  write_csv (in_dir "figure1.csv")
    ~header:[ "trace"; "receiver"; "srm_rtt"; "cesrm_rtt" ]
    ~rows:
      (List.concat_map
         (fun p ->
           List.map
             (fun d ->
               [
                 p.row.Mtrace.Meta.name;
                 string_of_int d.node;
                 Printf.sprintf "%.4f" d.srm_value;
                 Printf.sprintf "%.4f" d.cesrm_value;
               ])
             (figure1_data p))
         pairs);
  write_csv (in_dir "figure2.csv")
    ~header:[ "trace"; "receiver"; "gap_rtt" ]
    ~rows:
      (List.concat_map
         (fun p ->
           List.map
             (fun (node, gap) ->
               [ p.row.Mtrace.Meta.name; string_of_int node; Printf.sprintf "%.4f" gap ])
             (figure2_data p))
         pairs);
  write_csv (in_dir "figure3.csv")
    ~header:[ "trace"; "member"; "srm_rqst_mc"; "cesrm_rqst_mc"; "cesrm_erqst_uc" ]
    ~rows:
      (List.concat_map
         (fun p ->
           List.map
             (fun d ->
               [
                 p.row.Mtrace.Meta.name;
                 string_of_int d.rq_node;
                 string_of_int d.srm_rqst;
                 string_of_int d.cesrm_rqst;
                 string_of_int d.cesrm_exp_rqst;
               ])
             (figure3_data p))
         pairs);
  write_csv (in_dir "figure4.csv")
    ~header:[ "trace"; "member"; "srm_repl"; "cesrm_repl"; "cesrm_erepl" ]
    ~rows:
      (List.concat_map
         (fun p ->
           List.map
             (fun d ->
               [
                 p.row.Mtrace.Meta.name;
                 string_of_int d.rp_node;
                 string_of_int d.srm_repl;
                 string_of_int d.cesrm_repl;
                 string_of_int d.cesrm_exp_repl;
               ])
             (figure4_data p))
         pairs);
  write_csv (in_dir "figure5a.csv")
    ~header:[ "trace"; "expedited_success_pct" ]
    ~rows:(List.map (fun (name, pct) -> [ name; Printf.sprintf "%.2f" pct ]) (figure5a_data pairs));
  write_csv (in_dir "figure5b.csv")
    ~header:[ "trace"; "retrans_pct"; "control_mc_pct"; "control_uc_pct" ]
    ~rows:
      (List.map
         (fun o ->
           [
             o.trace_name;
             Printf.sprintf "%.2f" o.retrans_pct;
             Printf.sprintf "%.2f" o.control_mc_pct;
             Printf.sprintf "%.2f" o.control_uc_pct;
           ])
         (figure5b_data pairs));
  write_csv (in_dir "summary.csv")
    ~header:
      [ "trace"; "srm_rtt"; "cesrm_rtt"; "reduction_pct"; "retx_vs_srm_pct"; "exp_success_pct" ]
    ~rows:
      (List.map
         (fun p ->
           let s = avg_norm_recovery p.srm and c = avg_norm_recovery p.cesrm in
           [
             p.row.Mtrace.Meta.name;
             Printf.sprintf "%.4f" s;
             Printf.sprintf "%.4f" c;
             Printf.sprintf "%.2f" (if s > 0. then 100. *. (1. -. (c /. s)) else 0.);
             Printf.sprintf "%.2f"
               (pct
                  (Net.Cost.retransmission_overhead p.cesrm.cost)
                  (Net.Cost.retransmission_overhead p.srm.cost));
             Printf.sprintf "%.2f"
               (if p.cesrm.exp_requests = 0 then 0.
                else 100. *. float_of_int p.cesrm.exp_replies /. float_of_int p.cesrm.exp_requests);
           ])
         pairs)
