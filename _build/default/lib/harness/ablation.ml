let mean_or_zero s = if Stats.Summary.count s = 0 then 0. else Stats.Summary.mean s

let avg_norm (res : Runner.result) =
  let sum = Stats.Summary.create () in
  List.iter
    (fun (node, _) ->
      let s = Runner.normalized_recovery res ~node ~filter:(fun _ -> true) in
      if Stats.Summary.count s > 0 then Stats.Summary.add sum (Stats.Summary.mean s))
    res.rtt_to_source;
  mean_or_zero sum

let success_pct (res : Runner.result) =
  if res.exp_requests = 0 then 0.
  else 100. *. float_of_int res.exp_replies /. float_of_int res.exp_requests

let run_config ?setup ~config trace attribution =
  Runner.run ?setup (Runner.Cesrm_protocol config) trace attribution

let prepared ?n_packets row =
  let gen = Mtrace.Generator.synthesize ?n_packets row in
  let trace = gen.Mtrace.Generator.trace in
  (trace, Runner.attribution_of_trace trace)

let policies ?(n_packets = 4000) rows =
  let rows_out =
    List.concat_map
      (fun row ->
        let trace, att = prepared ~n_packets row in
        List.map
          (fun policy ->
            let config = { Cesrm.Host.default_config with policy } in
            let res = run_config ~config trace att in
            [
              row.Mtrace.Meta.name;
              Cesrm.Policy.name policy;
              Printf.sprintf "%.2f" (avg_norm res);
              Printf.sprintf "%.0f%%" (success_pct res);
              string_of_int res.exp_requests;
              string_of_int res.unrecovered;
            ])
          Cesrm.Policy.all)
      rows
  in
  "Ablation — expeditious pair selection policy (paper: most-recent wins; Section 4.3)\n"
  ^ Stats.Table.render
      ~header:[ "trace"; "policy"; "avg rec (RTT)"; "exp success"; "erqst"; "unrecovered" ]
      ~rows:rows_out

let cache_sizes ?(n_packets = 4000) ?(sizes = [ 1; 2; 4; 8; 16; 32 ]) row =
  let trace, att = prepared ~n_packets row in
  let rows_out =
    List.map
      (fun cache_capacity ->
        let config = { Cesrm.Host.default_config with cache_capacity } in
        let res = run_config ~config trace att in
        [
          string_of_int cache_capacity;
          Printf.sprintf "%.2f" (avg_norm res);
          Printf.sprintf "%.0f%%" (success_pct res);
          string_of_int res.exp_requests;
        ])
      sizes
  in
  Printf.sprintf
    "Ablation — cache capacity on %s (most-recent policy uses one entry; capacity only\n\
     matters to frequency-based policies)\n"
    row.Mtrace.Meta.name
  ^ Stats.Table.render ~header:[ "capacity"; "avg rec (RTT)"; "exp success"; "erqst" ] ~rows:rows_out

let reorder_delays ?(n_packets = 4000) ?(delays = [ 0.; 0.01; 0.04; 0.1 ]) row =
  let trace, att = prepared ~n_packets row in
  let rows_out =
    List.map
      (fun reorder_delay ->
        let config = { Cesrm.Host.default_config with reorder_delay } in
        let res = run_config ~config trace att in
        let exp =
          Stats.Recovery.latency_summary res.recoveries ~filter:(fun r -> r.Stats.Recovery.expedited)
        in
        [
          Printf.sprintf "%.0f ms" (1000. *. reorder_delay);
          Printf.sprintf "%.2f" (avg_norm res);
          Printf.sprintf "%.3f s" (mean_or_zero exp);
          Printf.sprintf "%.0f%%" (success_pct res);
        ])
      delays
  in
  Printf.sprintf
    "Ablation — REORDER-DELAY on %s (Eq. 2: expedited latency = REORDER-DELAY + RTT;\n\
     the paper uses 0 since its traces carry no reordering)\n"
    row.Mtrace.Meta.name
  ^ Stats.Table.render
      ~header:[ "reorder-delay"; "avg rec (RTT)"; "expedited mean"; "exp success" ]
      ~rows:rows_out

let link_delays ?(n_packets = 4000) ?(delays = [ 0.010; 0.020; 0.030 ]) row =
  let trace, att = prepared ~n_packets row in
  let rows_out =
    List.map
      (fun link_delay ->
        let setup = { Runner.default_setup with link_delay } in
        let srm = Runner.run ~setup Runner.Srm_protocol trace att in
        let cesrm = run_config ~setup ~config:Cesrm.Host.default_config trace att in
        let reduction =
          if avg_norm srm > 0. then 100. *. (1. -. (avg_norm cesrm /. avg_norm srm)) else 0.
        in
        [
          Printf.sprintf "%.0f ms" (1000. *. link_delay);
          Printf.sprintf "%.2f" (avg_norm srm);
          Printf.sprintf "%.2f" (avg_norm cesrm);
          Printf.sprintf "%.0f%%" reduction;
        ])
      delays
  in
  Printf.sprintf
    "Ablation — link delay on %s (paper Section 4.3: results with 10/20/30 ms were very similar)\n"
    row.Mtrace.Meta.name
  ^ Stats.Table.render
      ~header:[ "link delay"; "SRM rec (RTT)"; "CESRM rec (RTT)"; "reduction" ]
      ~rows:rows_out

let lossy_recovery ?(n_packets = 4000) rows =
  let rows_out =
    List.concat_map
      (fun row ->
        let trace, att = prepared ~n_packets row in
        List.map
          (fun lossy ->
            let setup = { Runner.default_setup with lossy_recovery = lossy } in
            let srm = Runner.run ~setup Runner.Srm_protocol trace att in
            let cesrm = run_config ~setup ~config:Cesrm.Host.default_config trace att in
            let reduction =
              if avg_norm srm > 0. then 100. *. (1. -. (avg_norm cesrm /. avg_norm srm)) else 0.
            in
            [
              row.Mtrace.Meta.name;
              (if lossy then "lossy" else "lossless");
              Printf.sprintf "%.2f" (avg_norm srm);
              Printf.sprintf "%.2f" (avg_norm cesrm);
              Printf.sprintf "%.0f%%" reduction;
              string_of_int (srm.unrecovered + cesrm.unrecovered);
            ])
          [ false; true ])
      rows
  in
  "Ablation — lossy recovery (recovery packets dropped per estimated link rates; paper\n\
   Section 4.3 reports slightly larger latencies and similar improvements)\n"
  ^ Stats.Table.render
      ~header:[ "trace"; "recovery"; "SRM rec"; "CESRM rec"; "reduction"; "unrecovered" ]
      ~rows:rows_out

let router_assist ?(n_packets = 4000) rows =
  let rows_out =
    List.map
      (fun row ->
        let trace, att = prepared ~n_packets row in
        let plain = run_config ~config:Cesrm.Host.default_config trace att in
        let assisted =
          run_config
            ~config:{ Cesrm.Host.default_config with router_assist = true }
            trace att
        in
        let crossings_per_reply (res : Runner.result) =
          let replies =
            Net.Cost.sends res.cost Net.Cost.Exp_reply Net.Cost.Multicast
            + Net.Cost.sends res.cost Net.Cost.Exp_reply Net.Cost.Subcast
          in
          if replies = 0 then 0.
          else
            float_of_int (Net.Cost.total_crossings res.cost Net.Cost.Exp_reply)
            /. float_of_int replies
        in
        [
          row.Mtrace.Meta.name;
          Printf.sprintf "%.1f" (crossings_per_reply plain);
          Printf.sprintf "%.1f" (crossings_per_reply assisted);
          Printf.sprintf "%.2f" (avg_norm plain);
          Printf.sprintf "%.2f" (avg_norm assisted);
          Printf.sprintf "%.0f%%" (success_pct assisted);
        ])
      rows
  in
  "Extension — router-assisted local recovery (Section 3.3): turning-point subcast shrinks\n\
   the links crossed per expedited retransmission without hurting recovery\n"
  ^ Stats.Table.render
      ~header:
        [
          "trace";
          "xings/erepl (mc)";
          "xings/erepl (RA)";
          "rec (RTT) mc";
          "rec (RTT) RA";
          "RA success";
        ]
      ~rows:rows_out

let reordering ?(n_packets = 4000) row =
  let trace, att = prepared ~n_packets row in
  let jitter = 2.5 *. Mtrace.Trace.period trace in
  let rows_out =
    List.concat_map
      (fun data_jitter ->
        List.filter_map
          (fun reorder_delay ->
            if data_jitter = 0. && reorder_delay > 0. then None
            else begin
              let setup = { Runner.default_setup with data_jitter } in
              let config = { Cesrm.Host.default_config with reorder_delay } in
              let res = run_config ~setup ~config trace att in
              (* Spurious expedited requests show up as excess requests
                 relative to truly lossy packets. *)
              Some
                [
                  Printf.sprintf "%.0f ms" (1000. *. data_jitter);
                  Printf.sprintf "%.0f ms" (1000. *. reorder_delay);
                  string_of_int res.exp_requests;
                  string_of_int (List.length (Mtrace.Trace.lossy_packets trace));
                  Printf.sprintf "%.2f" (avg_norm res);
                  string_of_int res.unrecovered;
                ]
            end)
          [ 0.; jitter *. 2. ])
      [ 0.; jitter ]
  in
  Printf.sprintf
    "Ablation — packet reordering on %s (send jitter %.0f ms vs period %.0f ms): without\n\
     REORDER-DELAY, reordering-induced transient gaps fire spurious expedited requests\n"
    row.Mtrace.Meta.name (1000. *. jitter)
    (1000. *. Mtrace.Trace.period trace)
  ^ Stats.Table.render
      ~header:
        [ "jitter"; "reorder-delay"; "erqst"; "lossy packets"; "avg rec (RTT)"; "unrecovered" ]
      ~rows:rows_out

let lossy_sessions ?(n_packets = 4000) rows =
  let rows_out =
    List.concat_map
      (fun row ->
        let trace, att = prepared ~n_packets row in
        List.map
          (fun lossy ->
            let setup = { Runner.default_setup with lossy_sessions = lossy } in
            let srm = Runner.run ~setup Runner.Srm_protocol trace att in
            let cesrm = run_config ~setup ~config:Cesrm.Host.default_config trace att in
            let reduction =
              if avg_norm srm > 0. then 100. *. (1. -. (avg_norm cesrm /. avg_norm srm)) else 0.
            in
            [
              row.Mtrace.Meta.name;
              (if lossy then "lossy" else "lossless");
              Printf.sprintf "%.2f" (avg_norm srm);
              Printf.sprintf "%.2f" (avg_norm cesrm);
              Printf.sprintf "%.0f%%" reduction;
              string_of_int (srm.unrecovered + cesrm.unrecovered);
            ])
          [ false; true ])
      rows
  in
  "Ablation — lossy session exchange (the paper assumes sessions are lossless; dropping\n\
   them per link rates slows distance estimation slightly but changes nothing else)\n"
  ^ Stats.Table.render
      ~header:[ "trace"; "sessions"; "SRM rec"; "CESRM rec"; "reduction"; "unrecovered" ]
      ~rows:rows_out

let adaptive_timers ?(n_packets = 4000) rows =
  let rows_out =
    List.concat_map
      (fun row ->
        let trace, att = prepared ~n_packets row in
        let lossy = List.length (Mtrace.Trace.lossy_packets trace) in
        List.map
          (fun adaptive ->
            let setup =
              { Runner.default_setup with params = { Srm.Params.default with adaptive } }
            in
            let res = Runner.run ~setup Runner.Srm_protocol trace att in
            let replies = Stats.Counters.total res.counters Stats.Counters.Repl in
            [
              row.Mtrace.Meta.name;
              (if adaptive then "adaptive" else "fixed");
              Printf.sprintf "%.2f" (avg_norm res);
              string_of_int (Stats.Counters.total res.counters Stats.Counters.Rqst);
              string_of_int replies;
              Printf.sprintf "%.2f" (float_of_int replies /. float_of_int (max 1 lossy));
              string_of_int res.unrecovered;
            ])
          [ false; true ])
      rows
  in
  "Extension — adaptive SRM timers (Floyd et al. §VI): per-host C/D adjustment trades\n\
   duplicate suppression against latency dynamically\n"
  ^ Stats.Table.render
      ~header:
        [ "trace"; "timers"; "avg rec (RTT)"; "rqst"; "repl"; "repl/event"; "unrecovered" ]
      ~rows:rows_out

let scaling ?(n_packets = 3000) ?(sizes = [ 8; 12; 16; 24; 32 ]) () =
  let rows_out =
    List.map
      (fun n_receivers ->
        (* A synthetic Table-1-like row: depth grows slowly with group
           size, loss volume keeps a 5% per-receiver rate. *)
        let depth = max 3 (min 8 (2 + (n_receivers / 6))) in
        let row =
          {
            Mtrace.Meta.index = 0;
            name = Printf.sprintf "scale-%d" n_receivers;
            n_receivers;
            tree_depth = depth;
            period_ms = 80;
            duration_s = n_packets * 80 / 1000;
            n_packets;
            n_losses = int_of_float (0.05 *. float_of_int (n_packets * n_receivers));
          }
        in
        let trace, att = prepared ~n_packets row in
        let events = List.length (Mtrace.Trace.lossy_packets trace) in
        let srm = Runner.run Runner.Srm_protocol trace att in
        let cesrm = run_config ~config:Cesrm.Host.default_config trace att in
        let per_event crossings = float_of_int crossings /. float_of_int (max 1 events) in
        [
          string_of_int n_receivers;
          string_of_int depth;
          Printf.sprintf "%.2f" (avg_norm srm);
          Printf.sprintf "%.2f" (avg_norm cesrm);
          Printf.sprintf "%.0f" (per_event (Net.Cost.retransmission_overhead srm.cost));
          Printf.sprintf "%.0f" (per_event (Net.Cost.retransmission_overhead cesrm.cost));
          Printf.sprintf "%.0f%%"
            (100.
            *. float_of_int (Net.Cost.retransmission_overhead cesrm.cost)
            /. float_of_int (max 1 (Net.Cost.retransmission_overhead srm.cost)));
          string_of_int (srm.unrecovered + cesrm.unrecovered);
        ])
      sizes
  in
  "Extension — group-size scaling: CESRM's latency and retransmission advantage holds as\n\
   the group grows (SRM's reply implosion worsens with more potential repliers)\n"
  ^ Stats.Table.render
      ~header:
        [
          "receivers";
          "depth";
          "SRM rec (RTT)";
          "CESRM rec (RTT)";
          "SRM retx/event";
          "CESRM retx/event";
          "retx ratio";
          "unrecovered";
        ]
      ~rows:rows_out


let heterogeneous ?(n_packets = 4000) rows =
  let rows_out =
    List.concat_map
      (fun row ->
        let trace, att = prepared ~n_packets row in
        List.map
          (fun hetero ->
            let setup = { Runner.default_setup with heterogeneous_delays = hetero } in
            let srm = Runner.run ~setup Runner.Srm_protocol trace att in
            let cesrm = run_config ~setup ~config:Cesrm.Host.default_config trace att in
            let reduction =
              if avg_norm srm > 0. then 100. *. (1. -. (avg_norm cesrm /. avg_norm srm)) else 0.
            in
            [
              row.Mtrace.Meta.name;
              (if hetero then "log-uniform" else "uniform 20ms");
              Printf.sprintf "%.2f" (avg_norm srm);
              Printf.sprintf "%.2f" (avg_norm cesrm);
              Printf.sprintf "%.0f%%" reduction;
              string_of_int (srm.unrecovered + cesrm.unrecovered);
            ])
          [ false; true ])
      rows
  in
  "Ablation — heterogeneous link delays (the paper uses one uniform delay; drawing\n\
   per-link delays log-uniformly in [6.7, 60] ms leaves the comparison intact)\n"
  ^ Stats.Table.render
      ~header:[ "trace"; "delays"; "SRM rec"; "CESRM rec"; "reduction"; "unrecovered" ]
      ~rows:rows_out
