lib/core/proto.ml: Array Host List Net Sim Srm Stats
