lib/core/cache.mli:
