lib/core/policy.mli: Cache
