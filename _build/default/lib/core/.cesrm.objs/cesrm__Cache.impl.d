lib/core/cache.ml: Hashtbl List Option
