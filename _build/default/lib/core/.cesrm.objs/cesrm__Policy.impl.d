lib/core/policy.ml: Cache List
