lib/core/proto.mli: Host Net Srm Stats
