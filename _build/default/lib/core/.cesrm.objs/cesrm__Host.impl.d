lib/core/host.ml: Cache Hashtbl Net Option Policy Sim Srm Stats
