lib/core/host.mli: Cache Net Policy Srm Stats
