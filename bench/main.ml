(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (Section 4) plus the Section 3.4 analysis and the
   ablations listed in DESIGN.md, then runs Bechamel micro-benchmarks
   (one per experiment) on scaled-down inputs.

   Usage:
     dune exec bench/main.exe                 (default: 6000 packets/trace)
     dune exec bench/main.exe -- --full       (full Table 1 packet counts)
     dune exec bench/main.exe -- --packets N
     dune exec bench/main.exe -- --sections fig1,fig5b
     dune exec bench/main.exe -- --jobs 8     (shard the per-trace pair
                                               runs across 8 forked
                                               workers; results identical)
     dune exec bench/main.exe -- --no-bechamel
     dune exec bench/main.exe -- --json FILE  (machine-readable timings)
     dune exec bench/main.exe -- --baseline FILE  (diff timings against a
                                               previous --json file; exits 1
                                               on deltas beyond thresholds)
     dune exec bench/main.exe -- --scale smoke|full  (synthetic scale
                                               scenarios instead of the trace
                                               reproduction; see below)
     dune exec bench/main.exe -- --scale full --shards 4  (additionally run
                                               each scale leg sharded over 4
                                               conservative PDES workers and
                                               report events/sec and speedup
                                               vs the serial reference)
     dune exec bench/main.exe -- --scale cache (the retention-policy gate:
                                               both adversarial cache-thrash
                                               scenarios at 256 receivers,
                                               one cesrm leg per retention
                                               scheme next to the SRM and
                                               1-entry floors)
     dune exec bench/main.exe -- --cache-policy SCHEME  (override the CESRM
                                               replier-cache retention scheme
                                               of the cesrm/cesrm-dom legs in
                                               the other scale profiles)
     dune exec bench/main.exe -- --scale smoke --domains  (add an
                                               srm-dom/cesrm-dom leg pair per
                                               scenario: hierarchical local
                                               recovery domains (Rdomain.Auto)
                                               next to their flat twins, for
                                               the domains-vs-flat makespan
                                               comparison)

   The extra section "smoke" (one SRM+CESRM pair on the smallest
   trace) runs only when named explicitly; `dune runtest` uses it as a
   hot-path regression canary.

   --scale replaces the reproduction entirely: it runs SRM+CESRM legs
   over synthetic Mtrace.Scale scenarios (256–10 000 receivers) and
   emits one self-describing JSON document per run. The "smoke"
   profile (all three tree families at 256 receivers) is the CI
   regression gate; the "full" profile (families at 256/1024 plus
   bounded-fanout at 4096 and 10 000) is the scaling measurement.
   Either way every machine-dependent number (wall, allocation,
   events/sec) lives in a "machine" sub-object — a side channel the
   --baseline diff skips entirely — so the committed smoke baseline
   gates only deterministic simulation counters while staying fully
   machine-readable. Scale rows pin their own packet count (200), so
   --packets is ignored here.

   --steady smoke|full runs the streaming-execution profile instead
   (lib/steady): a CESRM leg over a scale scenario with a finite
   state-retirement window, asserting a hard peak-heap ceiling and
   bounded heap growth, plus (smoke) a byte-identity check against an
   infinite-window run of the same streaming trace. "smoke" is
   SCALE-bf-512 at 50k packets; "full" is SCALE-bf-1000 at 10^6
   packets — the million-packet constant-memory measurement. *)

let sections_filter = ref None

let n_packets = ref (Some 6000)

let with_bechamel = ref true

let csv_dir = ref None

let json_file = ref None

let baseline_file = ref None

let jobs = ref 1

let shards = ref 1

let scale_profile = ref None

let steady_profile = ref None

let with_domains = ref false

let cache_policy = ref None

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        n_packets := None;
        go rest
    | "--packets" :: n :: rest ->
        n_packets := Some (int_of_string n);
        go rest
    | "--sections" :: s :: rest ->
        sections_filter := Some (String.split_on_char ',' s);
        go rest
    | "--no-bechamel" :: rest ->
        with_bechamel := false;
        go rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        go rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        go rest
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        go rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        go rest
    | "--shards" :: n :: rest ->
        shards := int_of_string n;
        go rest
    | "--scale" :: p :: rest ->
        if p <> "smoke" && p <> "full" && p <> "domains" && p <> "cache" then
          failwith ("unknown --scale profile: " ^ p ^ " (expected smoke, full, domains or cache)");
        scale_profile := Some p;
        if p = "domains" then with_domains := true;
        go rest
    | "--steady" :: p :: rest ->
        if p <> "smoke" && p <> "full" then
          failwith ("unknown --steady profile: " ^ p ^ " (expected smoke or full)");
        steady_profile := Some p;
        go rest
    | "--domains" :: rest ->
        with_domains := true;
        go rest
    | "--cache-policy" :: name :: rest ->
        (match Cesrm.Retention.of_name name with
        | Some r -> cache_policy := Some r
        | None ->
            failwith
              (Printf.sprintf "unknown --cache-policy %S (expected %s)" name
                 Cesrm.Retention.names_doc));
        go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv))

let want name =
  match !sections_filter with None -> true | Some names -> List.mem name names

let explicitly_wanted name =
  match !sections_filter with None -> false | Some names -> List.mem name names

(* Per-section wall times and Bechamel estimates, accumulated for the
   --json report (newest-first; reversed on output). *)
let section_times : (string * float) list ref = ref []

let bechamel_estimates : (string * float) list ref = ref []

let section name body =
  if want name then begin
    Printf.printf "================================================================\n";
    Printf.printf "== %s\n" name;
    Printf.printf "================================================================\n";
    let t0 = Unix.gettimeofday () in
    body ();
    section_times := (name, Unix.gettimeofday () -. t0) :: !section_times;
    print_newline ()
  end

(* The timing report is self-describing: a meta object records the git
   commit and the run parameters, so a stored --json file can later be
   interpreted (and compared via --baseline / `cesrm diff`) without
   knowing how it was produced. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then None else Some line
  with _ -> None

let meta_json () =
  let open Obs.Json in
  Obj
    [
      ("git_commit", match git_commit () with Some c -> Str c | None -> Null);
      ("packets", (match !n_packets with None -> Null | Some n -> int n));
      ( "sections_filter",
        match !sections_filter with None -> Null | Some l -> Str (String.concat "," l) );
      ("bechamel", Bool !with_bechamel);
      (* A string, not a number: job count affects wall time, never
         results, and must not be flagged by --baseline diffs. *)
      ("jobs", Str (string_of_int !jobs));
      (* Same convention: shard count is a runtime knob (PDES results
         are byte-identical to serial), so it must not be diffed. *)
      ("shards", Str (string_of_int !shards));
      ("scale_profile", match !scale_profile with None -> Null | Some p -> Str p);
      ("steady_profile", match !steady_profile with None -> Null | Some p -> Str p);
      ("argv", Str (String.concat " " (List.tl (Array.to_list Sys.argv))));
    ]

let json_doc ~total_wall_s =
  let open Obs.Json in
  let entry field (name, v) = Obj [ ("name", Str name); (field, Num v) ] in
  let meta = meta_json () in
  Obj
    [
      ("meta", meta);
      ("packets", (match !n_packets with None -> Null | Some n -> int n));
      ("total_wall_s", Num total_wall_s);
      ("sections", Arr (List.rev_map (entry "wall_s") !section_times));
      ("bechamel", Arr (List.rev_map (entry "ns_per_run") !bechamel_estimates));
    ]

let write_json ~file doc =
  Obs.Json.save ~pretty:true doc ~file;
  Printf.printf "(timings written to %s)\n" file

(* Machine-dependent numbers (wall, allocation, events/sec, heap) live
   under a "machine" key in the scale and steady reports: numeric for
   downstream tooling, never compared by --baseline — the simulation
   counters outside it are deterministic and gate exactly. *)
let is_machine_path path = List.mem "machine" (String.split_on_char '/' path)

(* Diff this run's timings against a stored --json file. Wall-clock
   noise is real, so the thresholds are loose: 25% relative and 50 ms
   absolute, enough to catch an injected slowdown but not scheduler
   jitter. Returns the number of flagged metrics (exit status). *)
let diff_against_baseline ~file doc =
  match Obs.Json.parse_file file with
  | Error msg ->
      Printf.eprintf "baseline %s: %s\n" file msg;
      1
  | Ok base ->
      let thresholds = { Obs.Diff.rel = 0.25; abs = 0.050 } in
      let entries =
        Obs.Diff.diff ~thresholds ~ignore:is_machine_path ~base ~current:doc ()
      in
      Printf.printf "---- vs baseline %s ----\n" file;
      print_string (Obs.Diff.render entries);
      List.length (Obs.Diff.flagged entries)

(* ------------------------------------------------------------------ *)

(* Running the per-trace SRM+CESRM pairs is the bench's dominant cost;
   with --jobs > 1 the rows are sharded across Exp.Pool's forked
   workers (each pair marshalled back whole), which scales the matrix
   with the core count while every downstream figure stays a pure
   extraction over the same in-order pair list. *)
let run_pairs rows =
  if !jobs > 1 && Exp.Pool.available && List.length rows > 1 then begin
    let rows = Array.of_list rows in
    Array.to_list
      (Exp.Pool.marshal_map ~jobs:!jobs
         (fun i -> Harness.Figures.run_pair ?n_packets:!n_packets rows.(i))
         (Array.length rows))
  end
  else List.map (fun row -> Harness.Figures.run_pair ?n_packets:!n_packets row) rows

let featured_pairs = lazy (run_pairs Mtrace.Meta.featured)

let all_pairs =
  lazy
    (let featured = Lazy.force featured_pairs in
     let find_featured row =
       List.find_opt
         (fun p -> p.Harness.Figures.row.Mtrace.Meta.name = row.Mtrace.Meta.name)
         featured
     in
     let rest =
       run_pairs (List.filter (fun row -> find_featured row = None) Mtrace.Meta.all)
     in
     List.map
       (fun row ->
         match find_featured row with
         | Some p -> p
         | None ->
             List.find
               (fun p -> p.Harness.Figures.row.Mtrace.Meta.name = row.Mtrace.Meta.name)
               rest)
       Mtrace.Meta.all)

let reproduction () =
  section "table1" (fun () -> print_string (Harness.Figures.table1 (Lazy.force all_pairs)));
  section "attribution" (fun () ->
      print_string (Harness.Figures.attribution_accuracy (Lazy.force all_pairs)));
  section "fig1" (fun () ->
      List.iter (fun p -> print_string (Harness.Figures.figure1 p)) (Lazy.force featured_pairs));
  section "fig2" (fun () ->
      List.iter (fun p -> print_string (Harness.Figures.figure2 p)) (Lazy.force featured_pairs));
  section "fig3" (fun () ->
      List.iter (fun p -> print_string (Harness.Figures.figure3 p)) (Lazy.force featured_pairs));
  section "fig4" (fun () ->
      List.iter (fun p -> print_string (Harness.Figures.figure4 p)) (Lazy.force featured_pairs));
  section "fig5a" (fun () -> print_string (Harness.Figures.figure5a (Lazy.force all_pairs)));
  section "fig5b" (fun () -> print_string (Harness.Figures.figure5b (Lazy.force all_pairs)));
  section "summary" (fun () -> print_string (Harness.Figures.summary (Lazy.force all_pairs)));
  section "analysis" (fun () -> print_string (Harness.Analysis.report (Lazy.force all_pairs)));
  match !csv_dir with
  | None -> ()
  | Some dir ->
      Harness.Figures.write_csvs ~dir (Lazy.force all_pairs);
      Printf.printf "(CSV figures written to %s/)\n\n" dir

let ablation_packets () = match !n_packets with Some n -> min n 4000 | None -> 4000

let ablations () =
  let n = ablation_packets () in
  let featured3 = [ Mtrace.Meta.nth 1; Mtrace.Meta.nth 7; Mtrace.Meta.nth 11 ] in
  section "ablation-policy" (fun () ->
      print_string (Harness.Ablation.policies ~n_packets:n featured3));
  section "ablation-cache" (fun () ->
      print_string (Harness.Ablation.cache_sizes ~n_packets:n (Mtrace.Meta.nth 1)));
  section "ablation-reorder" (fun () ->
      print_string (Harness.Ablation.reorder_delays ~n_packets:n (Mtrace.Meta.nth 1)));
  section "ablation-linkdelay" (fun () ->
      print_string (Harness.Ablation.link_delays ~n_packets:n (Mtrace.Meta.nth 7)));
  section "ablation-lossy" (fun () ->
      print_string
        (Harness.Ablation.lossy_recovery ~n_packets:n [ Mtrace.Meta.nth 1; Mtrace.Meta.nth 9 ]));
  section "ablation-router-assist" (fun () ->
      print_string (Harness.Ablation.router_assist ~n_packets:n featured3));
  section "ablation-reordering" (fun () ->
      print_string (Harness.Ablation.reordering ~n_packets:n (Mtrace.Meta.nth 1)));
  section "ablation-lossy-sessions" (fun () ->
      print_string (Harness.Ablation.lossy_sessions ~n_packets:n [ Mtrace.Meta.nth 9 ]));
  section "ablation-adaptive" (fun () ->
      print_string
        (Harness.Ablation.adaptive_timers ~n_packets:n [ Mtrace.Meta.nth 1; Mtrace.Meta.nth 11 ]));
  section "extension-churn" (fun () ->
      print_string (Harness.Churn.report ~n_packets:n (Mtrace.Meta.nth 7)));
  section "extension-scaling" (fun () ->
      print_string (Harness.Ablation.scaling ~n_packets:(min n 3000) ()));
  section "ablation-heterogeneous" (fun () ->
      print_string
        (Harness.Ablation.heterogeneous ~n_packets:n [ Mtrace.Meta.nth 1; Mtrace.Meta.nth 9 ]))

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let row = Mtrace.Meta.nth 4 (* the smallest trace *) in
  let small_gen = lazy (Mtrace.Generator.synthesize ~n_packets:800 row) in
  let small_trace = lazy (Lazy.force small_gen).Mtrace.Generator.trace in
  let small_att = lazy (Harness.Runner.attribution_of_trace (Lazy.force small_trace)) in
  let make name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"cesrm" ~fmt:"%s/%s"
      [
        make "table1:synthesize-trace" (fun () ->
            ignore (Mtrace.Generator.synthesize ~n_packets:400 row));
        make "sec4.2:yajnik+attribution" (fun () ->
            ignore (Harness.Runner.attribution_of_trace (Lazy.force small_trace)));
        make "fig1-4:srm-run" (fun () ->
            ignore
              (Harness.Runner.run Harness.Runner.Srm_protocol (Lazy.force small_trace)
                 (Lazy.force small_att)));
        make "fig1-4:cesrm-run" (fun () ->
            ignore
              (Harness.Runner.run (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
                 (Lazy.force small_trace) (Lazy.force small_att)));
        make "fig5:overhead-accounting" (fun () ->
            let c = Net.Cost.create () in
            for _ = 1 to 1000 do
              Net.Cost.record_crossing c Net.Cost.Reply Net.Cost.Multicast
            done;
            ignore (Net.Cost.retransmission_overhead c));
        make "substrate:event-heap-10k" (fun () ->
            let h = Sim.Heap.create ~cmp:Int.compare in
            for i = 10_000 downto 1 do
              Sim.Heap.add h i
            done;
            let acc = ref 0 in
            while not (Sim.Heap.is_empty h) do
              acc := !acc + Sim.Heap.pop_exn h
            done;
            ignore !acc);
        make "substrate:gilbert-50k" (fun () ->
            let model = Mtrace.Gilbert.of_marginal ~loss_rate:0.05 ~mean_burst:2.5 in
            ignore (Mtrace.Gilbert.run model (Sim.Rng.create 7L) 50_000));
        make "substrate:cache-churn" (fun () ->
            let cache = Cesrm.Cache.create ~capacity:16 () in
            for i = 1 to 1_000 do
              ignore
                (Cesrm.Cache.note_reply cache
                   {
                     Cesrm.Cache.seq = i;
                     requestor = i mod 7;
                     d_qs = float_of_int (i mod 5) /. 10.;
                     replier = i mod 11;
                     d_rq = float_of_int (i mod 3) /. 10.;
                     turning_point = None;
                   })
            done;
            ignore (Cesrm.Policy.choose Cesrm.Policy.Most_frequent cache));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with Some [ e ] -> e | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  bechamel_estimates := List.rev_append estimates !bechamel_estimates;
  let rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%10.3f ms/run" (ns /. 1e6) ]) estimates
  in
  print_string (Stats.Table.render ~header:[ "benchmark"; "time" ] ~rows)

(* One SRM+CESRM pair on the smallest trace: a fast end-to-end pass
   over the simulator hot path, used by the `dune runtest` smoke rule.
   Opt-in only (never part of a default full run). *)
let smoke () =
  section "smoke" (fun () ->
      let pair = Harness.Figures.run_pair ?n_packets:!n_packets (Mtrace.Meta.nth 4) in
      Printf.printf
        "trace %s: srm detected=%d unrecovered=%d, cesrm detected=%d unrecovered=%d audit=%d\n"
        pair.Harness.Figures.row.Mtrace.Meta.name pair.srm.detected pair.srm.unrecovered
        pair.cesrm.detected pair.cesrm.unrecovered
        (pair.srm.audit_violations + pair.cesrm.audit_violations);
      if pair.srm.unrecovered <> 0 || pair.cesrm.unrecovered <> 0 then
        failwith "smoke: unrecovered losses";
      if pair.srm.audit_violations <> 0 || pair.cesrm.audit_violations <> 0 then
        failwith "smoke: audit violations")

(* --- Scale profiles (--scale smoke|full) --------------------------- *)

(* The smoke grid is every tree family at the smallest standard size —
   seconds of wall, enough to catch a scale-path regression in either
   protocol. The full grid adds the 1024-receiver row of each family
   and walks bounded-fanout (the paper-like random topology) up to
   10 000 receivers; star-of-stars and deep-chain are tree-shape
   extremes, so one large size each would measure the same hot path
   again at much higher cost. *)
let scale_scenarios = function
  | "smoke" -> [ "SCALE-bf-256"; "SCALE-ss-256"; "SCALE-dc-256" ]
  (* The hierarchical-recovery gate: the 1024-deep chain is where
     domains-vs-flat separates hardest (the last-receiver makespan is
     pipeline-deep without local recovery), and the profile forces the
     srm-dom/cesrm-dom legs on so the baseline pins both sides. *)
  | "domains" -> [ "SCALE-dc-1024" ]
  (* The retention-policy gate: both adversarial cache-thrash families
     at a cheap size. The profile replaces the plain cesrm leg with one
     leg per retention scheme (the paper's 1-entry cache first as the
     floor), so the baseline pins the policy x scenario expedited
     grid. *)
  | "cache" -> [ "SCALE-rh-256"; "SCALE-ps-256" ]
  | _ ->
      [
        "SCALE-bf-256";
        "SCALE-ss-256";
        "SCALE-dc-256";
        "SCALE-bf-1024";
        "SCALE-ss-1024";
        "SCALE-dc-1024";
        "SCALE-bf-4096";
        "SCALE-bf-10000";
      ]

let scale_family_name row =
  match Mtrace.Scale.family_of_name row.Mtrace.Meta.name with
  | Some (Mtrace.Scale.Bounded_fanout _) -> "bounded-fanout"
  | Some (Mtrace.Scale.Star_of_stars _) -> "star-of-stars"
  | Some Mtrace.Scale.Deep_chain -> "deep-chain"
  | Some (Mtrace.Scale.Rotating_hot _) -> "rotating-hot"
  | Some (Mtrace.Scale.Phase_shift _) -> "phase-shift"
  | None -> "trace"

(* One protocol leg on one scale row, reduced to the JSON the report
   keeps. Simulation counters are deterministic (fixed seed, pure
   OCaml), so they are numbers the --baseline diff compares exactly;
   wall, allocation and events/sec depend on the machine, so they go
   in the leg's "machine" sub-object — numeric, but excluded from the
   diff by [is_machine_path]. *)
(* One timed leg. [Gc.allocated_bytes] only sees this process, so
   [alloc_mb] is meaningful for serial runs; sharded legs take their
   allocation figure from the serial reference run instead. Events
   come from the registry: [sim/events_fired] is the engine's count in
   serial runs and the sum over workers in sharded ones (replicated
   source casts execute on every shard, so sharded totals exceed
   serial — it is an executed-events throughput, not a work metric). *)
let timed_leg ?shards ?domains protocol row =
  let registry = Obs.Registry.create () in
  let t0 = Unix.gettimeofday () in
  let alloc0 = Gc.allocated_bytes () in
  let r = Harness.Runner.run_leg ~seed:42L ~registry ?shards ?domains protocol row in
  let wall = Unix.gettimeofday () -. t0 in
  let alloc_mb = (Gc.allocated_bytes () -. alloc0) /. 1e6 in
  let events =
    match Obs.Registry.counter_value registry "sim/events_fired" with Some n -> n | None -> 0
  in
  (r, registry, wall, alloc_mb, events)

(* The deterministic face of a leg — what must be byte-equal between
   the serial engine and any sharded run of the same leg. *)
let leg_fingerprint (r : Harness.Runner.result) =
  ( r.Harness.Runner.detected,
    r.unrecovered,
    r.audit_violations,
    r.oracle_violations,
    r.counters,
    Net.Cost.retransmission_overhead r.cost,
    Net.Cost.control_overhead r.cost ~multicast:true,
    Net.Cost.control_overhead r.cost ~multicast:false,
    Stats.Recovery.count r.recoveries,
    Stats.Recovery.latency_summary r.recoveries )

let scale_leg name ?domains protocol row =
  (* The serial run is both the reference timing and (with --shards 1)
     the run itself; with --shards k > 1 a second, sharded run is
     timed against it and checked for result identity. *)
  let r, registry, serial_wall, alloc_mb, serial_events = timed_leg ?domains protocol row in
  let sharded =
    if !shards <= 1 then None
    else begin
      let r', _reg', wall', _alloc', events' = timed_leg ~shards:!shards ?domains protocol row in
      if leg_fingerprint r' <> leg_fingerprint r then
        failwith
          (Printf.sprintf "scale: sharded run of %s/%s diverges from serial"
             row.Mtrace.Meta.name name);
      Some (wall', events')
    end
  in
  let wall = match sharded with Some (w, _) -> w | None -> serial_wall in
  let events = match sharded with Some (_, e) -> e | None -> serial_events in
  let total k = Stats.Counters.total r.Harness.Runner.counters k in
  let latency = Stats.Recovery.latency_summary r.Harness.Runner.recoveries in
  (* Recovery-latency percentiles from the registry's online sketch
     (fed identically in records-on and records-off runs), and the
     last-receiver makespan — the figure hierarchical local recovery
     exists to improve. Both are deterministic, so the --baseline diff
     gates on them. *)
  let lat_hist = Obs.Registry.hist registry "recovery/latency_s" in
  let makespan = Stats.Recovery.makespan_summary r.Harness.Runner.recoveries in
  Printf.printf
    "%-16s %-10s wall %7.2f s  alloc %8.0f MB  detected %6d  unrecovered %d  mc-req %4d \
     uc-req %4d  repl %5d  exp-repl %4d  mkspan %6.3f/%6.3f s%s\n\
     %!"
    row.Mtrace.Meta.name name wall alloc_mb r.detected r.unrecovered
    (total Stats.Counters.Rqst) (total Stats.Counters.Exp_rqst) (total Stats.Counters.Repl)
    (total Stats.Counters.Exp_repl)
    (Stats.Summary.mean makespan) (Stats.Summary.max makespan)
    (match sharded with
    | Some _ -> Printf.sprintf "  speedup x%.2f (%d shards)" (serial_wall /. wall) !shards
    | None -> "");
  if r.Harness.Runner.unrecovered <> 0 then failwith ("scale: unrecovered losses in " ^ name);
  if r.Harness.Runner.audit_violations <> 0 then
    failwith ("scale: audit violations in " ^ name);
  let open Obs.Json in
  let machine =
    [
      ("wall_s", Num wall);
      ("alloc_mb", Num alloc_mb);
      ("events_per_s", Num (float_of_int events /. wall));
    ]
    @
    match sharded with
    | None -> []
    | Some (wall', _) ->
        [ ("serial_wall_s", Num serial_wall); ("speedup_vs_serial", Num (serial_wall /. wall')) ]
  in
  Obj
    ([
       ("name", Str name);
       ("detected", int r.detected);
       ("unrecovered", int r.unrecovered);
       ("audit_violations", int r.audit_violations);
       ("mc_requests", int (total Stats.Counters.Rqst));
       ("uc_requests", int (total Stats.Counters.Exp_rqst));
       ("replies", int (total Stats.Counters.Repl));
       ("expedited_replies", int (total Stats.Counters.Exp_repl));
       ("sessions", int (total Stats.Counters.Sess));
       ("retransmission_crossings", int (Net.Cost.retransmission_overhead r.cost));
       ("control_crossings_mc", int (Net.Cost.control_overhead r.cost ~multicast:true));
       ("control_crossings_uc", int (Net.Cost.control_overhead r.cost ~multicast:false));
       ("recovery_latency_mean_s", Num (Stats.Summary.mean latency));
       ("recovery_latency_p50_s", Num (Obs.Hist.p50 lat_hist));
       ("recovery_latency_p90_s", Num (Obs.Hist.p90 lat_hist));
       ("recovery_latency_p99_s", Num (Obs.Hist.p99 lat_hist));
       ("makespan_mean_s", Num (Stats.Summary.mean makespan));
       ("makespan_p99_s", Num (Stats.Summary.percentile makespan 0.99));
       ("makespan_max_s", Num (Stats.Summary.max makespan));
       ("machine", Obj machine);
     ]
    @ (match domains with None -> [] | Some _ -> [ ("domains", Str "auto") ])
    @ match sharded with None -> [] | Some _ -> [ ("shards", int !shards) ])

let run_scale profile =
  let open Obs.Json in
  List.map
    (fun scenario ->
      let row = Mtrace.Scale.find scenario in
      let cesrm_config =
        match !cache_policy with
        | None -> Cesrm.Host.default_config
        | Some retention -> { Cesrm.Host.default_config with retention }
      in
      let srm = scale_leg "srm" Harness.Runner.Srm_protocol row in
      let cesrm_legs =
        if profile <> "cache" then
          [ scale_leg "cesrm" (Harness.Runner.Cesrm_protocol cesrm_config) row ]
        else
          List.map
            (fun name ->
              let retention = Option.get (Cesrm.Retention.of_name name) in
              scale_leg ("cesrm@" ^ name)
                (Harness.Runner.Cesrm_protocol { Cesrm.Host.default_config with retention })
                row)
            [ "recent:1"; "recent"; "lru"; "ttl"; "hotspot" ]
      in
      (* --domains adds a hierarchical-recovery leg per protocol next
         to its flat twin, so one report carries the domains-vs-flat
         makespan comparison. *)
      let dom_legs =
        if not !with_domains then []
        else
          [
            scale_leg "srm-dom" ~domains:Rdomain.Auto Harness.Runner.Srm_protocol row;
            scale_leg "cesrm-dom" ~domains:Rdomain.Auto
              (Harness.Runner.Cesrm_protocol cesrm_config) row;
          ]
      in
      let legs = (srm :: cesrm_legs) @ dom_legs in
      Obj
        [
          ("name", Str scenario);
          ("family", Str (scale_family_name row));
          ("n_receivers", int row.Mtrace.Meta.n_receivers);
          ("n_packets", int row.Mtrace.Meta.n_packets);
          ("n_losses", int row.Mtrace.Meta.n_losses);
          ("legs", Arr legs);
        ])
    (scale_scenarios profile)

let scale_json_doc ~scenarios ~total_wall_s =
  let open Obs.Json in
  Obj
    [
      ("meta", meta_json ());
      ("machine", Obj [ ("total_wall_s", Num total_wall_s) ]);
      ("scale", Arr scenarios);
    ]

let scale_main profile =
  let t0 = Unix.gettimeofday () in
  Printf.printf "== scale (%s) ==\n%!" profile;
  let scenarios = run_scale profile in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "total wall time: %.1f s\n" total;
  let doc = scale_json_doc ~scenarios ~total_wall_s:total in
  Option.iter (fun file -> write_json ~file doc) !json_file;
  match !baseline_file with
  | None -> ()
  | Some file -> if diff_against_baseline ~file doc > 0 then exit 1

(* --- Steady profiles (--steady smoke|full) -------------------------- *)

(* Hard resource gates for the smoke profile. The ceiling is a few
   times the measured peak (so it trips on a state leak, not on GC
   jitter); the growth bound checks the retirement claim directly:
   once the retirement pipeline fills (floor a full window past
   zero), live heap must plateau — the mean over the last decile of
   steady-state epoch samples stays within tolerance of the first
   decile's. *)
let steady_smoke_heap_ceiling_mb = 1024.

let steady_smoke_heap_growth_max = 1.25

(* The full (million-packet) profile is the acceptance measurement:
   heap over the last decile of steady-state epochs must be within
   10% of the first decile's. The smoke bound is looser because 50k
   packets leave only ~25 steady samples and GC high-water jitter
   dominates. *)
let steady_full_heap_growth_max = 1.10

let steady_scenarios = function
  | "smoke" -> [ ("SCALE-bf-512", 50_000, 8_192) ]
  | _ -> [ ("SCALE-bf-1000", 1_000_000, 8_192) ]

(* One CESRM steady leg: streaming trace, finite retirement window,
   online metrics. Returns the result (for identity checks) plus the
   leg's JSON. *)
let steady_leg ~label ~row ~n_packets ~window =
  let registry = Obs.Registry.create () in
  let t0 = Unix.gettimeofday () in
  let alloc0 = Gc.allocated_bytes () in
  let steady = Steady.Config.windowed window in
  let r =
    Harness.Runner.run_leg ~seed:42L ~registry ~n_packets ~steady
      (Harness.Runner.Cesrm_protocol Cesrm.Host.default_config)
      row
  in
  let wall = Unix.gettimeofday () -. t0 in
  let alloc_bytes = Gc.allocated_bytes () -. alloc0 in
  let events =
    match Obs.Registry.counter_value registry "sim/events_fired" with Some n -> n | None -> 0
  in
  let c = Option.get r.Harness.Runner.retirement in
  let peak_heap_mb = float_of_int (Steady.Controller.peak_heap_words c) *. 8. /. 1e6 in
  let heap_growth = Steady.Controller.heap_growth c in
  let total k = Stats.Counters.total r.Harness.Runner.counters k in
  Printf.printf
    "%-16s %-8s wall %7.2f s  events/s %8.0f  bytes/event %6.0f  peak heap %6.1f MB  growth %s  \
     floor %d/%d in %d epochs  detected %d  unrecovered %d\n\
     %!"
    row.Mtrace.Meta.name label wall
    (float_of_int events /. wall)
    (alloc_bytes /. Float.max 1. (float_of_int events))
    peak_heap_mb
    (match heap_growth with Some g -> Printf.sprintf "x%.3f" g | None -> "-")
    (Steady.Controller.floor c) n_packets (Steady.Controller.ticks c) r.detected r.unrecovered;
  let samples = Steady.Controller.heap_samples c in
  if Array.length samples > 0 then begin
    Printf.printf "  heap/epoch (MB):";
    Array.iter (fun w -> Printf.printf " %.0f" (float_of_int w *. 8. /. 1e6)) samples;
    print_newline ()
  end;
  if r.Harness.Runner.unrecovered <> 0 then failwith ("steady: unrecovered losses in " ^ label);
  if r.Harness.Runner.audit_violations <> 0 then
    failwith ("steady: audit violations in " ^ label);
  let open Obs.Json in
  let json =
    Obj
      [
        ("name", Str label);
        ("window", int window);
        ("n_packets", int n_packets);
        ("detected", int r.detected);
        ("unrecovered", int r.unrecovered);
        ("audit_violations", int r.audit_violations);
        ("mc_requests", int (total Stats.Counters.Rqst));
        ("uc_requests", int (total Stats.Counters.Exp_rqst));
        ("replies", int (total Stats.Counters.Repl));
        ("expedited_replies", int (total Stats.Counters.Exp_repl));
        ("retirement_floor", int (Steady.Controller.floor c));
        ("epochs", int (Steady.Controller.ticks c));
        ( "machine",
          Obj
            [
              ("wall_s", Num wall);
              ("events_per_s", Num (float_of_int events /. wall));
              ("bytes_per_event", Num (alloc_bytes /. Float.max 1. (float_of_int events)));
              ("alloc_mb", Num (alloc_bytes /. 1e6));
              ("peak_heap_mb", Num peak_heap_mb);
              ( "heap_growth",
                match heap_growth with Some g -> Num g | None -> Null );
            ] );
      ]
  in
  (r, peak_heap_mb, heap_growth, json)

let steady_main profile =
  let t0 = Unix.gettimeofday () in
  Printf.printf "== steady (%s) ==\n%!" profile;
  let legs =
    List.concat_map
      (fun (scenario, n_packets, window) ->
        let row = Mtrace.Scale.find scenario in
        let r, peak_mb, growth, json =
          steady_leg ~label:"windowed" ~row ~n_packets ~window
        in
        let smoke = profile = "smoke" in
        if smoke then begin
          if peak_mb > steady_smoke_heap_ceiling_mb then
            failwith
              (Printf.sprintf "steady: peak heap %.1f MB exceeds the %.0f MB ceiling" peak_mb
                 steady_smoke_heap_ceiling_mb);
          Option.iter
            (fun g ->
              if g > steady_smoke_heap_growth_max then
                failwith
                  (Printf.sprintf "steady: heap grew x%.3f across epochs (max x%.2f)" g
                     steady_smoke_heap_growth_max))
            growth
        end
        else
          Option.iter
            (fun g ->
              if g > steady_full_heap_growth_max then
                failwith
                  (Printf.sprintf
                     "steady: heap grew x%.3f across epochs (acceptance max x%.2f)" g
                     steady_full_heap_growth_max))
            growth;
        (* Identity gate: a window of n_packets never retires anything
           (the stability floor stays at 0), so its run is the
           infinite-window reference over the same streaming trace.
           Retirement must be invisible to the protocol. *)
        let reference =
          if not smoke then []
          else begin
            let r', _, _, json' =
              steady_leg ~label:"infinite" ~row ~n_packets ~window:n_packets
            in
            if leg_fingerprint r' <> leg_fingerprint r then
              failwith
                (Printf.sprintf "steady: windowed run of %s diverges from infinite-window"
                   scenario);
            Printf.printf "identity: windowed == infinite-window (%s)\n%!" scenario;
            [ json' ]
          end
        in
        let open Obs.Json in
        [
          Obj
            [
              ("name", Str scenario);
              ("n_receivers", int row.Mtrace.Meta.n_receivers);
              ("legs", Arr (json :: reference));
            ];
        ])
      (steady_scenarios profile)
  in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "total wall time: %.1f s\n" total;
  let open Obs.Json in
  let doc =
    Obj
      [
        ("meta", meta_json ());
        ("machine", Obj [ ("total_wall_s", Num total) ]);
        ("steady", Arr legs);
      ]
  in
  Option.iter (fun file -> write_json ~file doc) !json_file;
  match !baseline_file with
  | None -> ()
  | Some file -> if diff_against_baseline ~file doc > 0 then exit 1

let () =
  parse_args ();
  match (!scale_profile, !steady_profile) with
  | Some profile, _ -> scale_main profile
  | None, Some profile -> steady_main profile
  | None, None ->
      let t0 = Unix.gettimeofday () in
      if explicitly_wanted "smoke" then smoke ();
      reproduction ();
      ablations ();
      if !with_bechamel then section "bechamel" bechamel;
      let total = Unix.gettimeofday () -. t0 in
      Printf.printf "total wall time: %.1f s\n" total;
      let doc = lazy (json_doc ~total_wall_s:total) in
      Option.iter (fun file -> write_json ~file (Lazy.force doc)) !json_file;
      (match !baseline_file with
      | None -> ()
      | Some file -> if diff_against_baseline ~file (Lazy.force doc) > 0 then exit 1)
