(* The cesrm command-line tool: synthesize traces, inspect them, run
   the link-loss inference pipeline, and run / compare the protocols. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_flag =
  let doc = "Enable protocol-level debug logging." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

(* -- shared arguments ------------------------------------------------ *)

let trace_name =
  let doc = "Table 1 trace name (e.g. RFV960419). Run `cesrm list` for the catalogue." in
  Arg.(value & opt (some string) None & info [ "t"; "trace" ] ~doc ~docv:"NAME")

let trace_file =
  let doc = "Read the trace from a file produced by `cesrm gen-trace`." in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~doc ~docv:"FILE")

let packets =
  let doc = "Truncate the trace to this many packets (default: the full published count)." in
  Arg.(value & opt (some int) None & info [ "n"; "packets" ] ~doc ~docv:"N")

let seed =
  let doc = "Generator seed (default: derived from the trace name)." in
  Arg.(value & opt (some int64) None & info [ "seed" ] ~doc ~docv:"SEED")

(* Trace names resolve through [Mtrace.Scale.find]: the 14 published
   rows by name, plus synthetic SCALE-<family>-<n> scenarios. Scale
   scenarios also carry the generator's ground-truth link states so
   [run]/[compare] can skip the attribution pass (quadratic-ish in
   receivers, pointless when the generator's own Gilbert chains are in
   hand). *)
let load_trace ~name ~file ~packets ~seed =
  match (name, file) with
  | None, None -> Error "one of --trace or --file is required"
  | Some _, Some _ -> Error "--trace and --file are mutually exclusive"
  | None, Some path -> Ok (Mtrace.Codec.load path, None)
  | Some n, None -> (
      match (try Some (Mtrace.Scale.find n) with Not_found -> None) with
      | None -> Error (Printf.sprintf "unknown trace %s" n)
      | Some row ->
          let gen = Mtrace.Generator.synthesize ?seed ?n_packets:packets row in
          let ground_truth =
            if Mtrace.Scale.family_of_name n <> None then
              Some gen.Mtrace.Generator.link_bad
            else None
          in
          Ok (gen.Mtrace.Generator.trace, ground_truth))

let trace_term =
  let combine name file packets seed =
    match load_trace ~name ~file ~packets ~seed with
    | Ok (t, _) -> `Ok t
    | Error msg -> `Error (false, msg)
  in
  Term.(ret (const combine $ trace_name $ trace_file $ packets $ seed))

(* Variant keeping the ground-truth link states for run/compare. *)
let trace_model_term =
  let combine name file packets seed =
    match load_trace ~name ~file ~packets ~seed with
    | Ok (t, ground) -> `Ok (t, ground)
    | Error msg -> `Error (false, msg)
  in
  Term.(ret (const combine $ trace_name $ trace_file $ packets $ seed))

(* -- list ------------------------------------------------------------ *)

let list_cmd =
  let scale_flag =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Also list the standard synthetic scale scenarios (SCALE-<family>-<n>; any size in \
             [8, 100000] is accepted by --trace, this lists the standard grid).")
  in
  let run scale =
    List.iter (fun r -> Format.printf "%a@." Mtrace.Meta.pp_row r) Mtrace.Meta.all;
    if scale then
      List.iter (fun r -> Format.printf "%a@." Mtrace.Meta.pp_row r) Mtrace.Scale.catalog
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List the 14 published trace rows (Table 1) and, with --scale, the scale scenarios.")
    Term.(const run $ scale_flag)

(* -- gen-trace -------------------------------------------------------- *)

let gen_trace_cmd =
  let output =
    let doc = "Output file (defaults to <NAME>.trace)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")
  in
  let run name packets seed output =
    match name with
    | None -> `Error (false, "--trace is required")
    | Some n -> (
        match (try Some (Mtrace.Scale.find n) with Not_found -> None) with
        | None -> `Error (false, Printf.sprintf "unknown trace %s" n)
        | Some row ->
            let gen = Mtrace.Generator.synthesize ?seed ?n_packets:packets row in
            let trace = gen.Mtrace.Generator.trace in
            let path = Option.value output ~default:(n ^ ".trace") in
            Mtrace.Codec.save trace path;
            Printf.printf "wrote %s: %s\n" path (Mtrace.Trace.summary trace);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "gen-trace"
       ~doc:"Synthesize a Table 1 trace (calibrated Gilbert losses) and save it.")
    Term.(ret (const run $ trace_name $ packets $ seed $ output))

(* -- info ------------------------------------------------------------- *)

let info_cmd =
  let run trace =
    Printf.printf "%s\n" (Mtrace.Trace.summary trace);
    Format.printf "tree:@.%a" Net.Tree.pp (Mtrace.Trace.tree trace);
    let s = Mtrace.Locality.trace trace in
    Format.printf "locality: %a@." Mtrace.Locality.pp_trace_stats s
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print a trace's tree, loss counts and locality metrics.")
    Term.(const run $ trace_term)

(* -- infer ------------------------------------------------------------ *)

let infer_cmd =
  let run trace =
    let tree = Mtrace.Trace.tree trace in
    let yajnik = Inference.Yajnik.estimate trace in
    let minc = Inference.Minc.estimate trace in
    let att = Inference.Attribution.infer ~rates:yajnik trace in
    let rows =
      List.map
        (fun l ->
          [
            string_of_int l;
            string_of_int (Net.Tree.parent tree l);
            Printf.sprintf "%.4f" yajnik.(l);
            Printf.sprintf "%.4f" minc.(l);
          ])
        (Array.to_list (Net.Tree.links tree))
    in
    print_string
      (Stats.Table.render ~header:[ "link(child)"; "parent"; "yajnik"; "minc" ] ~rows);
    let a95, a98 = Inference.Attribution.posterior_quantile_stats att in
    Printf.printf "attribution: %d distinct patterns; posterior>0.95 %.1f%%, >0.98 %.1f%%\n"
      (Inference.Attribution.distinct_patterns att)
      (100. *. a95) (100. *. a98)
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Estimate per-link loss rates (Yajnik and MINC) and attribute each loss.")
    Term.(const run $ trace_term)

(* -- run / compare ----------------------------------------------------- *)

let protocol_arg =
  let doc = "Protocol to run: srm, cesrm or lms." in
  Arg.(
    value
    & opt (enum [ ("srm", `Srm); ("cesrm", `Cesrm); ("lms", `Lms) ]) `Cesrm
    & info [ "p"; "protocol" ] ~doc)

let policy_arg =
  let doc = "CESRM pair-selection policy: most-recent, most-frequent, freq-recent or success-biased." in
  let policy_conv =
    Arg.conv
      ( (fun s ->
          match Cesrm.Policy.of_name s with
          | Some p -> Ok p
          | None -> Error (`Msg (Printf.sprintf "unknown policy %s" s))),
        fun ppf p -> Format.pp_print_string ppf (Cesrm.Policy.name p) )
  in
  Arg.(value & opt policy_conv Cesrm.Policy.Most_recent & info [ "policy" ] ~doc)

let retention_conv =
  Arg.conv
    ( (fun s ->
        match Cesrm.Retention.of_name s with
        | Some r -> Ok r
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown cache policy %s (expected %s)" s
                    Cesrm.Retention.names_doc))),
      fun ppf r -> Format.pp_print_string ppf (Cesrm.Retention.name r) )

let cache_policy_arg =
  let doc =
    "CESRM replier-cache retention scheme: recent (default, the paper's \
     keep-most-recent/evict-least-recent), lru (true least-recently-used), ttl[=horizon_s] \
     (entries expire after the virtual-time horizon, default 2 s), or hotspot[=half_life_s] \
     (exponential-decay (requestor,replier) score, default half-life 1 s). Append :K to cap \
     the cache at K entries, e.g. recent:1 for the paper's 1-entry baseline."
  in
  Arg.(value & opt (some retention_conv) None & info [ "cache-policy" ] ~doc ~docv:"SCHEME")

let router_assist_arg =
  Arg.(value & flag & info [ "router-assist" ] ~doc:"Enable turning-point subcast (Section 3.3).")

let lossy_arg =
  Arg.(value & flag & info [ "lossy-recovery" ] ~doc:"Drop recovery packets per link rates.")

let link_delay_arg =
  let doc = "Per-link one-way delay in milliseconds." in
  Arg.(value & opt float 20. & info [ "link-delay" ] ~doc ~docv:"MS")

let make_setup ~lossy ~link_delay_ms =
  { Harness.Runner.default_setup with lossy_recovery = lossy; link_delay = link_delay_ms /. 1000. }

let domains_arg =
  let doc =
    "Partition the tree into hierarchical local recovery domains of at most $(docv) members \
     each, with one designated replier per domain: requests and repairs stay scoped to the \
     requestor's domain and escalate to ancestor domains on unanswered rounds, and CESRM's \
     expedited cache prefers in-domain repliers. Bare flag auto-sizes the bound to \
     max(8, sqrt(group)); 0 disables (byte-identical to omitting the flag). SRM and CESRM \
     only; forces the serial engine."
  in
  Arg.(value & opt ~vopt:(Some (-1)) (some int) None & info [ "domains" ] ~doc ~docv:"MEMBERS")

let resolve_domains = function
  | None | Some 0 -> Ok None
  | Some (-1) -> Ok (Some Rdomain.Auto)
  | Some k when k > 0 -> Ok (Some (Rdomain.Max_members k))
  | Some k -> Error (Printf.sprintf "--domains: %d is not a valid member bound" k)

let shards_arg =
  let doc =
    "Shard the simulation across $(docv) forked PDES workers with conservative \
     synchronization; results are byte-identical to a serial run. Runs that cannot be \
     sharded (event tracing, LMS, lossy recovery/sessions, link-jitter faults) fall back \
     to the serial engine."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~doc ~docv:"K")

(* Per-receiver rows are capped: a 10 000-receiver scale run would
   otherwise print 10 000 table lines (and pay an O(n) lookup each). *)
let max_receiver_rows = 32

let print_result (res : Harness.Runner.result) =
  let name = Harness.Runner.protocol_name res.protocol in
  let shown, hidden =
    let all = res.rtt_to_source in
    let n = List.length all in
    if n <= max_receiver_rows then (all, 0)
    else (List.filteri (fun i _ -> i < max_receiver_rows) all, n - max_receiver_rows)
  in
  let rows =
    List.map
      (fun (node, rtt) ->
        let s = Harness.Runner.normalized_recovery res ~node ~filter:(fun _ -> true) in
        [
          string_of_int node;
          Printf.sprintf "%.0f" (1000. *. rtt);
          string_of_int (Stats.Summary.count s);
          (if Stats.Summary.count s = 0 then "-"
           else Printf.sprintf "%.2f" (Stats.Summary.mean s));
        ])
      shown
  in
  Printf.printf "%s on %s\n" name (Mtrace.Trace.summary res.trace);
  print_string
    (Stats.Table.render ~header:[ "receiver"; "rtt(ms)"; "recoveries"; "avg rec (RTT)" ] ~rows);
  if hidden > 0 then Printf.printf "... (%d more receivers not shown)\n" hidden;
  Printf.printf "detected %d, unrecovered %d\n" res.detected res.unrecovered;
  (let mk = Stats.Recovery.makespan_summary res.recoveries in
   if Stats.Summary.count mk > 0 then
     Printf.printf "makespan (last-receiver recovery): mean %.3f s, p99 %.3f s, max %.3f s\n"
       (Stats.Summary.mean mk)
       (Stats.Summary.percentile mk 0.99)
       (Stats.Summary.max mk));
  if Sys.getenv_opt "CESRM_DEBUG_SPANS" <> None then
    Stats.Recovery.iter_spans res.recoveries (fun ~src ~seq ~detected ~recovered ->
        Printf.eprintf "span src=%d seq=%d det=%.3f rec=%.3f span=%.3f\n" src seq detected
          recovered (recovered -. detected));
  Printf.printf "requests: mc %d uc %d | replies: %d expedited %d | sessions %d\n"
    (Stats.Counters.total res.counters Stats.Counters.Rqst)
    (Stats.Counters.total res.counters Stats.Counters.Exp_rqst)
    (Stats.Counters.total res.counters Stats.Counters.Repl)
    (Stats.Counters.total res.counters Stats.Counters.Exp_repl)
    (Stats.Counters.total res.counters Stats.Counters.Sess);
  if res.exp_requests > 0 then
    Printf.printf "expedited success: %.1f%%\n"
      (100. *. float_of_int res.exp_replies /. float_of_int res.exp_requests);
  Printf.printf "overhead: retransmissions %d crossings, control mc %d uc %d\n"
    (Net.Cost.retransmission_overhead res.cost)
    (Net.Cost.control_overhead res.cost ~multicast:true)
    (Net.Cost.control_overhead res.cost ~multicast:false);
  if res.audit_violations > 0 then
    Printf.printf "WARNING: %d protocol-audit violations\n" res.audit_violations

let faults_arg =
  let doc =
    "Fault plan to run under: a canned name ($(b,partition-heal), $(b,link-flap), \
     $(b,crash-replier), $(b,jitter-reorder), $(b,dup-burst)), a canned membership-churn \
     plan ($(b,churn-late), $(b,churn-flash), $(b,churn-steady) — join/leave/rejoin \
     schedules driving the dynamic-membership layer), each instantiated against the \
     trace's tree, or a plan JSON file (see `Fault.Plan`). The run is checked by the \
     protocol-invariant oracle; violations are reported and exit with status 1."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~doc ~docv:"PLAN")

let resolve_fault_plan ~trace name =
  let tree = Mtrace.Trace.tree trace in
  let warmup = Harness.Runner.default_setup.Harness.Runner.warmup in
  let duration = float_of_int (Mtrace.Trace.n_packets trace) *. Mtrace.Trace.period trace in
  match Fault.Plan.canned ~tree ~warmup ~duration name with
  | Some plan -> Ok plan
  | None ->
      if Sys.file_exists name then
        Result.bind (Fault.Plan.load name) (Fault.Plan.validate ~tree)
      else
        Error
          (Printf.sprintf "--faults: %S is neither a canned plan (%s) nor a file" name
             (String.concat ", " (Fault.Plan.canned_names @ Fault.Plan.churn_names)))

let print_oracle (res : Harness.Runner.result) =
  Option.iter
    (fun o ->
      Format.printf "%a@." Fault.Oracle.pp o;
      if not (Fault.Oracle.clean o) then exit 1)
    res.oracle

let trace_out_arg =
  let doc =
    "Record the run's structured events (loss detections, request/reply sends, recoveries) \
     and export them as Chrome trace-event JSON to $(docv); open it in Perfetto \
     (ui.perfetto.dev) or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let metrics_arg =
  let doc =
    "Write the end-of-run metrics registry (engine/network/protocol counters and latency \
     histograms) as JSON to $(docv); two such files feed `cesrm diff`."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let steady_arg =
  let doc =
    "Run in steady (streaming) mode with a state-retirement window of $(docv) packets \
     (default 8192 when the flag is given bare): scale scenarios stream their trace from \
     lazy per-link loss chains — a million-packet run starts instantly — sources arm data \
     sends lazily, per-packet protocol state past the stability horizon is retired each \
     epoch, and metrics use constant-memory online summaries."
  in
  Arg.(value & opt ~vopt:(Some 8192) (some int) None & info [ "steady" ] ~doc ~docv:"WINDOW")

let print_steady (res : Harness.Runner.result) =
  Option.iter
    (fun c ->
      Printf.printf "steady: retirement floor %d after %d epochs, peak heap %.1f MB%s\n"
        (Steady.Controller.floor c) (Steady.Controller.ticks c)
        (float_of_int (Steady.Controller.peak_heap_words c) *. 8. /. 1e6)
        (match Steady.Controller.heap_growth c with
        | Some g -> Printf.sprintf ", heap growth x%.2f (last/first decile)" g
        | None -> ""))
    res.retirement

let run_cmd =
  let run verbose name file packets seed protocol policy cache_policy router_assist lossy
      link_delay_ms faults trace_out metrics_out shards steady_window domains_opt =
    setup_logs verbose;
    match resolve_domains domains_opt with
    | Error msg -> `Error (false, msg)
    | Ok domains -> (
    match
      match steady_window with
      | Some w when w < 1 -> Error "--steady: window must be >= 1"
      | _ -> Ok (Option.map Steady.Config.windowed steady_window)
    with
    | Error msg -> `Error (false, msg)
    | Ok steady -> (
    (* In steady mode a scale scenario never materializes its loss
       matrix: the trace streams from the generator's lazy chains, so
       the run starts in O(links) no matter the packet count. *)
    let resolved =
      match (steady, name, file) with
      | Some _, Some n, None
        when (match Mtrace.Scale.family_of_name n with
             | Some f -> Mtrace.Scale.supports_streaming f
             | None -> false) -> (
          match (try Some (Mtrace.Scale.find n) with Not_found -> None) with
          | None -> Error (Printf.sprintf "unknown trace %s" n)
          | Some row ->
              let g = Mtrace.Generator.synthesize_streaming ?seed ?n_packets:packets row in
              Ok (g.Mtrace.Generator.s_trace, Harness.Runner.Streamed g.Mtrace.Generator.s_loss))
      | _ ->
          Result.map
            (fun (trace, ground) ->
              ( trace,
                match ground with
                | Some link_bad -> Harness.Runner.Ground_truth link_bad
                | None -> Harness.Runner.Attributed (Harness.Runner.attribution_of_trace trace) ))
            (load_trace ~name ~file ~packets ~seed)
    in
    match resolved with
    | Error msg -> `Error (false, msg)
    | Ok (trace, loss_model) ->
    let setup =
      Harness.Runner.tune_for_trace ?domains trace (make_setup ~lossy ~link_delay_ms)
    in
    let proto =
      match protocol with
      | `Srm -> Harness.Runner.Srm_protocol
      | `Lms -> Harness.Runner.Lms_protocol
      | `Cesrm ->
          Harness.Runner.Cesrm_protocol { Cesrm.Host.default_config with policy; router_assist }
    in
    match
      match (faults, proto, domains) with
      | _, Harness.Runner.Lms_protocol, Some _ -> Error "--domains: SRM and CESRM only"
      | None, _, _ -> Ok None
      | Some name, _, _ -> Result.map Option.some (resolve_fault_plan ~trace name)
    with
    | Error msg -> `Error (false, msg)
    | Ok fault_plan ->
        let tracer = Option.map (fun _ -> Obs.Trace.create ()) trace_out in
        let registry = Option.map (fun _ -> Obs.Registry.create ()) metrics_out in
        let res =
          Harness.Runner.run_model ~setup ~shards ?tracer ?registry ?fault_plan ?steady ?domains
            ?cache_policy proto trace loss_model
        in
        print_result res;
        print_steady res;
        Option.iter
          (fun (plan : Fault.Plan.t) ->
            Printf.printf "faults: plan %s (%d event(s))\n" plan.Fault.Plan.name
              (Fault.Plan.n_events plan))
          fault_plan;
        Option.iter
          (fun file ->
            let tr = Option.get tracer in
            Obs.Trace.export_chrome tr ~file;
            Printf.printf "(trace: %d events to %s%s)\n" (Obs.Trace.length tr) file
              (if Obs.Trace.dropped tr > 0 then
                 Printf.sprintf "; ring wrapped, %d oldest dropped" (Obs.Trace.dropped tr)
               else ""))
          trace_out;
        Option.iter
          (fun file ->
            let meta =
              [
                ("protocol", Obs.Json.Str (Harness.Runner.protocol_name proto));
                ("trace", Obs.Json.Str (Mtrace.Trace.summary trace));
                ("link_delay_ms", Obs.Json.Num link_delay_ms);
                ("lossy_recovery", Obs.Json.Bool lossy);
              ]
            in
            Obs.Report.save ~meta (Option.get registry) ~file;
            Printf.printf "(metrics to %s)\n" file)
          metrics_out;
        print_oracle res;
        `Ok ()))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Re-enact a trace under SRM or CESRM and report recovery statistics.")
    Term.(
      ret
        (const run $ verbose_flag $ trace_name $ trace_file $ packets $ seed $ protocol_arg
        $ policy_arg $ cache_policy_arg $ router_assist_arg $ lossy_arg $ link_delay_arg
        $ faults_arg $ trace_out_arg $ metrics_arg $ shards_arg $ steady_arg $ domains_arg))

let compare_cmd =
  let run verbose (trace, ground) policy cache_policy router_assist lossy link_delay_ms faults
      shards domains_opt =
    setup_logs verbose;
    match resolve_domains domains_opt with
    | Error msg -> `Error (false, msg)
    | Ok domains -> (
    let loss_model =
      match ground with
      | Some link_bad -> Harness.Runner.Ground_truth link_bad
      | None -> Harness.Runner.Attributed (Harness.Runner.attribution_of_trace trace)
    in
    let setup =
      Harness.Runner.tune_for_trace ?domains trace (make_setup ~lossy ~link_delay_ms)
    in
    match
      match faults with
      | None -> Ok None
      | Some name -> Result.map Option.some (resolve_fault_plan ~trace name)
    with
    | Error msg -> `Error (false, msg)
    | Ok fault_plan ->
        let srm =
          Harness.Runner.run_model ~setup ~shards ?fault_plan ?domains
            Harness.Runner.Srm_protocol trace loss_model
        in
        let cesrm =
          Harness.Runner.run_model ~setup ~shards ?fault_plan ?domains ?cache_policy
            (Harness.Runner.Cesrm_protocol
               { Cesrm.Host.default_config with policy; router_assist })
            trace loss_model
        in
        print_result srm;
        print_newline ();
        print_result cesrm;
        print_oracle srm;
        print_oracle cesrm;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run both protocols on the same trace (optionally under the same fault plan) and print \
          both reports.")
    Term.(
      ret
        (const run $ verbose_flag $ trace_model_term $ policy_arg $ cache_policy_arg
        $ router_assist_arg $ lossy_arg $ link_delay_arg $ faults_arg $ shards_arg
        $ domains_arg))

(* -- diff -------------------------------------------------------------- *)

let diff_cmd =
  let base_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASE" ~doc:"Baseline JSON file.")
  in
  let current_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"Current JSON file.")
  in
  let rel_arg =
    let doc = "Relative threshold in percent: flag metrics whose delta exceeds $(docv)%% of the baseline." in
    Arg.(value & opt float 10. & info [ "rel" ] ~doc ~docv:"PCT")
  in
  let abs_arg =
    let doc = "Absolute threshold: deltas at or below $(docv) are never flagged (filters float noise)." in
    Arg.(value & opt float 1e-9 & info [ "abs" ] ~doc ~docv:"V")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"List every compared metric, not only the flagged ones.")
  in
  let run base current rel abs all =
    match (Obs.Json.parse_file base, Obs.Json.parse_file current) with
    | Error msg, _ -> `Error (false, Printf.sprintf "%s: %s" base msg)
    | _, Error msg -> `Error (false, Printf.sprintf "%s: %s" current msg)
    | Ok b, Ok c ->
        let thresholds = { Obs.Diff.rel = rel /. 100.; abs } in
        let entries = Obs.Diff.diff ~thresholds ~base:b ~current:c () in
        print_string (Obs.Diff.render ~only_flagged:(not all) entries);
        if Obs.Diff.flagged entries <> [] then exit 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two metric/bench JSON files (from `cesrm run --metrics` or `bench --json`) \
          and flag deltas beyond thresholds. Exits 1 if any metric is flagged.")
    Term.(ret (const run $ base_arg $ current_arg $ rel_arg $ abs_arg $ all_arg))

(* -- sweep ------------------------------------------------------------- *)

let sweep_cmd =
  let spec_file =
    let doc = "Load the experiment spec from a JSON file (written by --print-spec or by hand); \
               the axis flags below are then ignored." in
    Arg.(value & opt (some file) None & info [ "spec" ] ~doc ~docv:"FILE")
  in
  let traces_arg =
    let doc = "Traces axis: $(b,all), $(b,featured), or a comma-separated list of Table 1 names." in
    Arg.(value & opt string "featured" & info [ "traces" ] ~doc ~docv:"LIST")
  in
  let protocols_arg =
    let doc =
      "Protocols axis, comma-separated: $(b,srm), $(b,lms), or \
       $(b,cesrm)[:policy][@retention][+ra] (e.g. cesrm:most-frequent+ra, \
       cesrm:most-recent@lru:4)."
    in
    Arg.(value & opt string "srm,cesrm" & info [ "protocols" ] ~doc ~docv:"LIST")
  in
  let seeds_arg =
    let doc = "Seeds axis: run each trace × protocol under $(docv) derived seeds." in
    Arg.(value & opt int 1 & info [ "seeds" ] ~doc ~docv:"N")
  in
  let base_seed_arg =
    let doc = "Base seed every shard seed is derived from." in
    Arg.(value & opt int64 42L & info [ "base-seed" ] ~doc ~docv:"SEED")
  in
  let name_arg =
    let doc = "Spec label, recorded in the artifact." in
    Arg.(value & opt string "sweep" & info [ "name" ] ~doc ~docv:"NAME")
  in
  let jobs_arg =
    let doc =
      "Worker processes (default: online CPU count; 1 = serial in-process; 0 = auto-detect \
       and record the resolved count in the artifact's meta)."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc ~docv:"N")
  in
  let timeout_arg =
    let doc = "Per-shard wall-clock timeout in seconds (default: none); an overrunning \
               worker is killed and its shard retried." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~doc ~docv:"SEC")
  in
  let retries_arg =
    let doc = "Extra attempts for a crashed / timed-out / raising shard." in
    Arg.(value & opt int 1 & info [ "retries" ] ~doc ~docv:"K")
  in
  let out_arg =
    let doc = "Write the aggregated artifact JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc ~docv:"FILE")
  in
  let print_spec_arg =
    Arg.(value & flag & info [ "print-spec" ] ~doc:"Print the expanded spec JSON and exit (pipe \
                                                   to a file to edit and reuse with --spec).")
  in
  let baseline_arg =
    let doc = "Diff the artifact against a stored sweep artifact with the `diff` machinery; \
               exit 1 on flagged deltas." in
    Arg.(value & opt (some file) None & info [ "baseline" ] ~doc ~docv:"FILE")
  in
  let rel_arg =
    let doc = "Baseline-diff relative threshold, percent." in
    Arg.(value & opt float 10. & info [ "rel" ] ~doc ~docv:"PCT")
  in
  let abs_arg =
    let doc = "Baseline-diff absolute threshold." in
    Arg.(value & opt float 1e-9 & info [ "abs" ] ~doc ~docv:"V")
  in
  let faults_axis_arg =
    let doc =
      "Faults axis, comma-separated: canned fault-plan names (including the membership-churn \
       plans $(b,churn-late), $(b,churn-flash), $(b,churn-steady)) and/or $(b,none) for the \
       unfaulted baseline (e.g. none,partition-heal,churn-steady). Each entry multiplies the \
       cell matrix; fault variants of a cell replay the identical synthesized trace."
    in
    Arg.(value & opt string "" & info [ "faults" ] ~doc ~docv:"LIST")
  in
  let build_spec ~spec_file ~name ~traces ~protocols ~seeds ~base_seed ~packets ~link_delay_ms
      ~lossy ~faults =
    match spec_file with
    | Some file -> (
        match Obs.Json.parse_file file with
        | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
        | Ok json -> Exp.Spec.of_json json)
    | None ->
        let trace_names =
          match traces with
          | "all" -> List.map (fun r -> r.Mtrace.Meta.name) Mtrace.Meta.all
          | "featured" -> List.map (fun r -> r.Mtrace.Meta.name) Mtrace.Meta.featured
          | list -> String.split_on_char ',' list
        in
        let rec parse_protocols = function
          | [] -> Ok []
          | p :: rest ->
              Result.bind (Exp.Spec.protocol_of_name p) (fun spec ->
                  Result.map (fun tl -> spec :: tl) (parse_protocols rest))
        in
        Result.bind (parse_protocols (String.split_on_char ',' protocols)) (fun protocols ->
            Exp.Spec.validate
              {
                Exp.Spec.name;
                traces = trace_names;
                protocols;
                base_seed;
                n_seeds = seeds;
                n_packets = packets;
                link_delay_ms;
                lossy_recovery = lossy;
                faults = (match faults with "" -> [] | l -> String.split_on_char ',' l);
              })
  in
  let summary_table artifact =
    let open Obs.Json in
    let num j name = match Option.bind (member name j) to_float with Some x -> x | None -> 0. in
    let cells = match member "cells" artifact with Some (Arr cs) -> cs | _ -> [] in
    let rows =
      List.map
        (fun c ->
          let str name = match member name c with Some (Str s) -> s | _ -> "?" in
          let exp_rq = num c "exp_requests" in
          [
            str "name";
            Printf.sprintf "%.0f" (num c "detected");
            Printf.sprintf "%.0f" (num c "unrecovered");
            (if exp_rq = 0. then "-"
             else Printf.sprintf "%.1f%%" (100. *. num c "exp_replies" /. exp_rq));
            Printf.sprintf "%.0f" (num c "audit_violations");
            Printf.sprintf "%.0f" (num c "oracle_violations");
          ])
        cells
    in
    Stats.Table.render
      ~header:[ "cell"; "detected"; "unrecov"; "exp ok"; "audit"; "oracle" ]
      ~rows
  in
  let run verbose spec_file name traces protocols seeds base_seed packets link_delay_ms lossy
      faults cache_policy jobs shards timeout retries out print_spec baseline rel abs domains_opt =
    setup_logs verbose;
    match resolve_domains domains_opt with
    | Error msg -> `Error (false, msg)
    | Ok domains -> (
    match
      build_spec ~spec_file ~name ~traces ~protocols ~seeds ~base_seed ~packets ~link_delay_ms
        ~lossy ~faults
    with
    | Error msg -> `Error (false, msg)
    | Ok spec ->
        (* --cache-policy rewrites the retention of every CESRM entry on
           the protocols axis; the rewritten retention lands in the
           artifact's cell names, so round-tripping the spec preserves
           it. *)
        let spec =
          match cache_policy with
          | None -> spec
          | Some retention ->
              {
                spec with
                Exp.Spec.protocols =
                  List.map
                    (function
                      | Exp.Spec.Cesrm { policy; retention = _; router_assist } ->
                          Exp.Spec.Cesrm { policy; retention; router_assist }
                      | p -> p)
                    spec.Exp.Spec.protocols;
              }
        in
        if print_spec then begin
          print_endline (Obs.Json.to_string ~pretty:true (Exp.Spec.to_json spec));
          `Ok ()
        end
        else begin
          let n = Array.length (Exp.Spec.cells spec) in
          let resolved = Exp.Pool.resolve_jobs jobs in
          Printf.printf "sweep %s: %d shard(s) over %d worker(s)%s%s\n%!" spec.Exp.Spec.name n
            (min resolved n)
            (if shards > 1 then Printf.sprintf " x %d sim shard(s)" shards else "")
            (if resolved > 1 && not Exp.Pool.available then " (fork unavailable: serial)" else "");
          let t0 = Unix.gettimeofday () in
          match
            Exp.Sweep.run ?jobs ~shards ?timeout ~retries
              ~on_result:(fun ~index:_ ~done_ ~total ->
                Printf.printf "\r  %d/%d shards%!" done_ total)
              ?domains spec
          with
          | exception Failure msg -> `Error (false, msg)
          | artifact ->
              Printf.printf "\r  %d/%d shards, %.1f s\n" n n (Unix.gettimeofday () -. t0);
              print_string (summary_table artifact);
              let totals = Obs.Json.member "totals" artifact in
              Option.iter
                (fun t ->
                  let num name =
                    match Option.bind (Obs.Json.member name t) Obs.Json.to_float with
                    | Some x -> x
                    | None -> 0.
                  in
                  Printf.printf
                    "totals: detected %.0f, unrecovered %.0f, audit violations %.0f, oracle \
                     violations %.0f\n"
                    (num "detected") (num "unrecovered") (num "audit_violations")
                    (num "oracle_violations"))
                totals;
              Option.iter
                (fun file ->
                  Obs.Json.save ~pretty:true artifact ~file;
                  Printf.printf "(artifact to %s)\n" file)
                out;
              (match baseline with
              | None -> `Ok ()
              | Some file -> (
                  match Obs.Json.parse_file file with
                  | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
                  | Ok base ->
                      let thresholds = { Obs.Diff.rel = rel /. 100.; abs } in
                      let entries = Obs.Diff.diff ~thresholds ~base ~current:artifact () in
                      Printf.printf "---- vs baseline %s ----\n" file;
                      print_string (Obs.Diff.render entries);
                      if Obs.Diff.flagged entries <> [] then exit 1;
                      `Ok ()))
        end)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a trace × protocol × seed experiment matrix across forked workers and aggregate \
          the shards into one artifact (byte-identical to a serial run of the same spec).")
    Term.(
      ret
        (const run $ verbose_flag $ spec_file $ name_arg $ traces_arg $ protocols_arg $ seeds_arg
        $ base_seed_arg $ packets $ link_delay_arg $ lossy_arg $ faults_axis_arg
        $ cache_policy_arg $ jobs_arg $ shards_arg $ timeout_arg $ retries_arg $ out_arg
        $ print_spec_arg $ baseline_arg $ rel_arg $ abs_arg $ domains_arg))

(* -- main -------------------------------------------------------------- *)

let () =
  let doc = "Caching-Enhanced Scalable Reliable Multicast — trace-driven simulation toolkit" in
  let info = Cmd.info "cesrm" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; gen_trace_cmd; info_cmd; infer_cmd; run_cmd; compare_cmd; diff_cmd; sweep_cmd ]))
