(** Hierarchical local recovery domains over a multicast tree.

    SRM's global request/repair exchange is its core scaling flaw on
    deep topologies: every control packet traverses the whole tree, so
    recovery makespan grows with tree depth. This module partitions the
    tree into {e recovery domains} — connected, rooted subtree regions
    holding a bounded number of group members — and elects one
    {e designated replier} per domain (the member closest to the
    source). Recovery then runs domain-first: requests and repairs are
    scoped to the requestor's own domain and only {e escalate} to the
    parent domain after a bounded number of unanswered local rounds,
    climbing the domain chain until the root domain (which contains the
    source, so escalation always terminates with a member that has the
    packet).

    Domains are built bottom-up: walking the tree deepest-first, a
    domain is closed at the first node whose open region has
    accumulated [max_members] members; its whole unassigned subtree
    becomes the domain. Each domain is therefore a connected subtree
    region, its root's parent node (if any) belongs to the parent
    domain, and a member's path to its domain root stays inside the
    domain. The {e chain} of a domain — itself, its parent, up to the
    root domain — gives the escalation ladder, and the union of a
    chain prefix is ancestry-closed inside the prefix's topmost root:
    exactly the property {!Net.Network.scoped_cast} needs for O(1)
    branch pruning.

    The module is pure topology: building a map draws no randomness
    and schedules nothing, so runs without domains are untouched. *)

type t

type spec =
  | Auto  (** bound each domain at [max 8 (sqrt n_members)] members *)
  | Max_members of int  (** explicit per-domain member bound, [>= 1] *)

val auto_members : n_members:int -> int
(** The [Auto] bound: [max 8 (sqrt n_members)] — domain count and
    domain size grow together, so neither the local exchange nor the
    escalation ladder dominates. *)

val spec_members : n_members:int -> spec -> int
(** The per-domain member bound a spec resolves to for a group of
    [n_members]. *)

val build : tree:Net.Tree.t -> members:int array -> max_members:int -> t
(** Partition [tree] into recovery domains of at most [max_members]
    members each (the root domain can be smaller). [members] are the
    group-member node ids.
    @raise Invalid_argument if [max_members < 1] or a member id is out
    of range. *)

val of_tree : tree:Net.Tree.t -> spec -> t
(** {!build} with the standard member set (the source, node 0, plus
    every leaf receiver). *)

val tree : t -> Net.Tree.t

val max_members : t -> int

val n_domains : t -> int

val dom_of : t -> int -> int
(** The domain holding a node (routers included). *)

val root_of : t -> int -> int
(** A domain's root node (the topmost node of its subtree region). *)

val parent_of : t -> int -> int
(** A domain's parent domain, [-1] for the root domain. *)

val replier : t -> int -> int
(** A domain's designated replier: the member closest to the source
    (minimum tree depth, smallest id on ties). The root domain's
    replier is the source itself. *)

val is_replier : t -> int -> bool
(** Whether a node is some domain's designated replier. *)

val level : t -> int -> int
(** A domain's depth in the domain tree (root domain = 0). *)

val size : t -> int -> int
(** Member count of a domain. *)

val max_level : t -> dom:int -> int
(** Highest escalation level from [dom]: the length of its chain to
    the root domain. Levels beyond it clamp. *)

val scope_domain : t -> dom:int -> level:int -> int
(** The domain targeted at escalation [level] from [dom]: the
    [level]-th ancestor on the chain (clamped to the root domain). *)

val scope_root : t -> dom:int -> level:int -> int
(** Root node of {!scope_domain} — the node a scoped cast floods
    from. *)

val in_scope : t -> dom:int -> level:int -> int -> bool
(** Whether a node lies in the escalation scope — the union of the
    chain domains [0 .. level] from [dom]. Ancestry-closed inside
    {!scope_root}'s subtree, so {!Net.Network.scoped_cast} may prune
    rejected branches whole. O(1). *)

val request_target : t -> node:int -> level:int -> int
(** The peer a requestor at [node] aims its escalation-[level] request
    timer at: the designated replier of the level's chain domain,
    skipping itself up the chain (falling back to the source). The
    request timer's distance term uses this peer instead of the
    source, so local rounds fire on local round-trip times. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: domain count, size bounds, chain height. *)
