(* Bottom-up size-bounded clustering of the multicast tree into
   recovery domains. See the interface for the model; the invariants
   the recovery path relies on are established here:

   - every domain is a connected subtree region containing its root;
   - a node's path to its domain root stays inside the domain;
   - a domain root's parent node belongs to the parent domain;
   - the root domain contains node 0 (the source).

   Closing a domain assigns its root's entire still-unassigned subtree,
   and an assigned node's whole subtree is always already assigned, so
   the "skip assigned branches" pruning in [close_at] is exact. *)

type t = {
  tree : Net.Tree.t;
  max_members : int;
  dom_of : int array; (* node -> domain id *)
  roots : int array; (* domain -> root node *)
  parents : int array; (* domain -> parent domain; -1 for the root domain *)
  repliers : int array; (* domain -> designated replier node *)
  levels : int array; (* domain -> depth in the domain tree *)
  sizes : int array; (* domain -> member count *)
  chains : int array array; (* domain -> [| self; parent; ...; root domain |] *)
  replier_flags : bool array; (* node -> is some domain's designated replier *)
}

type spec = Auto | Max_members of int

let auto_members ~n_members = max 8 (int_of_float (sqrt (float_of_int (max 1 n_members))))

let spec_members ~n_members = function
  | Auto -> auto_members ~n_members
  | Max_members k -> k

let build ~tree ~members ~max_members =
  if max_members < 1 then invalid_arg "Rdomain.build: max_members must be >= 1";
  let n = Net.Tree.n_nodes tree in
  let is_member = Array.make n false in
  Array.iter
    (fun m ->
      if m < 0 || m >= n then invalid_arg "Rdomain.build: member id out of range";
      is_member.(m) <- true)
    members;
  let dom_of = Array.make n (-1) in
  let roots = ref [] and n_domains = ref 0 in
  let close_at v =
    let id = !n_domains in
    incr n_domains;
    roots := v :: !roots;
    let stack = ref [ v ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          if dom_of.(u) = -1 then begin
            dom_of.(u) <- id;
            List.iter (fun c -> stack := c :: !stack) (Net.Tree.children tree u)
          end
    done
  in
  (* Deepest-first sweep (ties broken by id for determinism): when a
     node is visited, every child's open-region member count is final,
     so the node packs child regions into its own — smallest first,
     ties by id, so one oversized branch cannot starve the rest into
     singleton domains — and closes the ones that no longer fit. An
     open count therefore never exceeds [max_members - 1], and every
     closed domain holds at most [max_members] members: a child closes
     with its own open count, and the root domain closes with the
     final open accumulation at the source. *)
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun a b ->
      let da = Net.Tree.depth tree a and db = Net.Tree.depth tree b in
      if da <> db then compare db da else compare a b)
    order;
  let cnt = Array.make n 0 in
  Array.iter
    (fun v ->
      let acc = ref (if is_member.(v) then 1 else 0) in
      let opens = List.filter (fun c -> dom_of.(c) = -1) (Net.Tree.children tree v) in
      let opens =
        List.sort
          (fun a b -> if cnt.(a) <> cnt.(b) then compare cnt.(a) cnt.(b) else compare a b)
          opens
      in
      (* A memberless child region is free to absorb — closing it would
         mint a domain with no member to elect as replier. *)
      List.iter
        (fun c ->
          if cnt.(c) = 0 || !acc + cnt.(c) < max_members then acc := !acc + cnt.(c)
          else close_at c)
        opens;
      cnt.(v) <- !acc)
    order;
  (* Whatever remains open — always at least the source — is the root
     domain, closed at node 0 and numbered last. *)
  close_at 0;
  let nd = !n_domains in
  let roots = Array.of_list (List.rev !roots) in
  let parents =
    Array.map (fun r -> if r = 0 then -1 else dom_of.(Net.Tree.parent tree r)) roots
  in
  let levels = Array.make nd (-1) in
  let rec level_of d =
    if levels.(d) >= 0 then levels.(d)
    else begin
      let l = if parents.(d) = -1 then 0 else 1 + level_of parents.(d) in
      levels.(d) <- l;
      l
    end
  in
  for d = 0 to nd - 1 do
    ignore (level_of d)
  done;
  let chains =
    Array.init nd (fun d ->
        let c = Array.make (levels.(d) + 1) d in
        let cur = ref d in
        for i = 1 to levels.(d) do
          cur := parents.(!cur);
          c.(i) <- !cur
        done;
        c)
  in
  let sizes = Array.make nd 0 in
  let repliers = Array.make nd (-1) in
  let best_depth = Array.make nd max_int in
  Array.iter
    (fun m ->
      let d = dom_of.(m) in
      sizes.(d) <- sizes.(d) + 1;
      let dep = Net.Tree.depth tree m in
      if dep < best_depth.(d) || (dep = best_depth.(d) && m < repliers.(d)) then begin
        best_depth.(d) <- dep;
        repliers.(d) <- m
      end)
    members;
  (* A memberless domain cannot arise from closing (only regions with
     at least one member close) but guard the root domain anyway. *)
  Array.iteri (fun d r -> if r = -1 then repliers.(d) <- roots.(d)) repliers;
  let replier_flags = Array.make n false in
  Array.iter (fun r -> if r >= 0 && r < n then replier_flags.(r) <- true) repliers;
  { tree; max_members; dom_of; roots; parents; repliers; levels; sizes; chains; replier_flags }

let of_tree ~tree spec =
  let members = Array.append [| 0 |] (Net.Tree.receivers tree) in
  build ~tree ~members
    ~max_members:(spec_members ~n_members:(Array.length members) spec)

let tree t = t.tree

let max_members t = t.max_members

let n_domains t = Array.length t.roots

let dom_of t v = t.dom_of.(v)

let root_of t d = t.roots.(d)

let parent_of t d = t.parents.(d)

let replier t d = t.repliers.(d)

let is_replier t v = t.replier_flags.(v)

let level t d = t.levels.(d)

let size t d = t.sizes.(d)

let max_level t ~dom = Array.length t.chains.(dom) - 1

let[@inline] clamp t ~dom level = min level (Array.length t.chains.(dom) - 1)

let scope_domain t ~dom ~level = t.chains.(dom).(clamp t ~dom level)

let scope_root t ~dom ~level = t.roots.(scope_domain t ~dom ~level)

(* A domain [d] lies on [dom]'s chain iff the chain entry at their
   level difference is [d] — O(1), no per-node chain scan. *)
let in_scope t ~dom ~level node =
  let lvl = clamp t ~dom level in
  let d = t.dom_of.(node) in
  let i = t.levels.(dom) - t.levels.(d) in
  i >= 0 && i <= lvl && t.chains.(dom).(i) = d

let request_target t ~node ~level =
  let dom = t.dom_of.(node) in
  let chain = t.chains.(dom) in
  let len = Array.length chain in
  let rec pick i =
    if i >= len then 0
    else
      let r = t.repliers.(chain.(i)) in
      if r <> node then r else pick (i + 1)
  in
  pick (clamp t ~dom level)

let pp ppf t =
  let nd = n_domains t in
  let smin = Array.fold_left min max_int t.sizes
  and smax = Array.fold_left max 0 t.sizes
  and height = Array.fold_left max 0 t.levels in
  Format.fprintf ppf
    "%d domain(s), <= %d member(s) each (observed %d..%d), chain height %d" nd t.max_members
    smin smax height
