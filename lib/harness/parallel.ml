(* Sharded execution of one run: conservative PDES over forked workers.

   The model is replicated-network / partitioned-hosts (DESIGN.md §13).
   Every worker rebuilds the complete network, deploys protocol hosts
   only for the members its shard owns ([Proto.deploy ~owned]), and
   executes the global event schedule restricted to those members. The
   source's paced data stream is statically replicated — every shard
   walks it locally at the same simulation times — while every other
   origin cast (requests, replies, sessions) is buffered as a
   [Net.Network.emit] and replayed on the other shards at conservative
   barriers. RNG parity is by construction: workers draw the same seed,
   the same splits in the same order (non-owned members burn a dummy
   split), so every shard's view of delays, drops and timers is
   bit-identical to the serial run's.

   The coordinator never simulates. It forks the workers, then loops
   the classic conservative barrier protocol with lookahead [L] (the
   minimum cut-link delay, [Net.Partition.lookahead]): collect every
   worker's next pending event time, lower-bound any unexecuted event
   anywhere by [G] (also covering just-collected emits, whose earliest
   remote effect is [e_at +. L]), grant the window [.., G +. L), and
   redistribute the emits. At the end it merges the per-worker pieces
   back into the exact [Run_types.result] the serial runner produces. *)

module Pst = Sim.Pdes.Stats

type to_worker =
  | Window of { w_barrier : float; w_emits : Net.Network.emit list }
  | Finish of { f_emits : Net.Network.emit list }
      (* emits whose earliest remote effect lies beyond the horizon
         still have to be walked on every shard — their link crossings
         count and the primary's tap stream must include them *)

(* Everything a worker ships home. Plain data only: the channel is
   [Marshal] without closures. *)
(* The serial engine fires same-time deliveries FIFO by schedule
   order; a record's walk rank (Network.delivery_rank: cast key +
   in-walk position) is that order's cross-shard reconstruction. *)
type walk_rank = (float * int * int * int) option

type worker_out = {
  wr_counters : Stats.Counters.t;
  wr_records : (Stats.Recovery.record * walk_rank) list;  (* chronological *)
  wr_cost : Net.Cost.t;
  wr_exp_requests : int;
  wr_exp_replies : int;
  wr_detected : int;
  wr_forgiven : int;  (* pending losses forgiven by departures of owned members *)
  wr_audit : int;  (* primary shard only; 0 elsewhere *)
  wr_violations : Fault.Oracle.violation list;  (* chronological *)
  wr_pending : (int * int * int * float) list;  (* unrepaired losses *)
  wr_clock : float;  (* last executed event time *)
  wr_delivered : int;
  wr_events : int;
}

type from_worker =
  | Window_done of { wd_emits : Net.Network.emit list; wd_next : float; wd_clock : float }
  | Done of worker_out

(* Total order on origin casts: time, then sender, then the per-shard
   monotone emit counter. Same-(at, from) casts always come from one
   shard's counter, so the order is deterministic; cross-sender ties at
   one instant cannot arise from the continuous-time timers. *)
let emit_order (a : Net.Network.emit) (b : Net.Network.emit) =
  match Float.compare a.Net.Network.e_at b.Net.Network.e_at with
  | 0 -> (
      match compare a.Net.Network.e_from b.Net.Network.e_from with
      | 0 -> compare a.Net.Network.e_idx b.Net.Network.e_idx
      | c -> c)
  | c -> c

(* One shard's event loop, running in a forked child. Mirrors
   [Runner.run_model]'s serial setup line by line — same construction
   order, same RNG splits — with three substitutions: the network is
   switched into shard mode, the auditor and the fault oracle observe
   an explicitly fed tap stream instead of a live tap (only the
   primary shard, owner of the source, has the complete stream), and
   [Sim.Engine.run] becomes the barrier-window loop. *)
let worker_body ~chan ~me ~observe ~partition ~(setup : Run_types.setup) ~fault_plan ~protocol
    ~trace ~loss_model ~streaming =
  let tree = Mtrace.Trace.tree trace in
  let n_packets = Mtrace.Trace.n_packets trace in
  let period = Mtrace.Trace.period trace in
  let engine = Sim.Engine.create ~seed:setup.seed () in
  let network =
    if setup.heterogeneous_delays then begin
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      let delays =
        Array.init (Net.Tree.n_nodes tree) (fun l ->
            if l = 0 then 0.
            else Sim.Rng.log_uniform rng (setup.link_delay /. 3.) (3. *. setup.link_delay))
      in
      Net.Network.create_heterogeneous ~engine ~tree ~delays
        ~bandwidth_bps:setup.bandwidth_bps ()
    end
    else
      Net.Network.create ~engine ~tree ~link_delay:setup.link_delay
        ~bandwidth_bps:setup.bandwidth_bps ()
  in
  Net.Network.enable_shard network ~partition ~me ~observe;
  let rates =
    if setup.lossy_recovery || setup.lossy_sessions then Inference.Yajnik.estimate trace
    else Array.make (Net.Tree.n_nodes tree) 0.
  in
  let drop_rng = Sim.Rng.split (Sim.Engine.rng engine) in
  Net.Network.set_drop network
    (Run_types.make_drop ~loss_model ~lossy_recovery:setup.lossy_recovery
       ~lossy_sessions:setup.lossy_sessions ~rates ~rng:drop_rng);
  let audit =
    if observe then
      Some
        (Audit.create
           ~expect_in_order:(setup.data_jitter <= 0.)
           ~max_exp_per_loss:(match protocol with Run_types.Lms_protocol -> 64 | _ -> 1)
           network)
    else None
  in
  let oracle = Option.map (fun _ -> Fault.Oracle.create_detached ~network ()) fault_plan in
  let attach_oracle srm_host = Option.iter (fun o -> Fault.Oracle.attach_host o srm_host) oracle in
  (* Churn wiring, mirroring the serial runner: every shard compiles
     the full plan, so every shard's oracle carries the identical
     membership timeline (the primary's is the one that judges the
     replayed tap stream), while the host-level join/leave effects act
     only on owned hosts — and each shard's departures contribute to
     the forgiven-loss total shipped home. *)
  Option.iter
    (fun o ->
      Option.iter
        (fun plan ->
          List.iter
            (fun node -> Fault.Oracle.note_membership o ~node ~at:0. ~member:false)
            (Fault.Plan.initial_absentees plan))
        fault_plan)
    oracle;
  let forgiven = ref 0 in
  (* Analytic join baseline (see the serial runner): a pure function of
     the join time and the send schedule, hence identical on the shard
     owning the joiner and in a serial run. *)
  let join_baselines () =
    let at = Sim.Engine.now engine in
    let sent = 1 + int_of_float (Float.floor ((at -. setup.warmup) /. period)) in
    let sent = max 0 (min n_packets sent) in
    if sent = 0 then [] else [ (0, sent) ]
  in
  let compile_faults ?(on_join = fun ~node:_ -> ()) ?(on_leave = fun ~node:_ -> ()) ~on_restart ()
      =
    Option.iter
      (fun plan ->
        Fault.Plan.compile ~network ~on_restart
          ~on_join:(fun ~node ->
            Option.iter
              (fun o ->
                Fault.Oracle.note_membership o ~node ~at:(Sim.Engine.now engine) ~member:true)
              oracle;
            on_join ~node)
          ~on_leave:(fun ~node ->
            Option.iter
              (fun o ->
                Fault.Oracle.note_membership o ~node ~at:(Sim.Engine.now engine) ~member:false;
                Fault.Oracle.forget_node o ~node)
              oracle;
            on_leave ~node)
          plan)
      fault_plan
  in
  let owned node = Net.Network.owns network node in
  let counters, recoveries, detected, expedited =
    match protocol with
    | Run_types.Srm_protocol ->
        let proto = Srm.Proto.deploy ~owned ~network ~params:setup.params ~n_packets ~period () in
        List.iter (fun (_, h) -> attach_oracle h) (Srm.Proto.members proto);
        compile_faults
          ~on_join:(fun ~node ->
            Option.iter
              (fun h -> Srm.Host.join h ~baselines:(join_baselines ()))
              (List.assoc_opt node (Srm.Proto.members proto)))
          ~on_leave:(fun ~node ->
            List.iter
              (fun (n, h) ->
                if n = node then forgiven := !forgiven + Srm.Host.depart h
                else Srm.Host.forget_peer h node)
              (Srm.Proto.members proto))
          ~on_restart:(fun ~node ->
            Option.iter Srm.Host.restart_recovery (List.assoc_opt node (Srm.Proto.members proto)))
          ();
        Srm.Proto.start ~send_jitter:setup.data_jitter ~streaming proto ~warmup:setup.warmup
          ~tail:setup.tail;
        ( Srm.Proto.counters proto,
          Srm.Proto.recoveries proto,
          (fun () ->
            List.fold_left
              (fun acc (_, h) -> acc + Srm.Host.detected_losses h)
              0 (Srm.Proto.members proto)),
          fun () -> (0, 0) )
    | Run_types.Cesrm_protocol config ->
        let proto =
          Cesrm.Proto.deploy ~config ~owned ~network ~params:setup.params ~n_packets ~period ()
        in
        List.iter (fun (_, h) -> attach_oracle (Cesrm.Host.srm h)) (Cesrm.Proto.members proto);
        compile_faults
          ~on_join:(fun ~node ->
            Option.iter
              (fun h -> Srm.Host.join (Cesrm.Host.srm h) ~baselines:(join_baselines ()))
              (List.assoc_opt node (Cesrm.Proto.members proto)))
          ~on_leave:(fun ~node ->
            List.iter
              (fun (n, h) ->
                if n = node then begin
                  Cesrm.Host.reset_caches h;
                  forgiven := !forgiven + Srm.Host.depart (Cesrm.Host.srm h)
                end
                else begin
                  Cesrm.Host.invalidate_replier h ~replier:node;
                  Srm.Host.forget_peer (Cesrm.Host.srm h) node
                end)
              (Cesrm.Proto.members proto))
          ~on_restart:(fun ~node ->
            Option.iter
              (fun h ->
                Cesrm.Host.reset_caches h;
                Srm.Host.restart_recovery (Cesrm.Host.srm h))
              (List.assoc_opt node (Cesrm.Proto.members proto)))
          ();
        Cesrm.Proto.start ~send_jitter:setup.data_jitter ~streaming proto ~warmup:setup.warmup
          ~tail:setup.tail;
        ( Cesrm.Proto.counters proto,
          Cesrm.Proto.recoveries proto,
          (fun () ->
            List.fold_left
              (fun acc (_, h) -> acc + Srm.Host.detected_losses (Cesrm.Host.srm h))
              0 (Cesrm.Proto.members proto)),
          fun () -> (Cesrm.Proto.expedited_requests proto, Cesrm.Proto.expedited_replies proto) )
    | Run_types.Lms_protocol -> invalid_arg "Parallel: LMS subcasts are not shardable"
  in
  (* Tag every recovery with the delivery rank of the walk that
     produced it, at add time — the only moment the network still
     knows which cast is firing. *)
  let tagged_records = ref [] in
  Stats.Recovery.set_observer recoveries (fun r ->
      tagged_records := (r, Net.Network.delivery_rank network) :: !tagged_records);
  let horizon = Run_types.horizon ~setup ~n_packets ~period in
  (* The primary accumulates the global tap stream — remote emits plus
     its own origin and replicated casts — and feeds it, sorted, to the
     auditor and the oracle once complete. Both are pure stream folds
     over (at, from, packet), so deferred feeding is equivalent to the
     serial run's live tap. *)
  let obs = ref [] in
  let note es = if observe then obs := List.rev_append es !obs in
  let next_of () = match Sim.Engine.next_time engine with Some t -> t | None -> infinity in
  Ipc.Chan.send chan
    (Window_done { wd_emits = []; wd_next = next_of (); wd_clock = Sim.Engine.now engine });
  let rec loop () =
    match (Ipc.Chan.recv chan : to_worker) with
    | Window { w_barrier; w_emits } ->
        List.iter (Net.Network.apply_emit network) w_emits;
        note w_emits;
        let next = Sim.Pdes.run_window engine ~barrier:w_barrier ~horizon in
        let emits = Net.Network.take_emits network in
        if observe then note (Net.Network.take_observations network);
        Ipc.Chan.send chan
          (Window_done { wd_emits = emits; wd_next = next; wd_clock = Sim.Engine.now engine });
        loop ()
    | Finish { f_emits } ->
        List.iter (Net.Network.apply_emit network) f_emits;
        note f_emits;
        if observe then note (Net.Network.take_observations network);
        let wr_audit =
          match audit with
          | None -> 0
          | Some a ->
              List.iter
                (fun (e : Net.Network.emit) ->
                  Audit.observe a ~at:e.e_at ~from:e.e_from e.e_packet;
                  Option.iter
                    (fun o -> Fault.Oracle.observe o ~at:e.e_at ~from:e.e_from e.e_packet)
                    oracle)
                (List.stable_sort emit_order !obs);
              List.length (Audit.violations a)
        in
        let exp_requests, exp_replies = expedited () in
        Ipc.Chan.send chan
          (Done
             {
               wr_counters = counters;
               wr_records = List.rev !tagged_records;
               wr_cost = Net.Network.cost network;
               wr_exp_requests = exp_requests;
               wr_exp_replies = exp_replies;
               wr_detected = detected ();
               wr_forgiven = !forgiven;
               wr_audit;
               wr_violations =
                 (match oracle with None -> [] | Some o -> Fault.Oracle.violations o);
               wr_pending =
                 (match oracle with None -> [] | Some o -> Fault.Oracle.pending_losses o);
               wr_clock = Sim.Engine.now engine;
               wr_delivered = Net.Network.packets_delivered network;
               wr_events = Sim.Engine.events_fired engine;
             })
  in
  loop ()

let run ~(partition : Net.Partition.t) ~delay ?registry ?fault_plan ~(setup : Run_types.setup)
    ?(streaming = false) protocol trace loss_model =
  let k = partition.n_shards in
  let lookahead = partition.lookahead in
  let tree = Mtrace.Trace.tree trace in
  let n_packets = Mtrace.Trace.n_packets trace in
  let period = Mtrace.Trace.period trace in
  let horizon = Run_types.horizon ~setup ~n_packets ~period in
  let primary = partition.owner.(0) in
  let workers =
    Array.init k (fun me ->
        Ipc.Chan.fork ~child:(fun chan ->
            worker_body ~chan ~me ~observe:(me = primary) ~partition ~setup ~fault_plan
              ~protocol ~trace ~loss_model ~streaming))
  in
  let stats = Pst.create () in
  let nexts = Array.make k infinity in
  let clocks = Array.make k 0. in
  (* (origin shard, emit) collected since the last distribution,
     newest first. *)
  let pending = ref [] in
  let recv_round () =
    let t0 = Unix.gettimeofday () in
    Array.iteri
      (fun i (chan, _) ->
        match (Ipc.Chan.recv chan : from_worker) with
        | Window_done { wd_emits; wd_next; wd_clock } ->
            nexts.(i) <- wd_next;
            clocks.(i) <- wd_clock;
            List.iter (fun e -> pending := (i, e) :: !pending) wd_emits
        | Done _ -> assert false)
      workers;
    stats.Pst.barrier_wait_s <- stats.Pst.barrier_wait_s +. (Unix.gettimeofday () -. t0)
  in
  (* Each emit goes to every shard but its origin (the origin already
     executed the cast). Sorting fixes the replay schedule order, so a
     sharded run is deterministic regardless of worker timing. *)
  let distribute outgoing make =
    let outgoing = List.stable_sort (fun (_, a) (_, b) -> emit_order a b) (List.rev outgoing) in
    Array.iteri
      (fun i (chan, _) ->
        Ipc.Chan.send chan
          (make (List.filter_map (fun (o, e) -> if o = i then None else Some e) outgoing)))
      workers;
    List.length outgoing
  in
  recv_round ();
  (* the setup round: workers report their first pending event *)
  let rec sync () =
    let emit_horizons =
      List.map (fun (_, e) -> e.Net.Network.e_at +. lookahead) !pending
    in
    let g = Array.fold_left Float.min infinity nexts in
    let g = List.fold_left Float.min g emit_horizons in
    if g > horizon then ()
    else begin
      let barrier = Sim.Pdes.next_barrier ~lookahead ~nexts:(Array.to_list nexts) ~emit_horizons in
      let outgoing = !pending in
      pending := [];
      let n_cross = distribute outgoing (fun w_emits -> Window { w_barrier = barrier; w_emits }) in
      stats.Pst.windows <- stats.Pst.windows + 1;
      if n_cross = 0 then stats.Pst.null_windows <- stats.Pst.null_windows + 1;
      stats.Pst.cross_packets <- stats.Pst.cross_packets + n_cross;
      recv_round ();
      sync ()
    end
  in
  sync ();
  let n_cross = distribute !pending (fun f_emits -> Finish { f_emits }) in
  stats.Pst.cross_packets <- stats.Pst.cross_packets + n_cross;
  pending := [];
  let outs =
    Array.map
      (fun (chan, pid) ->
        let out =
          match (Ipc.Chan.recv chan : from_worker) with
          | Done out -> out
          | Window_done _ -> assert false
        in
        Ipc.Chan.close chan;
        Ipc.Chan.reap pid;
        out)
      workers
  in
  let outl = Array.to_list outs in
  let fold1 f extract =
    match List.map extract outl with
    | [] -> assert false (* k >= 2 *)
    | first :: rest -> List.fold_left f first rest
  in
  let counters = fold1 Stats.Counters.merge (fun o -> o.wr_counters) in
  let cost = fold1 Net.Cost.merge (fun o -> o.wr_cost) in
  let sum extract = List.fold_left (fun acc o -> acc + extract o) 0 outl in
  (* Re-add the merged recovery records in the serial insertion order —
     chronological by repair time, same-time records by their walk
     rank (the serial engine's FIFO schedule order) — so downstream
     latency summaries fold the same floats in the same order. *)
  let recoveries = Stats.Recovery.create () in
  List.concat_map (fun o -> o.wr_records) outl
  |> List.stable_sort
       (fun ((a : Stats.Recovery.record), (ra : walk_rank)) ((b : Stats.Recovery.record), rb) ->
         match Float.compare a.recovered_at b.recovered_at with
         | 0 -> compare ra rb
         | c -> c)
  |> List.iter (fun (r, _) -> Stats.Recovery.add recoveries r);
  (* The global liveness check runs here, where all shards' pending
     losses are in hand, at the global last-event clock — exactly the
     engine time the serial [Oracle.finalize] sees. *)
  let final_clock = Array.fold_left Float.max 0. clocks in
  let final_clock = Array.fold_left (fun a (o : worker_out) -> Float.max a o.wr_clock) final_clock outs in
  let oracle =
    match fault_plan with
    | None -> None
    | Some _ ->
        let streamed =
          List.concat_map (fun o -> o.wr_violations) outl
          |> List.stable_sort (fun (a : Fault.Oracle.violation) b -> Float.compare a.at b.at)
        in
        let still_missing = List.concat_map (fun o -> o.wr_pending) outl in
        Some
          (Fault.Oracle.assemble
             ~violations:(streamed @ Fault.Oracle.liveness_violations ~at:final_clock still_missing))
  in
  Option.iter
    (fun o ->
      List.iter
        (fun v -> Stats.Counters.bump counters ~node:v.Fault.Oracle.node Stats.Counters.Oracle)
        (Fault.Oracle.violations o))
    oracle;
  let rtts = Run_types.source_rtts ~tree ~delay in
  let is_receiver node = node <> 0 && Net.Tree.is_leaf tree node in
  let rtt_to_source =
    Array.to_list (Array.map (fun node -> (node, rtts.(node))) (Net.Tree.receivers tree))
  in
  Option.iter
    (fun reg ->
      Obs.Registry.incr ~by:(sum (fun o -> o.wr_events)) reg "sim/events_fired";
      (* the network metrics [Net.Network.publish_metrics] derives are
         pure functions of the merged cost and delivery count *)
      Obs.Registry.incr ~by:(sum (fun o -> o.wr_delivered)) reg "net/packets_delivered";
      Obs.Registry.incr ~by:(Net.Cost.retransmission_overhead cost) reg
        "net/retransmission_crossings";
      Obs.Registry.incr ~by:(Net.Cost.control_overhead cost ~multicast:true) reg
        "net/control_crossings_mc";
      Obs.Registry.incr ~by:(Net.Cost.control_overhead cost ~multicast:false) reg
        "net/control_crossings_uc";
      Obs.Registry.incr ~by:(Net.Cost.total_crossings cost Net.Cost.Data) reg
        "net/data_crossings";
      Obs.Registry.incr ~by:(Net.Cost.total_crossings cost Net.Cost.Session) reg
        "net/session_crossings";
      Obs.Registry.incr ~by:(Stats.Recovery.count recoveries) reg "recovery/recovered";
      Option.iter
        (fun o -> Obs.Registry.incr ~by:(Fault.Oracle.n_violations o) reg "fault/oracle_violations")
        oracle;
      Instrument.attach_recovery_hists reg
        ~rtt_of:(fun node -> if is_receiver node then Some rtts.(node) else None)
        recoveries;
      let max_shard_events =
        List.fold_left (fun m (o : worker_out) -> max m o.wr_events) 0 outl
      in
      Pst.publish ~max_shard_events stats ~shards:k ~lookahead reg)
    registry;
  let detected = sum (fun o -> o.wr_detected) in
  let forgiven = sum (fun o -> o.wr_forgiven) in
  let recovered = Stats.Recovery.count recoveries in
  {
    Run_types.trace;
    protocol;
    setup;
    counters;
    recoveries;
    cost;
    rtt_to_source;
    exp_requests = sum (fun o -> o.wr_exp_requests);
    exp_replies = sum (fun o -> o.wr_exp_replies);
    unrecovered = detected - recovered - forgiven;
    detected;
    forgiven;
    audit_violations = sum (fun o -> o.wr_audit);
    oracle_violations = (match oracle with None -> 0 | Some o -> Fault.Oracle.n_violations o);
    oracle;
    retirement = None;
  }
