(** Sharded execution of one run: conservative PDES over forked
    workers (DESIGN.md §13).

    The tree is partitioned into shards of roughly equal member weight
    ({!Net.Partition}); each shard simulates the {e complete} network
    but hosts only its own members, in a forked worker. Workers
    synchronise through the classic conservative barrier protocol with
    lookahead equal to the minimum cut-link delay ({!Sim.Pdes}),
    exchanging cross-shard origin casts as replayable emit records (the
    shard mode of {!Net.Network}). The coordinator merges the
    per-worker counters, recoveries, cost matrices and oracle state
    back into the exact artifact the serial {!Runner} produces — a
    sharded run is byte-identical to the serial run of the same
    (trace, protocol, setup, fault plan).

    This module is the mechanism; policy lives in {!Runner}, which
    checks shardability (no tracer, no LMS subcasts, no lossy
    recovery/session RNG draws, no link-jitter fault events) and falls
    back to the serial path, so callers just pass [?shards] to
    {!Runner.run}. *)

val run :
  partition:Net.Partition.t ->
  delay:(int -> float) ->
  ?registry:Obs.Registry.t ->
  ?fault_plan:Fault.Plan.t ->
  setup:Run_types.setup ->
  ?streaming:bool ->
  Run_types.protocol ->
  Mtrace.Trace.t ->
  Run_types.loss_model ->
  Run_types.result
(** [run ~partition ~delay ... protocol trace loss_model] executes the
    run sharded per [partition] ([partition.n_shards] must be at least
    2 — {!Runner} degenerates 1 to the serial path) and returns the
    merged result. [delay] must reproduce the per-link delays the
    workers draw ([Runner] replicates the heterogeneous-delay RNG
    sequence); [setup] and [protocol] must already carry the fault-plan
    robustness adjustments [Runner.run_model] applies. [streaming]
    (default false) arms the sources' data sends as lazy chains on
    every worker — byte-identical either way, so it composes freely
    with sharding (finite retirement windows do not; {!Runner} keeps
    those serial).

    With [registry], the merged end-of-run metrics are published as in
    the serial runner — engine/network totals, ["recovery/"] histograms
    and ["fault/"] counts — plus the synchronisation counters under
    ["pdes/"] ({!Sim.Pdes.Stats.publish}). Per-host ["srm/"] metrics
    are not republished: they live in the workers.

    @raise Invalid_argument on an LMS protocol. *)
