(** Definitions shared by the serial {!Runner} and the sharded
    {!Parallel} runner.

    {!Runner} re-exports the types with equations, so this module is an
    implementation seam, not an API: callers keep using
    [Harness.Runner.setup] and friends. It exists because [Runner]
    delegates multi-shard runs to [Parallel] while every [Parallel]
    worker rebuilds the same per-run model [Runner] builds serially —
    the types and pure helpers both must agree on have to sit below
    both in the dependency order. *)

type protocol = Srm_protocol | Cesrm_protocol of Cesrm.Host.config | Lms_protocol

val protocol_name : protocol -> string

type setup = {
  link_delay : float;
  bandwidth_bps : float;
  params : Srm.Params.t;
  warmup : float;
  tail : float;
  lossy_recovery : bool;
  lossy_sessions : bool;
  data_jitter : float;
  heterogeneous_delays : bool;
  seed : int64;
}

val default_setup : setup

type result = {
  trace : Mtrace.Trace.t;
  protocol : protocol;
  setup : setup;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
  cost : Net.Cost.t;
  rtt_to_source : (int * float) list;
  exp_requests : int;
  exp_replies : int;
  unrecovered : int;
  detected : int;
  forgiven : int;
  audit_violations : int;
  oracle_violations : int;
  oracle : Fault.Oracle.t option;
  retirement : Steady.Controller.t option;
}

type loss_model =
  | Attributed of Inference.Attribution.t
  | Ground_truth of Mtrace.Bitset.t array
  | Streamed of Mtrace.Stream_loss.t
      (** ground-truth drops from lazy per-link chains — the
          constant-memory loss model streaming (steady) runs use *)

val make_drop :
  loss_model:loss_model ->
  lossy_recovery:bool ->
  lossy_sessions:bool ->
  rates:float array ->
  rng:Sim.Rng.t ->
  link:int ->
  down:bool ->
  Net.Packet.t ->
  bool
(** The network drop predicate for a run (see {!Runner.run_model}).
    Pure per crossing unless [lossy_recovery]/[lossy_sessions] draw
    from [rng] — which is why those setups are not shardable. *)

val horizon : setup:setup -> n_packets:int -> period:float -> float
(** The simulation end time every run uses: warmup, data phase, tail,
    plus slack for recovery exchanges still in flight. *)

val source_rtts : tree:Net.Tree.t -> delay:(int -> float) -> float array
(** Per-node round-trip time to the source, bit-identical to summing
    [delay] down the tree path (the order [Net.Network.rtt] adds in). *)
