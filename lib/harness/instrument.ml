let attach_network ~trace ~stride network =
  let engine = Net.Network.engine network in
  Net.Network.add_tap network (fun ~from (p : Net.Packet.t) ->
      let at = Sim.Engine.now engine in
      match p.payload with
      | Net.Packet.Data { seq } ->
          Obs.Trace.record trace ~at ~node:from ~stream:from
            ~key:(Srm.Key.make ~stride ~src:from ~seq)
            Obs.Trace.Data_sent
      | Net.Packet.Request { src; seq; _ } ->
          Obs.Trace.record trace ~at ~node:from ~stream:src
            ~key:(Srm.Key.make ~stride ~src ~seq)
            Obs.Trace.Request_sent
      | Net.Packet.Exp_request { src; seq; _ } ->
          Obs.Trace.record trace ~at ~node:from ~stream:src
            ~key:(Srm.Key.make ~stride ~src ~seq)
            Obs.Trace.Exp_request_sent
      | Net.Packet.Reply { src; seq; expedited; _ } ->
          Obs.Trace.record trace ~at ~node:from ~stream:src
            ~key:(Srm.Key.make ~stride ~src ~seq)
            (if expedited then Obs.Trace.Exp_reply_sent else Obs.Trace.Reply_sent)
      | Net.Packet.Session _ ->
          Obs.Trace.record trace ~at ~node:from ~stream:from ~key:0
            Obs.Trace.Session_sent)

let attach_srm_host ~trace ~stride host =
  let engine = Net.Network.engine (Srm.Host.network host) in
  let node = Srm.Host.self host in
  let hooks = Srm.Host.hooks host in
  let prev_detect = hooks.on_loss_detected in
  hooks.on_loss_detected <-
    (fun ~src ~seq ->
      prev_detect ~src ~seq;
      Obs.Trace.record trace ~at:(Sim.Engine.now engine) ~node ~stream:src
        ~key:(Srm.Key.make ~stride ~src ~seq)
        Obs.Trace.Loss_detected);
  let prev_obtained = hooks.on_packet_obtained in
  hooks.on_packet_obtained <-
    (fun ~src ~seq ~expedited ->
      prev_obtained ~src ~seq ~expedited;
      (* The hook fires for every delivery; only packets this member
         detected as lost close a recovery span. *)
      if Srm.Host.suffered_loss ~src host ~seq then
        Obs.Trace.record trace ~at:(Sim.Engine.now engine) ~node ~stream:src
          ~key:(Srm.Key.make ~stride ~src ~seq)
          (if expedited then Obs.Trace.Recovered_expedited else Obs.Trace.Recovered_fallback))

let record_recovery_hist registry ~rtt_of (r : Stats.Recovery.record) =
  let seconds = Obs.Registry.hist registry "recovery/latency_s" in
  let rtt_all = Obs.Registry.hist registry "recovery/latency_rtt" in
  let rtt_exp = Obs.Registry.hist registry "recovery/latency_rtt_expedited" in
  let rtt_fall = Obs.Registry.hist registry "recovery/latency_rtt_fallback" in
  let latency = Stats.Recovery.latency r in
  Obs.Hist.add seconds latency;
  match rtt_of r.node with
  | Some rtt when rtt > 0. ->
      let norm = latency /. rtt in
      Obs.Hist.add rtt_all norm;
      Obs.Hist.add (if r.expedited then rtt_exp else rtt_fall) norm
  | _ -> ()

let attach_recovery_hists registry ~rtt_of recoveries =
  List.iter (record_recovery_hist registry ~rtt_of) (Stats.Recovery.records recoveries)

(* Records-off (steady) runs can't fold the hists at end of run — the
   record list is gone — so the observer feeds them one record at a
   time as recoveries land. Same adds in the same (insertion) order as
   the offline fold, and the hists themselves are log-bucketed arrays,
   so observability memory stays constant in stream length. *)
let attach_recovery_hists_online registry ~rtt_of recoveries =
  Stats.Recovery.set_observer recoveries (record_recovery_hist registry ~rtt_of)
