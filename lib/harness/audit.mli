(** A passive protocol auditor.

    CESRM descends from a line of work on formally modelled multicast
    protocols (the first author's thesis develops SRM and CESRM in the
    IOA framework); this module carries a little of that spirit into
    the simulator: it taps every packet the network sends and checks
    global safety invariants that any correct SRM/CESRM/LMS execution
    must satisfy. Attach before running; read violations after.

    Invariants checked:

    - {b data-well-formed}: each stream's original transmissions carry
      strictly increasing sequence numbers, each sent exactly once;
    - {b request-subject-exists}: no repair request (expedited or not)
      names a sequence number the source has not yet sent;
    - {b reply-has-cause}: every reply is preceded by some request or
      expedited request for the same packet;
    - {b replier-plausible}: no member retransmits a packet it could
      not hold (it neither sent it nor could have received it —
      approximated as: the reply does not precede the original send);
    - {b expedited-singleton}: a member never sends two expedited
      requests for the same packet (the REORDER-DELAY timer is unique
      per loss);
    - {b request-rounds-bounded}: per member and packet, the number of
      multicast requests never exceeds SRM's round cap. *)

type t

type violation = { at : float; rule : string; detail : string }

val create : ?expect_in_order:bool -> ?max_exp_per_loss:int -> Net.Network.t -> t
(** An auditor with no tap installed: feed it explicitly with
    {!observe}. A sharded run uses this on the primary worker, replaying
    the merged cross-shard tap stream in timestamp order. Options as in
    {!attach}. *)

val observe : t -> at:float -> from:int -> Net.Packet.t -> unit
(** Record one packet send observed at time [at]. {!attach} wires this
    to the network tap with [at] = the engine clock. *)

val attach : ?expect_in_order:bool -> ?max_exp_per_loss:int -> Net.Network.t -> t
(** Installs the tap. The auditor sees sends from that moment on.
    [expect_in_order] (default true) enforces strictly increasing
    source sequence numbers — disable under deliberate send jitter.
    [max_exp_per_loss] (default 1, CESRM's invariant) bounds expedited
    requests per member and packet — raise it for LMS, whose retries
    legitimately resend. *)

val retire_below : t -> upto:int -> unit
(** Drop per-packet bookkeeping for every seq at or below [upto] (on
    all sources, clamped to each source's highest sent seq), after
    running the expedited-singleton check over the retiring entries.
    Late traffic naming retired seqs is thereafter exempt from the
    per-packet invariants — its history was checked before retirement.
    Streaming (steady) runs call this at each stability epoch so the
    auditor's memory tracks the live window, not the stream length. *)

val violations : t -> violation list
(** In occurrence order. Empty for a correct execution. *)

val packets_seen : t -> int

val check : t -> unit
(** @raise Failure listing the violations, if any. For tests. *)

val pp_violation : Format.formatter -> violation -> unit
