type violation = { at : float; rule : string; detail : string }

type t = {
  network : Net.Network.t;
  expect_in_order : bool;
  max_exp_per_loss : int;
  mutable finalized : bool;
  mutable seen : int;
  mutable violations : violation list;
  max_data_seq : (int, int) Hashtbl.t; (* per stream source *)
  retired_floor : (int, int) Hashtbl.t; (* per source: seqs <= floor retired *)
  requested : (int * int, unit) Hashtbl.t; (* (src, seq) with a request *)
  data_sent_at : (int * int, float) Hashtbl.t;
  exp_requests : (int * int * int, int) Hashtbl.t; (* (host, src, seq) -> count *)
  requests : (int * int * int, int) Hashtbl.t; (* (host, src, seq) -> mc request count *)
}

let now t = Sim.Engine.now (Net.Network.engine t.network)

let flag t ~at rule detail = t.violations <- { at; rule; detail } :: t.violations

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let max_seq_of t src = Option.value ~default:0 (Hashtbl.find_opt t.max_data_seq src)

let floor_of t src = Option.value ~default:0 (Hashtbl.find_opt t.retired_floor src)

(* The observation core takes the send time explicitly: a serial run's
   tap passes the engine clock, while a sharded run feeds the merged
   cross-shard tap stream after the fact, in timestamp order. *)
let observe t ~at ~from (p : Net.Packet.t) =
  let flag = flag ~at in
  t.seen <- t.seen + 1;
  match p.payload with
  | Net.Packet.Data { seq } ->
      (* any member may source a stream; its own sends are the stream *)
      let src = from in
      if t.expect_in_order && seq <> max_seq_of t src + 1 then
        flag t "data-well-formed"
          (Printf.sprintf "source %d sent seq %d after %d" src seq (max_seq_of t src));
      Hashtbl.replace t.max_data_seq src (max (max_seq_of t src) seq);
      if Hashtbl.mem t.data_sent_at (src, seq) then
        flag t "data-well-formed" (Printf.sprintf "source %d seq %d sent twice" src seq)
      else Hashtbl.replace t.data_sent_at (src, seq) at
  (* Seqs at or below a source's retired floor are past their stability
     horizon: their bookkeeping has been dropped, so the per-packet
     invariants can no longer be evaluated (and late requests for them
     are legitimate — replies still serve retired packets). Their
     history was checked before retirement. *)
  | Net.Packet.Request { src; seq; requestor; round = _; _ } when seq > floor_of t src ->
      if seq > max_seq_of t src then
        flag t "request-subject-exists"
          (Printf.sprintf "host %d requested unsent src %d seq %d" requestor src seq);
      Hashtbl.replace t.requested (src, seq) ();
      bump t.requests (requestor, src, seq);
      let n = Hashtbl.find t.requests (requestor, src, seq) in
      if n > Srm.Params.default.max_rounds + 1 then
        flag t "request-rounds-bounded"
          (Printf.sprintf "host %d sent %d requests for seq %d" requestor n seq)
  | Net.Packet.Exp_request { src; seq; requestor; _ } when seq > floor_of t src ->
      if seq > max_seq_of t src then
        flag t "request-subject-exists"
          (Printf.sprintf "host %d expedited unsent src %d seq %d" requestor src seq);
      Hashtbl.replace t.requested (src, seq) ();
      bump t.exp_requests (requestor, src, seq)
  | Net.Packet.Reply { src; seq; replier; _ } when seq > floor_of t src ->
      if not (Hashtbl.mem t.requested (src, seq)) then
        flag t "reply-has-cause"
          (Printf.sprintf "host %d replied to unrequested src %d seq %d" replier src seq);
      (match Hashtbl.find_opt t.data_sent_at (src, seq) with
      | Some sent when sent <= at -> ()
      | _ ->
          flag t "replier-plausible"
            (Printf.sprintf "host %d retransmitted src %d seq %d before the original send"
               replier src seq))
  | Net.Packet.Request _ | Net.Packet.Exp_request _ | Net.Packet.Reply _ -> ()
  | Net.Packet.Session _ -> ()

(* Drop bookkeeping for all seqs at or below [upto] on every source,
   first running the end-of-run expedited-singleton check over the
   retiring entries so nothing escapes it. Keeps the auditor's memory
   proportional to the live window on streaming runs. *)
let retire_below t ~upto =
  let retiring src seq = seq <= upto && seq > floor_of t src in
  Hashtbl.iter
    (fun (host, src, seq) n ->
      if retiring src seq && n > t.max_exp_per_loss then
        flag t ~at:(now t) "expedited-singleton"
          (Printf.sprintf "host %d sent %d expedited requests for seq %d" host n seq))
    t.exp_requests;
  let sweep2 table =
    let dead =
      Hashtbl.fold (fun ((src, seq) as k) _ acc -> if retiring src seq then k :: acc else acc)
        table []
    in
    List.iter (Hashtbl.remove table) dead
  in
  let sweep3 table =
    let dead =
      Hashtbl.fold
        (fun ((_, src, seq) as k) _ acc -> if retiring src seq then k :: acc else acc)
        table []
    in
    List.iter (Hashtbl.remove table) dead
  in
  sweep2 t.requested;
  sweep2 t.data_sent_at;
  sweep3 t.exp_requests;
  sweep3 t.requests;
  Hashtbl.iter
    (fun src max_seq ->
      (* never lift the floor past what the source actually sent:
         requests for genuinely unsent seqs must keep getting flagged *)
      let upto = min upto max_seq in
      if upto > floor_of t src then Hashtbl.replace t.retired_floor src upto)
    t.max_data_seq

let finalize_checks t =
  if not t.finalized then begin
    t.finalized <- true;
    Hashtbl.iter
      (fun (host, _src, seq) n ->
        if n > t.max_exp_per_loss then
          flag t ~at:(now t) "expedited-singleton"
            (Printf.sprintf "host %d sent %d expedited requests for seq %d" host n seq))
      t.exp_requests
  end

(* LMS retries legitimately resend expedited requests (pass a higher
   [max_exp_per_loss]); CESRM's REORDER-DELAY timer is unique per loss,
   so its runs are audited with the strict default of 1. *)
let create ?(expect_in_order = true) ?(max_exp_per_loss = 1) network =
  {
    network;
    expect_in_order;
    max_exp_per_loss;
    finalized = false;
    seen = 0;
    violations = [];
    max_data_seq = Hashtbl.create 4;
    retired_floor = Hashtbl.create 4;
    requested = Hashtbl.create 256;
    data_sent_at = Hashtbl.create 1024;
    exp_requests = Hashtbl.create 256;
    requests = Hashtbl.create 256;
  }

let attach ?expect_in_order ?max_exp_per_loss network =
  let t = create ?expect_in_order ?max_exp_per_loss network in
  Net.Network.set_tap network (fun ~from p ->
      observe t ~at:(now t) ~from p);
  t

let violations t =
  finalize_checks t;
  List.rev t.violations

let packets_seen t = t.seen

let pp_violation ppf v = Format.fprintf ppf "[%.4f] %s: %s" v.at v.rule v.detail

let check t =
  match violations t with
  | [] -> ()
  | vs ->
      failwith
        (Printf.sprintf "protocol audit failed (%d violations): %s" (List.length vs)
           (String.concat "; "
              (List.map (fun v -> Format.asprintf "%a" pp_violation v) vs)))
