type phase = {
  recoveries : int;
  mean_latency : float;
  p99_latency : float;
  max_latency : float;
}

type outcome = {
  label : string;
  crashed : int;
  before : phase;
  after : phase;
  unrecovered_alive : int;
}

let empty_phase = { recoveries = 0; mean_latency = 0.; p99_latency = 0.; max_latency = 0. }

let phase_of records =
  match records with
  | [] -> empty_phase
  | _ ->
      let s = Stats.Summary.create () in
      List.iter (fun r -> Stats.Summary.add s (Stats.Recovery.latency r)) records;
      {
        recoveries = Stats.Summary.count s;
        mean_latency = Stats.Summary.mean s;
        p99_latency = Stats.Summary.percentile s 0.99;
        max_latency = Stats.Summary.max s;
      }

let split_phases ~crash_at ~crashed recoveries =
  let alive = List.filter (fun r -> r.Stats.Recovery.node <> crashed) recoveries in
  let before, after =
    List.partition (fun r -> r.Stats.Recovery.detected_at < crash_at) alive
  in
  (phase_of before, phase_of after)

let make_network trace attribution =
  let tree = Mtrace.Trace.tree trace in
  let engine = Sim.Engine.create ~seed:4242L () in
  let network = Net.Network.create ~engine ~tree () in
  let cut_memo = Hashtbl.create 512 in
  Net.Network.set_drop network (fun ~link ~down (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Data { seq } ->
          let cuts =
            match Hashtbl.find_opt cut_memo seq with
            | Some c -> c
            | None ->
                let c = Inference.Attribution.cuts attribution ~seq in
                Hashtbl.replace cut_memo seq c;
                c
          in
          down && List.mem link cuts
      | _ -> false);
  (engine, network)

let warmup = 5.0

let tail = 30.0

(* The member each protocol leans on hardest. For LMS: the designated
   replier with the most receivers routing to it. For SRM/CESRM: the
   receiver that sent the most retransmissions in a crash-free dry
   run. *)
let busiest_lms_replier tree =
  let repliers = Lms.Routing.designate tree ~alive:(fun _ -> true) in
  let score = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      match Lms.Routing.route tree ~repliers ~from:r with
      | Some (_, replier) when replier <> 0 ->
          Hashtbl.replace score replier (1 + Option.value ~default:0 (Hashtbl.find_opt score replier))
      | _ -> ())
    (Net.Tree.receivers tree);
  Hashtbl.fold
    (fun node count (best_node, best_count) ->
      if count > best_count then (node, count) else (best_node, best_count))
    score
    ((Net.Tree.receivers tree).(0), 0)
  |> fst

let busiest_srm_replier trace attribution ~cesrm =
  let engine, network = make_network trace attribution in
  let counters, members_detect =
    if cesrm then begin
      let proto =
        Cesrm.Proto.deploy ~network ~params:Srm.Params.default
          ~n_packets:(Mtrace.Trace.n_packets trace) ~period:(Mtrace.Trace.period trace) ()
      in
      Cesrm.Proto.start proto ~warmup ~tail;
      (Cesrm.Proto.counters proto, fun () -> ())
    end
    else begin
      let proto =
        Srm.Proto.deploy ~network ~params:Srm.Params.default
          ~n_packets:(Mtrace.Trace.n_packets trace) ~period:(Mtrace.Trace.period trace) ()
      in
      Srm.Proto.start proto ~warmup ~tail;
      (Srm.Proto.counters proto, fun () -> ())
    end
  in
  members_detect ();
  Sim.Engine.run ~until:1e6 engine;
  Array.fold_left
    (fun (best, best_count) node ->
      let c =
        Stats.Counters.get counters ~node Stats.Counters.Repl
        + Stats.Counters.get counters ~node Stats.Counters.Exp_repl
      in
      if c > best_count then (node, c) else (best, best_count))
    ((Net.Tree.receivers (Mtrace.Trace.tree trace)).(0), -1)
    (Net.Tree.receivers (Mtrace.Trace.tree trace))
  |> fst

let crash_time trace = warmup +. (float_of_int (Mtrace.Trace.n_packets trace) *. Mtrace.Trace.period trace /. 2.)

let finish ~label ~crashed ~crash_at ~recoveries ~alive_detected engine =
  Sim.Engine.run ~until:1e6 engine;
  let records = Stats.Recovery.records recoveries in
  let before, after = split_phases ~crash_at ~crashed records in
  let recovered_alive =
    List.length (List.filter (fun r -> r.Stats.Recovery.node <> crashed) records)
  in
  { label; crashed; before; after; unrecovered_alive = alive_detected () - recovered_alive }

let schedule_crash engine network node ~at =
  ignore (Sim.Engine.schedule_at engine ~at (fun () -> Net.Network.set_enabled network node false))

let run_srm ?lms_refresh:_ ~crash_at trace attribution =
  let crashed = busiest_srm_replier trace attribution ~cesrm:false in
  let engine, network = make_network trace attribution in
  let proto =
    Srm.Proto.deploy ~network ~params:Srm.Params.default ~n_packets:(Mtrace.Trace.n_packets trace)
      ~period:(Mtrace.Trace.period trace) ()
  in
  Srm.Proto.start proto ~warmup ~tail;
  schedule_crash engine network crashed ~at:crash_at;
  let alive_detected () =
    List.fold_left
      (fun acc (node, h) -> if node <> crashed then acc + Srm.Host.detected_losses h else acc)
      0 (Srm.Proto.members proto)
  in
  finish ~label:"SRM" ~crashed ~crash_at ~recoveries:(Srm.Proto.recoveries proto) ~alive_detected
    engine

let run_cesrm ?lms_refresh:_ ~crash_at trace attribution =
  let crashed = busiest_srm_replier trace attribution ~cesrm:true in
  let engine, network = make_network trace attribution in
  let proto =
    Cesrm.Proto.deploy ~network ~params:Srm.Params.default
      ~n_packets:(Mtrace.Trace.n_packets trace) ~period:(Mtrace.Trace.period trace) ()
  in
  Cesrm.Proto.start proto ~warmup ~tail;
  schedule_crash engine network crashed ~at:crash_at;
  let alive_detected () =
    List.fold_left
      (fun acc (node, h) ->
        if node <> crashed then acc + Srm.Host.detected_losses (Cesrm.Host.srm h) else acc)
      0 (Cesrm.Proto.members proto)
  in
  finish ~label:"CESRM" ~crashed ~crash_at ~recoveries:(Cesrm.Proto.recoveries proto)
    ~alive_detected engine

let run_lms ?(lms_refresh = 10.) ~crash_at trace attribution =
  let crashed = busiest_lms_replier (Mtrace.Trace.tree trace) in
  let engine, network = make_network trace attribution in
  let proto =
    Lms.Proto.deploy ~network ~n_packets:(Mtrace.Trace.n_packets trace)
      ~period:(Mtrace.Trace.period trace) ~refresh_period:lms_refresh ()
  in
  Lms.Proto.start proto ~warmup ~tail;
  schedule_crash engine network crashed ~at:crash_at;
  let alive_detected () =
    List.fold_left
      (fun acc (node, h) -> if node <> crashed then acc + Lms.Host.detected_losses h else acc)
      0 (Lms.Proto.members proto)
  in
  finish ~label:"LMS" ~crashed ~crash_at ~recoveries:(Lms.Proto.recoveries proto) ~alive_detected
    engine

let report ?n_packets row =
  let gen = Mtrace.Generator.synthesize ?n_packets row in
  let trace = gen.Mtrace.Generator.trace in
  let attribution = Runner.attribution_of_trace trace in
  let crash_at = crash_time trace in
  let outcomes =
    [
      run_srm ~crash_at trace attribution;
      run_cesrm ~crash_at trace attribution;
      run_lms ~crash_at trace attribution;
    ]
  in
  let rows =
    List.map
      (fun o ->
        [
          o.label;
          string_of_int o.crashed;
          Printf.sprintf "%.3f" o.before.mean_latency;
          Printf.sprintf "%.3f" o.after.mean_latency;
          Printf.sprintf "%.2f" o.after.p99_latency;
          Printf.sprintf "%.2f" o.after.max_latency;
          string_of_int o.unrecovered_alive;
        ])
      outcomes
  in
  Printf.sprintf
    "Extension — membership churn on %s: the member each protocol leans on hardest crashes\n\
     mid-transmission (t = %.0f s). LMS's router replier state is stale until its 10 s\n\
     refresh, stalling its subtree; CESRM falls back on SRM and re-learns a live pair\n\
     (paper Sections 3.3 and 5). Latencies in seconds, surviving receivers only.\n"
    row.Mtrace.Meta.name crash_at
  ^ Stats.Table.render
      ~header:
        [
          "protocol";
          "crashed";
          "mean before";
          "mean after";
          "p99 after";
          "max after";
          "unrecovered";
        ]
      ~rows
