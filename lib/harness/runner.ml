type protocol = Srm_protocol | Cesrm_protocol of Cesrm.Host.config | Lms_protocol

let protocol_name = function
  | Srm_protocol -> "SRM"
  | Cesrm_protocol config -> if config.Cesrm.Host.router_assist then "CESRM+RA" else "CESRM"
  | Lms_protocol -> "LMS"

type setup = {
  link_delay : float;
  bandwidth_bps : float;
  params : Srm.Params.t;
  warmup : float;
  tail : float;
  lossy_recovery : bool;
  lossy_sessions : bool;
  data_jitter : float;
  heterogeneous_delays : bool;
  seed : int64;
}

let default_setup =
  {
    link_delay = 0.020;
    bandwidth_bps = 1.5e6;
    params = Srm.Params.default;
    warmup = 5.0;
    tail = 30.0;
    lossy_recovery = false;
    lossy_sessions = false;
    data_jitter = 0.;
    heterogeneous_delays = false;
    seed = 42L;
  }

type result = {
  trace : Mtrace.Trace.t;
  protocol : protocol;
  setup : setup;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
  cost : Net.Cost.t;
  rtt_to_source : (int * float) list;
  exp_requests : int;
  exp_replies : int;
  unrecovered : int;
  detected : int;
  audit_violations : int;  (* protocol-invariant violations; 0 expected *)
  oracle_violations : int;  (* fault-oracle violations; 0 without a fault plan *)
  oracle : Fault.Oracle.t option;  (* present iff a fault plan was run *)
}

let attribution_of_trace trace =
  Inference.Attribution.infer ~rates:(Inference.Yajnik.estimate trace) trace

type loss_model =
  | Attributed of Inference.Attribution.t
  | Ground_truth of Mtrace.Bitset.t array

(* Loss injection: drop an original data packet on exactly the links
   the loss model names for it; optionally drop recovery packets per
   estimated link rates. Session traffic is never dropped (Section 4.3
   presumes lossless session exchange).

   [Attributed] replays the paper's Section 4.2 pipeline: each data
   packet is cut on the links maximum-likelihood attribution blames.
   [Ground_truth] skips inference and drops packet [seq] on link [l]
   iff the generator's Gilbert chain had [l] Bad at step [seq - 1] —
   the same indexing [Trace.lost] reads, so the losses receivers
   observe are exactly the trace. Attribution is quadratic-ish in
   receivers and pointless when the generator's own link states are in
   hand, which is what the synthetic scale scenarios use. *)
let make_drop ~loss_model ~lossy_recovery ~lossy_sessions ~rates ~rng =
  let data_cut =
    match loss_model with
    | Ground_truth link_bad ->
        fun ~link ~seq -> Mtrace.Bitset.get link_bad.(link) (seq - 1)
    | Attributed attribution ->
        (* The predicate runs once per link crossing per data packet, so
           each packet's cut set is kept as a per-seq bitset over link
           ids rather than a list to scan. [rates] is sized n_nodes in
           both runner configurations, which bounds every link id. *)
        let n_links = Array.length rates in
        let cut_sets = Hashtbl.create 1024 in
        let cuts_of seq =
          match Hashtbl.find cut_sets seq with
          | cuts -> cuts
          | exception Not_found ->
              let cuts = Mtrace.Bitset.create n_links in
              List.iter (Mtrace.Bitset.set cuts) (Inference.Attribution.cuts attribution ~seq);
              Hashtbl.replace cut_sets seq cuts;
              cuts
        in
        fun ~link ~seq -> Mtrace.Bitset.get (cuts_of seq) link
  in
  fun ~link ~down (p : Net.Packet.t) ->
    match p.payload with
    | Net.Packet.Data { seq } -> down && data_cut ~link ~seq
    | Net.Packet.Session _ -> lossy_sessions && Sim.Rng.bernoulli rng rates.(link)
    | Net.Packet.Request _ | Net.Packet.Reply _ | Net.Packet.Exp_request _ ->
        lossy_recovery && Sim.Rng.bernoulli rng rates.(link)

let run_model ?(setup = default_setup) ?tracer ?registry ?fault_plan protocol trace loss_model =
  (* A fault plan switches on the robustness extensions unless the
     caller pinned them: session-driven request re-arm (bounds
     post-heal recovery latency by the session period instead of the
     2^k back-off) and CESRM's replier retry back-off. Unfaulted runs
     keep the paper-faithful defaults bit-for-bit. *)
  let setup =
    match fault_plan with
    | Some _ when setup.params.Srm.Params.rearm_backoff = None ->
        {
          setup with
          params =
            {
              setup.params with
              Srm.Params.rearm_backoff = Some setup.params.Srm.Params.session_period;
            };
        }
    | _ -> setup
  in
  let protocol =
    match (protocol, fault_plan) with
    | Cesrm_protocol config, Some _ when config.Cesrm.Host.replier_failure_limit = None ->
        Cesrm_protocol { config with Cesrm.Host.replier_failure_limit = Some 8 }
    | _ -> protocol
  in
  let tree = Mtrace.Trace.tree trace in
  let n_packets = Mtrace.Trace.n_packets trace in
  let period = Mtrace.Trace.period trace in
  let engine = Sim.Engine.create ~seed:setup.seed () in
  let network =
    if setup.heterogeneous_delays then begin
      (* Per-link delays log-uniform in [link_delay/3, 3·link_delay]:
         the real MBone had heterogeneous latencies; the paper used a
         uniform delay, so this is a robustness probe. *)
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      let delays =
        Array.init (Net.Tree.n_nodes tree) (fun l ->
            if l = 0 then 0.
            else Sim.Rng.log_uniform rng (setup.link_delay /. 3.) (3. *. setup.link_delay))
      in
      Net.Network.create_heterogeneous ~engine ~tree ~delays
        ~bandwidth_bps:setup.bandwidth_bps ()
    end
    else
      Net.Network.create ~engine ~tree ~link_delay:setup.link_delay
        ~bandwidth_bps:setup.bandwidth_bps ()
  in
  let rates =
    if setup.lossy_recovery || setup.lossy_sessions then Inference.Yajnik.estimate trace
    else Array.make (Net.Tree.n_nodes tree) 0.
  in
  let drop_rng = Sim.Rng.split (Sim.Engine.rng engine) in
  Net.Network.set_drop network
    (make_drop ~loss_model ~lossy_recovery:setup.lossy_recovery
       ~lossy_sessions:setup.lossy_sessions ~rates ~rng:drop_rng);
  (* Every run is audited against the global protocol invariants; LMS
     retries legitimately repeat expedited requests, so its bound is
     loose. *)
  let audit =
    Audit.attach
      ~expect_in_order:(setup.data_jitter <= 0.)
      ~max_exp_per_loss:(match protocol with Lms_protocol -> 64 | _ -> 1)
      network
  in
  (* Tracing piggybacks on the packet tap (composed after the
     auditor's) and, per member, on the SRM hooks — attached only when
     a tracer was passed, so the untraced run is the seed code path. *)
  let stride = n_packets + 1 in
  Option.iter (fun tr -> Instrument.attach_network ~trace:tr ~stride network) tracer;
  (* The fault oracle's network tap composes after the auditor's and
     the tracer's; its per-member hook wrappers are added as each
     protocol arm deploys (after CESRM installed its own hooks). *)
  let oracle = Option.map (fun _ -> Fault.Oracle.create ~network ()) fault_plan in
  let trace_host srm_host =
    Option.iter (fun tr -> Instrument.attach_srm_host ~trace:tr ~stride srm_host) tracer;
    Option.iter (fun o -> Fault.Oracle.attach_host o srm_host) oracle
  in
  let compile_faults ~on_restart =
    Option.iter (fun plan -> Fault.Plan.compile ~network ~on_restart plan) fault_plan
  in
  let finish ~counters ~recoveries ~exp_requests ~exp_replies ~detected ~publish =
    let horizon = setup.warmup +. (float_of_int n_packets *. period) +. setup.tail +. 240. in
    Sim.Engine.run ~until:horizon engine;
    Option.iter
      (fun o ->
        Fault.Oracle.finalize o;
        List.iter
          (fun v -> Stats.Counters.bump counters ~node:v.Fault.Oracle.node Stats.Counters.Oracle)
          (Fault.Oracle.violations o))
      oracle;
    (* Source-to-node RTTs in one top-down pass. Accumulating parent
       distance plus own link delay adds the delays in the same order
       [Net.Network.rtt network 0 node] does, so the values are
       bit-identical to the former per-receiver calls — without the
       per-node path walk (quadratic on deep trees). *)
    let rtts = Array.make (Net.Tree.n_nodes tree) 0. in
    let rec fill_rtts v d =
      List.iter
        (fun c ->
          let dc = d +. Net.Network.link_delay network c in
          rtts.(c) <- 2. *. dc;
          fill_rtts c dc)
        (Net.Tree.children tree v)
    in
    fill_rtts 0 0.;
    let is_receiver node = node <> 0 && Net.Tree.is_leaf tree node in
    let rtt_to_source =
      Array.to_list
        (Array.map (fun node -> (node, rtts.(node))) (Net.Tree.receivers tree))
    in
    Option.iter
      (fun reg ->
        Sim.Engine.publish_metrics engine reg;
        Net.Network.publish_metrics network reg;
        publish reg;
        Obs.Registry.incr ~by:(Stats.Recovery.count recoveries) reg "recovery/recovered";
        Option.iter
          (fun o -> Obs.Registry.incr ~by:(Fault.Oracle.n_violations o) reg "fault/oracle_violations")
          oracle;
        Instrument.attach_recovery_hists reg
          ~rtt_of:(fun node -> if is_receiver node then Some rtts.(node) else None)
          recoveries)
      registry;
    let recovered = Stats.Recovery.count recoveries in
    {
      trace;
      protocol;
      setup;
      counters;
      recoveries;
      cost = Net.Network.cost network;
      rtt_to_source;
      exp_requests;
      exp_replies;
      unrecovered = detected () - recovered;
      detected = detected ();
      audit_violations = List.length (Audit.violations audit);
      oracle_violations = (match oracle with None -> 0 | Some o -> Fault.Oracle.n_violations o);
      oracle;
    }
  in
  match protocol with
  | Srm_protocol ->
      let proto = Srm.Proto.deploy ~network ~params:setup.params ~n_packets ~period in
      List.iter (fun (_, h) -> trace_host h) (Srm.Proto.members proto);
      compile_faults ~on_restart:(fun ~node ->
          Option.iter Srm.Host.restart_recovery (List.assoc_opt node (Srm.Proto.members proto)));
      Srm.Proto.start ~send_jitter:setup.data_jitter proto ~warmup:setup.warmup ~tail:setup.tail;
      let detected () =
        List.fold_left (fun acc (_, h) -> acc + Srm.Host.detected_losses h) 0 (Srm.Proto.members proto)
      in
      let publish reg =
        List.iter (fun (_, h) -> Srm.Host.publish_metrics h reg) (Srm.Proto.members proto)
      in
      finish ~counters:(Srm.Proto.counters proto) ~recoveries:(Srm.Proto.recoveries proto)
        ~exp_requests:0 ~exp_replies:0 ~detected ~publish
  | Cesrm_protocol config ->
      let proto =
        Cesrm.Proto.deploy ~config ~network ~params:setup.params ~n_packets ~period ()
      in
      (* After deploy: the CESRM hosts have installed their own hooks,
         which the tracer chains onto rather than replaces. *)
      List.iter (fun (_, h) -> trace_host (Cesrm.Host.srm h)) (Cesrm.Proto.members proto);
      compile_faults ~on_restart:(fun ~node ->
          Option.iter
            (fun h ->
              Cesrm.Host.reset_caches h;
              Srm.Host.restart_recovery (Cesrm.Host.srm h))
            (List.assoc_opt node (Cesrm.Proto.members proto)));
      Cesrm.Proto.start ~send_jitter:setup.data_jitter proto ~warmup:setup.warmup
        ~tail:setup.tail;
      let detected () =
        List.fold_left
          (fun acc (_, h) -> acc + Srm.Host.detected_losses (Cesrm.Host.srm h))
          0 (Cesrm.Proto.members proto)
      in
      let publish reg =
        List.iter (fun (_, h) -> Cesrm.Host.publish_metrics h reg) (Cesrm.Proto.members proto)
      in
      let result =
        finish ~counters:(Cesrm.Proto.counters proto) ~recoveries:(Cesrm.Proto.recoveries proto)
          ~exp_requests:0 ~exp_replies:0 ~detected ~publish
      in
      {
        result with
        exp_requests = Cesrm.Proto.expedited_requests proto;
        exp_replies = Cesrm.Proto.expedited_replies proto;
      }
  | Lms_protocol ->
      let proto = Lms.Proto.deploy ~network ~n_packets ~period () in
      (* LMS hosts carry no SRM soft state; crashes just toggle the
         enabled flag, and the oracle checks network-level invariants
         only. *)
      compile_faults ~on_restart:(fun ~node:_ -> ());
      Lms.Proto.start proto ~warmup:setup.warmup ~tail:setup.tail;
      let publish reg =
        List.iter (fun (_, h) -> Lms.Host.publish_metrics h reg) (Lms.Proto.members proto)
      in
      finish ~counters:(Lms.Proto.counters proto) ~recoveries:(Lms.Proto.recoveries proto)
        ~exp_requests:0 ~exp_replies:0
        ~detected:(fun () -> Lms.Proto.detected proto)
        ~publish

let run ?setup ?tracer ?registry ?fault_plan protocol trace attribution =
  run_model ?setup ?tracer ?registry ?fault_plan protocol trace (Attributed attribution)

(* Harness tuning for the synthetic scale scenarios. Classic SRM
   settings assume a ~10–50 member group; at 10^3–10^4 members the
   session machinery is quadratic in aggregate (n messages of n
   deliveries per period, n^2 echo state) and the default-distance
   timers collapse into reply implosion. Scale runs therefore model
   the converged steady state the paper's Section 4.3 assumes: true
   tree distances ([oracle_distances]), session ticks from the source
   only ([session_sources_only] — its max-seq advertisements are what
   tail-loss detection needs), and a capped echo table should sessions
   be re-enabled by hand. Deep chains additionally shrink the per-link
   delay so the source-to-leaf path stays within the recovery timers'
   reach. Caller-pinned option values win. *)
let scale_setup ~family ~n_members setup =
  let session_echo_limit =
    match setup.params.Srm.Params.session_echo_limit with
    | Some _ as pinned -> pinned
    | None -> Some 32
  in
  (* Probabilistic-suppression windows widen as log2(n): with fixed C2
     and D2 the number of same-event requests and replies that fire
     before the first one propagates grows linearly with the group —
     reply implosion, and each un-suppressed reply is an O(n)-delivery
     flood. Log-widening is the static version of what the paper's
     adaptive timers converge to in large groups; the price is
     recovery latency growing with the window. *)
  let spread =
    Float.max 1. (3. *. Float.log (float_of_int (max 2 n_members)) /. Float.log 2.)
  in
  let params =
    {
      setup.params with
      Srm.Params.session_echo_limit;
      oracle_distances = true;
      session_sources_only = true;
      c2 = Float.max setup.params.Srm.Params.c2 spread;
      d2 = Float.max setup.params.Srm.Params.d2 spread;
    }
  in
  let link_delay =
    match family with Mtrace.Scale.Deep_chain -> 0.001 | _ -> setup.link_delay
  in
  { setup with params; link_delay }

let tune_for_trace trace setup =
  match Mtrace.Scale.family_of_name (Mtrace.Trace.name trace) with
  | None -> setup
  | Some family ->
      let n_members = 1 + Array.length (Net.Tree.receivers (Mtrace.Trace.tree trace)) in
      scale_setup ~family ~n_members setup

let run_leg ?(setup = default_setup) ?registry ?n_packets ?fault ~seed protocol row =
  let generated = Mtrace.Generator.synthesize ~seed ?n_packets row in
  let trace = generated.Mtrace.Generator.trace in
  let scale_family = Mtrace.Scale.family_of_name row.Mtrace.Meta.name in
  let setup = tune_for_trace trace setup in
  (* Scale scenarios inject the generator's own Gilbert link states
     directly; trace-sized rows replay the paper's inference pipeline. *)
  let loss_model =
    match scale_family with
    | None -> Attributed (attribution_of_trace trace)
    | Some _ -> Ground_truth generated.Mtrace.Generator.link_bad
  in
  let fault_plan =
    Option.map
      (fun name ->
        let tree = Mtrace.Trace.tree trace in
        let duration = float_of_int (Mtrace.Trace.n_packets trace) *. Mtrace.Trace.period trace in
        match Fault.Plan.canned ~tree ~warmup:setup.warmup ~duration name with
        | Some plan -> plan
        | None -> invalid_arg (Printf.sprintf "Runner.run_leg: unknown canned fault plan %S" name))
      fault
  in
  run_model ~setup:{ setup with seed } ?registry ?fault_plan protocol trace loss_model

let normalized_recovery result ~node ~filter =
  let rtt = List.assoc node result.rtt_to_source in
  Stats.Recovery.latency_summary result.recoveries
    ~normalize:(fun _ -> rtt)
    ~filter:(fun r -> r.Stats.Recovery.node = node && filter r)
