(* The protocol/setup/result types and the drop-predicate builder are
   shared with the sharded parallel runner; see [Run_types]. The
   equations keep [Harness.Runner.setup] et al. the public names. *)

type protocol = Run_types.protocol =
  | Srm_protocol
  | Cesrm_protocol of Cesrm.Host.config
  | Lms_protocol

let protocol_name = Run_types.protocol_name

type setup = Run_types.setup = {
  link_delay : float;
  bandwidth_bps : float;
  params : Srm.Params.t;
  warmup : float;
  tail : float;
  lossy_recovery : bool;
  lossy_sessions : bool;
  data_jitter : float;
  heterogeneous_delays : bool;
  seed : int64;
}

let default_setup = Run_types.default_setup

type result = Run_types.result = {
  trace : Mtrace.Trace.t;
  protocol : protocol;
  setup : setup;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
  cost : Net.Cost.t;
  rtt_to_source : (int * float) list;
  exp_requests : int;
  exp_replies : int;
  unrecovered : int;
  detected : int;
  forgiven : int;
  audit_violations : int;  (* protocol-invariant violations; 0 expected *)
  oracle_violations : int;  (* fault-oracle violations; 0 without a fault plan *)
  oracle : Fault.Oracle.t option;  (* present iff a fault plan was run *)
  retirement : Steady.Controller.t option;  (* present iff a finite window ran *)
}

let attribution_of_trace trace =
  Inference.Attribution.infer ~rates:(Inference.Yajnik.estimate trace) trace

type loss_model = Run_types.loss_model =
  | Attributed of Inference.Attribution.t
  | Ground_truth of Mtrace.Bitset.t array
  | Streamed of Mtrace.Stream_loss.t

(* A run is shardable when nothing in it needs a global view during
   execution: no tracer (its event stream interleaves all members), no
   LMS (subcasts route by global replier state), no lossy
   recovery/session drops (they draw from the drop RNG per walked
   branch, which shard-pruned walks would desynchronise), and no
   link-jitter fault events (per-crossing jitter draws, same problem).
   Everything else — crashes, partitions, outage and duplication
   windows, heterogeneous delays, data jitter — replays identically on
   every shard. *)
let shardable ~shards ~tracer ~fault_plan ~setup ~steady ~domains protocol =
  shards > 1 && tracer = None && domains = None
  && (not setup.lossy_recovery)
  && (not setup.lossy_sessions)
  && (match protocol with Lms_protocol -> false | _ -> true)
  (* Streaming sends shard fine (the reserved-seq chain replays
     identically per shard), but a finite retirement window needs the
     global delivered-prefix minimum mid-run, and records-off mode
     conflicts with the shard workers' record-tagging observer — both
     stay serial. *)
  && (match steady with
     | Some c ->
         c.Steady.Config.window = None && c.Steady.Config.retain_records
     | None -> true)
  &&
  match fault_plan with
  | None -> true
  | Some plan ->
      List.for_all
        (function Fault.Plan.Link_jitter _ -> false | _ -> true)
        plan.Fault.Plan.events

let run_model ?(setup = default_setup) ?tracer ?registry ?fault_plan ?(shards = 1) ?steady
    ?domains ?cache_policy protocol trace loss_model =
  (* [cache_policy] overrides the CESRM config's retention scheme — the
     CLI/bench lever; a no-op for SRM and LMS, and omitting it leaves
     the config (hence the default scheme's bits) untouched. *)
  let protocol =
    match (protocol, cache_policy) with
    | Cesrm_protocol config, Some retention -> Cesrm_protocol { config with Cesrm.Host.retention }
    | _ -> protocol
  in
  (* A fault plan switches on the robustness extensions unless the
     caller pinned them: session-driven request re-arm (bounds
     post-heal recovery latency by the session period instead of the
     2^k back-off) and CESRM's replier retry back-off. Unfaulted runs
     keep the paper-faithful defaults bit-for-bit. *)
  let setup =
    match fault_plan with
    | Some _ when setup.params.Srm.Params.rearm_backoff = None ->
        {
          setup with
          params =
            {
              setup.params with
              Srm.Params.rearm_backoff = Some setup.params.Srm.Params.session_period;
            };
        }
    | _ -> setup
  in
  let protocol =
    match (protocol, fault_plan) with
    | Cesrm_protocol config, Some _ when config.Cesrm.Host.replier_failure_limit = None ->
        Cesrm_protocol { config with Cesrm.Host.replier_failure_limit = Some 8 }
    | _ -> protocol
  in
  let tree = Mtrace.Trace.tree trace in
  (* Recovery domains: built once (pure topology, no randomness) and
     shared by every host. Scoped request timers aim at arbitrary
     designated repliers, whose distances the session exchange never
     converges for — domain runs therefore force true tree distances
     (the converged steady state, as scale runs already do). With
     [domains] absent nothing here touches the setup, so flat runs stay
     byte-identical. *)
  let domain = Option.map (fun spec -> Rdomain.of_tree ~tree spec) domains in
  let setup =
    match domain with
    | Some _ ->
        (* Domain timers fire on local round-trips, so session-driven
           detection additionally needs the in-flight allowance (see
           {!Srm.Params.domain_inflight_period}) — anchor it to the
           trace's send period unless the caller pinned one. *)
        let params = setup.params in
        let params =
          if params.Srm.Params.oracle_distances then params
          else { params with Srm.Params.oracle_distances = true }
        in
        let params =
          match params.Srm.Params.domain_inflight_period with
          | Some _ -> params
          | None ->
              { params with Srm.Params.domain_inflight_period = Some (Mtrace.Trace.period trace) }
        in
        if params == setup.params then setup else { setup with params }
    | None -> setup
  in
  (match (domain, protocol) with
  | Some _, Lms_protocol -> invalid_arg "Runner.run_model: domains are an SRM/CESRM mode"
  | _ -> ());
  let n_packets = Mtrace.Trace.n_packets trace in
  let period = Mtrace.Trace.period trace in
  (* Any steady config switches the sources to chain-armed streaming
     sends (byte-identical to the eager loop, lazy event production);
     the window and record levers are applied below where the hosts
     and collectors exist. *)
  let streaming_sends = Option.is_some steady in
  let drop_recs =
    match steady with Some c -> not c.Steady.Config.retain_records | None -> false
  in
  let serial () =
    let engine = Sim.Engine.create ~seed:setup.seed () in
    let network =
      if setup.heterogeneous_delays then begin
        (* Per-link delays log-uniform in [link_delay/3, 3·link_delay]:
           the real MBone had heterogeneous latencies; the paper used a
           uniform delay, so this is a robustness probe. *)
        let rng = Sim.Rng.split (Sim.Engine.rng engine) in
        let delays =
          Array.init (Net.Tree.n_nodes tree) (fun l ->
              if l = 0 then 0.
              else Sim.Rng.log_uniform rng (setup.link_delay /. 3.) (3. *. setup.link_delay))
        in
        Net.Network.create_heterogeneous ~engine ~tree ~delays
          ~bandwidth_bps:setup.bandwidth_bps ()
      end
      else
        Net.Network.create ~engine ~tree ~link_delay:setup.link_delay
          ~bandwidth_bps:setup.bandwidth_bps ()
    in
    let rates =
      if setup.lossy_recovery || setup.lossy_sessions then Inference.Yajnik.estimate trace
      else Array.make (Net.Tree.n_nodes tree) 0.
    in
    let drop_rng = Sim.Rng.split (Sim.Engine.rng engine) in
    Net.Network.set_drop network
      (Run_types.make_drop ~loss_model ~lossy_recovery:setup.lossy_recovery
         ~lossy_sessions:setup.lossy_sessions ~rates ~rng:drop_rng);
    (* Every run is audited against the global protocol invariants; LMS
       retries legitimately repeat expedited requests, so its bound is
       loose. *)
    let audit =
      Audit.attach
        ~expect_in_order:(setup.data_jitter <= 0.)
        ~max_exp_per_loss:(match protocol with Lms_protocol -> 64 | _ -> 1)
        network
    in
    (* A finite window gets a retirement controller; the auditor's
       per-packet tables retire with the hosts'. Member closures are
       registered per protocol arm below. *)
    let controller =
      match steady with
      | Some { Steady.Config.window = Some w; _ } ->
          Some (Steady.Controller.create ~window:w ~n_packets)
      | _ -> None
    in
    Option.iter
      (fun c -> Steady.Controller.on_retire c (fun ~upto -> Audit.retire_below audit ~upto))
      controller;
    (* Records-off mode must feed the latency histograms online — once
       the run ends the records are gone. Attached before the engine
       runs; the adds land in the same insertion order the end-of-run
       fold would use, so the histograms are bit-identical. *)
    let setup_steady_records recoveries =
      if drop_recs then begin
        Stats.Recovery.drop_records recoveries;
        (* Flush finalized per-loss spans (the makespan figure) as the
           stability horizon advances, keeping the span table bounded
           like the rest of the records-off state. *)
        Option.iter
          (fun c ->
            Steady.Controller.on_retire c (fun ~upto ->
                Stats.Recovery.retire_spans recoveries ~upto))
          controller;
        Option.iter
          (fun reg ->
            let rtts = Run_types.source_rtts ~tree ~delay:(Net.Network.link_delay network) in
            let is_receiver node = node <> 0 && Net.Tree.is_leaf tree node in
            Instrument.attach_recovery_hists_online reg
              ~rtt_of:(fun node -> if is_receiver node then Some rtts.(node) else None)
              recoveries)
          registry
      end
    in
    (* Tracing piggybacks on the packet tap (composed after the
       auditor's) and, per member, on the SRM hooks — attached only when
       a tracer was passed, so the untraced run is the seed code path. *)
    let stride = n_packets + 1 in
    Option.iter (fun tr -> Instrument.attach_network ~trace:tr ~stride network) tracer;
    (* The fault oracle's network tap composes after the auditor's and
       the tracer's; its per-member hook wrappers are added as each
       protocol arm deploys (after CESRM installed its own hooks). *)
    let oracle = Option.map (fun _ -> Fault.Oracle.create ~network ()) fault_plan in
    (* Churn: the oracle's packet-stream checks consult a membership
       timeline, seeded with the plan's initial absentees (late joiners
       are outside the group from time 0) and appended to as each
       join/leave timer fires (inside [compile_faults] below). *)
    Option.iter
      (fun o ->
        Option.iter
          (fun plan ->
            List.iter
              (fun node -> Fault.Oracle.note_membership o ~node ~at:0. ~member:false)
              (Fault.Plan.initial_absentees plan))
          fault_plan)
      oracle;
    (* Losses forgiven by departures: detected but still pending when
       the member left the group (it was not present for their full
       recovery windows), so end-of-run liveness accounting excludes
       them. *)
    let forgiven = ref 0 in
    let trace_host srm_host =
      Option.iter (fun tr -> Instrument.attach_srm_host ~trace:tr ~stride srm_host) tracer;
      Option.iter (fun o -> Fault.Oracle.attach_host o srm_host) oracle
    in
    (* A joiner's detection-window baseline: how many packets the
       source has put on the wire by now. Computed from the send
       schedule rather than the source host's state — the arithmetic is
       a pure function of the join time, so a sharded run (where the
       source host lives on one shard only) baselines identically. With
       send jitter the analytic count can be off by the packet
       straddling the join instant, which only shifts whether the
       joiner bothers recovering that one boundary packet — never
       whether liveness charges it. *)
    let join_baselines () =
      let at = Sim.Engine.now engine in
      let sent = 1 + int_of_float (Float.floor ((at -. setup.warmup) /. period)) in
      let sent = max 0 (min n_packets sent) in
      if sent = 0 then [] else [ (0, sent) ]
    in
    let compile_faults ?(on_join = fun ~node:_ -> ()) ?(on_leave = fun ~node:_ -> ()) ~on_restart
        () =
      Option.iter
        (fun plan ->
          Fault.Plan.compile ~network ~on_restart
            ~on_join:(fun ~node ->
              Option.iter
                (fun o ->
                  Fault.Oracle.note_membership o ~node ~at:(Sim.Engine.now engine) ~member:true)
                oracle;
              on_join ~node)
            ~on_leave:(fun ~node ->
              Option.iter
                (fun o ->
                  Fault.Oracle.note_membership o ~node ~at:(Sim.Engine.now engine) ~member:false;
                  Fault.Oracle.forget_node o ~node)
                oracle;
              on_leave ~node)
            plan)
        fault_plan
    in
    let finish ~counters ~recoveries ~exp_requests ~exp_replies ~detected ~publish =
      let horizon = Run_types.horizon ~setup ~n_packets ~period in
      (* The epoch tick drives retirement from inside the engine: no
         packets, no RNG, one reserved event seq per tick (a uniform
         shift of later seqs — same-time orderings are unchanged). *)
      Option.iter
        (fun c ->
          match
            Steady.Config.epoch_period
              (match steady with Some cfg -> cfg | None -> assert false)
              ~period
          with
          | Some every ->
              Sim.Engine.every_epoch engine ~every ~until:horizon (fun () ->
                  Steady.Controller.tick c)
          | None -> ())
        controller;
      Sim.Engine.run ~until:horizon engine;
      Option.iter
        (fun o ->
          Fault.Oracle.finalize o;
          List.iter
            (fun v -> Stats.Counters.bump counters ~node:v.Fault.Oracle.node Stats.Counters.Oracle)
            (Fault.Oracle.violations o))
        oracle;
      let rtts = Run_types.source_rtts ~tree ~delay:(Net.Network.link_delay network) in
      let is_receiver node = node <> 0 && Net.Tree.is_leaf tree node in
      let rtt_to_source =
        Array.to_list
          (Array.map (fun node -> (node, rtts.(node))) (Net.Tree.receivers tree))
      in
      Option.iter
        (fun reg ->
          Sim.Engine.publish_metrics engine reg;
          Net.Network.publish_metrics network reg;
          publish reg;
          Option.iter (fun c -> Steady.Controller.publish_metrics c reg) controller;
          Obs.Registry.incr ~by:(Stats.Recovery.count recoveries) reg "recovery/recovered";
          Option.iter
            (fun o -> Obs.Registry.incr ~by:(Fault.Oracle.n_violations o) reg "fault/oracle_violations")
            oracle;
          (* a no-op in records-off mode (the records are gone; the
             online observer already fed the histograms) *)
          Instrument.attach_recovery_hists reg
            ~rtt_of:(fun node -> if is_receiver node then Some rtts.(node) else None)
            recoveries)
        registry;
      let recovered = Stats.Recovery.count recoveries in
      {
        trace;
        protocol;
        setup;
        counters;
        recoveries;
        cost = Net.Network.cost network;
        rtt_to_source;
        exp_requests;
        exp_replies;
        unrecovered = detected () - recovered - !forgiven;
        detected = detected ();
        forgiven = !forgiven;
        audit_violations = List.length (Audit.violations audit);
        oracle_violations = (match oracle with None -> 0 | Some o -> Fault.Oracle.n_violations o);
        oracle;
        retirement = controller;
      }
    in
    match protocol with
    | Srm_protocol ->
        let proto =
          Srm.Proto.deploy ?domain ~network ~params:setup.params ~n_packets ~period ()
        in
        List.iter (fun (_, h) -> trace_host h) (Srm.Proto.members proto);
        setup_steady_records (Srm.Proto.recoveries proto);
        Option.iter
          (fun c ->
            List.iter
              (fun (node, h) ->
                Steady.Controller.add_member c
                  {
                    Steady.Controller.node;
                    delivered_prefix = (fun () -> Srm.Host.delivered_prefix h);
                    retire = (fun ~upto -> Srm.Host.retire_below h ~upto);
                  })
              (Srm.Proto.members proto))
          controller;
        compile_faults
          ~on_join:(fun ~node ->
            Option.iter
              (fun h -> Srm.Host.join h ~baselines:(join_baselines ()))
              (List.assoc_opt node (Srm.Proto.members proto)))
          ~on_leave:(fun ~node ->
            (* The departing host drops all soft state (forgiving its
               pending losses); every remaining member forgets the
               session state naming it. *)
            List.iter
              (fun (n, h) ->
                if n = node then forgiven := !forgiven + Srm.Host.depart h
                else Srm.Host.forget_peer h node)
              (Srm.Proto.members proto))
          ~on_restart:(fun ~node ->
            Option.iter Srm.Host.restart_recovery (List.assoc_opt node (Srm.Proto.members proto)))
          ();
        Srm.Proto.start ~send_jitter:setup.data_jitter ~streaming:streaming_sends proto
          ~warmup:setup.warmup ~tail:setup.tail;
        let detected () =
          List.fold_left (fun acc (_, h) -> acc + Srm.Host.detected_losses h) 0 (Srm.Proto.members proto)
        in
        let publish reg =
          List.iter (fun (_, h) -> Srm.Host.publish_metrics h reg) (Srm.Proto.members proto)
        in
        finish ~counters:(Srm.Proto.counters proto) ~recoveries:(Srm.Proto.recoveries proto)
          ~exp_requests:0 ~exp_replies:0 ~detected ~publish
    | Cesrm_protocol config ->
        let proto =
          Cesrm.Proto.deploy ~config ?domain ~network ~params:setup.params ~n_packets ~period ()
        in
        (* After deploy: the CESRM hosts have installed their own hooks,
           which the tracer chains onto rather than replaces. *)
        List.iter (fun (_, h) -> trace_host (Cesrm.Host.srm h)) (Cesrm.Proto.members proto);
        setup_steady_records (Cesrm.Proto.recoveries proto);
        Option.iter
          (fun c ->
            List.iter
              (fun (node, h) ->
                Steady.Controller.add_member c
                  {
                    Steady.Controller.node;
                    delivered_prefix =
                      (fun () -> Srm.Host.delivered_prefix (Cesrm.Host.srm h));
                    retire = (fun ~upto -> Cesrm.Host.retire_below h ~upto);
                  })
              (Cesrm.Proto.members proto))
          controller;
        compile_faults
          ~on_join:(fun ~node ->
            Option.iter
              (fun h -> Srm.Host.join (Cesrm.Host.srm h) ~baselines:(join_baselines ()))
              (List.assoc_opt node (Cesrm.Proto.members proto)))
          ~on_leave:(fun ~node ->
            (* Beyond the SRM departure, every remaining member
               invalidates its cached expedited pairs naming the
               departed replier — CESRM falls back to SRM recovery
               instead of unicasting a ghost. *)
            List.iter
              (fun (n, h) ->
                if n = node then begin
                  Cesrm.Host.reset_caches h;
                  forgiven := !forgiven + Srm.Host.depart (Cesrm.Host.srm h)
                end
                else begin
                  Cesrm.Host.invalidate_replier h ~replier:node;
                  Srm.Host.forget_peer (Cesrm.Host.srm h) node
                end)
              (Cesrm.Proto.members proto))
          ~on_restart:(fun ~node ->
            Option.iter
              (fun h ->
                Cesrm.Host.reset_caches h;
                Srm.Host.restart_recovery (Cesrm.Host.srm h))
              (List.assoc_opt node (Cesrm.Proto.members proto)))
          ();
        Cesrm.Proto.start ~send_jitter:setup.data_jitter ~streaming:streaming_sends proto
          ~warmup:setup.warmup ~tail:setup.tail;
        let detected () =
          List.fold_left
            (fun acc (_, h) -> acc + Srm.Host.detected_losses (Cesrm.Host.srm h))
            0 (Cesrm.Proto.members proto)
        in
        let publish reg =
          List.iter (fun (_, h) -> Cesrm.Host.publish_metrics h reg) (Cesrm.Proto.members proto)
        in
        let result =
          finish ~counters:(Cesrm.Proto.counters proto) ~recoveries:(Cesrm.Proto.recoveries proto)
            ~exp_requests:0 ~exp_replies:0 ~detected ~publish
        in
        {
          result with
          exp_requests = Cesrm.Proto.expedited_requests proto;
          exp_replies = Cesrm.Proto.expedited_replies proto;
        }
    | Lms_protocol ->
        let proto = Lms.Proto.deploy ~network ~n_packets ~period () in
        setup_steady_records (Lms.Proto.recoveries proto);
        Option.iter
          (fun c ->
            List.iter
              (fun (node, h) ->
                Steady.Controller.add_member c
                  {
                    Steady.Controller.node;
                    delivered_prefix = (fun () -> Lms.Host.delivered_prefix h);
                    retire = (fun ~upto -> Lms.Host.retire_below h ~upto);
                  })
              (Lms.Proto.members proto))
          controller;
        (* LMS hosts carry no SRM soft state; crashes just toggle the
           enabled flag, and the oracle checks network-level invariants
           only. *)
        compile_faults ~on_restart:(fun ~node:_ -> ()) ();
        Lms.Proto.start ~streaming:streaming_sends proto ~warmup:setup.warmup ~tail:setup.tail;
        let publish reg =
          List.iter (fun (_, h) -> Lms.Host.publish_metrics h reg) (Lms.Proto.members proto)
        in
        finish ~counters:(Lms.Proto.counters proto) ~recoveries:(Lms.Proto.recoveries proto)
          ~exp_requests:0 ~exp_replies:0
          ~detected:(fun () -> Lms.Proto.detected proto)
          ~publish
  in
  if not (shardable ~shards ~tracer ~fault_plan ~setup ~steady ~domains protocol) then serial ()
  else begin
    (* Replicate the per-link delays the workers will draw — same seed,
       same split, same sequence — to partition on true cut delays. *)
    let delay =
      if setup.heterogeneous_delays then begin
        let engine = Sim.Engine.create ~seed:setup.seed () in
        let rng = Sim.Rng.split (Sim.Engine.rng engine) in
        let delays =
          Array.init (Net.Tree.n_nodes tree) (fun l ->
              if l = 0 then 0.
              else Sim.Rng.log_uniform rng (setup.link_delay /. 3.) (3. *. setup.link_delay))
        in
        fun l -> delays.(l)
      end
      else fun _ -> setup.link_delay
    in
    let partition = Net.Partition.make ~tree ~delay ~shards in
    if partition.Net.Partition.n_shards < 2 then serial ()
    else
      Parallel.run ~partition ~delay ?registry ?fault_plan ~setup ~streaming:streaming_sends
        protocol trace loss_model
  end

let run ?setup ?tracer ?registry ?fault_plan ?shards ?steady ?domains ?cache_policy protocol trace
    attribution =
  run_model ?setup ?tracer ?registry ?fault_plan ?shards ?steady ?domains ?cache_policy protocol
    trace (Attributed attribution)

(* Harness tuning for the synthetic scale scenarios. Classic SRM
   settings assume a ~10–50 member group; at 10^3–10^4 members the
   session machinery is quadratic in aggregate (n messages of n
   deliveries per period, n^2 echo state) and the default-distance
   timers collapse into reply implosion. Scale runs therefore model
   the converged steady state the paper's Section 4.3 assumes: true
   tree distances ([oracle_distances]), session ticks from the source
   only ([session_sources_only] — its max-seq advertisements are what
   tail-loss detection needs), and a capped echo table should sessions
   be re-enabled by hand. Deep chains additionally shrink the per-link
   delay so the source-to-leaf path stays within the recovery timers'
   reach. Caller-pinned option values win. *)
let scale_setup ?domains ~family ~n_members setup =
  let session_echo_limit =
    match setup.params.Srm.Params.session_echo_limit with
    | Some _ as pinned -> pinned
    | None -> Some 32
  in
  (* Probabilistic-suppression windows widen as log2(n): with fixed C2
     and D2 the number of same-event requests and replies that fire
     before the first one propagates grows linearly with the group —
     reply implosion, and each un-suppressed reply is an O(n)-delivery
     flood. Log-widening is the static version of what the paper's
     adaptive timers converge to in large groups; the price is
     recovery latency growing with the window. Recovery domains shrink
     the suppression population from the whole group to one domain, so
     the window narrows to log2(domain bound) — the latency win local
     recovery exists for. *)
  let suppression_pop =
    match domains with
    | None -> n_members
    | Some spec -> Rdomain.spec_members ~n_members spec
  in
  let spread =
    Float.max 1. (3. *. Float.log (float_of_int (max 2 suppression_pop)) /. Float.log 2.)
  in
  let params =
    {
      setup.params with
      Srm.Params.session_echo_limit;
      oracle_distances = true;
      session_sources_only = true;
      c2 = Float.max setup.params.Srm.Params.c2 spread;
      d2 = Float.max setup.params.Srm.Params.d2 spread;
    }
  in
  let link_delay =
    match family with Mtrace.Scale.Deep_chain -> 0.001 | _ -> setup.link_delay
  in
  { setup with params; link_delay }

let tune_for_trace ?domains trace setup =
  match Mtrace.Scale.family_of_name (Mtrace.Trace.name trace) with
  | None -> setup
  | Some family ->
      let n_members = 1 + Array.length (Net.Tree.receivers (Mtrace.Trace.tree trace)) in
      scale_setup ?domains ~family ~n_members setup

let run_leg ?(setup = default_setup) ?registry ?n_packets ?fault ?shards ?steady ?domains
    ?cache_policy ~seed protocol row =
  let scale_family = Mtrace.Scale.family_of_name row.Mtrace.Meta.name in
  (* A steady run over a scale row never materializes the event list:
     the trace comes from the streaming generator (lazy per-link loss
     chains, O(links) setup), so a million-packet leg starts instantly.
     Legacy table rows need the full bits for attribution and keep the
     eager path regardless. *)
  let stream_trace =
    (match steady with Some c -> Steady.Config.streaming c | None -> false)
    && (match scale_family with
       | Some f -> Mtrace.Scale.supports_streaming f
       | None -> false)
  in
  let trace, loss_model =
    if stream_trace then begin
      let g = Mtrace.Generator.synthesize_streaming ~seed ?n_packets row in
      (g.Mtrace.Generator.s_trace, Streamed g.Mtrace.Generator.s_loss)
    end
    else begin
      let generated = Mtrace.Generator.synthesize ~seed ?n_packets row in
      let trace = generated.Mtrace.Generator.trace in
      (* Scale scenarios inject the generator's own Gilbert link states
         directly; trace-sized rows replay the paper's inference
         pipeline. *)
      ( trace,
        match scale_family with
        | None -> Attributed (attribution_of_trace trace)
        | Some _ -> Ground_truth generated.Mtrace.Generator.link_bad )
    end
  in
  let setup = tune_for_trace ?domains trace setup in
  let fault_plan =
    Option.map
      (fun name ->
        let tree = Mtrace.Trace.tree trace in
        let duration = float_of_int (Mtrace.Trace.n_packets trace) *. Mtrace.Trace.period trace in
        match Fault.Plan.canned ~tree ~warmup:setup.warmup ~duration name with
        | Some plan -> plan
        | None -> invalid_arg (Printf.sprintf "Runner.run_leg: unknown canned fault plan %S" name))
      fault
  in
  run_model ~setup:{ setup with seed } ?registry ?fault_plan ?shards ?steady ?domains ?cache_policy
    protocol trace loss_model

let normalized_recovery result ~node ~filter =
  let rtt = List.assoc node result.rtt_to_source in
  Stats.Recovery.latency_summary result.recoveries
    ~normalize:(fun _ -> rtt)
    ~filter:(fun r -> r.Stats.Recovery.node = node && filter r)
