(** Trace-driven protocol runs (paper Section 4.3).

    A run re-enacts one trace: the multicast tree is built with a fixed
    per-link delay and bandwidth, losses are injected on the links the
    {!Inference.Attribution} pipeline blames for each packet, sessions
    warm up before data flows, and one of the protocols recovers the
    losses. Recovery traffic is lossless by default; the lossy-recovery
    variant drops recovery packets per estimated link rates. *)

type protocol = Run_types.protocol =
  | Srm_protocol
  | Cesrm_protocol of Cesrm.Host.config
  | Lms_protocol
      (** the router-assisted baseline of Section 3.3's comparison;
          note its data jitter and adaptive-timer options are
          inapplicable *)

val protocol_name : protocol -> string

type setup = Run_types.setup = {
  link_delay : float;  (** seconds; paper uses 10/20/30 ms, default 20 ms *)
  bandwidth_bps : float;  (** default 1.5 Mbps *)
  params : Srm.Params.t;
  warmup : float;  (** session warm-up before data starts; default 5 s *)
  tail : float;  (** session time kept after the last packet; default 30 s *)
  lossy_recovery : bool;  (** drop recovery packets per link rates *)
  lossy_sessions : bool;
      (** drop session packets per link rates too (the paper assumes a
          lossless session exchange; this probes that assumption) *)
  data_jitter : float;
      (** max uniform per-packet send jitter, seconds; > period causes
          reordering, the case REORDER-DELAY exists for *)
  heterogeneous_delays : bool;
      (** draw per-link delays log-uniformly in
          [link_delay/3, 3·link_delay] instead of the paper's uniform
          setting — a robustness probe for the suppression timers *)
  seed : int64;
}

val default_setup : setup

type result = Run_types.result = {
  trace : Mtrace.Trace.t;
  protocol : protocol;
  setup : setup;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
  cost : Net.Cost.t;
  rtt_to_source : (int * float) list;  (** per receiver node, true RTT *)
  exp_requests : int;
  exp_replies : int;
  unrecovered : int;
      (** losses detected but never repaired nor forgiven (0 expected):
          [detected - recovered - forgiven] *)
  detected : int;  (** losses detected across receivers *)
  forgiven : int;
      (** losses still pending when their member left the group (churn
          plans only): the member was not present for their full
          recovery windows, so liveness accounting excludes them *)
  audit_violations : int;
      (** protocol-invariant violations found by {!Audit} (0 expected) *)
  oracle_violations : int;
      (** {!Fault.Oracle} violations (0 without a fault plan, and 0
          expected with one — a non-clean oracle means the protocol
          failed to degrade gracefully) *)
  oracle : Fault.Oracle.t option;  (** present iff a fault plan was run *)
  retirement : Steady.Controller.t option;
      (** the windowed-retirement controller — present iff the run
          executed with a finite steady window (floor reached, tick
          count, heap samples) *)
}

type loss_model = Run_types.loss_model =
  | Attributed of Inference.Attribution.t
      (** cut each data packet on the links maximum-likelihood
          attribution blames (the paper's Section 4.2 pipeline) *)
  | Ground_truth of Mtrace.Bitset.t array
      (** per-link Gilbert Bad-step bitsets straight from
          {!Mtrace.Generator} ([link_bad], indexed by link id; bit
          [seq - 1] drops packet [seq]) — skips inference entirely,
          receivers observe exactly the trace's losses; what the
          synthetic scale scenarios use *)
  | Streamed of Mtrace.Stream_loss.t
      (** same ground-truth semantics, chains evaluated lazily — the
          constant-memory loss model for streaming (steady) runs over
          a {!Mtrace.Trace.create_streaming} trace *)

val run_model :
  ?setup:setup ->
  ?tracer:Obs.Trace.t ->
  ?registry:Obs.Registry.t ->
  ?fault_plan:Fault.Plan.t ->
  ?shards:int ->
  ?steady:Steady.Config.t ->
  ?domains:Rdomain.spec ->
  ?cache_policy:Cesrm.Retention.t ->
  protocol ->
  Mtrace.Trace.t ->
  loss_model ->
  result
(** Generalization of {!run} over the loss-injection model. *)

val run :
  ?setup:setup ->
  ?tracer:Obs.Trace.t ->
  ?registry:Obs.Registry.t ->
  ?fault_plan:Fault.Plan.t ->
  ?shards:int ->
  ?steady:Steady.Config.t ->
  ?domains:Rdomain.spec ->
  ?cache_policy:Cesrm.Retention.t ->
  protocol ->
  Mtrace.Trace.t ->
  Inference.Attribution.t ->
  result
(** With [tracer], structured events are recorded through the hosts'
    hooks and the network tap (see {!Instrument}) — purely
    observational, the run's outcome is bit-identical. With [registry],
    end-of-run metrics from the engine, the network and every member
    host are published into it, plus ["recovery/"] latency histograms
    (RTT-normalized, split expedited vs fallback).

    With [fault_plan], the plan is compiled onto the network and engine
    before the run, a {!Fault.Oracle} checks the graceful-degradation
    invariants (violations land in the result, the registry under
    ["fault/"], and {!Stats.Counters} kind [Oracle]), and host restarts
    drop soft state ({!Srm.Host.restart_recovery}, CESRM cache reset).
    Unless the caller pinned them, a fault plan also switches on the
    robustness extensions: [Srm.Params.rearm_backoff] (set to the
    session period) and CESRM's [replier_failure_limit] (set to 8) —
    without them SRM's 2^k back-off and CESRM's static pair caches make
    post-heal recovery pathologically slow, which is exactly what the
    oracle would report. Faulted runs remain deterministic: same trace,
    seed and plan ⇒ identical results.

    A plan with membership events (join/leave/rejoin — see
    {!Fault.Plan} and its churn schedules) additionally drives the
    network's membership layer: a node outside the group neither
    receives subcasts nor gets its transmissions onto the wire. On a
    leave, the departing SRM/CESRM host drops {e all} soft state
    ({!Srm.Host.depart} — its pending losses are counted into
    [result.forgiven], not [unrecovered]), every remaining member
    forgets the session state naming it ({!Srm.Host.forget_peer}), and
    every remaining CESRM member invalidates its cached expedited
    pairs naming the departed replier
    ({!Cesrm.Host.invalidate_replier}) so recovery falls back to SRM
    instead of unicasting a ghost. On a join or rejoin, the member
    starts with empty soft state and its per-stream detection windows
    baselined at the packets already sent ({!Srm.Host.join}) — a late
    joiner is never charged for packets sent before it joined. The
    oracle is fed the membership timeline and checks the churn-aware
    invariants (no delivery to departed hosts, no expedited retries
    pinned on a departed replier, membership-aware liveness). LMS
    churn plans only toggle the network layer (LMS hosts carry no SRM
    soft state).

    With [shards] at least 2, the run executes in parallel: the tree is
    partitioned into that many shards of roughly equal member weight
    ({!Net.Partition}), each simulated by a forked worker, synchronised
    conservatively with lookahead equal to the minimum cut-link delay
    ({!Sim.Pdes}, {!Parallel}). The merged result — counters,
    recoveries, cost, audit and oracle state — is byte-identical to the
    serial run's; with [registry], synchronisation counters additionally
    appear under ["pdes/"] (per-host ["srm/"] metrics stay in the
    workers and are not republished). Runs a sharded execution cannot
    reproduce exactly fall back to serial: a [tracer], LMS, lossy
    recovery/sessions, link-jitter fault events, or a partition that
    degenerates to one shard.

    With [steady], the run executes in streaming mode
    ({!Steady.Config}): sources arm their data sends as lazy chains
    (byte-identical to the eager loop), a finite [window] installs a
    {!Steady.Controller} driven by an engine epoch tick that retires
    per-packet state past the stability horizon (hosts, CESRM caches,
    the auditor), and [retain_records = false] switches the recovery
    collector to online summaries with the ["recovery/"] histograms
    fed record-by-record. [Steady.Config.infinite] is byte-identical
    to not passing [steady] at all (the determinism goldens pin this).
    Finite windows and records-off runs stay serial; infinite-window
    steady composes with [shards]. A finite-window run's controller is
    returned in [result.retirement] (floor, tick count, heap samples).

    With [domains], the tree is partitioned into hierarchical local
    recovery domains ({!Rdomain}) shared by every host: requests and
    repairs are scoped to the requestor's domain chain and escalate on
    unanswered rounds, each domain's designated replier is preferred
    for replies and expedited pairs, and true tree distances are
    forced on (scoped timers aim at arbitrary repliers the session
    exchange never converges for). SRM and CESRM only
    (@raise Invalid_argument under LMS); forces the serial path
    ([shards] is ignored — scoped casts need the global tree). Without
    [domains] every run is byte-identical to before the mode
    existed.

    With [cache_policy], a CESRM protocol's replier-cache retention
    scheme is overridden ({!Cesrm.Retention}) before the run — the
    CLI's [--cache-policy] lever. A no-op for SRM and LMS; omitted, the
    config's own retention (default: the paper's keep-most-recent
    scheme, byte-identical to the pre-policy cache) stands. *)

val run_leg :
  ?setup:setup ->
  ?registry:Obs.Registry.t ->
  ?n_packets:int ->
  ?fault:string ->
  ?shards:int ->
  ?steady:Steady.Config.t ->
  ?domains:Rdomain.spec ->
  ?cache_policy:Cesrm.Retention.t ->
  seed:int64 ->
  protocol ->
  Mtrace.Meta.row ->
  result
(** One self-contained experiment leg: synthesize the Table 1 row's
    trace with [seed] (optionally truncated to [n_packets]), attribute
    its losses, and run [protocol] on it with [setup] reseeded to the
    same [seed] — so a leg is a pure function of
    [(row, protocol, setup, n_packets, seed, fault)], the unit a sweep
    shard executes. [fault] names a {!Fault.Plan.canned} plan — a
    perturbation plan from {!Fault.Plan.canned_names} or a membership
    (churn) plan from {!Fault.Plan.churn_names} — instantiated against
    the synthesized trace's tree and data phase.

    Rows naming a {!Mtrace.Scale} scenario switch to ground-truth loss
    injection (no attribution pass) and get harness tuning for group
    size: hosts read true tree distances instead of warming them up
    over session echoes ([Srm.Params.oracle_distances]), only the
    source runs the periodic session tick
    ([Srm.Params.session_sources_only]), the session echo table is
    capped ([session_echo_limit], unless the caller pinned it), and
    deep-chain trees use a 1 ms link delay so the worst-case path
    stays within the recovery timers' reach.

    A [steady] config with any streaming lever on
    ({!Steady.Config.streaming}) additionally routes scale rows
    through {!Mtrace.Generator.synthesize_streaming}: no materialized
    loss matrix, the run starts in O(links) regardless of packet
    count. Legacy rows keep the eager generator (attribution needs the
    bits).
    @raise Invalid_argument on an unknown canned name. *)

val tune_for_trace : ?domains:Rdomain.spec -> Mtrace.Trace.t -> setup -> setup
(** Apply the scale-scenario harness tuning described under {!run_leg}
    when the trace's name parses as a {!Mtrace.Scale} scenario;
    identity otherwise. Exposed so front-ends running a pre-built
    scale trace through {!run_model} get the same settings a
    [run_leg] of the row would. With [domains], the
    probabilistic-suppression windows widen with the domain member
    bound instead of the whole group size — the suppression population
    a scoped request actually reaches. *)

val attribution_of_trace : Mtrace.Trace.t -> Inference.Attribution.t
(** The paper's Section 4.2 pipeline: Yajnik link-rate estimation, then
    maximum-likelihood attribution of each loss. *)

val normalized_recovery : result -> node:int -> filter:(Stats.Recovery.record -> bool) -> Stats.Summary.t
(** Recovery latencies of one receiver divided by that receiver's RTT
    to the source, over records passing [filter]. *)
