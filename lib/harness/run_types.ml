(* Definitions shared between the serial runner and the sharded
   parallel runner: [Runner] delegates sharded runs to [Parallel], and
   every [Parallel] worker rebuilds the very same per-run model, so
   the protocol/setup/result types and the pure helpers both sides
   must agree on live here, below both in the dependency order.
   [Runner] re-exports the types with equations; everything outside
   the harness keeps saying [Harness.Runner.setup]. *)

type protocol = Srm_protocol | Cesrm_protocol of Cesrm.Host.config | Lms_protocol

let protocol_name = function
  | Srm_protocol -> "SRM"
  | Cesrm_protocol config -> if config.Cesrm.Host.router_assist then "CESRM+RA" else "CESRM"
  | Lms_protocol -> "LMS"

type setup = {
  link_delay : float;
  bandwidth_bps : float;
  params : Srm.Params.t;
  warmup : float;
  tail : float;
  lossy_recovery : bool;
  lossy_sessions : bool;
  data_jitter : float;
  heterogeneous_delays : bool;
  seed : int64;
}

let default_setup =
  {
    link_delay = 0.020;
    bandwidth_bps = 1.5e6;
    params = Srm.Params.default;
    warmup = 5.0;
    tail = 30.0;
    lossy_recovery = false;
    lossy_sessions = false;
    data_jitter = 0.;
    heterogeneous_delays = false;
    seed = 42L;
  }

type result = {
  trace : Mtrace.Trace.t;
  protocol : protocol;
  setup : setup;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
  cost : Net.Cost.t;
  rtt_to_source : (int * float) list;
  exp_requests : int;
  exp_replies : int;
  unrecovered : int;
  detected : int;
  forgiven : int;
      (* losses dropped by membership departures: detected but pending
         when the member left, so liveness does not charge them *)
  audit_violations : int;  (* protocol-invariant violations; 0 expected *)
  oracle_violations : int;  (* fault-oracle violations; 0 without a fault plan *)
  oracle : Fault.Oracle.t option;  (* present iff a fault plan was run *)
  retirement : Steady.Controller.t option;  (* present iff a finite window ran *)
}

type loss_model =
  | Attributed of Inference.Attribution.t
  | Ground_truth of Mtrace.Bitset.t array
  | Streamed of Mtrace.Stream_loss.t

(* Loss injection: drop an original data packet on exactly the links
   the loss model names for it; optionally drop recovery packets per
   estimated link rates. Session traffic is never dropped (Section 4.3
   presumes lossless session exchange).

   [Attributed] replays the paper's Section 4.2 pipeline: each data
   packet is cut on the links maximum-likelihood attribution blames.
   [Ground_truth] skips inference and drops packet [seq] on link [l]
   iff the generator's Gilbert chain had [l] Bad at step [seq - 1] —
   the same indexing [Trace.lost] reads, so the losses receivers
   observe are exactly the trace. Attribution is quadratic-ish in
   receivers and pointless when the generator's own link states are in
   hand, which is what the synthetic scale scenarios use. *)
let make_drop ~loss_model ~lossy_recovery ~lossy_sessions ~rates ~rng =
  let data_cut =
    match loss_model with
    | Ground_truth link_bad ->
        fun ~link ~seq -> Mtrace.Bitset.get link_bad.(link) (seq - 1)
    | Streamed chains ->
        (* Same ground-truth semantics with lazily evaluated chains:
           link [l] drops packet [seq] iff its Gilbert process is Bad
           at that step. Data floods traverse each link in seq order
           (FIFO links, source sends in order), which is exactly the
           monotone access pattern [Stream_loss] requires. *)
        fun ~link ~seq -> Mtrace.Stream_loss.lost chains ~link ~seq
    | Attributed attribution ->
        (* The predicate runs once per link crossing per data packet, so
           each packet's cut set is kept as a per-seq bitset over link
           ids rather than a list to scan. [rates] is sized n_nodes in
           both runner configurations, which bounds every link id. *)
        let n_links = Array.length rates in
        let cut_sets = Hashtbl.create 1024 in
        let cuts_of seq =
          match Hashtbl.find cut_sets seq with
          | cuts -> cuts
          | exception Not_found ->
              let cuts = Mtrace.Bitset.create n_links in
              List.iter (Mtrace.Bitset.set cuts) (Inference.Attribution.cuts attribution ~seq);
              Hashtbl.replace cut_sets seq cuts;
              cuts
        in
        fun ~link ~seq -> Mtrace.Bitset.get (cuts_of seq) link
  in
  fun ~link ~down (p : Net.Packet.t) ->
    match p.payload with
    | Net.Packet.Data { seq } -> down && data_cut ~link ~seq
    | Net.Packet.Session _ -> lossy_sessions && Sim.Rng.bernoulli rng rates.(link)
    | Net.Packet.Request _ | Net.Packet.Reply _ | Net.Packet.Exp_request _ ->
        lossy_recovery && Sim.Rng.bernoulli rng rates.(link)

let horizon ~setup ~n_packets ~period =
  setup.warmup +. (float_of_int n_packets *. period) +. setup.tail +. 240.

(* Source-to-node RTTs in one top-down pass. Accumulating parent
   distance plus own link delay adds the delays in the same order
   [Net.Network.rtt network 0 node] does, so the values are
   bit-identical to per-receiver path walks — without the quadratic
   cost on deep trees. [delay] is the per-link delay (the serial
   runner passes [Net.Network.link_delay network]; the coordinator of
   a sharded run its own replica of the delay draw). *)
let source_rtts ~tree ~delay =
  let rtts = Array.make (Net.Tree.n_nodes tree) 0. in
  let rec fill v d =
    List.iter
      (fun c ->
        let dc = d +. delay c in
        rtts.(c) <- 2. *. dc;
        fill c dc)
      (Net.Tree.children tree v)
  in
  fill 0 0.;
  rtts
