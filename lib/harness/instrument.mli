(** Wiring between a protocol run and the {!Obs} subsystem.

    Instrumentation piggybacks on the two observation seams the
    simulator already has — the SRM host hooks
    ([on_loss_detected] / [on_reply_observed] / [on_packet_obtained])
    and the network packet tap — so it is attached {e after} protocol
    deployment (the hooks are chained, not stolen: CESRM's expedited
    machinery keeps running first) and a run without instrumentation
    attached executes exactly the seed code path: no closures, no
    recording, byte-identical determinism fingerprints.

    Recording is purely observational; the determinism guard in
    [test/test_obs.ml] pins that an instrumented run reproduces the
    uninstrumented fingerprints bit-for-bit. *)

val attach_network : trace:Obs.Trace.t -> stride:int -> Net.Network.t -> unit
(** Tap every sent packet into the trace: data, session, (expedited)
    requests and (expedited) replies, attributed to the sending node
    and packed with [stride] (= [n_packets + 1], the hosts' key
    stride). Composes with the protocol auditor's tap. *)

val attach_srm_host : trace:Obs.Trace.t -> stride:int -> Srm.Host.t -> unit
(** Chain trace recording onto the host's hooks: loss detections (which
    also open the recovery span) and packet obtentions for suffered
    losses (which close it, expedited or fallback). Call after the
    protocol has installed its own hooks. *)

val attach_recovery_hists :
  Obs.Registry.t -> rtt_of:(int -> float option) -> Stats.Recovery.t -> unit
(** Publish every recovery latency into the registry's log-bucketed
    histograms: ["recovery/latency_s"] (seconds, all recoveries) plus
    the ["recovery/latency_rtt"], ["recovery/latency_rtt_expedited"]
    and ["recovery/latency_rtt_fallback"] RTT-normalized splits
    (records whose node has no RTT — e.g. the source — are skipped in
    the normalized histograms). *)

val attach_recovery_hists_online :
  Obs.Registry.t -> rtt_of:(int -> float option) -> Stats.Recovery.t -> unit
(** The streaming-mode equivalent of {!attach_recovery_hists}: install
    a {!Stats.Recovery.set_observer} that feeds the same histograms
    record by record as recoveries land, for runs that drop the record
    list ({!Stats.Recovery.drop_records}). Attach {e before} the run;
    produces bit-identical histograms (same adds, same order). *)
