type t = {
  c1 : float;
  c2 : float;
  c3 : float;
  d1 : float;
  d2 : float;
  d3 : float;
  session_period : float;
  max_rounds : int;
  adaptive : bool;
  rearm_backoff : float option;
  session_echo_limit : int option;
  oracle_distances : bool;
  session_sources_only : bool;
  domain_local_rounds : int;
  domain_dr_bias : float;
  domain_inflight_period : float option;
}

let default =
  {
    c1 = 2.;
    c2 = 2.;
    c3 = 1.5;
    d1 = 1.;
    d2 = 1.;
    d3 = 1.5;
    session_period = 1.;
    max_rounds = 40;
    adaptive = false;
    rearm_backoff = None;
    session_echo_limit = None;
    oracle_distances = false;
    session_sources_only = false;
    domain_local_rounds = 2;
    domain_dr_bias = 2.;
    domain_inflight_period = None;
  }

let validate t =
  if t.c1 < 0. || t.c2 < 0. || t.c3 < 0. || t.d1 < 0. || t.d2 < 0. || t.d3 < 0. then
    Error "scheduling weights must be non-negative"
  else if t.session_period <= 0. then Error "session period must be positive"
  else if t.max_rounds <= 0 then Error "max_rounds must be positive"
  else if (match t.rearm_backoff with Some w -> w <= 0. | None -> false) then
    Error "rearm_backoff must be positive when set"
  else if (match t.session_echo_limit with Some k -> k <= 0 | None -> false) then
    Error "session_echo_limit must be positive when set"
  else if t.domain_local_rounds <= 0 then Error "domain_local_rounds must be positive"
  else if t.domain_dr_bias < 0. then Error "domain_dr_bias must be non-negative"
  else if (match t.domain_inflight_period with Some p -> p <= 0. | None -> false) then
    Error "domain_inflight_period must be positive when set"
  else Ok t

let pp ppf t =
  Format.fprintf ppf "C1=%g C2=%g C3=%g D1=%g D2=%g D3=%g session=%gs%s" t.c1 t.c2 t.c3 t.d1
    t.d2 t.d3 t.session_period
    (if t.adaptive then " (adaptive)" else "")
