(** Deploying plain SRM on a simulated multicast group.

    Creates one {!Host} per group member (the source on node 0 plus
    every receiver leaf), registers their network handlers, and drives
    the source's constant-rate transmission. *)

type t

val deploy :
  ?owned:(int -> bool) ->
  ?domain:Rdomain.t ->
  network:Net.Network.t ->
  params:Params.t ->
  n_packets:int ->
  period:float ->
  unit ->
  t
(** [owned] (default: everyone) restricts which members get a live
    host — a PDES shard deploys only its own. Non-owned members still
    consume their engine-RNG split in deploy order, so owned hosts
    draw identical generators on every shard. [domain] enables
    hierarchical local recovery on every host (see {!Host.create});
    passing it does not perturb the deploy-order RNG discipline. *)

val start : ?send_jitter:float -> ?streaming:bool -> t -> warmup:float -> tail:float -> unit
(** Sessions begin immediately (randomly phased); the source transmits
    packet [seq] at [warmup + (seq-1)·period] plus a uniform random
    [send_jitter] (default 0 — jitter beyond one period reorders
    packets, the case REORDER-DELAY guards against); session emission
    stops at [end_of_data + tail]. Run the engine afterwards.
    [streaming] (default false) produces sends lazily — one pending
    timer instead of [n_packets] — via {!Sim.Stream}; byte-identical
    to the eager schedule, and honoured only when
    [send_jitter <= period] (beyond that, sends may reorder and the
    eager loop is used). *)

val end_time : t -> warmup:float -> tail:float -> float
(** The horizon matching {!start}'s schedule. *)

val add_stream :
  ?send_jitter:float ->
  ?streaming:bool ->
  t ->
  src:int ->
  n_packets:int ->
  period:float ->
  start_at:float ->
  unit
(** Schedule a second data stream originating at member [src] (SRM is
    multi-source; recovery state is kept per stream). [n_packets] is
    clamped to the deployment's per-stream cap. *)

val host : t -> int -> Host.t
(** By node id. @raise Not_found for non-members. *)

val members : t -> (int * Host.t) list
(** All members, source first. *)

val receivers : t -> (int * Host.t) list

val counters : t -> Stats.Counters.t

val recoveries : t -> Stats.Recovery.t

val network : t -> Net.Network.t

val n_packets : t -> int
