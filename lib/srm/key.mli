(** Packed [(src, seq)] hashtable keys.

    The SRM host keys every per-loss table by (stream source, sequence
    number). A tuple key boxes on every lookup; packing both into one
    immediate int ([src * stride + seq], with [stride > max seq]) makes
    hashing and equality allocation-free. *)

type t = int

val make : stride:int -> src:int -> seq:int -> t
(** [stride] must exceed every sequence number used (hosts use
    [n_packets + 1]). *)

val src : stride:int -> t -> int

val seq : stride:int -> t -> int
