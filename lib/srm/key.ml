type t = int

let make ~stride ~src ~seq = (src * stride) + seq

let src ~stride k = k / stride

let seq ~stride k = k mod stride
