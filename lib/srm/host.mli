(** An SRM group member: loss detection, request scheduling with
    deterministic + probabilistic suppression and exponential back-off,
    reply scheduling with suppression and abstinence (paper Section 2).

    SRM is multi-source: any member may originate a data stream, and
    all reception, detection, and recovery state is kept per stream
    source. Every function that names a packet takes an optional
    [?src] (defaulting to 0, the conventional single-source root) — the
    paper's exposition and its whole evaluation are single-source, but
    the protocol itself is not.

    One implementation serves both protocols: CESRM installs the
    {!hooks} callbacks and drives the expedited scheme on top (see
    [Cesrm.Host]), so the suppression machinery is shared verbatim. *)

type t

type mutation =
  | Suppress_replies
      (** schedule and count replies normally but never put them on the
          wire — every recovery the host would have served stalls *)
  | Double_deliver
      (** fire [on_packet_obtained] twice per obtained packet *)
(** Test-only protocol mutations ({!inject_mutation}). Each breaks a
    different invariant the fault oracle asserts, so injecting one must
    make the oracle report violations — the oracle's self-test. *)

type hooks = {
  mutable on_loss_detected : src:int -> seq:int -> unit;
      (** fired once per loss, right after the SRM request is first
          scheduled *)
  mutable on_reply_observed : Net.Packet.payload -> unit;
      (** fired for every incoming reply, after SRM processing (cache
          maintenance hook) *)
  mutable on_packet_obtained : src:int -> seq:int -> expedited:bool -> unit;
      (** fired whenever the packet becomes locally available —
          [expedited] says whether an expedited reply delivered it
          (false for original data and ordinary replies); used to
          cancel expedited requests and score repliers *)
}

val no_hooks : unit -> hooks

val create :
  ?domain:Rdomain.t ->
  network:Net.Network.t ->
  self:int ->
  params:Params.t ->
  n_packets:int ->
  counters:Stats.Counters.t ->
  recoveries:Stats.Recovery.t ->
  unit ->
  t
(** The member joins the group on node [self] of the network's tree.
    [n_packets] caps each stream's length. Handlers are {e not}
    registered with the network — the owner dispatches via {!on_packet}
    (this lets CESRM intercept its own PDUs first).

    [domain] switches on hierarchical local recovery: requests and
    replies travel over {!Net.Network.scoped_cast} restricted to the
    requestor's recovery-domain chain at the request round's
    escalation level (see {!Params.t.domain_local_rounds}), request
    timers scale by the distance to the level's designated replier
    instead of the source, and non-designated repliers wait an extra
    {!Params.t.domain_dr_bias} suppression weight. Without it every
    code path is byte-identical to classic SRM. *)

val domain : t -> Rdomain.t option

val domain_local_requests : t -> int
(** Domain mode: requests this host sent at escalation level 0 (inside
    its own domain). 0 in flat runs. *)

val domain_escalations : t -> int
(** Domain mode: requests this host sent at escalation level > 0
    (widened to an ancestor domain). 0 in flat runs. *)

val network : t -> Net.Network.t

val hooks : t -> hooks

val self : t -> int

val session : t -> Session.t

val start : t -> session_until:float -> unit
(** Start session-message emission (with random phase). *)

val publish_metrics : t -> Obs.Registry.t -> unit
(** Accumulate this member's loss-detection and request/reply state
    into the group-wide ["srm/"] metrics (pull-based; each member adds
    its share, so call it once per member at end of run). *)

val on_packet : t -> Net.Packet.t -> unit
(** Main dispatch for Data / Request / Reply / Session. Expedited PDUs
    are ignored here (CESRM handles them). *)

val note_sent : ?src:int -> t -> seq:int -> unit
(** Source-side: mark an original packet of [src]'s stream as sent
    (and so available for retransmission). *)

val has_packet : ?src:int -> t -> seq:int -> bool

val suffered_loss : ?src:int -> t -> seq:int -> bool
(** Has this member ever detected the loss of [seq]? *)

val reply_blocked : ?src:int -> t -> seq:int -> bool
(** A reply for the packet is scheduled or pending (abstinence) — the
    condition under which CESRM must not send an expedited reply. *)

val send_reply_now :
  ?src:int ->
  t ->
  seq:int ->
  requestor:int ->
  d_qs:float ->
  expedited:bool ->
  ?turning_point:int ->
  ?transmit:(Net.Packet.t -> unit) ->
  unit ->
  bool
(** Immediately send a reply if [has_packet] and not [reply_blocked];
    returns whether it was sent. Sets the reply abstinence period like
    any sent reply. [transmit] overrides the delivery primitive
    (default: multicast) — the router-assisted path substitutes a
    relayed subcast. Used by CESRM's expedited replier (with
    [expedited:true]). *)

val dist_to_source : ?src:int -> t -> float
(** Session estimate, falling back to 1 s before any exchange. *)

val dist_to : t -> int -> float

val max_seq_seen : ?src:int -> t -> int

val max_seqs : t -> (int * int) list
(** Per stream source, the highest sequence number seen. *)

val request_round : ?src:int -> t -> seq:int -> int option
(** Current back-off exponent of a pending request, for tests. *)

val detected_losses : t -> int
(** Across all streams. *)

val pending_requests : t -> int

val delivered_prefix : ?src:int -> t -> int
(** Contiguous delivered prefix of [src]'s stream: every sequence
    number at or below it is locally available. The steady-state
    stability horizon is the group-wide minimum of these. *)

val retired_floor : ?src:int -> t -> int
(** Highest sequence number retired so far (0 before any retirement).
    Retired packets still answer [has_packet] with [true] — retirement
    only ever covers fully-delivered prefixes, and replies carry no
    payload, so a late request for a retired packet is still served. *)

val retire_below : t -> upto:int -> unit
(** Steady-state retirement: drop per-packet soft state (delivery
    window bytes, detection times, expired abstinence horizons) for
    sequence numbers at or below [upto], clamped per stream to its own
    delivered prefix. Only inert state is dropped — pending reply
    timers fire as they would have — so a finite-window run remains
    byte-identical to an infinite-window one. Driven by
    [Steady.Controller]; never called in classic runs. *)

val restart_recovery : t -> unit
(** Model a crashed host coming back up: session distance estimates,
    scheduled replies, and reply-abstinence horizons are dropped (soft
    state is gone), while reception state and known losses survive;
    every pending request restarts from round 0 rather than inheriting
    a pre-crash back-off exponent. *)

val depart : t -> int
(** The member leaves the group: {e all} soft state is dropped —
    reception windows, detection history, pending requests and replies
    (every armed timer cancelled), session estimates. Returns the
    number of detected-but-unrecovered losses dropped, which the run's
    liveness accounting forgives. Contrast {!restart_recovery}, the
    crash path, which suspends rather than drops. *)

val join : t -> baselines:(int * int) list -> unit
(** The member (re)joins with empty soft state. [baselines] gives, per
    stream source, the highest sequence number already sent before the
    join; each stream's delivery window is baselined there (pre-join
    sequences read as delivered, the steady-mode convention) so loss
    detection never charges the joiner for packets sent before it was
    a member. *)

val forget_peer : t -> int -> unit
(** A peer left the group: drop this member's session soft state naming
    it (distance estimate, heard entry) so a later rejoin starts fresh. *)

val inject_mutation : t -> mutation -> unit
(** Test-only: switch a {!mutation} on for the rest of the run. *)
