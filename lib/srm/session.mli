(** SRM session-message exchange and inter-host distance estimation
    (paper Section 2, and the setup assumptions of Section 4.3).

    Every group member periodically multicasts a session message
    carrying its current timestamp, the highest source sequence number
    it has seen, and an echo table: for each peer, the peer's last
    timestamp and how long it was held before being echoed. On hearing
    its own timestamp echoed by peer [m], a member computes
    [rtt = (now − ts) − held] and estimates its one-way distance to [m]
    as [rtt / 2].

    Session messages double as a loss-detection channel: a session
    max-sequence number above the local one reveals tail losses. *)

type t

val create :
  ?echo_limit:int ->
  ?oracle:(int -> float) ->
  network:Net.Network.t ->
  self:int ->
  period:float ->
  rng:Sim.Rng.t ->
  get_max_seqs:(unit -> (int * int) list) ->
  on_max_seq:(src:int -> int -> unit) ->
  on_send:(unit -> unit) ->
  unit ->
  t
(** [get_max_seqs] supplies the advertised per-stream sequence numbers;
    [on_max_seq] is invoked for each stream a peer advertises;
    [on_send] is invoked per session message sent (for counting).

    [echo_limit] caps the number of peer echoes per session message
    (default: unlimited — every heard peer is echoed, the classic SRM
    behavior, appropriate for trace-sized groups). When set, the host
    tracks only a bounded ring of recently heard peers and echoes them
    round-robin, [echo_limit] per message, keeping per-member session
    state O(1) in the group size.

    [oracle] supplies an authoritative distance for peers with no
    measured estimate yet (scale runs pass the network's true
    delay-weighted tree distance — the converged state the paper
    assumes — so timers are well-spread without the quadratic session
    warm-up). Measured estimates take precedence once they exist.

    @raise Invalid_argument if [echo_limit] is non-positive. *)

val start : ?jitter:float -> t -> until:float -> unit
(** Begin periodic transmission after a random offset in
    [\[0, jitter\]] (default: one period), stopping at [until]. *)

val on_packet : t -> Net.Packet.t -> unit
(** Feed an incoming session packet. Non-session packets are ignored. *)

val distance : t -> int -> float option
(** Current one-way distance estimate to a peer, if any exchange has
    completed. *)

val distance_or : t -> int -> default:float -> float
(** [distance_or t peer ~default] is the estimate, else the [oracle]'s
    answer, else [default]. Allocation-free variant of {!distance} for
    the request/reply scheduling hot path. *)

val distance_exn : t -> int -> float
(** @raise Failure when no estimate exists yet — protocol logic should
    only need distances after the warm-up phase. *)

val known_peers : t -> int list

val reset : t -> unit
(** Forget all distance estimates and last-heard state, as a crashed
    host restarting with empty soft state would. Periodic transmission,
    if started, continues. *)

val forget_peer : t -> int -> unit
(** Drop the distance estimate and heard state for one peer — called
    when that peer {e leaves the group}, so a later rejoin starts from
    scratch instead of inheriting a stale estimate. Remaining peers'
    echo rotation is unaffected. *)
