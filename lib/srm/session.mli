(** SRM session-message exchange and inter-host distance estimation
    (paper Section 2, and the setup assumptions of Section 4.3).

    Every group member periodically multicasts a session message
    carrying its current timestamp, the highest source sequence number
    it has seen, and an echo table: for each peer, the peer's last
    timestamp and how long it was held before being echoed. On hearing
    its own timestamp echoed by peer [m], a member computes
    [rtt = (now − ts) − held] and estimates its one-way distance to [m]
    as [rtt / 2].

    Session messages double as a loss-detection channel: a session
    max-sequence number above the local one reveals tail losses. *)

type t

val create :
  network:Net.Network.t ->
  self:int ->
  period:float ->
  rng:Sim.Rng.t ->
  get_max_seqs:(unit -> (int * int) list) ->
  on_max_seq:(src:int -> int -> unit) ->
  on_send:(unit -> unit) ->
  t
(** [get_max_seqs] supplies the advertised per-stream sequence numbers;
    [on_max_seq] is invoked for each stream a peer advertises;
    [on_send] is invoked per session message sent (for counting). *)

val start : ?jitter:float -> t -> until:float -> unit
(** Begin periodic transmission after a random offset in
    [\[0, jitter\]] (default: one period), stopping at [until]. *)

val on_packet : t -> Net.Packet.t -> unit
(** Feed an incoming session packet. Non-session packets are ignored. *)

val distance : t -> int -> float option
(** Current one-way distance estimate to a peer, if any exchange has
    completed. *)

val distance_or : t -> int -> default:float -> float
(** [distance_or t peer ~default] is the estimate, or [default] when
    none exists. Allocation-free variant of {!distance} for the
    request/reply scheduling hot path. *)

val distance_exn : t -> int -> float
(** @raise Failure when no estimate exists yet — protocol logic should
    only need distances after the warm-up phase. *)

val known_peers : t -> int list

val reset : t -> unit
(** Forget all distance estimates and last-heard state, as a crashed
    host restarting with empty soft state would. Periodic transmission,
    if started, continues. *)
