(** SRM scheduling parameters (paper Section 2).

    Requests are scheduled uniformly in
    [2^k · \[C1·d_hs, (C1+C2)·d_hs\]] and backed off once per round;
    the back-off abstinence period is [2^k · C3 · d_hs]. Replies are
    scheduled uniformly in [\[D1·d_hh', (D1+D2)·d_hh'\]] with a reply
    abstinence period of [D3 · d_hh']. *)

type t = {
  c1 : float;  (** request deterministic-suppression weight *)
  c2 : float;  (** request probabilistic-suppression window *)
  c3 : float;  (** back-off abstinence weight *)
  d1 : float;  (** reply deterministic-suppression weight *)
  d2 : float;  (** reply probabilistic-suppression window *)
  d3 : float;  (** reply abstinence weight *)
  session_period : float;  (** seconds between session messages *)
  max_rounds : int;  (** safety cap on request rounds *)
  adaptive : bool;
      (** adjust C1/C2 and D1/D2 dynamically per host ({!Adaptive});
          the values above are then the starting point *)
  rearm_backoff : float option;
      (** robustness extension for fault scenarios (not in the paper,
          default [None] = off): on session evidence that a loss still
          persists, a pending request timer more than this many seconds
          away — exponential back-off pushed it out during an outage —
          is cancelled and rescheduled from round 0, and an exhausted
          request (all [max_rounds] fired) is re-armed. Keeps recovery
          latency bounded by the session period after a partition
          heals, instead of by [2^k] back-off. *)
  session_echo_limit : int option;
      (** scale extension (default [None] = off): cap the number of
          peer echoes per session message and track only a bounded
          ring of recently heard peers, echoed round-robin. Keeps
          per-member session state and per-message work O(1) in group
          size — essential for 10^3–10^4-receiver synthetic scenarios,
          where the classic echo-everyone table is quadratic across
          the group. *)
  oracle_distances : bool;
      (** scale extension (default [false] = off): hosts read peer
          distances straight from the network's delay-weighted tree
          instead of estimating them from session echoes — the
          converged steady state the paper's Section 4.3 runs assume
          ("distances are known before data flows"), reached without
          simulating the quadratic session warm-up. Measured estimates,
          when they exist, still take precedence. *)
  session_sources_only : bool;
      (** scale extension (default [false] = off): only the data
          source runs the periodic session tick (its [max_seqs]
          advertisements are what tail-loss detection needs); receivers
          stay silent. Fixed-period all-member sessions are n messages
          of n deliveries each per period — unaffordable at 10^4
          members. Only sensible together with [oracle_distances],
          since silent receivers are never echoed. *)
  domain_local_rounds : int;
      (** hierarchical local recovery (active only when the host was
          created with a recovery-domain map): how many request rounds
          are spent inside the home domain before the scope starts
          widening geometrically up the domain chain — rounds
          [0 .. domain_local_rounds - 1] stay at level 0, round
          [domain_local_rounds + k] escalates to level [2^k], clamped
          to the chain top. Default 2. Ignored in flat (domain-less)
          runs. *)
  domain_dr_bias : float;
      (** hierarchical local recovery: extra deterministic-suppression
          weight added to D1 for repliers that are {e not} a domain's
          designated replier, giving the designated replier a head
          start of [bias · d_hh'] before anyone else answers. Default
          2. Ignored in flat runs. *)
  domain_inflight_period : float option;
      (** hierarchical local recovery: the source's inter-packet send
          period, enabling the in-flight allowance on session-driven
          loss detection. A session advertisement can name packets
          still pipelined down a deep path; flat SRM is insulated by
          request timers scaled to the full source distance, but
          domain-mode timers fire on {e local} round-trips, so a gap
          is only declared lost once it is overdue against the host's
          own data-arrival anchor: [last_data_at + Δseq · period]
          (constant pipeline lag cancels). [None] (default) keeps the
          flat grace. Ignored in flat runs — flat behaviour is
          byte-identical either way. *)
}

val default : t
(** The paper's Section 4.3 settings: C1 = C2 = 2, C3 = 1.5,
    D1 = D2 = 1, D3 = 1.5, session period 1 s; [rearm_backoff = None]
    (paper-faithful: no session-driven re-arming). *)

val validate : t -> (t, string) result
(** Reject negative weights, non-positive session period, and a
    non-positive round cap. *)

val pp : Format.formatter -> t -> unit
