type t = {
  network : Net.Network.t;
  self : int;
  period : float;
  rng : Sim.Rng.t;
  get_max_seqs : unit -> (int * int) list;
  on_max_seq : src:int -> int -> unit;
  on_send : unit -> unit;
  (* The peer space is the static node-id space, so the estimate tables
     are flat float arrays rather than hashtables of boxed floats: every
     session delivery touches them, and [distance] is on the
     request/reply scheduling hot path. NaN marks "no entry". *)
  dist : float array;
  lh_ts : float array; (* peer -> their last timestamp *)
  lh_at : float array; (* peer -> our receive time; NaN = never heard *)
}

let create ~network ~self ~period ~rng ~get_max_seqs ~on_max_seq ~on_send =
  let n = Net.Tree.n_nodes (Net.Network.tree network) in
  {
    network;
    self;
    period;
    rng;
    get_max_seqs;
    on_max_seq;
    on_send;
    dist = Array.make n Float.nan;
    lh_ts = Array.make n Float.nan;
    lh_at = Array.make n Float.nan;
  }

let engine t = Net.Network.engine t.network

let send t =
  let now = Sim.Engine.now (engine t) in
  (* Echo order within a session message is immaterial: receivers only
     look up their own entry. *)
  let echoes = ref [] in
  for peer = Array.length t.lh_at - 1 downto 0 do
    let recv_at = t.lh_at.(peer) in
    if not (Float.is_nan recv_at) then
      echoes :=
        { Net.Packet.echo_member = peer; echo_ts = t.lh_ts.(peer); echo_delay = now -. recv_at }
        :: !echoes
  done;
  t.on_send ();
  Net.Network.multicast t.network ~from:t.self
    {
      Net.Packet.sender = t.self;
      payload =
        Net.Packet.Session
          { origin = t.self; sent_at = now; max_seqs = t.get_max_seqs (); echoes = !echoes };
    }

let start ?jitter t ~until =
  let jitter = match jitter with Some j -> j | None -> t.period in
  let offset = if jitter <= 0. then 0. else Sim.Rng.float t.rng jitter in
  let rec tick () =
    if Sim.Engine.now (engine t) <= until then begin
      send t;
      ignore (Sim.Engine.schedule (engine t) ~after:t.period tick)
    end
  in
  ignore (Sim.Engine.schedule (engine t) ~after:offset tick)

let on_packet t (p : Net.Packet.t) =
  match p.payload with
  | Net.Packet.Session { origin; sent_at; max_seqs; echoes } when origin <> t.self ->
      let now = Sim.Engine.now (engine t) in
      t.lh_ts.(origin) <- sent_at;
      t.lh_at.(origin) <- now;
      List.iter
        (fun { Net.Packet.echo_member; echo_ts; echo_delay } ->
          if echo_member = t.self then begin
            let rtt = now -. echo_ts -. echo_delay in
            if rtt >= 0. then t.dist.(origin) <- rtt /. 2.
          end)
        echoes;
      List.iter (fun (src, m) -> if m > 0 then t.on_max_seq ~src m) max_seqs
  | _ -> ()

let distance t peer =
  let d = t.dist.(peer) in
  if Float.is_nan d then None else Some d

let distance_or t peer ~default =
  let d = t.dist.(peer) in
  if Float.is_nan d then default else d

let distance_exn t peer =
  let d = t.dist.(peer) in
  if Float.is_nan d then failwith (Printf.sprintf "Session.distance_exn: no estimate for peer %d" peer)
  else d

let reset t =
  Array.fill t.dist 0 (Array.length t.dist) Float.nan;
  Array.fill t.lh_ts 0 (Array.length t.lh_ts) Float.nan;
  Array.fill t.lh_at 0 (Array.length t.lh_at) Float.nan

let known_peers t =
  let acc = ref [] in
  for peer = Array.length t.dist - 1 downto 0 do
    if not (Float.is_nan t.dist.(peer)) then acc := peer :: !acc
  done;
  !acc
