type heard = { mutable h_ts : float; mutable h_at : float }

type t = {
  network : Net.Network.t;
  self : int;
  period : float;
  rng : Sim.Rng.t;
  get_max_seqs : unit -> (int * int) list;
  on_max_seq : src:int -> int -> unit;
  on_send : unit -> unit;
  echo_limit : int option;
  oracle : (int -> float) option;
      (* authoritative fallback distance (scale runs): consulted when
         no measured estimate exists, see [distance_or] *)
  (* Peer state is sparse: a host only materializes entries for peers
     it has actually exchanged session traffic with. The former dense
     per-node float arrays were three words per (host, node) pair —
     quadratic across the group, gigabytes at 10^4 members. [dists]
     is never evicted (estimates are few: only peers that echoed us);
     [heard] is unbounded in unlimited-echo mode (trace-sized groups,
     where every peer is heard anyway) and bounded by a FIFO ring of
     distinct peers when [echo_limit] is set. *)
  dists : (int, float) Hashtbl.t;
  heard : (int, heard) Hashtbl.t;
  mutable heard_order : int list; (* unlimited mode: most-recently-first-heard *)
  ring : int array; (* limited mode: distinct heard peers, -1 = empty slot *)
  mutable ring_pos : int; (* next eviction slot *)
  mutable echo_cursor : int; (* round-robin start of the next echo batch *)
}

let create ?echo_limit ?oracle ~network ~self ~period ~rng ~get_max_seqs ~on_max_seq ~on_send () =
  (match echo_limit with
  | Some k when k <= 0 -> invalid_arg "Session.create: echo_limit must be positive"
  | _ -> ());
  let ring_size = match echo_limit with None -> 0 | Some k -> Int.max (4 * k) 128 in
  {
    network;
    self;
    period;
    rng;
    get_max_seqs;
    on_max_seq;
    on_send;
    echo_limit;
    oracle;
    dists = Hashtbl.create 16;
    heard = Hashtbl.create 16;
    heard_order = [];
    ring = Array.make ring_size (-1);
    ring_pos = 0;
    echo_cursor = 0;
  }

let engine t = Net.Network.engine t.network

(* Echo order within a session message is immaterial: session packets
   are 0-bit control traffic and receivers only look up their own
   entry, so neither timing nor behavior depends on list order. *)
let send t =
  let now = Sim.Engine.now (engine t) in
  let echo peer acc =
    match Hashtbl.find_opt t.heard peer with
    | None -> acc
    | Some h ->
        { Net.Packet.echo_member = peer; echo_ts = h.h_ts; echo_delay = now -. h.h_at } :: acc
  in
  let echoes =
    match t.echo_limit with
    | None -> List.fold_left (fun acc peer -> echo peer acc) [] t.heard_order
    | Some k ->
        (* Rotate a cursor over the ring so successive messages echo
           different peers: every tracked peer is echoed within
           ceil(ring/k) messages, which is what lets distance
           estimation still converge group-wide under the cap. *)
        let cap = Array.length t.ring in
        let acc = ref [] in
        let taken = ref 0 in
        let scanned = ref 0 in
        while !taken < k && !scanned < cap do
          let peer = t.ring.((t.echo_cursor + !scanned) mod cap) in
          incr scanned;
          if peer >= 0 then begin
            acc := echo peer !acc;
            incr taken
          end
        done;
        t.echo_cursor <- (t.echo_cursor + !scanned) mod cap;
        !acc
  in
  t.on_send ();
  Net.Network.multicast t.network ~from:t.self
    {
      Net.Packet.sender = t.self;
      payload =
        Net.Packet.Session
          { origin = t.self; sent_at = now; max_seqs = t.get_max_seqs (); echoes };
    }

let start ?jitter t ~until =
  let jitter = match jitter with Some j -> j | None -> t.period in
  let offset = if jitter <= 0. then 0. else Sim.Rng.float t.rng jitter in
  let rec tick () =
    if Sim.Engine.now (engine t) <= until then begin
      send t;
      ignore (Sim.Engine.schedule (engine t) ~after:t.period tick)
    end
  in
  ignore (Sim.Engine.schedule (engine t) ~after:offset tick)

let note_heard t origin ~sent_at ~now =
  match Hashtbl.find_opt t.heard origin with
  | Some h ->
      h.h_ts <- sent_at;
      h.h_at <- now
  | None ->
      (match t.echo_limit with
      | None -> t.heard_order <- origin :: t.heard_order
      | Some _ ->
          let victim = t.ring.(t.ring_pos) in
          if victim >= 0 then Hashtbl.remove t.heard victim;
          t.ring.(t.ring_pos) <- origin;
          t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring);
      Hashtbl.replace t.heard origin { h_ts = sent_at; h_at = now }

let on_packet t (p : Net.Packet.t) =
  match p.payload with
  | Net.Packet.Session { origin; sent_at; max_seqs; echoes } when origin <> t.self ->
      let now = Sim.Engine.now (engine t) in
      note_heard t origin ~sent_at ~now;
      List.iter
        (fun { Net.Packet.echo_member; echo_ts; echo_delay } ->
          if echo_member = t.self then begin
            let rtt = now -. echo_ts -. echo_delay in
            if rtt >= 0. then Hashtbl.replace t.dists origin (rtt /. 2.)
          end)
        echoes;
      List.iter (fun (src, m) -> if m > 0 then t.on_max_seq ~src m) max_seqs
  | _ -> ()

let distance t peer = Hashtbl.find_opt t.dists peer

let distance_or t peer ~default =
  match Hashtbl.find t.dists peer with
  | d -> d
  | exception Not_found -> (
      match t.oracle with Some f -> f peer | None -> default)

let distance_exn t peer =
  match Hashtbl.find t.dists peer with
  | d -> d
  | exception Not_found ->
      failwith (Printf.sprintf "Session.distance_exn: no estimate for peer %d" peer)

let reset t =
  Hashtbl.reset t.dists;
  Hashtbl.reset t.heard;
  t.heard_order <- [];
  Array.fill t.ring 0 (Array.length t.ring) (-1);
  t.ring_pos <- 0;
  t.echo_cursor <- 0

(* A peer left the group: its distance estimate and heard state are
   stale (it will return, if ever, with fresh timestamps and possibly a
   different path). Ring slots are blanked in place — the cursor and
   eviction position are left alone so surviving peers keep their
   echo-rotation order. *)
let forget_peer t peer =
  Hashtbl.remove t.dists peer;
  Hashtbl.remove t.heard peer;
  t.heard_order <- List.filter (fun p -> p <> peer) t.heard_order;
  Array.iteri (fun i p -> if p = peer then t.ring.(i) <- -1) t.ring

let known_peers t =
  List.sort compare (Hashtbl.fold (fun peer _ acc -> peer :: acc) t.dists [])
