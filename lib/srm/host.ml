let log = Logs.Src.create "srm.host" ~doc:"SRM host events"

module Log = (val Logs.src_log log : Logs.LOG)

type request_state = {
  mutable backoff : int; (* k = number of times this request was scheduled *)
  mutable timer : Sim.Engine.timer option;
  mutable abstain_until : float; (* back-off abstinence horizon *)
  mutable dup_requests : int; (* duplicate requests overheard for this loss *)
  mutable first_sent : float option; (* when our own first request fired *)
}

(* Test-only protocol mutations: each one breaks a different invariant
   the fault oracle asserts, proving the checker can actually fail. *)
type mutation =
  | Suppress_replies (* schedule replies normally but never transmit *)
  | Double_deliver (* fire on_packet_obtained twice per packet *)

type hooks = {
  mutable on_loss_detected : src:int -> seq:int -> unit;
  mutable on_reply_observed : Net.Packet.payload -> unit;
  mutable on_packet_obtained : src:int -> seq:int -> expedited:bool -> unit;
}

(* Hierarchical local recovery (lib/domain): the host's own domain and
   chain height are resolved once at creation; per-request escalation
   levels index into them. *)
type domain_ctx = { dmap : Rdomain.t; my_dom : int; max_lvl : int }

let no_hooks () =
  {
    on_loss_detected = (fun ~src:_ ~seq:_ -> ());
    on_reply_observed = (fun _ -> ());
    on_packet_obtained = (fun ~src:_ ~seq:_ ~expedited:_ -> ());
  }

(* Per-stream reception state; SRM is multi-source, so every table
   below is keyed by (stream source, sequence number). The delivery
   map is windowed for steady-state runs: byte [i] of [received]
   covers sequence [base + 1 + i]; everything at or below [base] has
   been retired by the steady controller, which only ever retires
   fully-delivered prefixes — so a retired seq reads as delivered.
   [prefix] is the contiguous delivered prefix (every seq <= prefix is
   locally available), the quantity the stability horizon is computed
   from. With no retirement ([base] stays 0) the window grows to
   [n_packets] on demand and behaves exactly like the old flat
   bitmap. *)
type stream_state = {
  mutable received : Bytes.t; (* window: 0 = missing, 1 = have *)
  mutable base : int; (* retired floor: seqs <= base are delivered *)
  mutable prefix : int; (* contiguous delivered prefix *)
  mutable max_seq : int;
  (* Data-arrival anchor for the domain-mode in-flight allowance: the
     last original data packet of this stream to land here, and when.
     Unlike [max_seq] (which session advertisements also advance) this
     tracks only real arrivals, so [last_data_at + Δseq · period]
     predicts when a later packet is {e due} on this host's path —
     constant pipeline lag cancels out. *)
  mutable last_data_seq : int;
  mutable last_data_at : float;
  (* Due-time detection frontier (domain mode): every sequence at or
     below it has been either delivered or declared lost; sequences
     above wait until they are overdue. [due_pending] coalesces the
     rescan timer — at most one per stream is ever outstanding. *)
  mutable scanned_due : int;
  mutable due_pending : bool;
  (* Per-stream in-flight slack, lazily computed (nan = unset): scales
     with this host's distance to the stream's source. *)
  mutable inflight_slack : float;
}

(* Streams start with a bounded window so a million-packet run never
   materializes the full per-receiver bitmap; short runs reach
   [n_packets] immediately and allocate exactly what they used to. *)
let initial_window = 4096

let win_get st ~seq =
  seq <= st.base
  ||
  let i = seq - st.base - 1 in
  i < Bytes.length st.received && Bytes.get st.received i = '\001'

let rec advance_prefix st len =
  let i = st.prefix - st.base in
  if i < len && Bytes.get st.received i = '\001' then begin
    st.prefix <- st.prefix + 1;
    advance_prefix st len
  end

let win_set ~n_packets st ~seq =
  if seq > st.base then begin
    let i = seq - st.base - 1 in
    let len = Bytes.length st.received in
    let len =
      if i >= len then begin
        let len' = min (n_packets - st.base) (max (i + 1) (max (2 * len) 64)) in
        let b = Bytes.make len' '\000' in
        Bytes.blit st.received 0 b 0 len;
        st.received <- b;
        len'
      end
      else len
    in
    Bytes.set st.received i '\001';
    if seq = st.prefix + 1 then advance_prefix st len
  end

type t = {
  network : Net.Network.t;
  self : int;
  params : Params.t;
  n_packets : int; (* per-stream cap *)
  stride : int; (* Key packing stride: n_packets + 1 *)
  rng : Sim.Rng.t;
  session : Session.t;
  (* Keyed by source node id. Sparse: a group of n members previously
     carried an n-slot array per host (n^2 option slots across the
     group); only nodes that actually source or get asked about a
     stream materialize entries. [stream_srcs] mirrors the key set in
     ascending id order so [max_seqs] advertisements keep their
     original deterministic order. *)
  streams : (int, stream_state) Hashtbl.t;
  mutable stream_srcs : int list;
  (* Per-loss tables below are keyed by packed (src, seq) ints. *)
  requests : (Key.t, request_state) Hashtbl.t;
  replies : (Key.t, Sim.Engine.timer) Hashtbl.t; (* scheduled reply *)
  reply_abstain : (Key.t, float) Hashtbl.t; (* -> horizon *)
  detect_info : (Key.t, float) Hashtbl.t; (* -> detection time *)
  replied : (Key.t, float) Hashtbl.t; (* -> when we sent a reply *)
  adaptive : Adaptive.t option;
  domain : domain_ctx option;
  mutable n_local_requests : int; (* domain mode: requests sent at level 0 *)
  mutable n_escalations : int; (* domain mode: requests sent at level > 0 *)
  mutable n_detected : int;
  (* False between [depart] and the next [join]. Gates loss detection:
     deliveries to a departed node are dropped at the network layer,
     but detection timers parked before the departure (the
     session-advertisement grace timer in particular) still fire on
     the wiped host and would charge it for every packet it no longer
     tracks. *)
  mutable in_group : bool;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
  hooks : hooks;
  mutable mutations : mutation list;
}

let key t ~src ~seq = Key.make ~stride:t.stride ~src ~seq

let network t = t.network

let engine t = Net.Network.engine t.network

let now t = Sim.Engine.now (engine t)

let self t = t.self

let session t = t.session

let hooks t = t.hooks

let inject_mutation t m = if not (List.mem m t.mutations) then t.mutations <- m :: t.mutations

let mutated t m = List.mem m t.mutations

let stream t src =
  match Hashtbl.find_opt t.streams src with
  | Some s -> s
  | None ->
      let s =
        {
          received = Bytes.make (min t.n_packets initial_window) '\000';
          base = 0;
          prefix = 0;
          max_seq = 0;
          last_data_seq = 0;
          last_data_at = neg_infinity;
          scanned_due = 0;
          due_pending = false;
          inflight_slack = Float.nan;
        }
      in
      Hashtbl.replace t.streams src s;
      let rec insert = function
        | x :: tl when x < src -> x :: insert tl
        | rest -> src :: rest
      in
      t.stream_srcs <- insert t.stream_srcs;
      s

let has_packet ?(src = 0) t ~seq =
  seq >= 1 && seq <= t.n_packets && win_get (stream t src) ~seq

let suffered_loss ?(src = 0) t ~seq = Hashtbl.mem t.detect_info (key t ~src ~seq)

let max_seq_seen ?(src = 0) t = (stream t src).max_seq

let max_seqs t =
  List.filter_map
    (fun src ->
      match Hashtbl.find_opt t.streams src with
      | Some st when st.max_seq > 0 -> Some (src, st.max_seq)
      | _ -> None)
    t.stream_srcs

let detected_losses t = t.n_detected

let pending_requests t = Hashtbl.length t.requests

let request_round ?(src = 0) t ~seq =
  Option.map (fun (st : request_state) -> st.backoff) (Hashtbl.find_opt t.requests (key t ~src ~seq))

(* Paper Section 4.3 assumes distances are known before data flows; the
   1 s fallback only matters if a request fires inside the warm-up. *)
let dist_to t peer = Session.distance_or t.session peer ~default:1.0

let dist_to_source ?(src = 0) t = dist_to t src

(* --- hierarchical local recovery ----------------------------------- *)

let domain t = Option.map (fun c -> c.dmap) t.domain

let domain_local_requests t = t.n_local_requests

let domain_escalations t = t.n_escalations

(* Escalation level of a request round: [domain_local_rounds] rounds
   are spent inside the home domain, then the scope widens {e
   geometrically} — level 1, 2, 4, 8, ... — clamped at the chain's
   top, the root domain, which holds the source, so the ladder always
   ends at a member with the packet. Doubling the level per round
   keeps the climb logarithmic in the ladder length: a deep chain
   stacks O(depth / domain size) domains, and walking them one per
   round would push recovery past the run horizon once the request
   back-off compounds. *)
let level_for ~local_rounds ~max_lvl round =
  if round < local_rounds then 0 else min max_lvl (1 lsl min 30 (round - local_rounds))

let level_of t ctx ~round =
  level_for ~local_rounds:t.params.Params.domain_local_rounds ~max_lvl:ctx.max_lvl round

(* The distance a request timer scales by: flat SRM uses the source,
   domain mode the escalation level's designated replier — so local
   rounds fire on local round-trip times instead of the full
   source-path delay (the whole point on deep chains). *)
let request_dist t ~src ~round =
  match t.domain with
  | None -> dist_to_source ~src t
  | Some ctx ->
      dist_to t (Rdomain.request_target ctx.dmap ~node:t.self ~level:(level_of t ctx ~round))

(* Reply transmission for a requestor at a given round: a repair
   subcast flooding the {e entire subtree} under the round's scope
   root. Repliers reconstruct the level from the round carried in the
   request. The subtree — not the requestor's chain prefix — is
   deliberate: a loss cut above a domain is shared by every domain
   below the cut, and the one reply that finally escalates past it
   must heal them all, the way a flat SRM reply's global flood does.
   A down-flood from the scope root reaches exactly its subtree, so
   the scope predicate is unrestricted. *)
let domain_transmit t ~requestor ~round =
  match t.domain with
  | None -> None
  | Some ctx ->
      let dom = Rdomain.dom_of ctx.dmap requestor in
      let level =
        level_for ~local_rounds:t.params.Params.domain_local_rounds
          ~max_lvl:(Rdomain.max_level ctx.dmap ~dom)
          round
      in
      Some
        (fun packet ->
          Net.Network.scoped_cast t.network ~from:t.self
            ~root:(Rdomain.scope_root ctx.dmap ~dom ~level)
            ~scope:(fun _ -> true)
            packet)

(* --- request scheduling ------------------------------------------- *)

let two_pow k = Float.of_int (1 lsl min k 30)

(* Current scheduling weights: fixed from Params, or the adaptive
   controller's live values. *)
let request_weights t =
  match t.adaptive with
  | Some a -> (Adaptive.c1 a, Adaptive.c2 a)
  | None -> (t.params.Params.c1, t.params.Params.c2)

let reply_weights t =
  match t.adaptive with
  | Some a -> (Adaptive.d1 a, Adaptive.d2 a)
  | None -> (t.params.Params.d1, t.params.Params.d2)

(* Binary back-off multiplier. Flat SRM doubles without bound; domain
   mode caps the exponent at the local-round count, because past that
   point each round already doubles the escalation {e level} — and
   with it the target distance the interval scales by — so compounding
   2^round on top would square the growth and park deep-ladder rounds
   beyond the run horizon. *)
let backoff_factor t round =
  match t.domain with
  | None -> two_pow round
  | Some _ -> two_pow (min round t.params.Params.domain_local_rounds)

let request_interval t ~src (st : request_state) =
  let d = request_dist t ~src ~round:st.backoff in
  let w1, w2 = request_weights t in
  let lo = w1 *. d and w = w2 *. d in
  let f = backoff_factor t st.backoff in
  Sim.Rng.uniform t.rng (f *. lo) (f *. (lo +. w))

let rec arm_request t ~src seq st =
  st.timer <-
    Some
      (Sim.Engine.schedule (engine t) ~after:(request_interval t ~src st) (fun () ->
           fire_request t ~src seq st))

and fire_request t ~src seq st =
  if not (has_packet ~src t ~seq) then begin
    let d = dist_to_source ~src t in
    Log.debug (fun m ->
        m "t=%.4f host %d RQST src %d seq %d round %d d_hs=%.4f" (now t) t.self src seq
          st.backoff d);
    Stats.Counters.bump t.counters ~node:t.self Stats.Counters.Rqst;
    if st.first_sent = None then st.first_sent <- Some (now t);
    let packet =
      {
        Net.Packet.sender = t.self;
        payload = Net.Packet.Request { src; seq; requestor = t.self; d_qs = d; round = st.backoff };
      }
    in
    (match t.domain with
    | None -> Net.Network.multicast t.network ~from:t.self packet
    | Some ctx ->
        let level = level_of t ctx ~round:st.backoff in
        if level = 0 then t.n_local_requests <- t.n_local_requests + 1
        else t.n_escalations <- t.n_escalations + 1;
        Net.Network.scoped_cast t.network ~from:t.self
          ~root:(Rdomain.scope_root ctx.dmap ~dom:ctx.my_dom ~level)
          ~scope:(Rdomain.in_scope ctx.dmap ~dom:ctx.my_dom ~level)
          packet);
    (* Schedule the next round: k increments, the interval doubles, and
       a fresh back-off abstinence period opens (Section 2.1). *)
    if st.backoff < t.params.Params.max_rounds then begin
      st.backoff <- st.backoff + 1;
      st.abstain_until <-
        now t
        +. (backoff_factor t st.backoff *. t.params.Params.c3
           *. request_dist t ~src ~round:st.backoff);
      arm_request t ~src seq st
    end
    else st.timer <- None
  end

(* Session-driven re-arm (Params.rearm_backoff): session evidence says
   packets up to [upto] of [src]'s stream exist, yet some of our pending
   requests for them have their next round more than [window] seconds
   out — exponential back-off pushed them there during an outage.
   Restart those from round 0, and revive exhausted requests (all
   max_rounds fired, timer gone). *)
let rearm_stale t ~src ~upto ~window =
  Hashtbl.iter
    (fun k (st : request_state) ->
      if Key.src ~stride:t.stride k = src && Key.seq ~stride:t.stride k <= upto then begin
        let stale =
          match st.timer with
          | None -> true
          | Some timer -> Sim.Engine.fire_time timer -. now t > window
        in
        if stale then begin
          (match st.timer with Some timer -> Sim.Engine.cancel timer | None -> ());
          st.backoff <- 0;
          st.abstain_until <- neg_infinity;
          arm_request t ~src (Key.seq ~stride:t.stride k) st
        end
      end)
    t.requests

(* Host restart after a crash: soft state is gone. Distance estimates,
   scheduled replies, and abstinence horizons are dropped; reception
   state (the application already has those packets) and the set of
   known losses survive, with every pending request restarted from
   round 0 so recovery does not inherit a pre-crash back-off exponent. *)
let restart_recovery t =
  Session.reset t.session;
  Hashtbl.iter (fun _ timer -> Sim.Engine.cancel timer) t.replies;
  Hashtbl.reset t.replies;
  Hashtbl.reset t.reply_abstain;
  Hashtbl.iter
    (fun k (st : request_state) ->
      (match st.timer with Some timer -> Sim.Engine.cancel timer | None -> ());
      st.backoff <- 0;
      st.abstain_until <- neg_infinity;
      arm_request t ~src:(Key.src ~stride:t.stride k) (Key.seq ~stride:t.stride k) st)
    t.requests

(* Membership departure. Unlike a crash — which suspends soft state and
   resumes recovery on restart — a leave {e drops} everything: reception
   windows, detection history, pending requests and replies, session
   estimates. Every armed timer is cancelled, so a group whose last
   receiver departs drains its event queue instead of backing off to
   the horizon. Returns the number of detected-but-unrecovered losses
   dropped: the member was not present for those losses' full recovery
   windows, so the run's liveness accounting forgives them. *)
let depart t =
  let forgiven = Hashtbl.length t.requests in
  Hashtbl.iter
    (fun _ (st : request_state) ->
      match st.timer with Some timer -> Sim.Engine.cancel timer | None -> ())
    t.requests;
  Hashtbl.reset t.requests;
  Hashtbl.iter (fun _ timer -> Sim.Engine.cancel timer) t.replies;
  Hashtbl.reset t.replies;
  Hashtbl.reset t.reply_abstain;
  Hashtbl.reset t.detect_info;
  Hashtbl.reset t.replied;
  (* Reception state goes too; a parked due-scan timer that fires after
     this finds (or lazily recreates) a stream with no data anchor and
     does nothing. Session-advertisement grace timers are anonymous
     (uncancellable), so [in_group] gates {!detect_loss} instead: one
     firing on the wiped host would otherwise charge the departed
     member for every packet of the stream. *)
  Hashtbl.reset t.streams;
  t.stream_srcs <- [];
  Session.reset t.session;
  t.in_group <- false;
  forgiven

(* Membership (re)join with empty soft state. The one thing a joiner
   must be told is where each stream already stands: baselining the
   window at the source's current max-seq uses the steady-mode
   "retired = delivered" convention ([win_get] answers true at or below
   [base]), so detection — gap-, session-, and due-time-triggered alike
   — can only ever charge the member for packets sent after it joined. *)
let join t ~baselines =
  t.in_group <- true;
  List.iter
    (fun (src, upto) ->
      if upto > 0 then begin
        let st = stream t src in
        (* [max] for idempotence; the window bytes are all-zero here
           (fresh host, or [depart] just wiped them), so moving [base]
           shifts no live bits. *)
        st.base <- max st.base upto;
        st.prefix <- max st.prefix upto;
        st.max_seq <- max st.max_seq upto;
        st.scanned_due <- max st.scanned_due upto;
        st.last_data_seq <- max st.last_data_seq upto
      end)
    baselines

(* A peer left the group: drop the session soft state naming it, so a
   later rejoin re-measures instead of inheriting a stale estimate. *)
let forget_peer t peer = Session.forget_peer t.session peer

(* A request for [seq] was overheard while ours is pending: push ours to
   the next round unless inside the back-off abstinence period. *)
let back_off_request t ~src seq st =
  if now t >= st.abstain_until && st.backoff < t.params.Params.max_rounds then begin
    (match st.timer with Some timer -> Sim.Engine.cancel timer | None -> ());
    st.backoff <- st.backoff + 1;
    st.abstain_until <-
      now t
      +. (backoff_factor t st.backoff *. t.params.Params.c3
         *. request_dist t ~src ~round:st.backoff);
    arm_request t ~src seq st
  end

let detect_loss ?(initial_backoff = 0) t ~src seq =
  if t.in_group && not (has_packet ~src t ~seq || Hashtbl.mem t.requests (key t ~src ~seq))
  then begin
    if not (Hashtbl.mem t.detect_info (key t ~src ~seq)) then begin
      Hashtbl.replace t.detect_info (key t ~src ~seq) (now t);
      Log.debug (fun m -> m "t=%.4f host %d DETECT src %d seq %d" (now t) t.self src seq);
      t.n_detected <- t.n_detected + 1
    end;
    let st =
      {
        backoff = initial_backoff;
        timer = None;
        abstain_until = neg_infinity;
        dup_requests = 0;
        first_sent = None;
      }
    in
    Hashtbl.replace t.requests (key t ~src ~seq) st;
    arm_request t ~src seq st;
    t.hooks.on_loss_detected ~src ~seq
  end

(* Domain-mode in-flight allowance. A session advertisement, an
   overheard request, or a repair flood can name packets still
   pipelined down a deep path — flat SRM is insulated against
   premature requests by timers scaled to the full source distance,
   but domain timers fire on local round-trips, so evidence-driven
   detection must wait until the packet is {e overdue}. The due time
   is anchored to this host's own data arrivals:
   [last_data_at + (Δseq + 1) · period] — the constant pipeline lag
   cancels, making the check depth-independent; one extra period
   absorbs jitter. Without an anchor (no data yet) everything defers:
   the first arrival re-triggers the scan. *)
let inflight_period t =
  match t.domain with None -> None | Some _ -> t.params.Params.domain_inflight_period

(* How far past its nominal arrival time a packet may run before the
   gap is declared a loss: one period absorbs send jitter, plus a
   patience term proportional to the distance from the source —
   [(C1+C2+D1+D2+bias+2) · d_src], the worst-case local repair latency
   per unit of path. The proportionality is what makes upstream local
   recovery {e silencing}: a domain that catches a loss repairs with a
   subtree flood trailing the data stream by one local repair latency
   (its own slack included), and every further domain down the path has
   strictly more patience than that trail, so the repair lands before
   their due timers fire. The deep side of a loss cut is healed without
   ever recording a loss — which is what keeps the last-receiver
   makespan a local figure instead of a pipeline-deep one. Flat SRM
   gets the same insulation implicitly from request timers scaled by
   [C1 · d_src]; domain mode's request timers are local by design, so
   the patience must live in the detector. *)
let inflight_slack t ~src st =
  if Float.is_nan st.inflight_slack then
    (st.inflight_slack <-
       (match t.domain with
       | None -> 0.
       | Some _ ->
           let p = t.params in
           (p.Params.c1 +. p.Params.c2 +. p.Params.d1 +. p.Params.d2
           +. p.Params.domain_dr_bias +. 2.)
           *. dist_to_source ~src t));
  st.inflight_slack

let due_time t ~src st ~period seq =
  st.last_data_at
  +. ((float_of_int (seq - st.last_data_seq) +. 1.) *. period)
  +. inflight_slack t ~src st

(* Detect every missing sequence whose due time has passed, and leave
   one timer parked at the next due instant for the rest. The frontier
   only ever advances, so each sequence is scanned O(1) times. *)
let rec scan_due t ~src ~period =
  let st = stream t src in
  if st.last_data_at > neg_infinity then begin
    let frontier = ref st.scanned_due in
    while !frontier < st.max_seq && due_time t ~src st ~period (!frontier + 1) <= now t do
      incr frontier;
      if not (has_packet ~src t ~seq:!frontier) then detect_loss t ~src !frontier
    done;
    st.scanned_due <- !frontier;
    if st.scanned_due < st.max_seq && not st.due_pending then begin
      st.due_pending <- true;
      let after = Float.max 0. (due_time t ~src st ~period (st.scanned_due + 1) -. now t) in
      ignore
        (Sim.Engine.schedule (engine t) ~after (fun () ->
             st.due_pending <- false;
             scan_due t ~src ~period))
    end
  end

(* Evidence that packets 1..m of [src]'s stream exist (sources send
   sequentially): any unseen gap at or below m is a loss — immediately
   in flat mode, once overdue in domain mode. *)
let seq_exists t ~src m =
  let stream = stream t src in
  match inflight_period t with
  | None ->
      if m > stream.max_seq then begin
        let first = stream.max_seq + 1 in
        stream.max_seq <- min m t.n_packets;
        for seq = first to stream.max_seq do
          if not (has_packet ~src t ~seq) then detect_loss t ~src seq
        done
      end
  | Some period ->
      if m > stream.max_seq then stream.max_seq <- min m t.n_packets;
      scan_due t ~src ~period

(* Whether [seq] is past the in-flight allowance — gate for detection
   paths that bypass {!seq_exists} (the overheard-request suppression
   join). Always true in flat mode. *)
let inflight_clear t ~src ~seq =
  match inflight_period t with
  | None -> true
  | Some period ->
      let st = stream t src in
      st.last_data_at > neg_infinity && due_time t ~src st ~period seq <= now t

(* --- obtaining packets -------------------------------------------- *)

let record_recovery t ~src seq ~expedited ~rounds ~repaired =
  match Hashtbl.find_opt t.detect_info (key t ~src ~seq) with
  | None -> ()
  | Some detected_at ->
      Stats.Recovery.add t.recoveries
        {
          Stats.Recovery.node = t.self;
          src;
          seq;
          detected_at;
          recovered_at = now t;
          rounds;
          expedited;
          repaired;
        }

(* [repaired] says how the packet got here: [true] for a
   retransmission (any reply), [false] for the original data packet —
   which can still close a detection when session advertisements
   outran the data flood on a deep path. *)
let obtain t ~src seq ~expedited ~repaired =
  if not (has_packet ~src t ~seq) then begin
    win_set ~n_packets:t.n_packets (stream t src) ~seq;
    (* A pending request is now moot. *)
    let rounds =
      match Hashtbl.find_opt t.requests (key t ~src ~seq) with
      | None -> 0
      | Some st ->
          (match st.timer with Some timer -> Sim.Engine.cancel timer | None -> ());
          Hashtbl.remove t.requests (key t ~src ~seq);
          (match (t.adaptive, st.first_sent, Hashtbl.find_opt t.detect_info (key t ~src ~seq)) with
          | Some a, Some sent, Some detected ->
              let d = Float.max 1e-9 (dist_to_source ~src t) in
              Adaptive.note_request_cycle a ~dups:st.dup_requests
                ~delay_in_d:((sent -. detected) /. d)
          | _ -> ());
          st.backoff
    in
    if suffered_loss ~src t ~seq then begin
      Log.debug (fun m -> m "t=%.4f host %d RECOVERED src %d seq %d" (now t) t.self src seq);
      record_recovery t ~src seq ~expedited ~rounds ~repaired
    end;
    t.hooks.on_packet_obtained ~src ~seq ~expedited;
    if mutated t Double_deliver then t.hooks.on_packet_obtained ~src ~seq ~expedited
  end

let note_sent ?(src = 0) t ~seq =
  if seq >= 1 && seq <= t.n_packets then begin
    let stream = stream t src in
    win_set ~n_packets:t.n_packets stream ~seq;
    if seq > stream.max_seq then stream.max_seq <- seq
  end

let delivered_prefix ?(src = 0) t = (stream t src).prefix

let retired_floor ?(src = 0) t = (stream t src).base

(* Steady-state retirement: drop per-packet state at or below [upto],
   clamped to each stream's own delivered prefix (the controller's
   global horizon already sits below every member's prefix; the clamp
   makes the operation safe to call with anything). Only {e inert}
   state is dropped — a reply timer still pending is left to fire and
   remove itself, and an abstinence horizon still in the future is
   kept — so a finite-window run fires exactly the events an
   infinite-window run would. Request state needs no sweep: a request
   exists only while the packet is missing, and everything at or below
   the delivered prefix has arrived. *)
let retire_below t ~upto =
  Hashtbl.iter
    (fun _src st ->
      let upto = min upto st.prefix in
      if upto > st.base then begin
        let len = Bytes.length st.received in
        let shift = upto - st.base in
        if shift >= len then Bytes.fill st.received 0 len '\000'
        else begin
          Bytes.blit st.received shift st.received 0 (len - shift);
          Bytes.fill st.received (len - shift) shift '\000'
        end;
        st.base <- upto
      end)
    t.streams;
  let retired k =
    let src = Key.src ~stride:t.stride k and seq = Key.seq ~stride:t.stride k in
    match Hashtbl.find_opt t.streams src with Some st -> seq <= st.base | None -> false
  in
  let sweep ?(keep = fun _ _ -> false) table =
    let dead = Hashtbl.fold (fun k v acc -> if retired k && not (keep k v) then k :: acc else acc) table [] in
    List.iter (Hashtbl.remove table) dead
  in
  sweep t.replies ~keep:(fun _ timer -> Sim.Engine.is_pending timer);
  sweep t.reply_abstain ~keep:(fun _ horizon -> horizon > now t);
  sweep t.detect_info;
  sweep t.replied

(* --- replies ------------------------------------------------------- *)

let reply_pending t ~src seq =
  match Hashtbl.find_opt t.reply_abstain (key t ~src ~seq) with
  | Some horizon -> now t < horizon
  | None -> false

let reply_blocked ?(src = 0) t ~seq =
  Hashtbl.mem t.replies (key t ~src ~seq) || reply_pending t ~src seq

let open_reply_abstinence t ~src seq ~requestor =
  Hashtbl.replace t.reply_abstain (key t ~src ~seq)
    (now t +. (t.params.Params.d3 *. dist_to t requestor))

let emit_reply ?transmit ?(delay_norm = 0.) t ~src ~seq ~requestor ~d_qs ~expedited
    ~turning_point =
  let d_rq = dist_to t requestor in
  Log.debug (fun m ->
      m "t=%.4f host %d %s src %d seq %d (req=%d d_rq=%.4f)" (now t) t.self
        (if expedited then "EREPL" else "REPL")
        src seq requestor d_rq);
  Stats.Counters.bump t.counters ~node:t.self
    (if expedited then Stats.Counters.Exp_repl else Stats.Counters.Repl);
  let packet =
    {
      Net.Packet.sender = t.self;
      payload =
        Net.Packet.Reply
          { src; seq; requestor; d_qs; replier = t.self; d_rq; expedited; turning_point };
    }
  in
  (if not (mutated t Suppress_replies) then
     match transmit with
     | Some send -> send packet
     | None -> Net.Network.multicast t.network ~from:t.self packet);
  (match t.adaptive with
  | Some a ->
      Hashtbl.replace t.replied (key t ~src ~seq) (now t);
      Adaptive.note_reply_cycle a ~dups:0 ~delay_in_d:delay_norm
  | None -> ());
  open_reply_abstinence t ~src seq ~requestor

let send_reply_now ?(src = 0) t ~seq ~requestor ~d_qs ~expedited ?turning_point ?transmit () =
  if has_packet ~src t ~seq && not (reply_blocked ~src t ~seq) then begin
    emit_reply ?transmit t ~src ~seq ~requestor ~d_qs ~expedited ~turning_point;
    true
  end
  else false

let schedule_reply t ~src ~seq ~requestor ~d_qs ~round =
  let d = dist_to t requestor in
  let w1, w2 = reply_weights t in
  (* Domain mode: a designated replier keeps the paper's window; every
     other candidate waits an extra [dr_bias · d] first, so the local
     replier answers unchallenged unless it is down or missing the
     packet — the "designated replier with fallback" election. *)
  let w1 =
    match t.domain with
    | Some ctx when not (Rdomain.is_replier ctx.dmap t.self) ->
        w1 +. t.params.Params.domain_dr_bias
    | _ -> w1
  in
  let lo = w1 *. d and w = w2 *. d in
  let delay = Sim.Rng.uniform t.rng lo (lo +. w) in
  Log.debug (fun m ->
      m "t=%.4f host %d schedule REPL seq %d for +%.4f (d_rq=%.4f req=%d)" (now t) t.self seq
        delay d requestor);
  let delay_norm = if d <= 0. then 0. else delay /. d in
  let transmit = domain_transmit t ~requestor ~round in
  let timer =
    Sim.Engine.schedule (engine t) ~after:delay (fun () ->
        Hashtbl.remove t.replies (key t ~src ~seq);
        (* The abstinence may have opened while we waited (an expedited
           reply of ours, for instance). *)
        if (not (reply_pending t ~src seq)) && has_packet ~src t ~seq then
          emit_reply ?transmit ~delay_norm t ~src ~seq ~requestor ~d_qs ~expedited:false
            ~turning_point:None)
  in
  Hashtbl.replace t.replies (key t ~src ~seq) timer

(* --- incoming PDUs -------------------------------------------------- *)

let handle_request t ~src ~seq ~requestor ~d_qs ~round =
  if requestor <> t.self then begin
    seq_exists t ~src seq;
    if has_packet ~src t ~seq then begin
      (* Replier side: requests are discarded while a reply is
         scheduled or pending (Section 2.2). *)
      if not (reply_blocked ~src t ~seq) then schedule_reply t ~src ~seq ~requestor ~d_qs ~round
    end
    else
      match Hashtbl.find_opt t.requests (key t ~src ~seq) with
      | Some st ->
          st.dup_requests <- st.dup_requests + 1;
          back_off_request t ~src seq st
      | None ->
          (* We share the loss but have no pending request: the
             overheard request covers the current round, so join at the
             next one — that is the suppression. In domain mode the
             join also waits out the in-flight allowance (a neighbour
             one hop closer to the source legitimately detects before
             our copy lands); {!seq_exists} above raised [max_seq], so
             the due-time frontier picks the packet up if it really is
             lost. *)
          if inflight_clear t ~src ~seq then detect_loss ~initial_backoff:1 t ~src seq
  end

let handle_reply t payload ~src ~seq ~requestor ~replier =
  if replier <> t.self then begin
    seq_exists t ~src seq;
    (* Suppression: cancel any scheduled reply for this packet. *)
    (match Hashtbl.find_opt t.replies (key t ~src ~seq) with
    | Some timer ->
        Sim.Engine.cancel timer;
        Hashtbl.remove t.replies (key t ~src ~seq)
    | None -> ());
    (* Adaptive: a reply for something we also replied to recently is a
       duplicate our timers failed to suppress. *)
    (match (t.adaptive, Hashtbl.find_opt t.replied (key t ~src ~seq)) with
    | Some a, Some _ -> Adaptive.note_reply_cycle a ~dups:1 ~delay_in_d:1.
    | _ -> ());
    open_reply_abstinence t ~src seq ~requestor;
    let expedited =
      match payload with Net.Packet.Reply { expedited; _ } -> expedited | _ -> false
    in
    obtain t ~src seq ~expedited ~repaired:true;
    t.hooks.on_reply_observed payload
  end

let on_packet t (p : Net.Packet.t) =
  match p.payload with
  | Net.Packet.Data { seq } ->
      let src = p.sender in
      (* Anchor before gap detection: sources send sequentially, so at
         the instant [seq] lands anything below it is already overdue —
         this arrival is what proves its predecessors late. *)
      let stream = stream t src in
      if seq > stream.last_data_seq then begin
        stream.last_data_seq <- seq;
        stream.last_data_at <- now t
      end;
      seq_exists t ~src (seq - 1);
      obtain t ~src seq ~expedited:false ~repaired:false;
      if seq > stream.max_seq then stream.max_seq <- seq
  | Net.Packet.Request { src; seq; requestor; d_qs; round } ->
      handle_request t ~src ~seq ~requestor ~d_qs ~round
  | Net.Packet.Reply { src; seq; requestor; replier; _ } ->
      handle_reply t p.payload ~src ~seq ~requestor ~replier
  | Net.Packet.Session _ -> Session.on_packet t.session p
  | Net.Packet.Exp_request _ -> ()

let start t ~session_until =
  (* Scale extension: with [session_sources_only], receivers skip the
     periodic tick — only the source's max-seq advertisements flow
     (what tail-loss detection needs), not the n^2 all-member
     exchange. *)
  if not (t.params.Params.session_sources_only && t.self <> 0) then
    Session.start t.session ~until:session_until

(* Accumulating publish: every member adds its share into the same
   group-wide metric names (see Obs.Registry). *)
let publish_metrics t registry =
  Obs.Registry.incr ~by:t.n_detected registry "srm/losses_detected";
  Obs.Registry.incr ~by:(Hashtbl.length t.requests) registry "srm/requests_open_at_end";
  Obs.Registry.incr ~by:(Hashtbl.length t.replies) registry "srm/replies_scheduled_at_end";
  Obs.Registry.incr ~by:(List.length (Session.known_peers t.session)) registry
    "srm/session_peer_links";
  (match t.domain with
  | Some _ ->
      Obs.Registry.incr ~by:t.n_local_requests registry "srm/domain_local_requests";
      Obs.Registry.incr ~by:t.n_escalations registry "srm/domain_escalations"
  | None -> ());
  Hashtbl.iter
    (fun _ (st : request_state) ->
      Obs.Registry.observe registry "srm/open_request_rounds" (float_of_int st.backoff))
    t.requests

let create ?domain ~network ~self ~params ~n_packets ~counters ~recoveries () =
  let rng = Sim.Rng.split (Sim.Engine.rng (Net.Network.engine network)) in
  let domain =
    Option.map
      (fun dmap ->
        let my_dom = Rdomain.dom_of dmap self in
        { dmap; my_dom; max_lvl = Rdomain.max_level dmap ~dom:my_dom })
      domain
  in
  (* The session needs callbacks into the host being constructed; tie
     the knot with forward cells. *)
  let get_max_seqs_cell = ref (fun () -> []) in
  let on_max_seq_cell = ref (fun ~src:_ (_ : int) -> ()) in
  (* Oracle distances are memoized per host: the underlying tree walk
     is O(depth) and allocating, while the scheduling hot path asks for
     the same few peers (the source, recent requestors) over and over.
     The memo only ever holds those few. *)
  let oracle =
    if params.Params.oracle_distances then (
      let memo = Hashtbl.create 8 in
      Some
        (fun peer ->
          match Hashtbl.find memo peer with
          | d -> d
          | exception Not_found ->
              let d = Net.Network.dist network self peer in
              Hashtbl.replace memo peer d;
              d))
    else None
  in
  let session =
    Session.create
      ?echo_limit:params.Params.session_echo_limit ?oracle
      ~network ~self ~period:params.Params.session_period ~rng:(Sim.Rng.split rng)
      ~get_max_seqs:(fun () -> !get_max_seqs_cell ())
      ~on_max_seq:(fun ~src m -> !on_max_seq_cell ~src m)
      ~on_send:(fun () -> Stats.Counters.bump counters ~node:self Stats.Counters.Sess)
      ()
  in
  let t =
    {
      network;
      self;
      params;
      n_packets;
      stride = n_packets + 1;
      rng;
      session;
      streams = Hashtbl.create 4;
      stream_srcs = [];
      (* Small initial sizes on purpose: tables grow on demand, and at
         10^4 members the per-host footprint is what decides whether
         the group's hot state fits in cache — 64-bucket empties were
         ~4 KB per host, tens of MB across a scale group, and the
         delivery path touches a random host's tables per event. *)
      requests = Hashtbl.create 8;
      replies = Hashtbl.create 8;
      reply_abstain = Hashtbl.create 8;
      detect_info = Hashtbl.create 8;
      replied = Hashtbl.create 8;
      adaptive = (if params.Params.adaptive then Some (Adaptive.create ~initial:params) else None);
      domain;
      n_local_requests = 0;
      n_escalations = 0;
      n_detected = 0;
      in_group = true;
      counters;
      recoveries;
      hooks = no_hooks ();
      mutations = [];
    }
  in
  get_max_seqs_cell := (fun () -> max_seqs t);
  (* A peer's session max-seq may name packets still in flight to us
     (the peer can be closer to the source). Gap- and request-triggered
     detection cannot be premature — a request fires at least 2·d_qs
     after the requestor's own copy landed, which bounds our copy's
     remaining flight time — but session-triggered detection must wait
     out one source-path delay (plus serialization slack) before
     declaring a gap a loss. *)
  on_max_seq_cell :=
    (fun ~src m ->
      (match params.Params.rearm_backoff with
      | Some window -> rearm_stale t ~src ~upto:m ~window
      | None -> ());
      if m > (stream t src).max_seq then begin
        let grace = dist_to_source ~src t +. 0.05 in
        (* Domain mode: {!seq_exists} itself defers detection until the
           advertised packets are overdue (the in-flight allowance), so
           the flat grace suffices here — but a host that has received
           no data yet takes its anchor from this first advertisement
           (as if packet 0 just landed), else a stream lost in its
           entirety would never be declared missing. *)
        (match (t.domain, params.Params.domain_inflight_period) with
        | Some _, Some _ ->
            let st = stream t src in
            if st.last_data_at = neg_infinity then begin
              st.last_data_at <- now t;
              st.last_data_seq <- 0
            end
        | _ -> ());
        ignore
          (Sim.Engine.schedule (Net.Network.engine network) ~after:grace (fun () ->
               seq_exists t ~src m))
      end);
  t
