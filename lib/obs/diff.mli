(** Run-to-run regression diffing over metric / bench JSON files.

    Both documents are flattened to ["a/b/c"]-style paths at their
    numeric leaves (arrays of named objects — e.g. the bench report's
    [sections] — are keyed by their ["name"] field, other array
    elements by index) and compared pairwise. A pair is {e flagged}
    when its absolute delta exceeds [abs] {b and} its delta relative
    to the baseline exceeds [rel]; paths present on only one side are
    always flagged. The comparison is direction-agnostic — the report
    shows signed deltas and the caller decides which direction is the
    regression. *)

type thresholds = { rel : float; abs : float }

val default_thresholds : thresholds
(** [rel = 0.10] (10%), [abs = 1e-9]. *)

type entry = {
  path : string;
  base : float option;  (** [None]: the path is new in [current] *)
  current : float option;  (** [None]: the path disappeared *)
  delta : float;  (** [current - base]; NaN when either side is missing *)
  ratio : float;  (** [delta / max(|base|, abs)]; NaN when missing *)
  flagged : bool;
}

val flatten : Json.t -> (string * float) list
(** The numeric leaves, in document order. *)

val diff :
  ?thresholds:thresholds ->
  ?ignore:(string -> bool) ->
  base:Json.t ->
  current:Json.t ->
  unit ->
  entry list
(** All compared paths in name order, flagged or not. Paths for which
    [ignore] returns true (default: none) are excluded from the
    comparison entirely — the side channel for machine-dependent
    numbers (wall time, allocation, events/sec) that should stay
    machine-readable in the document without ever gating a diff. *)

val flagged : entry list -> entry list

val render : ?only_flagged:bool -> entry list -> string
(** A text table (path, base, current, delta, relative delta) followed
    by a one-line summary; with [only_flagged] (default true) only
    flagged rows are listed. *)
