type thresholds = { rel : float; abs : float }

let default_thresholds = { rel = 0.10; abs = 1e-9 }

type entry = {
  path : string;
  base : float option;
  current : float option;
  delta : float;
  ratio : float;
  flagged : bool;
}

let join prefix k = if prefix = "" then k else prefix ^ "/" ^ k

(* Arrays whose elements all carry a string "name" field are keyed by
   name (the shape of the bench report's sections/bechamel lists), so
   entries pair up across runs even if their order changed. *)
let array_keys items =
  let named =
    List.map
      (fun item ->
        match Json.member "name" item with Some (Json.Str s) -> Some s | _ -> None)
      items
  in
  if items <> [] && List.for_all Option.is_some named then
    List.map Option.get named
  else List.mapi (fun i _ -> string_of_int i) items

let flatten json =
  let acc = ref [] in
  let rec go prefix = function
    | Json.Num x -> acc := (prefix, x) :: !acc
    | Json.Obj fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | Json.Arr items ->
        List.iter2 (fun k item -> go (join prefix k) item) (array_keys items) items
    | Json.Null | Json.Bool _ | Json.Str _ -> ()
  in
  go "" json;
  List.rev !acc

let diff ?(thresholds = default_thresholds) ?(ignore = fun _ -> false) ~base ~current () =
  let drop kvs = List.filter (fun (k, _) -> not (ignore k)) kvs in
  let b = drop (flatten base) and c = drop (flatten current) in
  let keys = ref [] in
  let tbl_b = Hashtbl.create 64 and tbl_c = Hashtbl.create 64 in
  let load tbl kvs =
    List.iter
      (fun (k, v) ->
        if not (Hashtbl.mem tbl_b k || Hashtbl.mem tbl_c k) then keys := k :: !keys;
        if not (Hashtbl.mem tbl k) then Hashtbl.replace tbl k v)
      kvs
  in
  load tbl_b b;
  load tbl_c c;
  List.map
    (fun path ->
      let base = Hashtbl.find_opt tbl_b path and current = Hashtbl.find_opt tbl_c path in
      match (base, current) with
      | Some bv, Some cv ->
          let delta = cv -. bv in
          let ratio = delta /. Float.max (Float.abs bv) thresholds.abs in
          let flagged =
            Float.abs delta > thresholds.abs && Float.abs ratio > thresholds.rel
          in
          { path; base; current; delta; ratio; flagged }
      | _ -> { path; base; current; delta = Float.nan; ratio = Float.nan; flagged = true })
    (List.sort String.compare !keys)

let flagged entries = List.filter (fun e -> e.flagged) entries

let render ?(only_flagged = true) entries =
  let buf = Buffer.create 512 in
  let shown = if only_flagged then flagged entries else entries in
  let cell = function None -> "-" | Some v -> Printf.sprintf "%.6g" v in
  if shown <> [] then begin
    let width =
      List.fold_left (fun acc e -> Stdlib.max acc (String.length e.path)) 4 shown
    in
    Buffer.add_string buf
      (Printf.sprintf "%-*s %14s %14s %14s %9s\n" width "path" "base" "current" "delta"
         "rel");
    List.iter
      (fun e ->
        let delta, rel =
          if Float.is_nan e.delta then
            ((if e.base = None then "added" else "removed"), "-")
          else
            ( Printf.sprintf "%+.6g" e.delta,
              (* A ~zero baseline makes the ratio meaningless. *)
              if Float.abs e.ratio > 1e4 then "-"
              else Printf.sprintf "%+.1f%%" (100. *. e.ratio) )
        in
        Buffer.add_string buf
          (Printf.sprintf "%-*s %14s %14s %14s %9s%s\n" width e.path (cell e.base)
             (cell e.current) delta rel
             (if e.flagged then "  !" else "")))
      shown
  end;
  let n_flagged = List.length (flagged entries) in
  Buffer.add_string buf
    (if n_flagged = 0 then
       Printf.sprintf "no deltas beyond thresholds (%d metrics compared)\n"
         (List.length entries)
     else
       Printf.sprintf "%d of %d metrics beyond thresholds\n" n_flagged
         (List.length entries));
  Buffer.contents buf
