(** Log-bucketed latency histograms (HDR-histogram style).

    A histogram covers the positive reals with octaves [2^e, 2^(e+1))
    split into a fixed number of equal-width sub-buckets, so the
    recorded value's relative quantization error is bounded by
    [1 / sub_buckets] (and the bucket-midpoint representative returned
    by {!quantile} is within half that). Values at or below zero land
    in a dedicated zero bucket whose representative is 0; values beyond
    the covered exponent range clamp into the first / last bucket.

    Recording is allocation-free (an array increment plus min/max/sum
    updates), which is what lets the recovery hot path keep full
    latency distributions instead of retained sample vectors.
    Histograms with the same [sub_buckets] are mergeable. *)

type t

val create : ?sub_buckets:int -> unit -> t
(** [sub_buckets] (default 16, clamped to a power of two in [1, 256])
    sets the per-octave resolution and hence the relative error bound
    [1 / sub_buckets]. *)

val sub_buckets : t -> int

val add : t -> float -> unit
(** Record one observation. NaN observations are counted separately and
    excluded from quantiles. *)

val count : t -> int
(** Observations recorded (NaNs excluded). *)

val nan_count : t -> int

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val min : t -> float
(** Exact smallest observation; +inf when empty. *)

val max : t -> float
(** Exact largest observation; -inf when empty. *)

val quantile : t -> float -> float
(** [quantile t q] is the nearest-rank [q]-quantile's bucket
    representative (bucket midpoint), for [q] in [0, 1]; [q <= 0]
    returns the exact minimum and [q >= 1] the exact maximum. Returns
    [nan] when empty.
    @raise Invalid_argument if [q] is NaN. *)

val p50 : t -> float

val p90 : t -> float

val p99 : t -> float

val p999 : t -> float

val merge : t -> t -> t
(** Fresh histogram holding both inputs' observations.
    @raise Invalid_argument on mismatched [sub_buckets]. *)

val iter_buckets : t -> (lo:float -> hi:float -> count:int -> unit) -> unit
(** Non-empty buckets in increasing value order. The zero bucket is
    reported as [lo = hi = 0]. *)

val to_json : t -> Json.t
(** Self-describing JSON: derived summary fields (count, mean, min,
    max, standard quantiles) for humans and {!Diff}, plus the exact
    sparse bucket counts so {!of_json} reconstructs a histogram that
    merges and quantiles identically — the transport format for
    cross-process histogram aggregation. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] describes the first malformed
    field. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
