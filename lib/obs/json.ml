type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* --- printing ------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_nan x then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.abs x = infinity then
    Buffer.add_string buf (if x > 0. then "1e308" else "-1e308")
  else begin
    (* Shortest decimal that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> escape buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let rec pretty_buffer buf indent = function
  | (Null | Bool _ | Num _ | Str _) as v -> to_buffer buf v
  | Arr [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | Arr items ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          pretty_buffer buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj fields ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          escape buf k;
          Buffer.add_string buf ": ";
          pretty_buffer buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  if pretty then pretty_buffer buf 0 v else to_buffer buf v;
  Buffer.contents buf

let save ?pretty v ~file =
  let oc = open_out file in
  output_string oc (to_string ?pretty v);
  output_char oc '\n';
  close_out oc

(* --- parsing -------------------------------------------------------- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* UTF-8 encode the BMP code point (surrogates kept raw). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); fields ((k, v) :: acc)
            | '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); items (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function Num x -> Some x | _ -> None
