type value = Counter of int | Gauge of float | Histogram of Hist.t

type cell = Counter_cell of int ref | Gauge_cell of float ref | Hist_cell of Hist.t

type t = { cells : (string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

let kind_error name = invalid_arg (Printf.sprintf "Obs.Registry: %s is registered with another type" name)

let counter_ref t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Counter_cell r) -> r
  | Some _ -> kind_error name
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.cells name (Counter_cell r);
      r

let gauge_ref t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Gauge_cell r) -> r
  | Some _ -> kind_error name
  | None ->
      let r = ref 0. in
      Hashtbl.replace t.cells name (Gauge_cell r);
      r

let hist t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Hist_cell h) -> h
  | Some _ -> kind_error name
  | None ->
      let h = Hist.create () in
      Hashtbl.replace t.cells name (Hist_cell h);
      h

let incr ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by

let set_gauge t name v = gauge_ref t name := v

let add_gauge t name v =
  let r = gauge_ref t name in
  r := !r +. v

let observe t name v = Hist.add (hist t name) v

let counter_value t name =
  match Hashtbl.find_opt t.cells name with Some (Counter_cell r) -> Some !r | _ -> None

let gauge_value t name =
  match Hashtbl.find_opt t.cells name with Some (Gauge_cell r) -> Some !r | _ -> None

let iter t f =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.cells [] in
  List.iter
    (fun name ->
      match Hashtbl.find t.cells name with
      | Counter_cell r -> f name (Counter !r)
      | Gauge_cell r -> f name (Gauge !r)
      | Hist_cell h -> f name (Histogram h))
    (List.sort String.compare names)

let is_empty t = Hashtbl.length t.cells = 0
