(* Bucket layout: bucket 0 collects observations <= 0; bucket
   [1 + (e - o_min) * sub + si] covers
   [2^(e-1) * (1 + si/sub), 2^(e-1) * (1 + (si+1)/sub)), i.e. octave
   [2^(e-1), 2^e) split into [sub] equal-width sub-buckets. [frexp]
   yields the octave and mantissa directly, so recording is a handful
   of float ops and one array increment. *)

let o_min = -40 (* values below ~9.1e-13 clamp into the first octave *)

let o_max = 40 (* values above ~1.1e12 clamp into the last octave *)

type t = {
  sub : int;
  counts : int array;
  mutable n : int;
  mutable nans : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let n_octaves = o_max - o_min + 1

(* Largest power of two <= [requested], clamped to [1, 256]. *)
let normalize_sub requested =
  let clamped = Stdlib.min 256 (Stdlib.max 1 requested) in
  let rec down p = if p <= clamped then p else down (p / 2) in
  down 256

let create ?(sub_buckets = 16) () =
  let sub = normalize_sub sub_buckets in
  {
    sub;
    counts = Array.make (1 + (n_octaves * sub)) 0;
    n = 0;
    nans = 0;
    sum = 0.;
    minv = infinity;
    maxv = neg_infinity;
  }

let sub_buckets t = t.sub

let count t = t.n

let nan_count t = t.nans

let sum t = t.sum

let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let min t = t.minv

let max t = t.maxv

let index_of t v =
  if v <= 0. then 0
  else begin
    let m, e = Float.frexp v in
    if e < o_min then 1
    else if e > o_max then Array.length t.counts - 1
    else begin
      let si = int_of_float ((m -. 0.5) *. 2. *. float_of_int t.sub) in
      let si = if si >= t.sub then t.sub - 1 else if si < 0 then 0 else si in
      1 + ((e - o_min) * t.sub) + si
    end
  end

(* Bounds of bucket [idx >= 1]; the zero bucket is [0, 0]. *)
let bounds t idx =
  if idx = 0 then (0., 0.)
  else begin
    let e = o_min + ((idx - 1) / t.sub) and si = (idx - 1) mod t.sub in
    let base = Float.ldexp 1.0 (e - 1) in
    let w = base /. float_of_int t.sub in
    (base +. (w *. float_of_int si), base +. (w *. float_of_int (si + 1)))
  end

let representative t idx =
  if idx = 0 then 0.
  else begin
    let lo, hi = bounds t idx in
    0.5 *. (lo +. hi)
  end

let add t v =
  if Float.is_nan v then t.nans <- t.nans + 1
  else begin
    t.counts.(index_of t v) <- t.counts.(index_of t v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v
  end

let quantile t q =
  if Float.is_nan q then invalid_arg "Hist.quantile: q is NaN"
  else if t.n = 0 then Float.nan
  else if q <= 0. then t.minv
  else if q >= 1. then t.maxv
  else begin
    (* Nearest-rank: the smallest bucket whose cumulative count reaches
       ceil(q * n). The representative is clamped to the exact observed
       range so extreme quantiles cannot leave it. *)
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let idx = ref 0 and cum = ref 0 in
    while !cum < rank do
      cum := !cum + t.counts.(!idx);
      if !cum < rank then incr idx
    done;
    Float.min t.maxv (Float.max t.minv (representative t !idx))
  end

let p50 t = quantile t 0.5

let p90 t = quantile t 0.9

let p99 t = quantile t 0.99

let p999 t = quantile t 0.999

let merge a b =
  if a.sub <> b.sub then invalid_arg "Hist.merge: sub_buckets mismatch";
  let t = create ~sub_buckets:a.sub () in
  for i = 0 to Array.length t.counts - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.n <- a.n + b.n;
  t.nans <- a.nans + b.nans;
  t.sum <- a.sum +. b.sum;
  t.minv <- Float.min a.minv b.minv;
  t.maxv <- Float.max a.maxv b.maxv;
  t

let iter_buckets t f =
  Array.iteri
    (fun idx c ->
      if c > 0 then begin
        let lo, hi = bounds t idx in
        f ~lo ~hi ~count:c
      end)
    t.counts

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.nans <- 0;
  t.sum <- 0.;
  t.minv <- infinity;
  t.maxv <- neg_infinity

(* The JSON form carries both derived summary fields (for humans and
   Diff) and the exact state — sparse (index, count) bucket pairs plus
   min/max/sum/nan — so [of_json] reconstructs a histogram that merges
   and quantiles identically to the original. Finite floats round-trip
   exactly through Json's shortest-round-trip printer; the empty
   histogram's infinite min/max are encoded as null. *)
let to_json t =
  let finite_or_null v = if Float.is_finite v then Json.Num v else Json.Null in
  let buckets =
    Array.to_list t.counts
    |> List.mapi (fun idx c -> (idx, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (idx, c) -> Json.Arr [ Json.int idx; Json.int c ])
  in
  Json.Obj
    [
      ("sub_buckets", Json.int t.sub);
      ("count", Json.int t.n);
      ("nan_count", Json.int t.nans);
      ("sum", Json.Num t.sum);
      ("min", finite_or_null t.minv);
      ("max", finite_or_null t.maxv);
      ("mean", Json.Num (mean t));
      ("p50", finite_or_null (p50 t));
      ("p90", finite_or_null (p90 t));
      ("p99", finite_or_null (p99 t));
      ("p999", finite_or_null (p999 t));
      ("buckets", Json.Arr buckets);
    ]

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let num field ~default =
    match Json.member field json with
    | Some (Json.Num x) -> Ok x
    | Some Json.Null | None -> Ok default
    | Some _ -> Error (Printf.sprintf "Hist.of_json: %s is not a number" field)
  in
  let* sub = num "sub_buckets" ~default:16. in
  let* n = num "count" ~default:0. in
  let* nans = num "nan_count" ~default:0. in
  let* sum = num "sum" ~default:0. in
  let* minv = num "min" ~default:infinity in
  let* maxv = num "max" ~default:neg_infinity in
  let t = create ~sub_buckets:(int_of_float sub) () in
  if t.sub <> int_of_float sub then
    Error (Printf.sprintf "Hist.of_json: invalid sub_buckets %g" sub)
  else begin
    t.n <- int_of_float n;
    t.nans <- int_of_float nans;
    t.sum <- sum;
    t.minv <- minv;
    t.maxv <- maxv;
    match Json.member "buckets" json with
    | Some (Json.Arr items) ->
        let rec fill = function
          | [] -> Ok t
          | Json.Arr [ Json.Num idx; Json.Num c ] :: rest ->
              let idx = int_of_float idx in
              if idx < 0 || idx >= Array.length t.counts then
                Error (Printf.sprintf "Hist.of_json: bucket index %d out of range" idx)
              else begin
                t.counts.(idx) <- int_of_float c;
                fill rest
              end
          | _ -> Error "Hist.of_json: malformed bucket entry"
        in
        fill items
    | None -> Ok t
    | Some _ -> Error "Hist.of_json: buckets is not an array"
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g p999=%.4g max=%.4g" t.n
    (mean t) (p50 t) (p90 t) (p99 t) (p999 t) t.maxv
