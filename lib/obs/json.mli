(** A minimal JSON tree, printer and parser.

    Just enough JSON for the observability pipeline — metric reports,
    Chrome trace-event files and the bench timing files that
    {!Diff} compares — without pulling a JSON library into the
    dependency cone. Numbers are floats (ints print without a
    fractional part); object key order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** [Num] of an integer. *)

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) rendering. *)

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default false) indents objects and arrays. *)

val save : ?pretty:bool -> t -> file:string -> unit

val parse : string -> (t, string) result
(** Strict parse of one JSON document (trailing whitespace allowed).
    The error string carries the byte offset of the failure. *)

val parse_file : string -> (t, string) result
(** [Error] if the file cannot be read or does not parse. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** The number in a [Num]; [None] otherwise. *)
