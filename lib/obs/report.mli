(** Serialization of a {!Registry} to JSON, alongside the text tables.

    Counters and gauges become numeric leaves; histograms become
    objects carrying count/sum/min/max/mean, the standard latency
    quantiles (p50/p90/p99/p999) and the non-empty buckets, so a
    report is both human-diffable and consumable by {!Diff}. An
    optional [meta] object (git commit, run parameters, …) makes the
    file self-describing. *)

val to_json : ?meta:(string * Json.t) list -> Registry.t -> Json.t

val to_string : ?meta:(string * Json.t) list -> Registry.t -> string
(** Pretty-printed. *)

val save : ?meta:(string * Json.t) list -> Registry.t -> file:string -> unit

val pp : Format.formatter -> Registry.t -> unit
(** A compact name/value text table, for terminal output. *)
