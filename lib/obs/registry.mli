(** A named metrics registry.

    The registry is the rendezvous between the subsystems that own
    numbers (the engine, the network, the protocol hosts) and the
    report/diff pipeline that consumes them. Metrics are created on
    first use; names are free-form, with "/" conventionally separating
    the subsystem prefix from the metric (e.g. ["sim/events_fired"],
    ["recovery/latency_rtt"]).

    Publishing is pull-based: a subsystem exposes a [publish_metrics]
    that snapshots its internal (already maintained) counters into the
    registry at end of run, so the running hot path pays nothing for
    the registry's existence. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter (created at 0). *)

val set_gauge : t -> string -> float -> unit

val add_gauge : t -> string -> float -> unit
(** Accumulate into a gauge (created at 0) — used when several hosts
    publish into one metric. *)

val observe : t -> string -> float -> unit
(** Record into a histogram (created with {!Hist}'s defaults). *)

val hist : t -> string -> Hist.t
(** The named histogram, created empty if absent — for bulk recording
    without the name lookup per observation. *)

val counter_value : t -> string -> int option

val gauge_value : t -> string -> float option

type value = Counter of int | Gauge of float | Histogram of Hist.t

val iter : t -> (string -> value -> unit) -> unit
(** In ascending name order. *)

val is_empty : t -> bool
