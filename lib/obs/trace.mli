(** Structured event tracing for protocol runs.

    A trace is a preallocated ring buffer of unboxed event records —
    sim time, node, stream, packed loss key, event kind, duration —
    recorded from the simulator's existing observation seams (the SRM
    host hooks and the network packet tap), so recording never perturbs
    protocol behaviour and a run without a trace attached pays nothing.
    When the ring fills, the oldest events are overwritten and counted
    in {!dropped}.

    {!export_chrome} serializes the buffer as Chrome trace-event JSON
    (the [traceEvents] array format), which opens directly in Perfetto
    or [chrome://tracing]: every event becomes an instant on the
    [pid = node, tid = stream] track, and each
    [Loss_detected → Recovered_*] pair is additionally reconstructed
    into a complete-span event named ["recovery expedited"] or
    ["recovery fallback"], so the expedited-vs-fallback latency gap
    (paper Fig. 2) is visible directly on the timeline. *)

type kind =
  | Loss_detected
  | Request_scheduled
  | Request_sent
  | Reply_scheduled
  | Reply_sent
  | Exp_request_scheduled
  | Exp_request_sent
  | Exp_reply_sent
  | Recovered_expedited
  | Recovered_fallback
  | Data_sent
  | Session_sent

val kind_name : kind -> string

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity in events (default 65536, min 16). All storage is
    allocated here; recording allocates nothing. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** A disabled trace ignores {!record} calls (a single branch). Traces
    start enabled. *)

val record : t -> at:float -> node:int -> stream:int -> key:int -> ?dur:float -> kind -> unit
(** Append one event; [at] is sim time in seconds, [key] the packed
    (src, seq) loss key, [dur] an optional span length in seconds
    (default 0 = instant). *)

val recorded : t -> int
(** Events accepted since creation (including since-overwritten ones). *)

val dropped : t -> int
(** Events overwritten after the ring wrapped. *)

val length : t -> int
(** Events currently held. *)

val iter : t -> (at:float -> node:int -> stream:int -> key:int -> dur:float -> kind -> unit) -> unit
(** Oldest to newest. *)

val clear : t -> unit

val to_chrome_json : t -> Json.t
(** The trace as a Chrome trace-event document (object with a
    [traceEvents] array; [ts] in microseconds). *)

val export_chrome : t -> file:string -> unit
