type kind =
  | Loss_detected
  | Request_scheduled
  | Request_sent
  | Reply_scheduled
  | Reply_sent
  | Exp_request_scheduled
  | Exp_request_sent
  | Exp_reply_sent
  | Recovered_expedited
  | Recovered_fallback
  | Data_sent
  | Session_sent

let kind_index = function
  | Loss_detected -> 0
  | Request_scheduled -> 1
  | Request_sent -> 2
  | Reply_scheduled -> 3
  | Reply_sent -> 4
  | Exp_request_scheduled -> 5
  | Exp_request_sent -> 6
  | Exp_reply_sent -> 7
  | Recovered_expedited -> 8
  | Recovered_fallback -> 9
  | Data_sent -> 10
  | Session_sent -> 11

let kind_of_index = function
  | 0 -> Loss_detected
  | 1 -> Request_scheduled
  | 2 -> Request_sent
  | 3 -> Reply_scheduled
  | 4 -> Reply_sent
  | 5 -> Exp_request_scheduled
  | 6 -> Exp_request_sent
  | 7 -> Exp_reply_sent
  | 8 -> Recovered_expedited
  | 9 -> Recovered_fallback
  | 10 -> Data_sent
  | _ -> Session_sent

let kind_name = function
  | Loss_detected -> "loss-detected"
  | Request_scheduled -> "request-scheduled"
  | Request_sent -> "request-sent"
  | Reply_scheduled -> "reply-scheduled"
  | Reply_sent -> "reply-sent"
  | Exp_request_scheduled -> "exp-request-scheduled"
  | Exp_request_sent -> "exp-request-sent"
  | Exp_reply_sent -> "exp-reply-sent"
  | Recovered_expedited -> "recovered-expedited"
  | Recovered_fallback -> "recovered-fallback"
  | Data_sent -> "data-sent"
  | Session_sent -> "session-sent"

(* Parallel unboxed arrays, one slot per event: float arrays are flat
   (no boxing) and the three small ints of a record pack into one
   tagged int, so [record] performs four stores and no allocation. *)
type t = {
  capacity : int;
  times : float array;
  durs : float array;
  nodes : int array;
  streams : int array;
  keys : int array;
  kinds : int array;
  mutable head : int; (* next write position *)
  mutable len : int;
  mutable recorded : int;
  mutable on : bool;
}

let create ?(capacity = 65536) () =
  let capacity = max 16 capacity in
  {
    capacity;
    times = Array.make capacity 0.;
    durs = Array.make capacity 0.;
    nodes = Array.make capacity 0;
    streams = Array.make capacity 0;
    keys = Array.make capacity 0;
    kinds = Array.make capacity 0;
    head = 0;
    len = 0;
    recorded = 0;
    on = true;
  }

let enabled t = t.on

let set_enabled t flag = t.on <- flag

let record t ~at ~node ~stream ~key ?(dur = 0.) kind =
  if t.on then begin
    let i = t.head in
    t.times.(i) <- at;
    t.durs.(i) <- dur;
    t.nodes.(i) <- node;
    t.streams.(i) <- stream;
    t.keys.(i) <- key;
    t.kinds.(i) <- kind_index kind;
    t.head <- (if i + 1 = t.capacity then 0 else i + 1);
    if t.len < t.capacity then t.len <- t.len + 1;
    t.recorded <- t.recorded + 1
  end

let recorded t = t.recorded

let dropped t = t.recorded - t.len

let length t = t.len

let iter t f =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  for j = 0 to t.len - 1 do
    let i = (start + j) mod t.capacity in
    f ~at:t.times.(i) ~node:t.nodes.(i) ~stream:t.streams.(i) ~key:t.keys.(i)
      ~dur:t.durs.(i)
      (kind_of_index t.kinds.(i))
  done

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.recorded <- 0

(* --- Chrome trace-event export -------------------------------------- *)

let us at = Json.Num (1e6 *. at)

let event ~name ~ph ~at ~node ~stream ~key ?dur () =
  Json.Obj
    (("name", Json.Str name)
     :: ("cat", Json.Str "cesrm")
     :: ("ph", Json.Str ph)
     :: ("ts", us at)
     :: (match dur with Some d -> [ ("dur", us d) ] | None -> [])
    @ (if ph = "i" then [ ("s", Json.Str "t") ] else [])
    @ [
        ("pid", Json.int node);
        ("tid", Json.int stream);
        ("args", Json.Obj [ ("key", Json.int key) ]);
      ])

let to_chrome_json t =
  let events = ref [] in
  let push e = events := e :: !events in
  (* Open detections, keyed (node, key) -> detection time, for span
     reconstruction; a Recovered_* closes the span. *)
  let detects : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  iter t (fun ~at ~node ~stream ~key ~dur kind ->
      (match kind with
      | Loss_detected -> Hashtbl.replace detects (node, key) at
      | Recovered_expedited | Recovered_fallback -> (
          match Hashtbl.find_opt detects (node, key) with
          | Some t0 ->
              Hashtbl.remove detects (node, key);
              let name =
                if kind = Recovered_expedited then "recovery expedited" else "recovery fallback"
              in
              push (event ~name ~ph:"X" ~at:t0 ~node ~stream ~key ~dur:(at -. t0) ())
          | None -> ())
      | _ -> ());
      let dur = if dur > 0. then Some dur else None in
      push (event ~name:(kind_name kind) ~ph:(if dur = None then "i" else "X") ~at ~node ~stream ~key ?dur ()));
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev !events));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("recorded", Json.int t.recorded);
            ("dropped", Json.int (dropped t));
            ("source", Json.Str "cesrm Obs.Trace");
          ] );
    ]

let export_chrome t ~file = Json.save (to_chrome_json t) ~file
