let hist_json h =
  let buckets = ref [] in
  Hist.iter_buckets h (fun ~lo ~hi ~count ->
      buckets := Json.Arr [ Json.Num lo; Json.Num hi; Json.int count ] :: !buckets);
  Json.Obj
    [
      ("count", Json.int (Hist.count h));
      ("sum", Json.Num (Hist.sum h));
      ("mean", Json.Num (Hist.mean h));
      ("min", Json.Num (if Hist.count h = 0 then Float.nan else Hist.min h));
      ("max", Json.Num (if Hist.count h = 0 then Float.nan else Hist.max h));
      ("p50", Json.Num (Hist.p50 h));
      ("p90", Json.Num (Hist.p90 h));
      ("p99", Json.Num (Hist.p99 h));
      ("p999", Json.Num (Hist.p999 h));
      ("buckets", Json.Arr (List.rev !buckets));
    ]

let to_json ?(meta = []) registry =
  let metrics = ref [] in
  Registry.iter registry (fun name value ->
      let v =
        match value with
        | Registry.Counter n -> Json.int n
        | Registry.Gauge x -> Json.Num x
        | Registry.Histogram h -> hist_json h
      in
      metrics := (name, v) :: !metrics);
  Json.Obj
    ((if meta = [] then [] else [ ("meta", Json.Obj meta) ])
    @ [ ("metrics", Json.Obj (List.rev !metrics)) ])

let to_string ?meta registry = Json.to_string ~pretty:true (to_json ?meta registry)

let save ?meta registry ~file = Json.save ~pretty:true (to_json ?meta registry) ~file

let pp ppf registry =
  Registry.iter registry (fun name value ->
      match value with
      | Registry.Counter n -> Format.fprintf ppf "%-40s %d@." name n
      | Registry.Gauge x -> Format.fprintf ppf "%-40s %.6g@." name x
      | Registry.Histogram h -> Format.fprintf ppf "%-40s %a@." name Hist.pp h)
