(** Streaming univariate summaries (Welford) with optional exact
    percentiles from retained samples. *)

type t

val create : ?keep_samples:bool -> unit -> t
(** With [keep_samples] (default true) every observation is retained so
    percentiles are exact; disable for very long streams — moments stay
    exact and percentiles fall back to a log-bucketed {!Obs.Hist}
    sketch (bounded relative error, see its docs). *)

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** +inf when empty. *)

val max : t -> float
(** -inf when empty. *)

val total : t -> float

val percentile : t -> float -> float
(** [percentile t 0.5] is the median — exact nearest-rank over retained
    samples, sketch-approximated otherwise. [q = 0] and [q = 1] are the
    extremes; a single-sample summary returns that sample for every
    [q]; duplicates are handled like any adjacent equal ranks. Returns
    [nan] when the summary is empty.
    @raise Invalid_argument if [q] is NaN or outside [0, 1]. *)

val merge : t -> t -> t
(** Combine two summaries (samples concatenated if both retained). *)

val pp : Format.formatter -> t -> unit
