type record = {
  node : int;
  src : int;
  seq : int;
  detected_at : float;
  recovered_at : float;
  rounds : int;
  expedited : bool;
}

let latency r = r.recovered_at -. r.detected_at

type t = {
  mutable records : record list;
  mutable n : int;
  mutable observer : (record -> unit) option;
}

let create () = { records = []; n = 0; observer = None }

let add t r =
  t.records <- r :: t.records;
  t.n <- t.n + 1;
  match t.observer with Some f -> f r | None -> ()

let set_observer t f = t.observer <- Some f

let count t = t.n

let records t = List.rev t.records

let for_node t node = List.filter (fun r -> r.node = node) (records t)

let latency_summary ?(normalize = fun _ -> 1.) ?(filter = fun _ -> true) t =
  let s = Summary.create () in
  List.iter (fun r -> if filter r then Summary.add s (latency r /. normalize r)) t.records;
  s

let unrecovered t ~expected =
  List.filter_map
    (fun (node, losses) ->
      let got = List.length (for_node t node) in
      if got < losses then Some (node, losses - got) else None)
    expected
