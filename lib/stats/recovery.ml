type record = {
  node : int;
  src : int;
  seq : int;
  detected_at : float;
  recovered_at : float;
  rounds : int;
  expedited : bool;
}

let latency r = r.recovered_at -. r.detected_at

type t = {
  mutable records : record list;
  mutable n : int;
  mutable observer : (record -> unit) option;
  mutable keep_records : bool;
  (* Online latency summary, maintained on every [add]: in steady
     (records-off) mode it is all that remains of the latency stream —
     exact moments plus a sketch for percentiles, O(1) memory. *)
  online : Summary.t;
}

let create () =
  {
    records = [];
    n = 0;
    observer = None;
    keep_records = true;
    online = Summary.create ~keep_samples:false ();
  }

(* Steady-state mode: stop retaining per-loss records (and drop any
   already held) — [count] and the default [latency_summary] keep
   working from the online accumulators. *)
let drop_records t =
  t.keep_records <- false;
  t.records <- []

let retains_records t = t.keep_records

let add t r =
  if t.keep_records then t.records <- r :: t.records;
  t.n <- t.n + 1;
  Summary.add t.online (latency r);
  match t.observer with Some f -> f r | None -> ()

let set_observer t f = t.observer <- Some f

let count t = t.n

let records t = List.rev t.records

let for_node t node = List.filter (fun r -> r.node = node) (records t)

let latency_summary ?normalize ?filter t =
  match (normalize, filter, t.keep_records) with
  | None, None, false -> t.online
  | _ ->
      let normalize = Option.value normalize ~default:(fun _ -> 1.) in
      let filter = Option.value filter ~default:(fun _ -> true) in
      let s = Summary.create () in
      List.iter (fun r -> if filter r then Summary.add s (latency r /. normalize r)) t.records;
      s

let unrecovered t ~expected =
  List.filter_map
    (fun (node, losses) ->
      let got = List.length (for_node t node) in
      if got < losses then Some (node, losses - got) else None)
    expected
