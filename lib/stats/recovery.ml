type record = {
  node : int;
  src : int;
  seq : int;
  detected_at : float;
  recovered_at : float;
  rounds : int;
  expedited : bool;
  repaired : bool;
}

let latency r = r.recovered_at -. r.detected_at

type t = {
  mutable records : record list;
  mutable n : int;
  mutable observer : (record -> unit) option;
  mutable keep_records : bool;
  (* Online latency summary, maintained on every [add]: in steady
     (records-off) mode it is all that remains of the latency stream —
     exact moments plus a sketch for percentiles, O(1) memory. *)
  online : Summary.t;
  (* Per-loss recovery spans, for the makespan figure: packed
     (src, seq) -> (earliest detection, latest recovery) over every
     member that lost the packet. Live entries are folded on demand;
     steady-state retirement flushes them into [span_online] so the
     table stays bounded by the recovery window. *)
  spans : (int * int, float * float) Hashtbl.t;
  span_online : Summary.t;
}

let create () =
  {
    records = [];
    n = 0;
    observer = None;
    keep_records = true;
    online = Summary.create ~keep_samples:false ();
    spans = Hashtbl.create 64;
    span_online = Summary.create ~keep_samples:false ();
  }

(* Steady-state mode: stop retaining per-loss records (and drop any
   already held) — [count] and the default [latency_summary] keep
   working from the online accumulators. *)
let drop_records t =
  t.keep_records <- false;
  t.records <- []

let retains_records t = t.keep_records

let add t r =
  if t.keep_records then t.records <- r :: t.records;
  t.n <- t.n + 1;
  Summary.add t.online (latency r);
  (* Spans count only repair-delivered recoveries: a detection closed
     by the original data packet finally arriving (the stream outpaced
     by its own session advertisements on deep paths) measures the
     transport, not the recovery protocol, and would put an identical
     floor under every protocol's makespan. *)
  (if r.repaired then
     let key = (r.src, r.seq) in
     let det, rec_ =
       match Hashtbl.find_opt t.spans key with
       | None -> (r.detected_at, r.recovered_at)
       | Some (det, rec_) ->
           (Float.min det r.detected_at, Float.max rec_ r.recovered_at)
     in
     Hashtbl.replace t.spans key (det, rec_));
  match t.observer with Some f -> f r | None -> ()

let set_observer t f = t.observer <- Some f

let count t = t.n

let records t = List.rev t.records

let for_node t node = List.filter (fun r -> r.node = node) (records t)

let latency_summary ?normalize ?filter t =
  match (normalize, filter, t.keep_records) with
  | None, None, false -> t.online
  | _ ->
      let normalize = Option.value normalize ~default:(fun _ -> 1.) in
      let filter = Option.value filter ~default:(fun _ -> true) in
      let s = Summary.create () in
      List.iter (fun r -> if filter r then Summary.add s (latency r /. normalize r)) t.records;
      s

(* Steady-state retirement: a (src, seq) at or below the stability
   horizon can gain no further records — every member has delivered
   it — so its span is final. Flush such spans into the online summary
   (in deterministic key order) and drop the table entries, keeping the
   table bounded by the recovery window over a million-packet run. *)
let retire_spans t ~upto =
  let keys =
    Hashtbl.fold (fun ((_, seq) as k) _ acc -> if seq <= upto then k :: acc else acc) t.spans []
  in
  let keys = List.sort compare keys in
  List.iter
    (fun k ->
      let det, rec_ = Hashtbl.find t.spans k in
      Summary.add t.span_online (rec_ -. det);
      Hashtbl.remove t.spans k)
    keys

(* The makespan figure: one observation per lost packet — the time
   from the loss's earliest detection anywhere to its latest recovery
   anywhere (the last receiver's recovery time). Spans already retired
   come from the online sketch; live ones are folded in key order. *)
let makespan_summary t =
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.spans []) in
  let live = Summary.create () in
  List.iter
    (fun k ->
      let det, rec_ = Hashtbl.find t.spans k in
      Summary.add live (rec_ -. det))
    keys;
  if Summary.count t.span_online = 0 then live else Summary.merge t.span_online live

let iter_spans t f =
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.spans []) in
  List.iter
    (fun ((src, seq) as k) ->
      let det, rec_ = Hashtbl.find t.spans k in
      f ~src ~seq ~detected:det ~recovered:rec_)
    keys

let makespan t =
  let s = makespan_summary t in
  if Summary.count s = 0 then 0. else Summary.max s

let unrecovered t ~expected =
  List.filter_map
    (fun (node, losses) ->
      let got = List.length (for_node t node) in
      if got < losses then Some (node, losses - got) else None)
    expected
