(** Per-host packet-send counters for the per-receiver bar charts
    (Figures 3 and 4 of the paper). *)

type kind =
  | Rqst  (** SRM-style multicast repair request *)
  | Exp_rqst  (** CESRM unicast expedited request *)
  | Repl  (** multicast reply (SRM or CESRM fallback) *)
  | Exp_repl  (** multicast expedited reply *)
  | Sess  (** session message *)
  | Oracle  (** fault-oracle invariant violations charged to the node *)

type t

val create : n_nodes:int -> t

val bump : t -> node:int -> kind -> unit

val get : t -> node:int -> kind -> int

val total : t -> kind -> int

val n_nodes : t -> int

val merge : t -> t -> t
(** Fresh per-node, per-kind sums of both inputs — aggregation across
    same-topology runs (e.g. the seeds axis of a sweep).
    @raise Invalid_argument on mismatched node counts. *)

val all_kinds : kind list

val kind_name : kind -> string
