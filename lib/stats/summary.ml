type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable total : float;
  samples : Vec.t option;
  mutable sketch : Obs.Hist.t option;
      (* log-bucketed backing when samples are not retained, so
         percentiles degrade to bounded-error approximations instead of
         raising; [samples = None] iff [sketch = Some _] *)
}

let create ?(keep_samples = true) () =
  {
    n = 0;
    mean = 0.;
    m2 = 0.;
    minv = infinity;
    maxv = neg_infinity;
    total = 0.;
    samples = (if keep_samples then Some (Vec.create ()) else None);
    sketch = (if keep_samples then None else Some (Obs.Hist.create ()));
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.total <- t.total +. x;
  (match t.sketch with None -> () | Some h -> Obs.Hist.add h x);
  match t.samples with None -> () | Some d -> Vec.add d x

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.minv

let max t = t.maxv

let total t = t.total

let percentile t q =
  if Float.is_nan q then invalid_arg "Summary.percentile: q is NaN"
  else if q < 0. || q > 1. then invalid_arg "Summary.percentile: q in [0,1]"
  else if t.n = 0 then Float.nan
  else
    match (t.samples, t.sketch) with
    | Some d, _ ->
        (* Exact nearest-rank over the retained samples; duplicates are
           just adjacent equal ranks, q = 0 / 1 are the extremes. *)
        let a = Vec.to_array d in
        Array.sort Float.compare a;
        let rank = int_of_float (Float.round (q *. float_of_int (t.n - 1))) in
        a.(rank)
    | None, Some h -> Obs.Hist.quantile h q
    | None, None -> invalid_arg "Summary.percentile: samples not retained"

let merge a b =
  let keep = a.samples <> None && b.samples <> None in
  let t = create ~keep_samples:keep () in
  let absorb s =
    match s.samples with
    | Some d -> Vec.iter (fun x -> add t x) d
    | None ->
        (* Moment-only merge: replay is impossible, so merge moments
           directly (Chan et al. parallel update) and the sketches. *)
        let n1 = float_of_int t.n and n2 = float_of_int s.n in
        if s.n > 0 then begin
          let delta = s.mean -. t.mean in
          let n = n1 +. n2 in
          t.mean <- t.mean +. (delta *. n2 /. n);
          t.m2 <- t.m2 +. s.m2 +. (delta *. delta *. n1 *. n2 /. n);
          t.n <- t.n + s.n;
          t.total <- t.total +. s.total;
          if s.minv < t.minv then t.minv <- s.minv;
          if s.maxv > t.maxv then t.maxv <- s.maxv;
          match (t.sketch, s.sketch) with
          | Some th, Some sh -> t.sketch <- Some (Obs.Hist.merge th sh)
          | _ -> ()
        end
  in
  absorb a;
  absorb b;
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" t.n (mean t) (stddev t)
    t.minv t.maxv
