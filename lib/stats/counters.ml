type kind = Rqst | Exp_rqst | Repl | Exp_repl | Sess | Oracle

let kind_index = function
  | Rqst -> 0
  | Exp_rqst -> 1
  | Repl -> 2
  | Exp_repl -> 3
  | Sess -> 4
  | Oracle -> 5

let all_kinds = [ Rqst; Exp_rqst; Repl; Exp_repl; Sess; Oracle ]

let kind_name = function
  | Rqst -> "RQST"
  | Exp_rqst -> "ERQST"
  | Repl -> "REPL"
  | Exp_repl -> "EREPL"
  | Sess -> "SESS"
  | Oracle -> "ORACLE"

type t = int array array

let create ~n_nodes = Array.make_matrix n_nodes (List.length all_kinds) 0

let bump t ~node kind = t.(node).(kind_index kind) <- t.(node).(kind_index kind) + 1

let get t ~node kind = t.(node).(kind_index kind)

let total t kind = Array.fold_left (fun acc row -> acc + row.(kind_index kind)) 0 t

let n_nodes t = Array.length t

let merge a b =
  if Array.length a <> Array.length b then invalid_arg "Counters.merge: n_nodes mismatch";
  Array.init (Array.length a) (fun node -> Array.map2 ( + ) a.(node) b.(node))
