(** Per-loss recovery records.

    One record is produced when a receiver that detected a loss first
    obtains the packet again (via any reply or a late data duplicate).
    Latencies are measured from detection, and the figures normalize
    them by the receiver's RTT to the source, as in the paper. *)

type record = {
  node : int;  (** receiver node id *)
  src : int;  (** the stream the packet belongs to *)
  seq : int;
  detected_at : float;
  recovered_at : float;
  rounds : int;  (** SRM request-timer expirations before recovery *)
  expedited : bool;  (** recovered by an expedited reply *)
  repaired : bool;
      (** recovered by a retransmission (any reply), as opposed to the
          original data packet arriving after detection had already
          fired — deep paths detect in-flight packets via session
          advertisements, and such self-healed records measure the
          transport, not the repair protocol *)
}

val latency : record -> float

type t
(** A collector. *)

val create : unit -> t

val drop_records : t -> unit
(** Steady-state mode: stop retaining per-loss records, and drop any
    already held. {!count} and the default {!latency_summary} keep
    working from O(1) online accumulators (exact moments, sketched
    percentiles); {!records} returns [[]] and a filtered or normalized
    {!latency_summary} is empty. *)

val retains_records : t -> bool

val add : t -> record -> unit

val set_observer : t -> (record -> unit) -> unit
(** Invoke [f] on every subsequent {!add}, after insertion — a PDES
    shard worker uses this to tag each record with the delivery rank
    of the walk that produced it ({!Net.Network.delivery_rank}). *)

val count : t -> int

val records : t -> record list
(** In insertion order. *)

val for_node : t -> int -> record list

val latency_summary : ?normalize:(record -> float) -> ?filter:(record -> bool) -> t -> Summary.t
(** Summary of [latency r /. normalize r] over records passing
    [filter]. Default: no filter, normalizer 1. After
    {!drop_records}, the default form returns the online summary
    (sketched percentiles); passing [normalize] or [filter] then
    yields an empty summary, since the records are gone. *)

val retire_spans : t -> upto:int -> unit
(** Steady-state mode: sequence numbers at or below the stability
    horizon can gain no further records, so their per-loss spans are
    final — flush them into the online makespan sketch and drop the
    live entries. Driven by [Steady.Controller]; never called in
    classic runs (where {!makespan_summary} folds live spans
    exactly). *)

val makespan_summary : t -> Summary.t
(** One observation per repaired packet: the time from the loss's
    earliest detection at any member to its latest {e repaired}
    recovery at any member — the {e last-receiver} recovery time, the
    figure a whole-group repair is judged by. Only records with
    [repaired = true] contribute (see {!type:record}); self-healed
    detections are excluded. Exact in classic runs; after
    {!retire_spans} the retired part comes from a bounded-error sketch
    (like {!latency_summary} percentiles after {!drop_records}). *)

val iter_spans :
  t -> (src:int -> seq:int -> detected:float -> recovered:float -> unit) -> unit
(** Visit every {e live} (un-retired) per-packet span in (src, seq)
    order: the earliest detection and latest repaired recovery the
    packet has accumulated so far. Diagnostic hook — spans already
    flushed by [retire_spans] are only in the sketch and not visited. *)

val makespan : t -> float
(** [Summary.max (makespan_summary t)] — the single worst last-receiver
    recovery time of the run; 0 when no losses were recovered. *)

val unrecovered : t -> expected:(int * int) list -> (int * int) list
(** Given [(node, losses_detected)] expectations, report nodes whose
    record count falls short, as [(node, missing)]. *)
