(** Per-loss recovery records.

    One record is produced when a receiver that detected a loss first
    obtains the packet again (via any reply or a late data duplicate).
    Latencies are measured from detection, and the figures normalize
    them by the receiver's RTT to the source, as in the paper. *)

type record = {
  node : int;  (** receiver node id *)
  src : int;  (** the stream the packet belongs to *)
  seq : int;
  detected_at : float;
  recovered_at : float;
  rounds : int;  (** SRM request-timer expirations before recovery *)
  expedited : bool;  (** recovered by an expedited reply *)
}

val latency : record -> float

type t
(** A collector. *)

val create : unit -> t

val add : t -> record -> unit

val set_observer : t -> (record -> unit) -> unit
(** Invoke [f] on every subsequent {!add}, after insertion — a PDES
    shard worker uses this to tag each record with the delivery rank
    of the walk that produced it ({!Net.Network.delivery_rank}). *)

val count : t -> int

val records : t -> record list
(** In insertion order. *)

val for_node : t -> int -> record list

val latency_summary : ?normalize:(record -> float) -> ?filter:(record -> bool) -> t -> Summary.t
(** Summary of [latency r /. normalize r] over records passing
    [filter]. Default: no filter, normalizer 1. *)

val unrecovered : t -> expected:(int * int) list -> (int * int) list
(** Given [(node, losses_detected)] expectations, report nodes whose
    record count falls short, as [(node, missing)]. *)
