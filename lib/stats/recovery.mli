(** Per-loss recovery records.

    One record is produced when a receiver that detected a loss first
    obtains the packet again (via any reply or a late data duplicate).
    Latencies are measured from detection, and the figures normalize
    them by the receiver's RTT to the source, as in the paper. *)

type record = {
  node : int;  (** receiver node id *)
  src : int;  (** the stream the packet belongs to *)
  seq : int;
  detected_at : float;
  recovered_at : float;
  rounds : int;  (** SRM request-timer expirations before recovery *)
  expedited : bool;  (** recovered by an expedited reply *)
}

val latency : record -> float

type t
(** A collector. *)

val create : unit -> t

val drop_records : t -> unit
(** Steady-state mode: stop retaining per-loss records, and drop any
    already held. {!count} and the default {!latency_summary} keep
    working from O(1) online accumulators (exact moments, sketched
    percentiles); {!records} returns [[]] and a filtered or normalized
    {!latency_summary} is empty. *)

val retains_records : t -> bool

val add : t -> record -> unit

val set_observer : t -> (record -> unit) -> unit
(** Invoke [f] on every subsequent {!add}, after insertion — a PDES
    shard worker uses this to tag each record with the delivery rank
    of the walk that produced it ({!Net.Network.delivery_rank}). *)

val count : t -> int

val records : t -> record list
(** In insertion order. *)

val for_node : t -> int -> record list

val latency_summary : ?normalize:(record -> float) -> ?filter:(record -> bool) -> t -> Summary.t
(** Summary of [latency r /. normalize r] over records passing
    [filter]. Default: no filter, normalizer 1. After
    {!drop_records}, the default form returns the online summary
    (sketched percentiles); passing [normalize] or [filter] then
    yields an empty summary, since the records are gone. *)

val unrecovered : t -> expected:(int * int) list -> (int * int) list
(** Given [(node, losses_detected)] expectations, report nodes whose
    record count falls short, as [(node, missing)]. *)
