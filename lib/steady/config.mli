(** Configuration of steady (streaming) execution.

    Steady mode bounds a run's memory in the stream length by three
    independent levers, all optional:

    - a retirement {e window}: once every member has delivered packets
      [1..p] and the session exchange has stabilised them, state for
      seqs at or below [p - window] is dropped protocol-wide at the
      next epoch tick;
    - lazy trace generation (callers pick it by running a
      {!Mtrace.Trace.create_streaming} trace with a [Streamed] loss
      model);
    - dropping per-recovery records in favour of online summaries
      ([retain_records = false] → {!Stats.Recovery.drop_records}).

    [infinite] switches all three off, which must be — and is, see the
    determinism test battery — byte-identical to the classic eager
    engine. *)

type t = {
  window : int option;
      (** [Some w]: retire state more than [w] packets below the
          all-members delivered prefix. [None]: never retire. *)
  epoch_every : float option;
      (** Simulated seconds between retirement epochs; [None] derives
          one from the window and packet period. *)
  retain_records : bool;
      (** Keep the per-recovery record list (exact percentiles,
          O(losses) memory). [false] keeps online summaries only. *)
}

val infinite : t
(** No retirement, no epochs, full records. *)

val windowed : ?epoch_every:float -> ?retain_records:bool -> int -> t
(** [windowed w] retires with window [w]; [retain_records] defaults to
    [false] — a finite window is for constant-memory runs.
    @raise Invalid_argument on a non-positive window or period. *)

val streaming : t -> bool
(** Whether any steady lever is on (i.e. the run is not plain eager
    execution with extra steps). *)

val epoch_period : t -> period:float -> float option
(** The tick period to drive retirement with: the explicit
    [epoch_every] if given, else one window's worth of packet periods
    clamped to [50 periods, 60 s]. [None] iff no window and no
    explicit period (nothing to tick for). *)
