(* The retirement controller: the one place that knows when protocol
   state may be dropped. Member hosts only expose "how far have I
   delivered" and "forget everything at or below this seq"; the
   controller computes the global stability floor and drives every
   member (plus any registered extras — auditor, instrumentation) from
   the engine's epoch tick. *)

type member = {
  node : int;
  delivered_prefix : unit -> int;
  retire : upto:int -> unit;
}

type t = {
  window : int;
  n_packets : int;
  mutable members : member list;
  mutable extra : (upto:int -> unit) list;
  mutable floor : int;
  mutable ticks : int;
  mutable heap_samples : int list; (* newest first; live heap words per tick *)
  mutable peak_heap : int;
  mutable steady_start_tick : int;
  (* 1-based tick at which the retirement pipeline filled (floor has
     advanced a full window); 0 = not yet *)
}

let create ~window ~n_packets =
  if window < 1 then invalid_arg "Steady.Controller.create: window must be >= 1";
  {
    window;
    n_packets;
    members = [];
    extra = [];
    floor = 0;
    ticks = 0;
    heap_samples = [];
    peak_heap = 0;
    steady_start_tick = 0;
  }

let add_member t m = t.members <- m :: t.members

let on_retire t f = t.extra <- f :: t.extra

let floor t = t.floor

let ticks t = t.ticks

(* The stability horizon: every member has delivered the prefix up to
   its reported value, so anything [window] below the global minimum
   can no longer be the subject of a loss that still needs local
   state. The floor is monotone by construction (prefixes only grow). *)
let stability_floor t =
  match t.members with
  | [] -> 0
  | ms ->
      let min_prefix =
        List.fold_left (fun acc m -> min acc (m.delivered_prefix ())) max_int ms
      in
      max t.floor (max 0 (min_prefix - t.window))

let tick t =
  t.ticks <- t.ticks + 1;
  let f = stability_floor t in
  if f > t.floor then begin
    t.floor <- f;
    List.iter (fun m -> m.retire ~upto:f) t.members;
    List.iter (fun g -> g ~upto:f) t.extra
  end;
  if t.steady_start_tick = 0 && t.floor >= t.window then t.steady_start_tick <- t.ticks;
  let stat = Gc.quick_stat () in
  t.heap_samples <- stat.Gc.heap_words :: t.heap_samples;
  if stat.Gc.top_heap_words > t.peak_heap then t.peak_heap <- stat.Gc.top_heap_words

let peak_heap_words t = t.peak_heap

let heap_samples t = Array.of_list (List.rev t.heap_samples)

(* Mean heap over the last decile of steady-state ticks relative to
   the first decile — the constant-memory acceptance number: a leak of
   per-packet state shows up as a ratio growing with stream length, a
   healthy windowed run stays near 1. "Steady state" starts once the
   floor has advanced a full window: before that the run is still
   filling the retirement pipeline (the un-retired span grows from
   zero to window-plus-lag), so the heap legitimately climbs and the
   ratio would only measure the fill against the warmup, not a leak.
   [None] until there are at least 10 steady samples. *)
let heap_growth t =
  let samples = heap_samples t in
  if t.steady_start_tick = 0 then None
  else begin
    let off = t.steady_start_tick - 1 in
    let n = Array.length samples - off in
    if n < 10 then None
    else begin
      let d = max 1 (n / 10) in
      let mean lo hi =
        let acc = ref 0. in
        for i = lo to hi - 1 do
          acc := !acc +. float_of_int samples.(off + i)
        done;
        !acc /. float_of_int (hi - lo)
      in
      let first = mean 0 d and last = mean (n - d) n in
      if first <= 0. then None else Some (last /. first)
    end
  end

(* Only the deterministic numbers go to the registry (it feeds the
   byte-stable diff gates); heap samples are machine-dependent and
   stay behind the accessors for the bench's machine side channel. *)
let publish_metrics t registry =
  Obs.Registry.incr ~by:t.ticks registry "steady/ticks";
  Obs.Registry.set_gauge registry "steady/floor" (float_of_int t.floor);
  Obs.Registry.set_gauge registry "steady/window" (float_of_int t.window)
