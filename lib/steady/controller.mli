(** The windowed state-retirement controller.

    Owns the protocol-wide stability floor for a steady run: at every
    epoch tick it reads each member's contiguously-delivered prefix,
    lifts the floor to [min prefix - window] (monotone, never
    negative), and tells every member — and any registered extras,
    e.g. the {!Harness.Audit} auditor — to forget state at or below
    it. A packet below the floor has been delivered by {e all} members
    for at least a window's worth of stream, so no loss that still
    needs recovery state can name it; replies for it remain possible
    because data buffers answer for any seq at or below their base.

    The controller is deliberately protocol-agnostic: members are
    closures, so SRM, CESRM and LMS hosts (or anything else with
    per-packet soft state) register the same way.

    It also samples the live heap ([Gc.quick_stat]) at each tick —
    the constant-memory evidence the bench asserts on. *)

type t

type member = {
  node : int;
  delivered_prefix : unit -> int;
      (** highest [p] with packets 1..p all delivered locally *)
  retire : upto:int -> unit;
      (** drop per-packet state for seqs at or below the floor *)
}

val create : window:int -> n_packets:int -> t
(** @raise Invalid_argument if [window < 1]. *)

val add_member : t -> member -> unit

val on_retire : t -> (upto:int -> unit) -> unit
(** Register a non-member retirement hook (auditor, instrumentation). *)

val tick : t -> unit
(** One epoch: advance the floor, retire if it moved, sample the heap.
    Runs no protocol actions and draws no randomness — scheduling it
    shifts engine sequence numbers uniformly but changes no behaviour. *)

val floor : t -> int
(** The current stability floor (0 before any retirement). *)

val ticks : t -> int

val peak_heap_words : t -> int
(** Max [top_heap_words] observed at ticks (machine-dependent). *)

val heap_samples : t -> int array
(** Live heap words at each tick, in tick order (machine-dependent). *)

val heap_growth : t -> float option
(** Mean heap over the last decile of steady-state ticks divided by
    the first decile, where steady state starts once the floor has
    advanced a full window (before that the retirement pipeline is
    still filling and the heap legitimately climbs) — ~1 for a healthy
    windowed run, growing with stream length if per-packet state
    leaks. [None] before the pipeline fills or under 10 steady
    ticks. *)

val publish_metrics : t -> Obs.Registry.t -> unit
(** Publish the deterministic numbers ([steady/ticks], [steady/floor],
    [steady/window]) — heap samples stay behind the accessors so the
    registry remains byte-stable across machines. *)
