type t = {
  window : int option;
  epoch_every : float option;
  retain_records : bool;
}

let infinite = { window = None; epoch_every = None; retain_records = true }

let windowed ?epoch_every ?(retain_records = false) window =
  if window < 1 then invalid_arg "Steady.Config.windowed: window must be >= 1";
  (match epoch_every with
  | Some e when not (e > 0.) ->
      invalid_arg "Steady.Config.windowed: epoch_every must be positive"
  | _ -> ());
  { window = Some window; epoch_every; retain_records }

let streaming t = not t.retain_records || t.window <> None

(* One retirement pass costs a sweep of every member's soft-state
   tables, so ticking every packet period would be quadratic-ish in
   stream length. A window's worth of packets between ticks keeps the
   floor trailing at most one window behind the theoretical horizon
   (live state thus stays under two windows) while amortizing the
   sweep to O(1) per packet. Bounded below so tiny windows don't tick
   pathologically often, and above so the floor keeps moving on slow
   streams. *)
let epoch_period t ~period =
  match (t.epoch_every, t.window) with
  | Some e, _ -> Some e
  | None, None -> None
  | None, Some w ->
      Some (Float.max (50. *. period) (Float.min (float_of_int w *. period) 60.))
