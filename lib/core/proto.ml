type t = {
  network : Net.Network.t;
  n_packets : int;
  period : float;
  hosts : (int * Host.t) list;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
}

let deploy ?(config = Host.default_config) ?owned ?domain ~network ~params ~n_packets ~period () =
  let tree = Net.Network.tree network in
  let counters = Stats.Counters.create ~n_nodes:(Net.Tree.n_nodes tree) in
  let recoveries = Stats.Recovery.create () in
  let owned = match owned with Some f -> f | None -> fun _ -> true in
  let member node =
    if owned node then begin
      let host =
        Host.create ?domain ~network ~self:node ~params ~config ~n_packets ~counters
          ~recoveries ()
      in
      Net.Network.on_receive network node (Host.on_packet host);
      Some (node, host)
    end
    else begin
      (* A shard deploys hosts only for its own members but must keep
         the engine's split sequence identical to the full deployment:
         every member consumes exactly one root split, in deploy
         order, so owned hosts draw the same generators everywhere. *)
      ignore (Sim.Rng.split (Sim.Engine.rng (Net.Network.engine network)));
      None
    end
  in
  let nodes = 0 :: Array.to_list (Net.Tree.receivers tree) in
  { network; n_packets; period; hosts = List.filter_map member nodes; counters; recoveries }

let host t node = List.assoc node t.hosts

let members t = t.hosts

let receivers t = List.filter (fun (node, _) -> node <> 0) t.hosts

let counters t = t.counters

let recoveries t = t.recoveries

let network t = t.network

let n_packets t = t.n_packets

let end_time t ~warmup ~tail = warmup +. (float_of_int t.n_packets *. t.period) +. tail

(* Streaming is exact only when sends cannot reorder; see
   [Srm.Proto.can_stream]. *)
let can_stream ~send_jitter ~period = send_jitter <= period

let add_stream ?(send_jitter = 0.) ?(streaming = false) t ~src ~n_packets ~period ~start_at =
  let engine = Net.Network.engine t.network in
  let origin = List.assoc_opt src t.hosts in
  let jitter_rng = Sim.Rng.split (Sim.Engine.rng engine) in
  Sim.Stream.schedule engine
    ~streaming:(streaming && can_stream ~send_jitter ~period)
    ~n:(min n_packets t.n_packets)
    ~at:(fun seq ->
      let jitter = if send_jitter <= 0. then 0. else Sim.Rng.float jitter_rng send_jitter in
      start_at +. (float_of_int (seq - 1) *. period) +. jitter)
    ~fire:(fun seq ->
      (match origin with
      | Some h -> Srm.Host.note_sent ~src (Host.srm h) ~seq
      | None -> ());
      Net.Network.multicast_replicated t.network ~from:src
        { Net.Packet.sender = src; payload = Net.Packet.Data { seq } })

let start ?(send_jitter = 0.) ?(streaming = false) t ~warmup ~tail =
  let engine = Net.Network.engine t.network in
  let session_until = end_time t ~warmup ~tail in
  List.iter (fun (_, h) -> Host.start h ~session_until) t.hosts;
  let source = List.assoc_opt 0 t.hosts in
  let jitter_rng = Sim.Rng.split (Sim.Engine.rng engine) in
  Sim.Stream.schedule engine
    ~streaming:(streaming && can_stream ~send_jitter ~period:t.period)
    ~n:t.n_packets
    ~at:(fun seq ->
      let jitter = if send_jitter <= 0. then 0. else Sim.Rng.float jitter_rng send_jitter in
      warmup +. (float_of_int (seq - 1) *. t.period) +. jitter)
    ~fire:(fun seq ->
      (match source with Some h -> Srm.Host.note_sent (Host.srm h) ~seq | None -> ());
      Net.Network.multicast_replicated t.network ~from:0
        { Net.Packet.sender = 0; payload = Net.Packet.Data { seq } })

let expedited_requests t =
  List.fold_left (fun acc (_, h) -> acc + Host.expedited_requests_sent h) 0 t.hosts

let expedited_replies t =
  List.fold_left (fun acc (_, h) -> acc + Host.expedited_replies_sent h) 0 t.hosts
