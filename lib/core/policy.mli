(** Expeditious requestor/replier selection policies (Section 3.2).

    The paper describes two: {e most recent loss} — the optimal pair of
    the most recent recovered loss (the policy its evaluation uses,
    found superior in the author's thesis) — and {e most frequent
    loss} — the pair appearing most often in the cache. A hybrid is
    included as the kind of "more sophisticated policy" the paper
    alludes to: most-frequent, falling back to most-recent on ties or
    thin caches. *)

type t =
  | Most_recent
  | Most_frequent
  | Frequency_weighted_recent
      (** most-frequent among the [k] most recent entries, recency as
          tie-break *)
  | Success_biased
      (** most recent entry whose replier has a good observed expedited
          success rate (the kind of "more sophisticated policy" the
          paper alludes to); adapts around dead or loss-sharing
          repliers faster than plain recency *)

val all : t list

val name : t -> string

val of_name : string -> t option

val choose :
  ?now:float ->
  ?score:(replier:int -> float) ->
  ?exclude:(replier:int -> bool) ->
  t ->
  Cache.t ->
  Cache.entry option
(** The pair to use for the next expedited recovery, if the cache
    offers one. [score] reports the observed per-replier expedited
    success rate in [0, 1] (default: optimistic 1) and is only
    consulted by [Success_biased]. [exclude] removes entries naming a
    replier from consideration under every policy (default: none) —
    retry back-off uses it to stop unicasting repliers presumed dead.
    [now] (virtual time) is forwarded to {!Cache.entries} so the
    cache's retention scheme can expire and decay before ranking;
    selection then works over the scheme's ranked view ("most recent"
    = best-ranked). *)
