(** The per-source optimal requestor/replier cache (paper Section 3.1).

    Each receiver caches, for recovered losses, the requestor/replier
    pair that carried out the recovery, as tuples
    [⟨i, q, d̂_qs, r, d̂_rq⟩]. When several pairs arise for the same
    packet (duplicate requests/replies), only the {e optimal} pair is
    kept — the one minimizing the recovery delay [d̂_qs + 2·d̂_rq].

    {e Which} tuples stay resident is the pluggable part: a
    {!Retention.scheme} decides ranking, eviction and expiry. The
    default ({!Retention.Recent}) is the paper's scheme — keep the most
    recent packets, evict the least recent one when full, ignore
    replies for packets less recent than everything cached — and is
    bit-identical to the pre-policy cache. See {!Retention} for the
    LRU / TTL / hotspot alternatives.

    Timed operations take [?now] (virtual time); without it the TTL
    scheme expires nothing and the hotspot scheme neither decays nor
    ages — the untimed calls are the legacy sites and the default
    scheme ignores time entirely. *)

type entry = {
  seq : int;  (** the recovered packet *)
  requestor : int;
  d_qs : float;  (** requestor's distance estimate to the source *)
  replier : int;
  d_rq : float;  (** replier's distance estimate to the requestor *)
  turning_point : int option;  (** router-assist annotation, if any *)
}

val recovery_delay : entry -> float
(** [d_qs + 2·d_rq] — the optimality measure. *)

type t

val create : ?retention:Retention.scheme -> capacity:int -> unit -> t
(** [retention] defaults to {!Retention.Recent}.
    @raise Invalid_argument if capacity < 1. *)

val capacity : t -> int

val scheme : t -> Retention.scheme

val size : t -> int

val note_reply : ?now:float -> t -> entry -> [ `Inserted | `Updated | `Ignored ]
(** Digest a reply's annotation for a loss this receiver suffered.
    Under every scheme a same-seq tuple is replaced only when strictly
    better ([`Updated]) and kept otherwise ([`Ignored]); what differs
    is retention of {e distinct} seqs. [Recent]/[Ttl]: insert, evict
    the least recent seq when full, ignore stale seqs on a full cache.
    [Lru]: always insert (evicting the least recently {e used} slot);
    any digest for a cached seq refreshes its use recency. [Hotspot]:
    always insert (evicting the coldest pair's slot); every digest
    bumps the named pair's decayed score. *)

val touch : ?now:float -> t -> seq:int -> unit
(** Record that the policy's chosen pair (the tuple cached for [seq])
    was acted on — an expedited request is being scheduled. Counts a
    {!hits}; under [Lru] also refreshes the slot's use recency. No-op
    ranking-wise under the other schemes. *)

val entries : ?now:float -> t -> entry list
(** The retention scheme's ranking, best first: packet recency for
    [Recent]/[Ttl] (most recent seq first, the seed order), use
    recency for [Lru], decayed pair score for [Hotspot] (ties toward
    higher seq). With [now], TTL-expired entries are purged first. *)

val most_recent : ?now:float -> t -> entry option
(** Head of {!entries} — the scheme's best-ranked tuple. *)

val most_frequent : ?now:float -> t -> entry option
(** The pair (requestor, replier) occurring most often, represented by
    its most recent tuple; ties break toward the more recent pair. *)

val most_frequent_of : entry list -> entry option
(** {!most_frequent} over an explicit (best-ranked-first) entry list —
    lets {!Policy} apply it to a filtered view of the cache. *)

val find : ?now:float -> t -> seq:int -> entry option

val clear : t -> unit
(** Empty the cache (crash modelling): slots and hotspot pair scores
    go; the cumulative {!evictions}/{!expiries}/{!hits} counters stay
    (they are end-of-run metrics). *)

val expire_replier : t -> replier:int -> unit
(** Drop every tuple naming [replier]. Retry back-off's last resort
    (Section 3's graceful-degradation story): a replier that keeps
    failing to answer expedited requests — crashed, partitioned — must
    stop being chosen, and with it gone from the cache the next
    SRM-recovered loss repopulates fresh pairs. *)

val evictions : t -> int
(** Capacity-driven removals so far. *)

val expiries : t -> int
(** TTL-driven removals so far (0 under every other scheme). *)

val hits : t -> int
(** {!touch} count — cached pairs acted on by the selection policy. *)
