(** The per-source optimal requestor/replier cache (paper Section 3.1).

    Each receiver caches, for its most recent recovered losses, the
    requestor/replier pair that carried out the recovery, as tuples
    [⟨i, q, d̂_qs, r, d̂_rq⟩]. When several pairs arise for the same
    packet (duplicate requests/replies), only the {e optimal} pair is
    kept — the one minimizing the recovery delay [d̂_qs + 2·d̂_rq].
    When the cache is full, the tuple of the least recent packet is
    evicted; replies for packets less recent than everything cached are
    ignored. *)

type entry = {
  seq : int;  (** the recovered packet *)
  requestor : int;
  d_qs : float;  (** requestor's distance estimate to the source *)
  replier : int;
  d_rq : float;  (** replier's distance estimate to the requestor *)
  turning_point : int option;  (** router-assist annotation, if any *)
}

val recovery_delay : entry -> float
(** [d_qs + 2·d_rq] — the optimality measure. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if capacity < 1. *)

val capacity : t -> int

val size : t -> int

val note_reply : t -> entry -> [ `Inserted | `Updated | `Ignored ]
(** Digest a reply's annotation for a loss this receiver suffered:
    insert, improve an existing tuple for the same packet (if the new
    pair is strictly better), evict the least recent tuple when full,
    or ignore (stale packet on a full cache, or a no-better duplicate). *)

val entries : t -> entry list
(** Most recent packet first. *)

val most_recent : t -> entry option

val most_frequent : t -> entry option
(** The pair (requestor, replier) occurring most often, represented by
    its most recent tuple; ties break toward the more recent pair. *)

val most_frequent_of : entry list -> entry option
(** {!most_frequent} over an explicit (most-recent-first) entry list —
    lets {!Policy} apply it to a filtered view of the cache. *)

val find : t -> seq:int -> entry option

val clear : t -> unit

val expire_replier : t -> replier:int -> unit
(** Drop every tuple naming [replier]. Retry back-off's last resort
    (Section 3's graceful-degradation story): a replier that keeps
    failing to answer expedited requests — crashed, partitioned — must
    stop being chosen, and with it gone from the cache the next
    SRM-recovered loss repopulates fresh pairs. *)
