type t = Most_recent | Most_frequent | Frequency_weighted_recent | Success_biased

let all = [ Most_recent; Most_frequent; Frequency_weighted_recent; Success_biased ]

let name = function
  | Most_recent -> "most-recent"
  | Most_frequent -> "most-frequent"
  | Frequency_weighted_recent -> "freq-recent"
  | Success_biased -> "success-biased"

let of_name s = List.find_opt (fun p -> name p = s) all

let take n xs =
  let rec go n = function [] -> [] | x :: rest -> if n = 0 then [] else x :: go (n - 1) rest in
  go n xs

let choose ?now ?(score = fun ~replier:_ -> 1.) ?(exclude = fun ~replier:_ -> false) policy cache
    =
  (* Every policy works over the cache minus excluded repliers (dead
     ones, per retry back-off); the default exclusion is empty, so the
     view is then the cache itself. The view is already ranked by the
     cache's retention scheme ([now] lets TTL expire and hotspot decay
     first), so "most recent" below means "best-ranked". *)
  let entries =
    List.filter
      (fun (e : Cache.entry) -> not (exclude ~replier:e.replier))
      (Cache.entries ?now cache)
  in
  let most_recent = match entries with [] -> None | e :: _ -> Some e in
  match policy with
  | Most_recent -> most_recent
  | Most_frequent -> Cache.most_frequent_of entries
  | Success_biased -> (
      (* Most recent entry whose replier has been answering; when every
         known replier disappoints, fall back to plain recency so the
         SRM fallback can repopulate the cache. *)
      match
        List.find_opt (fun (e : Cache.entry) -> score ~replier:e.replier >= 0.5) entries
      with
      | Some e -> Some e
      | None -> most_recent)
  | Frequency_weighted_recent -> (
      (* Most-frequent over a recency window of 8, so stale pairs age
         out faster than with plain most-frequent. *)
      match entries with
      | [] -> None
      | recent -> (
          let window = take 8 recent in
          let count pair =
            List.length
              (List.filter
                 (fun (e : Cache.entry) -> (e.requestor, e.replier) = pair)
                 window)
          in
          match
            List.fold_left
              (fun acc (e : Cache.entry) ->
                let c = count (e.requestor, e.replier) in
                match acc with Some (bc, _) when bc >= c -> acc | _ -> Some (c, e))
              None window
          with
          | Some (_, e) -> Some e
          | None -> None))
