type entry = {
  seq : int;
  requestor : int;
  d_qs : float;
  replier : int;
  d_rq : float;
  turning_point : int option;
}

let recovery_delay e = e.d_qs +. (2. *. e.d_rq)

type t = { capacity : int; mutable entries : entry list (* sorted by seq, descending *) }

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity >= 1 required";
  { capacity; entries = [] }

let capacity t = t.capacity

let size t = List.length t.entries

let entries t = t.entries

let most_recent t = match t.entries with [] -> None | e :: _ -> Some e

let find t ~seq = List.find_opt (fun e -> e.seq = seq) t.entries

let clear t = t.entries <- []

let expire_replier t ~replier = t.entries <- List.filter (fun e -> e.replier <> replier) t.entries

let note_reply t e =
  match find t ~seq:e.seq with
  | Some existing ->
      if recovery_delay e < recovery_delay existing then begin
        t.entries <- List.map (fun x -> if x.seq = e.seq then e else x) t.entries;
        `Updated
      end
      else `Ignored
  | None ->
      let full = size t >= t.capacity in
      let least_recent_seq =
        List.fold_left (fun acc x -> min acc x.seq) max_int t.entries
      in
      if full && e.seq < least_recent_seq then `Ignored
      else begin
        let kept =
          if full then List.filter (fun x -> x.seq <> least_recent_seq) t.entries
          else t.entries
        in
        t.entries <- List.sort (fun a b -> compare b.seq a.seq) (e :: kept);
        `Inserted
      end

let most_frequent_of entries =
  match entries with
  | [] -> None
  | es ->
      (* Count (requestor, replier) pair occurrences; entries are most
         recent first, so the first representative of a pair is its
         most recent tuple, and [max] on (count, position) breaks ties
         toward recency. *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let key = (e.requestor, e.replier) in
          let count, first = Option.value (Hashtbl.find_opt tbl key) ~default:(0, e) in
          Hashtbl.replace tbl key (count + 1, first))
        es;
      let best =
        List.fold_left
          (fun acc e ->
            let count, first = Hashtbl.find tbl (e.requestor, e.replier) in
            match acc with
            | Some (best_count, _) when best_count >= count -> acc
            | _ -> Some (count, first))
          None es
      in
      Option.map snd best

let most_frequent t = most_frequent_of t.entries
