type entry = {
  seq : int;
  requestor : int;
  d_qs : float;
  replier : int;
  d_rq : float;
  turning_point : int option;
}

let recovery_delay e = e.d_qs +. (2. *. e.d_rq)

(* A cached tuple plus the retention metadata the non-default schemes
   rank and evict on. The default scheme reads none of it, so the
   [Recent] arm below is the seed algorithm verbatim (the determinism
   goldens pin its bits). *)
type slot = {
  e : entry;
  born : float; (* virtual time this seq first entered the cache *)
  mutable used : float; (* last use: digest, improvement, or policy hit *)
}

type t = {
  capacity : int;
  scheme : Retention.scheme;
  (* Ranking-order invariant: [Recent]/[Ttl]/[Hotspot] keep slots
     sorted by seq descending (the seed order); [Lru] keeps them
     most-recently-used first. *)
  mutable slots : slot list;
  (* Hotspot only: (requestor, replier) -> (score, last bump time). *)
  pair_heat : (int * int, float * float) Hashtbl.t;
  mutable evictions : int; (* capacity-driven removals *)
  mutable expiries : int; (* TTL-driven removals *)
  mutable hits : int; (* policy selections acted on (see [touch]) *)
}

let create ?(retention = Retention.Recent) ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity >= 1 required";
  {
    capacity;
    scheme = retention;
    slots = [];
    pair_heat = Hashtbl.create 8;
    evictions = 0;
    expiries = 0;
    hits = 0;
  }

let capacity t = t.capacity

let scheme t = t.scheme

let size t = List.length t.slots

let evictions t = t.evictions

let expiries t = t.expiries

let hits t = t.hits

(* TTL expiry happens on every timed access — digest or lookup — so no
   entry older than the horizon ever survives one (the qcheck law). An
   access with no [now] (the untimed legacy call sites) purges
   nothing. *)
let purge_expired t ~now =
  match t.scheme with
  | Retention.Ttl horizon ->
      let live, dead = List.partition (fun s -> now -. s.born <= horizon) t.slots in
      if dead <> [] then begin
        t.expiries <- t.expiries + List.length dead;
        t.slots <- live
      end
  | _ -> ()

let pair_key e = (e.requestor, e.replier)

(* Current hotspot score of a pair: the stored score decayed by the
   time elapsed since its last bump. Relative order between two pairs
   is invariant under pure time passage (both decay by the same
   factor), so ranking only moves when a digest bumps a pair. *)
let heat t ~now key =
  match Hashtbl.find_opt t.pair_heat key with
  | None -> 0.
  | Some (score, last) ->
      let half_life =
        match t.scheme with Retention.Hotspot hl -> hl | _ -> infinity
      in
      score *. Float.exp (-.Float.log 2. *. Float.max 0. (now -. last) /. half_life)

let bump_heat t ~now key =
  let score = heat t ~now key in
  Hashtbl.replace t.pair_heat key (score +. 1., now)

let ranked ?now t =
  match t.scheme with
  | Retention.Hotspot _ ->
      let now = Option.value now ~default:0. in
      List.stable_sort
        (fun a b -> compare (heat t ~now (pair_key b.e)) (heat t ~now (pair_key a.e)))
        t.slots
  | _ -> t.slots

let entries ?now t =
  (match now with Some now -> purge_expired t ~now | None -> ());
  List.map (fun s -> s.e) (ranked ?now t)

let most_recent ?now t = match entries ?now t with [] -> None | e :: _ -> Some e

let find ?now t ~seq =
  (match now with Some now -> purge_expired t ~now | None -> ());
  Option.map (fun s -> s.e) (List.find_opt (fun s -> s.e.seq = seq) t.slots)

let clear t =
  t.slots <- [];
  Hashtbl.reset t.pair_heat

let expire_replier t ~replier = t.slots <- List.filter (fun s -> s.e.replier <> replier) t.slots

let seq_desc a b = compare b.e.seq a.e.seq

let replace_entry t e = List.map (fun s -> if s.e.seq = e.seq then { s with e } else s) t.slots

(* The seed scheme, bit-for-bit: same-seq tuples replaced only when
   strictly better, eviction by least-recent seq, stale seqs ignored on
   a full cache. *)
let note_reply_recent t ~now e =
  match find t ~seq:e.seq with
  | Some existing ->
      if recovery_delay e < recovery_delay existing then begin
        t.slots <- replace_entry t e;
        `Updated
      end
      else `Ignored
  | None ->
      let full = size t >= t.capacity in
      let least_recent_seq =
        List.fold_left (fun acc s -> min acc s.e.seq) max_int t.slots
      in
      if full && e.seq < least_recent_seq then `Ignored
      else begin
        let kept =
          if full then begin
            t.evictions <- t.evictions + 1;
            List.filter (fun s -> s.e.seq <> least_recent_seq) t.slots
          end
          else t.slots
        in
        t.slots <- List.sort seq_desc ({ e; born = now; used = now } :: kept);
        `Inserted
      end

(* True-LRU: any digest for a cached seq is a use (hit refreshes
   recency — the qcheck law), the tuple itself still only improves when
   strictly better; new seqs always enter (even stale ones — use
   recency, not packet recency, decides retention), evicting the least
   recently used slot when full. *)
let note_reply_lru t ~now e =
  match List.find_opt (fun s -> s.e.seq = e.seq) t.slots with
  | Some s ->
      let better = recovery_delay e < recovery_delay s.e in
      let s = if better then { s with e; used = now } else (s.used <- now; s) in
      t.slots <- s :: List.filter (fun x -> x.e.seq <> e.seq) t.slots;
      if better then `Updated else `Ignored
  | None ->
      if size t >= t.capacity then begin
        let victim =
          List.fold_left
            (fun (acc : slot) s ->
              if s.used < acc.used || (s.used = acc.used && s.e.seq < acc.e.seq) then s
              else acc)
            (List.hd t.slots) t.slots
        in
        t.evictions <- t.evictions + 1;
        t.slots <- List.filter (fun s -> s != victim) t.slots
      end;
      t.slots <- { e; born = now; used = now } :: t.slots;
      `Inserted

(* TTL is the seed scheme over the unexpired view; [purge_expired] ran
   before this. *)
let note_reply_ttl = note_reply_recent

(* Hotspot: every digest bumps the pair's decayed score; eviction
   drops the coldest pair's tuple (ties toward the oldest seq), and new
   seqs always enter — pair heat, not packet recency, decides
   retention. *)
let note_reply_hotspot t ~now e =
  bump_heat t ~now (pair_key e);
  match List.find_opt (fun s -> s.e.seq = e.seq) t.slots with
  | Some s ->
      if recovery_delay e < recovery_delay s.e then begin
        t.slots <- replace_entry t e;
        `Updated
      end
      else `Ignored
  | None ->
      if size t >= t.capacity then begin
        let victim =
          List.fold_left
            (fun (acc : slot) s ->
              let hs = heat t ~now (pair_key s.e) and ha = heat t ~now (pair_key acc.e) in
              if hs < ha || (hs = ha && s.e.seq < acc.e.seq) then s else acc)
            (List.hd t.slots) t.slots
        in
        t.evictions <- t.evictions + 1;
        t.slots <- List.filter (fun s -> s != victim) t.slots
      end;
      t.slots <- List.sort seq_desc ({ e; born = now; used = now } :: t.slots);
      `Inserted

let note_reply ?(now = 0.) t e =
  purge_expired t ~now;
  match t.scheme with
  | Retention.Recent -> note_reply_recent t ~now e
  | Retention.Lru -> note_reply_lru t ~now e
  | Retention.Ttl _ -> note_reply_ttl t ~now e
  | Retention.Hotspot _ -> note_reply_hotspot t ~now e

let touch ?(now = 0.) t ~seq =
  t.hits <- t.hits + 1;
  match t.scheme with
  | Retention.Lru -> (
      match List.find_opt (fun s -> s.e.seq = seq) t.slots with
      | Some s ->
          s.used <- now;
          t.slots <- s :: List.filter (fun x -> x != s) t.slots
      | None -> ())
  | _ -> ()

let most_frequent_of entries =
  match entries with
  | [] -> None
  | es ->
      (* Count (requestor, replier) pair occurrences; entries are most
         recent first, so the first representative of a pair is its
         most recent tuple, and [max] on (count, position) breaks ties
         toward recency. *)
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let key = (e.requestor, e.replier) in
          let count, first = Option.value (Hashtbl.find_opt tbl key) ~default:(0, e) in
          Hashtbl.replace tbl key (count + 1, first))
        es;
      let best =
        List.fold_left
          (fun acc e ->
            let count, first = Hashtbl.find tbl (e.requestor, e.replier) in
            match acc with
            | Some (best_count, _) when best_count >= count -> acc
            | _ -> Some (count, first))
          None es
      in
      Option.map snd best

let most_frequent ?now t = most_frequent_of (entries ?now t)
