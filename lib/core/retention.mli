(** Replier-cache retention policies.

    The paper's cache keeps the tuples of the most recent recovered
    packets and evicts the least recent one when full (Section 3.1) —
    that is {!Recent}, the default, and the {!Cache} goldens pin it
    bit-for-bit. The alternatives probe the classic recency /
    frequency / decay trade-off (Jain's destination-locality playbook)
    under workloads whose loss locality shifts faster than packet
    recency can track:

    - {!Lru}: k-entry true-LRU — recency of {e use} (a policy hit or a
      reply digest refreshes an entry), not of packet seq. Eviction
      drops the least recently used tuple; ranking presents the most
      recently used one first.
    - {!Ttl}: the paper's scheme plus a virtual-time horizon — entries
      older than the horizon are purged on every lookup and digest, so
      a cache gone quiet empties instead of volunteering stale pairs.
    - {!Hotspot}: per-(requestor, replier) exponential-decay score: a
      digest naming the pair bumps its score after decaying it by the
      inter-arrival gap ([score ← score·2^(-Δt/half_life) + 1]).
      Eviction drops the coldest pair's tuple; ranking presents the
      hottest pair's most recent tuple first, so selection rides
      long-lived pair locality rather than last-event recency. *)

type scheme =
  | Recent  (** the paper's keep-most-recent / evict-least-recent *)
  | Lru  (** true-LRU on use recency *)
  | Ttl of float  (** horizon in virtual seconds *)
  | Hotspot of float  (** pair-score half-life in virtual seconds *)

type t = {
  scheme : scheme;
  capacity : int option;
      (** overrides [Host.config.cache_capacity] when set — e.g. the
          paper's 1-entry baseline is [{ scheme = Recent; capacity = Some 1 }] *)
}

val default : t
(** [Recent] with no capacity override — byte-identical to the
    pre-policy cache. *)

val default_ttl : float
(** Horizon used by the bare ["ttl"] name: 2 s of virtual time. *)

val default_half_life : float
(** Half-life used by the bare ["hotspot"] name: 1 s of virtual time. *)

val is_default : t -> bool

val name : t -> string
(** Canonical name, round-tripping through {!of_name}:
    ["recent" | "lru" | "ttl[=H]" | "hotspot[=H]"], with [":K"]
    appended when a capacity override is set. Parameters equal to the
    defaults are omitted. *)

val of_name : string -> t option
(** Parse [SCHEME[=PARAM][:CAPACITY]]; [None] on anything malformed
    (unknown scheme, non-positive parameter or capacity). *)

val scheme_label : scheme -> string
(** The bare scheme name (no parameters), for metric keys. *)

val all_names : string list

val names_doc : string
(** One-line syntax summary for CLI help. *)
