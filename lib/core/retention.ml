type scheme =
  | Recent
  | Lru
  | Ttl of float
  | Hotspot of float

type t = { scheme : scheme; capacity : int option }

let default_ttl = 2.0

let default_half_life = 1.0

let default = { scheme = Recent; capacity = None }

let scheme_label = function
  | Recent -> "recent"
  | Lru -> "lru"
  | Ttl _ -> "ttl"
  | Hotspot _ -> "hotspot"

(* The canonical name round-trips through [of_name]; parameters are
   printed only when they differ from the scheme defaults, so the
   default policy's name is the bare ["recent"] everywhere (sweep
   artifacts, bench legs) and pre-existing labels never change. *)
let name t =
  let base =
    match t.scheme with
    | Recent -> "recent"
    | Lru -> "lru"
    | Ttl h when h = default_ttl -> "ttl"
    | Ttl h -> Printf.sprintf "ttl=%g" h
    | Hotspot hl when hl = default_half_life -> "hotspot"
    | Hotspot hl -> Printf.sprintf "hotspot=%g" hl
  in
  match t.capacity with None -> base | Some k -> Printf.sprintf "%s:%d" base k

let of_name s =
  let ( let* ) = Option.bind in
  let base, capacity =
    match String.index_opt s ':' with
    | None -> (s, Ok None)
    | Some i ->
        let k = String.sub s (i + 1) (String.length s - i - 1) in
        ( String.sub s 0 i,
          match int_of_string_opt k with
          | Some k when k >= 1 -> Ok (Some k)
          | _ -> Error () )
  in
  let scheme_name, param =
    match String.index_opt base '=' with
    | None -> (base, None)
    | Some i ->
        ( String.sub base 0 i,
          Some (String.sub base (i + 1) (String.length base - i - 1)) )
  in
  let positive_float ~default = function
    | None -> Some default
    | Some p -> (
        match float_of_string_opt p with Some x when x > 0. -> Some x | _ -> None)
  in
  let* capacity = Result.to_option capacity in
  let* scheme =
    match (scheme_name, param) with
    | "recent", None -> Some Recent
    | "lru", None -> Some Lru
    | "ttl", p ->
        let* h = positive_float ~default:default_ttl p in
        Some (Ttl h)
    | "hotspot", p ->
        let* hl = positive_float ~default:default_half_life p in
        Some (Hotspot hl)
    | _ -> None
  in
  Some { scheme; capacity }

let is_default t = t = default

let all_names = [ "recent"; "lru"; "ttl"; "hotspot" ]

let names_doc = "recent (default), lru, ttl[=horizon_s], hotspot[=half_life_s]; append :K to cap the cache at K entries (e.g. recent:1)"
