(** Deploying CESRM on a simulated multicast group — the CESRM
    counterpart of [Srm.Proto]. *)

type t

val deploy :
  ?config:Host.config ->
  ?owned:(int -> bool) ->
  ?domain:Rdomain.t ->
  network:Net.Network.t ->
  params:Srm.Params.t ->
  n_packets:int ->
  period:float ->
  unit ->
  t
(** Default config is {!Host.default_config}. [owned] (default:
    everyone) restricts which members get a live host — a PDES shard
    deploys only its own; non-owned members still consume their
    engine-RNG split in deploy order (see [Srm.Proto.deploy]).
    [domain] enables hierarchical local recovery on every host (see
    {!Host.create}); it does not perturb the deploy-order RNG
    discipline. *)

val start : ?send_jitter:float -> ?streaming:bool -> t -> warmup:float -> tail:float -> unit
(** Same schedule (and [streaming] contract) as [Srm.Proto.start]. *)

val end_time : t -> warmup:float -> tail:float -> float

val add_stream :
  ?send_jitter:float ->
  ?streaming:bool ->
  t ->
  src:int ->
  n_packets:int ->
  period:float ->
  start_at:float ->
  unit
(** Schedule a second data stream originating at member [src]; each
    member keeps a per-source requestor/replier cache (Section 3.1). *)

val host : t -> int -> Host.t
(** By node id. @raise Not_found for non-members. *)

val members : t -> (int * Host.t) list

val receivers : t -> (int * Host.t) list

val counters : t -> Stats.Counters.t

val recoveries : t -> Stats.Recovery.t

val network : t -> Net.Network.t

val n_packets : t -> int

val expedited_requests : t -> int
(** Total over members. *)

val expedited_replies : t -> int
