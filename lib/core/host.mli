(** A CESRM group member (paper Section 3).

    A CESRM host {e is} an SRM host plus the caching-based expedited
    recovery scheme, wired through the SRM host's hooks:

    - every incoming reply for a loss this member suffered feeds the
      optimal requestor/replier {!Cache};
    - on detecting a loss, the member consults its {!Policy}; if the
      chosen pair names it as the expeditious requestor, it schedules
      an expedited request [REORDER_DELAY] in the future, cancelled if
      the packet shows up first, and otherwise {e unicast} to the
      expeditious replier;
    - a replier receiving an expedited request immediately multicasts
      an expedited reply, provided it has the packet and no reply for
      it is scheduled or pending;
    - with {!config.router_assist} on, cache tuples carry turning-point
      routers and expedited replies travel unicast-to-turning-point
      then subcast (Section 3.3), shrinking exposure.

    SRM's ordinary recovery keeps running underneath; when an expedited
    recovery fails, the loss is still repaired the SRM way. *)

type config = {
  cache_capacity : int;
  policy : Policy.t;
  retention : Retention.t;
      (** cache retention scheme ({!Retention.default} = the paper's
          keep-most-recent / evict-least-recent, byte-identical to the
          pre-policy cache); its [capacity] field, when set, overrides
          [cache_capacity] *)
  reorder_delay : float;
  router_assist : bool;
  replier_failure_limit : int option;
      (** retry back-off (robustness extension, off by default): after
          this many {e consecutive} expedited recoveries a replier
          failed to serve, presume it dead — purge it from every cache
          and exclude it from policy selection until one of its replies
          is heard again. [None] = never presume death (paper-faithful:
          the paper's evaluation has no failing repliers). *)
}

val default_config : config
(** Capacity 16, most-recent policy, default (paper) retention, zero
    reorder delay (the paper's simulation setting — no reordering
    occurs), no router assist, no replier failure limit. *)

type t

val create :
  ?domain:Rdomain.t ->
  network:Net.Network.t ->
  self:int ->
  params:Srm.Params.t ->
  config:config ->
  n_packets:int ->
  counters:Stats.Counters.t ->
  recoveries:Stats.Recovery.t ->
  unit ->
  t
(** [domain] switches on hierarchical local recovery in the underlying
    SRM host (see {!Srm.Host.create}) and makes the expedited scheme
    domain-aware: the policy prefers cached pairs whose replier lives
    in this member's recovery domain (falling back to any live
    replier), and expedited replies are scoped to the requestor's
    domain instead of multicast group-wide. Without it the host is
    byte-identical to classic CESRM. *)

val srm : t -> Srm.Host.t
(** The underlying SRM machinery (for queries: [has_packet], …). *)

val cache : ?src:int -> t -> Cache.t
(** The per-source optimal requestor/replier cache (created on first
    use; Section 3.1's "collection of per-source caches"). *)

val self : t -> int

val start : t -> session_until:float -> unit

val on_packet : t -> Net.Packet.t -> unit
(** Full CESRM dispatch: handles expedited PDUs, delegates the rest to
    the SRM host. *)

val expedited_requests_sent : t -> int

val expedited_replies_sent : t -> int

val domain_cache_local_hits : t -> int
(** Domain mode: expedited recoveries this member initiated whose
    cached replier shared its recovery domain. 0 in flat runs. *)

val domain_cache_remote_hits : t -> int
(** Domain mode: expedited recoveries initiated against an off-domain
    cached replier (no in-domain pair was available). 0 in flat
    runs. *)

val replier_dead : t -> replier:int -> bool
(** Whether retry back-off currently presumes [replier] dead. *)

val note_replier_failure : t -> replier:int -> unit
(** Charge one consecutive expedited failure to [replier]. With
    [replier_failure_limit = Some k], the k-th consecutive failure
    presumes the replier dead: it is purged from every cache and
    excluded from policy selection until revived. No-op without a
    limit. (Called internally when an expedited recovery resolves the
    SRM way; exposed for driving the accounting directly in tests.) *)

val revive_replier : t -> replier:int -> unit
(** Fresh evidence [replier] is alive (any reply heard from it):
    forget its presumed death and failure streak. *)

val invalidate_replier : t -> replier:int -> unit
(** [replier] left the group: drop every cached pair naming it from
    every per-source cache (counted into {!cache_invalidations}),
    presume it dead — so an expedited timer armed before the leave
    does not fire a unicast at the ghost, and CESRM falls back to SRM
    recovery — and clear its failure streak. A rejoined replier's
    first reply revives it. Called by the runner's leave wiring on
    every other member. *)

val cache_invalidations : t -> int
(** Cached pairs this member dropped because their replier left the
    group (accumulated into the ["cesrm/cache_invalidations"] metric,
    which is only published when non-zero). *)

val retire_below : t -> upto:int -> unit
(** Steady-state retirement: forward the horizon to
    {!Srm.Host.retire_below} and defensively sweep the expedited
    bookkeeping for retired (hence delivered) packets. Pending timers
    are never touched, so finite-window runs stay byte-identical to
    infinite-window ones. *)

val reset_caches : t -> unit
(** Model this host crashing: every cache is emptied and all expedited
    bookkeeping (outstanding recoveries, replier scores, presumed
    deaths) is dropped — CESRM state is soft state. Pair with
    {!Srm.Host.restart_recovery} on the underlying SRM host. *)

val publish_metrics : t -> Obs.Registry.t -> unit
(** Accumulate this member's SRM metrics plus the expedited-recovery
    state (["cesrm/"] prefix: requests/replies sent, cache occupancy,
    observed per-replier success rates, and the retention accounting —
    ["cesrm/cache_evictions/<scheme>"], ["…_expiries/<scheme>"],
    ["…_hits/<scheme>"]) into the registry. *)
