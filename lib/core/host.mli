(** A CESRM group member (paper Section 3).

    A CESRM host {e is} an SRM host plus the caching-based expedited
    recovery scheme, wired through the SRM host's hooks:

    - every incoming reply for a loss this member suffered feeds the
      optimal requestor/replier {!Cache};
    - on detecting a loss, the member consults its {!Policy}; if the
      chosen pair names it as the expeditious requestor, it schedules
      an expedited request [REORDER_DELAY] in the future, cancelled if
      the packet shows up first, and otherwise {e unicast} to the
      expeditious replier;
    - a replier receiving an expedited request immediately multicasts
      an expedited reply, provided it has the packet and no reply for
      it is scheduled or pending;
    - with {!config.router_assist} on, cache tuples carry turning-point
      routers and expedited replies travel unicast-to-turning-point
      then subcast (Section 3.3), shrinking exposure.

    SRM's ordinary recovery keeps running underneath; when an expedited
    recovery fails, the loss is still repaired the SRM way. *)

type config = {
  cache_capacity : int;
  policy : Policy.t;
  reorder_delay : float;
  router_assist : bool;
}

val default_config : config
(** Capacity 16, most-recent policy, zero reorder delay (the paper's
    simulation setting — no reordering occurs), no router assist. *)

type t

val create :
  network:Net.Network.t ->
  self:int ->
  params:Srm.Params.t ->
  config:config ->
  n_packets:int ->
  counters:Stats.Counters.t ->
  recoveries:Stats.Recovery.t ->
  t

val srm : t -> Srm.Host.t
(** The underlying SRM machinery (for queries: [has_packet], …). *)

val cache : ?src:int -> t -> Cache.t
(** The per-source optimal requestor/replier cache (created on first
    use; Section 3.1's "collection of per-source caches"). *)

val self : t -> int

val start : t -> session_until:float -> unit

val on_packet : t -> Net.Packet.t -> unit
(** Full CESRM dispatch: handles expedited PDUs, delegates the rest to
    the SRM host. *)

val expedited_requests_sent : t -> int

val expedited_replies_sent : t -> int

val publish_metrics : t -> Obs.Registry.t -> unit
(** Accumulate this member's SRM metrics plus the expedited-recovery
    state (["cesrm/"] prefix: requests/replies sent, cache occupancy,
    observed per-replier success rates) into the registry. *)
