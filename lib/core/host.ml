type config = {
  cache_capacity : int;
  policy : Policy.t;
  retention : Retention.t;
  reorder_delay : float;
  router_assist : bool;
  replier_failure_limit : int option;
}

let default_config =
  {
    cache_capacity = 16;
    policy = Policy.Most_recent;
    retention = Retention.default;
    reorder_delay = 0.;
    router_assist = false;
    replier_failure_limit = None;
  }

type t = {
  srm : Srm.Host.t;
  network : Net.Network.t;
  self : int;
  domain : Rdomain.t option;
  config : config;
  stride : int; (* Srm.Key packing stride: n_packets + 1 *)
  caches : (int, Cache.t) Hashtbl.t; (* per stream source (Section 3.1) *)
  counters : Stats.Counters.t;
  exp_timers : (Srm.Key.t, Sim.Engine.timer) Hashtbl.t;
  pending_exp : (Srm.Key.t, int) Hashtbl.t; (* packed (src, seq) -> replier we expedited to *)
  replier_stats : (int, int * int) Hashtbl.t; (* replier -> successes, attempts *)
  consec_failures : (int, int) Hashtbl.t; (* replier -> consecutive expedited failures *)
  dead_repliers : (int, unit) Hashtbl.t; (* presumed dead until a reply revives them *)
  mutable exp_requests_sent : int;
  mutable exp_replies_sent : int;
  mutable n_cache_invalidations : int; (* cached pairs dropped because their replier left *)
  mutable cache_local_hits : int; (* expedited pairs whose replier shares our domain *)
  mutable cache_remote_hits : int;
}

let srm t = t.srm

let key t ~src ~seq = Srm.Key.make ~stride:t.stride ~src ~seq

let cache ?(src = 0) t =
  match Hashtbl.find_opt t.caches src with
  | Some c -> c
  | None ->
      let capacity =
        Option.value t.config.retention.Retention.capacity ~default:t.config.cache_capacity
      in
      let c = Cache.create ~retention:t.config.retention.Retention.scheme ~capacity () in
      Hashtbl.replace t.caches src c;
      c

let self t = t.self

let expedited_requests_sent t = t.exp_requests_sent

let expedited_replies_sent t = t.exp_replies_sent

let domain_cache_local_hits t = t.cache_local_hits

let domain_cache_remote_hits t = t.cache_remote_hits

let engine t = Net.Network.engine t.network

(* Virtual time for the retention schemes (TTL ages, hotspot decay).
   The default scheme ignores it entirely. *)
let now t = Sim.Engine.now (engine t)

(* Observed per-replier expedited success rate; unknown repliers get
   the optimistic prior so fresh pairs are always tried. *)
let replier_score t ~replier =
  match Hashtbl.find_opt t.replier_stats replier with
  | Some (ok, total) when total > 0 -> float_of_int ok /. float_of_int total
  | _ -> 1.

(* Fresh evidence a replier is alive and answering: forget any presumed
   death and the consecutive-failure streak. *)
let revive_replier t ~replier =
  Hashtbl.remove t.dead_repliers replier;
  Hashtbl.remove t.consec_failures replier

let replier_dead t ~replier = Hashtbl.mem t.dead_repliers replier

(* Retry back-off (the missing piece the fault oracle flushed out):
   after [replier_failure_limit] consecutive expedited recoveries that a
   replier failed to serve — the packet arrived the SRM way instead —
   presume the replier dead, purge it from every cache, and exclude it
   from policy selection until one of its replies is heard again. *)
let note_replier_failure t ~replier =
  match t.config.replier_failure_limit with
  | None -> ()
  | Some limit ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.consec_failures replier) in
      Hashtbl.replace t.consec_failures replier n;
      if n >= limit && not (replier_dead t ~replier) then begin
        Hashtbl.replace t.dead_repliers replier ();
        Hashtbl.iter (fun _ c -> Cache.expire_replier c ~replier) t.caches
      end

(* Membership departure of [replier], as seen from this host: every
   cached pair naming it is a ghost — an expedited request would
   unicast into the void — so the pairs are invalidated immediately
   instead of burning the consecutive-failure budget rediscovering the
   obvious, and the replier is presumed dead until a reply revives it
   (a rejoined replier's first reply does exactly that, via
   {!digest_reply}). The failure streak is cleared too: a rejoin
   starts from a clean slate. *)
let invalidate_replier t ~replier =
  let size () = Hashtbl.fold (fun _ c acc -> acc + Cache.size c) t.caches 0 in
  let before = size () in
  Hashtbl.iter (fun _ c -> Cache.expire_replier c ~replier) t.caches;
  t.n_cache_invalidations <- t.n_cache_invalidations + (before - size ());
  Hashtbl.replace t.dead_repliers replier ();
  Hashtbl.remove t.consec_failures replier

let cache_invalidations t = t.n_cache_invalidations

(* The other half of the retry bound: attempts still in flight count
   against the failure budget too, so a host cannot hammer an
   unresponsive replier with fresh expedited requests while none of the
   earlier ones has resolved (during an outage no outcome arrives at
   all, which is exactly when the hammering would happen). *)
let outstanding_to t ~replier =
  Hashtbl.fold (fun _ r acc -> if r = replier then acc + 1 else acc) t.pending_exp 0

let attempt_budget_ok t ~replier =
  match t.config.replier_failure_limit with
  | None -> true
  | Some limit ->
      let failed = Option.value ~default:0 (Hashtbl.find_opt t.consec_failures replier) in
      failed + outstanding_to t ~replier < limit

let note_expedited_outcome t ~src seq ~expedited =
  match Hashtbl.find_opt t.pending_exp (key t ~src ~seq) with
  | None -> ()
  | Some replier ->
      Hashtbl.remove t.pending_exp (key t ~src ~seq);
      let ok, total = Option.value ~default:(0, 0) (Hashtbl.find_opt t.replier_stats replier) in
      Hashtbl.replace t.replier_stats replier ((ok + if expedited then 1 else 0), total + 1);
      if expedited then Hashtbl.remove t.consec_failures replier
      else note_replier_failure t ~replier

let cancel_expedited t ~src seq =
  match Hashtbl.find_opt t.exp_timers (key t ~src ~seq) with
  | Some timer ->
      Sim.Engine.cancel timer;
      Hashtbl.remove t.exp_timers (key t ~src ~seq)
  | None -> ()

let send_expedited_request t ~src seq (pair : Cache.entry) =
  Hashtbl.remove t.exp_timers (key t ~src ~seq);
  if
    (not (Srm.Host.has_packet ~src t.srm ~seq))
    (* A presumed-dead replier is never sent to — without churn this is
       implied by the failure budget (death is only ever declared at
       the budget's limit), but a membership departure marks death
       directly, and the armed timer that captured the pair before the
       leave must not fire an expedited request at the ghost. *)
    && (not (replier_dead t ~replier:pair.replier))
    && attempt_budget_ok t ~replier:pair.replier
  then begin
    t.exp_requests_sent <- t.exp_requests_sent + 1;
    Hashtbl.replace t.pending_exp (key t ~src ~seq) pair.replier;
    Stats.Counters.bump t.counters ~node:t.self Stats.Counters.Exp_rqst;
    Net.Network.unicast t.network ~from:t.self ~dst:pair.replier
      {
        Net.Packet.sender = t.self;
        payload =
          Net.Packet.Exp_request
            {
              src;
              seq;
              requestor = t.self;
              d_qs = Srm.Host.dist_to_source ~src t.srm;
              replier = pair.replier;
              turning_point = (if t.config.router_assist then pair.turning_point else None);
            };
      }
  end

let in_my_domain t ~replier =
  match t.domain with
  | None -> true
  | Some dmap -> Rdomain.dom_of dmap replier = Rdomain.dom_of dmap t.self

(* Domain mode prefers cached pairs whose replier shares the
   requestor's recovery domain — an in-domain expedited exchange never
   leaves the domain subtree — and falls back to any live replier when
   the cache offers no local one. *)
let choose_pair t ~src =
  let now = now t in
  let score ~replier = replier_score t ~replier in
  let dead ~replier = replier_dead t ~replier in
  match t.domain with
  | None -> Policy.choose ~now ~score ~exclude:dead t.config.policy (cache ~src t)
  | Some _ -> (
      match
        Policy.choose ~now ~score
          ~exclude:(fun ~replier -> dead ~replier || not (in_my_domain t ~replier))
          t.config.policy (cache ~src t)
      with
      | Some _ as local -> local
      | None -> Policy.choose ~now ~score ~exclude:dead t.config.policy (cache ~src t))

(* Section 3.2: on detecting a loss, consult the policy; if we are the
   expeditious requestor, arm the REORDER_DELAY timer. *)
let maybe_expedite t ~src ~seq =
  match choose_pair t ~src with
  | Some pair when pair.requestor = t.self && not (Hashtbl.mem t.exp_timers (key t ~src ~seq)) ->
      Cache.touch ~now:(now t) (cache ~src t) ~seq:pair.seq;
      (match t.domain with
      | None -> ()
      | Some _ ->
          if in_my_domain t ~replier:pair.replier then
            t.cache_local_hits <- t.cache_local_hits + 1
          else t.cache_remote_hits <- t.cache_remote_hits + 1);
      let timer =
        Sim.Engine.schedule (engine t) ~after:t.config.reorder_delay (fun () ->
            send_expedited_request t ~src seq pair)
      in
      Hashtbl.replace t.exp_timers (key t ~src ~seq) timer
  | _ -> ()

(* Section 3.1: digest reply annotations for losses we suffered. *)
let digest_reply t payload =
  match payload with
  | Net.Packet.Reply { src; seq; requestor; d_qs; replier; d_rq; expedited = _; turning_point } ->
      revive_replier t ~replier;
      if Srm.Host.suffered_loss ~src t.srm ~seq then begin
        let turning_point =
          if not t.config.router_assist then None
          else
            match turning_point with
            | Some _ as tp -> tp
            | None ->
                (* What the router annotation would carry: the node at
                   which this reply turned downward toward us. *)
                Some (Net.Tree.lca (Net.Network.tree t.network) replier t.self)
        in
        ignore
          (Cache.note_reply ~now:(now t) (cache ~src t)
             { Cache.seq; requestor; d_qs; replier; d_rq; turning_point })
      end
  | _ -> ()

let handle_expedited_request t ~src ~seq ~requestor ~d_qs ~turning_point =
  let transmit =
    match (t.config.router_assist, turning_point) with
    | true, Some via when via <> t.self ->
        Some (fun packet -> Net.Network.relayed_subcast t.network ~from:t.self ~via packet)
    | _ -> (
        match t.domain with
        | None -> None
        | Some dmap ->
            (* Domain mode: the expedited reply subcasts the subtree
               under the requestor's domain root — its loss-sharing
               neighbours (and any deeper domains cut off by the same
               upstream loss) hear it, the rest of the tree is spared.
               An off-domain replier reaches the domain root by
               unicast first. *)
            let dom = Rdomain.dom_of dmap requestor in
            Some
              (fun packet ->
                Net.Network.scoped_cast t.network ~from:t.self
                  ~root:(Rdomain.scope_root dmap ~dom ~level:0)
                  ~scope:(fun _ -> true)
                  packet))
  in
  let sent =
    Srm.Host.send_reply_now ~src t.srm ~seq ~requestor ~d_qs ~expedited:true
      ?turning_point:(if t.config.router_assist then turning_point else None)
      ?transmit ()
  in
  if sent then t.exp_replies_sent <- t.exp_replies_sent + 1

(* Crash support: all of CESRM's state is soft — caches, outstanding
   expedited recoveries, replier bookkeeping — so a restarting host
   comes back with none of it. *)
(* Steady-state retirement: forward the horizon to the SRM core, then
   sweep the expedited tables. Both are self-cleaning on delivery (the
   on_packet_obtained hook cancels the timer and scores the replier),
   so the sweep is defensive — it drops whatever was left behind for a
   retired (hence delivered) packet, keeping the tables bounded over a
   million-packet run without touching any timer that could still
   fire. *)
let retire_below t ~upto =
  Srm.Host.retire_below t.srm ~upto;
  let retired k =
    Srm.Key.seq ~stride:t.stride k
    <= Srm.Host.retired_floor ~src:(Srm.Key.src ~stride:t.stride k) t.srm
  in
  let sweep ?(keep = fun _ -> false) table =
    let dead =
      Hashtbl.fold (fun k v acc -> if retired k && not (keep v) then k :: acc else acc) table []
    in
    List.iter (Hashtbl.remove table) dead
  in
  sweep t.exp_timers ~keep:Sim.Engine.is_pending;
  sweep t.pending_exp

let reset_caches t =
  Hashtbl.iter (fun _ c -> Cache.clear c) t.caches;
  Hashtbl.iter (fun _ timer -> Sim.Engine.cancel timer) t.exp_timers;
  Hashtbl.reset t.exp_timers;
  Hashtbl.reset t.pending_exp;
  Hashtbl.reset t.replier_stats;
  Hashtbl.reset t.consec_failures;
  Hashtbl.reset t.dead_repliers

let on_packet t (p : Net.Packet.t) =
  match p.payload with
  | Net.Packet.Exp_request { src; seq; requestor; d_qs; replier; turning_point } ->
      if replier = t.self then handle_expedited_request t ~src ~seq ~requestor ~d_qs ~turning_point
  | _ -> Srm.Host.on_packet t.srm p

let create ?domain ~network ~self ~params ~config ~n_packets ~counters ~recoveries () =
  let srm = Srm.Host.create ?domain ~network ~self ~params ~n_packets ~counters ~recoveries () in
  let t =
    {
      srm;
      network;
      self;
      domain;
      config;
      stride = n_packets + 1;
      caches = Hashtbl.create 4;
      counters;
      exp_timers = Hashtbl.create 16;
      pending_exp = Hashtbl.create 16;
      replier_stats = Hashtbl.create 8;
      consec_failures = Hashtbl.create 8;
      dead_repliers = Hashtbl.create 8;
      exp_requests_sent = 0;
      exp_replies_sent = 0;
      n_cache_invalidations = 0;
      cache_local_hits = 0;
      cache_remote_hits = 0;
    }
  in
  let hooks = Srm.Host.hooks srm in
  hooks.on_loss_detected <- (fun ~src ~seq -> maybe_expedite t ~src ~seq);
  hooks.on_packet_obtained <-
    (fun ~src ~seq ~expedited ->
      cancel_expedited t ~src seq;
      note_expedited_outcome t ~src seq ~expedited);
  hooks.on_reply_observed <- (fun payload -> digest_reply t payload);
  t

let start t ~session_until = Srm.Host.start t.srm ~session_until

let publish_metrics t registry =
  Srm.Host.publish_metrics t.srm registry;
  Obs.Registry.incr ~by:t.exp_requests_sent registry "cesrm/exp_requests_sent";
  Obs.Registry.incr ~by:t.exp_replies_sent registry "cesrm/exp_replies_sent";
  Obs.Registry.incr ~by:(Hashtbl.length t.pending_exp) registry
    "cesrm/exp_outstanding_at_end";
  (match t.domain with
  | None -> ()
  | Some _ ->
      Obs.Registry.incr ~by:t.cache_local_hits registry "cesrm/domain_cache_local_hits";
      Obs.Registry.incr ~by:t.cache_remote_hits registry "cesrm/domain_cache_remote_hits");
  (* Guarded so the metric key set — and with it every churn-free
     report golden — is unchanged unless churn actually invalidated
     something. *)
  if t.n_cache_invalidations > 0 then
    Obs.Registry.incr ~by:t.n_cache_invalidations registry "cesrm/cache_invalidations";
  Hashtbl.iter
    (fun _ c ->
      Obs.Registry.incr registry "cesrm/caches";
      Obs.Registry.incr ~by:(Cache.size c) registry "cesrm/cache_entries")
    t.caches;
  (* Retention accounting, keyed by scheme so policy sweeps read as
     "hits under lru" vs "hits under recent" straight off the report. *)
  let scheme_key metric =
    Printf.sprintf "cesrm/cache_%s/%s" metric
      (Retention.scheme_label t.config.retention.Retention.scheme)
  in
  let sum f = Hashtbl.fold (fun _ c acc -> acc + f c) t.caches 0 in
  Obs.Registry.incr ~by:(sum Cache.evictions) registry (scheme_key "evictions");
  Obs.Registry.incr ~by:(sum Cache.expiries) registry (scheme_key "expiries");
  Obs.Registry.incr ~by:(sum Cache.hits) registry (scheme_key "hits");
  Hashtbl.iter
    (fun _ (ok, total) ->
      if total > 0 then
        Obs.Registry.observe registry "cesrm/replier_success_rate"
          (float_of_int ok /. float_of_int total))
    t.replier_stats
