(** Subtree sharding for conservative parallel simulation.

    Splits the multicast tree's nodes (routers included) into [k]
    shards of roughly equal {e member} weight, by accumulating nodes in
    DFS post-order and starting a new shard whenever the running weight
    reaches the per-shard target. Post-order keeps shards leafward:
    complete subtrees fill a shard before their ancestors, so the cut —
    the set of tree links whose endpoints live on different shards —
    stays near the sizes of the shards, not of the tree.

    The {e lookahead} is the minimum propagation delay over the cut
    links. Any packet path between nodes of different shards crosses at
    least one cut link (owners must change somewhere along it), so an
    event executed at time [t] on one shard cannot affect another shard
    before [t + lookahead] — the conservative window the PDES barrier
    protocol runs on ({!Sim.Pdes}). With [k = 1] the cut is empty and
    the lookahead infinite: one shard degenerates to the serial run. *)

type t = {
  n_shards : int;
  owner : int array;  (** node -> shard id; every node exactly once *)
  cut_links : int list;  (** links (child-node ids) joining two shards *)
  lookahead : float;  (** min delay over [cut_links]; [infinity] if none *)
}

val make : tree:Tree.t -> delay:(int -> float) -> shards:int -> t
(** Partition into at most [shards] shards (fewer when the tree has
    fewer members than [shards]). [delay l] is link [l]'s propagation
    delay, as in [Net.Network.link_delay].
    @raise Invalid_argument when [shards < 1]. *)

val owned_below : t -> tree:Tree.t -> me:int -> int array
(** Per-node count of shard [me]'s nodes in the subtree rooted at that
    node (inclusive). The walk-pruning oracle: a flood branch entering
    node [v] downward can be skipped iff [owned_below.(v) = 0], and the
    up-branch leaving subtree [u] iff [total - owned_below.(u) = 0]. *)

val n_owned : t -> me:int -> int
(** Total nodes owned by shard [me]. *)
