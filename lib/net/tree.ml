type t = {
  parent : int array;
  children : int list array;
  depth : int array;
  receivers : int array;
}

let n_nodes t = Array.length t.parent

let root _ = 0

let parent t v = t.parent.(v)

let children t v = t.children.(v)

let depth t v = t.depth.(v)

let height t = Array.fold_left max 0 t.depth

let is_leaf t v = t.children.(v) = []

let receivers t = t.receivers

let n_receivers t = Array.length t.receivers

let links t = Array.init (n_nodes t - 1) (fun i -> i + 1)

let neighbors t v =
  if v = 0 then t.children.(v) else t.parent.(v) :: t.children.(v)

let of_parents p =
  let n = Array.length p in
  if n = 0 then invalid_arg "Tree.of_parents: empty";
  if p.(0) <> -1 then invalid_arg "Tree.of_parents: node 0 must be the root";
  for v = 1 to n - 1 do
    if p.(v) < 0 || p.(v) >= n || p.(v) = v then
      invalid_arg "Tree.of_parents: bad parent index"
  done;
  let children = Array.make n [] in
  for v = n - 1 downto 1 do
    children.(p.(v)) <- v :: children.(p.(v))
  done;
  (* Depths double as an acyclicity check: compute by walking to the
     root with a step bound. *)
  let depth = Array.make n (-1) in
  depth.(0) <- 0;
  let rec depth_of v steps =
    if steps > n then invalid_arg "Tree.of_parents: cycle"
    else if depth.(v) >= 0 then depth.(v)
    else begin
      let d = 1 + depth_of p.(v) (steps + 1) in
      depth.(v) <- d;
      d
    end
  in
  for v = 1 to n - 1 do
    ignore (depth_of v 0)
  done;
  let receivers =
    Array.of_list
      (List.filter (fun v -> v <> 0 && children.(v) = []) (List.init n Fun.id))
  in
  if n > 1 && children.(0) = [] then invalid_arg "Tree.of_parents: disconnected root";
  { parent = Array.copy p; children; depth; receivers }

let rec lca t u v =
  if u = v then u
  else if t.depth.(u) > t.depth.(v) then lca t t.parent.(u) v
  else if t.depth.(v) > t.depth.(u) then lca t u t.parent.(v)
  else lca t t.parent.(u) t.parent.(v)

let hops t u v =
  let a = lca t u v in
  t.depth.(u) + t.depth.(v) - (2 * t.depth.(a))

let path t u v =
  let a = lca t u v in
  let rec up x acc = if x = a then x :: acc else up t.parent.(x) (x :: acc) in
  (* [up u []] is the path a..u ; reverse to get u..a, then append a..v
     without repeating [a]. *)
  let u_to_a = List.rev (up u []) in
  let a_to_v = up v [] in
  match a_to_v with [] -> u_to_a | _ :: below_a -> u_to_a @ below_a

let on_path_links t u v =
  let a = lca t u v in
  (* [climb x] accumulates x's entry links from just below [a] down to
     [x]; the u side is crossed upward (reverse that), the v side
     downward. *)
  let rec climb x acc = if x = a then acc else climb t.parent.(x) (x :: acc) in
  List.rev (climb u []) @ climb v []

let is_ancestor t a v =
  let rec walk x = if x = a then true else if x = -1 then false else walk t.parent.(x) in
  walk v

(* Accumulator-passing DFS: builds the preorder reversed in O(subtree)
   and flips it once. *)
let subtree_nodes t v =
  let rec visit acc v = List.fold_left visit (v :: acc) t.children.(v) in
  List.rev (visit [] v)

let subtree_receivers t v =
  List.filter (fun x -> is_leaf t x && x <> 0) (List.sort compare (subtree_nodes t v))

let dist t ~delay u v =
  List.fold_left (fun acc l -> acc +. delay l) 0. (on_path_links t u v)

let distance_matrix t ~delay =
  let n = n_nodes t in
  Array.init n (fun u -> Array.init n (fun v -> dist t ~delay u v))

let line n =
  if n < 1 then invalid_arg "Tree.line";
  of_parents (Array.init n (fun v -> v - 1))

let star r =
  if r < 1 then invalid_arg "Tree.star";
  of_parents (Array.init (r + 1) (fun v -> if v = 0 then -1 else 0))

let balanced ~fanout ~depth =
  if fanout < 1 || depth < 0 then invalid_arg "Tree.balanced";
  (* Nodes are numbered level by level. *)
  let rec level_size d = if d = 0 then 1 else fanout * level_size (d - 1) in
  let total = ref 0 in
  for d = 0 to depth do
    total := !total + level_size d
  done;
  let parents = Array.make !total (-1) in
  (* Children of node i are fanout*i+1 .. fanout*i+fanout in the usual
     implicit heap numbering. *)
  for v = 1 to !total - 1 do
    parents.(v) <- (v - 1) / fanout
  done;
  of_parents parents

let pp ppf t =
  let rec render indent v =
    Format.fprintf ppf "%s%d%s@." indent v (if is_leaf t v && v <> 0 then " (rcvr)" else "");
    List.iter (render (indent ^ "  ")) t.children.(v)
  in
  render "" 0

let equal a b = a.parent = b.parent
