(** Packet delivery over the multicast tree.

    The network model is the slice of NS2 the paper's evaluation uses
    (Section 4.3): every tree link has a fixed propagation delay and a
    fixed bandwidth; payload packets pay a serialization time of
    [size / bandwidth] per hop; control packets are size 0. Links are
    FIFO: a directed link is reserved while a packet serializes onto it.

    Three delivery primitives are provided: [multicast] (flood over the
    whole tree away from the sending member — plain IP multicast),
    [unicast] (along the tree path), and [subcast] (flood only downward
    from a given router — the router-assist capability of Section 3.3).

    Loss injection is a pluggable predicate consulted once per directed
    link traversal; dropping a packet on a link prunes the flood below
    that link, which is exactly how a loss on an IP multicast tree link
    manifests. *)

type t

val create :
  engine:Sim.Engine.t ->
  tree:Tree.t ->
  ?link_delay:float ->
  ?bandwidth_bps:float ->
  unit ->
  t
(** Defaults: 20 ms per link and 1.5 Mbps, the paper's settings. *)

val create_heterogeneous :
  engine:Sim.Engine.t ->
  tree:Tree.t ->
  delays:float array ->
  ?bandwidth_bps:float ->
  unit ->
  t
(** Per-link delays, indexed by link (= child node) id; entry 0 unused. *)

val engine : t -> Sim.Engine.t

val tree : t -> Tree.t

val routes : t -> Routes.t
(** The precomputed routing state the delivery primitives replay; see
    {!Routes}. *)

val cost : t -> Cost.t

val link_delay : t -> int -> float

val dist : t -> int -> int -> float
(** True one-way latency between two nodes (sum of link delays). *)

val rtt : t -> int -> int -> float

val set_drop : t -> (link:int -> down:bool -> Packet.t -> bool) -> unit
(** Install the loss-injection predicate. [down] is true when the
    packet is traversing the link away from the root. Return [true] to
    drop. The default predicate drops nothing. *)

val on_receive : t -> int -> (Packet.t -> unit) -> unit
(** Register node [v]'s delivery handler. Only registered nodes receive
    packets; interior routers just forward. *)

val multicast : t -> from:int -> Packet.t -> unit
(** Flood to the whole group. The sender does not hear its own
    multicast. *)

val unicast : t -> from:int -> dst:int -> Packet.t -> unit

val subcast : t -> at:int -> Packet.t -> unit
(** Flood only the subtree rooted at router [at], delivering to every
    registered node strictly below it (and [at] itself if registered).
    Models the LMS-style subcast of Section 3.3. *)

val relayed_subcast : t -> from:int -> via:int -> Packet.t -> unit
(** Router-assisted reply delivery (Section 3.3): unicast the packet
    from [from] to the turning-point router [via], which then subcasts
    it down its subtree. The uphill leg is charged as unicast
    crossings, the downhill flood as subcast crossings. *)

val scoped_cast : t -> from:int -> root:int -> scope:(int -> bool) -> Packet.t -> unit
(** Recovery-domain-scoped delivery: unicast the packet from [from] up
    to the domain root [root] (charged as unicast crossings, exactly
    like {!relayed_subcast}'s uphill leg), then flood downward from
    [root] visiting only the branches [scope] accepts (charged as
    subcast crossings). The scope predicate must be {e ancestry-closed}
    inside [root]'s subtree — an out-of-scope node may not have
    in-scope descendants — which lets rejected branches be pruned
    whole; recovery-domain chains (see [lib/domain]) satisfy this by
    construction. The sender never hears its own cast. Not available in
    shard mode ({!enable_shard}); domain-scoped runs use the serial
    engine.
    @raise Invalid_argument in shard mode. *)

val set_tap : t -> (from:int -> Packet.t -> unit) -> unit
(** Install a passive observer invoked once per packet {e sent} (any
    cast mode), before delivery is computed. Used by the protocol
    auditor; has no effect on behaviour. *)

val add_tap : t -> (from:int -> Packet.t -> unit) -> unit
(** Like {!set_tap} but composes with any tap already installed (which
    keeps running, first). Lets the auditor and the {!Obs} tracer
    observe the same run. *)

val publish_metrics : t -> Obs.Registry.t -> unit
(** Snapshot delivery and link-crossing totals into the registry under
    the ["net/"] prefix (pull-based; see {!Obs.Registry}). *)

val set_enabled : t -> int -> bool -> unit
(** Crash or revive a member: a disabled node receives no deliveries
    and its own transmissions are silently discarded, so a crashed
    host's lingering timers cannot reach the network. The enabled flag
    is re-checked when a queued delivery fires, so a host that crashes
    while a packet is in flight does not process it on arrival. Routers
    cannot be disabled (forwarding is topology, not host, behaviour). *)

(** {2 Membership layer (dynamic join/leave/rejoin)}

    Dynamic group membership compiled from a fault plan's churn events
    (see [lib/fault]). Like the perturbation layer, the state is
    allocated on first use: a network with no membership changes runs
    the original static-group code path bit-identically. Membership
    delegates packet semantics to the enabled flag — a non-member
    neither receives casts nor gets its own transmissions onto the
    network — and additionally flips {!is_member}, which the oracle
    and the protocol layers consult to distinguish {e departed} (soft
    state dropped, losses forgiven) from {e crashed} (state suspended,
    recovery resumes on restart). Only leaf members can change
    membership; routers always forward. *)

val churned : t -> bool
(** Whether a membership layer was installed (any churn occurred or a
    plan excluded a late joiner at start). *)

val set_member : ?count:bool -> t -> int -> bool -> unit
(** Add or remove node [v] from the group. Implies
    [set_enabled t v flag]. Each effective transition bumps the
    {!member_joins} / {!member_leaves} counters unless [~count:false]
    (used for a late joiner's initial exclusion, which is a starting
    condition rather than a churn event). *)

val is_member : t -> int -> bool
(** [true] for every node until {!set_member} is first used. A crashed
    member ([set_enabled _ _ false]) is still a member. *)

val member_joins : t -> int

val member_leaves : t -> int

(** {2 Perturbation layer (fault injection)}

    Timed windows compiled from a {e fault plan} (see [lib/fault]).
    Windows are matched against the time a packet {e starts crossing}
    the link — not the send time of the flood — so an outage beginning
    after a packet was sent still swallows the crossings scheduled to
    happen inside it (the mid-flight case). A network with no windows
    installed runs the original unperturbed code path; installing the
    first window splits one generator off the engine RNG (for jitter
    sampling), so unfaulted runs remain bit-identical to the seed. *)

val perturbed : t -> bool

val add_link_down : t -> link:int -> from_:float -> until:float -> unit
(** The link drops every crossing (both directions) whose crossing time
    falls in [\[from_, until)].
    @raise Invalid_argument on a bad link id or window. *)

val add_link_jitter : t -> link:int -> from_:float -> until:float -> max_jitter:float -> unit
(** Crossings starting inside the window arrive up to [max_jitter]
    seconds late (uniform); jitter beyond the inter-packet gap reorders
    packets on the link. *)

val add_link_dup : t -> link:int -> from_:float -> until:float -> unit
(** Crossings starting inside the window deliver a second copy of the
    packet at the entered node one extra propagation delay later (a
    last-hop duplicate; the copy is not re-forwarded). *)

val link_is_down : t -> link:int -> at:float -> bool
(** Whether an installed outage window covers time [at]. *)

val is_enabled : t -> int -> bool

val packets_delivered : t -> int
(** Total handler invocations, for sanity checks. *)

(** {2 Shard mode (conservative PDES)}

    A sharded run replicates the {e network} on every worker — full
    tree, link state, perturbation windows — but partitions the
    {e hosts}: each shard installs delivery handlers only for the
    members it owns ({!Partition}). The source's paced data stream is
    statically replicated ({!multicast_replicated}): every shard walks
    it locally in time order, so FIFO link reservations stay identical
    everywhere with no exchange. Every other origin cast is buffered as
    an {!emit} and replayed by all other shards ({!apply_emit}) at the
    next conservative sync window; replays tally the crossings into
    nodes the replaying shard owns, so summing per-shard {!Cost}
    tables ({!Cost.merge}) reproduces the serial totals exactly.

    Pruning: non-FIFO flood walks skip whole branches holding none of
    the shard's nodes — the source of the parallel speedup — while the
    pure loss predicate guarantees every shard sees identical drop
    decisions on the branches it does walk. *)

type emit_cast = Ecast_multicast | Ecast_unicast of int | Ecast_relayed of int

type emit = {
  e_at : float;  (** origin send time *)
  e_from : int;
  e_idx : int;  (** per-shard monotone counter; orders same-time ties *)
  e_cast : emit_cast;
  e_packet : Packet.t;
  e_disabled : int list;  (** members disabled at origin send time *)
}

val enable_shard : t -> partition:Partition.t -> me:int -> observe:bool -> unit
(** Switch this network into shard mode as shard [me] of [partition].
    Must be called before any handlers are installed or packets sent.
    [observe] marks the primary shard: it additionally records the tap
    stream ({!take_observations}) for the run's auditor and oracle. *)

val owns : t -> int -> bool
(** Whether node [v] belongs to this shard ([true] in serial mode). *)

val multicast_replicated : t -> from:int -> Packet.t -> unit
(** The source's data-stream cast: identical to {!multicast} in serial
    mode; in shard mode the flood is walked fully on {e every} shard
    (callers on all shards must issue it at the same simulation time)
    instead of being exchanged. *)

val take_emits : t -> emit list
(** Drain the buffered origin casts since the last call, in execution
    order. The sync layer distributes these to the other shards. *)

val take_observations : t -> emit list
(** Primary shard only: drain the locally recorded tap stream (origin
    and replicated casts) since the last call, in execution order. *)

val apply_emit : t -> emit -> unit
(** Replay a remote shard's origin cast. Safe only once the engine has
    advanced past [e_at] (conservative synchronisation guarantees all
    resulting arrivals are at or beyond the current barrier). *)

val delivery_rank : t -> (float * int * int * int) option
(** Shard mode, during a delivery handler: [(at, from, idx, pos)] — the
    cast key of the walk whose delivery is firing plus the delivered
    node's position in that walk's full precomputed order. Sorting
    same-[recovered_at] records by this rank reconstructs the serial
    engine's FIFO execution order among equal-time deliveries, which is
    what makes merged per-shard recovery streams byte-identical to a
    serial run. [None] in serial mode or outside a delivery. Cast keys
    are globally consistent: origin casts carry their emit's
    [(e_at, e_from, e_idx)], replicated source casts a dedicated
    every-shard counter encoded as [-2 - i]. *)
