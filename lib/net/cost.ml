type category = Data | Request | Reply | Exp_request | Exp_reply | Session

type cast = Unicast | Multicast | Subcast

let category_index = function
  | Data -> 0
  | Request -> 1
  | Reply -> 2
  | Exp_request -> 3
  | Exp_reply -> 4
  | Session -> 5

let cast_index = function Unicast -> 0 | Multicast -> 1 | Subcast -> 2

let all_categories = [ Data; Request; Reply; Exp_request; Exp_reply; Session ]

let n_categories = 6

let n_casts = 3

type t = { sends : int array; crossings : int array }

let create () =
  { sends = Array.make (n_categories * n_casts) 0; crossings = Array.make (n_categories * n_casts) 0 }

let slot cat cast = (category_index cat * n_casts) + cast_index cast

let category_of (p : Packet.t) =
  match p.payload with
  | Packet.Data _ -> Data
  | Packet.Request _ -> Request
  | Packet.Reply { expedited; _ } -> if expedited then Exp_reply else Reply
  | Packet.Exp_request _ -> Exp_request
  | Packet.Session _ -> Session

let record_send t cat cast = t.sends.(slot cat cast) <- t.sends.(slot cat cast) + 1

let record_crossing t cat cast = t.crossings.(slot cat cast) <- t.crossings.(slot cat cast) + 1

let sends t cat cast = t.sends.(slot cat cast)

let crossings t cat cast = t.crossings.(slot cat cast)

let total_crossings t cat =
  crossings t cat Unicast + crossings t cat Multicast + crossings t cat Subcast

let retransmission_overhead t = total_crossings t Reply + total_crossings t Exp_reply

let control_overhead t ~multicast =
  if multicast then crossings t Request Multicast + crossings t Exp_request Multicast
  else crossings t Request Unicast + crossings t Exp_request Unicast

let category_name = function
  | Data -> "data"
  | Request -> "request"
  | Reply -> "reply"
  | Exp_request -> "exp-request"
  | Exp_reply -> "exp-reply"
  | Session -> "session"

let pp ppf t =
  List.iter
    (fun cat ->
      Format.fprintf ppf "%-12s sends u/m/s %d/%d/%d crossings u/m/s %d/%d/%d@."
        (category_name cat) (sends t cat Unicast) (sends t cat Multicast) (sends t cat Subcast)
        (crossings t cat Unicast) (crossings t cat Multicast) (crossings t cat Subcast))
    all_categories

let merge a b =
  {
    sends = Array.map2 ( + ) a.sends b.sends;
    crossings = Array.map2 ( + ) a.crossings b.crossings;
  }
