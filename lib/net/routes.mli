(** Precomputed routing state for a static multicast tree.

    The tree topology and per-link propagation delays are immutable
    after {!Network} construction, so every traversal the delivery
    primitives need — neighbor sets, whole-tree flood orders, downward
    subcast orders, and unicast paths — can be computed once and then
    replayed allocation-free for every packet. This removes the
    per-packet list construction ([Tree.neighbors], [Tree.path],
    [Tree.on_path_links]) from the simulator's hot path.

    Flood and subcast orders are DFS preorders stored as flat parallel
    arrays. Each entry describes one directed link crossing; the
    [skips] field gives the size of the subtree rooted at that entry so
    a consumer can prune an entire subtree in O(1) when the crossing is
    dropped. Orders and paths are memoized on first use and never
    invalidated (the topology cannot change). *)

type order = {
  nodes : int array;  (** visited node per entry, DFS preorder (origin excluded) *)
  prevs : int array;  (** the node each entry is entered from *)
  links : int array;  (** link id crossed (= child endpoint of the edge) *)
  skips : int array;  (** entries spanned by this entry's subtree, itself included *)
  cum : float array;  (** cumulative propagation delay from the origin *)
}

type path = {
  hops : int array;  (** node sequence from source to destination, source excluded *)
  plinks : int array;  (** link id crossed at each hop *)
  pdowns : bool array;  (** whether each hop moves away from the root *)
}

type t

val create : tree:Tree.t -> delays:float array -> t
(** Precompute neighbor/children arrays for [tree] with per-link
    propagation [delays] (indexed by link id; slot 0 unused). *)

val tree : t -> Tree.t

val neighbors : t -> int -> int array
(** Parent (if any) followed by children — array form of
    {!Tree.neighbors}. *)

val children : t -> int -> int array

val subtree_size : t -> int -> int
(** Nodes at or below the given node, itself included. *)

val flood_order : t -> int -> order
(** [flood_order t origin]: the whole-tree multicast DFS preorder away
    from [origin], matching the traversal order of a recursive
    neighbor walk. Memoized per origin. *)

val down_order : t -> int -> order
(** [down_order t root]: the children-only subcast DFS preorder below
    [root] ([root] itself excluded). Memoized per root. *)

val path : t -> src:int -> dst:int -> path
(** The unicast walk from [src] to [dst] (via their LCA), matching
    {!Tree.path}/{!Tree.on_path_links}. Memoized per pair.
    [src = dst] yields empty arrays. *)
