(* Fault-injection perturbation state (see {!add_link_down} etc. in the
   interface). Windows are consulted against the *crossing* time of each
   packet, not the send time: a link that goes down after a flood was
   computed still swallows the crossings scheduled to happen inside the
   outage — the mid-flight case a naive "check now at send" misses. *)
type window = { w_from : float; w_until : float; w_mag : float }

type perturb = {
  downs : window list array; (* per link id *)
  jitters : window list array; (* w_mag = max extra delay, seconds *)
  dups : window list array;
  prng : Sim.Rng.t; (* jitter sampling; split off the engine rng on install *)
}

type t = {
  engine : Sim.Engine.t;
  tree : Tree.t;
  delays : float array; (* per link id; slot 0 unused *)
  bandwidth_bps : float;
  routes : Routes.t; (* precomputed traversal orders; see routes.mli *)
  arrive : float array; (* scratch: per-node arrival time of the packet in flight *)
  mutable drop : link:int -> down:bool -> Packet.t -> bool;
  handlers : (Packet.t -> unit) option array;
  enabled : bool array; (* crashed / departed members are disabled *)
  (* Directed serialization reservations, one float per link per
     direction. Reservations only ever attach to a single tree link
     (the [from]/[to_] of a traverse are its endpoints), so the former
     n x n matrix was n^2 memory for 2(n-1) useful cells — at 10^4
     receivers that matrix alone was gigabytes. *)
  busy_down : float array; (* parent -> child, indexed by link id *)
  busy_up : float array; (* child -> parent *)
  cost : Cost.t;
  mutable delivered : int;
  mutable tap : (from:int -> Packet.t -> unit) option;
  mutable perturb : perturb option; (* None = the unfaulted fast path *)
}

let no_drop ~link:_ ~down:_ _ = false

let create_heterogeneous ~engine ~tree ~delays ?(bandwidth_bps = 1.5e6) () =
  let n = Tree.n_nodes tree in
  if Array.length delays <> n then invalid_arg "Network.create_heterogeneous: delays size";
  {
    engine;
    tree;
    delays;
    bandwidth_bps;
    routes = Routes.create ~tree ~delays;
    arrive = Array.make n 0.;
    drop = no_drop;
    handlers = Array.make n None;
    enabled = Array.make n true;
    busy_down = Array.make n 0.;
    busy_up = Array.make n 0.;
    cost = Cost.create ();
    delivered = 0;
    tap = None;
    perturb = None;
  }

let create ~engine ~tree ?(link_delay = 0.020) ?bandwidth_bps () =
  let delays = Array.make (Tree.n_nodes tree) link_delay in
  create_heterogeneous ~engine ~tree ~delays ?bandwidth_bps ()

let engine t = t.engine

let tree t = t.tree

let routes t = t.routes

let cost t = t.cost

let link_delay t l = t.delays.(l)

(* On-demand tree walk instead of a precomputed n x n matrix: the
   matrix was the dominant memory cost at scale (800 MB at 10^4
   nodes). [Tree.dist] sums link delays in the same order the matrix
   builder did, so callers see bit-identical floats. *)
let dist t u v = Tree.dist t.tree ~delay:(fun l -> t.delays.(l)) u v

let rtt t u v = 2. *. dist t u v

let set_drop t f = t.drop <- f

let set_tap t f = t.tap <- Some f

(* Compose with any installed tap so several passive observers (the
   protocol auditor, the Obs tracer) can coexist; the earlier tap runs
   first. *)
let add_tap t f =
  match t.tap with
  | None -> t.tap <- Some f
  | Some g ->
      t.tap <-
        Some
          (fun ~from packet ->
            g ~from packet;
            f ~from packet)

let tap t ~from packet = match t.tap with None -> () | Some f -> f ~from packet

let publish_metrics t registry =
  Obs.Registry.incr ~by:t.delivered registry "net/packets_delivered";
  Obs.Registry.incr ~by:(Cost.retransmission_overhead t.cost) registry
    "net/retransmission_crossings";
  Obs.Registry.incr ~by:(Cost.control_overhead t.cost ~multicast:true) registry
    "net/control_crossings_mc";
  Obs.Registry.incr ~by:(Cost.control_overhead t.cost ~multicast:false) registry
    "net/control_crossings_uc";
  Obs.Registry.incr ~by:(Cost.total_crossings t.cost Cost.Data) registry
    "net/data_crossings";
  Obs.Registry.incr ~by:(Cost.total_crossings t.cost Cost.Session) registry
    "net/session_crossings"

let on_receive t v f = t.handlers.(v) <- Some f

let packets_delivered t = t.delivered

let set_enabled t v flag = t.enabled.(v) <- flag

let is_enabled t v = t.enabled.(v)

(* -- perturbation layer (fault injection) --------------------------- *)

let perturbed t = t.perturb <> None

let get_perturb t =
  match t.perturb with
  | Some p -> p
  | None ->
      let n = Tree.n_nodes t.tree in
      let p =
        {
          downs = Array.make n [];
          jitters = Array.make n [];
          dups = Array.make n [];
          prng = Sim.Rng.split (Sim.Engine.rng t.engine);
        }
      in
      t.perturb <- Some p;
      p

let check_link t link =
  if link < 1 || link >= Tree.n_nodes t.tree then
    invalid_arg (Printf.sprintf "Network: link %d out of range" link)

let check_window ~from_ ~until =
  if not (from_ >= 0. && until > from_) then
    invalid_arg "Network: perturbation window must satisfy 0 <= from < until"

let add_window arr link w = arr.(link) <- arr.(link) @ [ w ]

let add_link_down t ~link ~from_ ~until =
  check_link t link;
  check_window ~from_ ~until;
  add_window (get_perturb t).downs link { w_from = from_; w_until = until; w_mag = 0. }

let add_link_jitter t ~link ~from_ ~until ~max_jitter =
  check_link t link;
  check_window ~from_ ~until;
  if max_jitter <= 0. then invalid_arg "Network.add_link_jitter: max_jitter must be positive";
  add_window (get_perturb t).jitters link { w_from = from_; w_until = until; w_mag = max_jitter }

let add_link_dup t ~link ~from_ ~until =
  check_link t link;
  check_window ~from_ ~until;
  add_window (get_perturb t).dups link { w_from = from_; w_until = until; w_mag = 0. }

let rec window_at windows at =
  match windows with
  | [] -> None
  | w :: rest -> if at >= w.w_from && at < w.w_until then Some w else window_at rest at

let link_is_down t ~link ~at =
  match t.perturb with
  | None -> false
  | Some p -> window_at p.downs.(link) at <> None

let deliver t ~node ~at packet =
  match t.handlers.(node) with
  | None -> ()
  | Some _ when not t.enabled.(node) -> ()
  | Some handler ->
      ignore
        (Sim.Engine.schedule_at t.engine ~at (fun () ->
             (* Re-checked at fire time: a host that crashes while the
                packet is in flight must not process it on arrival (the
                schedule-time check above only covers hosts already down
                at send time). *)
             if t.enabled.(node) then begin
               t.delivered <- t.delivered + 1;
               handler packet
             end))

(* Move [packet] across the link [link] from [from] to [to_], leaving
   [from] at time [at]. Returns the arrival time, or NaN if the loss
   predicate dropped it (a float sentinel rather than an option keeps
   the per-crossing path allocation-free). [cat], [tx] and [fifo] are
   per-packet constants hoisted out by the caller: the packet's cost
   category, its serialization time, and whether it reserves links.

   Size-0 control packets serialize instantly: they neither wait on
   nor extend link reservations. Payload packets pay one serialization
   time per hop. Only the source's paced data stream accumulates FIFO
   reservations: it is the only same-link in-order flow, whereas reply
   floods originate at many members whose crossing times are computed
   at send time — letting them reserve both breaks causality and,
   under reply implosion, builds unbounded queues the paper's
   lossless-recovery model does not have (NS2 would drop, not queue,
   that excess). *)
let[@inline] traverse t ~cat ~cast ~link ~down ~from:_ ~to_ ~at ~tx ~fifo packet =
  if t.drop ~link ~down packet then Float.nan
  else
    let busy = if down then t.busy_down else t.busy_up in
    match t.perturb with
    | None ->
        Cost.record_crossing t.cost cat cast;
        if tx = 0. then at +. t.delays.(link)
        else if fifo then begin
          let start = Float.max at busy.(link) in
          busy.(link) <- start +. tx;
          start +. tx +. t.delays.(link)
        end
        else at +. tx +. t.delays.(link)
    | Some p ->
        (* Perturbed path. Outage windows are matched against the time
           the packet starts crossing this link, so a link that fails
           after the flood was computed still swallows the crossings
           falling inside the outage. *)
        if window_at p.downs.(link) at <> None then Float.nan
        else begin
          Cost.record_crossing t.cost cat cast;
          let arrival =
            if tx = 0. then at +. t.delays.(link)
            else if fifo then begin
              let start = Float.max at busy.(link) in
              busy.(link) <- start +. tx;
              start +. tx +. t.delays.(link)
            end
            else at +. tx +. t.delays.(link)
          in
          let arrival =
            match window_at p.jitters.(link) at with
            | Some w when w.w_mag > 0. -> arrival +. Sim.Rng.float p.prng w.w_mag
            | _ -> arrival
          in
          (* Duplication: a second copy of the packet arrives at the
             link's child-side endpoint one extra propagation delay
             later (a last-hop duplicate; it is not re-forwarded). *)
          (match window_at p.dups.(link) at with
          | Some _ -> deliver t ~node:to_ ~at:(arrival +. t.delays.(link)) packet
          | None -> ());
          arrival
        end

let tx_of t packet = float_of_int (Packet.size_bits packet) /. t.bandwidth_bps

let is_fifo packet = match packet.Packet.payload with Packet.Data _ -> true | _ -> false

(* Replay a precomputed DFS order: each entry crosses one link and
   delivers at the entered node; a dropped crossing skips the entry's
   whole subtree. [arrive] carries per-hop arrival times so the float
   accumulation is hop-by-hop, exactly as the former recursive walk. *)
let run_order t ~cat ~cast ~tx ~fifo order packet =
  let nodes = order.Routes.nodes
  and prevs = order.Routes.prevs
  and links = order.Routes.links
  and skips = order.Routes.skips in
  let n = Array.length nodes in
  let i = ref 0 in
  while !i < n do
    let node = nodes.(!i) and prev = prevs.(!i) and link = links.(!i) in
    let at' =
      traverse t ~cat ~cast ~link ~down:(link = node) ~from:prev ~to_:node
        ~at:t.arrive.(prev) ~tx ~fifo packet
    in
    if Float.is_nan at' then i := !i + skips.(!i)
    else begin
      t.arrive.(node) <- at';
      deliver t ~node ~at:at' packet;
      incr i
    end
  done

let multicast t ~from packet =
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    Cost.record_send t.cost cat Cost.Multicast;
    t.arrive.(from) <- Sim.Engine.now t.engine;
    run_order t ~cat ~cast:Cost.Multicast ~tx:(tx_of t packet) ~fifo:(is_fifo packet)
      (Routes.flood_order t.routes from)
      packet
  end

(* Walk a precomputed unicast path; delivery happens only if every hop
   survives the loss predicate. Returns the arrival time at the path's
   end, or NaN if any hop dropped. *)
let walk_path t ~cat ~cast ~from ~at ~tx ~fifo path packet =
  let hops = path.Routes.hops
  and plinks = path.Routes.plinks
  and pdowns = path.Routes.pdowns in
  let n = Array.length hops in
  let node = ref from and at = ref at and i = ref 0 in
  while (not (Float.is_nan !at)) && !i < n do
    let next = hops.(!i) in
    let at' =
      traverse t ~cat ~cast ~link:plinks.(!i) ~down:pdowns.(!i) ~from:!node ~to_:next
        ~at:!at ~tx ~fifo packet
    in
    if not (Float.is_nan at') then node := next;
    at := at';
    incr i
  done;
  !at

let unicast t ~from ~dst packet =
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    Cost.record_send t.cost cat Cost.Unicast;
    if from <> dst then begin
      let path = Routes.path t.routes ~src:from ~dst in
      let at =
        walk_path t ~cat ~cast:Cost.Unicast ~from ~at:(Sim.Engine.now t.engine)
          ~tx:(tx_of t packet) ~fifo:(is_fifo packet) path packet
      in
      if not (Float.is_nan at) then deliver t ~node:dst ~at packet
    end
  end

let flood_down t ~cat ~node ~at packet =
  deliver t ~node ~at packet;
  t.arrive.(node) <- at;
  run_order t ~cat ~cast:Cost.Subcast ~tx:(tx_of t packet) ~fifo:(is_fifo packet)
    (Routes.down_order t.routes node)
    packet

let subcast t ~at:root packet =
  tap t ~from:root packet;
  let cat = Cost.category_of packet in
  Cost.record_send t.cost cat Cost.Subcast;
  flood_down t ~cat ~node:root ~at:(Sim.Engine.now t.engine) packet

let relayed_subcast t ~from ~via packet =
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    Cost.record_send t.cost cat Cost.Subcast;
    if from = via then flood_down t ~cat ~node:via ~at:(Sim.Engine.now t.engine) packet
    else begin
      let path = Routes.path t.routes ~src:from ~dst:via in
      let at =
        walk_path t ~cat ~cast:Cost.Unicast ~from ~at:(Sim.Engine.now t.engine)
          ~tx:(tx_of t packet) ~fifo:(is_fifo packet) path packet
      in
      if not (Float.is_nan at) then flood_down t ~cat ~node:via ~at packet
    end
  end
