(* Fault-injection perturbation state (see {!add_link_down} etc. in the
   interface). Windows are consulted against the *crossing* time of each
   packet, not the send time: a link that goes down after a flood was
   computed still swallows the crossings scheduled to happen inside the
   outage — the mid-flight case a naive "check now at send" misses. *)
type window = { w_from : float; w_until : float; w_mag : float }

type perturb = {
  downs : window list array; (* per link id *)
  jitters : window list array; (* w_mag = max extra delay, seconds *)
  dups : window list array;
  prng : Sim.Rng.t; (* jitter sampling; split off the engine rng on install *)
}

(* Membership state (dynamic join/leave/rejoin; see {!set_member} in
   the interface). Allocated lazily like [perturb]: [None] means the
   group is static and every node is a member — the unfaulted fast
   path never touches it, so churn-free runs stay byte-identical. *)
type membership = {
  m_member : bool array; (* per node; false = outside the group *)
  mutable m_joins : int;
  mutable m_leaves : int;
}

(* -- shard mode (conservative PDES) --------------------------------- *)

type emit_cast = Ecast_multicast | Ecast_unicast of int | Ecast_relayed of int

type emit = {
  e_at : float;
  e_from : int;
  e_idx : int;
  e_cast : emit_cast;
  e_packet : Packet.t;
  e_disabled : int list;
}

(* Cold-path shard state; the per-crossing hot-path fields (owner
   array, owned-below oracle) live directly on [t] below. *)
type shard = {
  sh_observe : bool; (* primary shard: record the tap stream *)
  mutable sh_next_idx : int; (* monotone per-shard emit/obs counter *)
  (* Replicated source casts execute identically on every shard, so
     this counter (advanced unconditionally, unlike [sh_next_idx]) is
     a consistent cross-shard id for them; encoded as [-2 - i] in the
     walk key's idx slot to stay disjoint from emit indices (>= 0) and
     the no-walk sentinel (-1). *)
  mutable sh_rep_idx : int;
  mutable sh_emits : emit list; (* reversed; drained per sync window *)
  mutable sh_obs : emit list; (* reversed; local tap-stream records *)
  mutable sh_disabled : int list; (* currently disabled members *)
  mutable sh_replaying : bool; (* inside [apply_emit]'s walk *)
  mutable sh_replay_disabled : int list; (* origin-time snapshot *)
}

type t = {
  engine : Sim.Engine.t;
  tree : Tree.t;
  delays : float array; (* per link id; slot 0 unused *)
  bandwidth_bps : float;
  routes : Routes.t; (* precomputed traversal orders; see routes.mli *)
  arrive : float array; (* scratch: per-node arrival time of the packet in flight *)
  mutable drop : link:int -> down:bool -> Packet.t -> bool;
  handlers : (Packet.t -> unit) option array;
  enabled : bool array; (* crashed / departed members are disabled *)
  (* Directed serialization reservations, one float per link per
     direction. Reservations only ever attach to a single tree link
     (the [from]/[to_] of a traverse are its endpoints), so the former
     n x n matrix was n^2 memory for 2(n-1) useful cells — at 10^4
     receivers that matrix alone was gigabytes. *)
  busy_down : float array; (* parent -> child, indexed by link id *)
  busy_up : float array; (* child -> parent *)
  cost : Cost.t;
  mutable delivered : int;
  mutable tap : (from:int -> Packet.t -> unit) option;
  mutable perturb : perturb option; (* None = the unfaulted fast path *)
  mutable membership : membership option; (* None = static full group *)
  (* Shard-mode hot path: [sh_owner] empty means serial (no sharding);
     otherwise crossings are tallied only when the entered node is
     owned by [sh_me], and non-FIFO flood walks are pruned to branches
     containing owned nodes (via [sh_below], the owned-below oracle). *)
  mutable sh_owner : int array;
  mutable sh_me : int;
  mutable sh_below : int array;
  mutable sh_total : int;
  mutable shard : shard option;
  (* Allocation-free delivery: one pooled packet slot per in-flight
     cast and one shared fire closure, dispatched by integer argument
     [(slot lsl node_bits) lor node] through [Engine.schedule_call] —
     the per-delivery closure this replaces dominated allocation at
     scale (tens of MB per 200-packet leg). *)
  mutable pslots : Packet.t array;
  mutable prefs : int array; (* per-slot pending deliveries + 1 while walking *)
  mutable pfree : int array; (* free-slot stack *)
  mutable pfree_top : int;
  mutable cur_pslot : int; (* slot of the cast being walked *)
  mutable fire : int -> unit; (* shared delivery dispatch; tied below *)
  node_bits : int;
  (* Shard mode only: the originating cast key (at, from, idx) of the
     walk each slot pins — globally consistent across shards, so a
     worker can tag every recovery with the walk that produced it and
     the coordinator can reconstruct the serial engine's FIFO order
     among same-time deliveries. [cur_deliver_*] stash the firing
     delivery's key + node for {!delivery_rank} (the slot itself may
     be recycled by casts the handler makes). *)
  mutable pwalk : (float * int * int) array;
  mutable cur_deliver_at : float;
  mutable cur_deliver_from : int;
  mutable cur_deliver_idx : int;
  mutable cur_deliver_node : int; (* -1 = not inside a delivery *)
}

let no_drop ~link:_ ~down:_ _ = false

let rec bits_for n b = if 1 lsl b >= n then b else bits_for n (b + 1)

let release_pslot t s =
  t.prefs.(s) <- t.prefs.(s) - 1;
  if t.prefs.(s) = 0 then begin
    t.pfree.(t.pfree_top) <- s;
    t.pfree_top <- t.pfree_top + 1
  end

let deliver_fire t arg =
  let node = arg land ((1 lsl t.node_bits) - 1) in
  let s = arg lsr t.node_bits in
  let packet = t.pslots.(s) in
  release_pslot t s;
  (* Re-checked at fire time: a host that crashes while the packet is
     in flight must not process it on arrival (the schedule-time check
     in [deliver] only covers hosts already down at send time). *)
  if t.enabled.(node) then begin
    t.delivered <- t.delivered + 1;
    match t.handlers.(node) with
    | Some h ->
        (match t.shard with
        | Some _ ->
            (* Stash before the handler runs: casts it makes may
               recycle slot [s] and overwrite [pwalk.(s)]. *)
            let at, from, idx = t.pwalk.(s) in
            t.cur_deliver_at <- at;
            t.cur_deliver_from <- from;
            t.cur_deliver_idx <- idx;
            t.cur_deliver_node <- node;
            h packet;
            t.cur_deliver_node <- -1
        | None -> h packet)
    | None -> ()
  end

let create_heterogeneous ~engine ~tree ~delays ?(bandwidth_bps = 1.5e6) () =
  let n = Tree.n_nodes tree in
  if Array.length delays <> n then invalid_arg "Network.create_heterogeneous: delays size";
  let pcap = 64 in
  let t =
    {
      engine;
      tree;
      delays;
      bandwidth_bps;
      routes = Routes.create ~tree ~delays;
      arrive = Array.make n 0.;
      drop = no_drop;
      handlers = Array.make n None;
      enabled = Array.make n true;
      busy_down = Array.make n 0.;
      busy_up = Array.make n 0.;
      cost = Cost.create ();
      delivered = 0;
      tap = None;
      perturb = None;
      membership = None;
      sh_owner = [||];
      sh_me = 0;
      sh_below = [||];
      sh_total = 0;
      shard = None;
      pslots = Array.make pcap { Packet.sender = 0; payload = Packet.Data { seq = 0 } };
      prefs = Array.make pcap 0;
      pfree = Array.init pcap (fun i -> i);
      pfree_top = pcap;
      cur_pslot = 0;
      fire = (fun _ -> ());
      node_bits = bits_for n 0;
      pwalk = Array.make pcap (0., -1, -1);
      cur_deliver_at = 0.;
      cur_deliver_from = -1;
      cur_deliver_idx = -1;
      cur_deliver_node = -1;
    }
  in
  t.fire <- (fun arg -> deliver_fire t arg);
  t

let grow_pslots t =
  let old = Array.length t.pslots in
  let cap = old * 2 in
  let pslots = Array.make cap t.pslots.(0) in
  Array.blit t.pslots 0 pslots 0 old;
  let prefs = Array.make cap 0 in
  Array.blit t.prefs 0 prefs 0 old;
  let pfree = Array.make cap 0 in
  (* the old stack is empty (that is why we grew); refill with the
     newly minted slots *)
  for i = 0 to cap - old - 1 do
    pfree.(i) <- old + i
  done;
  let pwalk = Array.make cap (0., -1, -1) in
  Array.blit t.pwalk 0 pwalk 0 old;
  t.pslots <- pslots;
  t.prefs <- prefs;
  t.pfree <- pfree;
  t.pwalk <- pwalk;
  t.pfree_top <- cap - old

(* Pin the cast's packet in a pooled slot for the duration of its walk;
   the initial refcount 1 is the walk's own pin, dropped by the cast
   entry point when the walk returns. *)
let acquire_pslot t packet =
  if t.pfree_top = 0 then grow_pslots t;
  t.pfree_top <- t.pfree_top - 1;
  let s = t.pfree.(t.pfree_top) in
  t.pslots.(s) <- packet;
  t.prefs.(s) <- 1;
  t.cur_pslot <- s;
  s

let create ~engine ~tree ?(link_delay = 0.020) ?bandwidth_bps () =
  let delays = Array.make (Tree.n_nodes tree) link_delay in
  create_heterogeneous ~engine ~tree ~delays ?bandwidth_bps ()

let engine t = t.engine

let tree t = t.tree

let routes t = t.routes

let cost t = t.cost

let link_delay t l = t.delays.(l)

(* On-demand tree walk instead of a precomputed n x n matrix: the
   matrix was the dominant memory cost at scale (800 MB at 10^4
   nodes). [Tree.dist] sums link delays in the same order the matrix
   builder did, so callers see bit-identical floats. *)
let dist t u v = Tree.dist t.tree ~delay:(fun l -> t.delays.(l)) u v

let rtt t u v = 2. *. dist t u v

let set_drop t f = t.drop <- f

let set_tap t f = t.tap <- Some f

(* Compose with any installed tap so several passive observers (the
   protocol auditor, the Obs tracer) can coexist; the earlier tap runs
   first. *)
let add_tap t f =
  match t.tap with
  | None -> t.tap <- Some f
  | Some g ->
      t.tap <-
        Some
          (fun ~from packet ->
            g ~from packet;
            f ~from packet)

let tap t ~from packet = match t.tap with None -> () | Some f -> f ~from packet

let publish_metrics t registry =
  Obs.Registry.incr ~by:t.delivered registry "net/packets_delivered";
  Obs.Registry.incr ~by:(Cost.retransmission_overhead t.cost) registry
    "net/retransmission_crossings";
  Obs.Registry.incr ~by:(Cost.control_overhead t.cost ~multicast:true) registry
    "net/control_crossings_mc";
  Obs.Registry.incr ~by:(Cost.control_overhead t.cost ~multicast:false) registry
    "net/control_crossings_uc";
  Obs.Registry.incr ~by:(Cost.total_crossings t.cost Cost.Data) registry
    "net/data_crossings";
  Obs.Registry.incr ~by:(Cost.total_crossings t.cost Cost.Session) registry
    "net/session_crossings";
  (* Churn counters only exist when a membership layer was installed,
     so churn-free registries keep their exact historical key set. *)
  match t.membership with
  | None -> ()
  | Some m ->
      Obs.Registry.incr ~by:m.m_joins registry "net/member_joins";
      Obs.Registry.incr ~by:m.m_leaves registry "net/member_leaves"

let on_receive t v f = t.handlers.(v) <- Some f

let packets_delivered t = t.delivered

let set_enabled t v flag =
  t.enabled.(v) <- flag;
  (* Shard mode keeps an explicit disabled-member list: emits snapshot
     it so a replaying shard can reproduce the origin's send-time
     enabled check even when the member's state changed since. The list
     is replaced, never mutated, so snapshots stay valid. *)
  match t.shard with
  | None -> ()
  | Some sh ->
      if flag then sh.sh_disabled <- List.filter (fun x -> x <> v) sh.sh_disabled
      else if not (List.mem v sh.sh_disabled) then sh.sh_disabled <- v :: sh.sh_disabled

let is_enabled t v = t.enabled.(v)

(* -- membership layer (dynamic join/leave/rejoin) -------------------- *)

let churned t = t.membership <> None

let get_membership t =
  match t.membership with
  | Some m -> m
  | None ->
      let m =
        {
          m_member = Array.make (Tree.n_nodes t.tree) true;
          m_joins = 0;
          m_leaves = 0;
        }
      in
      t.membership <- Some m;
      m

let is_member t v =
  match t.membership with None -> true | Some m -> m.m_member.(v)

(* Membership rides the enabled flag for packet semantics: a
   non-member neither receives casts (schedule-time and fire-time
   checks in [deliver]/[deliver_fire]) nor originates them (the
   send-side [enabled] guards) — and the shard-mode [sh_disabled]
   snapshots keep working unchanged. The distinction from a crash is
   that [is_member] is false too: the oracle stops charging the node
   for losses, and protocol layers drop (rather than suspend) its soft
   state. [count] is false for the compile-time initial exclusion of a
   late joiner, which is a starting condition, not a churn event. *)
let set_member ?(count = true) t v flag =
  let m = get_membership t in
  if m.m_member.(v) <> flag then begin
    m.m_member.(v) <- flag;
    if count then if flag then m.m_joins <- m.m_joins + 1 else m.m_leaves <- m.m_leaves + 1
  end;
  set_enabled t v flag

let member_joins t = match t.membership with None -> 0 | Some m -> m.m_joins

let member_leaves t = match t.membership with None -> 0 | Some m -> m.m_leaves

(* -- perturbation layer (fault injection) --------------------------- *)

let perturbed t = t.perturb <> None

let get_perturb t =
  match t.perturb with
  | Some p -> p
  | None ->
      let n = Tree.n_nodes t.tree in
      let p =
        {
          downs = Array.make n [];
          jitters = Array.make n [];
          dups = Array.make n [];
          prng = Sim.Rng.split (Sim.Engine.rng t.engine);
        }
      in
      t.perturb <- Some p;
      p

let check_link t link =
  if link < 1 || link >= Tree.n_nodes t.tree then
    invalid_arg (Printf.sprintf "Network: link %d out of range" link)

let check_window ~from_ ~until =
  if not (from_ >= 0. && until > from_) then
    invalid_arg "Network: perturbation window must satisfy 0 <= from < until"

let add_window arr link w = arr.(link) <- arr.(link) @ [ w ]

let add_link_down t ~link ~from_ ~until =
  check_link t link;
  check_window ~from_ ~until;
  add_window (get_perturb t).downs link { w_from = from_; w_until = until; w_mag = 0. }

let add_link_jitter t ~link ~from_ ~until ~max_jitter =
  check_link t link;
  check_window ~from_ ~until;
  if max_jitter <= 0. then invalid_arg "Network.add_link_jitter: max_jitter must be positive";
  add_window (get_perturb t).jitters link { w_from = from_; w_until = until; w_mag = max_jitter }

let add_link_dup t ~link ~from_ ~until =
  check_link t link;
  check_window ~from_ ~until;
  add_window (get_perturb t).dups link { w_from = from_; w_until = until; w_mag = 0. }

let rec window_at windows at =
  match windows with
  | [] -> None
  | w :: rest -> if at >= w.w_from && at < w.w_until then Some w else window_at rest at

let link_is_down t ~link ~at =
  match t.perturb with
  | None -> false
  | Some p -> window_at p.downs.(link) at <> None

(* Schedule delivery of the current cast's packet (the one pinned in
   [cur_pslot]) at [node]. During an emit replay the send-time enabled
   check consults the origin's snapshot instead of live state: the
   member may have crashed or revived between the origin's send and
   this shard's replay of it. *)
let deliver t ~node ~at =
  match t.handlers.(node) with
  | None -> ()
  | Some _ ->
      let blocked =
        match t.shard with
        | Some sh when sh.sh_replaying -> List.mem node sh.sh_replay_disabled
        | _ -> not t.enabled.(node)
      in
      if not blocked then begin
        let s = t.cur_pslot in
        t.prefs.(s) <- t.prefs.(s) + 1;
        Sim.Engine.schedule_call t.engine ~at t.fire ((s lsl t.node_bits) lor node)
      end

(* Whether this shard tallies the crossing into [to_] — exactly the
   owner of the entered node counts it, so merged per-shard tallies
   reproduce the serial totals with nothing double-counted. Serial
   mode (empty owner array) counts everything. *)
let[@inline] counts_crossing t to_ = Array.length t.sh_owner = 0 || t.sh_owner.(to_) = t.sh_me

(* Move [packet] across the link [link] from [from] to [to_], leaving
   [from] at time [at]. Returns the arrival time, or NaN if the loss
   predicate dropped it (a float sentinel rather than an option keeps
   the per-crossing path allocation-free). [cat], [tx] and [fifo] are
   per-packet constants hoisted out by the caller: the packet's cost
   category, its serialization time, and whether it reserves links.

   Size-0 control packets serialize instantly: they neither wait on
   nor extend link reservations. Payload packets pay one serialization
   time per hop. Only the source's paced data stream accumulates FIFO
   reservations: it is the only same-link in-order flow, whereas reply
   floods originate at many members whose crossing times are computed
   at send time — letting them reserve both breaks causality and,
   under reply implosion, builds unbounded queues the paper's
   lossless-recovery model does not have (NS2 would drop, not queue,
   that excess). *)
let[@inline] traverse t ~cat ~cast ~link ~down ~from:_ ~to_ ~at ~tx ~fifo packet =
  if t.drop ~link ~down packet then Float.nan
  else
    let busy = if down then t.busy_down else t.busy_up in
    match t.perturb with
    | None ->
        if counts_crossing t to_ then Cost.record_crossing t.cost cat cast;
        if tx = 0. then at +. t.delays.(link)
        else if fifo then begin
          let start = Float.max at busy.(link) in
          busy.(link) <- start +. tx;
          start +. tx +. t.delays.(link)
        end
        else at +. tx +. t.delays.(link)
    | Some p ->
        (* Perturbed path. Outage windows are matched against the time
           the packet starts crossing this link, so a link that fails
           after the flood was computed still swallows the crossings
           falling inside the outage. *)
        if window_at p.downs.(link) at <> None then Float.nan
        else begin
          if counts_crossing t to_ then Cost.record_crossing t.cost cat cast;
          let arrival =
            if tx = 0. then at +. t.delays.(link)
            else if fifo then begin
              let start = Float.max at busy.(link) in
              busy.(link) <- start +. tx;
              start +. tx +. t.delays.(link)
            end
            else at +. tx +. t.delays.(link)
          in
          let arrival =
            match window_at p.jitters.(link) at with
            | Some w when w.w_mag > 0. -> arrival +. Sim.Rng.float p.prng w.w_mag
            | _ -> arrival
          in
          (* Duplication: a second copy of the packet arrives at the
             link's child-side endpoint one extra propagation delay
             later (a last-hop duplicate; it is not re-forwarded). *)
          (match window_at p.dups.(link) at with
          | Some _ -> deliver t ~node:to_ ~at:(arrival +. t.delays.(link))
          | None -> ());
          arrival
        end

let tx_of t packet = float_of_int (Packet.size_bits packet) /. t.bandwidth_bps

let is_fifo packet = match packet.Packet.payload with Packet.Data _ -> true | _ -> false

(* Replay a precomputed DFS order: each entry crosses one link and
   delivers at the entered node; a dropped crossing skips the entry's
   whole subtree. [arrive] carries per-hop arrival times so the float
   accumulation is hop-by-hop, exactly as the former recursive walk.

   Shard mode prunes non-FIFO walks to the branches that matter here:
   a down-crossing into a subtree holding none of this shard's nodes,
   or an up-crossing whose remainder holds none, is skipped whole via
   the same subtree-skip a drop uses. Kept entries are prefix-closed
   (a kept entry's predecessor toward the origin is always kept), so
   the hop-by-hop [arrive] accumulation still sees serial-identical
   floats. FIFO walks — the source's replicated data floods — are
   never pruned: their link reservations ([busy]) must advance
   identically on every shard. *)
let run_order t ~cat ~cast ~tx ~fifo order packet =
  let nodes = order.Routes.nodes
  and prevs = order.Routes.prevs
  and links = order.Routes.links
  and skips = order.Routes.skips in
  let below = if fifo then [||] else t.sh_below in
  let n = Array.length nodes in
  let i = ref 0 in
  while !i < n do
    let node = nodes.(!i) and prev = prevs.(!i) and link = links.(!i) in
    let down = link = node in
    let keep =
      Array.length below = 0
      || (if down then below.(node) > 0 else t.sh_total - below.(prev) > 0)
    in
    if not keep then i := !i + skips.(!i)
    else begin
      let at' =
        traverse t ~cat ~cast ~link ~down ~from:prev ~to_:node ~at:t.arrive.(prev) ~tx ~fifo
          packet
      in
      if Float.is_nan at' then i := !i + skips.(!i)
      else begin
        t.arrive.(node) <- at';
        deliver t ~node ~at:at';
        incr i
      end
    end
  done

(* Record an origin cast for the shard exchange: buffered until the
   next conservative sync window, then replayed by every other shard.
   The primary shard also keeps a copy as its tap-stream record. Hosts
   never originate FIFO (data) traffic — that is the source's
   replicated stream ({!multicast_replicated}) — and an emit of one
   would desynchronise link reservations across shards, so it is
   rejected loudly. *)
let note_origin t sh ~from ~cast packet =
  if is_fifo packet then
    invalid_arg "Network: fifo (data) casts in shard mode must use multicast_replicated";
  let e =
    {
      e_at = Sim.Engine.now t.engine;
      e_from = from;
      e_idx = sh.sh_next_idx;
      e_cast = cast;
      e_packet = packet;
      e_disabled = sh.sh_disabled;
    }
  in
  sh.sh_next_idx <- sh.sh_next_idx + 1;
  sh.sh_emits <- e :: sh.sh_emits;
  if sh.sh_observe then sh.sh_obs <- e :: sh.sh_obs;
  e

let multicast t ~from packet =
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    Cost.record_send t.cost cat Cost.Multicast;
    let saved = t.cur_pslot in
    let s = acquire_pslot t packet in
    (match t.shard with
    | Some sh ->
        let e = note_origin t sh ~from ~cast:Ecast_multicast packet in
        t.pwalk.(s) <- (e.e_at, e.e_from, e.e_idx)
    | None -> ());
    t.arrive.(from) <- Sim.Engine.now t.engine;
    run_order t ~cat ~cast:Cost.Multicast ~tx:(tx_of t packet) ~fifo:(is_fifo packet)
      (Routes.flood_order t.routes from)
      packet;
    release_pslot t s;
    t.cur_pslot <- saved
  end

(* The source's data stream under shard mode: statically replicated —
   every shard walks the full (unpruned) flood locally, keeping link
   reservations and per-node arrivals identical everywhere with no
   exchange at all. Only the sender's owner tallies the send and (when
   primary) records the tap stream, so merged artifacts stay serial-
   identical. Serial mode: exactly {!multicast}. *)
let multicast_replicated t ~from packet =
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    (match t.shard with
    | None -> Cost.record_send t.cost cat Cost.Multicast
    | Some sh ->
        if t.sh_owner.(from) = t.sh_me then Cost.record_send t.cost cat Cost.Multicast;
        if sh.sh_observe then begin
          let e =
            {
              e_at = Sim.Engine.now t.engine;
              e_from = from;
              e_idx = sh.sh_next_idx;
              e_cast = Ecast_multicast;
              e_packet = packet;
              e_disabled = [];
            }
          in
          sh.sh_next_idx <- sh.sh_next_idx + 1;
          sh.sh_obs <- e :: sh.sh_obs
        end);
    let saved = t.cur_pslot in
    let s = acquire_pslot t packet in
    (match t.shard with
    | Some sh ->
        let i = sh.sh_rep_idx in
        sh.sh_rep_idx <- i + 1;
        t.pwalk.(s) <- (Sim.Engine.now t.engine, from, -2 - i)
    | None -> ());
    t.arrive.(from) <- Sim.Engine.now t.engine;
    run_order t ~cat ~cast:Cost.Multicast ~tx:(tx_of t packet) ~fifo:(is_fifo packet)
      (Routes.flood_order t.routes from)
      packet;
    release_pslot t s;
    t.cur_pslot <- saved
  end

(* Walk a precomputed unicast path; delivery happens only if every hop
   survives the loss predicate. Returns the arrival time at the path's
   end, or NaN if any hop dropped. *)
let walk_path t ~cat ~cast ~from ~at ~tx ~fifo path packet =
  let hops = path.Routes.hops
  and plinks = path.Routes.plinks
  and pdowns = path.Routes.pdowns in
  let n = Array.length hops in
  let node = ref from and at = ref at and i = ref 0 in
  while (not (Float.is_nan !at)) && !i < n do
    let next = hops.(!i) in
    let at' =
      traverse t ~cat ~cast ~link:plinks.(!i) ~down:pdowns.(!i) ~from:!node ~to_:next
        ~at:!at ~tx ~fifo packet
    in
    if not (Float.is_nan at') then node := next;
    at := at';
    incr i
  done;
  !at

let unicast t ~from ~dst packet =
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    Cost.record_send t.cost cat Cost.Unicast;
    let origin =
      match t.shard with
      | Some sh -> Some (note_origin t sh ~from ~cast:(Ecast_unicast dst) packet)
      | None -> None
    in
    if from <> dst then begin
      let saved = t.cur_pslot in
      let s = acquire_pslot t packet in
      (match origin with
      | Some e -> t.pwalk.(s) <- (e.e_at, e.e_from, e.e_idx)
      | None -> ());
      let path = Routes.path t.routes ~src:from ~dst in
      let at =
        walk_path t ~cat ~cast:Cost.Unicast ~from ~at:(Sim.Engine.now t.engine)
          ~tx:(tx_of t packet) ~fifo:(is_fifo packet) path packet
      in
      if not (Float.is_nan at) then deliver t ~node:dst ~at;
      release_pslot t s;
      t.cur_pslot <- saved
    end
  end

let flood_down t ~cat ~node ~at packet =
  deliver t ~node ~at;
  t.arrive.(node) <- at;
  run_order t ~cat ~cast:Cost.Subcast ~tx:(tx_of t packet) ~fifo:(is_fifo packet)
    (Routes.down_order t.routes node)
    packet

let subcast t ~at:root packet =
  tap t ~from:root packet;
  let cat = Cost.category_of packet in
  Cost.record_send t.cost cat Cost.Subcast;
  let saved = t.cur_pslot in
  let s = acquire_pslot t packet in
  flood_down t ~cat ~node:root ~at:(Sim.Engine.now t.engine) packet;
  release_pslot t s;
  t.cur_pslot <- saved

let relayed_subcast t ~from ~via packet =
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    Cost.record_send t.cost cat Cost.Subcast;
    let origin =
      match t.shard with
      | Some sh -> Some (note_origin t sh ~from ~cast:(Ecast_relayed via) packet)
      | None -> None
    in
    let saved = t.cur_pslot in
    let s = acquire_pslot t packet in
    (match origin with
    | Some e -> t.pwalk.(s) <- (e.e_at, e.e_from, e.e_idx)
    | None -> ());
    (if from = via then flood_down t ~cat ~node:via ~at:(Sim.Engine.now t.engine) packet
     else begin
       let path = Routes.path t.routes ~src:from ~dst:via in
       let at =
         walk_path t ~cat ~cast:Cost.Unicast ~from ~at:(Sim.Engine.now t.engine)
           ~tx:(tx_of t packet) ~fifo:(is_fifo packet) path packet
       in
       if not (Float.is_nan at) then flood_down t ~cat ~node:via ~at packet
     end);
    release_pslot t s;
    t.cur_pslot <- saved
  end

(* Replay a downward DFS order keeping only the branches [scope]
   accepts. Scope predicates come from {!Rdomain}-style recovery-domain
   chains, which are closed under tree ancestry inside the flooded
   subtree: an out-of-scope node has no in-scope descendant, so the
   whole subtree is skipped in O(1) exactly like a dropped crossing.
   The sender [skip] never hears its own cast (matching multicast). *)
let run_scoped t ~cat ~tx ~fifo ~scope ~skip order packet =
  let nodes = order.Routes.nodes
  and prevs = order.Routes.prevs
  and links = order.Routes.links
  and skips = order.Routes.skips in
  let n = Array.length nodes in
  let i = ref 0 in
  while !i < n do
    let node = nodes.(!i) and prev = prevs.(!i) and link = links.(!i) in
    if not (scope node) then i := !i + skips.(!i)
    else begin
      let at' =
        traverse t ~cat ~cast:Cost.Subcast ~link ~down:true ~from:prev ~to_:node
          ~at:t.arrive.(prev) ~tx ~fifo packet
      in
      if Float.is_nan at' then i := !i + skips.(!i)
      else begin
        t.arrive.(node) <- at';
        if node <> skip then deliver t ~node ~at:at';
        incr i
      end
    end
  done

let scoped_cast t ~from ~root ~scope packet =
  (match t.shard with
  | Some _ -> invalid_arg "Network.scoped_cast: not available in shard mode"
  | None -> ());
  if not t.enabled.(from) then ()
  else begin
    tap t ~from packet;
    let cat = Cost.category_of packet in
    Cost.record_send t.cost cat Cost.Subcast;
    let tx = tx_of t packet and fifo = is_fifo packet in
    let saved = t.cur_pslot in
    let s = acquire_pslot t packet in
    (if from = root then begin
       t.arrive.(root) <- Sim.Engine.now t.engine;
       run_scoped t ~cat ~tx ~fifo ~scope ~skip:from (Routes.down_order t.routes root) packet
     end
     else begin
       let path = Routes.path t.routes ~src:from ~dst:root in
       let at =
         walk_path t ~cat ~cast:Cost.Unicast ~from ~at:(Sim.Engine.now t.engine) ~tx ~fifo
           path packet
       in
       if not (Float.is_nan at) then begin
         if scope root then deliver t ~node:root ~at;
         t.arrive.(root) <- at;
         run_scoped t ~cat ~tx ~fifo ~scope ~skip:from (Routes.down_order t.routes root) packet
       end
     end);
    release_pslot t s;
    t.cur_pslot <- saved
  end

(* -- shard-mode control surface ------------------------------------- *)

let enable_shard t ~partition ~me ~observe =
  if Array.length partition.Partition.owner <> Tree.n_nodes t.tree then
    invalid_arg "Network.enable_shard: partition does not match this tree";
  if me < 0 || me >= partition.Partition.n_shards then
    invalid_arg "Network.enable_shard: shard id out of range";
  t.sh_owner <- partition.Partition.owner;
  t.sh_me <- me;
  t.sh_below <- Partition.owned_below partition ~tree:t.tree ~me;
  t.sh_total <- Partition.n_owned partition ~me;
  t.shard <-
    Some
      {
        sh_observe = observe;
        sh_next_idx = 0;
        sh_rep_idx = 0;
        sh_emits = [];
        sh_obs = [];
        sh_disabled = [];
        sh_replaying = false;
        sh_replay_disabled = [];
      }

let owns t v = Array.length t.sh_owner = 0 || t.sh_owner.(v) = t.sh_me

let take_emits t =
  match t.shard with
  | None -> []
  | Some sh ->
      let es = List.rev sh.sh_emits in
      sh.sh_emits <- [];
      es

let take_observations t =
  match t.shard with
  | None -> []
  | Some sh ->
      let os = List.rev sh.sh_obs in
      sh.sh_obs <- [];
      os

(* The firing delivery's serial rank: its walk's cast key plus the
   delivered node's position in the walk's full (unpruned) precomputed
   order — the exact (time, seq) FIFO key the serial engine executes
   same-time deliveries in, reconstructible on any shard because the
   order arrays are static functions of the tree. The O(n) position
   scan runs once per tagged recovery, never on the delivery path. *)
let delivery_rank t =
  match t.shard with
  | None -> None
  | Some _ ->
      if t.cur_deliver_node < 0 || t.cur_deliver_from < 0 then None
      else begin
        let order = Routes.flood_order t.routes t.cur_deliver_from in
        let nodes = order.Routes.nodes in
        let pos = ref (-1) in
        (try
           for i = 0 to Array.length nodes - 1 do
             if nodes.(i) = t.cur_deliver_node then begin
               pos := i;
               raise Exit
             end
           done
         with Exit -> ());
        Some (t.cur_deliver_at, t.cur_deliver_from, t.cur_deliver_idx, !pos)
      end

(* Replay a remote shard's origin cast: the same walk the origin ran,
   started from the emit's recorded send time, with the origin-side
   bookkeeping (tap, send tally, emit capture) suppressed — crossings
   into nodes this shard owns are tallied and deliveries scheduled
   exactly as the serial run would have. All arrival times land at or
   beyond the conservative barrier (>= e_at + lookahead), so the
   engine never sees a past-time event. *)
let apply_emit t e =
  match t.shard with
  | None -> invalid_arg "Network.apply_emit: shard mode not enabled"
  | Some sh ->
      sh.sh_replaying <- true;
      sh.sh_replay_disabled <- e.e_disabled;
      let packet = e.e_packet in
      let cat = Cost.category_of packet in
      let tx = tx_of t packet and fifo = is_fifo packet in
      let saved = t.cur_pslot in
      let s = acquire_pslot t packet in
      t.pwalk.(s) <- (e.e_at, e.e_from, e.e_idx);
      (match e.e_cast with
      | Ecast_multicast ->
          t.arrive.(e.e_from) <- e.e_at;
          run_order t ~cat ~cast:Cost.Multicast ~tx ~fifo
            (Routes.flood_order t.routes e.e_from)
            packet
      | Ecast_unicast dst ->
          if e.e_from <> dst then begin
            let path = Routes.path t.routes ~src:e.e_from ~dst in
            let at =
              walk_path t ~cat ~cast:Cost.Unicast ~from:e.e_from ~at:e.e_at ~tx ~fifo path
                packet
            in
            if not (Float.is_nan at) then deliver t ~node:dst ~at
          end
      | Ecast_relayed via ->
          if e.e_from = via then flood_down t ~cat ~node:via ~at:e.e_at packet
          else begin
            let path = Routes.path t.routes ~src:e.e_from ~dst:via in
            let at =
              walk_path t ~cat ~cast:Cost.Unicast ~from:e.e_from ~at:e.e_at ~tx ~fifo path
                packet
            in
            if not (Float.is_nan at) then flood_down t ~cat ~node:via ~at packet
          end);
      release_pslot t s;
      t.cur_pslot <- saved;
      sh.sh_replaying <- false;
      sh.sh_replay_disabled <- []
