type order = {
  nodes : int array;
  prevs : int array;
  links : int array;
  skips : int array;
  cum : float array;
}

type path = { hops : int array; plinks : int array; pdowns : bool array }

(* Orders are pure functions of the (static) tree, so caching is a
   time/space trade only: evicting and rebuilding an entry yields the
   same arrays and therefore the same simulation. Unbounded per-origin
   memoization was O(n) orders of O(n) entries each — every member
   multicasts session packets, so at 10^4 nodes the flood cache alone
   approached gigabytes. Instead: origin 0 (the data source, by far
   the hottest origin) is pinned forever, and other origins share a
   FIFO of [cache_capacity] slots. *)
let cache_capacity = 64

type cache = {
  tbl : (int, order) Hashtbl.t;
  fifo : int Queue.t; (* insertion order of the evictable (non-0) keys *)
}

let cache_create () = { tbl = Hashtbl.create 64; fifo = Queue.create () }

let cache_add c key v =
  if key <> 0 then begin
    if Queue.length c.fifo >= cache_capacity then
      Hashtbl.remove c.tbl (Queue.pop c.fifo);
    Queue.push key c.fifo
  end;
  Hashtbl.replace c.tbl key v

(* LCA paths are cheap to rebuild, so the path cache is simply reset
   when it fills rather than tracking eviction order. *)
let paths_capacity = 4096

type t = {
  tree : Tree.t;
  delays : float array;
  neighbors : int array array;
  children : int array array;
  sizes : int array; (* subtree node counts *)
  floods : cache; (* per multicast origin *)
  downs : cache; (* per subcast root *)
  paths : (int, path) Hashtbl.t; (* key: src * n_nodes + dst *)
}

let empty_order = { nodes = [||]; prevs = [||]; links = [||]; skips = [||]; cum = [||] }

let create ~tree ~delays =
  let n = Tree.n_nodes tree in
  if Array.length delays <> n then invalid_arg "Routes.create: delays size";
  let children = Array.init n (fun v -> Array.of_list (Tree.children tree v)) in
  let neighbors =
    Array.init n (fun v ->
        if v = 0 then children.(v)
        else Array.append [| Tree.parent tree v |] children.(v))
  in
  let sizes = Array.make n 1 in
  (* Children DFS; every node id is visited once, so an explicit
     post-order accumulation over a preorder stack is enough. *)
  let rec accumulate v =
    Array.iter
      (fun c ->
        accumulate c;
        sizes.(v) <- sizes.(v) + sizes.(c))
      children.(v)
  in
  accumulate 0;
  {
    tree;
    delays;
    neighbors;
    children;
    sizes;
    floods = cache_create ();
    downs = cache_create ();
    paths = Hashtbl.create 64;
  }

let tree t = t.tree

let neighbors t v = t.neighbors.(v)

let children t v = t.children.(v)

let subtree_size t v = t.sizes.(v)

(* Shared DFS-preorder builder. [succ v prev] enumerates the nodes to
   enter from [v], in the exact order the former recursive list walk
   visited them, so packet-level event ordering is preserved. *)
let build_order ~n_entries ~roots ~origin ~succ t =
  let nodes = Array.make n_entries 0 in
  let prevs = Array.make n_entries 0 in
  let links = Array.make n_entries 0 in
  let skips = Array.make n_entries 0 in
  let cum = Array.make n_entries 0. in
  let idx = ref 0 in
  let rec visit ~prev ~acc v =
    let i = !idx in
    incr idx;
    let link = if Tree.parent t.tree v = prev then v else prev in
    let acc = acc +. t.delays.(link) in
    nodes.(i) <- v;
    prevs.(i) <- prev;
    links.(i) <- link;
    cum.(i) <- acc;
    Array.iter (fun nb -> if nb <> v && nb <> prev then visit ~prev:v ~acc nb) (succ v);
    skips.(i) <- !idx - i
  in
  Array.iter (fun r -> if r <> origin then visit ~prev:origin ~acc:0. r) roots;
  assert (!idx = n_entries);
  { nodes; prevs; links; skips; cum }

let flood_order t origin =
  match Hashtbl.find_opt t.floods.tbl origin with
  | Some o -> o
  | None ->
      let o =
        build_order t
          ~n_entries:(Tree.n_nodes t.tree - 1)
          ~roots:t.neighbors.(origin) ~origin
          ~succ:(fun v -> t.neighbors.(v))
      in
      cache_add t.floods origin o;
      o

let down_order t root =
  match Hashtbl.find_opt t.downs.tbl root with
  | Some o -> o
  | None ->
      let o =
        if t.sizes.(root) = 1 then empty_order
        else
          build_order t ~n_entries:(t.sizes.(root) - 1) ~roots:t.children.(root)
            ~origin:root
            ~succ:(fun v -> t.children.(v))
      in
      cache_add t.downs root o;
      o

let build_path t ~src ~dst =
  match Tree.path t.tree src dst with
  | [] | [ _ ] -> { hops = [||]; plinks = [||]; pdowns = [||] }
  | _ :: hops_list ->
      let hops = Array.of_list hops_list in
      let n = Array.length hops in
      let plinks = Array.make n 0 in
      let pdowns = Array.make n false in
      let prev = ref src in
      for i = 0 to n - 1 do
        let next = hops.(i) in
        let down = Tree.parent t.tree next = !prev in
        plinks.(i) <- (if down then next else !prev);
        pdowns.(i) <- down;
        prev := next
      done;
      { hops; plinks; pdowns }

let path t ~src ~dst =
  let key = (src * Tree.n_nodes t.tree) + dst in
  match Hashtbl.find_opt t.paths key with
  | Some p -> p
  | None ->
      if Hashtbl.length t.paths >= paths_capacity then Hashtbl.reset t.paths;
      let p = build_path t ~src ~dst in
      Hashtbl.replace t.paths key p;
      p
