(** Transmission-cost accounting.

    The paper (Section 4.4, Figure 5) charges one cost unit each time a
    packet crosses one link of the multicast tree, and splits the total
    into retransmission overhead vs. control overhead, distinguishing
    unicast from multicast control. This module tallies link crossings
    and send events per packet category and cast mode. *)

type category = Data | Request | Reply | Exp_request | Exp_reply | Session

type cast = Unicast | Multicast | Subcast

type t

val create : unit -> t

val category_of : Packet.t -> category

val record_send : t -> category -> cast -> unit
(** One packet handed to the network. *)

val record_crossing : t -> category -> cast -> unit
(** One link traversal. *)

val sends : t -> category -> cast -> int

val crossings : t -> category -> cast -> int

val total_crossings : t -> category -> int
(** Across all cast modes. *)

val retransmission_overhead : t -> int
(** Link crossings of payload-carrying recovery packets
    (replies, expedited or not). *)

val control_overhead : t -> multicast:bool -> int
(** Link crossings of recovery control packets (requests and expedited
    requests); [multicast:true] counts multicast crossings,
    [multicast:false] the unicast ones. Session traffic is excluded —
    it is identical under both protocols (see DESIGN.md §4). *)

val all_categories : category list

val pp : Format.formatter -> t -> unit

val merge : t -> t -> t
(** Element-wise sum of two cost tables — combining per-shard tallies
    into the run total. *)
