type t = {
  n_shards : int;
  owner : int array;
  cut_links : int list;
  lookahead : float;
}

(* Members (the source plus the leaf receivers) carry the simulation's
   work — protocol hosts, deliveries, per-member timers — so balance is
   by member weight; routers ride along at weight zero and land with
   whichever shard their post-order position puts them in. *)
let weight tree node = if node = 0 || Tree.is_leaf tree node then 1 else 0

let make ~tree ~delay ~shards =
  if shards < 1 then invalid_arg "Partition.make: shards must be >= 1";
  let n = Tree.n_nodes tree in
  let owner = Array.make n 0 in
  let total_weight = ref 0 in
  for v = 0 to n - 1 do
    total_weight := !total_weight + weight tree v
  done;
  let k = max 1 (min shards !total_weight) in
  (* Ceiling target so the last shard (which also takes the root) is
     the one that can come up short, never an overflow shard k. *)
  let target = (!total_weight + k - 1) / k in
  let shard = ref 0 and acc = ref 0 in
  (* Iterative DFS post-order from the root: children pushed in reverse
     so they pop — and therefore complete — in [Tree.children] order. *)
  let stack = ref [ (0, false) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, visited) :: rest ->
        stack := rest;
        if visited then begin
          owner.(v) <- !shard;
          acc := !acc + weight tree v;
          if !acc >= target && !shard < k - 1 then begin
            incr shard;
            acc := 0
          end
        end
        else begin
          stack := (v, true) :: !stack;
          List.iter (fun c -> stack := (c, false) :: !stack) (List.rev (Tree.children tree v))
        end
  done;
  let cut_links = ref [] in
  let lookahead = ref infinity in
  for v = 1 to n - 1 do
    if owner.(v) <> owner.(Tree.parent tree v) then begin
      cut_links := v :: !cut_links;
      if delay v < !lookahead then lookahead := delay v
    end
  done;
  { n_shards = k; owner; cut_links = List.rev !cut_links; lookahead = !lookahead }

let owned_below t ~tree ~me =
  let n = Tree.n_nodes tree in
  let below = Array.make n 0 in
  (* Post-order accumulation: children before parents. *)
  let stack = ref [ (0, false) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, visited) :: rest ->
        stack := rest;
        if visited then begin
          let own = if t.owner.(v) = me then 1 else 0 in
          below.(v) <-
            List.fold_left (fun acc c -> acc + below.(c)) own (Tree.children tree v)
        end
        else begin
          stack := (v, true) :: !stack;
          List.iter (fun c -> stack := (c, false) :: !stack) (Tree.children tree v)
        end
  done;
  below

let n_owned t ~me = Array.fold_left (fun acc o -> if o = me then acc + 1 else acc) 0 t.owner
