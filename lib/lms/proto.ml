type t = {
  network : Net.Network.t;
  n_packets : int;
  period : float;
  hosts : (int * Host.t) list;
  repliers : int array;
  refresh_period : float;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
}

let deploy ~network ~n_packets ~period ?(refresh_period = 10.) () =
  let tree = Net.Network.tree network in
  let counters = Stats.Counters.create ~n_nodes:(Net.Tree.n_nodes tree) in
  let recoveries = Stats.Recovery.create () in
  let repliers = Routing.designate tree ~alive:(fun r -> Net.Network.is_enabled network r) in
  let route ~from = Routing.route tree ~repliers ~from in
  let member node =
    let host = Host.create ~network ~self:node ~n_packets ~route ~counters ~recoveries in
    Net.Network.on_receive network node (Host.on_packet host);
    (node, host)
  in
  let nodes = 0 :: Array.to_list (Net.Tree.receivers tree) in
  {
    network;
    n_packets;
    period;
    hosts = List.map member nodes;
    repliers;
    refresh_period;
    counters;
    recoveries;
  }

let host t node = List.assoc node t.hosts

let members t = t.hosts

let repliers t = t.repliers

let counters t = t.counters

let recoveries t = t.recoveries

let network t = t.network

let detected t = List.fold_left (fun acc (_, h) -> acc + Host.detected_losses h) 0 t.hosts

let end_time t ~warmup ~tail = warmup +. (float_of_int t.n_packets *. t.period) +. tail

(* Refresh the soft replier state in place so hosts' [route] closures
   observe it immediately. *)
let refresh t =
  let fresh =
    Routing.designate (Net.Network.tree t.network) ~alive:(fun r ->
        Net.Network.is_enabled t.network r)
  in
  Array.blit fresh 0 t.repliers 0 (Array.length fresh)

let start ?(streaming = false) t ~warmup ~tail =
  let engine = Net.Network.engine t.network in
  let horizon = end_time t ~warmup ~tail in
  let source = host t 0 in
  (* LMS sends on an unjittered grid, so the streamed producer is
     always exact (see [Sim.Stream]). *)
  Sim.Stream.schedule engine ~streaming ~n:t.n_packets
    ~at:(fun seq -> warmup +. (float_of_int (seq - 1) *. t.period))
    ~fire:(fun seq ->
      Host.note_sent source ~seq;
      Net.Network.multicast t.network ~from:0
        { Net.Packet.sender = 0; payload = Net.Packet.Data { seq } });
  (* Source heartbeat for tail-loss detection. *)
  let rec heartbeat () =
    if Sim.Engine.now engine <= horizon then begin
      Stats.Counters.bump t.counters ~node:0 Stats.Counters.Sess;
      Net.Network.multicast t.network ~from:0
        {
          Net.Packet.sender = 0;
          payload =
            Net.Packet.Session
              {
                origin = 0;
                sent_at = Sim.Engine.now engine;
                max_seqs = Host.max_seqs source;
                echoes = [];
              };
        };
      ignore (Sim.Engine.schedule engine ~after:1.0 heartbeat)
    end
  in
  ignore (Sim.Engine.schedule engine ~after:1.0 heartbeat);
  (* Soft-state replier refresh. *)
  let rec refresher () =
    if Sim.Engine.now engine <= horizon then begin
      refresh t;
      ignore (Sim.Engine.schedule engine ~after:t.refresh_period refresher)
    end
  in
  ignore (Sim.Engine.schedule engine ~after:t.refresh_period refresher)
