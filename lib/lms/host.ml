type retry_state = { mutable attempt : int; mutable timer : Sim.Engine.timer option }

(* Windowed delivery map, same scheme as [Srm.Host]: byte [i] covers
   seq [base + 1 + i]; seqs at or below [base] were retired by the
   steady controller (which only retires fully-delivered prefixes) and
   read as delivered. *)
type stream_state = {
  mutable received : Bytes.t;
  mutable base : int;
  mutable prefix : int;
  mutable max_seq : int;
}

let initial_window = 4096

let win_get st ~seq =
  seq <= st.base
  ||
  let i = seq - st.base - 1 in
  i < Bytes.length st.received && Bytes.get st.received i = '\001'

let rec advance_prefix st len =
  let i = st.prefix - st.base in
  if i < len && Bytes.get st.received i = '\001' then begin
    st.prefix <- st.prefix + 1;
    advance_prefix st len
  end

let win_set ~n_packets st ~seq =
  if seq > st.base then begin
    let i = seq - st.base - 1 in
    let len = Bytes.length st.received in
    let len =
      if i >= len then begin
        let len' = min (n_packets - st.base) (max (i + 1) (max (2 * len) 64)) in
        let b = Bytes.make len' '\000' in
        Bytes.blit st.received 0 b 0 len;
        st.received <- b;
        len'
      end
      else len
    in
    Bytes.set st.received i '\001';
    if seq = st.prefix + 1 then advance_prefix st len
  end

type t = {
  network : Net.Network.t;
  self : int;
  n_packets : int;
  rng : Sim.Rng.t;
  route : from:int -> (int * int) option;
  streams : (int, stream_state) Hashtbl.t;
  detect_info : (int * int, float) Hashtbl.t;
  retries : (int * int, retry_state) Hashtbl.t;
  mutable n_detected : int;
  counters : Stats.Counters.t;
  recoveries : Stats.Recovery.t;
}

let max_forward_ttl = 24

let engine t = Net.Network.engine t.network

let now t = Sim.Engine.now (engine t)

let self t = t.self

let stream t src =
  match Hashtbl.find_opt t.streams src with
  | Some s -> s
  | None ->
      let s =
        {
          received = Bytes.make (min t.n_packets initial_window) '\000';
          base = 0;
          prefix = 0;
          max_seq = 0;
        }
      in
      Hashtbl.replace t.streams src s;
      s

let has_packet ?(src = 0) t ~seq =
  seq >= 1 && seq <= t.n_packets && win_get (stream t src) ~seq

let detected_losses t = t.n_detected

let max_seq ?(src = 0) t = (stream t src).max_seq

let max_seqs t =
  Hashtbl.fold
    (fun src st acc -> if st.max_seq > 0 then (src, st.max_seq) :: acc else acc)
    t.streams []

let create ~network ~self ~n_packets ~route ~counters ~recoveries =
  {
    network;
    self;
    n_packets;
    rng = Sim.Rng.split (Sim.Engine.rng (Net.Network.engine network));
    route;
    streams = Hashtbl.create 4;
    detect_info = Hashtbl.create 64;
    retries = Hashtbl.create 64;
    n_detected = 0;
    counters;
    recoveries;
  }

(* --- requests -------------------------------------------------------- *)

let send_request t ~src seq =
  match t.route ~from:t.self with
  | None -> ()
  | Some (turning_point, replier) ->
      Stats.Counters.bump t.counters ~node:t.self Stats.Counters.Exp_rqst;
      let packet =
        {
          Net.Packet.sender = t.self;
          payload =
            Net.Packet.Exp_request
              {
                src;
                seq;
                requestor = t.self;
                d_qs = 0.;
                replier;
                turning_point = Some turning_point;
              };
        }
      in
      if replier = 0 || replier = t.self then
        (* walk reached the source (or degenerate self-route) *)
        Net.Network.unicast t.network ~from:t.self ~dst:0 packet
      else Net.Network.unicast t.network ~from:t.self ~dst:replier packet

let rec arm_retry t ~src seq st =
  (* LMS has no suppression to wait for: retry on a timeout scaled by
     the round trip to the source, doubling each attempt. *)
  let d = Net.Network.dist t.network src t.self in
  let timeout = Float.max (4. *. d) 0.2 *. Float.of_int (1 lsl min st.attempt 16) in
  st.timer <-
    Some
      (Sim.Engine.schedule (engine t) ~after:timeout (fun () ->
           if not (has_packet ~src t ~seq) then begin
             st.attempt <- st.attempt + 1;
             send_request t ~src seq;
             arm_retry t ~src seq st
           end))

let detect_loss t ~src seq =
  if not (has_packet ~src t ~seq || Hashtbl.mem t.retries (src, seq)) then begin
    if not (Hashtbl.mem t.detect_info (src, seq)) then begin
      Hashtbl.replace t.detect_info (src, seq) (now t);
      t.n_detected <- t.n_detected + 1
    end;
    let st = { attempt = 0; timer = None } in
    Hashtbl.replace t.retries (src, seq) st;
    (* small jitter so co-detecting receivers do not fire in lockstep *)
    ignore
      (Sim.Engine.schedule (engine t) ~after:(Sim.Rng.float t.rng 0.005) (fun () ->
           if not (has_packet ~src t ~seq) then begin
             send_request t ~src seq;
             arm_retry t ~src seq st
           end))
  end

let seq_exists t ~src m =
  let stream = stream t src in
  if m > stream.max_seq then begin
    let first = stream.max_seq + 1 in
    stream.max_seq <- min m t.n_packets;
    for seq = first to stream.max_seq do
      if not (has_packet ~src t ~seq) then detect_loss t ~src seq
    done
  end

let obtain t ~src seq ~repaired =
  if not (has_packet ~src t ~seq) then begin
    win_set ~n_packets:t.n_packets (stream t src) ~seq;
    (match Hashtbl.find_opt t.retries (src, seq) with
    | Some st ->
        (match st.timer with Some timer -> Sim.Engine.cancel timer | None -> ());
        Hashtbl.remove t.retries (src, seq)
    | None -> ());
    match Hashtbl.find_opt t.detect_info (src, seq) with
    | Some detected_at ->
        Stats.Recovery.add t.recoveries
          {
            Stats.Recovery.node = t.self;
            src;
            seq;
            detected_at;
            recovered_at = now t;
            rounds = 0;
            expedited = false;
            repaired;
          }
    | None -> ()
  end

let note_sent ?(src = 0) t ~seq =
  if seq >= 1 && seq <= t.n_packets then begin
    let stream = stream t src in
    win_set ~n_packets:t.n_packets stream ~seq;
    if seq > stream.max_seq then stream.max_seq <- seq
  end

let delivered_prefix ?(src = 0) t = (stream t src).prefix

let retired_floor ?(src = 0) t = (stream t src).base

(* Steady-state retirement (see [Srm.Host.retire_below]): everything
   at or below the clamped horizon is delivered, so its retry entry is
   gone already ([obtain] removes it) and only the detection-time table
   needs sweeping alongside the window shift. *)
let retire_below t ~upto =
  Hashtbl.iter
    (fun _src st ->
      let upto = min upto st.prefix in
      if upto > st.base then begin
        let len = Bytes.length st.received in
        let shift = upto - st.base in
        if shift >= len then Bytes.fill st.received 0 len '\000'
        else begin
          Bytes.blit st.received shift st.received 0 (len - shift);
          Bytes.fill st.received (len - shift) shift '\000'
        end;
        st.base <- upto
      end)
    t.streams;
  let retired (src, seq) =
    match Hashtbl.find_opt t.streams src with Some st -> seq <= st.base | None -> false
  in
  let dead = Hashtbl.fold (fun k _ acc -> if retired k then k :: acc else acc) t.detect_info [] in
  List.iter (Hashtbl.remove t.detect_info) dead

let publish_metrics t registry =
  Obs.Registry.incr ~by:t.n_detected registry "lms/losses_detected";
  Obs.Registry.incr ~by:(Hashtbl.length t.retries) registry "lms/retries_open_at_end";
  Hashtbl.iter
    (fun _ (st : retry_state) ->
      Obs.Registry.observe registry "lms/retry_attempts" (float_of_int st.attempt))
    t.retries

(* --- replier side ----------------------------------------------------- *)

let answer t ~src ~seq ~requestor ~turning_point ~ttl =
  if has_packet ~src t ~seq then begin
    Stats.Counters.bump t.counters ~node:t.self Stats.Counters.Exp_repl;
    let reply =
      {
        Net.Packet.sender = t.self;
        payload =
          Net.Packet.Reply
            {
              src;
              seq;
              requestor;
              d_qs = 0.;
              replier = t.self;
              d_rq = 0.;
              expedited = false;
              turning_point = Some turning_point;
            };
      }
    in
    match turning_point with
    | tp when tp = t.self || ttl < 0 -> Net.Network.multicast t.network ~from:t.self reply
    | tp -> Net.Network.relayed_subcast t.network ~from:t.self ~via:tp reply
  end
  else if ttl > 0 then begin
    (* We share the loss: escape the lossy subtree by re-forwarding
       from our own position, keeping the original requestor. *)
    match t.route ~from:t.self with
    | None -> ()
    | Some (turning_point, replier) ->
        Stats.Counters.bump t.counters ~node:t.self Stats.Counters.Exp_rqst;
        Net.Network.unicast t.network ~from:t.self
          ~dst:(if replier = 0 then 0 else replier)
          {
            Net.Packet.sender = t.self;
            payload =
              Net.Packet.Exp_request
                {
                  src;
                  seq;
                  requestor;
                  d_qs = float_of_int (ttl - 1);
                  replier;
                  turning_point = Some turning_point;
                };
          }
  end

let on_packet t (p : Net.Packet.t) =
  match p.payload with
  | Net.Packet.Data { seq } ->
      let src = p.sender in
      seq_exists t ~src (seq - 1);
      obtain t ~src seq ~repaired:false;
      let stream = stream t src in
      if seq > stream.max_seq then stream.max_seq <- seq
  | Net.Packet.Exp_request { src; seq; requestor; d_qs; replier = _; turning_point } ->
      let ttl =
        (* the TTL rides the (otherwise unused) d_qs annotation *)
        if d_qs > 0. then int_of_float d_qs else max_forward_ttl
      in
      let turning_point = Option.value turning_point ~default:t.self in
      if requestor <> t.self then answer t ~src ~seq ~requestor ~turning_point ~ttl
  | Net.Packet.Reply { src; seq; _ } ->
      seq_exists t ~src seq;
      obtain t ~src seq ~repaired:true
  | Net.Packet.Session { max_seqs; _ } ->
      (* source heartbeat: announced packets may still be in flight;
         wait out one source-path delay before declaring losses *)
      List.iter
        (fun (src, m) ->
          if m > (stream t src).max_seq then begin
            let grace = Net.Network.dist t.network src t.self +. 0.05 in
            ignore
              (Sim.Engine.schedule (engine t) ~after:grace (fun () -> seq_exists t ~src m))
          end)
        max_seqs
  | Net.Packet.Request _ -> ()
