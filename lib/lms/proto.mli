(** Deploying LMS on a simulated multicast group.

    Routers get designated repliers at deploy time ({!Routing.designate})
    and re-designate periodically — the soft-state refresh whose
    latency is LMS's weakness under membership churn (CESRM paper,
    Sections 3.3 and 5). Crash a member with [Net.Network.set_enabled];
    stale replier state then blackholes that subtree's requests until
    the next refresh. *)

type t

val deploy :
  network:Net.Network.t ->
  n_packets:int ->
  period:float ->
  ?refresh_period:float ->
  unit ->
  t
(** Default refresh period: 10 s. *)

val start : ?streaming:bool -> t -> warmup:float -> tail:float -> unit
(** Data schedule as in [Srm.Proto.start]; the source additionally
    multicasts a 1 s heartbeat carrying its highest sequence number
    (tail-loss detection). [streaming] produces sends lazily (always
    exact here — the LMS grid is unjittered). *)

val end_time : t -> warmup:float -> tail:float -> float

val host : t -> int -> Host.t

val members : t -> (int * Host.t) list

val repliers : t -> int array
(** The live replier table (per node; [-1] where none). *)

val counters : t -> Stats.Counters.t

val recoveries : t -> Stats.Recovery.t

val network : t -> Net.Network.t

val detected : t -> int
(** Losses detected across members. *)
