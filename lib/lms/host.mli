(** An LMS group member.

    Loss detection mirrors SRM's (sequence gaps plus source heartbeats
    carrying the highest sequence number), but recovery is
    router-directed: a request is unicast along the tree to the
    designated replier returned by {!Routing.route}, the replier
    immediately answers with a retransmission relayed through the
    turning point and subcast below it, and the requestor retries with
    exponential back-off if nothing arrives. There is no suppression
    machinery — requests are unicast, so duplicates cannot arise.

    A replier that shares the loss re-forwards the request from its own
    position (bounded by a TTL), which is how LMS escapes a lossy
    subtree. *)

type t

val create :
  network:Net.Network.t ->
  self:int ->
  n_packets:int ->
  route:(from:int -> (int * int) option) ->
  counters:Stats.Counters.t ->
  recoveries:Stats.Recovery.t ->
  t
(** [route] reads the proto's live replier table, so refreshes take
    effect immediately. *)

val on_packet : t -> Net.Packet.t -> unit

val note_sent : ?src:int -> t -> seq:int -> unit

val has_packet : ?src:int -> t -> seq:int -> bool

val detected_losses : t -> int

val max_seq : ?src:int -> t -> int
(** Highest sequence number seen (for a source: highest sent). *)

val max_seqs : t -> (int * int) list

val delivered_prefix : ?src:int -> t -> int
(** Contiguous delivered prefix of [src]'s stream. *)

val retired_floor : ?src:int -> t -> int

val retire_below : t -> upto:int -> unit
(** Steady-state retirement, as in [Srm.Host.retire_below]: drop
    per-packet state at or below [upto], clamped to each stream's own
    delivered prefix. Retired packets still answer [has_packet]. *)

val self : t -> int

val publish_metrics : t -> Obs.Registry.t -> unit
(** Accumulate this member's detection and retry state into the
    group-wide ["lms/"] metrics (pull-based; call once per member). *)
