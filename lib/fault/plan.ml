type event =
  | Link_down of { link : int; from_ : float; until : float }
  | Link_jitter of { link : int; from_ : float; until : float; max_jitter : float }
  | Link_dup of { link : int; from_ : float; until : float }
  | Crash of { node : int; at : float; restart_at : float option }
  | Partition of { root : int; from_ : float; until : float }

type t = { name : string; events : event list }

let make ?(name = "anonymous") events = { name; events }

let n_events t = List.length t.events

(* --- validation ---------------------------------------------------- *)

let check_window ~what ~from_ ~until =
  if not (from_ >= 0. && from_ < until) then
    Error (Printf.sprintf "%s: window [%g, %g) is not ordered with non-negative start" what from_ until)
  else Ok ()

let check_link ~tree ~what link =
  if link >= 1 && link < Net.Tree.n_nodes tree then Ok ()
  else Error (Printf.sprintf "%s: %d does not name a tree link" what link)

let validate_event ~tree = function
  | Link_down { link; from_; until } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"link_down" link in
      check_window ~what:"link_down" ~from_ ~until
  | Link_jitter { link; from_; until; max_jitter } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"link_jitter" link in
      let* () = check_window ~what:"link_jitter" ~from_ ~until in
      if max_jitter > 0. then Ok () else Error "link_jitter: max_jitter must be positive"
  | Link_dup { link; from_; until } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"link_dup" link in
      check_window ~what:"link_dup" ~from_ ~until
  | Crash { node; at; restart_at } ->
      if not (node >= 1 && node < Net.Tree.n_nodes tree && Net.Tree.is_leaf tree node) then
        Error (Printf.sprintf "crash: node %d is not a receiver (routers cannot crash)" node)
      else if at < 0. then Error "crash: time must be non-negative"
      else begin
        match restart_at with
        | Some r when r <= at -> Error "crash: restart_at must be after at"
        | _ -> Ok ()
      end
  | Partition { root; from_; until } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"partition" root in
      check_window ~what:"partition" ~from_ ~until

let validate ~tree t =
  let rec go = function
    | [] -> Ok t
    | e :: rest -> ( match validate_event ~tree e with Ok () -> go rest | Error _ as err -> err)
  in
  match go t.events with
  | Ok _ as ok -> ok
  | Error msg -> Error (Printf.sprintf "plan %S: %s" t.name msg)

(* --- compilation ---------------------------------------------------- *)

let compile ~network ?(on_crash = fun ~node:_ -> ()) ?(on_restart = fun ~node:_ -> ()) t =
  (match validate ~tree:(Net.Network.tree network) t with
  | Ok _ -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Fault.Plan.compile: %s" msg));
  let engine = Net.Network.engine network in
  List.iter
    (fun event ->
      match event with
      | Link_down { link; from_; until } -> Net.Network.add_link_down network ~link ~from_ ~until
      | Link_jitter { link; from_; until; max_jitter } ->
          Net.Network.add_link_jitter network ~link ~from_ ~until ~max_jitter
      | Link_dup { link; from_; until } -> Net.Network.add_link_dup network ~link ~from_ ~until
      | Partition { root; from_; until } ->
          (* A subtree partition is an outage of the link above its
             root: nothing crosses in either direction, so the subtree
             recovers among itself (SRM local recovery) until heal. *)
          Net.Network.add_link_down network ~link:root ~from_ ~until
      | Crash { node; at; restart_at } ->
          ignore
            (Sim.Engine.schedule_at engine ~at (fun () ->
                 Net.Network.set_enabled network node false;
                 on_crash ~node));
          Option.iter
            (fun at ->
              ignore
                (Sim.Engine.schedule_at engine ~at (fun () ->
                     Net.Network.set_enabled network node true;
                     on_restart ~node)))
            restart_at)
    t.events

(* --- serialization -------------------------------------------------- *)

let event_to_json event =
  let open Obs.Json in
  match event with
  | Link_down { link; from_; until } ->
      Obj [ ("kind", Str "link_down"); ("link", int link); ("from", Num from_); ("until", Num until) ]
  | Link_jitter { link; from_; until; max_jitter } ->
      Obj
        [
          ("kind", Str "link_jitter");
          ("link", int link);
          ("from", Num from_);
          ("until", Num until);
          ("max_jitter", Num max_jitter);
        ]
  | Link_dup { link; from_; until } ->
      Obj [ ("kind", Str "link_dup"); ("link", int link); ("from", Num from_); ("until", Num until) ]
  | Crash { node; at; restart_at } ->
      Obj
        [
          ("kind", Str "crash");
          ("node", int node);
          ("at", Num at);
          ("restart_at", (match restart_at with None -> Null | Some r -> Num r));
        ]
  | Partition { root; from_; until } ->
      Obj
        [ ("kind", Str "partition"); ("root", int root); ("from", Num from_); ("until", Num until) ]

let to_json t =
  let open Obs.Json in
  Obj [ ("name", Str t.name); ("events", Arr (List.map event_to_json t.events)) ]

let event_of_json json =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let num field =
    match member field json with
    | Some (Num x) -> Ok x
    | _ -> Error (Printf.sprintf "event %s: expected a number" field)
  in
  let int_field field =
    let* x = num field in
    if Float.is_integer x then Ok (int_of_float x)
    else Error (Printf.sprintf "event %s: expected an integer" field)
  in
  match member "kind" json with
  | Some (Str "link_down") ->
      let* link = int_field "link" in
      let* from_ = num "from" in
      let* until = num "until" in
      Ok (Link_down { link; from_; until })
  | Some (Str "link_jitter") ->
      let* link = int_field "link" in
      let* from_ = num "from" in
      let* until = num "until" in
      let* max_jitter = num "max_jitter" in
      Ok (Link_jitter { link; from_; until; max_jitter })
  | Some (Str "link_dup") ->
      let* link = int_field "link" in
      let* from_ = num "from" in
      let* until = num "until" in
      Ok (Link_dup { link; from_; until })
  | Some (Str "crash") ->
      let* node = int_field "node" in
      let* at = num "at" in
      let* restart_at =
        match member "restart_at" json with
        | Some Null | None -> Ok None
        | Some (Num r) -> Ok (Some r)
        | Some _ -> Error "event restart_at: expected a number or null"
      in
      Ok (Crash { node; at; restart_at })
  | Some (Str "partition") ->
      let* root = int_field "root" in
      let* from_ = num "from" in
      let* until = num "until" in
      Ok (Partition { root; from_; until })
  | Some (Str kind) -> Error (Printf.sprintf "unknown fault event kind %S" kind)
  | _ -> Error "event: missing kind"

let of_json json =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let* name =
    match member "name" json with
    | Some (Str s) -> Ok s
    | None -> Ok "anonymous"
    | Some _ -> Error "name: expected a string"
  in
  let* events =
    match member "events" json with
    | Some (Arr items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* e = event_of_json item in
            Ok (e :: acc))
          items (Ok [])
    | _ -> Error "events: expected an array"
  in
  Ok { name; events }

let save t ~file = Obs.Json.save ~pretty:true (to_json t) ~file

let load file =
  match Obs.Json.parse_file file with
  | Error _ as err -> err
  | Ok json -> of_json json

(* --- canned plans ---------------------------------------------------- *)

let canned_names = [ "partition-heal"; "link-flap"; "crash-replier"; "jitter-reorder"; "dup-burst" ]

(* Deterministic topology probes: the deepest receiver (the natural
   requestor — longest source path), the shallowest receiver (the
   natural replier — closest to the source), and the root child whose
   subtree is largest (the heaviest branch to partition). Ties break
   toward smaller ids. *)
let deepest_receiver tree =
  Array.fold_left
    (fun best r -> if Net.Tree.depth tree r > Net.Tree.depth tree best then r else best)
    (Net.Tree.receivers tree).(0) (Net.Tree.receivers tree)

let shallowest_receiver tree =
  Array.fold_left
    (fun best r -> if Net.Tree.depth tree r < Net.Tree.depth tree best then r else best)
    (Net.Tree.receivers tree).(0) (Net.Tree.receivers tree)

let heaviest_branch tree =
  match Net.Tree.children tree 0 with
  | [] -> invalid_arg "Fault.Plan.canned: root has no children"
  | first :: _ as cs ->
      List.fold_left
        (fun best c ->
          if
            List.length (Net.Tree.subtree_nodes tree c)
            > List.length (Net.Tree.subtree_nodes tree best)
          then c
          else best)
        first cs

let canned ~tree ~warmup ~duration name =
  let w = warmup and d = duration in
  let at f = w +. (f *. d) in
  match name with
  | "partition-heal" ->
      Some
        (make ~name
           [ Partition { root = heaviest_branch tree; from_ = at 0.25; until = at 0.5 } ])
  | "link-flap" ->
      let link = deepest_receiver tree in
      Some
        (make ~name
           [
             Link_down { link; from_ = at 0.2; until = at 0.25 };
             Link_down { link; from_ = at 0.4; until = at 0.45 };
             Link_down { link; from_ = at 0.6; until = at 0.65 };
           ])
  | "crash-replier" ->
      Some
        (make ~name
           [
             Crash
               { node = shallowest_receiver tree; at = at 0.3; restart_at = Some (at 0.6) };
           ])
  | "jitter-reorder" ->
      Some
        (make ~name
           [
             Link_jitter
               { link = deepest_receiver tree; from_ = at 0.2; until = at 0.8; max_jitter = 0.05 };
             Link_jitter
               { link = heaviest_branch tree; from_ = at 0.3; until = at 0.7; max_jitter = 0.02 };
           ])
  | "dup-burst" ->
      Some
        (make ~name
           [
             Link_dup { link = deepest_receiver tree; from_ = at 0.3; until = at 0.6 };
             Link_dup { link = heaviest_branch tree; from_ = at 0.3; until = at 0.6 };
           ])
  | _ -> None
