type event =
  | Link_down of { link : int; from_ : float; until : float }
  | Link_jitter of { link : int; from_ : float; until : float; max_jitter : float }
  | Link_dup of { link : int; from_ : float; until : float }
  | Crash of { node : int; at : float; restart_at : float option }
  | Partition of { root : int; from_ : float; until : float }
  | Join of { node : int; at : float }
  | Leave of { node : int; at : float }
  | Rejoin of { node : int; at : float }

type t = { name : string; events : event list }

let make ?(name = "anonymous") events = { name; events }

let n_events t = List.length t.events

let has_churn t =
  List.exists
    (function Join _ | Leave _ | Rejoin _ -> true | _ -> false)
    t.events

(* Nodes a [Join] event excludes from the group at time 0 — the late
   joiners. The runner seeds the oracle's membership timeline with
   them before the engine starts. *)
let initial_absentees t =
  List.sort_uniq compare
    (List.filter_map (function Join { node; _ } -> Some node | _ -> None) t.events)

(* --- validation ---------------------------------------------------- *)

let check_window ~what ~from_ ~until =
  if not (from_ >= 0. && from_ < until) then
    Error (Printf.sprintf "%s: window [%g, %g) is not ordered with non-negative start" what from_ until)
  else Ok ()

let check_link ~tree ~what link =
  if link >= 1 && link < Net.Tree.n_nodes tree then Ok ()
  else Error (Printf.sprintf "%s: %d does not name a tree link" what link)

let validate_event ~tree = function
  | Link_down { link; from_; until } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"link_down" link in
      check_window ~what:"link_down" ~from_ ~until
  | Link_jitter { link; from_; until; max_jitter } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"link_jitter" link in
      let* () = check_window ~what:"link_jitter" ~from_ ~until in
      if max_jitter > 0. then Ok () else Error "link_jitter: max_jitter must be positive"
  | Link_dup { link; from_; until } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"link_dup" link in
      check_window ~what:"link_dup" ~from_ ~until
  | Crash { node; at; restart_at } ->
      if not (node >= 1 && node < Net.Tree.n_nodes tree && Net.Tree.is_leaf tree node) then
        Error (Printf.sprintf "crash: node %d is not a receiver (routers cannot crash)" node)
      else if at < 0. then Error "crash: time must be non-negative"
      else begin
        match restart_at with
        | Some r when r <= at -> Error "crash: restart_at must be after at"
        | _ -> Ok ()
      end
  | Partition { root; from_; until } ->
      let ( let* ) = Result.bind in
      let* () = check_link ~tree ~what:"partition" root in
      check_window ~what:"partition" ~from_ ~until
  | Join _ | Leave _ | Rejoin _ ->
      (* handled (with the cross-event rejoin check) in [validate] *)
      Ok ()

let check_member_event ~tree ~what ~node ~at =
  if not (node >= 1 && node < Net.Tree.n_nodes tree && Net.Tree.is_leaf tree node) then
    Error
      (Printf.sprintf "%s: node %d is not a receiver (only leaf members churn)" what node)
  else if at < 0. then Error (Printf.sprintf "%s: time must be non-negative" what)
  else Ok ()

let validate ~tree t =
  let validate_churn e =
    match e with
    | Join { node; at } -> check_member_event ~tree ~what:"join" ~node ~at
    | Leave { node; at } -> check_member_event ~tree ~what:"leave" ~node ~at
    | Rejoin { node; at } -> (
        let ( let* ) = Result.bind in
        let* () = check_member_event ~tree ~what:"rejoin" ~node ~at in
        (* A rejoin restores a membership an earlier leave dropped; a
           rejoin with no prior leave would silently be a no-op, which
           is a plan bug worth rejecting. *)
        let has_prior_leave =
          List.exists
            (function Leave { node = n; at = a } -> n = node && a < at | _ -> false)
            t.events
        in
        if has_prior_leave then Ok ()
        else
          Error
            (Printf.sprintf "rejoin: node %d has no leave before t=%g to rejoin from" node at))
    | _ -> validate_event ~tree e
  in
  let rec go = function
    | [] -> Ok t
    | e :: rest -> ( match validate_churn e with Ok () -> go rest | Error _ as err -> err)
  in
  match go t.events with
  | Ok _ as ok -> ok
  | Error msg -> Error (Printf.sprintf "plan %S: %s" t.name msg)

(* --- compilation ---------------------------------------------------- *)

let compile ~network ?(on_crash = fun ~node:_ -> ()) ?(on_restart = fun ~node:_ -> ())
    ?(on_join = fun ~node:_ -> ()) ?(on_leave = fun ~node:_ -> ()) t =
  (match validate ~tree:(Net.Network.tree network) t with
  | Ok _ -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Fault.Plan.compile: %s" msg));
  let engine = Net.Network.engine network in
  (* Late joiners start outside the group: excluded at compile time
     (a starting condition, not a churn transition — [~count:false]),
     restored by their Join timer below. *)
  List.iter
    (fun node -> Net.Network.set_member ~count:false network node false)
    (initial_absentees t);
  List.iter
    (fun event ->
      match event with
      | Link_down { link; from_; until } -> Net.Network.add_link_down network ~link ~from_ ~until
      | Link_jitter { link; from_; until; max_jitter } ->
          Net.Network.add_link_jitter network ~link ~from_ ~until ~max_jitter
      | Link_dup { link; from_; until } -> Net.Network.add_link_dup network ~link ~from_ ~until
      | Partition { root; from_; until } ->
          (* A subtree partition is an outage of the link above its
             root: nothing crosses in either direction, so the subtree
             recovers among itself (SRM local recovery) until heal. *)
          Net.Network.add_link_down network ~link:root ~from_ ~until
      | Crash { node; at; restart_at } ->
          ignore
            (Sim.Engine.schedule_at engine ~at (fun () ->
                 Net.Network.set_enabled network node false;
                 on_crash ~node));
          Option.iter
            (fun at ->
              ignore
                (Sim.Engine.schedule_at engine ~at (fun () ->
                     Net.Network.set_enabled network node true;
                     on_restart ~node)))
            restart_at
      | Join { node; at } | Rejoin { node; at } ->
          ignore
            (Sim.Engine.schedule_at engine ~at (fun () ->
                 Net.Network.set_member network node true;
                 on_join ~node))
      | Leave { node; at } ->
          ignore
            (Sim.Engine.schedule_at engine ~at (fun () ->
                 Net.Network.set_member network node false;
                 on_leave ~node)))
    t.events

(* --- serialization -------------------------------------------------- *)

let event_to_json event =
  let open Obs.Json in
  match event with
  | Link_down { link; from_; until } ->
      Obj [ ("kind", Str "link_down"); ("link", int link); ("from", Num from_); ("until", Num until) ]
  | Link_jitter { link; from_; until; max_jitter } ->
      Obj
        [
          ("kind", Str "link_jitter");
          ("link", int link);
          ("from", Num from_);
          ("until", Num until);
          ("max_jitter", Num max_jitter);
        ]
  | Link_dup { link; from_; until } ->
      Obj [ ("kind", Str "link_dup"); ("link", int link); ("from", Num from_); ("until", Num until) ]
  | Crash { node; at; restart_at } ->
      Obj
        [
          ("kind", Str "crash");
          ("node", int node);
          ("at", Num at);
          ("restart_at", (match restart_at with None -> Null | Some r -> Num r));
        ]
  | Partition { root; from_; until } ->
      Obj
        [ ("kind", Str "partition"); ("root", int root); ("from", Num from_); ("until", Num until) ]
  | Join { node; at } -> Obj [ ("kind", Str "join"); ("node", int node); ("at", Num at) ]
  | Leave { node; at } -> Obj [ ("kind", Str "leave"); ("node", int node); ("at", Num at) ]
  | Rejoin { node; at } -> Obj [ ("kind", Str "rejoin"); ("node", int node); ("at", Num at) ]

let to_json t =
  let open Obs.Json in
  Obj [ ("name", Str t.name); ("events", Arr (List.map event_to_json t.events)) ]

let event_of_json json =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let num field =
    match member field json with
    | Some (Num x) -> Ok x
    | _ -> Error (Printf.sprintf "event %s: expected a number" field)
  in
  let int_field field =
    let* x = num field in
    if Float.is_integer x then Ok (int_of_float x)
    else Error (Printf.sprintf "event %s: expected an integer" field)
  in
  match member "kind" json with
  | Some (Str "link_down") ->
      let* link = int_field "link" in
      let* from_ = num "from" in
      let* until = num "until" in
      Ok (Link_down { link; from_; until })
  | Some (Str "link_jitter") ->
      let* link = int_field "link" in
      let* from_ = num "from" in
      let* until = num "until" in
      let* max_jitter = num "max_jitter" in
      Ok (Link_jitter { link; from_; until; max_jitter })
  | Some (Str "link_dup") ->
      let* link = int_field "link" in
      let* from_ = num "from" in
      let* until = num "until" in
      Ok (Link_dup { link; from_; until })
  | Some (Str "crash") ->
      let* node = int_field "node" in
      let* at = num "at" in
      let* restart_at =
        match member "restart_at" json with
        | Some Null | None -> Ok None
        | Some (Num r) -> Ok (Some r)
        | Some _ -> Error "event restart_at: expected a number or null"
      in
      Ok (Crash { node; at; restart_at })
  | Some (Str "partition") ->
      let* root = int_field "root" in
      let* from_ = num "from" in
      let* until = num "until" in
      Ok (Partition { root; from_; until })
  | Some (Str "join") ->
      let* node = int_field "node" in
      let* at = num "at" in
      Ok (Join { node; at })
  | Some (Str "leave") ->
      let* node = int_field "node" in
      let* at = num "at" in
      Ok (Leave { node; at })
  | Some (Str "rejoin") ->
      let* node = int_field "node" in
      let* at = num "at" in
      Ok (Rejoin { node; at })
  | Some (Str kind) -> Error (Printf.sprintf "unknown fault event kind %S" kind)
  | _ -> Error "event: missing kind"

let of_json json =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let* name =
    match member "name" json with
    | Some (Str s) -> Ok s
    | None -> Ok "anonymous"
    | Some _ -> Error "name: expected a string"
  in
  let* events =
    match member "events" json with
    | Some (Arr items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* e = event_of_json item in
            Ok (e :: acc))
          items (Ok [])
    | _ -> Error "events: expected an array"
  in
  Ok { name; events }

let save t ~file = Obs.Json.save ~pretty:true (to_json t) ~file

let load file =
  match Obs.Json.parse_file file with
  | Error _ as err -> err
  | Ok json -> of_json json

(* --- churn schedules -------------------------------------------------- *)

(* Declarative membership schedules are generated with a private LCG
   (PCG-style multiplier), never [Random] or the engine RNG: a plan is
   data, so the same arguments must produce the same events on every
   shard and every process — churned runs stay pure functions of
   (trace, seed, plan). *)
let lcg_stream seed =
  let state = ref (Int64.logor seed 1L) in
  fun () ->
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    let bits = Int64.to_int (Int64.shift_right_logical !state 11) in
    float_of_int bits /. 9007199254740992.

let late_joiners ~nodes ~at ~spread =
  if at < 0. || spread < 0. then invalid_arg "Fault.Plan.late_joiners: negative time";
  let n = List.length nodes in
  List.mapi
    (fun i node ->
      let frac = if n <= 1 then 0. else float_of_int i /. float_of_int (n - 1) in
      Join { node; at = at +. (frac *. spread) })
    nodes

let flash_crowd ~nodes ~at =
  if at < 0. then invalid_arg "Fault.Plan.flash_crowd: negative time";
  List.map (fun node -> Join { node; at }) nodes

let steady_churn ~nodes ~from_ ~until ~rate ~half_life ?(seed = 0x9E3779B97F4A7C15L) () =
  if nodes = [] then invalid_arg "Fault.Plan.steady_churn: empty node pool";
  if not (from_ >= 0. && until > from_) then
    invalid_arg "Fault.Plan.steady_churn: window must satisfy 0 <= from_ < until";
  if rate <= 0. then invalid_arg "Fault.Plan.steady_churn: rate must be positive";
  if half_life <= 0. then invalid_arg "Fault.Plan.steady_churn: half_life must be positive";
  let u = lcg_stream seed in
  let pool = Array.of_list nodes in
  let n = Array.length pool in
  let absent_until = Hashtbl.create 8 in
  let events = ref [] in
  let t = ref from_ in
  let running = ref true in
  while !running do
    (* exponential inter-departure gaps with mean 1/rate *)
    t := !t +. (-.log (1. -. u ()) /. rate);
    if !t >= until then running := false
    else begin
      (* pick a currently-present node, scanning from a sampled start
         so the choice is uniform-ish but the loop stays total even
         when everyone is absent *)
      let start = int_of_float (u () *. float_of_int n) in
      let pick = ref (-1) in
      for k = 0 to n - 1 do
        if !pick < 0 then begin
          let node = pool.((start + k) mod n) in
          let absent =
            match Hashtbl.find_opt absent_until node with Some r -> r > !t | None -> false
          in
          if not absent then pick := node
        end
      done;
      if !pick >= 0 then begin
        let node = !pick in
        (* absence with median [half_life] (exponential), floored so
           the rejoin is strictly after the leave *)
        let away = Float.max 1e-6 (half_life *. (-.log (1. -. u ())) /. Float.log 2.) in
        Hashtbl.replace absent_until node (!t +. away);
        events := Rejoin { node; at = !t +. away } :: Leave { node; at = !t } :: !events
      end
    end
  done;
  List.rev !events

(* --- canned plans ---------------------------------------------------- *)

let canned_names = [ "partition-heal"; "link-flap"; "crash-replier"; "jitter-reorder"; "dup-burst" ]

let churn_names = [ "churn-late"; "churn-flash"; "churn-steady" ]

(* Deterministic topology probes: the deepest receiver (the natural
   requestor — longest source path), the shallowest receiver (the
   natural replier — closest to the source), and the root child whose
   subtree is largest (the heaviest branch to partition). Ties break
   toward smaller ids. *)
let deepest_receiver tree =
  Array.fold_left
    (fun best r -> if Net.Tree.depth tree r > Net.Tree.depth tree best then r else best)
    (Net.Tree.receivers tree).(0) (Net.Tree.receivers tree)

let shallowest_receiver tree =
  Array.fold_left
    (fun best r -> if Net.Tree.depth tree r < Net.Tree.depth tree best then r else best)
    (Net.Tree.receivers tree).(0) (Net.Tree.receivers tree)

let heaviest_branch tree =
  match Net.Tree.children tree 0 with
  | [] -> invalid_arg "Fault.Plan.canned: root has no children"
  | first :: _ as cs ->
      List.fold_left
        (fun best c ->
          if
            List.length (Net.Tree.subtree_nodes tree c)
            > List.length (Net.Tree.subtree_nodes tree best)
          then c
          else best)
        first cs

(* Up to [k] receivers spread evenly across the receiver array (which
   orders shallow and deep members alike), capped at half the group —
   so canned churn plans never empty the group; the empty-group edge
   has its own dedicated regression plan in the tests. *)
let churn_pool tree k =
  let rs = Net.Tree.receivers tree in
  let n = Array.length rs in
  let k = max 1 (min k (max 1 (n / 2))) in
  List.init k (fun i -> rs.(i * n / k))

let canned ~tree ~warmup ~duration name =
  let w = warmup and d = duration in
  let at f = w +. (f *. d) in
  match name with
  | "partition-heal" ->
      Some
        (make ~name
           [ Partition { root = heaviest_branch tree; from_ = at 0.25; until = at 0.5 } ])
  | "link-flap" ->
      let link = deepest_receiver tree in
      Some
        (make ~name
           [
             Link_down { link; from_ = at 0.2; until = at 0.25 };
             Link_down { link; from_ = at 0.4; until = at 0.45 };
             Link_down { link; from_ = at 0.6; until = at 0.65 };
           ])
  | "crash-replier" ->
      Some
        (make ~name
           [
             Crash
               { node = shallowest_receiver tree; at = at 0.3; restart_at = Some (at 0.6) };
           ])
  | "jitter-reorder" ->
      Some
        (make ~name
           [
             Link_jitter
               { link = deepest_receiver tree; from_ = at 0.2; until = at 0.8; max_jitter = 0.05 };
             Link_jitter
               { link = heaviest_branch tree; from_ = at 0.3; until = at 0.7; max_jitter = 0.02 };
           ])
  | "dup-burst" ->
      Some
        (make ~name
           [
             Link_dup { link = deepest_receiver tree; from_ = at 0.3; until = at 0.6 };
             Link_dup { link = heaviest_branch tree; from_ = at 0.3; until = at 0.6 };
           ])
  | "churn-late" ->
      (* The deepest members arrive only a quarter into the data phase:
         they must not be charged for anything sent before they joined,
         and must recover everything after. *)
      Some
        (make ~name
           (late_joiners ~nodes:(churn_pool tree 3) ~at:(at 0.25) ~spread:(0.1 *. d)))
  | "churn-flash" ->
      (* A flash crowd: a batch of members joins at the same instant,
         mid-stream, all with empty soft state. *)
      Some (make ~name (flash_crowd ~nodes:(churn_pool tree 8) ~at:(at 0.3)))
  | "churn-steady" ->
      (* Sustained leave/rejoin churn across the middle of the data
         phase: ~4 departures, absences with a median of 8% of the
         phase. Includes the shallowest receivers — the natural CESRM
         repliers — so cached-pair invalidation is exercised. *)
      Some
        (make ~name
           (steady_churn ~nodes:(churn_pool tree 6) ~from_:(at 0.15) ~until:(at 0.75)
              ~rate:(4. /. (0.6 *. d))
              ~half_life:(0.08 *. d) ()))
  | _ -> None
