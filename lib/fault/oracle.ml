type config = {
  max_expedited_retry : int;
  max_requests_per_loss : int;
  max_replies_per_loss : int;
}

let default_config = { max_expedited_retry = 12; max_requests_per_loss = 200; max_replies_per_loss = 16 }

type violation = { at : float; node : int; invariant : string; detail : string }

type t = {
  config : config;
  network : Net.Network.t;
  (* (node, src, seq) -> detection time, removed on first obtain *)
  pending : (int * int * int, float) Hashtbl.t;
  (* (node, src, seq) -> how many times the member obtained it *)
  obtained : (int * int * int, int) Hashtbl.t;
  (* (requestor, replier) -> consecutive expedited requests unanswered *)
  exp_streak : (int * int, int) Hashtbl.t;
  (* (node, src, seq) -> requests this member sent for the loss *)
  requests : (int * int * int, int) Hashtbl.t;
  (* (replier, src, seq) -> replies this member sent for the loss *)
  replies : (int * int * int, int) Hashtbl.t;
  (* bounded invariants report once per offending key *)
  latched : (string * int * int, unit) Hashtbl.t;
  mutable violations_rev : violation list;
  mutable n_violations : int;
  mutable finalized : bool;
}

let create ?(config = default_config) ~network () =
  let t =
    {
      config;
      network;
      pending = Hashtbl.create 256;
      obtained = Hashtbl.create 1024;
      exp_streak = Hashtbl.create 32;
      requests = Hashtbl.create 256;
      replies = Hashtbl.create 256;
      latched = Hashtbl.create 32;
      violations_rev = [];
      n_violations = 0;
      finalized = false;
    }
  in
  let now () = Sim.Engine.now (Net.Network.engine network) in
  let violate ~node ~invariant detail =
    t.violations_rev <- { at = now (); node; invariant; detail } :: t.violations_rev;
    t.n_violations <- t.n_violations + 1
  in
  (* Bounded invariants latch per (invariant, offending key) so a
     broken loop reports once, not once per packet. *)
  let latch_once ~invariant ~a ~b f =
    if not (Hashtbl.mem t.latched (invariant, a, b)) then begin
      Hashtbl.replace t.latched (invariant, a, b) ();
      f ()
    end
  in
  Net.Network.add_tap network (fun ~from:_ (p : Net.Packet.t) ->
      match p.payload with
      | Net.Packet.Exp_request { requestor; replier; src; seq; _ } ->
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.exp_streak (requestor, replier)) in
          Hashtbl.replace t.exp_streak (requestor, replier) n;
          if n > config.max_expedited_retry then
            latch_once ~invariant:"expedited-retry" ~a:requestor ~b:replier (fun () ->
                violate ~node:requestor ~invariant:"expedited-retry"
                  (Printf.sprintf
                     "%d consecutive expedited requests to replier %d without hearing from it \
                      (last for src %d seq %d)"
                     n replier src seq))
      | Net.Packet.Reply { requestor = _; replier; src; seq; expedited = _; _ } ->
          (* Any reply from [replier] is evidence it is alive; the
             retry bound targets hammering a *silent* replier. A live
             replier can legitimately draw more expedited requests than
             the bound without answering any (post-heal it may lack the
             very packets it is asked for, while its other replies keep
             it cached), so every streak aimed at it resets here. *)
          let stale =
            Hashtbl.fold
              (fun ((_, rp) as k) _ acc -> if rp = replier then k :: acc else acc)
              t.exp_streak []
          in
          List.iter (Hashtbl.remove t.exp_streak) stale;
          let key = (replier, src, seq) in
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.replies key) in
          Hashtbl.replace t.replies key n;
          if n > config.max_replies_per_loss then
            latch_once ~invariant:"reply-suppression" ~a:replier ~b:((src * 1_000_000) + seq)
              (fun () ->
                violate ~node:replier ~invariant:"reply-suppression"
                  (Printf.sprintf "%d replies for src %d seq %d" n src seq))
      | Net.Packet.Request { requestor; src; seq; _ } ->
          let key = (requestor, src, seq) in
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.requests key) in
          Hashtbl.replace t.requests key n;
          if n > config.max_requests_per_loss then
            latch_once ~invariant:"request-suppression" ~a:requestor
              ~b:((src * 1_000_000) + seq) (fun () ->
                violate ~node:requestor ~invariant:"request-suppression"
                  (Printf.sprintf "%d requests for src %d seq %d" n src seq))
      | Net.Packet.Data _ | Net.Packet.Session _ -> ());
  t

let now t = Sim.Engine.now (Net.Network.engine t.network)

let violate t ~at ~node ~invariant detail =
  t.violations_rev <- { at; node; invariant; detail } :: t.violations_rev;
  t.n_violations <- t.n_violations + 1

let attach_host t host =
  let hooks = Srm.Host.hooks host in
  let node = Srm.Host.self host in
  let prev_detect = hooks.Srm.Host.on_loss_detected in
  hooks.Srm.Host.on_loss_detected <-
    (fun ~src ~seq ->
      if not (Hashtbl.mem t.obtained (node, src, seq)) then
        Hashtbl.replace t.pending (node, src, seq) (now t);
      prev_detect ~src ~seq);
  let prev_obtained = hooks.Srm.Host.on_packet_obtained in
  hooks.Srm.Host.on_packet_obtained <-
    (fun ~src ~seq ~expedited ->
      Hashtbl.remove t.pending (node, src, seq);
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.obtained (node, src, seq)) in
      Hashtbl.replace t.obtained (node, src, seq) n;
      if n = 2 then
        violate t ~at:(now t) ~node ~invariant:"duplicate-delivery"
          (Printf.sprintf "src %d seq %d delivered to the application again" src seq);
      prev_obtained ~src ~seq ~expedited)

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    let still_missing = ref [] in
    Hashtbl.iter
      (fun (node, src, seq) detected_at ->
        if Net.Network.is_enabled t.network node then
          still_missing := (node, src, seq, detected_at) :: !still_missing)
      t.pending;
    List.iter
      (fun (node, src, seq, detected_at) ->
        violate t ~at:(now t) ~node ~invariant:"liveness"
          (Printf.sprintf "src %d seq %d detected lost at t=%.3f, never repaired" src seq
             detected_at))
      (List.sort compare !still_missing)
  end

let violations t = List.rev t.violations_rev

let n_violations t = t.n_violations

let clean t = t.n_violations = 0

let to_json t =
  let open Obs.Json in
  Obj
    [
      ( "violations",
        Arr
          (List.map
             (fun v ->
               Obj
                 [
                   ("at", Num v.at);
                   ("node", int v.node);
                   ("invariant", Str v.invariant);
                   ("detail", Str v.detail);
                 ])
             (violations t)) );
      ("count", int t.n_violations);
    ]

let pp ppf t =
  if clean t then Format.fprintf ppf "oracle: clean"
  else begin
    Format.fprintf ppf "oracle: %d violation(s)" t.n_violations;
    List.iter
      (fun v ->
        Format.fprintf ppf "@.  t=%.3f node %d [%s] %s" v.at v.node v.invariant v.detail)
      (violations t)
  end
